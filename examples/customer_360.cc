// customer_360: the paper's motivating scenario (§2) — "information about
// the customers of a company is scattered across multiple databases in the
// organization", with duplicates and inconsistent representations. This
// example integrates a CRM, an acquired company's ERP, and a support-ticket
// XML dump, then runs the §3.2 dynamic-cleaning pipeline: normalization,
// merge/purge with a concordance database, a human-resolved exception, and
// lineage inspection.

#include <cstdio>

#include "cleaning/concordance.h"
#include "cleaning/flow.h"
#include "cleaning/similarity.h"
#include "connector/relational_connector.h"
#include "connector/xml_connector.h"
#include "core/engine.h"
#include "xml/serializer.h"

namespace {

void Check(const nimble::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}
template <typename T>
void Check(const nimble::Result<T>& result) {
  Check(result.ok() ? nimble::Status::OK() : result.status());
}

}  // namespace

int main() {
  using namespace nimble;

  // ---- Sources: same customers, three representations -----------------------
  relational::Database crm("crm");
  Check(crm.Execute("CREATE TABLE customers (id INT PRIMARY KEY, name TEXT, "
                    "city TEXT, phone TEXT)"));
  Check(crm.Execute(
      "INSERT INTO customers VALUES "
      "(1, 'Ada Lovelace', 'Seattle', '(206) 555-0100'), "
      "(2, 'Bob Barker', 'Portland', '(503) 555-0101'), "
      "(3, 'Grace Hopper', 'Arlington', '(703) 555-0102')"));

  // The acquired company's ERP writes "Last, First" and bare digits.
  relational::Database erp("erp");
  Check(erp.Execute("CREATE TABLE clients (cid INT PRIMARY KEY, "
                    "fullname TEXT, town TEXT, tel TEXT)"));
  Check(erp.Execute("INSERT INTO clients VALUES "
                    "(901, 'Lovelace, Ada', 'Seattle', '2065550100'), "
                    "(902, 'Barkr,  Bob', 'Portland', '5035550101'), "
                    "(903, 'Hoper, Grace', 'Arlington', '7035550102'), "
                    "(904, 'Dan Druff', 'Boise', '2085550104')"));

  // Support tickets arrive as XML.
  auto support = std::make_unique<connector::XmlConnector>("support");
  Check(support->PutDocumentText(
      "tickets",
      "<tickets>"
      "<ticket><name>Ada   Lovelace</name><city>Seattle</city>"
      "<issue>login</issue></ticket>"
      "<ticket><name>Eve Adams</name><city>Miami</city>"
      "<issue>billing</issue></ticket>"
      "</tickets>"));

  metadata::Catalog catalog;
  Check(catalog.RegisterSource(
      std::make_unique<connector::RelationalConnector>("crm", &crm)));
  Check(catalog.RegisterSource(
      std::make_unique<connector::RelationalConnector>("erp", &erp)));
  Check(catalog.RegisterSource(std::move(support)));

  // ---- Mediated schema: one "customer" view over all three sources ----------
  Check(catalog.DefineView("all_customers", R"(
    WHERE <customers><row><name>$n</name><city>$c</city><phone>$p</phone>
          </row></customers> IN "crm:customers"
    CONSTRUCT <customer><name>$n</name><city>$c</city><phone>$p</phone>
              </customer>
    UNION
    WHERE <clients><row><fullname>$n</fullname><town>$c</town><tel>$p</tel>
          </row></clients> IN "erp:clients"
    CONSTRUCT <customer><name>$n</name><city>$c</city><phone>$p</phone>
              </customer>
    UNION
    WHERE <tickets><ticket><name>$n</name><city>$c</city></ticket></tickets>
          IN "support:tickets"
    CONSTRUCT <customer><name>$n</name><city>$c</city></customer>
  )"));

  core::IntegrationEngine engine(&catalog);
  Result<core::QueryResult> raw = engine.ExecuteText(R"(
    WHERE <results><customer ELEMENT_AS $e></customer></results>
          IN all_customers
    CONSTRUCT <customer_record>$e</customer_record>
  )");
  Check(raw);
  std::printf("== Integrated (dirty) view: %zu records ==\n",
              raw->report.result_count);

  // ---- Dynamic cleaning flow (§3.2) ------------------------------------------
  auto matcher = std::make_shared<cleaning::RecordMatcher>(
      std::vector<cleaning::MatchRule>{
          {"name", cleaning::JaroWinklerSimilarity, 2.0, 0.3},
          {"city",
           [](const std::string& a, const std::string& b) {
             return a == b ? 1.0 : 0.0;
           },
           1.0, 0.5},
          {"phone",
           [](const std::string& a, const std::string& b) {
             return a == b ? 1.0 : 0.0;
           },
           1.0, 0.5},
      },
      /*lower=*/0.70, /*upper=*/0.92);

  cleaning::ConcordanceDatabase concordance;
  cleaning::MergePurgeOptions merge_options;
  merge_options.strategy = cleaning::MatchStrategy::kSortedNeighbourhood;
  merge_options.window = 4;
  merge_options.concordance = &concordance;

  cleaning::CleaningFlow flow("customer_360");
  flow.NormalizeField("name", cleaning::NormalizerPipeline::ForNames())
      .NormalizeField("phone", cleaning::NormalizerPipeline::ForPhones())
      .Deduplicate(matcher, merge_options);
  std::printf("\n== Declarative flow ==\n%s", flow.Describe().c_str());

  // The result document's children become records keyed customer#i; the
  // <customer_record> wrapper holds one <customer> element each.
  std::vector<cleaning::KeyedRecord> records;
  size_t index = 0;
  for (const NodePtr& wrapper : raw->document->children()) {
    NodePtr customer = wrapper->FindChild("customer");
    if (customer == nullptr) continue;
    records.push_back(cleaning::KeyedRecord{
        "customer#" + std::to_string(index++),
        cleaning::RecordFromXml(*customer)});
  }

  cleaning::LineageLog lineage;
  Result<cleaning::FlowOutput> pass1 = flow.Run(records, &lineage);
  Check(pass1);
  std::printf("\n== Pass 1 ==\n");
  std::printf("records in: %zu, out: %zu, normalized values: %zu\n",
              records.size(), pass1->records.size(),
              pass1->values_normalized);
  std::printf("pairs scored: %zu, exceptions queued for a human: %zu\n",
              pass1->merge_stats->pairs_scored,
              pass1->merge_stats->exceptions_queued);

  // ---- Human disambiguation: resolve queued exceptions -----------------------
  while (concordance.pending_exception_count() > 0) {
    Result<std::pair<std::string, std::string>> resolved =
        concordance.ResolveNextException(/*is_match=*/true);
    Check(resolved);
    std::printf("human: '%s' and '%s' are the same entity\n",
                resolved->first.c_str(), resolved->second.c_str());
  }

  // ---- Pass 2: concordance reapplies past decisions --------------------------
  // (lineage already holds pass-1 ancestry; pass 2 runs without logging.)
  Result<cleaning::FlowOutput> pass2 = flow.Run(records, nullptr);
  Check(pass2);
  std::printf("\n== Pass 2 (concordance warm) ==\n");
  std::printf("records out: %zu (concordance hits: %zu, scored: %zu)\n",
              pass2->records.size(), pass2->merge_stats->concordance_hits,
              pass2->merge_stats->pairs_scored);

  std::printf("\n== Clean customer 360 ==\n");
  for (const cleaning::KeyedRecord& record : pass2->records) {
    NodePtr xml = cleaning::RecordToXml(record.fields, "customer");
    std::printf("%s\n", ToXml(*xml).c_str());
  }

  // ---- Lineage: where did a value come from? ----------------------------------
  std::printf("\n== Lineage for customer#3 (ERP 'Lovelace, Ada') ==\n");
  for (const cleaning::LineageEntry& entry : lineage.ForRecord("customer#3")) {
    std::printf("  step %-18s %s: '%s' -> '%s'\n", entry.step.c_str(),
                entry.field.c_str(), entry.before.ToString().c_str(),
                entry.after.ToString().c_str());
  }
  return 0;
}
