// Quickstart: integrate a relational database and an XML feed with one
// XML-QL query.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "connector/relational_connector.h"
#include "connector/xml_connector.h"
#include "core/engine.h"
#include "xml/serializer.h"

namespace {

void Check(const nimble::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}
template <typename T>
void Check(const nimble::Result<T>& result) {
  Check(result.ok() ? nimble::Status::OK() : result.status());
}

}  // namespace

int main() {
  using namespace nimble;

  // 1. A relational source: the customer database.
  relational::Database crm("crm");
  Check(crm.Execute(
      "CREATE TABLE customers (id INT PRIMARY KEY, name TEXT, city TEXT)"));
  Check(crm.Execute("INSERT INTO customers VALUES "
                    "(1, 'Ada Lovelace', 'Seattle'), "
                    "(2, 'Bob Barker', 'Portland'), "
                    "(3, 'Cleo Patra', 'Seattle')"));

  // 2. An XML source: the order feed from a partner.
  auto feed = std::make_unique<connector::XmlConnector>("feed");
  Check(feed->PutDocumentText("orders",
                              "<orders>"
                              "<order cust=\"1\"><total>250.0</total></order>"
                              "<order cust=\"1\"><total>80.0</total></order>"
                              "<order cust=\"3\"><total>999.0</total></order>"
                              "</orders>"));

  // 3. Register both with the metadata server.
  metadata::Catalog catalog;
  Check(catalog.RegisterSource(
      std::make_unique<connector::RelationalConnector>("crm", &crm)));
  Check(catalog.RegisterSource(std::move(feed)));

  // 4. Ask one question across both sources. The relational fragment is
  //    compiled to SQL and pushed down; the XML fragment is pattern-matched;
  //    the join runs in the mediator.
  core::IntegrationEngine engine(&catalog);
  Result<core::QueryResult> result = engine.ExecuteText(R"(
    WHERE <customers><row><id>$id</id><name>$name</name><city>$city</city>
          </row></customers> IN "crm:customers",
          <orders><order cust=$id><total>$total</total></order></orders>
          IN "feed:orders",
          $total > 100
    CONSTRUCT <big_order><name>$name</name><city>$city</city>
               <total>$total</total></big_order>
    ORDER BY $total DESC
  )");
  Check(result);

  std::printf("== Result ==\n%s\n\n", ToPrettyXml(*result->document).c_str());
  std::printf("== Physical plan ==\n%s\n", result->report.plan.c_str());
  std::printf("== Report ==\n%s\n", result->report.Summary().c_str());
  return 0;
}
