// resilient_portal: the §3.4 scenario — "in many applications, it's never
// the case that all sources are available … In the worst case, there may
// be so many data sources that the probability that they are all available
// simultaneously is nearly zero." This example federates several flaky
// regional inventory feeds and shows the three availability behaviours:
// fail-fast, partial results with completeness annotations, and required
// sources.

#include <cstdio>

#include "connector/simulated_source.h"
#include "connector/xml_connector.h"
#include "core/engine.h"
#include "xml/serializer.h"

namespace {

void Check(const nimble::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  using namespace nimble;

  VirtualClock clock;
  metadata::Catalog catalog;
  std::vector<connector::SimulatedSource*> regions;

  const char* region_names[] = {"us_east", "us_west", "europe", "apac"};
  for (int r = 0; r < 4; ++r) {
    auto inner = std::make_unique<connector::XmlConnector>(region_names[r]);
    std::string doc = "<inventory>";
    for (int i = 0; i < 3; ++i) {
      doc += "<item><sku>" + std::string(region_names[r]) + "-" +
             std::to_string(i) + "</sku><qty>" + std::to_string(10 * (i + 1)) +
             "</qty></item>";
    }
    doc += "</inventory>";
    Check(inner->PutDocumentText("inventory", doc));

    connector::SimulationConfig config;
    config.fixed_latency_micros = 2000;
    config.per_row_latency_micros = 50;
    config.availability = 1.0;  // driven manually below
    auto sim = std::make_unique<connector::SimulatedSource>(std::move(inner),
                                                            config, &clock);
    regions.push_back(sim.get());
    Check(catalog.RegisterSource(std::move(sim)));
  }

  // A UNION program pulling inventory from every region.
  std::string query;
  for (int r = 0; r < 4; ++r) {
    if (r > 0) query += " UNION ";
    query += "WHERE <inventory><item><sku>$s</sku><qty>$q</qty></item>"
             "</inventory> IN \"" +
             std::string(region_names[r]) +
             ":inventory\" "
             "CONSTRUCT <stock region=\"" +
             region_names[r] + "\"><sku>$s</sku><qty>$q</qty></stock>";
  }

  core::IntegrationEngine engine(&catalog);

  std::printf("== All regions up ==\n");
  Result<core::QueryResult> all_up = engine.ExecuteText(query);
  Check(all_up.ok() ? Status::OK() : all_up.status());
  std::printf("%zu stock records; %s\n\n", all_up->report.result_count,
              all_up->report.completeness.ToString().c_str());

  // Take Europe down.
  regions[2]->SetOnline(false);

  std::printf("== Europe offline, default policy (fail-fast) ==\n");
  Result<core::QueryResult> failed = engine.ExecuteText(query);
  std::printf("%s\n\n", failed.ok() ? "unexpectedly succeeded!"
                                    : failed.status().ToString().c_str());

  std::printf("== Europe offline, PARTIAL policy ==\n");
  core::QueryOptions partial;
  partial.availability = core::AvailabilityPolicy::kPartial;
  Result<core::QueryResult> degraded = engine.ExecuteText(query, partial);
  Check(degraded.ok() ? Status::OK() : degraded.status());
  std::printf("%zu stock records; %s\n", degraded->report.result_count,
              degraded->report.completeness.ToString().c_str());
  std::printf("result document advertises: complete=%s missing_sources=%s\n\n",
              degraded->document->GetAttribute("complete").ToString().c_str(),
              degraded->document->GetAttribute("missing_sources")
                  .ToString()
                  .c_str());

  std::printf("== Europe offline, PARTIAL but europe is REQUIRED ==\n");
  core::QueryOptions strict = partial;
  strict.required_sources = {"europe"};
  Result<core::QueryResult> refused = engine.ExecuteText(query, strict);
  std::printf("%s\n\n", refused.ok() ? "unexpectedly succeeded!"
                                     : refused.status().ToString().c_str());

  // Europe comes back.
  regions[2]->SetOnline(true);
  std::printf("== Europe back online ==\n");
  Result<core::QueryResult> recovered = engine.ExecuteText(query, partial);
  Check(recovered.ok() ? Status::OK() : recovered.status());
  std::printf("%zu stock records; %s\n", recovered->report.result_count,
              recovered->report.completeness.ToString().c_str());

  // The headline §3.4 observation, measured: P(all up) collapses with N.
  std::printf(
      "\n== P(all sources up) vs fleet size (per-source availability "
      "0.95) ==\n");
  std::printf("%8s %14s\n", "sources", "P(all up)");
  for (int n : {1, 2, 4, 8, 16, 32}) {
    double p = 1.0;
    for (int i = 0; i < n; ++i) p *= 0.95;
    std::printf("%8d %13.1f%%\n", n, p * 100);
  }
  return 0;
}
