// admin_console: the data-administrator workflow (§2.1 "offline data
// manipulation and replication … using our data administrator sub-system";
// §4 "configuration and management tools that make it possible for
// administrators to set up, monitor, and understand, the system").
//
// Walks through: profiling a dirty source (the §3.2 "datamining phase"),
// replicating it into a local relational store with an offline cleaning
// flow, persisting the concordance database, and printing the system
// status board.

#include <cstdio>

#include "admin/monitor.h"
#include "admin/replication.h"
#include "cleaning/profiler.h"
#include "cleaning/similarity.h"
#include "connector/relational_connector.h"
#include "connector/xml_connector.h"
#include "materialize/view_store.h"

namespace {

void Check(const nimble::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}
template <typename T>
void Check(const nimble::Result<T>& result) {
  Check(result.ok() ? nimble::Status::OK() : result.status());
}

}  // namespace

int main() {
  using namespace nimble;

  // ---- A messy legacy feed arrives -------------------------------------------
  auto legacy = std::make_unique<connector::XmlConnector>("legacy");
  Check(legacy->PutDocumentText(
      "accounts",
      "<accounts>"
      "<a><holder>Lovelace, Ada</holder><ref>ACCT-0101</ref>"
      "<region>west</region></a>"
      "<a><holder>Ada  Lovelace</holder><ref>ACCT-0101</ref>"
      "<region>West</region></a>"
      "<a><holder>Bob Barker</holder><ref>ACCT-0202</ref>"
      "<region>west</region></a>"
      "<a><holder>Grace Hopper</holder><ref>dept=sales;tier=2</ref>"
      "<region>east</region></a>"
      "</accounts>"));
  connector::XmlConnector* legacy_raw = legacy.get();

  metadata::Catalog catalog;
  Check(catalog.RegisterSource(std::move(legacy)));
  core::IntegrationEngine engine(&catalog);

  // ---- Step 1: datamining phase — profile before cleaning (§3.2) -------------
  Result<NodePtr> tree = legacy_raw->FetchCollection("accounts");
  Check(tree);
  std::vector<cleaning::KeyedRecord> records;
  size_t index = 0;
  for (const NodePtr& child : (*tree)->children()) {
    records.push_back(cleaning::KeyedRecord{
        "acct#" + std::to_string(index++), cleaning::RecordFromXml(*child)});
  }
  cleaning::BatchProfile profile = cleaning::ProfileRecords(records);
  std::printf("== Step 1: profile of legacy:accounts ==\n%s\n",
              profile.ToText().c_str());

  // ---- Step 2: offline replication with cleaning (§2.1) ----------------------
  relational::Database local("local");
  xmlql::SourceRef origin;
  origin.source = "legacy";
  origin.collection = "accounts";
  admin::ReplicationJob job(&catalog, &engine, &local, "accounts_replica",
                            origin);

  auto matcher = std::make_shared<cleaning::RecordMatcher>(
      std::vector<cleaning::MatchRule>{
          {"holder", cleaning::JaroWinklerSimilarity, 2.0, 0.0},
          {"region",
           [](const std::string& a, const std::string& b) {
             return a == b ? 1.0 : 0.0;
           },
           1.0, 0.5}},
      0.80, 0.93);
  cleaning::MergePurgeOptions options;
  options.strategy = cleaning::MatchStrategy::kNaivePairwise;
  auto flow = std::make_shared<cleaning::CleaningFlow>("etl");
  flow->NormalizeField("holder", cleaning::NormalizerPipeline::ForNames())
      .NormalizeField("region",
                      [] {
                        cleaning::NormalizerPipeline p;
                        p.Add("lower_case", cleaning::LowerCase);
                        return p;
                      }())
      .Deduplicate(matcher, options);
  job.SetCleaningFlow(flow);

  Result<admin::ReplicationRunStats> stats = job.Run();
  Check(stats);
  std::printf("== Step 2: replicated legacy:accounts -> local.accounts_replica"
              " ==\n");
  std::printf("fetched %zu, normalized %zu values, loaded %zu clean rows\n\n",
              stats->rows_before_cleaning, stats->values_normalized,
              stats->rows_loaded);
  Result<relational::ResultSet> rs =
      local.Execute("SELECT holder, region FROM accounts_replica "
                    "ORDER BY holder");
  Check(rs);
  for (const relational::Row& row : rs->rows) {
    std::printf("  %-16s %s\n", row[0].ToString().c_str(),
                row[1].ToString().c_str());
  }

  // The replica is itself a first-class source now.
  Check(catalog.RegisterSource(
      std::make_unique<connector::RelationalConnector>("local", &local)));

  // ---- Step 3: change detection ------------------------------------------------
  NodePtr doc = legacy_raw->MutableDocument("accounts");
  NodePtr fresh = Node::Element("a");
  fresh->AddScalarChild("holder", Value::String("Eve Adams"));
  fresh->AddScalarChild("ref", Value::String("ACCT-0303"));
  fresh->AddScalarChild("region", Value::String("east"));
  doc->AddChild(std::move(fresh));
  Result<bool> changed = job.OriginChanged();
  Check(changed);
  std::printf("\n== Step 3: origin changed? %s -> re-run loads %zu rows ==\n",
              *changed ? "yes" : "no", [&] {
                Result<admin::ReplicationRunStats> rerun = job.Run();
                Check(rerun);
                return rerun->rows_loaded;
              }());

  // ---- Step 4: the status board (§4) --------------------------------------------
  Check(catalog.DefineView("east_accounts", R"(
    WHERE <accounts_replica><row><holder>$h</holder><region>east</region>
          </row></accounts_replica> IN "local:accounts_replica"
    CONSTRUCT <acct>$h</acct>
  )"));
  VirtualClock clock;
  materialize::MaterializedViewStore store(&catalog, &engine, &clock);
  Check(store.Materialize("east_accounts"));

  admin::SystemMonitor monitor(&catalog, &store);
  std::printf("\n== Step 4: system status ==\n%s", monitor.ToText().c_str());
  return 0;
}
