// web_portal: the paper's second application class (§2) — "companies who
// need to build large-scale web sites which serve information from
// multiple internal sources", where site builders work against "an already
// integrated view of their data sources". This example wires the full
// front end: mediated views, materialization, load-balanced engines, a
// result cache, authenticated lenses, and per-device formatting.

#include <cstdio>

#include "connector/csv_connector.h"
#include "connector/relational_connector.h"
#include "frontend/lens.h"
#include "materialize/view_store.h"

namespace {

void Check(const nimble::Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}
template <typename T>
void Check(const nimble::Result<T>& result) {
  Check(result.ok() ? nimble::Status::OK() : result.status());
}

}  // namespace

int main() {
  using namespace nimble;

  // ---- Back-end sources -------------------------------------------------------
  relational::Database products_db("catalog_db");
  Check(products_db.Execute(
      "CREATE TABLE products (sku TEXT PRIMARY KEY, title TEXT, "
      "price DOUBLE, category TEXT)"));
  Check(products_db.Execute(
      "INSERT INTO products VALUES "
      "('w-1', 'Widget Deluxe', 25.0, 'tools'), "
      "('g-1', 'Gizmo', 8.0, 'tools'), "
      "('b-1', 'Bauble', 3.5, 'gifts'), "
      "('t-1', 'Trinket', 12.0, 'gifts')"));
  Check(products_db.Execute(
      "CREATE INDEX idx_category ON products (category)"));

  auto inventory = std::make_unique<connector::CsvConnector>("warehouse");
  Check(inventory->PutCsv("stock",
                          "sku,on_hand\n"
                          "w-1,14\n"
                          "g-1,0\n"
                          "b-1,250\n"
                          "t-1,3\n"));

  metadata::Catalog catalog;
  Check(catalog.RegisterSource(
      std::make_unique<connector::RelationalConnector>("catalog_db",
                                                       &products_db)));
  Check(catalog.RegisterSource(std::move(inventory)));

  // ---- Mediated schema the site is built against --------------------------------
  Check(catalog.DefineView("storefront", R"(
    WHERE <products><row><sku>$sku</sku><title>$t</title><price>$p</price>
          <category>$c</category></row></products> IN "catalog_db:products",
          <stock><row><sku>$sku</sku><on_hand>$oh</on_hand></row></stock>
          IN "warehouse:stock",
          $oh > 0
    CONSTRUCT <item sku=$sku><title>$t</title><price>$p</price>
              <category>$c</category><in_stock>$oh</in_stock></item>
  )", "sellable items with live inventory"));

  // ---- Front end -----------------------------------------------------------------
  frontend::LoadBalancer balancer(frontend::BalancePolicy::kRoundRobin);
  for (int i = 0; i < 2; ++i) {
    balancer.AddEngine(std::make_unique<core::IntegrationEngine>(&catalog));
  }
  VirtualClock clock;
  materialize::ResultCache cache(/*max_bytes=*/1 << 20, /*ttl_micros=*/0,
                                 &clock);
  frontend::AuthRegistry auth;
  auth.GrantAccess("price-team-token", "pricing", {"price_export"});
  frontend::LensService lenses(&balancer, &cache, &auth);

  // Public web lens: HTML for the site.
  frontend::Lens category_page;
  category_page.name = "category_page";
  category_page.query_template = R"(
    WHERE <results><item sku=$s><title>$t</title><price>$p</price>
          <category>{category}</category><in_stock>$oh</in_stock></item>
          </results> IN storefront
    CONSTRUCT <product><title>$t</title><price>$p</price>
              <available>$oh</available></product>
    ORDER BY $p
  )";
  category_page.default_parameters = {{"category", "tools"}};
  category_page.format = frontend::TargetFormat::kHtml;
  Check(lenses.RegisterLens(category_page));

  // Wireless-device lens: compact text.
  frontend::Lens mobile = category_page;
  mobile.name = "category_mobile";
  mobile.format = frontend::TargetFormat::kText;
  Check(lenses.RegisterLens(mobile));

  // Authenticated export lens: CSV for the pricing team.
  frontend::Lens price_export = category_page;
  price_export.name = "price_export";
  price_export.format = frontend::TargetFormat::kCsv;
  price_export.require_auth = true;
  Check(lenses.RegisterLens(price_export));

  // ---- Serve pages ------------------------------------------------------------------
  std::printf("== /tools (HTML, web) ==\n");
  Result<frontend::LensResult> page = lenses.Invoke("category_page");
  Check(page);
  std::printf("%s\n\n", page->body.c_str());

  std::printf("== /gifts (text, wireless device) ==\n");
  Result<frontend::LensResult> wireless =
      lenses.Invoke("category_mobile", {{"category", "gifts"}});
  Check(wireless);
  std::printf("%s\n", wireless->body.c_str());

  std::printf("== /tools again (cache) ==\n");
  Result<frontend::LensResult> again = lenses.Invoke("category_page");
  Check(again);
  std::printf("served_from_cache=%s; cache hit rate %.0f%%\n\n",
              again->served_from_cache ? "true" : "false",
              cache.stats().HitRate() * 100);

  std::printf("== price export without a token ==\n");
  Result<frontend::LensResult> denied = lenses.Invoke("price_export");
  std::printf("%s\n\n", denied.ok() ? "unexpectedly allowed!"
                                    : denied.status().ToString().c_str());

  std::printf("== price export with the pricing team token ==\n");
  Result<frontend::LensResult> csv =
      lenses.Invoke("price_export", {}, "price-team-token");
  Check(csv);
  std::printf("%s\n", csv->body.c_str());

  // ---- Materialize the storefront view for performance (§3.3) -------------------------
  core::IntegrationEngine loader(&catalog);
  materialize::MaterializedViewStore store(&catalog, &loader, &clock);
  Check(store.Materialize("storefront"));
  Result<core::QueryResult> local = store.Query("storefront");
  Check(local);
  std::printf("== materialized storefront serve ==\n");
  std::printf("%zu items, %zu rows shipped (local copy), storage cost %zu "
              "nodes\n",
              local->report.result_count, local->report.rows_shipped,
              store.StorageCost());

  // Inventory changes; the on-stale policy refreshes transparently.
  Check(
      products_db.Execute("UPDATE products SET price = 9.5 WHERE sku = 'g-1'"));
  Result<core::QueryResult> refreshed = store.Query("storefront");
  Check(refreshed);
  std::printf("after a price change: refreshes=%zu, stale_serves=%zu\n",
              store.stats().refreshes, store.stats().stale_serves);
  return 0;
}
