// Edge-case coverage for the relational substrate beyond the main suite:
// expression corner cases, error paths, DDL details, and executor
// interactions that the mediator relies on.

#include <gtest/gtest.h>

#include "relational/database.h"
#include "relational/sql_parser.h"

namespace nimble {
namespace relational {
namespace {

class RelationalEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Exec("CREATE TABLE t (a INT, b DOUBLE, s TEXT, f BOOL)");
    Exec("INSERT INTO t VALUES (1, 1.5, 'x', TRUE), (2, -2.5, 'y', FALSE), "
         "(3, 0.0, '', TRUE)");
  }

  ResultSet Exec(const std::string& sql) {
    Result<ResultSet> r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(*r) : ResultSet{};
  }
  Status ExecError(const std::string& sql) {
    Result<ResultSet> r = db_.Execute(sql);
    EXPECT_FALSE(r.ok()) << sql << " unexpectedly succeeded";
    return r.ok() ? Status::OK() : r.status();
  }

  Database db_{"edge"};
};

// ---- Expressions ---------------------------------------------------------------

TEST_F(RelationalEdgeTest, ArithmeticMixesIntAndDouble) {
  ResultSet rs = Exec("SELECT a + b, a * 2, a - b FROM t WHERE a = 1");
  EXPECT_EQ(rs.rows[0][0], Value::Double(2.5));
  EXPECT_EQ(rs.rows[0][1], Value::Int(2));
  EXPECT_EQ(rs.rows[0][2], Value::Double(-0.5));
}

TEST_F(RelationalEdgeTest, IntegerModuloAndDivision) {
  Exec("CREATE TABLE n (x INT)");
  Exec("INSERT INTO n VALUES (7)");
  ResultSet rs = Exec("SELECT x % 3, x / 2 FROM n");
  EXPECT_EQ(rs.rows[0][0], Value::Int(1));
  // '/' always produces a double (avoids silent truncation surprises).
  EXPECT_EQ(rs.rows[0][1], Value::Double(3.5));
}

TEST_F(RelationalEdgeTest, DivisionByZeroIsAnError) {
  EXPECT_EQ(ExecError("SELECT a / 0 FROM t").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ExecError("SELECT a % 0 FROM t WHERE a = 1").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(RelationalEdgeTest, StringConcatenationViaPlus) {
  ResultSet rs = Exec("SELECT s + '!' FROM t WHERE a = 1");
  EXPECT_EQ(rs.rows[0][0], Value::String("x!"));
  // Number + string concatenates too (string side wins).
  rs = Exec("SELECT a + s FROM t WHERE a = 1");
  EXPECT_EQ(rs.rows[0][0], Value::String("1x"));
}

TEST_F(RelationalEdgeTest, UnaryMinusAndNot) {
  ResultSet rs = Exec("SELECT -a, -b, NOT f FROM t WHERE a = 2");
  EXPECT_EQ(rs.rows[0][0], Value::Int(-2));
  EXPECT_EQ(rs.rows[0][1], Value::Double(2.5));
  EXPECT_EQ(rs.rows[0][2], Value::Bool(true));
}

TEST_F(RelationalEdgeTest, BooleanColumnInWhere) {
  EXPECT_EQ(Exec("SELECT a FROM t WHERE f = TRUE").rows.size(), 2u);
  EXPECT_EQ(Exec("SELECT a FROM t WHERE NOT f").rows.size(), 1u);
}

TEST_F(RelationalEdgeTest, NullPropagationInArithmetic) {
  Exec("INSERT INTO t (a) VALUES (9)");
  ResultSet rs = Exec("SELECT a + b, s + '!' FROM t WHERE a = 9");
  EXPECT_TRUE(rs.rows[0][0].is_null());
  EXPECT_TRUE(rs.rows[0][1].is_null());
}

TEST_F(RelationalEdgeTest, ComparisonPrecedenceWithLogic) {
  // AND binds tighter than OR.
  ResultSet rs =
      Exec("SELECT a FROM t WHERE a = 1 OR a = 2 AND b < 0 ORDER BY a");
  ASSERT_EQ(rs.rows.size(), 2u);  // 1 (lhs of OR) and 2 (both AND legs)
}

TEST_F(RelationalEdgeTest, ScalarFunctionsOnNull) {
  Exec("INSERT INTO t (a) VALUES (10)");
  ResultSet rs = Exec("SELECT UPPER(s), LENGTH(s), ABS(b) FROM t WHERE a = 10");
  EXPECT_TRUE(rs.rows[0][0].is_null());
  EXPECT_TRUE(rs.rows[0][1].is_null());
  EXPECT_TRUE(rs.rows[0][2].is_null());
}

// ---- Aggregation edges ------------------------------------------------------------

TEST_F(RelationalEdgeTest, GroupByExpression) {
  ResultSet rs = Exec(
      "SELECT a % 2, COUNT(*) AS n FROM t GROUP BY a % 2 ORDER BY n DESC");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][1], Value::Int(2));  // odd a: 1, 3
}

TEST_F(RelationalEdgeTest, HavingWithoutAlias) {
  ResultSet rs = Exec(
      "SELECT f, SUM(b) AS total FROM t GROUP BY f HAVING SUM(b) > 0");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Bool(true));
}

TEST_F(RelationalEdgeTest, SumOfIntsStaysInt) {
  Exec("CREATE TABLE i (x INT)");
  Exec("INSERT INTO i VALUES (1), (2), (3)");
  ResultSet rs = Exec("SELECT SUM(x) FROM i");
  EXPECT_EQ(rs.rows[0][0], Value::Int(6));
}

TEST_F(RelationalEdgeTest, MinMaxOnStrings) {
  ResultSet rs = Exec("SELECT MIN(s), MAX(s) FROM t WHERE s != ''");
  EXPECT_EQ(rs.rows[0][0], Value::String("x"));
  EXPECT_EQ(rs.rows[0][1], Value::String("y"));
}

// ---- DDL / DML edges ---------------------------------------------------------------

TEST_F(RelationalEdgeTest, VarcharSizeAccepted) {
  Exec("CREATE TABLE v (name VARCHAR(32), note TEXT)");
  Exec("INSERT INTO v VALUES ('hi', 'there')");
  EXPECT_EQ(Exec("SELECT * FROM v").rows.size(), 1u);
}

TEST_F(RelationalEdgeTest, NotNullEnforced) {
  Exec("CREATE TABLE r (k INT NOT NULL, v TEXT)");
  EXPECT_EQ(ExecError("INSERT INTO r VALUES (NULL, 'x')").code(),
            StatusCode::kInvalidArgument);
  Exec("INSERT INTO r (k) VALUES (1)");  // v nullable
}

TEST_F(RelationalEdgeTest, DuplicateTableAndIndexRejected) {
  EXPECT_EQ(ExecError("CREATE TABLE t (z INT)").code(),
            StatusCode::kAlreadyExists);
  Exec("CREATE INDEX idx_a ON t (a)");
  EXPECT_EQ(ExecError("CREATE INDEX idx_a ON t (a)").code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(ExecError("CREATE INDEX idx_z ON t (zzz)").code(),
            StatusCode::kNotFound);
}

TEST_F(RelationalEdgeTest, InsertColumnSubsetFillsNulls) {
  Exec("INSERT INTO t (s, a) VALUES ('partial', 42)");
  ResultSet rs = Exec("SELECT a, b, s, f FROM t WHERE a = 42");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_TRUE(rs.rows[0][1].is_null());
  EXPECT_TRUE(rs.rows[0][3].is_null());
  EXPECT_EQ(rs.rows[0][2], Value::String("partial"));
}

TEST_F(RelationalEdgeTest, UpdateTypeErrorSurfaces) {
  EXPECT_EQ(ExecError("UPDATE t SET a = 'oops'").code(),
            StatusCode::kTypeError);
}

TEST_F(RelationalEdgeTest, DeleteWithErrorPredicate) {
  EXPECT_EQ(ExecError("DELETE FROM t WHERE zzz = 1").code(),
            StatusCode::kNotFound);
  // Nothing deleted by the failed statement.
  EXPECT_EQ(Exec("SELECT * FROM t").rows.size(), 3u);
}

TEST_F(RelationalEdgeTest, NegativeLiteralsInInsert) {
  Exec("CREATE TABLE neg (x INT, y DOUBLE)");
  Exec("INSERT INTO neg VALUES (-5, -2.75)");
  ResultSet rs = Exec("SELECT x, y FROM neg");
  EXPECT_EQ(rs.rows[0][0], Value::Int(-5));
  EXPECT_EQ(rs.rows[0][1], Value::Double(-2.75));
}

TEST_F(RelationalEdgeTest, QuotedStringEscapes) {
  Exec("INSERT INTO t (a, s) VALUES (77, 'O''Brien')");
  ResultSet rs = Exec("SELECT s FROM t WHERE a = 77");
  EXPECT_EQ(rs.rows[0][0], Value::String("O'Brien"));
}

TEST_F(RelationalEdgeTest, CommentsSkipped) {
  ResultSet rs = Exec(
      "SELECT a FROM t -- trailing comment\n WHERE a = 1 -- another\n");
  EXPECT_EQ(rs.rows.size(), 1u);
}

// ---- DISTINCT / ORDER interplay -----------------------------------------------------

TEST_F(RelationalEdgeTest, DistinctThenOrder) {
  Exec("INSERT INTO t VALUES (1, 1.5, 'x', TRUE)");  // duplicate row of a=1
  ResultSet rs = Exec("SELECT DISTINCT a, s FROM t ORDER BY a DESC");
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(3));
}

TEST_F(RelationalEdgeTest, OrderByRequiresProjectedKey) {
  EXPECT_EQ(ExecError("SELECT a FROM t ORDER BY b").code(),
            StatusCode::kInvalidArgument);
}

// ---- Index range probes --------------------------------------------------------------

TEST_F(RelationalEdgeTest, InvertedIndexRangeIsEmpty) {
  // Found by the XML-QL grammar fuzzer: contradictory bounds on an indexed
  // column (lo > hi) used to walk the index past its end and never return.
  Exec("CREATE TABLE k (a INT PRIMARY KEY)");
  Exec("INSERT INTO k VALUES (1), (2), (3)");
  EXPECT_EQ(Exec("SELECT a FROM k WHERE a <= 0 AND a >= 5").rows.size(), 0u);
  EXPECT_EQ(Exec("SELECT a FROM k WHERE a > 2 AND a < 2").rows.size(), 0u);
  EXPECT_EQ(Exec("SELECT a FROM k WHERE a >= 2 AND a < 2").rows.size(), 0u);
  // Degenerate-but-valid single-point range still answers.
  EXPECT_EQ(Exec("SELECT a FROM k WHERE a >= 2 AND a <= 2").rows.size(), 1u);
}

// ---- Stats fidelity ------------------------------------------------------------------

TEST_F(RelationalEdgeTest, RowsReturnedMatchesResult) {
  ResultSet rs = Exec("SELECT a FROM t WHERE a > 1");
  EXPECT_EQ(rs.stats.rows_returned, rs.rows.size());
  EXPECT_EQ(rs.stats.rows_scanned, 3u);
}

}  // namespace
}  // namespace relational
}  // namespace nimble
