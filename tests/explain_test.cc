#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "connector/hierarchical_connector.h"
#include "connector/relational_connector.h"
#include "connector/xml_connector.h"
#include "core/engine.h"

namespace nimble {
namespace core {
namespace {

/// Golden EXPLAIN snapshots: `ExecutionReport::plan` is the operator tree's
/// Describe() rendering, and these tests pin it for the representative query
/// shapes so plan regressions (join order, pushdown decisions, operator
/// placement) show up as a readable diff.
class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    crm_ = std::make_unique<relational::Database>("crm");
    Must(crm_->Execute("CREATE TABLE customers (id INT PRIMARY KEY, "
                       "name TEXT, city TEXT, segment TEXT)"));
    Must(crm_->Execute(
        "INSERT INTO customers VALUES (1, 'Ada Lovelace', 'Seattle', 'gold'), "
        "(2, 'Bob Barker', 'Portland', 'bronze'), "
        "(3, 'Cleo Patra', 'Seattle', 'gold'), "
        "(4, 'Dan Druff', 'Boise', 'silver')"));
    Must(crm_->Execute("CREATE INDEX idx_segment ON customers (segment)"));

    sales_ = std::make_unique<relational::Database>("sales");
    Must(sales_->Execute("CREATE TABLE orders (oid INT PRIMARY KEY, "
                         "cust INT, total DOUBLE, sku TEXT)"));
    Must(sales_->Execute("INSERT INTO orders VALUES "
                         "(100, 1, 250.0, 'widget'), (101, 1, 80.0, 'gizmo'), "
                         "(102, 3, 999.0, 'widget'), (103, 2, 5.0, 'gadget'), "
                         "(104, 9, 1.0, 'widget')"));

    auto products = std::make_unique<connector::XmlConnector>("feed");
    Must(products->PutDocumentText(
        "products",
        "<products>"
        "<product sku=\"widget\"><title>Widget Deluxe</title>"
        "<price>25.0</price></product>"
        "<product sku=\"gizmo\"><title>Gizmo</title><price>8.0</price>"
        "</product>"
        "<product sku=\"gadget\"><title>Gadget</title><price>1.0</price>"
        "</product>"
        "</products>"));

    org_ = std::make_unique<hierarchical::HStore>("org");
    Must(org_->Put("/corp/sales/ada",
                   {{"employee", Value::String("Ada Lovelace")},
                    {"role", Value::String("rep")}}));
    Must(org_->Put("/corp/sales/eve",
                   {{"employee", Value::String("Eve Adams")},
                    {"role", Value::String("manager")}}));

    catalog_ = std::make_unique<metadata::Catalog>();
    Must(catalog_->RegisterSource(
        std::make_unique<connector::RelationalConnector>("crm", crm_.get())));
    Must(catalog_->RegisterSource(
        std::make_unique<connector::RelationalConnector>("sales",
                                                         sales_.get())));
    Must(catalog_->RegisterSource(std::move(products)));
    auto org_conn = std::make_unique<connector::HierarchicalConnector>(
        "org", org_.get());
    org_conn->MapCollection("staff", "/corp");
    Must(catalog_->RegisterSource(std::move(org_conn)));
    Must(catalog_->DefineView(
        "gold_customers",
        "WHERE <customers><row><id>$i</id><name>$n</name>"
        "<segment>$s</segment></row></customers> IN \"crm:customers\", "
        "$s = 'gold' "
        "CONSTRUCT <gold><id>$i</id><name>$n</name></gold>"));

    EngineOptions opts;
    opts.verify_plans = true;
    engine_ = std::make_unique<IntegrationEngine>(catalog_.get(), opts);
  }

  void Must(const Status& s) { ASSERT_TRUE(s.ok()) << s.ToString(); }
  template <typename T>
  void Must(const Result<T>& r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  std::string PlanFor(const std::string& text) {
    Result<QueryResult> r = engine_->ExecuteText(text);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) return "<execution failed>";
    return r->report.plan;
  }

  std::unique_ptr<relational::Database> crm_;
  std::unique_ptr<relational::Database> sales_;
  std::unique_ptr<hierarchical::HStore> org_;
  std::unique_ptr<metadata::Catalog> catalog_;
  std::unique_ptr<IntegrationEngine> engine_;
};

TEST_F(ExplainTest, SelectionPushdown) {
  EXPECT_EQ(PlanFor("WHERE <customers><row><id>$i</id><name>$n</name>"
                    "<segment>$s</segment></row></customers> "
                    "IN \"crm:customers\", $s = 'gold' "
                    "CONSTRUCT <gold><name>$n</name></gold>"),
            "Scan(sql:crm:customers, 2 tuples) [$i, $n, $s]\n");
}

TEST_F(ExplainTest, CrossSourceJoinBindJoinsSecondFragment) {
  EXPECT_EQ(PlanFor("WHERE <customers><row><id>$c</id><name>$n</name></row>"
                    "</customers> IN \"crm:customers\", "
                    "<orders><row><cust>$c</cust><total>$t</total></row>"
                    "</orders> IN \"sales:orders\", $t > 100 "
                    "CONSTRUCT <big><name>$n</name><total>$t</total></big>"),
            "HashJoin($c) [$c, $n, $t]\n"
            "  Scan(sql:crm:customers, 4 tuples) [$c, $n]\n"
            "  Scan(sql+bind:sales:orders, 2 tuples) [$c, $t]\n");
}

TEST_F(ExplainTest, ThreeSourceJoinSmallestFirst) {
  EXPECT_EQ(PlanFor("WHERE <customers><row><id>$c</id><name>$n</name></row>"
                    "</customers> IN \"crm:customers\", "
                    "<orders><row><cust>$c</cust><sku>$k</sku></row></orders> "
                    "IN \"sales:orders\", "
                    "<products><product sku=$k><title>$ti</title></product>"
                    "</products> IN \"feed:products\" "
                    "CONSTRUCT <line><name>$n</name><title>$ti</title></line>"),
            "HashJoin($c) [$c, $n, $k, $ti]\n"
            "  Scan(sql:crm:customers, 4 tuples) [$c, $n]\n"
            // The cost model builds on the smaller (3-row) products side.
            "  HashJoin($k, build=left) [$k, $ti, $c]\n"
            "    Scan(fetch:feed:products, 3 tuples) [$k, $ti]\n"
            "    Scan(sql+bind:sales:orders, 4 tuples) [$c, $k]\n");
}

TEST_F(ExplainTest, AttributePatternFetchesAndFilters) {
  EXPECT_EQ(PlanFor("WHERE <products><product sku=$k><price>$p</price>"
                    "</product></products> IN \"feed:products\", $p < 10 "
                    "CONSTRUCT <cheap><sku>$k</sku></cheap>"),
            "Scan(fetch:feed:products, 2 tuples) [$k, $p]\n");
}

TEST_F(ExplainTest, DescendantAxisOverHierarchicalSource) {
  EXPECT_EQ(PlanFor("WHERE <//entry><employee>$e</employee><role>$r</role>"
                    "</entry> IN \"org:staff\", $r = 'manager' "
                    "CONSTRUCT <mgr><who>$e</who></mgr>"),
            "Scan(fetch:org:staff, 1 tuples) [$e, $r]\n");
}

TEST_F(ExplainTest, ElementAsBindsWholeElement) {
  EXPECT_EQ(PlanFor("WHERE <products><product ELEMENT_AS $pe><title>$ti"
                    "</title></product></products> IN \"feed:products\" "
                    "CONSTRUCT <copy>$pe</copy>"),
            "Scan(fetch:feed:products, 3 tuples) [$pe, $ti]\n");
}

TEST_F(ExplainTest, OrderByLimitAboveJoin) {
  EXPECT_EQ(PlanFor("WHERE <customers><row><id>$c</id><name>$n</name></row>"
                    "</customers> IN \"crm:customers\", "
                    "<orders><row><cust>$c</cust><total>$t</total></row>"
                    "</orders> IN \"sales:orders\" "
                    "CONSTRUCT <o><name>$n</name><total>$t</total></o> "
                    "ORDER BY $t DESC LIMIT 2"),
            "Limit(2) [$c, $n, $t]\n"
            "  Sort [$c, $n, $t]\n"
            "    HashJoin($c) [$c, $n, $t]\n"
            "      Scan(sql:crm:customers, 4 tuples) [$c, $n]\n"
            "      Scan(sql+bind:sales:orders, 4 tuples) [$c, $t]\n");
}

TEST_F(ExplainTest, TopPushdownSingleFragment) {
  // The LIMIT is pushed into the SQL fragment (3 tuples shipped), but the
  // mediator keeps its own Sort+Limit for the final ordering guarantee.
  EXPECT_EQ(PlanFor("WHERE <customers><row><id>$i</id><name>$n</name></row>"
                    "</customers> IN \"crm:customers\" "
                    "CONSTRUCT <c><name>$n</name></c> ORDER BY $i LIMIT 3"),
            "Limit(3) [$i, $n]\n"
            "  Sort [$i, $n]\n"
            "    Scan(sql:crm:customers, 3 tuples) [$i, $n]\n");
}

TEST_F(ExplainTest, UnionProgramRendersEveryBranch) {
  EXPECT_EQ(PlanFor("WHERE <customers><row><name>$n</name><segment>$s"
                    "</segment></row></customers> IN \"crm:customers\", "
                    "$s = 'gold' "
                    "CONSTRUCT <hit><name>$n</name></hit> "
                    "UNION "
                    "WHERE <products><product><title>$n</title></product>"
                    "</products> IN \"feed:products\" "
                    "CONSTRUCT <hit><name>$n</name></hit>"),
            "-- branch 0 --\n"
            "Scan(sql:crm:customers, 2 tuples) [$n, $s]\n"
            "\n"
            "-- branch 1 --\n"
            "Scan(fetch:feed:products, 3 tuples) [$n]\n");
}

TEST_F(ExplainTest, AggregationGroupBy) {
  EXPECT_EQ(PlanFor("WHERE <orders><row><cust>$c</cust><total>$t</total>"
                    "</row></orders> IN \"sales:orders\" "
                    "CONSTRUCT <spend><cust>$c</cust><n>count($t)</n></spend> "
                    "GROUP BY $c"),
            "HashAggregate [$c, $count_t]\n"
            "  Scan(sql:sales:orders, 5 tuples) [$c, $t]\n");
}

TEST_F(ExplainTest, ViewExpansionScan) {
  EXPECT_EQ(PlanFor("WHERE <results><gold><id>$i</id><name>$n</name></gold>"
                    "</results> IN \"gold_customers\" "
                    "CONSTRUCT <vip><name>$n</name></vip>"),
            "Scan(view:gold_customers, 2 tuples) [$i, $n]\n");
}

// `plan_with_stats` is the same tree annotated with the optimizer's
// est_rows and post-execution batch counters: at the default batch size
// every operator here produces its whole result in one batch. Without
// catalog statistics the estimates fall back to materialized sizes.
TEST_F(ExplainTest, PlanWithStatsAnnotatesBatchCounters) {
  Result<QueryResult> r = engine_->ExecuteText(
      "WHERE <customers><row><id>$c</id><name>$n</name></row>"
      "</customers> IN \"crm:customers\", "
      "<orders><row><cust>$c</cust><total>$t</total></row>"
      "</orders> IN \"sales:orders\", $t > 100 "
      "CONSTRUCT <big><name>$n</name><total>$t</total></big>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->report.plan_with_stats,
            "HashJoin($c) [$c, $n, $t] {est_rows=2, batches=1, rows=2}\n"
            "  Scan(sql:crm:customers, 4 tuples) [$c, $n] "
            "{est_rows=4, batches=1, rows=4}\n"
            "  Scan(sql+bind:sales:orders, 2 tuples) [$c, $t] "
            "{est_rows=2, batches=1, rows=2}\n");
}

// Shrinking EngineOptions::batch_size changes batch accounting but never
// results: the same scan now produces one batch per row.
TEST_F(ExplainTest, BatchSizeOptionControlsBatchCount) {
  EngineOptions opts;
  opts.verify_plans = true;
  opts.batch_size = 1;
  IntegrationEngine tiny(catalog_.get(), opts);
  Result<QueryResult> r = tiny.ExecuteText(
      "WHERE <customers><row><id>$i</id><name>$n</name>"
      "<segment>$s</segment></row></customers> "
      "IN \"crm:customers\", $s = 'gold' "
      "CONSTRUCT <gold><name>$n</name></gold>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->report.result_count, 2u);
  EXPECT_EQ(r->report.plan_with_stats,
            "Scan(sql:crm:customers, 2 tuples) [$i, $n, $s] "
            "{est_rows=2, batches=2, rows=2}\n");
}

}  // namespace
}  // namespace core
}  // namespace nimble
