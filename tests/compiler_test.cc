#include <gtest/gtest.h>

#include "core/fragmenter.h"
#include "core/sql_generator.h"
#include "xmlql/parser.h"

namespace nimble {
namespace core {
namespace {

xmlql::Query MustParse(const std::string& text) {
  Result<xmlql::Query> q = xmlql::ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  if (!q.ok()) std::abort();
  return std::move(*q);
}

connector::SourceCapabilities SqlCaps() {
  connector::SourceCapabilities caps;
  caps.supports_sql = true;
  caps.supports_predicates = true;
  return caps;
}

// ---- Fragmenter ------------------------------------------------------------------

TEST(FragmenterTest, SplitsByPattern) {
  xmlql::Query q = MustParse(R"(
    WHERE <a><r><x>$x</x></r></a> IN "s1:a",
          <b><r><y>$y</y></r></b> IN "s2:b",
          $x = 1, $y = 2, $x = $y
    CONSTRUCT <o>$x</o>
  )");
  Fragmentation f = FragmentQuery(q);
  ASSERT_EQ(f.fragments.size(), 2u);
  // $x = 1 is local to fragment 0, $y = 2 to fragment 1, $x = $y crosses.
  EXPECT_EQ(f.fragments[0].local_conditions.size(), 1u);
  EXPECT_EQ(f.fragments[1].local_conditions.size(), 1u);
  ASSERT_EQ(f.cross_conditions.size(), 1u);
  EXPECT_EQ(f.cross_conditions[0]->rhs.variable, "y");
}

TEST(FragmenterTest, SharedVariableConditionIsLocalWhereCovered) {
  xmlql::Query q = MustParse(R"(
    WHERE <a><r><x>$x</x><z>$z</z></r></a> IN "s1:a",
          $x < $z
    CONSTRUCT <o>$x</o>
  )");
  Fragmentation f = FragmentQuery(q);
  EXPECT_EQ(f.fragments[0].local_conditions.size(), 1u);
  EXPECT_TRUE(f.cross_conditions.empty());
}

// ---- SQL generation ----------------------------------------------------------------

TEST(SqlGeneratorTest, SimpleProjection) {
  xmlql::Query q = MustParse(R"(
    WHERE <customers><row><id>$i</id><name>$n</name></row></customers>
          IN "crm:customers"
    CONSTRUCT <o>$n</o>
  )");
  Fragmentation f = FragmentQuery(q);
  Result<SqlTranslation> t =
      TranslateFragmentToSql(f.fragments[0], SqlCaps(), true);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->sql, "SELECT id, name FROM customers");
  EXPECT_EQ(t->variables, (std::vector<std::string>{"i", "n"}));
}

TEST(SqlGeneratorTest, PushesLocalPredicates) {
  xmlql::Query q = MustParse(R"(
    WHERE <c><row><id>$i</id><bal>$b</bal></row></c> IN "crm:c",
          $b > 100, $b <= 500, $i != 3
    CONSTRUCT <o>$i</o>
  )");
  Fragmentation f = FragmentQuery(q);
  Result<SqlTranslation> t =
      TranslateFragmentToSql(f.fragments[0], SqlCaps(), true);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->pushed_conditions.size(), 3u);
  EXPECT_NE(t->sql.find("(bal > 100)"), std::string::npos);
  EXPECT_NE(t->sql.find("(bal <= 500)"), std::string::npos);
  EXPECT_NE(t->sql.find("(id != 3)"), std::string::npos);
}

TEST(SqlGeneratorTest, PushdownDisabledKeepsPredicatesLocal) {
  xmlql::Query q = MustParse(R"(
    WHERE <c><row><id>$i</id></row></c> IN "crm:c", $i = 1
    CONSTRUCT <o>$i</o>
  )");
  Fragmentation f = FragmentQuery(q);
  Result<SqlTranslation> t =
      TranslateFragmentToSql(f.fragments[0], SqlCaps(), false);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->pushed_conditions.empty());
  EXPECT_EQ(t->sql, "SELECT id FROM c");
}

TEST(SqlGeneratorTest, LiteralFieldBecomesEquality) {
  xmlql::Query q = MustParse(R"(
    WHERE <c><row><status>open</status><id>$i</id></row></c> IN "crm:c"
    CONSTRUCT <o>$i</o>
  )");
  Fragmentation f = FragmentQuery(q);
  Result<SqlTranslation> t =
      TranslateFragmentToSql(f.fragments[0], SqlCaps(), true);
  ASSERT_TRUE(t.ok());
  EXPECT_NE(t->sql.find("(status = 'open')"), std::string::npos);
}

TEST(SqlGeneratorTest, RepeatedVariableBecomesColumnEquality) {
  xmlql::Query q = MustParse(R"(
    WHERE <c><row><a>$x</a><b>$x</b></row></c> IN "crm:c"
    CONSTRUCT <o>$x</o>
  )");
  Fragmentation f = FragmentQuery(q);
  Result<SqlTranslation> t =
      TranslateFragmentToSql(f.fragments[0], SqlCaps(), true);
  ASSERT_TRUE(t.ok());
  EXPECT_NE(t->sql.find("(a = b)"), std::string::npos);
  // Only one output column for $x.
  EXPECT_EQ(t->variables.size(), 1u);
}

TEST(SqlGeneratorTest, LikePushdown) {
  xmlql::Query q = MustParse(R"(
    WHERE <c><row><name>$n</name></row></c> IN "crm:c", $n LIKE 'A%'
    CONSTRUCT <o>$n</o>
  )");
  Fragmentation f = FragmentQuery(q);
  Result<SqlTranslation> t =
      TranslateFragmentToSql(f.fragments[0], SqlCaps(), true);
  ASSERT_TRUE(t.ok());
  EXPECT_NE(t->sql.find("LIKE 'A%'"), std::string::npos);
}

TEST(SqlGeneratorTest, IndexAwareness) {
  xmlql::Query q = MustParse(R"(
    WHERE <c><row><id>$i</id></row></c> IN "crm:c", $i = 7
    CONSTRUCT <o>$i</o>
  )");
  Fragmentation f = FragmentQuery(q);
  connector::SourceCapabilities caps = SqlCaps();
  caps.indexed_columns.emplace_back("c", "id");
  Result<SqlTranslation> with_index =
      TranslateFragmentToSql(f.fragments[0], caps, true);
  ASSERT_TRUE(with_index.ok());
  EXPECT_TRUE(with_index->predicate_hits_index);
  Result<SqlTranslation> without_index =
      TranslateFragmentToSql(f.fragments[0], SqlCaps(), true);
  ASSERT_TRUE(without_index.ok());
  EXPECT_FALSE(without_index->predicate_hits_index);
}

TEST(SqlGeneratorTest, StringLiteralsQuoted) {
  // XML-QL double-quoted literal containing a single quote: the generated
  // SQL must re-escape it by doubling.
  xmlql::Query q = MustParse(
      "WHERE <c><row><name>$n</name></row></c> IN \"crm:c\", "
      "$n = \"O'Brien\" CONSTRUCT <o>$n</o>");
  Fragmentation f = FragmentQuery(q);
  Result<SqlTranslation> t =
      TranslateFragmentToSql(f.fragments[0], SqlCaps(), true);
  ASSERT_TRUE(t.ok());
  EXPECT_NE(t->sql.find("(name = 'O''Brien')"), std::string::npos);
}

// ---- Shapes that must NOT translate -------------------------------------------------

class NotTableShaped : public ::testing::TestWithParam<const char*> {};

TEST_P(NotTableShaped, FallsBackToFetch) {
  xmlql::Query q = MustParse(GetParam());
  Fragmentation f = FragmentQuery(q);
  Result<SqlTranslation> t =
      TranslateFragmentToSql(f.fragments[0], SqlCaps(), true);
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kUnsupported);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, NotTableShaped,
    ::testing::Values(
        // nested field
        "WHERE <c><row><addr><zip>$z</zip></addr></row></c> IN \"s:c\" "
        "CONSTRUCT <o>$z</o>",
        // attribute binding
        "WHERE <c><row id=$i><v>$v</v></row></c> IN \"s:c\" "
        "CONSTRUCT <o>$v</o>",
        // descendant root
        "WHERE <//row><v>$v</v></row> IN \"s:c\" CONSTRUCT <o>$v</o>",
        // ELEMENT_AS
        "WHERE <c><row ELEMENT_AS $e><v>$v</v></row></c> IN \"s:c\" "
        "CONSTRUCT <o>$v</o>",
        // two record-level patterns
        "WHERE <c><row><v>$v</v></row><row><w>$w</w></row></c> IN \"s:c\" "
        "CONSTRUCT <o>$v</o>",
        // wildcard record
        "WHERE <c><*><v>$v</v></*></c> IN \"s:c\" CONSTRUCT <o>$v</o>"));

TEST(SqlGeneratorTest, NonSqlSourceUnsupported) {
  xmlql::Query q = MustParse(
      "WHERE <c><row><v>$v</v></row></c> IN \"s:c\" CONSTRUCT <o>$v</o>");
  Fragmentation f = FragmentQuery(q);
  connector::SourceCapabilities caps;  // no SQL
  EXPECT_EQ(TranslateFragmentToSql(f.fragments[0], caps, true).status().code(),
            StatusCode::kUnsupported);
}

}  // namespace
}  // namespace core
}  // namespace nimble
