#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "algebra/operators.h"
#include "common/rng.h"
#include "core/engine.h"
#include "query_generator.h"
#include "xml/serializer.h"

namespace nimble {
namespace core {
namespace {

/// Differential property tests for the vectorized execution core: the same
/// plan must produce the same rows in the same order regardless of
/// (a) batch size — including the degenerate size 1, which exercises every
/// operator's cross-batch resume state — and (b) whether the consumer
/// drains batches via NextBatch() or rows via the thin Next() adapter.
/// Divergence at any swept size is a vectorization bug by definition.

constexpr size_t kBatchSizes[] = {1, 3, 1024};

// ---- Hand-built plan shapes (the algebra_test menagerie) -----------------

using algebra::Binding;
using algebra::BoundCondition;
using algebra::Operator;
using algebra::Tuple;
using algebra::TupleSchema;

std::unique_ptr<algebra::MaterializedScan> MakeScanPtr(
    std::vector<std::string> vars, std::vector<std::vector<Value>> rows) {
  TupleSchema schema(std::move(vars));
  std::vector<Tuple> tuples;
  for (auto& row : rows) {
    Tuple t;
    for (Value& v : row) t.emplace_back(Binding{std::move(v)});
    tuples.push_back(std::move(t));
  }
  return std::make_unique<algebra::MaterializedScan>(std::move(schema),
                                                     std::move(tuples));
}

xmlql::Condition MakeCondition(const std::string& lhs_var,
                               xmlql::Condition::Op op, Value rhs) {
  xmlql::Condition cond;
  cond.op = op;
  cond.lhs.is_variable = true;
  cond.lhs.variable = lhs_var;
  cond.rhs.literal = std::move(rhs);
  return cond;
}

/// The seven operator kinds plus a deep composite, as factories so each
/// (batch size × drain mode) run gets a fresh tree.
struct PlanShape {
  const char* name;
  std::unique_ptr<Operator> (*make)();
};

std::unique_ptr<Operator> ShapeScan() {
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < 10; ++i) {
    rows.push_back({Value::Int(i), Value::String(i % 2 ? "odd" : "even")});
  }
  return MakeScanPtr({"x", "p"}, std::move(rows));
}

std::unique_ptr<Operator> ShapeFilter() {
  auto scan = ShapeScan();
  xmlql::Condition cond =
      MakeCondition("x", xmlql::Condition::Op::kGt, Value::Int(3));
  Result<BoundCondition> bc = BoundCondition::Bind(cond, scan->schema());
  EXPECT_TRUE(bc.ok());
  return std::make_unique<algebra::Filter>(
      std::move(scan), std::vector<BoundCondition>{*bc});
}

std::unique_ptr<Operator> ShapeHashJoin() {
  std::vector<std::vector<Value>> left, right;
  for (int i = 0; i < 12; ++i) {
    left.push_back({Value::Int(i % 5), Value::Int(i)});
    right.push_back({Value::Int(i % 7), Value::String("r" + std::to_string(i))});
  }
  return std::make_unique<algebra::HashJoin>(
      MakeScanPtr({"k", "l"}, std::move(left)),
      MakeScanPtr({"k", "r"}, std::move(right)));
}

std::unique_ptr<Operator> ShapeNestedLoopJoin() {
  auto left = MakeScanPtr(
      {"a"}, {{Value::Int(1)}, {Value::Int(5)}, {Value::Int(8)}});
  auto right = MakeScanPtr(
      {"b"}, {{Value::Int(2)}, {Value::Int(4)}, {Value::Int(9)}});
  TupleSchema joined = TupleSchema({"a"}).Merge(TupleSchema({"b"}));
  xmlql::Condition cond;
  cond.op = xmlql::Condition::Op::kLt;
  cond.lhs.is_variable = true;
  cond.lhs.variable = "a";
  cond.rhs.is_variable = true;
  cond.rhs.variable = "b";
  Result<BoundCondition> bc = BoundCondition::Bind(cond, joined);
  EXPECT_TRUE(bc.ok());
  return std::make_unique<algebra::NestedLoopJoin>(
      std::move(left), std::move(right), std::vector<BoundCondition>{*bc});
}

std::unique_ptr<Operator> ShapeSort() {
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < 9; ++i) {
    rows.push_back({Value::String(i % 3 == 0 ? "b" : "a"), Value::Int(9 - i)});
  }
  return std::make_unique<algebra::Sort>(
      MakeScanPtr({"g", "v"}, std::move(rows)),
      std::vector<algebra::Sort::Key>{{0, false}, {1, true}});
}

std::unique_ptr<Operator> ShapeLimit() {
  return std::make_unique<algebra::Limit>(ShapeScan(), 4);
}

std::unique_ptr<Operator> ShapeAggregate() {
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < 11; ++i) {
    rows.push_back({Value::String(i % 2 ? "odd" : "even"), Value::Int(i)});
  }
  return std::make_unique<algebra::HashAggregate>(
      MakeScanPtr({"g", "v"}, std::move(rows)),
      std::vector<std::string>{"g"},
      std::vector<algebra::HashAggregate::Spec>{
          {algebra::HashAggregate::Fn::kCount, "", "n"},
          {algebra::HashAggregate::Fn::kSum, "v", "total"},
          {algebra::HashAggregate::Fn::kMin, "v", "lo"},
          {algebra::HashAggregate::Fn::kMax, "v", "hi"}});
}

/// Join under filter under sort under limit: batch boundaries from the
/// join land mid-pipeline in every downstream operator.
std::unique_ptr<Operator> ShapeComposite() {
  auto join = ShapeHashJoin();
  xmlql::Condition cond =
      MakeCondition("l", xmlql::Condition::Op::kLt, Value::Int(10));
  Result<BoundCondition> bc = BoundCondition::Bind(cond, join->schema());
  EXPECT_TRUE(bc.ok());
  auto filter = std::make_unique<algebra::Filter>(
      std::move(join), std::vector<BoundCondition>{*bc});
  auto sort = std::make_unique<algebra::Sort>(
      std::move(filter), std::vector<algebra::Sort::Key>{{0, false}});
  return std::make_unique<algebra::Limit>(std::move(sort), 7);
}

constexpr PlanShape kShapes[] = {
    {"scan", ShapeScan},         {"filter", ShapeFilter},
    {"hash_join", ShapeHashJoin}, {"nested_loop", ShapeNestedLoopJoin},
    {"sort", ShapeSort},         {"limit", ShapeLimit},
    {"aggregate", ShapeAggregate}, {"composite", ShapeComposite},
};

std::string RenderTuple(const TupleSchema& schema, const Tuple& tuple) {
  std::string s;
  for (size_t i = 0; i < tuple.size(); ++i) {
    s += schema.variables()[i] + "=" + tuple[i].AsScalar().ToString() + ";";
  }
  return s;
}

/// Drains `op` via NextBatch(), rendering each row in arrival order.
std::vector<std::string> DrainBatches(Operator* op) {
  std::vector<std::string> out;
  EXPECT_TRUE(op->Open().ok());
  while (true) {
    Result<std::optional<algebra::TupleBatch>> batch = op->NextBatch();
    EXPECT_TRUE(batch.ok()) << batch.status().ToString();
    if (!batch.ok() || !batch->has_value()) break;
    EXPECT_LE((*batch)->size(), op->batch_size());
    for (size_t i = 0; i < (*batch)->size(); ++i) {
      out.push_back(RenderTuple(op->schema(), (*batch)->MaterializeTuple(i)));
    }
  }
  op->Close();
  return out;
}

/// Drains `op` one row at a time through the Next() adapter.
std::vector<std::string> DrainRows(Operator* op) {
  std::vector<std::string> out;
  EXPECT_TRUE(op->Open().ok());
  while (true) {
    Result<std::optional<Tuple>> tuple = op->Next();
    EXPECT_TRUE(tuple.ok()) << tuple.status().ToString();
    if (!tuple.ok() || !tuple->has_value()) break;
    out.push_back(RenderTuple(op->schema(), **tuple));
  }
  op->Close();
  return out;
}

TEST(BatchDifferentialTest, PlanShapesAgreeAcrossBatchSizesAndDrainModes) {
  for (const PlanShape& shape : kShapes) {
    // Reference: batch drain at the default (largest swept) size.
    std::unique_ptr<Operator> ref_plan = shape.make();
    ref_plan->SetBatchSize(1024);
    const std::vector<std::string> reference = DrainBatches(ref_plan.get());
    EXPECT_FALSE(reference.empty()) << shape.name << ": vacuous shape";

    for (size_t batch_size : kBatchSizes) {
      std::unique_ptr<Operator> batched = shape.make();
      batched->SetBatchSize(batch_size);
      EXPECT_EQ(DrainBatches(batched.get()), reference)
          << shape.name << " diverges at batch_size=" << batch_size
          << " (batch drain)";

      std::unique_ptr<Operator> rowed = shape.make();
      rowed->SetBatchSize(batch_size);
      EXPECT_EQ(DrainRows(rowed.get()), reference)
          << shape.name << " diverges at batch_size=" << batch_size
          << " (row adapter)";
    }
  }
}

// ---- Whole-engine differential over generated programs -------------------

/// Runs generated XML-QL programs through engines configured at each swept
/// batch size; outcome (status code) and serialized result document must be
/// identical everywhere. Reuses the grammar fuzzer's generator so any
/// fuzzer repro (NIMBLE_FUZZ_SEED/NIMBLE_FUZZ_ITERS) replays here.
TEST(BatchDifferentialTest, GeneratedProgramsAgreeAcrossEngineBatchSizes) {
  testgen::GeneratorFixture fixture = testgen::MakeGeneratorFixture();
  ASSERT_NE(fixture.catalog, nullptr) << "generator fixture setup failed";

  std::vector<std::unique_ptr<IntegrationEngine>> engines;
  for (size_t batch_size : kBatchSizes) {
    EngineOptions opts;
    opts.verify_plans = true;
    opts.batch_size = batch_size;
    engines.push_back(
        std::make_unique<IntegrationEngine>(fixture.catalog.get(), opts));
  }

  Rng rng(testgen::FuzzSeed());
  const size_t iters = testgen::FuzzIters(/*fallback=*/400);
  size_t executed = 0;
  for (size_t i = 0; i < iters; ++i) {
    const std::string text = testgen::GenProgram(rng);

    Result<QueryResult> reference = engines.back()->ExecuteText(text);
    std::string reference_xml;
    if (reference.ok()) {
      ++executed;
      reference_xml = ToXml(*reference->document);
    }
    for (size_t e = 0; e + 1 < engines.size(); ++e) {
      Result<QueryResult> got = engines[e]->ExecuteText(text);
      ASSERT_EQ(got.ok(), reference.ok())
          << "batch_size=" << kBatchSizes[e] << " outcome diverges at iter "
          << i << " (seed " << testgen::FuzzSeed() << "):\n"
          << text;
      if (!got.ok()) {
        EXPECT_EQ(got.status().code(), reference.status().code())
            << "batch_size=" << kBatchSizes[e] << " error class diverges:\n"
            << text;
        continue;
      }
      EXPECT_EQ(ToXml(*got->document), reference_xml)
          << "batch_size=" << kBatchSizes[e] << " result diverges at iter "
          << i << " (seed " << testgen::FuzzSeed() << "):\n"
          << text;
    }
  }
  // The property is vacuous unless a healthy share of programs ran.
  EXPECT_GT(executed, iters / 10)
      << "only " << executed << "/" << iters << " programs executed";
}

}  // namespace
}  // namespace core
}  // namespace nimble
