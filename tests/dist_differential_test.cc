#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dist/cluster.h"
#include "dist/coordinator.h"
#include "dist/partition.h"
#include "query_generator.h"
#include "xml/serializer.h"

namespace nimble {
namespace dist {
namespace {

/// Distributed differential test: the same generated XML-QL program must
/// produce byte-identical output on a 1-shard and a 4-shard deployment.
/// The coordinator's contract is that sharding is invisible — scatter
/// decisions read only shard-count-independent state, the gather side
/// imposes a canonical order, and non-scatterable programs fall back to
/// identical local engines — so any divergence is a distribution bug.
///
/// Reuses the grammar fuzzer's generator (fixture: db:t, feed:products,
/// view "named"), so a fuzzer repro (NIMBLE_FUZZ_SEED/NIMBLE_FUZZ_ITERS)
/// replays here verbatim.

struct Deployment {
  core::testgen::GeneratorFixture fixture;
  std::unique_ptr<ShardCluster> cluster;
  std::unique_ptr<Coordinator> coordinator;
};

std::unique_ptr<Deployment> MakeDeployment(size_t shards) {
  auto d = std::make_unique<Deployment>();
  d->fixture = core::testgen::MakeGeneratorFixture();
  if (d->fixture.catalog == nullptr) return nullptr;

  ShardClusterOptions cluster_options;
  cluster_options.num_shards = shards;
  d->cluster = std::make_unique<ShardCluster>(d->fixture.catalog.get(),
                                              cluster_options);
  // Hash-partition both base collections (range keying needs more distinct
  // keys than the 2-row products feed can cut bounds from).
  for (const auto& [source, collection, key] :
       std::initializer_list<std::tuple<const char*, const char*, const char*>>{
           {"db", "t", "a"}, {"feed", "products", "title"}}) {
    PartitionSpec spec;
    spec.source = source;
    spec.collection = collection;
    spec.partition_key = key;
    spec.kind = metadata::FragmentMap::Kind::kHash;
    if (!d->cluster->Partition(spec).ok()) return nullptr;
  }
  if (!d->cluster->Init().ok()) return nullptr;

  // The local fallback engines must plan identically on both deployments.
  // Their data is identical, but KMV-merged statistics are not guaranteed
  // bit-equal between a 1-fragment and a 4-fragment merge, so keep the
  // cost optimizer (whose join-order choices read those statistics) out of
  // the fallback path. Shard engines keep their defaults: the gather
  // side's canonical ordering makes shard-internal plan choices invisible.
  core::EngineOptions local_options;
  local_options.enable_cost_optimizer = false;
  local_options.verify_plans = true;
  d->coordinator = std::make_unique<Coordinator>(d->cluster.get(),
                                                 DistOptions{}, local_options);
  return d;
}

TEST(DistDifferentialTest, GeneratedProgramsAgreeAcrossShardCounts) {
  std::unique_ptr<Deployment> one = MakeDeployment(1);
  std::unique_ptr<Deployment> four = MakeDeployment(4);
  ASSERT_NE(one, nullptr) << "1-shard deployment setup failed";
  ASSERT_NE(four, nullptr) << "4-shard deployment setup failed";

  Rng rng(core::testgen::FuzzSeed());
  const size_t iters = core::testgen::FuzzIters(/*fallback=*/400);
  size_t executed = 0;
  for (size_t i = 0; i < iters; ++i) {
    const std::string text = core::testgen::GenProgram(rng);

    Result<core::QueryResult> reference = one->coordinator->ExecuteText(text);
    Result<core::QueryResult> got = four->coordinator->ExecuteText(text);
    ASSERT_EQ(got.ok(), reference.ok())
        << "outcome diverges at iter " << i << " (seed "
        << core::testgen::FuzzSeed() << "):\n"
        << text << "\n1-shard: " << reference.status().ToString()
        << "\n4-shard: " << got.status().ToString();
    if (!reference.ok()) {
      EXPECT_EQ(got.status().code(), reference.status().code())
          << "error class diverges at iter " << i << ":\n"
          << text;
      continue;
    }
    ++executed;
    EXPECT_EQ(ToXml(*got->document), ToXml(*reference->document))
        << "result diverges at iter " << i << " (seed "
        << core::testgen::FuzzSeed() << "):\n"
        << text;
  }
  // The property is vacuous unless programs both ran and scattered.
  EXPECT_GT(executed, iters / 10)
      << "only " << executed << "/" << iters << " programs executed";
  EXPECT_GT(four->coordinator->counters().scatter_queries, 0u)
      << "no generated program took the scatter path";
  EXPECT_GT(four->coordinator->counters().fallback_queries, 0u)
      << "no generated program took the fallback path";
}

}  // namespace
}  // namespace dist
}  // namespace nimble
