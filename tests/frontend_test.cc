#include <gtest/gtest.h>

#include "connector/relational_connector.h"
#include "frontend/auth.h"
#include "frontend/formatter.h"
#include "frontend/lens.h"
#include "frontend/load_balancer.h"
#include "xml/parser.h"

namespace nimble {
namespace frontend {
namespace {

// ---- Formatter -------------------------------------------------------------------

NodePtr ResultDoc() {
  Result<NodePtr> doc = ParseXml(
      "<results>"
      "<person><name>Ada</name><city>Seattle</city></person>"
      "<person><name>Bob</name><city>Portland</city></person>"
      "</results>");
  EXPECT_TRUE(doc.ok());
  return *doc;
}

TEST(FormatterTest, Xml) {
  std::string out = FormatResult(*ResultDoc(), TargetFormat::kXml);
  EXPECT_NE(out.find("<person>"), std::string::npos);
  EXPECT_NE(out.find("\n"), std::string::npos);  // pretty
}

TEST(FormatterTest, HtmlTable) {
  std::string out = FormatResult(*ResultDoc(), TargetFormat::kHtml);
  EXPECT_NE(out.find("<table>"), std::string::npos);
  EXPECT_NE(out.find("<th>name</th>"), std::string::npos);
  EXPECT_NE(out.find("<td>Ada</td>"), std::string::npos);
}

TEST(FormatterTest, HtmlEscapesCells) {
  NodePtr doc = Node::Element("results");
  NodePtr rec = Node::Element("r");
  rec->AddScalarChild("v", Value::String("<b>&"));
  doc->AddChild(rec);
  std::string out = FormatResult(*doc, TargetFormat::kHtml);
  EXPECT_NE(out.find("&lt;b&gt;&amp;"), std::string::npos);
}

TEST(FormatterTest, TextAligned) {
  std::string out = FormatResult(*ResultDoc(), TargetFormat::kText);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("Ada"), std::string::npos);
  // Column alignment: "name" padded to at least "Ada"/"Bob" width.
  EXPECT_EQ(out.find("name  city"), 0u);
}

TEST(FormatterTest, CsvQuoting) {
  NodePtr doc = Node::Element("results");
  NodePtr rec = Node::Element("r");
  rec->AddScalarChild("v", Value::String("a,b"));
  rec->AddScalarChild("w", Value::String("say \"hi\""));
  doc->AddChild(rec);
  std::string out = FormatResult(*doc, TargetFormat::kCsv);
  EXPECT_EQ(out, "v,w\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(FormatterTest, ScalarRecordsUseTheirTagAsColumn) {
  Result<NodePtr> doc = ParseXml("<results><n>1</n><n>2</n></results>");
  ASSERT_TRUE(doc.ok());
  std::string out = FormatResult(**doc, TargetFormat::kCsv);
  EXPECT_EQ(out, "n\n1\n2\n");
}

TEST(FormatterTest, MixedColumnsUnion) {
  Result<NodePtr> doc = ParseXml(
      "<results><r><a>1</a></r><r><b>2</b></r></results>");
  ASSERT_TRUE(doc.ok());
  std::string out = FormatResult(**doc, TargetFormat::kCsv);
  EXPECT_EQ(out, "a,b\n1,\n,2\n");
}

// ---- Auth -----------------------------------------------------------------------

TEST(AuthTest, GrantAuthorizeRevoke) {
  AuthRegistry auth;
  auth.GrantAccess("tok1", "ada", {"sales_report"});
  auth.GrantAccess("admin", "root", {"*"});

  Result<std::string> who = auth.Authorize("tok1", "sales_report");
  ASSERT_TRUE(who.ok());
  EXPECT_EQ(*who, "ada");
  EXPECT_EQ(auth.Authorize("tok1", "other").status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_TRUE(auth.Authorize("admin", "anything").ok());
  EXPECT_EQ(auth.Authorize("bogus", "sales_report").status().code(),
            StatusCode::kPermissionDenied);
  auth.Revoke("tok1");
  EXPECT_FALSE(auth.Authorize("tok1", "sales_report").ok());
}

// ---- LoadBalancer + LensService -----------------------------------------------------

class FrontendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<relational::Database>("crm");
    ASSERT_TRUE(db_->Execute("CREATE TABLE c (id INT PRIMARY KEY, name TEXT, "
                             "segment TEXT)")
                    .ok());
    ASSERT_TRUE(db_->Execute("INSERT INTO c VALUES (1, 'Ada', 'gold'), "
                             "(2, 'Bob', 'bronze'), (3, 'Cleo', 'gold')")
                    .ok());
    catalog_ = std::make_unique<metadata::Catalog>();
    ASSERT_TRUE(catalog_
                    ->RegisterSource(
                        std::make_unique<connector::RelationalConnector>(
                            "crm", db_.get()))
                    .ok());
    balancer_ = std::make_unique<LoadBalancer>(BalancePolicy::kRoundRobin);
    for (int i = 0; i < 3; ++i) {
      balancer_->AddEngine(
          std::make_unique<core::IntegrationEngine>(catalog_.get()));
    }
    cache_ = std::make_unique<materialize::ResultCache>(1 << 20, 0, &clock_);
    auth_ = std::make_unique<AuthRegistry>();
    service_ = std::make_unique<LensService>(balancer_.get(), cache_.get(),
                                             auth_.get());
  }

  Lens SegmentLens() {
    Lens lens;
    lens.name = "segment_report";
    lens.query_template = R"(
      WHERE <c><row><name>$n</name><segment>$s</segment></row></c> IN "crm:c",
            $s = '{segment}'
      CONSTRUCT <person><name>$n</name></person>
    )";
    lens.default_parameters = {{"segment", "gold"}};
    lens.format = TargetFormat::kCsv;
    return lens;
  }

  std::unique_ptr<relational::Database> db_;
  std::unique_ptr<metadata::Catalog> catalog_;
  std::unique_ptr<LoadBalancer> balancer_;
  VirtualClock clock_;
  std::unique_ptr<materialize::ResultCache> cache_;
  std::unique_ptr<AuthRegistry> auth_;
  std::unique_ptr<LensService> service_;
};

TEST_F(FrontendTest, RoundRobinSpreadsQueries) {
  const char* query =
      "WHERE <c><row><name>$n</name></row></c> IN \"crm:c\" "
      "CONSTRUCT <p>$n</p>";
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(balancer_->Execute(query).ok());
  }
  EXPECT_EQ(balancer_->QueriesPerEngine(),
            (std::vector<uint64_t>{2, 2, 2}));
}

TEST_F(FrontendTest, LensDefaultAndOverrideParameters) {
  ASSERT_TRUE(service_->RegisterLens(SegmentLens()).ok());
  Result<LensResult> gold = service_->Invoke("segment_report");
  ASSERT_TRUE(gold.ok()) << gold.status().ToString();
  EXPECT_EQ(gold->body, "name\nAda\nCleo\n");

  Result<LensResult> bronze =
      service_->Invoke("segment_report", {{"segment", "bronze"}});
  ASSERT_TRUE(bronze.ok());
  EXPECT_EQ(bronze->body, "name\nBob\n");
}

TEST_F(FrontendTest, LensCachesResults) {
  ASSERT_TRUE(service_->RegisterLens(SegmentLens()).ok());
  Result<LensResult> first = service_->Invoke("segment_report");
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->served_from_cache);
  Result<LensResult> second = service_->Invoke("segment_report");
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->served_from_cache);
  EXPECT_EQ(second->body, first->body);
  // Different parameters -> different cache key.
  Result<LensResult> other =
      service_->Invoke("segment_report", {{"segment", "bronze"}});
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other->served_from_cache);
}

TEST_F(FrontendTest, LensAuthEnforced) {
  Lens lens = SegmentLens();
  lens.require_auth = true;
  ASSERT_TRUE(service_->RegisterLens(lens).ok());
  EXPECT_EQ(service_->Invoke("segment_report").status().code(),
            StatusCode::kPermissionDenied);
  auth_->GrantAccess("tok", "ada", {"segment_report"});
  EXPECT_TRUE(service_->Invoke("segment_report", {}, "tok").ok());
  EXPECT_FALSE(service_->Invoke("segment_report", {}, "wrong").ok());
}

TEST_F(FrontendTest, LensMissingParameterErrors) {
  Lens lens = SegmentLens();
  lens.default_parameters.clear();
  ASSERT_TRUE(service_->RegisterLens(lens).ok());
  EXPECT_EQ(service_->Invoke("segment_report").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FrontendTest, TemplateExpansionEscapesQuotes) {
  Result<std::string> expanded = LensService::ExpandTemplate(
      "$s = '{v}'", {{"v", "O'Brien"}});
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(*expanded, "$s = 'O''Brien'");
  EXPECT_FALSE(LensService::ExpandTemplate("{unclosed", {}).ok());
}

TEST_F(FrontendTest, DuplicateLensRejected) {
  ASSERT_TRUE(service_->RegisterLens(SegmentLens()).ok());
  EXPECT_EQ(service_->RegisterLens(SegmentLens()).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(FrontendTest, UnknownLens) {
  EXPECT_EQ(service_->Invoke("nope").status().code(), StatusCode::kNotFound);
}

TEST_F(FrontendTest, LeastLoadedPrefersIdleEngines) {
  balancer_->set_policy(BalancePolicy::kLeastLoaded);
  const char* query =
      "WHERE <c><row><name>$n</name></row></c> IN \"crm:c\" "
      "CONSTRUCT <p>$n</p>";
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(balancer_->Execute(query).ok());
  }
  // Local sources report zero latency, so ties resolve to engine 0 —
  // but every query must be served.
  uint64_t total = 0;
  for (uint64_t n : balancer_->QueriesPerEngine()) total += n;
  EXPECT_EQ(total, 6u);
}

}  // namespace
}  // namespace frontend
}  // namespace nimble
