#include <gtest/gtest.h>

#include "connector/csv_connector.h"
#include "connector/hierarchical_connector.h"
#include "connector/relational_connector.h"
#include "connector/simulated_source.h"
#include "connector/xml_connector.h"
#include "core/engine.h"
#include "xml/serializer.h"

namespace nimble {
namespace core {
namespace {

/// Shared fixture: a catalog with a relational CRM, a relational order DB,
/// an XML product feed, and a hierarchical org directory — the paper's
/// motivating "customer data scattered across multiple databases" scenario.
class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // CRM database.
    crm_ = std::make_unique<relational::Database>("crm");
    Must(crm_->Execute("CREATE TABLE customers (id INT PRIMARY KEY, "
                       "name TEXT, city TEXT, segment TEXT)"));
    Must(crm_->Execute(
        "INSERT INTO customers VALUES (1, 'Ada Lovelace', 'Seattle', 'gold'), "
        "(2, 'Bob Barker', 'Portland', 'bronze'), "
        "(3, 'Cleo Patra', 'Seattle', 'gold'), "
        "(4, 'Dan Druff', 'Boise', 'silver')"));
    Must(crm_->Execute("CREATE INDEX idx_segment ON customers (segment)"));

    // Orders database.
    sales_ = std::make_unique<relational::Database>("sales");
    Must(sales_->Execute("CREATE TABLE orders (oid INT PRIMARY KEY, "
                         "cust INT, total DOUBLE, sku TEXT)"));
    Must(sales_->Execute("INSERT INTO orders VALUES "
                         "(100, 1, 250.0, 'widget'), (101, 1, 80.0, 'gizmo'), "
                         "(102, 3, 999.0, 'widget'), (103, 2, 5.0, 'gadget'), "
                         "(104, 9, 1.0, 'widget')"));

    // XML product catalog.
    auto products = std::make_unique<connector::XmlConnector>("feed");
    Must(products->PutDocumentText(
        "products",
        "<products>"
        "<product sku=\"widget\"><title>Widget Deluxe</title>"
        "<price>25.0</price></product>"
        "<product sku=\"gizmo\"><title>Gizmo</title><price>8.0</price>"
        "</product>"
        "<product sku=\"gadget\"><title>Gadget</title><price>1.0</price>"
        "</product>"
        "</products>"));

    // Hierarchical org directory.
    org_ = std::make_unique<hierarchical::HStore>("org");
    Must(org_->Put("/corp/sales/ada",
                   {{"employee", Value::String("Ada Lovelace")},
                    {"role", Value::String("rep")}}));
    Must(org_->Put("/corp/sales/eve",
                   {{"employee", Value::String("Eve Adams")},
                    {"role", Value::String("manager")}}));

    catalog_ = std::make_unique<metadata::Catalog>();
    Must(catalog_->RegisterSource(
        std::make_unique<connector::RelationalConnector>("crm", crm_.get())));
    Must(catalog_->RegisterSource(
        std::make_unique<connector::RelationalConnector>("sales",
                                                         sales_.get())));
    Must(catalog_->RegisterSource(std::move(products)));
    auto org_conn = std::make_unique<connector::HierarchicalConnector>(
        "org", org_.get());
    org_conn->MapCollection("staff", "/corp");
    Must(catalog_->RegisterSource(std::move(org_conn)));

    // The full static-analysis pass runs on every query in this suite,
    // regardless of build type (NDEBUG defaults it off).
    EngineOptions opts;
    opts.verify_plans = true;
    engine_ = std::make_unique<IntegrationEngine>(catalog_.get(), opts);
  }

  void Must(const Status& s) { ASSERT_TRUE(s.ok()) << s.ToString(); }
  template <typename T>
  void Must(const Result<T>& r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  QueryResult Run(const std::string& text, const QueryOptions& opts = {}) {
    Result<QueryResult> r = engine_->ExecuteText(text, opts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) std::abort();
    return std::move(*r);
  }

  std::unique_ptr<relational::Database> crm_;
  std::unique_ptr<relational::Database> sales_;
  std::unique_ptr<hierarchical::HStore> org_;
  std::unique_ptr<metadata::Catalog> catalog_;
  std::unique_ptr<IntegrationEngine> engine_;
};

constexpr char kGoldQuery[] = R"(
  WHERE <customers><row><id>$i</id><name>$n</name><segment>$s</segment>
        </row></customers> IN "crm:customers",
        $s = 'gold'
  CONSTRUCT <gold><name>$n</name></gold>
)";

TEST_F(EngineTest, SingleSourceSelection) {
  QueryResult qr = Run(kGoldQuery);
  EXPECT_EQ(qr.report.result_count, 2u);
  ASSERT_EQ(qr.document->children().size(), 2u);
  EXPECT_EQ(qr.document->children()[0]->name(), "gold");
  EXPECT_EQ(qr.document->children()[0]->FindChild("name")->ScalarValue(),
            Value::String("Ada Lovelace"));
}

TEST_F(EngineTest, PushdownUsedForRelationalSource) {
  QueryResult qr = Run(kGoldQuery);
  EXPECT_EQ(qr.report.fragments_pushed_down, 1u);
  EXPECT_EQ(qr.report.fragments_fetched, 0u);
  EXPECT_TRUE(qr.report.pushdown_hit_index);  // idx_segment
  // Only the two gold rows crossed the wire.
  EXPECT_EQ(qr.report.rows_shipped, 2u);
}

TEST_F(EngineTest, PushdownDisabledShipsWholeTable) {
  EngineOptions opts;
  opts.enable_pushdown = false;
  engine_->set_options(opts);
  QueryResult qr = Run(kGoldQuery);
  EXPECT_EQ(qr.report.fragments_pushed_down, 0u);
  EXPECT_EQ(qr.report.fragments_fetched, 1u);
  EXPECT_EQ(qr.report.rows_shipped, 4u);  // whole customers table
  EXPECT_EQ(qr.report.result_count, 2u);  // same answer
}

TEST_F(EngineTest, CrossSourceJoin) {
  QueryResult qr = Run(R"(
    WHERE <customers><row><id>$i</id><name>$n</name></row></customers>
          IN "crm:customers",
          <orders><row><oid>$o</oid><cust>$i</cust><total>$t</total></row>
          </orders> IN "sales:orders",
          $t > 100
    CONSTRUCT <big_spender><name>$n</name><total>$t</total></big_spender>
    ORDER BY $t DESC
  )");
  ASSERT_EQ(qr.report.result_count, 2u);
  EXPECT_EQ(qr.document->children()[0]->FindChild("name")->ScalarValue(),
            Value::String("Cleo Patra"));
  EXPECT_EQ(qr.document->children()[0]->FindChild("total")->ScalarValue(),
            Value::Double(999.0));
  EXPECT_EQ(qr.document->children()[1]->FindChild("name")->ScalarValue(),
            Value::String("Ada Lovelace"));
  EXPECT_EQ(qr.report.sources_contacted.size(), 2u);
}

TEST_F(EngineTest, ThreeSourceJoinRelationalAndXml) {
  QueryResult qr = Run(R"(
    WHERE <customers><row><id>$i</id><name>$n</name></row></customers>
          IN "crm:customers",
          <orders><row><cust>$i</cust><sku>$k</sku></row></orders>
          IN "sales:orders",
          <products><product sku=$k><title>$p</title></product></products>
          IN "feed:products"
    CONSTRUCT <line><name>$n</name><product>$p</product></line>
  )");
  // orders joinable to customers: 100,101,102,103 → each has a product.
  EXPECT_EQ(qr.report.result_count, 4u);
}

TEST_F(EngineTest, AttributePatternAndLiteralConstraint) {
  QueryResult qr = Run(R"(
    WHERE <products><product sku="widget"><title>$t</title>
          <price>$p</price></product></products> IN "feed:products"
    CONSTRUCT <hit><title>$t</title><price>$p</price></hit>
  )");
  ASSERT_EQ(qr.report.result_count, 1u);
  EXPECT_EQ(qr.document->children()[0]->FindChild("title")->ScalarValue(),
            Value::String("Widget Deluxe"));
  EXPECT_EQ(qr.document->children()[0]->FindChild("price")->ScalarValue(),
            Value::Double(25.0));
}

TEST_F(EngineTest, DescendantPatternOverHierarchicalSource) {
  QueryResult qr = Run(R"(
    WHERE <//entry><employee>$e</employee><role>manager</role></entry>
          IN "org:staff"
    CONSTRUCT <manager>$e</manager>
  )");
  ASSERT_EQ(qr.report.result_count, 1u);
  EXPECT_EQ(qr.document->children()[0]->ScalarValue(),
            Value::String("Eve Adams"));
}

TEST_F(EngineTest, ElementAsRepublishesSubtree) {
  QueryResult qr = Run(R"(
    WHERE <products><product ELEMENT_AS $e sku="gizmo"></product></products>
          IN "feed:products"
    CONSTRUCT <wrapped>$e</wrapped>
  )");
  ASSERT_EQ(qr.report.result_count, 1u);
  NodePtr wrapped = qr.document->children()[0];
  NodePtr product = wrapped->FindChild("product");
  ASSERT_NE(product, nullptr);
  EXPECT_EQ(product->FindChild("title")->ScalarValue(),
            Value::String("Gizmo"));
}

TEST_F(EngineTest, OrderByAscendingAndLimit) {
  QueryResult qr = Run(R"(
    WHERE <orders><row><oid>$o</oid><total>$t</total></row></orders>
          IN "sales:orders"
    CONSTRUCT <o total=$t/>
    ORDER BY $t
    LIMIT 2
  )");
  ASSERT_EQ(qr.report.result_count, 2u);
  EXPECT_EQ(qr.document->children()[0]->GetAttribute("total"),
            Value::Double(1.0));
  EXPECT_EQ(qr.document->children()[1]->GetAttribute("total"),
            Value::Double(5.0));
}

TEST_F(EngineTest, LimitPushedIntoSingleFragmentSql) {
  QueryResult qr = Run(R"(
    WHERE <customers><row><id>$i</id><name>$n</name></row></customers>
          IN "crm:customers"
    CONSTRUCT <c id=$i/>
    ORDER BY $i DESC
    LIMIT 2
  )");
  ASSERT_EQ(qr.report.result_count, 2u);
  // Only the two surviving rows crossed the wire (the source applied
  // ORDER BY id DESC LIMIT 2).
  EXPECT_EQ(qr.report.rows_shipped, 2u);
  EXPECT_EQ(qr.document->children()[0]->GetAttribute("id"), Value::Int(4));
  EXPECT_EQ(qr.document->children()[1]->GetAttribute("id"), Value::Int(3));
}

TEST_F(EngineTest, LimitNotPushedWhenConditionStaysLocal) {
  // LIKE over an attribute-bound variable cannot ride into SQL when the
  // pattern is not table-shaped; here we force a residual by using a
  // condition the translator cannot push (variable only in feed source).
  QueryResult qr = Run(R"(
    WHERE <customers><row><id>$i</id><name>$n</name></row></customers>
          IN "crm:customers",
          <orders><row><cust>$i</cust></row></orders> IN "sales:orders"
    CONSTRUCT <c id=$i/>
    LIMIT 2
  )");
  // Multi-fragment query: LIMIT applies in the mediator, answer size 2.
  EXPECT_EQ(qr.report.result_count, 2u);
  EXPECT_GT(qr.report.rows_shipped, 2u);
}

TEST_F(EngineTest, UnionCombinesBranches) {
  QueryResult qr = Run(R"(
    WHERE <customers><row><name>$n</name><segment>gold</segment></row>
          </customers> IN "crm:customers"
    CONSTRUCT <person>$n</person>
    UNION
    WHERE <//entry><employee>$e</employee></entry> IN "org:staff"
    CONSTRUCT <person>$e</person>
  )");
  EXPECT_EQ(qr.report.result_count, 4u);  // 2 gold + 2 staff
  EXPECT_TRUE(qr.report.completeness.complete);
  EXPECT_EQ(qr.document->GetAttribute("complete"), Value::Bool(true));
}

TEST_F(EngineTest, MediatedViewComposition) {
  // Define a view over two sources, then query the view — the paper's
  // hierarchical schema composition.
  Must(catalog_->DefineView("customer_orders", R"(
    WHERE <customers><row><id>$i</id><name>$n</name></row></customers>
          IN "crm:customers",
          <orders><row><cust>$i</cust><total>$t</total></row></orders>
          IN "sales:orders"
    CONSTRUCT <co><name>$n</name><total>$t</total></co>
  )"));
  QueryResult qr = Run(R"(
    WHERE <results><co><name>$n</name><total>$t</total></co></results>
          IN customer_orders,
          $t >= 250
    CONSTRUCT <vip>$n</vip>
  )");
  EXPECT_EQ(qr.report.result_count, 2u);
}

TEST_F(EngineTest, ViewOverViewComposition) {
  Must(catalog_->DefineView("all_people", R"(
    WHERE <customers><row><name>$n</name></row></customers>
          IN "crm:customers"
    CONSTRUCT <person>$n</person>
    UNION
    WHERE <//entry><employee>$e</employee></entry> IN "org:staff"
    CONSTRUCT <person>$e</person>
  )"));
  Must(catalog_->DefineView("a_people", R"(
    WHERE <results><person>$p</person></results> IN all_people,
          $p LIKE 'A%'
    CONSTRUCT <a_person>$p</a_person>
  )"));
  QueryResult qr = Run(R"(
    WHERE <results><a_person>$p</a_person></results> IN a_people
    CONSTRUCT <out>$p</out>
  )");
  // Ada Lovelace appears in both the CRM and the org directory — bag
  // semantics keeps both copies (the object-identity problem the §3.2
  // cleaning layer exists to solve; see cleaning_test.cc).
  EXPECT_EQ(qr.report.result_count, 2u);
  EXPECT_EQ(qr.document->children()[0]->ScalarValue(),
            Value::String("Ada Lovelace"));
}

TEST_F(EngineTest, BindJoinShipsOnlyMatchingRows) {
  // Bind join: the non-SQL feed fragment is evaluated first; its distinct
  // SKU set is then pushed into the SQL orders fragment as an IN filter,
  // so only orders for catalogued SKUs cross the wire.
  EngineOptions options;
  options.enable_bind_join = true;
  engine_->set_options(options);
  QueryResult with_bind = Run(R"(
    WHERE <products><product sku=$k><title>$p</title></product></products>
          IN "feed:products",
          <orders><row><cust>$c</cust><sku>$k</sku></row></orders>
          IN "sales:orders"
    CONSTRUCT <line sku=$k cust=$c/>
  )");
  EXPECT_GT(with_bind.report.fragments_bind_joined, 0u);

  options.enable_bind_join = false;
  engine_->set_options(options);
  QueryResult without_bind = Run(R"(
    WHERE <products><product sku=$k><title>$p</title></product></products>
          IN "feed:products",
          <orders><row><cust>$c</cust><sku>$k</sku></row></orders>
          IN "sales:orders"
    CONSTRUCT <line sku=$k cust=$c/>
  )");
  EXPECT_EQ(without_bind.report.fragments_bind_joined, 0u);
  // Bind join is a pure optimization: identical answers, fewer (or equal)
  // rows shipped, and the plan labels the semijoin-filtered scan.
  EXPECT_EQ(with_bind.report.result_count,
            without_bind.report.result_count);
  EXPECT_LE(with_bind.report.rows_shipped, without_bind.report.rows_shipped);
  EXPECT_NE(with_bind.report.plan.find("sql+bind:"), std::string::npos);
}

TEST_F(EngineTest, BindJoinRespectsLimit) {
  EngineOptions options;
  options.enable_bind_join = true;
  options.bind_join_limit = 1;  // the 3-product key set exceeds this
  engine_->set_options(options);
  QueryResult qr = Run(R"(
    WHERE <products><product sku=$k><title>$p</title></product></products>
          IN "feed:products",
          <orders><row><cust>$c</cust><sku>$k</sku></row></orders>
          IN "sales:orders"
    CONSTRUCT <line sku=$k cust=$c/>
  )");
  EXPECT_EQ(qr.report.fragments_bind_joined, 0u);
}

TEST_F(EngineTest, GroupedAggregation) {
  QueryResult qr = Run(R"(
    WHERE <orders><row><cust>$c</cust><total>$t</total></row></orders>
          IN "sales:orders"
    CONSTRUCT <spend cust=$c><orders>count($t)</orders>
              <total>sum($t)</total><biggest>max($t)</biggest></spend>
    GROUP BY $c
    ORDER BY $c
  )");
  // Customers 1, 2, 3, 9 have orders.
  ASSERT_EQ(qr.report.result_count, 4u);
  NodePtr first = qr.document->children()[0];
  EXPECT_EQ(first->GetAttribute("cust"), Value::Int(1));
  EXPECT_EQ(first->FindChild("orders")->ScalarValue(), Value::Int(2));
  EXPECT_EQ(first->FindChild("total")->ScalarValue(), Value::Double(330.0));
  EXPECT_EQ(first->FindChild("biggest")->ScalarValue(), Value::Double(250.0));
}

TEST_F(EngineTest, GlobalAggregation) {
  QueryResult qr = Run(R"(
    WHERE <orders><row><total>$t</total></row></orders> IN "sales:orders"
    CONSTRUCT <summary><n>count($t)</n><sum>sum($t)</sum>
              <mean>avg($t)</mean></summary>
  )");
  ASSERT_EQ(qr.report.result_count, 1u);
  NodePtr summary = qr.document->children()[0];
  EXPECT_EQ(summary->FindChild("n")->ScalarValue(), Value::Int(5));
  EXPECT_EQ(summary->FindChild("sum")->ScalarValue(), Value::Double(1335.0));
  EXPECT_EQ(summary->FindChild("mean")->ScalarValue(),
            Value::Double(1335.0 / 5));
}

TEST_F(EngineTest, AggregationOverJoin) {
  QueryResult qr = Run(R"(
    WHERE <customers><row><id>$i</id><segment>$s</segment></row></customers>
          IN "crm:customers",
          <orders><row><cust>$i</cust><total>$t</total></row></orders>
          IN "sales:orders"
    CONSTRUCT <seg name=$s><revenue>sum($t)</revenue></seg>
    GROUP BY $s
    ORDER BY $s
  )");
  // gold: Ada(250+80) + Cleo(999) = 1329; bronze: Bob(5).
  ASSERT_EQ(qr.report.result_count, 2u);
  EXPECT_EQ(qr.document->children()[0]->GetAttribute("name"),
            Value::String("bronze"));
  EXPECT_EQ(qr.document->children()[0]->FindChild("revenue")->ScalarValue(),
            Value::Double(5.0));
  EXPECT_EQ(qr.document->children()[1]->FindChild("revenue")->ScalarValue(),
            Value::Double(1329.0));
}

TEST_F(EngineTest, ResultDocumentSerializes) {
  QueryResult qr = Run(kGoldQuery);
  std::string xml = ToXml(*qr.document);
  EXPECT_NE(xml.find("<gold>"), std::string::npos);
  EXPECT_NE(xml.find("Ada Lovelace"), std::string::npos);
}

TEST_F(EngineTest, PlanRendered) {
  QueryResult qr = Run(kGoldQuery);
  EXPECT_NE(qr.report.plan.find("Scan"), std::string::npos);
}

TEST_F(EngineTest, ErrorUnknownSource) {
  Result<QueryResult> r = engine_->ExecuteText(R"(
    WHERE <t><r><a>$a</a></r></t> IN "nope:t"
    CONSTRUCT <x>$a</x>
  )");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(EngineTest, ErrorUnboundVariable) {
  Result<QueryResult> r = engine_->ExecuteText(R"(
    WHERE <t><r><a>$a</a></r></t> IN "crm:customers"
    CONSTRUCT <x>$zzz</x>
  )");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

// ---- Plan cache / result cache (§2.1 caching) ------------------------------

TEST_F(EngineTest, PlanCacheReusesCompiledQueries) {
  PlanCache* plans = engine_->plan_cache();
  ASSERT_NE(plans, nullptr);
  Run(kGoldQuery);
  EXPECT_EQ(plans->stats().misses, 1u);
  Run(kGoldQuery);
  EXPECT_EQ(plans->stats().hits, 1u);
  EXPECT_EQ(plans->size(), 1u);
}

TEST_F(EngineTest, PlanCacheCanonicalizesWhitespace) {
  Run(kGoldQuery);
  // Same query with collapsed whitespace compiles to the same entry...
  std::string squashed = CanonicalizeQueryText(kGoldQuery);
  Run(squashed);
  EXPECT_EQ(engine_->plan_cache()->stats().hits, 1u);
  EXPECT_EQ(engine_->plan_cache()->size(), 1u);
  // ...but whitespace inside string literals is load-bearing.
  EXPECT_NE(CanonicalizeQueryText("WHERE $s = 'a  b'"),
            CanonicalizeQueryText("WHERE $s = 'a b'"));
}

TEST_F(EngineTest, ResultCacheServesFrozenSnapshotOnRepeat) {
  EngineOptions opts;
  opts.result_cache_bytes = 1 << 20;
  engine_->set_options(opts);
  QueryResult first = Run(kGoldQuery);
  EXPECT_FALSE(first.report.served_from_cache);
  uint64_t served = engine_->queries_served();
  QueryResult second = Run(kGoldQuery);
  EXPECT_TRUE(second.report.served_from_cache);
  EXPECT_TRUE(second.report.completeness.complete);
  EXPECT_EQ(second.report.result_count, 2u);
  // A hit is the shared snapshot, not a clone, and costs no execution.
  EXPECT_EQ(second.document.get(), first.document.get());
  EXPECT_TRUE(second.document->frozen());
  EXPECT_EQ(engine_->queries_served(), served);
  // Copy-on-write: MutableDocument() thaws a private copy on demand.
  NodePtr mutable_doc = second.MutableDocument();
  EXPECT_NE(mutable_doc.get(), first.document.get());
  EXPECT_FALSE(mutable_doc->frozen());
}

TEST_F(EngineTest, CancellableQueriesBypassResultCache) {
  EngineOptions opts;
  opts.result_cache_bytes = 1 << 20;
  engine_->set_options(opts);
  std::atomic<bool> cancel{false};
  QueryOptions query_opts;
  query_opts.cancel = &cancel;
  Run(kGoldQuery, query_opts);
  EXPECT_EQ(engine_->result_cache()->size(), 0u);
  QueryResult repeat = Run(kGoldQuery, query_opts);
  EXPECT_FALSE(repeat.report.served_from_cache);
}

TEST_F(EngineTest, ZeroBudgetDisablesResultCache) {
  EXPECT_EQ(engine_->result_cache(), nullptr);  // default: off
  QueryResult first = Run(kGoldQuery);
  QueryResult second = Run(kGoldQuery);
  EXPECT_FALSE(second.report.served_from_cache);
  EXPECT_NE(second.document.get(), first.document.get());
}

// ---- Availability / partial results (§3.4) ---------------------------------

class AvailabilityTest : public EngineTest {
 protected:
  void SetUp() override {
    EngineTest::SetUp();
    // Re-register the sales source behind a simulated flaky wrapper.
    // (Catalog has no unregister; build a second catalog.)
    catalog2_ = std::make_unique<metadata::Catalog>();
    Must(catalog2_->RegisterSource(
        std::make_unique<connector::RelationalConnector>("crm", crm_.get())));
    auto sales_inner = std::make_unique<connector::RelationalConnector>(
        "sales", sales_.get());
    connector::SimulationConfig config;
    config.fixed_latency_micros = 1000;
    config.per_row_latency_micros = 10;
    auto sim = std::make_unique<connector::SimulatedSource>(
        std::move(sales_inner), config, &clock_);
    sim_ = sim.get();
    Must(catalog2_->RegisterSource(std::move(sim)));
    engine2_ = std::make_unique<IntegrationEngine>(catalog2_.get());
  }

  QueryResult Run2(const std::string& text, const QueryOptions& opts = {}) {
    Result<QueryResult> r = engine2_->ExecuteText(text, opts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) std::abort();
    return std::move(*r);
  }

  VirtualClock clock_;
  connector::SimulatedSource* sim_ = nullptr;
  std::unique_ptr<metadata::Catalog> catalog2_;
  std::unique_ptr<IntegrationEngine> engine2_;
};

constexpr char kUnionQuery[] = R"(
  WHERE <customers><row><name>$n</name></row></customers> IN "crm:customers"
  CONSTRUCT <p>$n</p>
  UNION
  WHERE <orders><row><oid>$o</oid></row></orders> IN "sales:orders"
  CONSTRUCT <o>$o</o>
)";

TEST_F(AvailabilityTest, AllUpAllResults) {
  sim_->SetOnline(true);
  QueryResult qr = Run2(kUnionQuery);
  EXPECT_EQ(qr.report.result_count, 9u);  // 4 customers + 5 orders
  EXPECT_TRUE(qr.report.completeness.complete);
}

TEST_F(AvailabilityTest, FailFastPropagatesUnavailable) {
  sim_->SetOnline(false);
  Result<QueryResult> r = engine2_->ExecuteText(kUnionQuery);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

TEST_F(AvailabilityTest, PartialPolicyReturnsIncompleteResults) {
  sim_->SetOnline(false);
  QueryOptions opts;
  opts.availability = AvailabilityPolicy::kPartial;
  QueryResult qr = Run2(kUnionQuery, opts);
  EXPECT_EQ(qr.report.result_count, 4u);  // customers only
  EXPECT_FALSE(qr.report.completeness.complete);
  ASSERT_EQ(qr.report.completeness.unavailable_sources.size(), 1u);
  EXPECT_EQ(qr.report.completeness.unavailable_sources[0], "sales");
  EXPECT_EQ(qr.report.completeness.skipped_branches,
            (std::vector<size_t>{1}));
  // The result document is annotated for downstream consumers.
  EXPECT_EQ(qr.document->GetAttribute("complete"), Value::Bool(false));
  EXPECT_EQ(qr.document->GetAttribute("missing_sources"),
            Value::String("sales"));
}

TEST_F(AvailabilityTest, RequiredSourceFailsEvenUnderPartial) {
  sim_->SetOnline(false);
  QueryOptions opts;
  opts.availability = AvailabilityPolicy::kPartial;
  opts.required_sources = {"sales"};
  Result<QueryResult> r = engine2_->ExecuteText(kUnionQuery, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

TEST_F(AvailabilityTest, SimulatedLatencyCharged) {
  sim_->SetOnline(true);
  QueryResult qr = Run2(R"(
    WHERE <orders><row><oid>$o</oid></row></orders> IN "sales:orders"
    CONSTRUCT <o>$o</o>
  )");
  // 1000us fixed + 5 rows * 10us.
  EXPECT_EQ(qr.report.source_latency_micros, 1050);
  EXPECT_GE(clock_.NowMicros(), 1050);
}

}  // namespace
}  // namespace core
}  // namespace nimble
