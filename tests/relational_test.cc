#include <gtest/gtest.h>

#include "relational/database.h"
#include "relational/executor.h"
#include "relational/sql_parser.h"

namespace nimble {
namespace relational {
namespace {

class RelationalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Exec("CREATE TABLE customers (id INT PRIMARY KEY, name TEXT, city TEXT, "
         "balance DOUBLE)");
    Exec("CREATE TABLE orders (order_id INT PRIMARY KEY, customer_id INT, "
         "total DOUBLE, status TEXT)");
    Exec("INSERT INTO customers VALUES (1, 'Ada', 'Seattle', 120.5), "
         "(2, 'Bob', 'Portland', 0.0), (3, 'Cleo', 'Seattle', 999.0), "
         "(4, 'Dan', 'Boise', 15.25)");
    Exec("INSERT INTO orders VALUES (10, 1, 99.0, 'shipped'), "
         "(11, 1, 1.5, 'open'), (12, 3, 200.0, 'shipped'), "
         "(13, 9, 5.0, 'open')");
  }

  ResultSet Exec(const std::string& sql) {
    Result<ResultSet> r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(*r) : ResultSet{};
  }

  Status ExecError(const std::string& sql) {
    Result<ResultSet> r = db_.Execute(sql);
    EXPECT_FALSE(r.ok()) << sql << " unexpectedly succeeded";
    return r.ok() ? Status::OK() : r.status();
  }

  Database db_{"testdb"};
};

TEST_F(RelationalTest, SelectStar) {
  ResultSet rs = Exec("SELECT * FROM customers");
  EXPECT_EQ(rs.columns,
            (std::vector<std::string>{"id", "name", "city", "balance"}));
  EXPECT_EQ(rs.rows.size(), 4u);
}

TEST_F(RelationalTest, Projection) {
  ResultSet rs = Exec("SELECT name, city FROM customers WHERE id = 1");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::String("Ada"));
  EXPECT_EQ(rs.rows[0][1], Value::String("Seattle"));
}

TEST_F(RelationalTest, ProjectionWithAliasAndExpression) {
  ResultSet rs =
      Exec("SELECT name, balance * 2 AS double_balance FROM customers "
           "WHERE id = 4");
  EXPECT_EQ(rs.columns[1], "double_balance");
  EXPECT_EQ(rs.rows[0][1], Value::Double(30.5));
}

TEST_F(RelationalTest, WhereComparisons) {
  EXPECT_EQ(Exec("SELECT * FROM customers WHERE balance > 100").rows.size(),
            2u);
  EXPECT_EQ(Exec("SELECT * FROM customers WHERE balance >= 120.5").rows.size(),
            2u);
  EXPECT_EQ(Exec("SELECT * FROM customers WHERE city != 'Seattle'").rows.size(),
            2u);
  EXPECT_EQ(
      Exec("SELECT * FROM customers WHERE city = 'Seattle' AND balance < 500")
          .rows.size(),
      1u);
  EXPECT_EQ(
      Exec("SELECT * FROM customers WHERE city = 'Boise' OR city = 'Portland'")
          .rows.size(),
      2u);
  EXPECT_EQ(Exec("SELECT * FROM customers WHERE NOT city = 'Seattle'")
                .rows.size(),
            2u);
}

TEST_F(RelationalTest, LikePatterns) {
  EXPECT_EQ(Exec("SELECT * FROM customers WHERE name LIKE 'A%'").rows.size(),
            1u);
  EXPECT_EQ(Exec("SELECT * FROM customers WHERE name LIKE '%o%'").rows.size(),
            2u);  // Bob, Cleo
  EXPECT_EQ(Exec("SELECT * FROM customers WHERE name LIKE '_ob'").rows.size(),
            1u);
}

TEST_F(RelationalTest, OrderByAscDesc) {
  ResultSet rs = Exec("SELECT name, balance FROM customers ORDER BY balance");
  EXPECT_EQ(rs.rows.front()[0], Value::String("Bob"));
  EXPECT_EQ(rs.rows.back()[0], Value::String("Cleo"));
  rs = Exec("SELECT name, balance FROM customers ORDER BY balance DESC");
  EXPECT_EQ(rs.rows.front()[0], Value::String("Cleo"));
}

TEST_F(RelationalTest, OrderByAliasAndMultiKey) {
  ResultSet rs = Exec(
      "SELECT city, name FROM customers ORDER BY city ASC, name DESC");
  ASSERT_EQ(rs.rows.size(), 4u);
  EXPECT_EQ(rs.rows[0][0], Value::String("Boise"));
  EXPECT_EQ(rs.rows[2][1], Value::String("Cleo"));  // Seattle: Cleo before Ada
  EXPECT_EQ(rs.rows[3][1], Value::String("Ada"));
}

TEST_F(RelationalTest, Limit) {
  EXPECT_EQ(Exec("SELECT * FROM customers LIMIT 2").rows.size(), 2u);
  EXPECT_EQ(Exec("SELECT * FROM customers LIMIT 0").rows.size(), 0u);
  EXPECT_EQ(Exec("SELECT * FROM customers LIMIT 99").rows.size(), 4u);
}

TEST_F(RelationalTest, Distinct) {
  ResultSet rs = Exec("SELECT DISTINCT city FROM customers");
  EXPECT_EQ(rs.rows.size(), 3u);
}

TEST_F(RelationalTest, HashJoin) {
  ResultSet rs = Exec(
      "SELECT c.name, o.total FROM customers c JOIN orders o "
      "ON c.id = o.customer_id ORDER BY o.total");
  ASSERT_EQ(rs.rows.size(), 3u);  // order 13 has no matching customer
  EXPECT_EQ(rs.rows[0][0], Value::String("Ada"));
  EXPECT_EQ(rs.rows[2][1], Value::Double(200.0));
}

TEST_F(RelationalTest, JoinWithResidualPredicate) {
  ResultSet rs = Exec(
      "SELECT c.name FROM customers c JOIN orders o "
      "ON c.id = o.customer_id AND o.total > 50");
  EXPECT_EQ(rs.rows.size(), 2u);
}

TEST_F(RelationalTest, NestedLoopJoinForNonEqui) {
  ResultSet rs = Exec(
      "SELECT c.name, o.order_id FROM customers c JOIN orders o "
      "ON c.balance > o.total");
  // pairs where balance > total
  EXPECT_GT(rs.rows.size(), 0u);
  for (const Row& row : rs.rows) {
    EXPECT_FALSE(row[0].is_null());
  }
}

TEST_F(RelationalTest, Aggregates) {
  ResultSet rs = Exec("SELECT COUNT(*), SUM(total), MIN(total), MAX(total), "
                      "AVG(total) FROM orders");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(4));
  EXPECT_EQ(rs.rows[0][1], Value::Double(305.5));
  EXPECT_EQ(rs.rows[0][2], Value::Double(1.5));
  EXPECT_EQ(rs.rows[0][3], Value::Double(200.0));
  EXPECT_EQ(rs.rows[0][4], Value::Double(305.5 / 4));
}

TEST_F(RelationalTest, GroupBy) {
  ResultSet rs = Exec(
      "SELECT city, COUNT(*) AS n FROM customers GROUP BY city ORDER BY n "
      "DESC, city");
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[0][0], Value::String("Seattle"));
  EXPECT_EQ(rs.rows[0][1], Value::Int(2));
}

TEST_F(RelationalTest, GroupByHaving) {
  ResultSet rs = Exec(
      "SELECT city, COUNT(*) AS n FROM customers GROUP BY city "
      "HAVING COUNT(*) > 1");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::String("Seattle"));
}

TEST_F(RelationalTest, AggregateOverEmptyInput) {
  ResultSet rs =
      Exec("SELECT COUNT(*), SUM(total) FROM orders WHERE total > 10000");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(0));
  EXPECT_TRUE(rs.rows[0][1].is_null());
}

TEST_F(RelationalTest, ScalarFunctions) {
  ResultSet rs = Exec(
      "SELECT UPPER(name), LOWER(city), LENGTH(name), ABS(0 - balance) "
      "FROM customers WHERE id = 1");
  EXPECT_EQ(rs.rows[0][0], Value::String("ADA"));
  EXPECT_EQ(rs.rows[0][1], Value::String("seattle"));
  EXPECT_EQ(rs.rows[0][2], Value::Int(3));
  EXPECT_EQ(rs.rows[0][3], Value::Double(120.5));
}

TEST_F(RelationalTest, NullSemantics) {
  Exec("INSERT INTO customers (id, name) VALUES (5, 'Eve')");
  // NULL never satisfies comparisons.
  EXPECT_EQ(Exec("SELECT * FROM customers WHERE city = 'Seattle'").rows.size(),
            2u);
  EXPECT_EQ(Exec("SELECT * FROM customers WHERE city != 'Seattle'").rows.size(),
            2u);
  EXPECT_EQ(Exec("SELECT * FROM customers WHERE city IS NULL").rows.size(),
            1u);
  EXPECT_EQ(Exec("SELECT * FROM customers WHERE city IS NOT NULL").rows.size(),
            4u);
  // COUNT(col) skips nulls; COUNT(*) does not.
  ResultSet rs = Exec("SELECT COUNT(*), COUNT(city) FROM customers");
  EXPECT_EQ(rs.rows[0][0], Value::Int(5));
  EXPECT_EQ(rs.rows[0][1], Value::Int(4));
}

TEST_F(RelationalTest, PrimaryKeyUniqueness) {
  Status s = ExecError("INSERT INTO customers VALUES (1, 'Dup', 'X', 0.0)");
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST_F(RelationalTest, TypeChecking) {
  Status s = ExecError("INSERT INTO customers VALUES ('oops', 'N', 'C', 0.0)");
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
}

TEST_F(RelationalTest, IntWidensToDoubleColumn) {
  Exec("INSERT INTO customers VALUES (6, 'Fay', 'Reno', 10)");
  ResultSet rs = Exec("SELECT balance FROM customers WHERE id = 6");
  EXPECT_EQ(rs.rows[0][0], Value::Double(10.0));
}

TEST_F(RelationalTest, DeleteWhere) {
  ResultSet rs = Exec("DELETE FROM orders WHERE status = 'open'");
  EXPECT_EQ(rs.stats.rows_returned, 2u);
  EXPECT_EQ(Exec("SELECT * FROM orders").rows.size(), 2u);
}

TEST_F(RelationalTest, DeleteAll) {
  Exec("DELETE FROM orders");
  EXPECT_EQ(Exec("SELECT * FROM orders").rows.size(), 0u);
}

TEST_F(RelationalTest, UpdateWithExpression) {
  Exec("UPDATE customers SET balance = balance + 100 WHERE city = 'Seattle'");
  ResultSet rs =
      Exec("SELECT balance FROM customers WHERE id = 1");
  EXPECT_EQ(rs.rows[0][0], Value::Double(220.5));
  rs = Exec("SELECT balance FROM customers WHERE id = 2");
  EXPECT_EQ(rs.rows[0][0], Value::Double(0.0));
}

TEST_F(RelationalTest, UpdateSeesOldValues) {
  Exec("CREATE TABLE t (a INT, b INT)");
  Exec("INSERT INTO t VALUES (1, 2)");
  Exec("UPDATE t SET a = b, b = a");
  ResultSet rs = Exec("SELECT a, b FROM t");
  EXPECT_EQ(rs.rows[0][0], Value::Int(2));
  EXPECT_EQ(rs.rows[0][1], Value::Int(1));
}

TEST_F(RelationalTest, IndexUsedForEquality) {
  Exec("CREATE INDEX idx_city ON customers (city)");
  ResultSet rs = Exec("SELECT * FROM customers WHERE city = 'Seattle'");
  EXPECT_TRUE(rs.stats.used_index);
  EXPECT_EQ(rs.stats.index_name, "idx_city");
  EXPECT_EQ(rs.stats.rows_scanned, 2u);  // only the matching rows
  EXPECT_EQ(rs.rows.size(), 2u);
}

TEST_F(RelationalTest, IndexUsedForRange) {
  Exec("CREATE INDEX idx_bal ON customers (balance)");
  ResultSet rs =
      Exec("SELECT * FROM customers WHERE balance > 10 AND balance < 500");
  EXPECT_TRUE(rs.stats.used_index);
  EXPECT_EQ(rs.rows.size(), 2u);  // 120.5, 15.25
}

TEST_F(RelationalTest, NoIndexMeansFullScan) {
  ResultSet rs = Exec("SELECT * FROM customers WHERE city = 'Seattle'");
  EXPECT_FALSE(rs.stats.used_index);
  EXPECT_EQ(rs.stats.rows_scanned, 4u);
}

TEST_F(RelationalTest, PrimaryKeyIndexAutoCreated) {
  ResultSet rs = Exec("SELECT * FROM customers WHERE id = 3");
  EXPECT_TRUE(rs.stats.used_index);
  EXPECT_EQ(rs.stats.rows_scanned, 1u);
}

TEST_F(RelationalTest, IndexConsistentAfterDelete) {
  Exec("DELETE FROM customers WHERE id = 1");
  ResultSet rs = Exec("SELECT * FROM customers WHERE id = 1");
  EXPECT_EQ(rs.rows.size(), 0u);
  rs = Exec("SELECT * FROM customers WHERE id = 3");
  EXPECT_EQ(rs.rows.size(), 1u);
}

TEST_F(RelationalTest, IndexedAndScanResultsAgree) {
  // Property: the same query with and without an index returns identical
  // row multisets.
  ResultSet before =
      Exec("SELECT name FROM customers WHERE city = 'Seattle' ORDER BY name");
  Exec("CREATE INDEX idx_city ON customers (city)");
  ResultSet after =
      Exec("SELECT name FROM customers WHERE city = 'Seattle' ORDER BY name");
  EXPECT_FALSE(before.stats.used_index);
  EXPECT_TRUE(after.stats.used_index);
  ASSERT_EQ(before.rows.size(), after.rows.size());
  for (size_t i = 0; i < before.rows.size(); ++i) {
    EXPECT_EQ(before.rows[i][0], after.rows[i][0]);
  }
}

TEST_F(RelationalTest, IndexProbeUsedWithJoin) {
  // A sargable predicate on the leftmost table drives an index probe even
  // when joins follow; the full WHERE still applies after the join.
  Exec("CREATE INDEX idx_city ON customers (city)");
  ResultSet rs = Exec(
      "SELECT c.name, o.total FROM customers c "
      "JOIN orders o ON c.id = o.customer_id "
      "WHERE c.city = 'Seattle' ORDER BY o.total");
  EXPECT_TRUE(rs.stats.used_index);
  EXPECT_EQ(rs.stats.index_name, "idx_city");
  ASSERT_EQ(rs.rows.size(), 3u);  // Ada x2 orders, Cleo x1
  EXPECT_EQ(rs.rows[0][1], Value::Double(1.5));
  EXPECT_EQ(rs.rows[2][1], Value::Double(200.0));
}

TEST_F(RelationalTest, IndexProbeWithLeftJoinAgreesWithScan) {
  const std::string sql =
      "SELECT c.name, o.total FROM customers c "
      "LEFT JOIN orders o ON c.id = o.customer_id "
      "WHERE c.city = 'Seattle' ORDER BY c.name, o.total";
  ResultSet before = Exec(sql);
  Exec("CREATE INDEX idx_city ON customers (city)");
  ResultSet after = Exec(sql);
  EXPECT_FALSE(before.stats.used_index);
  EXPECT_TRUE(after.stats.used_index);
  ASSERT_EQ(before.rows.size(), after.rows.size());
  for (size_t i = 0; i < before.rows.size(); ++i) {
    EXPECT_EQ(before.rows[i], after.rows[i]);
  }
}

TEST_F(RelationalTest, UnqualifiedProbeColumnSharedWithJoinTableNotProbed) {
  // `city` exists on both sides, so the unqualified predicate cannot be
  // pinned to the indexed base table; the probe must stand down and the
  // query keeps its ambiguous-column error.
  Exec("CREATE TABLE branches (branch_id INT PRIMARY KEY, city TEXT)");
  Exec("INSERT INTO branches VALUES (1, 'Tacoma'), (4, 'Boise')");
  Exec("CREATE INDEX idx_city ON customers (city)");
  Status s = ExecError(
      "SELECT customers.name FROM customers "
      "JOIN branches ON customers.id = branches.branch_id "
      "WHERE city = 'Seattle'");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // Qualifying the column restores both the answer and the index probe.
  ResultSet rs = Exec(
      "SELECT customers.name FROM customers "
      "JOIN branches ON customers.id = branches.branch_id "
      "WHERE customers.city = 'Seattle'");
  EXPECT_TRUE(rs.stats.used_index);
  ASSERT_EQ(rs.rows.size(), 1u);  // Ada (1, Seattle) joins branch 1
  EXPECT_EQ(rs.rows[0][0], Value::String("Ada"));
}

TEST_F(RelationalTest, ErrorUnknownTable) {
  EXPECT_EQ(ExecError("SELECT * FROM nope").code(), StatusCode::kNotFound);
}

TEST_F(RelationalTest, ErrorUnknownColumn) {
  EXPECT_EQ(ExecError("SELECT nope FROM customers").code(),
            StatusCode::kNotFound);
}

TEST_F(RelationalTest, ErrorAmbiguousColumn) {
  Status s = ExecError(
      "SELECT id FROM customers c JOIN customers d ON c.id = d.id");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(RelationalTest, ErrorSyntax) {
  EXPECT_EQ(ExecError("SELEKT * FROM customers").code(),
            StatusCode::kParseError);
  EXPECT_EQ(ExecError("SELECT * FROM").code(), StatusCode::kParseError);
  EXPECT_EQ(ExecError("SELECT * FROM t WHERE").code(),
            StatusCode::kParseError);
}

TEST_F(RelationalTest, SelfJoinWithAliases) {
  ResultSet rs = Exec(
      "SELECT a.name, b.name FROM customers a JOIN customers b "
      "ON a.city = b.city AND a.id < b.id");
  // Seattle pair (Ada, Cleo) only.
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::String("Ada"));
  EXPECT_EQ(rs.rows[0][1], Value::String("Cleo"));
}

TEST_F(RelationalTest, ThreeWayJoin) {
  Exec("CREATE TABLE items (order_id INT, sku TEXT)");
  Exec("INSERT INTO items VALUES (10, 'widget'), (10, 'gadget'), "
       "(12, 'widget')");
  ResultSet rs = Exec(
      "SELECT c.name, i.sku FROM customers c "
      "JOIN orders o ON c.id = o.customer_id "
      "JOIN items i ON o.order_id = i.order_id "
      "ORDER BY i.sku, c.name");
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[0][1], Value::String("gadget"));
}

// ---- SQL text round-trip property -------------------------------------------

class SqlRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(SqlRoundTrip, ParseToSqlReparseIsStable) {
  Result<SqlStatement> first = ParseSql(GetParam());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto* select = std::get_if<SelectStmt>(&*first);
  ASSERT_NE(select, nullptr);
  std::string sql = select->ToSql();
  Result<SqlStatement> second = ParseSql(sql);
  ASSERT_TRUE(second.ok()) << sql << " -> " << second.status().ToString();
  EXPECT_EQ(std::get<SelectStmt>(*second).ToSql(), sql);
}

INSTANTIATE_TEST_SUITE_P(
    Statements, SqlRoundTrip,
    ::testing::Values(
        "SELECT * FROM t",
        "SELECT a, b AS c FROM t WHERE a = 1 AND b < 'x'",
        "SELECT COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2",
        "SELECT a FROM t ORDER BY a DESC LIMIT 5",
        "SELECT t.a, u.b FROM t JOIN u ON t.a = u.a WHERE t.a LIKE 'x%'",
        "SELECT DISTINCT a FROM t WHERE a IS NOT NULL",
        "SELECT a + b * 2 FROM t WHERE NOT (a = 1 OR b = 2)"));

TEST_F(RelationalTest, LeftOuterJoinPadsUnmatched) {
  ResultSet rs = Exec(
      "SELECT c.name, o.total FROM customers c LEFT JOIN orders o "
      "ON c.id = o.customer_id ORDER BY c.name");
  // Ada has 2 orders; Bob, Cleo 1 each... Cleo has order 12, Bob none?
  // orders: cust 1 (x2), 3, 9 → Bob(2) and Dan(4) unmatched.
  ASSERT_EQ(rs.rows.size(), 5u);
  // Bob's row survives with a null total.
  bool bob_padded = false;
  for (const Row& row : rs.rows) {
    if (row[0] == Value::String("Bob") && row[1].is_null()) bob_padded = true;
  }
  EXPECT_TRUE(bob_padded);
}

TEST_F(RelationalTest, LeftOuterKeywordVariants) {
  ResultSet a = Exec(
      "SELECT c.id FROM customers c LEFT JOIN orders o "
      "ON c.id = o.customer_id");
  ResultSet b = Exec(
      "SELECT c.id FROM customers c LEFT OUTER JOIN orders o "
      "ON c.id = o.customer_id");
  EXPECT_EQ(a.rows.size(), b.rows.size());
}

TEST_F(RelationalTest, LeftOuterJoinWithResidual) {
  // Residual ON conjunct failing → left row still survives padded.
  ResultSet rs = Exec(
      "SELECT c.name, o.order_id FROM customers c LEFT JOIN orders o "
      "ON c.id = o.customer_id AND o.total > 5000");
  ASSERT_EQ(rs.rows.size(), 4u);  // every customer once, all padded
  for (const Row& row : rs.rows) EXPECT_TRUE(row[1].is_null());
}

TEST_F(RelationalTest, LeftOuterJoinNonEquiCondition) {
  ResultSet rs = Exec(
      "SELECT c.name, o.order_id FROM customers c LEFT JOIN orders o "
      "ON c.balance < o.total AND c.id = o.customer_id");
  // Nested-loop path (non-equi first conjunct still extracts equi? the
  // equi conjunct is extractable, so hash path; just assert row coverage).
  EXPECT_GE(rs.rows.size(), 4u);
}

TEST_F(RelationalTest, CountOverLeftJoinCountsNullsCorrectly) {
  ResultSet rs = Exec(
      "SELECT c.name, COUNT(o.order_id) AS n FROM customers c "
      "LEFT JOIN orders o ON c.id = o.customer_id "
      "GROUP BY c.name ORDER BY c.name");
  ASSERT_EQ(rs.rows.size(), 4u);
  // Ada: 2 orders; Bob: 0 (COUNT skips the null pad).
  EXPECT_EQ(rs.rows[0][0], Value::String("Ada"));
  EXPECT_EQ(rs.rows[0][1], Value::Int(2));
  EXPECT_EQ(rs.rows[1][0], Value::String("Bob"));
  EXPECT_EQ(rs.rows[1][1], Value::Int(0));
}

TEST_F(RelationalTest, InList) {
  EXPECT_EQ(Exec("SELECT * FROM customers WHERE id IN (1, 3)").rows.size(),
            2u);
  EXPECT_EQ(Exec("SELECT * FROM customers WHERE city IN ('Seattle')")
                .rows.size(),
            2u);
  EXPECT_EQ(Exec("SELECT * FROM customers WHERE id IN (99)").rows.size(), 0u);
  // Duplicated IN values must not duplicate rows.
  EXPECT_EQ(Exec("SELECT * FROM customers WHERE id IN (1, 1, 1)").rows.size(),
            1u);
  // NULL probe never matches.
  Exec("INSERT INTO customers (id, name) VALUES (5, 'Eve')");
  EXPECT_EQ(
      Exec("SELECT * FROM customers WHERE city IN ('Seattle', 'Boise')")
          .rows.size(),
      3u);
}

TEST_F(RelationalTest, InListUsesIndex) {
  ResultSet rs = Exec("SELECT * FROM customers WHERE id IN (1, 3, 4)");
  EXPECT_TRUE(rs.stats.used_index);  // pk index, unioned lookups
  EXPECT_EQ(rs.stats.rows_scanned, 3u);
  EXPECT_EQ(rs.rows.size(), 3u);
}

TEST_F(RelationalTest, InListCombinesWithOtherPredicates) {
  ResultSet rs = Exec(
      "SELECT name FROM customers WHERE id IN (1, 2, 3) AND balance > 50");
  EXPECT_EQ(rs.rows.size(), 2u);  // Ada, Cleo
}

TEST(LikeMatchTest, Patterns) {
  EXPECT_TRUE(LikeMatch("hello", "hello"));
  EXPECT_TRUE(LikeMatch("hello", "h%"));
  EXPECT_TRUE(LikeMatch("hello", "%o"));
  EXPECT_TRUE(LikeMatch("hello", "%ell%"));
  EXPECT_TRUE(LikeMatch("hello", "h_llo"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_TRUE(LikeMatch("abc", "%%%"));
  EXPECT_FALSE(LikeMatch("hello", "h_llo!"));
  EXPECT_FALSE(LikeMatch("hello", "H%"));
  EXPECT_FALSE(LikeMatch("", "_"));
  EXPECT_TRUE(LikeMatch("a%b", "a%b"));
}

}  // namespace
}  // namespace relational
}  // namespace nimble
