#ifndef NIMBLE_TESTS_QUERY_GENERATOR_H_
#define NIMBLE_TESTS_QUERY_GENERATOR_H_

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "connector/relational_connector.h"
#include "connector/xml_connector.h"
#include "metadata/catalog.h"
#include "relational/database.h"

/// Deterministic XML-QL program generator shared by the grammar fuzzer
/// (tests/grammar_fuzz_test.cc) and the batch/row differential test
/// (tests/batch_differential_test.cc). The grammar targets the fixture
/// built by MakeGeneratorFixture(): relational table db:t(a,b,c), XML feed
/// feed:products, and the mediated view "named" over db:t.
///
/// Everything is seeded through common/rng — no wall-clock input — so any
/// failure reproduces from (seed, iteration).

namespace nimble {
namespace core {
namespace testgen {

/// The sources the generated queries refer to. The database must outlive
/// the catalog (connectors hold raw pointers into it).
struct GeneratorFixture {
  std::unique_ptr<relational::Database> db;
  std::unique_ptr<metadata::Catalog> catalog;
};

/// Builds the catalog the grammar below generates queries against. Returns
/// a fixture with a null catalog if any setup step fails (callers assert).
inline GeneratorFixture MakeGeneratorFixture() {
  GeneratorFixture fx;
  fx.db = std::make_unique<relational::Database>("db");
  if (!fx.db->Execute("CREATE TABLE t (a INT PRIMARY KEY, b TEXT, c DOUBLE)")
           .ok() ||
      !fx.db->Execute("INSERT INTO t VALUES (1, 'alpha', 1.5), "
                      "(2, 'beta', 2.5), (3, 'gamma', 3.5), "
                      "(4, 'alpha', 0.25)")
           .ok()) {
    return fx;
  }

  auto feed = std::make_unique<connector::XmlConnector>("feed");
  if (!feed->PutDocumentText(
              "products",
              "<products>"
              "<product><title>alpha</title><price>9.5</price></product>"
              "<product><title>delta</title><price>2.0</price></product>"
              "</products>")
           .ok()) {
    return fx;
  }

  auto catalog = std::make_unique<metadata::Catalog>();
  if (!catalog
           ->RegisterSource(std::make_unique<connector::RelationalConnector>(
               "db", fx.db.get()))
           .ok() ||
      !catalog->RegisterSource(std::move(feed)).ok() ||
      !catalog
           ->DefineView("named",
                        "WHERE <t><row><a>$a</a><b>$b</b></row></t> IN "
                        "\"db:t\" CONSTRUCT <item><b>$b</b></item>")
           .ok()) {
    return fx;
  }
  fx.catalog = std::move(catalog);
  return fx;
}

/// Iteration/seed knobs, shared so a fuzzer repro can be replayed through
/// the differential harness verbatim: NIMBLE_FUZZ_ITERS, NIMBLE_FUZZ_SEED.
inline size_t FuzzIters(size_t fallback) {
  const char* env = std::getenv("NIMBLE_FUZZ_ITERS");
  if (env != nullptr && *env != '\0') {
    return static_cast<size_t>(std::strtoull(env, nullptr, 10));
  }
  return fallback;
}

inline uint64_t FuzzSeed() {
  const char* env = std::getenv("NIMBLE_FUZZ_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 0xD1CEu;
}

/// A variable the generator has bound, with its scalar type.
struct BoundVar {
  std::string name;
  char type;  // 'i' int, 's' string, 'd' double
};

inline std::string Literal(Rng& rng, char type) {
  switch (type) {
    case 'i':
      return std::to_string(rng.UniformInt(0, 5));
    case 'd':
      return std::to_string(rng.UniformInt(0, 9)) + "." +
             std::to_string(rng.UniformInt(0, 9));
    default: {
      static const char* kWords[] = {"alpha", "beta", "gamma", "delta", "zz"};
      return "'" + std::string(kWords[rng.Index(5)]) + "'";
    }
  }
}

/// One WHERE pattern over a random source; appends the variables it binds.
inline std::string GenPattern(Rng& rng, int* next_var,
                              std::vector<BoundVar>* vars) {
  switch (rng.Index(3)) {
    case 0: {  // relational, SQL pushdown path
      struct Col {
        const char* name;
        char type;
      };
      static constexpr Col kCols[] = {{"a", 'i'}, {"b", 's'}, {"c", 'd'}};
      std::string body;
      size_t mask = 1 + rng.Index(7);  // non-empty subset of 3 columns
      for (size_t i = 0; i < 3; ++i) {
        if ((mask & (1u << i)) == 0) continue;
        BoundVar v{"$v" + std::to_string((*next_var)++), kCols[i].type};
        body += std::string("<") + kCols[i].name + ">" + v.name + "</" +
                kCols[i].name + ">";
        vars->push_back(v);
      }
      return "<t><row>" + body + "</row></t> IN \"db:t\"";
    }
    case 1: {  // XML feed, fetch+match path
      std::string body;
      size_t mask = 1 + rng.Index(3);  // subset of {title, price}
      if (mask & 1u) {
        BoundVar v{"$v" + std::to_string((*next_var)++), 's'};
        body += "<title>" + v.name + "</title>";
        vars->push_back(v);
      }
      if (mask & 2u) {
        BoundVar v{"$v" + std::to_string((*next_var)++), 'd'};
        body += "<price>" + v.name + "</price>";
        vars->push_back(v);
      }
      return "<products><product>" + body +
             "</product></products> IN \"feed:products\"";
    }
    default: {  // mediated view expansion
      BoundVar v{"$v" + std::to_string((*next_var)++), 's'};
      vars->push_back(v);
      return "<results><item><b>" + v.name +
             "</b></item></results> IN \"named\"";
    }
  }
}

/// A grammar-valid query: patterns, optional conditions (typed literals, or
/// an occasional deliberate type clash), CONSTRUCT, aggregation, ORDER BY,
/// LIMIT.
inline std::string GenQuery(Rng& rng) {
  int next_var = 0;
  std::vector<BoundVar> vars;
  std::string where = GenPattern(rng, &next_var, &vars);
  if (rng.Bernoulli(0.4)) {
    std::vector<BoundVar> more;
    std::string second = GenPattern(rng, &next_var, &more);
    // Half the time, join: rename one compatible variable pair.
    if (rng.Bernoulli(0.5)) {
      for (BoundVar& m : more) {
        for (const BoundVar& v : vars) {
          if (v.type == m.type) {
            size_t at = second.find(m.name);
            while (at != std::string::npos) {
              second.replace(at, m.name.size(), v.name);
              at = second.find(m.name, at + v.name.size());
            }
            m.name = v.name;
            goto joined;
          }
        }
      }
    joined:;
    }
    for (const BoundVar& m : more) vars.push_back(m);
    where += ",\n      " + second;
  }

  size_t n_conditions = rng.Index(3);
  for (size_t i = 0; i < n_conditions; ++i) {
    const BoundVar& v = vars[rng.Index(vars.size())];
    static const char* kOps[] = {"=", "!=", "<", "<=", ">", ">="};
    if (v.type == 's' && rng.Bernoulli(0.3)) {
      where += ", " + v.name + " LIKE 'a%'";
    } else {
      // 10%: deliberately mistyped literal — must fail cleanly, not crash.
      char lit_type = rng.Bernoulli(0.1) ? "isd"[rng.Index(3)] : v.type;
      where += ", " + v.name + " " + kOps[rng.Index(6)] + " " +
               Literal(rng, lit_type);
    }
  }

  bool aggregate = rng.Bernoulli(0.15) && vars.size() >= 2;
  std::string tail;
  std::string construct;
  if (aggregate) {
    const BoundVar& group = vars[0];
    const BoundVar& input = vars[1];
    const char* fn = input.type == 's' ? "count" : "sum";
    construct = "<out><k>" + group.name + "</k><agg>" + std::string(fn) +
                "(" + input.name + ")</agg></out>";
    tail = " GROUP BY " + group.name;
  } else {
    construct = "<out>";
    size_t keep = 1 + rng.Index(vars.size());
    for (size_t i = 0; i < keep; ++i) {
      construct += "<f" + std::to_string(i) + ">" + vars[i].name + "</f" +
                   std::to_string(i) + ">";
    }
    construct += "</out>";
    if (rng.Bernoulli(0.3)) {
      tail += " ORDER BY " + vars[rng.Index(vars.size())].name;
      if (rng.Bernoulli(0.5)) tail += " DESC";
    }
    if (rng.Bernoulli(0.3)) {
      tail += " LIMIT " + std::to_string(rng.UniformInt(1, 5));
    }
  }
  return "WHERE " + where + "\nCONSTRUCT " + construct + tail;
}

inline std::string GenProgram(Rng& rng) {
  std::string text = GenQuery(rng);
  if (rng.Bernoulli(0.15)) text += "\nUNION\n" + GenQuery(rng);
  return text;
}

/// Random text-level mutation: the result is usually ungrammatical — the
/// parser and verifier must reject it cleanly.
inline std::string Mutate(Rng& rng, std::string text) {
  static const char kNoise[] = "<>$\"'=,()WHERE ";
  size_t rounds = 1 + rng.Index(3);
  for (size_t i = 0; i < rounds && !text.empty(); ++i) {
    switch (rng.Index(5)) {
      case 0:  // delete a character
        text.erase(rng.Index(text.size()), 1);
        break;
      case 1:  // insert noise
        text.insert(rng.Index(text.size() + 1), 1,
                    kNoise[rng.Index(sizeof(kNoise) - 1)]);
        break;
      case 2:  // truncate
        text.resize(rng.Index(text.size()) + 1);
        break;
      case 3: {  // swap two characters
        size_t a = rng.Index(text.size());
        size_t b = rng.Index(text.size());
        std::swap(text[a], text[b]);
        break;
      }
      default: {  // duplicate a chunk
        size_t at = rng.Index(text.size());
        size_t len = 1 + rng.Index(std::min<size_t>(8, text.size() - at));
        text.insert(at, text.substr(at, len));
        break;
      }
    }
  }
  return text;
}

}  // namespace testgen
}  // namespace core
}  // namespace nimble

#endif  // NIMBLE_TESTS_QUERY_GENERATOR_H_
