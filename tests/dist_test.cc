#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "admin/monitor.h"
#include "common/clock.h"
#include "connector/simulated_source.h"
#include "connector/xml_connector.h"
#include "core/engine.h"
#include "dist/cluster.h"
#include "dist/coordinator.h"
#include "dist/partition.h"
#include "frontend/load_balancer.h"
#include "metadata/catalog.h"
#include "metadata/fragment_map.h"
#include "xml/serializer.h"
#include "xmlql/parser.h"
#include "xmlql/printer.h"

namespace nimble {
namespace dist {
namespace {

/// End-to-end tests for the scatter-gather subsystem: partitioning,
/// pruning, order-preserving merge, partial-aggregate decomposition,
/// straggler degradation, repartitioning, and the monitor surface. The
/// correctness oracle throughout is the coordinator's own local fallback
/// engine running the same query over the unsharded global catalog.

constexpr size_t kItems = 16;

std::string ItemsXml(size_t n) {
  static const char* kGroups[] = {"a", "b", "c", "d"};
  std::string xml = "<items>";
  for (size_t i = 0; i < n; ++i) {
    xml += "<item><id>" + std::to_string(i) + "</id><grp>" + kGroups[i % 4] +
           "</grp><val>" + std::to_string((i * 7) % 23) + "</val></item>";
  }
  return xml + "</items>";
}

NodePtr ItemsTree(size_t n) {
  static const char* kGroups[] = {"a", "b", "c", "d"};
  NodePtr root = Node::Element("items");
  for (size_t i = 0; i < n; ++i) {
    NodePtr item = root->AddChild(Node::Element("item"));
    item->AddScalarChild("id", Value::Int(static_cast<int64_t>(i)));
    item->AddScalarChild("grp", Value::String(kGroups[i % 4]));
    item->AddScalarChild("val", Value::Int(static_cast<int64_t>((i * 7) % 23)));
  }
  return root;
}

constexpr char kOrderedQuery[] =
    "WHERE <items><item><id>$i</id><grp>$g</grp><val>$v</val></item></items>"
    " IN \"src:items\", $i > 2 "
    "CONSTRUCT <r><id>$i</id><g>$g</g><v>$v</v></r> ORDER BY $i DESC LIMIT 5";

constexpr char kUnorderedQuery[] =
    "WHERE <items><item><id>$i</id><grp>$g</grp></item></items>"
    " IN \"src:items\" CONSTRUCT <r><id>$i</id><g>$g</g></r>";

constexpr char kAggregateQuery[] =
    "WHERE <items><item><grp>$g</grp><val>$v</val></item></items>"
    " IN \"src:items\" "
    "CONSTRUCT <o><k>$g</k><n>count($v)</n><s>sum($v)</s><a>avg($v)</a>"
    "<lo>min($v)</lo><hi>max($v)</hi></o> GROUP BY $g ORDER BY $g";

struct DistFixture {
  std::unique_ptr<metadata::Catalog> catalog;
  std::unique_ptr<ShardCluster> cluster;
  std::unique_ptr<Coordinator> coordinator;
  connector::XmlConnector* src = nullptr;  ///< owned by the catalog.
};

DistFixture MakeDist(size_t shards,
                     metadata::FragmentMap::Kind kind =
                         metadata::FragmentMap::Kind::kHash,
                     ShardClusterOptions cluster_options = {},
                     DistOptions dist_options = {}) {
  DistFixture fx;
  auto src = std::make_unique<connector::XmlConnector>("src");
  EXPECT_TRUE(src->PutDocumentText("items", ItemsXml(kItems)).ok());
  fx.src = src.get();
  fx.catalog = std::make_unique<metadata::Catalog>();
  EXPECT_TRUE(fx.catalog->RegisterSource(std::move(src)).ok());
  EXPECT_TRUE(fx.catalog
                  ->DefineView("cheap",
                               "WHERE <items><item><id>$i</id><val>$v</val>"
                               "</item></items> IN \"src:items\", $v > 10 "
                               "CONSTRUCT <e><id>$i</id></e>")
                  .ok());
  cluster_options.num_shards = shards;
  fx.cluster =
      std::make_unique<ShardCluster>(fx.catalog.get(), cluster_options);
  PartitionSpec spec;
  spec.source = "src";
  spec.collection = "items";
  spec.partition_key = "id";
  spec.kind = kind;
  EXPECT_TRUE(fx.cluster->Partition(spec).ok());
  EXPECT_TRUE(fx.cluster->Init().ok());
  core::EngineOptions local_options;
  local_options.verify_plans = true;
  fx.coordinator = std::make_unique<Coordinator>(fx.cluster.get(),
                                                 dist_options, local_options);
  return fx;
}

std::vector<std::string> ChildrenXml(const Node& doc) {
  std::vector<std::string> out;
  out.reserve(doc.children().size());
  for (const NodePtr& child : doc.children()) out.push_back(ToXml(*child));
  return out;
}

std::vector<std::string> SortedChildrenXml(const Node& doc) {
  std::vector<std::string> out = ChildrenXml(doc);
  std::sort(out.begin(), out.end());
  return out;
}

// ---- Partitioner units ----------------------------------------------------

TEST(PartitionTest, HashPartitionRoutesEveryRecordByKey) {
  NodePtr tree = ItemsTree(kItems);
  PartitionSpec spec;
  spec.source = "src";
  spec.collection = "items";
  spec.partition_key = "id";
  spec.kind = metadata::FragmentMap::Kind::kHash;
  spec.num_fragments = 4;
  Result<PartitionedCollection> part = PartitionCollection(*tree, spec);
  ASSERT_TRUE(part.ok()) << part.status().ToString();

  ASSERT_EQ(part->fragments.size(), 4u);
  ASSERT_EQ(part->fragment_stats.size(), 4u);
  size_t total = 0;
  for (size_t f = 0; f < part->fragments.size(); ++f) {
    for (const NodePtr& record : part->fragments[f]->children()) {
      Value key = PartitionKeyOf(*record, "id");
      EXPECT_EQ(part->map.FragmentForKey(key), f)
          << "record with id " << key.ToString() << " landed on fragment "
          << f;
      ++total;
    }
  }
  EXPECT_EQ(total, kItems);
  EXPECT_DOUBLE_EQ(part->merged_stats.row_count, static_cast<double>(kItems));
}

TEST(PartitionTest, RangePartitionBoundsAscendAndPrune) {
  NodePtr tree = ItemsTree(kItems);
  PartitionSpec spec;
  spec.source = "src";
  spec.collection = "items";
  spec.partition_key = "id";
  spec.kind = metadata::FragmentMap::Kind::kRange;
  spec.num_fragments = 4;
  Result<PartitionedCollection> part = PartitionCollection(*tree, spec);
  ASSERT_TRUE(part.ok()) << part.status().ToString();

  const metadata::FragmentMap& map = part->map;
  ASSERT_EQ(map.range_upper_bounds.size(), 3u);
  EXPECT_TRUE(map.range_upper_bounds[0] < map.range_upper_bounds[1]);
  EXPECT_TRUE(map.range_upper_bounds[1] < map.range_upper_bounds[2]);

  // Keys 0..15 split equi-depth: a probe below the first bound prunes to
  // fragment 0 alone; one at/above the last bound prunes to the last.
  std::vector<size_t> low =
      map.FragmentsForCondition(xmlql::Condition::Op::kLt, Value::Int(1));
  ASSERT_EQ(low.size(), 1u);
  EXPECT_EQ(low[0], 0u);
  std::vector<size_t> high =
      map.FragmentsForCondition(xmlql::Condition::Op::kGe, Value::Int(15));
  ASSERT_EQ(high.size(), 1u);
  EXPECT_EQ(high[0], 3u);
  std::vector<size_t> eq =
      map.FragmentsForCondition(xmlql::Condition::Op::kEq, Value::Int(5));
  ASSERT_EQ(eq.size(), 1u);
  EXPECT_EQ(eq[0], map.FragmentForKey(Value::Int(5)));
  // Inequality cannot prune: every fragment may hold a non-matching key.
  EXPECT_EQ(
      map.FragmentsForCondition(xmlql::Condition::Op::kNe, Value::Int(5))
          .size(),
      4u);
}

TEST(PartitionTest, RangePartitionFailsWithTooFewDistinctKeys) {
  NodePtr root = Node::Element("items");
  for (int i = 0; i < 6; ++i) {
    NodePtr item = root->AddChild(Node::Element("item"));
    item->AddScalarChild("id", Value::Int(i % 2));  // two distinct keys
  }
  PartitionSpec spec;
  spec.source = "src";
  spec.collection = "items";
  spec.partition_key = "id";
  spec.kind = metadata::FragmentMap::Kind::kRange;
  spec.num_fragments = 4;
  EXPECT_FALSE(PartitionCollection(*root, spec).ok());
}

// ---- Scatter-gather vs the local oracle -----------------------------------

TEST(CoordinatorTest, ScatterMatchesLocalEngineOnHashShards) {
  DistFixture fx = MakeDist(4);
  ASSERT_NE(fx.coordinator, nullptr);

  struct Case {
    const char* name;
    const char* text;
    bool ordered;
  };
  const Case cases[] = {
      {"ordered", kOrderedQuery, true},
      {"unordered", kUnorderedQuery, false},
      {"aggregate", kAggregateQuery, true},
  };
  for (const Case& c : cases) {
    Result<core::QueryResult> got = fx.coordinator->ExecuteText(c.text);
    ASSERT_TRUE(got.ok()) << c.name << ": " << got.status().ToString();
    Result<core::QueryResult> want =
        fx.coordinator->local_engine()->ExecuteText(c.text);
    ASSERT_TRUE(want.ok()) << c.name << ": " << want.status().ToString();
    if (c.ordered) {
      EXPECT_EQ(ChildrenXml(*got->document), ChildrenXml(*want->document))
          << c.name << " diverges from the local oracle";
    } else {
      EXPECT_EQ(SortedChildrenXml(*got->document),
                SortedChildrenXml(*want->document))
          << c.name << " diverges from the local oracle";
    }
    EXPECT_EQ(got->document->GetAttribute("complete"), Value::Bool(true))
        << c.name;
    EXPECT_TRUE(got->report.completeness.complete) << c.name;
  }
  CoordinatorCounters counters = fx.coordinator->counters();
  EXPECT_EQ(counters.scatter_queries, 3u);
  EXPECT_EQ(counters.fallback_queries, 0u);
  EXPECT_EQ(counters.subqueries, 12u);
  EXPECT_GT(counters.merge_rows, 0u);
}

TEST(CoordinatorTest, ScatterMatchesLocalEngineOnRangeShards) {
  DistFixture fx = MakeDist(4, metadata::FragmentMap::Kind::kRange);
  ASSERT_NE(fx.coordinator, nullptr);

  for (const char* text : {kOrderedQuery, kAggregateQuery}) {
    Result<core::QueryResult> got = fx.coordinator->ExecuteText(text);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    Result<core::QueryResult> want =
        fx.coordinator->local_engine()->ExecuteText(text);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    EXPECT_EQ(ChildrenXml(*got->document), ChildrenXml(*want->document))
        << text;
  }
  EXPECT_EQ(fx.coordinator->counters().scatter_queries, 2u);

  // Range maps prune on inequalities: ids < 4 live on the first shard only.
  Result<core::QueryResult> pruned = fx.coordinator->ExecuteText(
      "WHERE <items><item><id>$i</id></item></items> IN \"src:items\", "
      "$i < 4 CONSTRUCT <r><id>$i</id></r> ORDER BY $i");
  ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
  EXPECT_EQ(pruned->document->children().size(), 4u);
  EXPECT_GE(fx.coordinator->counters().shards_pruned, 3u);
}

TEST(CoordinatorTest, HashPruningOnPartitionKeyEquality) {
  DistFixture fx = MakeDist(4);
  ASSERT_NE(fx.coordinator, nullptr);

  const char* text =
      "WHERE <items><item><id>$i</id><grp>$g</grp></item></items>"
      " IN \"src:items\", $i = 7 CONSTRUCT <r><id>$i</id><g>$g</g></r>";
  Result<core::QueryResult> got = fx.coordinator->ExecuteText(text);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->document->children().size(), 1u);
  Result<core::QueryResult> want =
      fx.coordinator->local_engine()->ExecuteText(text);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(ChildrenXml(*got->document), ChildrenXml(*want->document));

  CoordinatorCounters counters = fx.coordinator->counters();
  EXPECT_EQ(counters.scatter_queries, 1u);
  EXPECT_EQ(counters.shards_pruned, 3u);
  EXPECT_EQ(counters.subqueries, 1u);

  // A literal flipped to the left-hand side prunes identically.
  Result<core::QueryResult> flipped = fx.coordinator->ExecuteText(
      "WHERE <items><item><id>$i</id><grp>$g</grp></item></items>"
      " IN \"src:items\", 7 = $i CONSTRUCT <r><id>$i</id><g>$g</g></r>");
  ASSERT_TRUE(flipped.ok()) << flipped.status().ToString();
  EXPECT_EQ(ChildrenXml(*flipped->document), ChildrenXml(*want->document));
  EXPECT_EQ(fx.coordinator->counters().shards_pruned, 6u);
}

TEST(CoordinatorTest, NonScatterableQueriesFallBackToLocal) {
  DistFixture fx = MakeDist(4);
  ASSERT_NE(fx.coordinator, nullptr);

  // Multi-pattern join and mediated-view expansion both run undistributed,
  // and still answer correctly.
  const char* join_text =
      "WHERE <items><item><id>$i</id><grp>$g</grp></item></items>"
      " IN \"src:items\",\n"
      "      <items><item><id>$j</id><grp>$g</grp></item></items>"
      " IN \"src:items\", $i < $j "
      "CONSTRUCT <pair><a>$i</a><b>$j</b></pair> ORDER BY $i, $j";
  const char* view_text =
      "WHERE <results><e><id>$i</id></e></results> IN \"cheap\" "
      "CONSTRUCT <r><id>$i</id></r> ORDER BY $i";
  for (const char* text : {join_text, view_text}) {
    Result<core::QueryResult> got = fx.coordinator->ExecuteText(text);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    Result<core::QueryResult> want =
        fx.coordinator->local_engine()->ExecuteText(text);
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(ChildrenXml(*got->document), ChildrenXml(*want->document))
        << text;
  }
  CoordinatorCounters counters = fx.coordinator->counters();
  EXPECT_EQ(counters.scatter_queries, 0u);
  EXPECT_EQ(counters.fallback_queries, 2u);
}

TEST(CoordinatorTest, TinyCollectionsStayLocalUnderMinScatterRows) {
  DistOptions dist_options;
  dist_options.min_scatter_rows = 1000.0;  // far above the 16-row fixture
  DistFixture fx = MakeDist(4, metadata::FragmentMap::Kind::kHash, {},
                            dist_options);
  ASSERT_NE(fx.coordinator, nullptr);

  Result<core::QueryResult> got = fx.coordinator->ExecuteText(kOrderedQuery);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  CoordinatorCounters counters = fx.coordinator->counters();
  EXPECT_EQ(counters.scatter_queries, 0u);
  EXPECT_EQ(counters.fallback_queries, 1u);
}

TEST(CoordinatorTest, ExplainShowsScatterAndGatherRows) {
  DistFixture fx = MakeDist(4);
  ASSERT_NE(fx.coordinator, nullptr);

  Result<core::QueryResult> got = fx.coordinator->ExecuteText(kOrderedQuery);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_NE(got->report.plan.find("scatter: src:items"), std::string::npos)
      << got->report.plan;
  EXPECT_NE(got->report.plan.find("-- shard 0"), std::string::npos)
      << got->report.plan;
  EXPECT_NE(got->report.plan.find("gather: merge rows="), std::string::npos)
      << got->report.plan;
  EXPECT_NE(got->report.plan.find("est_cost="), std::string::npos)
      << got->report.plan;
  EXPECT_NE(got->report.plan_with_stats.find("scatter:"), std::string::npos)
      << got->report.plan_with_stats;
}

// ---- Stragglers and partial results ---------------------------------------

TEST(CoordinatorTest, ShardDeadlineDegradesStragglerToPartial) {
  // Shard 0 runs on a private virtual clock whose simulated source charges
  // ten virtual seconds per fetch — deterministically blowing the 1ms shard
  // deadline without any real waiting.
  VirtualClock vclock;
  ShardClusterOptions cluster_options;
  cluster_options.tweak_engine_options = [&vclock](size_t shard,
                                                   core::EngineOptions* opts) {
    if (shard == 0) {
      opts->clock = &vclock;
      opts->query_deadline_micros = 1000;
    }
  };
  cluster_options.wrap_connector =
      [&vclock](size_t shard, std::unique_ptr<connector::Connector> inner)
      -> std::unique_ptr<connector::Connector> {
    if (shard != 0) return inner;
    connector::SimulationConfig config;
    config.fixed_latency_micros = 10'000'000;
    return std::make_unique<connector::SimulatedSource>(std::move(inner),
                                                        config, &vclock);
  };
  DistFixture fx = MakeDist(4, metadata::FragmentMap::Kind::kHash,
                            std::move(cluster_options));
  ASSERT_NE(fx.coordinator, nullptr);

  core::QueryOptions partial;
  partial.availability = core::AvailabilityPolicy::kPartial;
  Result<core::QueryResult> got =
      fx.coordinator->ExecuteText(kUnorderedQuery, partial);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->document->GetAttribute("complete"), Value::Bool(false));
  EXPECT_FALSE(got->report.completeness.complete);
  const std::string missing =
      got->document->GetAttribute("missing_sources").ToString();
  EXPECT_NE(missing.find("#shard0"), std::string::npos) << missing;
  ASSERT_EQ(got->report.completeness.unavailable_sources.size(), 1u);
  // The three healthy shards still answered: every surviving row is real.
  Result<core::QueryResult> want =
      fx.coordinator->local_engine()->ExecuteText(kUnorderedQuery);
  ASSERT_TRUE(want.ok());
  std::vector<std::string> all = SortedChildrenXml(*want->document);
  for (const std::string& row : SortedChildrenXml(*got->document)) {
    EXPECT_TRUE(std::binary_search(all.begin(), all.end(), row)) << row;
  }
  EXPECT_LT(got->document->children().size(), want->document->children().size());

  CoordinatorCounters counters = fx.coordinator->counters();
  EXPECT_GE(counters.stragglers, 1u);
  EXPECT_GE(counters.partial_results, 1u);

  // A required source must not be silently dropped, even under kPartial.
  core::QueryOptions required = partial;
  required.required_sources = {"src"};
  Result<core::QueryResult> strict =
      fx.coordinator->ExecuteText(kUnorderedQuery, required);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kUnavailable)
      << strict.status().ToString();

  // Fail-fast propagates the straggler's timeout instead of degrading.
  core::QueryOptions fail_fast;
  fail_fast.availability = core::AvailabilityPolicy::kFailFast;
  Result<core::QueryResult> strict2 =
      fx.coordinator->ExecuteText(kUnorderedQuery, fail_fast);
  ASSERT_FALSE(strict2.ok());
  EXPECT_EQ(strict2.status().code(), StatusCode::kTimeout)
      << strict2.status().ToString();
}

TEST(CoordinatorTest, StragglerWaitBudgetCancelsSlowShard) {
  // Shard 0's source really sleeps 400ms (RealClock); the coordinator's
  // straggler budget gives the gather 50ms, so the shard is cancelled and
  // the query degrades instead of stalling.
  RealClock real_clock;
  ShardClusterOptions cluster_options;
  cluster_options.wrap_connector =
      [&real_clock](size_t shard, std::unique_ptr<connector::Connector> inner)
      -> std::unique_ptr<connector::Connector> {
    if (shard != 0) return inner;
    connector::SimulationConfig config;
    config.fixed_latency_micros = 400'000;
    return std::make_unique<connector::SimulatedSource>(std::move(inner),
                                                        config, &real_clock);
  };
  DistOptions dist_options;
  dist_options.straggler_wait_micros = 50'000;
  DistFixture fx = MakeDist(2, metadata::FragmentMap::Kind::kHash,
                            std::move(cluster_options), dist_options);
  ASSERT_NE(fx.coordinator, nullptr);

  core::QueryOptions partial;
  partial.availability = core::AvailabilityPolicy::kPartial;
  const int64_t start = real_clock.NowMicros();
  Result<core::QueryResult> got =
      fx.coordinator->ExecuteText(kUnorderedQuery, partial);
  const int64_t elapsed = real_clock.NowMicros() - start;
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_FALSE(got->report.completeness.complete);
  EXPECT_LT(elapsed, 390'000) << "gather waited out the straggler";
  EXPECT_GE(fx.coordinator->counters().stragglers, 1u);
}

// ---- Repartitioning -------------------------------------------------------

TEST(CoordinatorTest, SourceUpdateTriggersRepartition) {
  DistFixture fx = MakeDist(4);
  ASSERT_NE(fx.coordinator, nullptr);

  Result<core::QueryResult> before =
      fx.coordinator->ExecuteText(kUnorderedQuery);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_EQ(before->document->children().size(), kItems);

  ASSERT_TRUE(fx.src->PutDocumentText("items", ItemsXml(kItems + 4)).ok());
  fx.catalog->NotifySourceUpdated("src");
  EXPECT_GE(fx.cluster->repartitions(), 1u);

  Result<core::QueryResult> after =
      fx.coordinator->ExecuteText(kUnorderedQuery);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->document->children().size(), kItems + 4);
  Result<core::QueryResult> want =
      fx.coordinator->local_engine()->ExecuteText(kUnorderedQuery);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(SortedChildrenXml(*after->document),
            SortedChildrenXml(*want->document));
}

// ---- Load-balancer failure isolation --------------------------------------

TEST(LoadBalancerTest, ExecuteBatchDegradesOverloadedSlotsUnderPartial) {
  // One engine, one admission slot, one queue slot, and a 50ms source: a
  // burst of six submissions deterministically sheds most of the batch with
  // ResourceExhausted. Under kPartial each shed slot degrades to an empty
  // partial result instead of poisoning the batch.
  RealClock real_clock;
  auto xml = std::make_unique<connector::XmlConnector>("s");
  ASSERT_TRUE(xml->PutDocumentText("c", "<c><r><v>1</v></r></c>").ok());
  connector::SimulationConfig config;
  config.fixed_latency_micros = 50'000;
  auto slow = std::make_unique<connector::SimulatedSource>(
      std::move(xml), config, &real_clock);
  metadata::Catalog catalog;
  ASSERT_TRUE(catalog.RegisterSource(std::move(slow)).ok());

  core::EngineOptions opts;
  opts.max_inflight_queries = 1;
  opts.queue_capacity = 1;
  opts.availability = core::AvailabilityPolicy::kPartial;
  frontend::LoadBalancer balancer;
  balancer.AddEngine(
      std::make_unique<core::IntegrationEngine>(&catalog, opts));

  const std::vector<std::string> queries(
      6, "WHERE <c><r><v>$v</v></r></c> IN \"s:c\" CONSTRUCT <o><v>$v</v></o>");
  std::vector<Result<core::QueryResult>> results =
      balancer.ExecuteBatch(queries);
  size_t complete = 0, degraded = 0;
  for (const Result<core::QueryResult>& r : results) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    if (r->report.completeness.complete) {
      ++complete;
      EXPECT_EQ(r->document->children().size(), 1u);
    } else {
      ++degraded;
      EXPECT_EQ(r->document->children().size(), 0u);
      EXPECT_EQ(r->document->GetAttribute("complete"), Value::Bool(false));
      EXPECT_EQ(r->document->GetAttribute("missing_sources").ToString(),
                "engine#0");
    }
  }
  EXPECT_GE(complete, 1u);
  EXPECT_GE(degraded, 1u);

  // Fail-fast keeps the hard error visible.
  core::QueryOptions fail_fast;
  fail_fast.availability = core::AvailabilityPolicy::kFailFast;
  std::vector<Result<core::QueryResult>> strict =
      balancer.ExecuteBatch(queries, fail_fast);
  size_t shed = 0;
  for (const Result<core::QueryResult>& r : strict) {
    if (!r.ok() && r.status().code() == StatusCode::kResourceExhausted) ++shed;
  }
  EXPECT_GE(shed, 1u);
}

// ---- Monitor surface ------------------------------------------------------

TEST(MonitorTest, StatusDocumentShowsDistributionSection) {
  DistFixture fx = MakeDist(4);
  ASSERT_NE(fx.coordinator, nullptr);
  ASSERT_TRUE(fx.coordinator->ExecuteText(kOrderedQuery).ok());

  admin::SystemMonitor monitor(fx.catalog.get(), nullptr, nullptr,
                               &fx.cluster->balancer(),
                               fx.coordinator.get());
  NodePtr status = monitor.StatusDocument();
  ASSERT_NE(status, nullptr);
  NodePtr distribution = status->FindChild("distribution");
  ASSERT_NE(distribution, nullptr);
  EXPECT_EQ(distribution->GetAttribute("shards"), Value::Int(4));
  NodePtr scatter = distribution->FindChild("scatter_queries");
  ASSERT_NE(scatter, nullptr);
  EXPECT_GE(scatter->ScalarValue().AsInt(), int64_t{1});
  EXPECT_EQ(distribution->FindChildren("shard").size(), 4u);
  NodePtr fragment_map = distribution->FindChild("fragment_map");
  ASSERT_NE(fragment_map, nullptr);
  EXPECT_EQ(fragment_map->GetAttribute("collection"), Value::String("items"));
  // The section renders through the terminal view as well.
  EXPECT_NE(monitor.ToText().find("distribution"), std::string::npos);
}

// ---- Printer round trips --------------------------------------------------

TEST(PrinterTest, QueriesRoundTripThroughPrintAndReparse) {
  const std::string programs[] = {
      kOrderedQuery,
      kUnorderedQuery,
      kAggregateQuery,
      std::string(kUnorderedQuery) + "\nUNION\n" + kOrderedQuery,
  };
  for (const std::string& text : programs) {
    Result<xmlql::Program> parsed = xmlql::ParseProgram(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << text;
    Result<std::string> printed = xmlql::PrintProgram(*parsed);
    ASSERT_TRUE(printed.ok()) << printed.status().ToString() << "\n" << text;
    Result<xmlql::Program> reparsed = xmlql::ParseProgram(*printed);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n"
                               << *printed;
    EXPECT_TRUE(xmlql::ProgramsEqual(*parsed, *reparsed)) << *printed;
  }
}

}  // namespace
}  // namespace dist
}  // namespace nimble
