#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "connector/xml_connector.h"
#include "metadata/catalog.h"
#include "metadata/statistics.h"

namespace nimble {
namespace metadata {
namespace {

// ---- DistinctSketch ---------------------------------------------------------

TEST(DistinctSketchTest, ExactBelowK) {
  DistinctSketch sketch;
  for (int i = 0; i < 500; ++i) sketch.Add(Value::Int(i));
  // Duplicates must not inflate the count.
  for (int i = 0; i < 500; ++i) sketch.Add(Value::Int(i));
  EXPECT_TRUE(sketch.exact());
  EXPECT_DOUBLE_EQ(sketch.Estimate(), 500.0);
}

TEST(DistinctSketchTest, WithinTenPercentAt100kDistinct) {
  DistinctSketch sketch;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sketch.Add(Value::Int(i));
  EXPECT_FALSE(sketch.exact());
  double est = sketch.Estimate();
  EXPECT_LT(std::abs(est - n) / n, 0.10)
      << "estimate " << est << " off by more than 10% from " << n;
}

TEST(DistinctSketchTest, TypeFamiliesStayDistinct) {
  DistinctSketch sketch;
  sketch.Add(Value::Int(0));
  sketch.Add(Value::Bool(false));
  sketch.Add(Value::String(""));
  EXPECT_DOUBLE_EQ(sketch.Estimate(), 3.0);
}

TEST(DistinctSketchTest, MergeOfDisjointSetsApproximatesUnion) {
  DistinctSketch a, b;
  const int n = 50000;
  for (int i = 0; i < n; ++i) a.Add(Value::Int(i));
  for (int i = n; i < 2 * n; ++i) b.Add(Value::Int(i));
  a.Merge(b);
  double est = a.Estimate();
  EXPECT_LT(std::abs(est - 2.0 * n) / (2.0 * n), 0.10);
}

// ---- Analyze ----------------------------------------------------------------

class AnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto feed = std::make_unique<connector::XmlConnector>("feed");
    Status put = feed->PutDocumentText(
        "products",
        "<products>"
        "<product sku=\"widget\"><title>Widget</title><price>25</price>"
        "</product>"
        "<product sku=\"gizmo\"><title>Gizmo</title><price>8</price>"
        "</product>"
        "<product sku=\"gadget\"><title>Gadget</title><price>1</price>"
        "</product>"
        "<product sku=\"doohickey\"><title>Doohickey</title></product>"
        "</products>");
    ASSERT_TRUE(put.ok()) << put.ToString();
    ASSERT_TRUE(catalog_.RegisterSource(std::move(feed)).ok());
  }

  metadata::Catalog catalog_;
};

TEST_F(AnalyzeTest, CollectsRowCountAndColumnDetail) {
  ASSERT_TRUE(catalog_.AnalyzeSource("feed").ok());
  std::shared_ptr<const CollectionStats> stats =
      catalog_.statistics().Get("feed", "products");
  ASSERT_NE(stats, nullptr);
  EXPECT_TRUE(stats->analyzed);
  EXPECT_FALSE(stats->stale);
  EXPECT_DOUBLE_EQ(stats->row_count, 4.0);

  const ColumnStats* price = stats->column("price");
  ASSERT_NE(price, nullptr);
  EXPECT_DOUBLE_EQ(price->min.NumericValue(), 1.0);
  EXPECT_DOUBLE_EQ(price->max.NumericValue(), 25.0);
  EXPECT_DOUBLE_EQ(price->distinct(), 3.0);
  // One of four records has no <price>.
  EXPECT_DOUBLE_EQ(price->null_fraction, 0.25);
  // 25, 8, 1: strictly descending.
  EXPECT_EQ(price->order, ColumnStats::SortOrder::kDescending);

  const ColumnStats* sku = stats->column("@sku");
  ASSERT_NE(sku, nullptr);
  EXPECT_TRUE(sku->unique);
  EXPECT_DOUBLE_EQ(sku->distinct(), 4.0);
  EXPECT_DOUBLE_EQ(sku->null_fraction, 0.0);

  const ColumnStats* title = stats->column("title");
  ASSERT_NE(title, nullptr);
  EXPECT_TRUE(title->unique);
}

TEST_F(AnalyzeTest, SamplingKeepsExactRowCount) {
  ASSERT_TRUE(catalog_.AnalyzeSource("feed", /*sample_rows=*/2).ok());
  std::shared_ptr<const CollectionStats> stats =
      catalog_.statistics().Get("feed", "products");
  ASSERT_NE(stats, nullptr);
  // Row count stays exact; column detail covers only the sampled prefix.
  EXPECT_DOUBLE_EQ(stats->row_count, 4.0);
  const ColumnStats* price = stats->column("price");
  ASSERT_NE(price, nullptr);
  EXPECT_DOUBLE_EQ(price->distinct(), 2.0);
}

TEST_F(AnalyzeTest, AnalyzeUnknownSourceFails) {
  EXPECT_FALSE(catalog_.AnalyzeSource("nope").ok());
}

// ---- Epoch semantics --------------------------------------------------------

TEST_F(AnalyzeTest, AnalyzeBumpsEpochOnce) {
  uint64_t before = catalog_.statistics().epoch();
  ASSERT_TRUE(catalog_.AnalyzeSource("feed").ok());
  EXPECT_EQ(catalog_.statistics().epoch(), before + 1);
}

TEST_F(AnalyzeTest, SourceUpdateMarksStaleAndBumpsEpoch) {
  ASSERT_TRUE(catalog_.AnalyzeSource("feed").ok());
  uint64_t before = catalog_.statistics().epoch();
  catalog_.NotifySourceUpdated("feed");
  EXPECT_GT(catalog_.statistics().epoch(), before);
  std::shared_ptr<const CollectionStats> stats =
      catalog_.statistics().Get("feed", "products");
  ASSERT_NE(stats, nullptr);
  EXPECT_TRUE(stats->stale);
}

TEST(StatisticsCatalogTest, RecordObservedRowsEpochRules) {
  StatisticsCatalog stats;
  uint64_t e0 = stats.epoch();
  // First observation installs quietly — no replan churn for collections
  // the optimizer knew nothing about anyway.
  EXPECT_FALSE(stats.RecordObservedRows("s", "c", 100.0, 10.0));
  EXPECT_EQ(stats.epoch(), e0);
  ASSERT_NE(stats.Get("s", "c"), nullptr);
  EXPECT_DOUBLE_EQ(stats.Get("s", "c")->row_count, 100.0);

  // Within the error factor: updated in place, no epoch bump.
  EXPECT_FALSE(stats.RecordObservedRows("s", "c", 500.0, 10.0));
  EXPECT_EQ(stats.epoch(), e0);
  EXPECT_DOUBLE_EQ(stats.Get("s", "c")->row_count, 500.0);

  // Off by more than the factor (either direction): misestimate — bump.
  EXPECT_TRUE(stats.RecordObservedRows("s", "c", 50000.0, 10.0));
  EXPECT_EQ(stats.epoch(), e0 + 1);
  EXPECT_TRUE(stats.RecordObservedRows("s", "c", 10.0, 10.0));
  EXPECT_EQ(stats.epoch(), e0 + 2);
}

}  // namespace
}  // namespace metadata
}  // namespace nimble
