#include <gtest/gtest.h>

#include "cleaning/concordance.h"
#include "cleaning/flow.h"
#include "cleaning/lineage.h"
#include "cleaning/matcher.h"
#include "cleaning/merge_purge.h"
#include "cleaning/normalize.h"
#include "cleaning/profiler.h"
#include "cleaning/similarity.h"
#include "common/strings.h"
#include "xml/parser.h"

#include <algorithm>

namespace nimble {
namespace cleaning {
namespace {

// ---- Similarity ----------------------------------------------------------------

TEST(SimilarityTest, Levenshtein) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0u);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
}

TEST(SimilarityTest, LevenshteinSymmetric) {
  for (auto [a, b] : std::vector<std::pair<const char*, const char*>>{
           {"smith", "smyth"}, {"jon", "john"}, {"", "x"}}) {
    EXPECT_EQ(LevenshteinDistance(a, b), LevenshteinDistance(b, a));
  }
}

TEST(SimilarityTest, JaroWinkler) {
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("same", "same"), 1.0);
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("abc", ""), 0.0);
  // MARTHA/MARHTA is the canonical example (~0.961).
  EXPECT_NEAR(JaroWinklerSimilarity("MARTHA", "MARHTA"), 0.961, 0.001);
  // Prefix boost: common prefix scores higher than common suffix.
  EXPECT_GT(JaroWinklerSimilarity("prefixed", "prefixxx"),
            JaroWinklerSimilarity("xxprefix", "yyprefix"));
}

TEST(SimilarityTest, TokenJaccard) {
  EXPECT_DOUBLE_EQ(TokenJaccardSimilarity("a b c", "c b a"), 1.0);
  EXPECT_DOUBLE_EQ(TokenJaccardSimilarity("a b", "b c"), 1.0 / 3);
  EXPECT_DOUBLE_EQ(TokenJaccardSimilarity("A B", "a b"), 1.0);  // case-fold
  EXPECT_DOUBLE_EQ(TokenJaccardSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(TokenJaccardSimilarity("x", ""), 0.0);
}

TEST(SimilarityTest, Soundex) {
  EXPECT_EQ(Soundex("Robert"), "R163");
  EXPECT_EQ(Soundex("Rupert"), "R163");
  EXPECT_EQ(Soundex("Tymczak"), "T522");
  EXPECT_EQ(Soundex("Pfister"), "P236");
  EXPECT_EQ(Soundex("Honeyman"), "H555");
  EXPECT_EQ(Soundex("a"), "A000");
  EXPECT_EQ(Soundex("123"), "0000");
  EXPECT_EQ(Soundex("Smith"), Soundex("Smyth"));
}

// ---- Normalizers ----------------------------------------------------------------

TEST(NormalizeTest, CollapseWhitespace) {
  EXPECT_EQ(CollapseWhitespace("  a \t b\n c  "), "a b c");
  EXPECT_EQ(CollapseWhitespace(""), "");
}

TEST(NormalizeTest, StripPunctuation) {
  EXPECT_EQ(StripPunctuation("O'Brien & Sons, Inc."), "OBrien Sons Inc");
}

TEST(NormalizeTest, ExpandAbbreviations) {
  EXPECT_EQ(ExpandAbbreviations("123 main st", AddressAbbreviations()),
            "123 main street");
  EXPECT_EQ(ExpandAbbreviations("45 N Oak Ave.", AddressAbbreviations()),
            "45 north Oak avenue");
}

TEST(NormalizeTest, StandardizeName) {
  EXPECT_EQ(StandardizeName("Lovelace, Ada"), "Ada Lovelace");
  EXPECT_EQ(StandardizeName("Lovelace,  Ada  King"), "Ada King Lovelace");
  EXPECT_EQ(StandardizeName("Ada Lovelace"), "Ada Lovelace");
  EXPECT_EQ(StandardizeName("Lovelace,"), "Lovelace");
}

TEST(NormalizeTest, StandardizePhone) {
  EXPECT_EQ(StandardizePhone("(206) 555-1234"), "206-555-1234");
  EXPECT_EQ(StandardizePhone("1-206-555-1234"), "206-555-1234");
  EXPECT_EQ(StandardizePhone("12345"), "12345");  // not 10 digits → digits
}

TEST(NormalizeTest, PipelineChainsAndDescribes) {
  NormalizerPipeline pipeline = NormalizerPipeline::ForAddresses();
  EXPECT_EQ(pipeline.Apply("  123  N. Main St., Apt 4 "),
            "123 north main street apartment 4");
  EXPECT_EQ(pipeline.StepNames().size(), 4u);
}

TEST(NormalizeTest, PipelineIdempotent) {
  // Property: applying a standard pipeline twice equals applying it once.
  NormalizerPipeline addresses = NormalizerPipeline::ForAddresses();
  NormalizerPipeline names = NormalizerPipeline::ForNames();
  for (const char* input :
       {"123 N Main St", "Lovelace, Ada", "  x  y  ", "plain"}) {
    std::string once_a = addresses.Apply(input);
    EXPECT_EQ(addresses.Apply(once_a), once_a) << input;
    std::string once_n = names.Apply(input);
    EXPECT_EQ(names.Apply(once_n), once_n) << input;
  }
}

// ---- Matcher ---------------------------------------------------------------------

RecordMatcher MakeNameCityMatcher() {
  std::vector<MatchRule> rules;
  rules.push_back({"name", JaroWinklerSimilarity, 2.0, 0.5});
  rules.push_back({"city",
                   [](const std::string& a, const std::string& b) {
                     return a == b ? 1.0 : 0.0;
                   },
                   1.0, 0.5});
  return RecordMatcher(std::move(rules), 0.55, 0.85);
}

TEST(MatcherTest, ExactRecordsMatch) {
  RecordMatcher matcher = MakeNameCityMatcher();
  Record a{{"name", Value::String("Ada Lovelace")},
           {"city", Value::String("Seattle")}};
  EXPECT_EQ(matcher.Decide(a, a), MatchDecision::kMatch);
  EXPECT_DOUBLE_EQ(matcher.Score(a, a), 1.0);
}

TEST(MatcherTest, DisjointRecordsDoNotMatch) {
  RecordMatcher matcher = MakeNameCityMatcher();
  Record a{{"name", Value::String("Ada Lovelace")},
           {"city", Value::String("Seattle")}};
  Record b{{"name", Value::String("Zzyzx Qwerty")},
           {"city", Value::String("Miami")}};
  EXPECT_EQ(matcher.Decide(a, b), MatchDecision::kNonMatch);
}

TEST(MatcherTest, NearRecordsArePossible) {
  RecordMatcher matcher = MakeNameCityMatcher();
  Record a{{"name", Value::String("Jon Smith")},
           {"city", Value::String("Seattle")}};
  Record b{{"name", Value::String("Johan Smidt")},
           {"city", Value::String("Tacoma")}};
  double score = matcher.Score(a, b);
  EXPECT_GE(score, 0.55);
  EXPECT_LT(score, 0.85);
  EXPECT_EQ(matcher.DecideFromScore(score), MatchDecision::kPossible);
}

TEST(MatcherTest, MissingFieldUsesMissingScore) {
  RecordMatcher matcher = MakeNameCityMatcher();
  Record a{{"name", Value::String("Ada")}};
  Record b{{"name", Value::String("Ada")},
           {"city", Value::String("Seattle")}};
  // name 1.0 * 2 + missing 0.5 * 1 over weight 3.
  EXPECT_DOUBLE_EQ(matcher.Score(a, b), (2.0 + 0.5) / 3.0);
}

TEST(MatcherTest, CountsComparisons) {
  RecordMatcher matcher = MakeNameCityMatcher();
  Record a{{"name", Value::String("x")}};
  matcher.Score(a, a);
  matcher.Score(a, a);
  EXPECT_EQ(matcher.comparisons(), 2u);
}

// ---- Concordance -----------------------------------------------------------------

TEST(ConcordanceTest, LookupMissThenHit) {
  ConcordanceDatabase db;
  EXPECT_FALSE(db.Lookup("a", "b").has_value());
  db.RecordAutomatic("a", "b", MatchDecision::kMatch, 0.9);
  std::optional<ConcordanceEntry> entry = db.Lookup("b", "a");  // symmetric
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->decision, MatchDecision::kMatch);
  EXPECT_EQ(db.hits(), 1u);
  EXPECT_EQ(db.misses(), 1u);
}

TEST(ConcordanceTest, HumanDecisionWinsOverAutomatic) {
  ConcordanceDatabase db;
  db.RecordAutomatic("a", "b", MatchDecision::kMatch, 0.9);
  ASSERT_TRUE(db.RecordHuman("a", "b", false).ok());
  EXPECT_EQ(db.Lookup("a", "b")->decision, MatchDecision::kNonMatch);
  // Later automatic decisions cannot override the human one.
  db.RecordAutomatic("a", "b", MatchDecision::kMatch, 0.99);
  EXPECT_EQ(db.Lookup("a", "b")->decision, MatchDecision::kNonMatch);
  EXPECT_EQ(db.Lookup("a", "b")->source, DecisionSource::kHuman);
}

TEST(ConcordanceTest, ExceptionQueueLifecycle) {
  ConcordanceDatabase db;
  db.QueueException("a", "b", 0.7);
  db.QueueException("a", "b", 0.7);  // dedup
  db.QueueException("c", "d", 0.65);
  EXPECT_EQ(db.pending_exception_count(), 2u);
  Result<std::pair<std::string, std::string>> resolved =
      db.ResolveNextException(true);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->first, "a");
  EXPECT_EQ(db.pending_exception_count(), 1u);
  EXPECT_EQ(db.Lookup("a", "b")->decision, MatchDecision::kMatch);
  ASSERT_TRUE(db.ResolveNextException(false).ok());
  EXPECT_EQ(db.ResolveNextException(true).status().code(),
            StatusCode::kNotFound);
}

TEST(ConcordanceTest, SerializeRoundTrip) {
  ConcordanceDatabase db;
  db.RecordAutomatic("a", "b", MatchDecision::kMatch, 0.91);
  ASSERT_TRUE(db.RecordHuman("c", "d", false).ok());
  db.QueueException("e", "f", 0.7);

  ConcordanceDatabase restored;
  ASSERT_TRUE(restored.Deserialize(db.Serialize()).ok());
  EXPECT_EQ(restored.size(), 2u);
  EXPECT_EQ(restored.Lookup("b", "a")->decision, MatchDecision::kMatch);
  EXPECT_EQ(restored.Lookup("c", "d")->source, DecisionSource::kHuman);
  EXPECT_EQ(restored.pending_exception_count(), 1u);
}

TEST(ConcordanceTest, DeserializeMergePreservesHumanDecisions) {
  ConcordanceDatabase incoming;
  incoming.RecordAutomatic("a", "b", MatchDecision::kMatch, 0.9);
  ConcordanceDatabase db;
  ASSERT_TRUE(db.RecordHuman("a", "b", false).ok());
  ASSERT_TRUE(db.Deserialize(incoming.Serialize()).ok());
  // Existing human decision survives an incoming automatic one.
  EXPECT_EQ(db.Lookup("a", "b")->decision, MatchDecision::kNonMatch);
}

TEST(ConcordanceTest, DeserializeRejectsGarbage) {
  ConcordanceDatabase db;
  EXPECT_FALSE(db.Deserialize("E\tonly\tthree\n").ok());
  EXPECT_FALSE(db.Deserialize("Z\tx\ty\t1\n").ok());
  EXPECT_TRUE(db.Deserialize("").ok());
}

TEST(ConcordanceTest, FileRoundTrip) {
  ConcordanceDatabase db;
  db.RecordAutomatic("a", "b", MatchDecision::kNonMatch, 0.1);
  std::string path = ::testing::TempDir() + "/concordance.tsv";
  ASSERT_TRUE(db.SaveToFile(path).ok());
  ConcordanceDatabase restored;
  ASSERT_TRUE(restored.LoadFromFile(path).ok());
  EXPECT_EQ(restored.size(), 1u);
  EXPECT_EQ(restored.LoadFromFile("/nonexistent/x").code(),
            StatusCode::kNotFound);
}

// ---- Profiler ---------------------------------------------------------------------

TEST(ProfilerTest, LooksEncodedHeuristics) {
  EXPECT_TRUE(LooksEncoded("ACCT-1234"));
  EXPECT_TRUE(LooksEncoded("key=value"));
  EXPECT_TRUE(LooksEncoded("a|b|c"));
  EXPECT_TRUE(LooksEncoded("x;y"));
  EXPECT_FALSE(LooksEncoded("Ada Lovelace"));
  EXPECT_FALSE(LooksEncoded("catch-22 rules"));  // dash but not CODE-NNN
  EXPECT_FALSE(LooksEncoded(""));
}

TEST(ProfilerTest, FieldStatsAndAnomalies) {
  std::vector<KeyedRecord> records = {
      {"1", {{"name", Value::String("Ada")}, {"age", Value::Int(36)}}},
      {"2", {{"name", Value::String("ada")}, {"age", Value::Int(41)}}},
      {"3", {{"name", Value::String("Bob")}, {"age", Value::String("41")}}},
      {"4", {{"name", Value::Null()}, {"acct", Value::String("ACCT-99")}}},
  };
  BatchProfile profile = ProfileRecords(records);
  EXPECT_EQ(profile.record_count, 4u);

  const FieldProfile* name = profile.field("name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->present, 3u);
  EXPECT_EQ(name->nulls, 1u);
  EXPECT_EQ(name->distinct, 3u);
  EXPECT_FALSE(name->mixed_types);
  EXPECT_EQ(name->near_duplicate_values, 2u);  // Ada/ada

  const FieldProfile* age = profile.field("age");
  ASSERT_NE(age, nullptr);
  EXPECT_TRUE(age->mixed_types);  // int and string

  const FieldProfile* acct = profile.field("acct");
  ASSERT_NE(acct, nullptr);
  EXPECT_EQ(acct->suspected_encoded_values, 1u);
  EXPECT_EQ(acct->nulls, 3u);

  std::string text = profile.ToText();
  EXPECT_NE(text.find("ANOMALY: mixed types"), std::string::npos);
  EXPECT_NE(text.find("encoded legacy data"), std::string::npos);
}

TEST(ProfilerTest, TopValuesRanked) {
  std::vector<KeyedRecord> records;
  for (int i = 0; i < 5; ++i) {
    records.push_back({"a" + std::to_string(i),
                       {{"city", Value::String("seattle")}}});
  }
  records.push_back({"b", {{"city", Value::String("boise")}}});
  BatchProfile profile = ProfileRecords(records);
  const FieldProfile* city = profile.field("city");
  ASSERT_NE(city, nullptr);
  ASSERT_GE(city->top_values.size(), 2u);
  EXPECT_EQ(city->top_values[0].first, "seattle");
  EXPECT_EQ(city->top_values[0].second, 5u);
}

TEST(ProfilerTest, EmptyBatch) {
  BatchProfile profile = ProfileRecords({});
  EXPECT_EQ(profile.record_count, 0u);
  EXPECT_TRUE(profile.fields.empty());
}

// ---- Merge/purge ------------------------------------------------------------------

std::vector<KeyedRecord> DirtyCustomers() {
  auto rec = [](const std::string& id, const std::string& name,
                const std::string& city) {
    return KeyedRecord{
        id, {{"name", Value::String(name)}, {"city", Value::String(city)}}};
  };
  return {
      rec("crm#1", "Ada Lovelace", "Seattle"),
      rec("erp#1", "Ada Lovelace", "Seattle"),   // duplicate of crm#1
      rec("crm#2", "Bob Barker", "Portland"),
      rec("erp#2", "Bob Barkr", "Portland"),     // typo duplicate
      rec("crm#3", "Cleo Patra", "Boise"),
  };
}

RecordMatcher StrictMatcher() {
  std::vector<MatchRule> rules;
  rules.push_back({"name", JaroWinklerSimilarity, 2.0, 0.0});
  rules.push_back({"city",
                   [](const std::string& a, const std::string& b) {
                     return a == b ? 1.0 : 0.0;
                   },
                   1.0, 0.0});
  return RecordMatcher(std::move(rules), 0.80, 0.93);
}

TEST(MergePurgeTest, NaiveFindsBothDuplicatePairs) {
  std::vector<KeyedRecord> records = DirtyCustomers();
  RecordMatcher matcher = StrictMatcher();
  MergePurgeOptions options;
  options.strategy = MatchStrategy::kNaivePairwise;
  Result<MergePurgeResult> result = MergePurge(records, matcher, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clusters.size(), 3u);
  EXPECT_EQ(result->pairs_considered, 10u);  // C(5,2)
}

TEST(MergePurgeTest, SortedNeighbourhoodMatchesNaiveHere) {
  std::vector<KeyedRecord> records = DirtyCustomers();
  RecordMatcher matcher = StrictMatcher();
  MergePurgeOptions options;
  options.strategy = MatchStrategy::kSortedNeighbourhood;
  options.window = 3;
  Result<MergePurgeResult> result = MergePurge(records, matcher, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clusters.size(), 3u);
  EXPECT_LT(result->pairs_considered, 10u);  // fewer than naive
}

TEST(MergePurgeTest, ConcordanceShortCircuitsSecondRun) {
  std::vector<KeyedRecord> records = DirtyCustomers();
  RecordMatcher matcher = StrictMatcher();
  ConcordanceDatabase concordance;
  MergePurgeOptions options;
  options.strategy = MatchStrategy::kNaivePairwise;
  options.concordance = &concordance;

  Result<MergePurgeResult> cold = MergePurge(records, matcher, options);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->concordance_hits, 0u);
  size_t cold_scored = cold->pairs_scored;
  EXPECT_GT(cold_scored, 0u);

  Result<MergePurgeResult> warm = MergePurge(records, matcher, options);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->pairs_scored, 0u);  // everything answered from the store
  EXPECT_EQ(warm->concordance_hits, warm->pairs_considered);
  EXPECT_EQ(warm->clusters.size(), cold->clusters.size());
}

TEST(MergePurgeTest, HumanDecisionChangesClustering) {
  std::vector<KeyedRecord> records = DirtyCustomers();
  RecordMatcher matcher = StrictMatcher();
  ConcordanceDatabase concordance;
  // A human says crm#3 and crm#1 are actually the same entity.
  ASSERT_TRUE(concordance.RecordHuman("crm#3", "crm#1", true).ok());
  MergePurgeOptions options;
  options.strategy = MatchStrategy::kNaivePairwise;
  options.concordance = &concordance;
  Result<MergePurgeResult> result = MergePurge(records, matcher, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clusters.size(), 2u);
}

TEST(MergePurgeTest, PossiblesQueueAsExceptions) {
  auto rec = [](const std::string& id, const std::string& name) {
    return KeyedRecord{id, {{"name", Value::String(name)}}};
  };
  std::vector<KeyedRecord> records = {rec("a", "Jon Smith"),
                                      rec("b", "John Smith")};
  std::vector<MatchRule> rules;
  rules.push_back({"name", JaroWinklerSimilarity, 1.0, 0.0});
  // Thresholds bracket the Jon/John similarity.
  RecordMatcher matcher(std::move(rules), 0.80, 0.99);
  ConcordanceDatabase concordance;
  MergePurgeOptions options;
  options.strategy = MatchStrategy::kNaivePairwise;
  options.concordance = &concordance;
  Result<MergePurgeResult> result = MergePurge(records, matcher, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->exceptions_queued, 1u);
  EXPECT_EQ(result->clusters.size(), 2u);  // not merged yet
  // Human resolves: they are the same; rerun merges.
  ASSERT_TRUE(concordance.ResolveNextException(true).ok());
  Result<MergePurgeResult> rerun = MergePurge(records, matcher, options);
  ASSERT_TRUE(rerun.ok());
  EXPECT_EQ(rerun->clusters.size(), 1u);
}

TEST(MergePurgeTest, MultiPassRecoversFlippedNames) {
  // "Lovelace, Ada" standardized late / not at all sorts far from
  // "Ada Lovelace" under a single name key; a reversed-token second key
  // brings the pair into one window.
  auto rec = [](const std::string& id, const std::string& name) {
    return KeyedRecord{id, {{"name", Value::String(name)}}};
  };
  // Fillers sort *between* the two spellings so a window of 2 on the
  // plain name key never compares them.
  std::vector<KeyedRecord> records = {
      rec("a1", "ada lovelace"), rec("m1", "bob xylo"),
      rec("m2", "carl ypsi"),    rec("m3", "dave zeta"),
      rec("m4", "ed aard"),      rec("z1", "lovelace ada"),
  };
  std::vector<MatchRule> rules;
  rules.push_back({"name", TokenJaccardSimilarity, 1.0, 0.0});
  RecordMatcher matcher(std::move(rules), 0.9, 0.95);

  auto name_key = [](const KeyedRecord& r) {
    return r.fields.at("name").ToString();
  };
  auto reversed_key = [](const KeyedRecord& r) {
    std::vector<std::string> tokens =
        SplitWhitespace(r.fields.at("name").ToString());
    std::reverse(tokens.begin(), tokens.end());
    return Join(tokens, " ");
  };

  MergePurgeOptions single;
  single.strategy = MatchStrategy::kSortedNeighbourhood;
  single.window = 2;
  single.key_extractor = name_key;
  Result<MergePurgeResult> one_pass = MergePurge(records, matcher, single);
  ASSERT_TRUE(one_pass.ok());
  EXPECT_EQ(one_pass->clusters.size(), 6u);  // misses the pair

  MergePurgeOptions multi;
  multi.strategy = MatchStrategy::kMultiPassSortedNeighbourhood;
  multi.window = 2;
  multi.key_extractors.push_back(name_key);
  multi.key_extractors.push_back(reversed_key);
  Result<MergePurgeResult> two_pass = MergePurge(records, matcher, multi);
  ASSERT_TRUE(two_pass.ok());
  EXPECT_EQ(two_pass->clusters.size(), 5u);  // a1 + z1 merged
}

TEST(MergePurgeTest, MultiPassSkipsAlreadyClusteredPairs) {
  auto rec = [](const std::string& id, const std::string& name) {
    return KeyedRecord{id, {{"name", Value::String(name)}}};
  };
  std::vector<KeyedRecord> records = {rec("a", "same"), rec("b", "same")};
  std::vector<MatchRule> rules;
  rules.push_back({"name", TokenJaccardSimilarity, 1.0, 0.0});
  RecordMatcher matcher(std::move(rules), 0.5, 0.9);
  MergePurgeOptions multi;
  multi.strategy = MatchStrategy::kMultiPassSortedNeighbourhood;
  multi.window = 2;
  auto key = [](const KeyedRecord& r) {
    return r.fields.at("name").ToString();
  };
  multi.key_extractors.assign(3, key);
  Result<MergePurgeResult> result = MergePurge(records, matcher, multi);
  ASSERT_TRUE(result.ok());
  // The pair is scored once; later passes skip it as already clustered.
  EXPECT_EQ(result->pairs_scored, 1u);
  EXPECT_EQ(result->clusters.size(), 1u);
}

TEST(MergePurgeTest, WindowValidation) {
  RecordMatcher matcher = StrictMatcher();
  MergePurgeOptions options;
  options.window = 1;
  EXPECT_FALSE(MergePurge({}, matcher, options).ok());
}

TEST(MergePurgeTest, FuseClusterPrefersLongestValues) {
  std::vector<KeyedRecord> records = {
      {"a", {{"name", Value::String("Ada L.")}, {"phone", Value::Null()}}},
      {"b",
       {{"name", Value::String("Ada Lovelace")},
        {"phone", Value::String("206-555-0000")}}},
  };
  Record fused = FuseCluster(records, {0, 1});
  EXPECT_EQ(fused["name"], Value::String("Ada Lovelace"));
  EXPECT_EQ(fused["phone"], Value::String("206-555-0000"));
}

TEST(UnionFindTest, Basics) {
  UnionFind uf(5);
  uf.Union(0, 1);
  uf.Union(3, 4);
  EXPECT_EQ(uf.Find(0), uf.Find(1));
  EXPECT_NE(uf.Find(0), uf.Find(2));
  uf.Union(1, 3);
  EXPECT_EQ(uf.Find(0), uf.Find(4));
}

// ---- Lineage ----------------------------------------------------------------------

TEST(LineageTest, RecordsAndRecallsOriginal) {
  LineageLog log;
  log.Record("r1", "name", "normalize", Value::String("Lovelace, Ada"),
             Value::String("Ada Lovelace"));
  log.Record("r1", "name", "casefold", Value::String("Ada Lovelace"),
             Value::String("ada lovelace"));
  EXPECT_EQ(log.ForRecord("r1").size(), 2u);
  Result<Value> original = log.OriginalValue("r1", "name");
  ASSERT_TRUE(original.ok());
  EXPECT_EQ(*original, Value::String("Lovelace, Ada"));
  EXPECT_EQ(log.OriginalValue("r1", "phone").status().code(),
            StatusCode::kNotFound);
}

// ---- Flow -------------------------------------------------------------------------

TEST(FlowTest, NormalizeThenDedup) {
  std::vector<KeyedRecord> records = {
      {"crm#1",
       {{"name", Value::String("Lovelace, Ada")},
        {"city", Value::String("Seattle")}}},
      {"erp#1",
       {{"name", Value::String("Ada   Lovelace")},
        {"city", Value::String("Seattle")}}},
      {"crm#2",
       {{"name", Value::String("Barker, Bob")},
        {"city", Value::String("Portland")}}},
  };
  auto matcher = std::make_shared<RecordMatcher>(
      std::vector<MatchRule>{{"name", JaroWinklerSimilarity, 2.0, 0.0},
                             {"city",
                              [](const std::string& a, const std::string& b) {
                                return a == b ? 1.0 : 0.0;
                              },
                              1.0, 0.0}},
      0.8, 0.95);
  MergePurgeOptions options;
  options.strategy = MatchStrategy::kNaivePairwise;

  CleaningFlow flow("customers");
  flow.NormalizeField("name", NormalizerPipeline::ForNames())
      .Deduplicate(matcher, options);

  LineageLog lineage;
  Result<FlowOutput> output = flow.Run(records, &lineage);
  ASSERT_TRUE(output.ok());
  // "Lovelace, Ada" and "Ada   Lovelace" both normalize to "Ada Lovelace"
  // and merge; Bob stays.
  EXPECT_EQ(output->records.size(), 2u);
  EXPECT_EQ(output->values_normalized, 3u);
  EXPECT_GT(lineage.size(), 0u);
  // Lineage can recover the pre-cleaning value.
  EXPECT_EQ(*lineage.OriginalValue("crm#1", "name"),
            Value::String("Lovelace, Ada"));
}

TEST(FlowTest, DescribeIsDeclarative) {
  CleaningFlow flow("f");
  flow.NormalizeField("name", NormalizerPipeline::ForNames());
  std::string description = flow.Describe();
  EXPECT_NE(description.find("normalize(name"), std::string::npos);
  EXPECT_NE(description.find("standardize_name"), std::string::npos);
}

TEST(FlowTest, CleanXmlRecordsDynamic) {
  // Simulates dynamic cleaning of an integration result document.
  Result<NodePtr> doc = ParseXml(
      "<results>"
      "<customer><name>Lovelace, Ada</name><city>Seattle</city></customer>"
      "<customer><name>Ada Lovelace</name><city>Seattle</city></customer>"
      "<customer><name>Bob Barker</name><city>Portland</city></customer>"
      "</results>");
  ASSERT_TRUE(doc.ok());
  auto matcher = std::make_shared<RecordMatcher>(
      std::vector<MatchRule>{{"name", JaroWinklerSimilarity, 1.0, 0.0}}, 0.8,
      0.95);
  MergePurgeOptions options;
  options.strategy = MatchStrategy::kNaivePairwise;
  CleaningFlow flow("dyn");
  flow.NormalizeField("name", NormalizerPipeline::ForNames())
      .Deduplicate(matcher, options);
  Result<NodePtr> cleaned = CleanXmlRecords(**doc, flow, "res");
  ASSERT_TRUE(cleaned.ok());
  EXPECT_EQ((*cleaned)->name(), "results");
  EXPECT_EQ((*cleaned)->children().size(), 2u);
  EXPECT_EQ((*cleaned)->children()[0]->name(), "customer");
}

}  // namespace
}  // namespace cleaning
}  // namespace nimble
