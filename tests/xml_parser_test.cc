#include <gtest/gtest.h>

#include "xml/node.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace nimble {
namespace {

NodePtr MustParse(const std::string& xml, const XmlParseOptions& opts = {}) {
  Result<NodePtr> r = ParseXml(xml, opts);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << " for: " << xml;
  if (!r.ok()) std::abort();
  return *r;
}

TEST(XmlParserTest, SimpleElement) {
  NodePtr root = MustParse("<a/>");
  EXPECT_EQ(root->name(), "a");
  EXPECT_TRUE(root->children().empty());
}

TEST(XmlParserTest, NestedElements) {
  NodePtr root = MustParse("<a><b><c/></b></a>");
  EXPECT_EQ(root->FindChild("b")->FindChild("c")->name(), "c");
}

TEST(XmlParserTest, TextContentInferredTyped) {
  NodePtr root = MustParse("<n>42</n>");
  EXPECT_EQ(root->ScalarValue(), Value::Int(42));
}

TEST(XmlParserTest, PureXmlModeKeepsStrings) {
  XmlParseOptions opts;
  opts.infer_types = false;
  NodePtr root = MustParse("<n>42</n>", opts);
  EXPECT_EQ(root->ScalarValue(), Value::String("42"));
}

TEST(XmlParserTest, Attributes) {
  NodePtr root = MustParse("<a id=\"7\" name='x y'/>");
  EXPECT_EQ(root->GetAttribute("id"), Value::Int(7));
  EXPECT_EQ(root->GetAttribute("name"), Value::String("x y"));
}

TEST(XmlParserTest, EntitiesUnescaped) {
  NodePtr root = MustParse("<a>&lt;x&gt; &amp; &quot;y&quot; &apos;z&apos;</a>");
  EXPECT_EQ(root->ScalarValue(), Value::String("<x> & \"y\" 'z'"));
}

TEST(XmlParserTest, CharacterReferences) {
  NodePtr root = MustParse("<a>&#65;&#x42;</a>");
  EXPECT_EQ(root->ScalarValue(), Value::String("AB"));
}

TEST(XmlParserTest, CommentsSkipped) {
  NodePtr root = MustParse("<a><!-- hi --><b/><!-- bye --></a>");
  EXPECT_EQ(root->children().size(), 1u);
}

TEST(XmlParserTest, CdataPreserved) {
  NodePtr root = MustParse("<a><![CDATA[<raw> & text]]></a>");
  EXPECT_EQ(root->ScalarValue(), Value::String("<raw> & text"));
}

TEST(XmlParserTest, DeclarationAndDoctypeSkipped) {
  NodePtr root = MustParse(
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      "<!DOCTYPE note>\n"
      "<note/>");
  EXPECT_EQ(root->name(), "note");
}

TEST(XmlParserTest, WhitespaceBetweenElementsStripped) {
  NodePtr root = MustParse("<a>\n  <b/>\n  <c/>\n</a>");
  EXPECT_EQ(root->children().size(), 2u);
}

TEST(XmlParserTest, MixedContentKept) {
  NodePtr root = MustParse("<p>hello <b>bold</b> world</p>");
  ASSERT_EQ(root->children().size(), 3u);
  EXPECT_TRUE(root->children()[0]->is_text());
  EXPECT_TRUE(root->children()[1]->is_element());
  EXPECT_TRUE(root->children()[2]->is_text());
}

TEST(XmlParserTest, DocumentOrderPreserved) {
  NodePtr root = MustParse("<r><z/><a/><m/></r>");
  ASSERT_EQ(root->children().size(), 3u);
  EXPECT_EQ(root->children()[0]->name(), "z");
  EXPECT_EQ(root->children()[1]->name(), "a");
  EXPECT_EQ(root->children()[2]->name(), "m");
}

TEST(XmlParserTest, ParentPointersWired) {
  NodePtr root = MustParse("<a><b><c/></b></a>");
  NodePtr c = root->FindChild("b")->FindChild("c");
  EXPECT_EQ(c->parent()->name(), "b");
  EXPECT_EQ(c->parent()->parent()->name(), "a");
}

// ---- Error cases -----------------------------------------------------------

TEST(XmlParserTest, ErrorMismatchedTags) {
  Result<NodePtr> r = ParseXml("<a><b></a></b>");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(XmlParserTest, ErrorUnclosedTag) {
  EXPECT_FALSE(ParseXml("<a><b>").ok());
}

TEST(XmlParserTest, ErrorTrailingContent) {
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());
}

TEST(XmlParserTest, ErrorBadEntity) {
  EXPECT_FALSE(ParseXml("<a>&bogus;</a>").ok());
}

TEST(XmlParserTest, ErrorUnquotedAttribute) {
  EXPECT_FALSE(ParseXml("<a id=7/>").ok());
}

TEST(XmlParserTest, ErrorReportsLineNumber) {
  Result<NodePtr> r = ParseXml("<a>\n<b>\n</c>\n</a>");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
      << r.status().ToString();
}

// ---- Serializer ------------------------------------------------------------

TEST(XmlSerializerTest, CompactOutput) {
  NodePtr root = Node::Element("a");
  root->SetAttribute("id", Value::Int(1));
  root->AddScalarChild("b", Value::String("x"));
  EXPECT_EQ(ToXml(*root), "<a id=\"1\"><b>x</b></a>");
}

TEST(XmlSerializerTest, SelfClosingForEmpty) {
  EXPECT_EQ(ToXml(*Node::Element("e")), "<e/>");
}

TEST(XmlSerializerTest, EscapesSpecials) {
  NodePtr root = Node::Element("a");
  root->SetAttribute("q", Value::String("say \"hi\""));
  root->AddChild(Node::Text(Value::String("1 < 2 & 3 > 2")));
  std::string xml = ToXml(*root);
  EXPECT_EQ(xml,
            "<a q=\"say &quot;hi&quot;\">1 &lt; 2 &amp; 3 &gt; 2</a>");
}

TEST(XmlSerializerTest, PrettyPrintIndents) {
  NodePtr root = Node::Element("a");
  root->AddScalarChild("b", Value::Int(1));
  root->AddScalarChild("c", Value::Int(2));
  EXPECT_EQ(ToPrettyXml(*root), "<a>\n  <b>1</b>\n  <c>2</c>\n</a>");
}

TEST(XmlSerializerTest, DeclarationOption) {
  XmlWriteOptions opts;
  opts.declaration = true;
  EXPECT_EQ(ToXml(*Node::Element("a"), opts), "<?xml version=\"1.0\"?><a/>");
}

// ---- Round-trip property ----------------------------------------------------

class XmlRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(XmlRoundTrip, ParseSerializeParseIsStable) {
  NodePtr first = MustParse(GetParam());
  ASSERT_NE(first, nullptr);
  std::string serialized = ToXml(*first);
  NodePtr second = MustParse(serialized);
  ASSERT_NE(second, nullptr);
  EXPECT_TRUE(first->DeepEquals(*second))
      << "original: " << GetParam() << "\nserialized: " << serialized;
  // Serialization is a fixpoint after one round.
  EXPECT_EQ(ToXml(*second), serialized);
}

INSTANTIATE_TEST_SUITE_P(
    Docs, XmlRoundTrip,
    ::testing::Values(
        "<a/>", "<a b=\"1\"/>", "<a>42</a>", "<a>3.5</a>", "<a>text</a>",
        "<a><b/><c/><b/></a>",
        "<library><book year=\"2001\"><title>Data on the Web</title>"
        "<author>Abiteboul</author></book></library>",
        "<r><x>1 &lt; 2</x><y attr=\"&amp;\">z</y></r>",
        "<o><item sku=\"a-1\" qty=\"3\"/><item sku=\"b-2\" qty=\"1\"/></o>"));

}  // namespace
}  // namespace nimble
