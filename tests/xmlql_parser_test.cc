#include <gtest/gtest.h>

#include "xmlql/parser.h"

namespace nimble {
namespace xmlql {
namespace {

Query MustParse(const std::string& text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  if (!q.ok()) std::abort();
  return std::move(*q);
}

TEST(XmlQlParserTest, MinimalQuery) {
  Query q = MustParse(R"(
    WHERE <db><item><v>$x</v></item></db> IN "src:db"
    CONSTRUCT <out>$x</out>
  )");
  ASSERT_EQ(q.patterns.size(), 1u);
  EXPECT_EQ(q.patterns[0].source.source, "src");
  EXPECT_EQ(q.patterns[0].source.collection, "db");
  EXPECT_EQ(q.patterns[0].root.tag, "db");
  ASSERT_EQ(q.patterns[0].root.children.size(), 1u);
  EXPECT_EQ(q.patterns[0].root.children[0]->tag, "item");
  EXPECT_EQ(q.patterns[0].root.children[0]->children[0]->content_variable,
            "x");
  EXPECT_TRUE(q.conditions.empty());
  EXPECT_EQ(q.construct->tag, "out");
}

TEST(XmlQlParserTest, ViewReferenceHasNoSource) {
  Query q = MustParse(R"(
    WHERE <results><r><v>$x</v></r></results> IN my_view
    CONSTRUCT <out>$x</out>
  )");
  EXPECT_TRUE(q.patterns[0].source.is_view());
  EXPECT_EQ(q.patterns[0].source.collection, "my_view");
}

TEST(XmlQlParserTest, AttributePatterns) {
  Query q = MustParse(R"(
    WHERE <db><item sku=$k kind="tool"><v>$x</v></item></db> IN "s:db"
    CONSTRUCT <out sku=$k>$x</out>
  )");
  const ElementPattern& item = *q.patterns[0].root.children[0];
  ASSERT_EQ(item.attributes.size(), 2u);
  EXPECT_TRUE(item.attributes[0].is_variable);
  EXPECT_EQ(item.attributes[0].variable, "k");
  EXPECT_FALSE(item.attributes[1].is_variable);
  EXPECT_EQ(item.attributes[1].literal, Value::String("tool"));
  ASSERT_EQ(q.construct->attributes.size(), 1u);
  EXPECT_TRUE(q.construct->attributes[0].is_variable);
}

TEST(XmlQlParserTest, ConditionsAllOperators) {
  Query q = MustParse(R"(
    WHERE <d><i><a>$a</a><b>$b</b></i></d> IN "s:d",
          $a = 1, $a != 2, $a < 3, $a <= 4, $a > 0, $a >= 1,
          $b LIKE 'x%', $a = $b
    CONSTRUCT <o>$a</o>
  )");
  ASSERT_EQ(q.conditions.size(), 8u);
  EXPECT_EQ(q.conditions[0].op, Condition::Op::kEq);
  EXPECT_EQ(q.conditions[1].op, Condition::Op::kNe);
  EXPECT_EQ(q.conditions[2].op, Condition::Op::kLt);
  EXPECT_EQ(q.conditions[3].op, Condition::Op::kLe);
  EXPECT_EQ(q.conditions[4].op, Condition::Op::kGt);
  EXPECT_EQ(q.conditions[5].op, Condition::Op::kGe);
  EXPECT_EQ(q.conditions[6].op, Condition::Op::kLike);
  EXPECT_TRUE(q.conditions[7].rhs.is_variable);
}

TEST(XmlQlParserTest, LiteralTypes) {
  Query q = MustParse(R"(
    WHERE <d><i><a>$a</a></i></d> IN "s:d",
          $a = 1, $a = 2.5, $a = -3, $a = 'str', $a = true, $a = null
    CONSTRUCT <o>$a</o>
  )");
  EXPECT_EQ(q.conditions[0].rhs.literal, Value::Int(1));
  EXPECT_EQ(q.conditions[1].rhs.literal, Value::Double(2.5));
  EXPECT_EQ(q.conditions[2].rhs.literal, Value::Int(-3));
  EXPECT_EQ(q.conditions[3].rhs.literal, Value::String("str"));
  EXPECT_EQ(q.conditions[4].rhs.literal, Value::Bool(true));
  EXPECT_TRUE(q.conditions[5].rhs.literal.is_null());
}

TEST(XmlQlParserTest, DescendantAndWildcardAndElementAs) {
  Query q = MustParse(R"(
    WHERE <//book ELEMENT_AS $b><*><t>$t</t></*></book> IN "s:lib"
    CONSTRUCT <o>$b</o>
  )");
  EXPECT_TRUE(q.patterns[0].root.descendant);
  EXPECT_EQ(q.patterns[0].root.element_variable, "b");
  EXPECT_EQ(q.patterns[0].root.children[0]->tag, "*");
}

TEST(XmlQlParserTest, ContentLiteralConstraint) {
  Query q = MustParse(R"(
    WHERE <d><i><status>open</status><v>$v</v></i></d> IN "s:d"
    CONSTRUCT <o>$v</o>
  )");
  const ElementPattern& status = *q.patterns[0].root.children[0]->children[0];
  ASSERT_TRUE(status.content_literal.has_value());
  EXPECT_EQ(*status.content_literal, Value::String("open"));
}

TEST(XmlQlParserTest, OrderByAndLimit) {
  Query q = MustParse(R"(
    WHERE <d><i><a>$a</a><b>$b</b></i></d> IN "s:d"
    CONSTRUCT <o>$a</o>
    ORDER BY $a DESC, $b
    LIMIT 10
  )");
  ASSERT_EQ(q.order_by.size(), 2u);
  EXPECT_TRUE(q.order_by[0].descending);
  EXPECT_FALSE(q.order_by[1].descending);
  EXPECT_EQ(q.limit, 10);
}

TEST(XmlQlParserTest, TemplateNesting) {
  Query q = MustParse(R"(
    WHERE <d><i><a>$a</a></i></d> IN "s:d"
    CONSTRUCT <r><nested deep="yes"><v>$a</v>literal text</nested></r>
  )");
  ASSERT_EQ(q.construct->children.size(), 1u);
  const TemplateNode& nested = *q.construct->children[0];
  EXPECT_EQ(nested.tag, "nested");
  ASSERT_EQ(nested.children.size(), 2u);
  EXPECT_EQ(nested.children[0]->tag, "v");
  EXPECT_EQ(nested.children[1]->kind, TemplateNode::Kind::kText);
  EXPECT_EQ(nested.children[1]->text, Value::String("literal text"));
}

TEST(XmlQlParserTest, UnionProgram) {
  Result<Program> p = ParseProgram(R"(
    WHERE <a><i><v>$v</v></i></a> IN "s:a" CONSTRUCT <o>$v</o>
    UNION
    WHERE <b><i><v>$v</v></i></b> IN "s:b" CONSTRUCT <o>$v</o>
    UNION
    WHERE <c><i><v>$v</v></i></c> IN "s:c" CONSTRUCT <o>$v</o>
  )");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->branches.size(), 3u);
}

TEST(XmlQlParserTest, ParseQueryRejectsUnion) {
  Result<Query> q = ParseQuery(
      "WHERE <a><i><v>$v</v></i></a> IN \"s:a\" CONSTRUCT <o>$v</o> "
      "UNION WHERE <b><i><v>$v</v></i></b> IN \"s:b\" CONSTRUCT <o>$v</o>");
  EXPECT_FALSE(q.ok());
}

TEST(XmlQlParserTest, BoundVariablesDeduplicated) {
  Query q = MustParse(R"(
    WHERE <a><i><v>$v</v><w>$w</w></i></a> IN "s:a",
          <b><j><v>$v</v></j></b> IN "s:b"
    CONSTRUCT <o>$v</o>
  )");
  EXPECT_EQ(q.BoundVariables(), (std::vector<std::string>{"v", "w"}));
}

TEST(XmlQlParserTest, GroupByAndAggregates) {
  Query q = MustParse(R"(
    WHERE <d><i><city>$c</city><amount>$a</amount></i></d> IN "s:d"
    CONSTRUCT <stats city=$c><n>count($a)</n><total>sum($a)</total>
              <mean>avg($a)</mean><lo>min($a)</lo><hi>max($a)</hi></stats>
    GROUP BY $c
    ORDER BY $c
  )");
  EXPECT_EQ(q.group_by, (std::vector<std::string>{"c"}));
  EXPECT_TRUE(q.IsAggregation());
  std::vector<std::pair<AggregateFn, std::string>> calls;
  q.construct->CollectAggregates(&calls);
  ASSERT_EQ(calls.size(), 5u);
  EXPECT_EQ(calls[0].first, AggregateFn::kCount);
  EXPECT_EQ(calls[4].first, AggregateFn::kMax);
}

TEST(XmlQlParserTest, GlobalAggregationWithoutGroupBy) {
  Query q = MustParse(R"(
    WHERE <d><i><a>$a</a></i></d> IN "s:d"
    CONSTRUCT <total>sum($a)</total>
  )");
  EXPECT_TRUE(q.IsAggregation());
  EXPECT_TRUE(q.group_by.empty());
}

TEST(XmlQlParserTest, NonAggregationHasNoAggregates) {
  Query q = MustParse(R"(
    WHERE <d><i><a>$a</a></i></d> IN "s:d" CONSTRUCT <o>$a</o>
  )");
  EXPECT_FALSE(q.IsAggregation());
  EXPECT_FALSE(q.construct->ContainsAggregate());
}

TEST(XmlQlParserTest, AggregateLikeTextIsNotMisparsed) {
  // "count(...)" without a variable stays literal text.
  Query q = MustParse(R"(
    WHERE <d><i><a>$a</a></i></d> IN "s:d"
    CONSTRUCT <o>count(items)</o>
  )");
  EXPECT_FALSE(q.IsAggregation());
}

TEST(XmlQlParserTest, AggregationErrors) {
  // Ungrouped plain variable in an aggregation.
  EXPECT_FALSE(ParseQuery(R"(
    WHERE <d><i><a>$a</a><b>$b</b></i></d> IN "s:d"
    CONSTRUCT <o>$b<n>count($a)</n></o>
  )").ok());
  // ORDER BY non-group variable under aggregation.
  EXPECT_FALSE(ParseQuery(R"(
    WHERE <d><i><a>$a</a><b>$b</b></i></d> IN "s:d"
    CONSTRUCT <o b=$b><n>count($a)</n></o>
    GROUP BY $b
    ORDER BY $a
  )").ok());
  // GROUP BY unbound variable.
  EXPECT_FALSE(ParseQuery(R"(
    WHERE <d><i><a>$a</a></i></d> IN "s:d"
    CONSTRUCT <n>count($a)</n>
    GROUP BY $zz
  )").ok());
}

// ---- Error cases -------------------------------------------------------------

class XmlQlParseError : public ::testing::TestWithParam<const char*> {};

TEST_P(XmlQlParseError, Rejected) {
  Result<Query> q = ParseQuery(GetParam());
  EXPECT_FALSE(q.ok()) << "should reject: " << GetParam();
  if (!q.ok()) {
    EXPECT_EQ(q.status().code(), StatusCode::kParseError);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, XmlQlParseError,
    ::testing::Values(
        "",                                                    // empty
        "CONSTRUCT <o/>",                                      // no WHERE
        "WHERE CONSTRUCT <o/>",                                // no pattern
        "WHERE <a><v>$v</v></a> CONSTRUCT <o>$v</o>",          // missing IN
        "WHERE <a><v>$v</v></a> IN \"s:\" CONSTRUCT <o/>",     // bad ref
        "WHERE <a><v>$v</v></b> IN \"s:a\" CONSTRUCT <o/>",    // mismatch tag
        "WHERE <a><v>$v</v></a> IN \"s:a\"",                   // no CONSTRUCT
        "WHERE <a><v>$v</v></a> IN \"s:a\" CONSTRUCT <o>$zz</o>",  // unbound
        "WHERE <a><v>$v</v></a> IN \"s:a\", $q = 1 CONSTRUCT <o>$v</o>",
        "WHERE <a><v>$v</v></a> IN \"s:a\" CONSTRUCT <o>$v</o> ORDER BY $zz",
        "WHERE <a><v>$v</v></a> IN \"s:a\" CONSTRUCT <o>$v</o> LIMIT x",
        "WHERE <a><v>$v</v></a> IN \"s:a\" CONSTRUCT <o>$v</o> extra"));

}  // namespace
}  // namespace xmlql
}  // namespace nimble
