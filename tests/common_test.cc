#include <gtest/gtest.h>

#include <set>

#include "common/clock.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace nimble {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing table");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing table");
  EXPECT_EQ(s.ToString(), "NotFound: missing table");
}

TEST(StatusTest, EveryFactoryProducesMatchingCode) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::TypeError("x").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::PermissionDenied("x").code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::Timeout("x").code(), StatusCode::kTimeout);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  NIMBLE_ASSIGN_OR_RETURN(int half, Half(x));
  return Half(half);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = Half(10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Half(3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_TRUE(Quarter(12).ok());
  EXPECT_EQ(*Quarter(12), 3);
  EXPECT_FALSE(Quarter(10).ok());  // 10/2=5 is odd
  EXPECT_FALSE(Quarter(7).ok());
}

TEST(ResultTest, ValueOr) {
  EXPECT_EQ(Half(4).ValueOr(-1), 2);
  EXPECT_EQ(Half(3).ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(42);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 42);
}

TEST(StringsTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringsTest, SplitWhitespace) {
  EXPECT_EQ(SplitWhitespace("  a\tb  c\n"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(ToLower("MiXeD123"), "mixed123");
  EXPECT_EQ(ToUpper("MiXeD123"), "MIXED123");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("hello", "lo"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
  EXPECT_FALSE(EndsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
}

TEST(StringsTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a.b.c", ".", "::"), "a::b::c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(ReplaceAll("abc", "", "x"), "abc");
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(7);
  int hits = 0;
  const int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.03);
}

TEST(ZipfTest, SkewConcentratesMass) {
  ZipfGenerator zipf(100, 1.2, 99);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Next()];
  // Rank 0 should dominate rank 50 heavily under skew 1.2.
  EXPECT_GT(counts[0], counts[50] * 5);
}

TEST(ZipfTest, ZeroSkewIsRoughlyUniform) {
  ZipfGenerator zipf(10, 0.0, 99);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Next()];
  for (int c : counts) EXPECT_NEAR(c, 5000, 600);
}

TEST(ClockTest, VirtualClockAdvances) {
  VirtualClock clock;
  EXPECT_EQ(clock.NowMicros(), 0);
  clock.AdvanceMicros(1500);
  EXPECT_EQ(clock.NowMicros(), 1500);
  clock.AdvanceMicros(500);
  EXPECT_EQ(clock.NowMicros(), 2000);
  clock.Reset();
  EXPECT_EQ(clock.NowMicros(), 0);
}

TEST(ClockTest, RealClockMonotone) {
  RealClock clock;
  int64_t a = clock.NowMicros();
  int64_t b = clock.NowMicros();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace nimble
