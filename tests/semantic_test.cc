#include "xmlql/semantic.h"

#include <gtest/gtest.h>

#include <string>

#include "xmlql/parser.h"

namespace nimble {
namespace xmlql {
namespace {

Query MustParse(const std::string& text) {
  Result<Query> q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  if (!q.ok()) std::abort();
  return std::move(*q);
}

Status Strict(const Query& query) {
  AnalysisOptions options;
  options.strict = true;
  return AnalyzeQuery(query, options);
}

// ---- Basic mode (the parser's own validation path) -----------------------

TEST(SemanticTest, ValidQueryPassesBothModes) {
  Query q = MustParse(
      "WHERE <r><a>$a</a><b>$b</b></r> IN \"db:t\", $a > 3 "
      "CONSTRUCT <out><v>$b</v></out>");
  EXPECT_TRUE(AnalyzeQuery(q).ok());
  EXPECT_TRUE(Strict(q).ok());
}

TEST(SemanticTest, UnboundConditionVariableCitesPosition) {
  // The parser runs basic analysis itself; the error must carry the
  // condition's line/column.
  Result<Query> q = ParseQuery(
      "WHERE <r><a>$a</a></r> IN \"db:t\",\n"
      "      $ghost = 1\n"
      "CONSTRUCT <out/>");
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kParseError);
  EXPECT_NE(q.status().message().find("$ghost"), std::string::npos)
      << q.status().ToString();
  EXPECT_NE(q.status().message().find("line 2"), std::string::npos)
      << q.status().ToString();
}

TEST(SemanticTest, UnboundConstructVariableCitesPosition) {
  Result<Query> q = ParseQuery(
      "WHERE <r><a>$a</a></r> IN \"db:t\"\n"
      "CONSTRUCT <out>$missing</out>");
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kParseError);
  EXPECT_NE(q.status().message().find("$missing"), std::string::npos);
  EXPECT_NE(q.status().message().find("line 2"), std::string::npos)
      << q.status().ToString();
}

TEST(SemanticTest, UnboundGroupByAndOrderByCitePositions) {
  Result<Query> group = ParseQuery(
      "WHERE <r><a>$a</a></r> IN \"db:t\"\n"
      "CONSTRUCT <out>count($a)</out>\n"
      "GROUP BY $nope");
  ASSERT_FALSE(group.ok());
  EXPECT_EQ(group.status().code(), StatusCode::kParseError);
  EXPECT_NE(group.status().message().find("GROUP BY"), std::string::npos);
  EXPECT_NE(group.status().message().find("line 3"), std::string::npos)
      << group.status().ToString();

  Result<Query> order = ParseQuery(
      "WHERE <r><a>$a</a></r> IN \"db:t\"\n"
      "CONSTRUCT <out>$a</out>\n"
      "ORDER BY $nope");
  ASSERT_FALSE(order.ok());
  EXPECT_EQ(order.status().code(), StatusCode::kParseError);
  EXPECT_NE(order.status().message().find("ORDER BY"), std::string::npos);
  EXPECT_NE(order.status().message().find("line 3"), std::string::npos)
      << order.status().ToString();
}

TEST(SemanticTest, AggregationUsesNonGroupVariable) {
  Result<Query> q = ParseQuery(
      "WHERE <r><a>$a</a><b>$b</b></r> IN \"db:t\" "
      "CONSTRUCT <out><k>$b</k><n>count($a)</n></out> GROUP BY $a");
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kParseError);
  EXPECT_NE(q.status().message().find("GROUP BY"), std::string::npos);
}

TEST(SemanticTest, HandBuiltQueryWithoutPatternsRejected) {
  Query q;
  q.construct = std::make_unique<TemplateNode>();
  Status s = AnalyzeQuery(q);
  EXPECT_EQ(s.code(), StatusCode::kParseError);
}

// ---- Strict mode (engine verifier path) ----------------------------------

TEST(SemanticTest, DuplicateElementAsBindingRejectedStrictOnly) {
  Query q = MustParse(
      "WHERE <r ELEMENT_AS $e><a>$a</a></r> IN \"db:t\",\n"
      "      <s ELEMENT_AS $e><b>$b</b></s> IN \"db:u\"\n"
      "CONSTRUCT <out>$a</out>");
  EXPECT_TRUE(AnalyzeQuery(q).ok());  // basic mode: parseable
  Status s = Strict(q);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("ELEMENT_AS"), std::string::npos);
  EXPECT_NE(s.message().find("line 2"), std::string::npos) << s.ToString();
}

TEST(SemanticTest, ElementAndScalarBindingMixRejected) {
  Query q = MustParse(
      "WHERE <r ELEMENT_AS $x><a>$a</a></r> IN \"db:t\",\n"
      "      <s><b>$x</b></s> IN \"db:u\"\n"
      "CONSTRUCT <out>$a</out>");
  Status s = Strict(q);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
  EXPECT_NE(s.message().find("$x"), std::string::npos);
}

TEST(SemanticTest, LikeWithNonStringPatternIsTypeError) {
  Query q = MustParse(
      "WHERE <r><a>$a</a></r> IN \"db:t\", $a LIKE 42 "
      "CONSTRUCT <out>$a</out>");
  Status s = Strict(q);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
  EXPECT_NE(s.message().find("LIKE"), std::string::npos);
}

TEST(SemanticTest, TypeIncompatibleLiteralComparison) {
  Query q = MustParse(
      "WHERE <r><a>$a</a></r> IN \"db:t\", 1 < 'abc' "
      "CONSTRUCT <out>$a</out>");
  Status s = Strict(q);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
}

TEST(SemanticTest, StaticallyFalseLiteralComparison) {
  Query q = MustParse(
      "WHERE <r><a>$a</a></r> IN \"db:t\", 1 = 2 "
      "CONSTRUCT <out>$a</out>");
  Status s = Strict(q);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("unsatisfiable"), std::string::npos);
  // Mixed int/double still compares numerically — no false positive.
  Query ok = MustParse(
      "WHERE <r><a>$a</a></r> IN \"db:t\", 1 < 2.5 "
      "CONSTRUCT <out>$a</out>");
  EXPECT_TRUE(Strict(ok).ok());
}

TEST(SemanticTest, NullComparisonUnsatisfiableInStrictModeOnly) {
  // The parser (basic mode) accepts `$a = null` — xmlql_parser_test's
  // LiteralTypes depends on it — but the engine's strict pass rejects it:
  // pattern-bound scalars are never null.
  Query q = MustParse(
      "WHERE <r><a>$a</a></r> IN \"db:t\", $a = null "
      "CONSTRUCT <out>$a</out>");
  EXPECT_TRUE(AnalyzeQuery(q).ok());
  Status s = Strict(q);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("never null"), std::string::npos);
  // != null is trivially true, not unsatisfiable.
  Query ne = MustParse(
      "WHERE <r><a>$a</a></r> IN \"db:t\", $a != null "
      "CONSTRUCT <out>$a</out>");
  EXPECT_TRUE(Strict(ne).ok());
}

TEST(SemanticTest, ConflictingEqualityPinsUnsatisfiable) {
  Query q = MustParse(
      "WHERE <r><a>$a</a></r> IN \"db:t\", $a = 1, $a = 2 "
      "CONSTRUCT <out>$a</out>");
  Status s = Strict(q);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("unsatisfiable"), std::string::npos);
  // The same pin twice is merely redundant.
  Query dup = MustParse(
      "WHERE <r><a>$a</a></r> IN \"db:t\", $a = 1, $a = 1 "
      "CONSTRUCT <out>$a</out>");
  EXPECT_TRUE(Strict(dup).ok());
}

// ---- Resolver ------------------------------------------------------------

class OneCollectionResolver : public CollectionResolver {
 public:
  Status Resolve(const SourceRef& ref) const override {
    if (!ref.is_view() && ref.source == "db" && ref.collection == "t") {
      return Status::OK();
    }
    return Status::NotFound("no such collection " + ref.ToString());
  }
};

TEST(SemanticTest, ResolverRejectsDanglingReferenceWithPosition) {
  Query q = MustParse(
      "WHERE <r><a>$a</a></r> IN \"db:t\",\n"
      "      <s><b>$b</b></s> IN \"db:dropped\"\n"
      "CONSTRUCT <out>$a</out>");
  OneCollectionResolver resolver;
  AnalysisOptions options;
  options.resolver = &resolver;
  Status s = AnalyzeQuery(q, options);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_NE(s.message().find("db:dropped"), std::string::npos);
  EXPECT_NE(s.message().find("line 2"), std::string::npos) << s.ToString();
}

TEST(SemanticTest, ProgramAnalysisLabelsUnionBranch) {
  Result<Program> p = ParseProgram(
      "WHERE <r><a>$a</a></r> IN \"db:t\" CONSTRUCT <out>$a</out> "
      "UNION "
      "WHERE <r><b>$b</b></r> IN \"db:t\", $b = null "
      "CONSTRUCT <out>$b</out>");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  AnalysisOptions options;
  options.strict = true;
  Status s = AnalyzeProgram(*p, options);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("UNION branch 2"), std::string::npos)
      << s.ToString();
}

}  // namespace
}  // namespace xmlql
}  // namespace nimble
