#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "algebra/operators.h"
#include "algebra/verifier.h"
#include "connector/relational_connector.h"
#include "connector/xml_connector.h"
#include "core/engine.h"
#include "opt/cardinality.h"
#include "opt/cost_model.h"
#include "xml/serializer.h"

namespace nimble {
namespace opt {
namespace {

// ---- Cardinality estimator --------------------------------------------------

metadata::ColumnStats NumericColumn(int64_t lo, int64_t hi, int distinct,
                                    bool unique = false) {
  metadata::ColumnStats col;
  col.name = "c";
  col.min = Value::Int(lo);
  col.max = Value::Int(hi);
  col.unique = unique;
  for (int i = 0; i < distinct; ++i) col.sketch.Add(Value::Int(lo + i));
  return col;
}

TEST(CardinalityTest, EqualitySelectivityIsOneOverDistinct) {
  metadata::ColumnStats col = NumericColumn(0, 99, 20);
  EXPECT_DOUBLE_EQ(ConditionSelectivity(xmlql::Condition::Op::kEq,
                                        Value::Int(5), &col, 1000.0),
                   1.0 / 20.0);
  // Unique column: one row out of row_count.
  metadata::ColumnStats key = NumericColumn(0, 999, 1000, /*unique=*/true);
  EXPECT_DOUBLE_EQ(ConditionSelectivity(xmlql::Condition::Op::kEq,
                                        Value::Int(5), &key, 1000.0),
                   1.0 / 1000.0);
  // No statistics: System R default.
  EXPECT_DOUBLE_EQ(ConditionSelectivity(xmlql::Condition::Op::kEq,
                                        Value::Int(5), nullptr, 1000.0),
                   kDefaultEqSelectivity);
}

TEST(CardinalityTest, RangeSelectivityInterpolates) {
  metadata::ColumnStats col = NumericColumn(0, 100, 50);
  EXPECT_DOUBLE_EQ(ConditionSelectivity(xmlql::Condition::Op::kLt,
                                        Value::Int(25), &col, 1000.0),
                   0.25);
  EXPECT_DOUBLE_EQ(ConditionSelectivity(xmlql::Condition::Op::kGe,
                                        Value::Int(25), &col, 1000.0),
                   0.75);
  // Out-of-range literals clamp.
  EXPECT_DOUBLE_EQ(ConditionSelectivity(xmlql::Condition::Op::kGt,
                                        Value::Int(500), &col, 1000.0),
                   1e-6);
  // Non-numeric bounds fall back to the default.
  EXPECT_DOUBLE_EQ(ConditionSelectivity(xmlql::Condition::Op::kLt,
                                        Value::String("m"), nullptr, 1000.0),
                   kDefaultRangeSelectivity);
}

TEST(CardinalityTest, LikeUsesDefault) {
  metadata::ColumnStats col = NumericColumn(0, 100, 50);
  EXPECT_DOUBLE_EQ(ConditionSelectivity(xmlql::Condition::Op::kLike,
                                        Value::String("%x%"), &col, 1000.0),
                   kDefaultLikeSelectivity);
}

TEST(CardinalityTest, JoinSelectivityIsOneOverMaxNdv) {
  EXPECT_DOUBLE_EQ(JoinSelectivity(10.0, 1000.0), 1.0 / 1000.0);
  EXPECT_DOUBLE_EQ(JoinSelectivity(1000.0, 10.0), 1.0 / 1000.0);
  // Estimated join cardinality |L||R|/max(ndv): 100 * 1000 / 1000 = 100.
  EXPECT_DOUBLE_EQ(100.0 * 1000.0 * JoinSelectivity(10.0, 1000.0), 100.0);
}

TEST(CostModelTest, BuildSideAndBindJoinGate) {
  CostModel model;
  EXPECT_TRUE(model.BuildLeft(3.0, 5.0));
  EXPECT_FALSE(model.BuildLeft(5.0, 3.0));
  EXPECT_FALSE(model.BuildLeft(4.0, 4.0));  // tie keeps the legacy side.
  EXPECT_TRUE(model.UseBindJoin(2, 100.0));
  EXPECT_FALSE(model.UseBindJoin(90, 100.0));  // IN list covers the domain.
  EXPECT_TRUE(model.UseBindJoin(90, -1.0));    // unknown NDV: keep binding.
}

TEST(CostModelTest, IndexNestedLoopRescuesCoverageGatedBinds) {
  CostModel model;
  EXPECT_DOUBLE_EQ(model.IndexNestedLoopCost(4), 4.0 * model.index_probe_cost);
  // 90 probes into a 1M-row table crush the scan the coverage gate forces.
  EXPECT_TRUE(model.UseIndexNestedLoop(90, 1'000'000.0, /*has_index=*/true));
  // No index, or unknown table size: fall back to the coverage decision.
  EXPECT_FALSE(model.UseIndexNestedLoop(90, 1'000'000.0, /*has_index=*/false));
  EXPECT_FALSE(model.UseIndexNestedLoop(90, 0.0, /*has_index=*/true));
  // Probes as costly as the scan itself: not worth it.
  EXPECT_FALSE(model.UseIndexNestedLoop(100, 100.0, /*has_index=*/true));
}

TEST(CostModelTest, ScatterGatherCostDividesScanAcrossShards) {
  CostModel model;
  // 4 shards over 40k rows merging 64 groups: overhead + parallel scan +
  // merge, each term priced by its knob.
  EXPECT_DOUBLE_EQ(model.ScatterGatherCost(40'000.0, 4, 64.0),
                   model.scatter_overhead_per_shard * 4.0 +
                       model.scan_cost * 10'000.0 +
                       model.merge_cost_per_row * 64.0);
  // More shards help until the fixed per-shard overhead dominates.
  EXPECT_LT(model.ScatterGatherCost(40'000.0, 4, 64.0),
            model.ScatterGatherCost(40'000.0, 1, 64.0));
  EXPECT_LT(model.ScatterGatherCost(400.0, 1, 64.0),
            model.ScatterGatherCost(400.0, 16, 64.0));
}

// ---- Verifier invariant I13 -------------------------------------------------

std::unique_ptr<algebra::MaterializedScan> MakeScan(size_t rows) {
  algebra::TupleSchema schema({"x"});
  std::vector<algebra::Tuple> tuples;
  for (size_t i = 0; i < rows; ++i) {
    tuples.push_back({algebra::Binding{Value::Int(static_cast<int64_t>(i))}});
  }
  return std::make_unique<algebra::MaterializedScan>(
      std::move(schema), std::move(tuples), "test");
}

TEST(VerifierI13Test, AnnotationsMustBeAllOrNone) {
  auto scan = MakeScan(5);
  scan->set_estimated_rows(5.0);
  algebra::Limit limit(std::move(scan), 3);
  // Child annotated, parent not: violation.
  EXPECT_FALSE(algebra::VerifyPlan(limit).ok());
  limit.set_estimated_rows(3.0);
  EXPECT_TRUE(algebra::VerifyPlan(limit).ok());
}

TEST(VerifierI13Test, EstimateMayNotGrowThroughRowReducers) {
  auto scan = MakeScan(5);
  scan->set_estimated_rows(5.0);
  algebra::Limit limit(std::move(scan), 3);
  limit.set_estimated_rows(50.0);  // exceeds the child estimate.
  EXPECT_FALSE(algebra::VerifyPlan(limit).ok());
}

// ---- Engine integration -----------------------------------------------------

class OptimizerEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    crm_ = std::make_unique<relational::Database>("crm");
    Must(crm_->Execute(
        "CREATE TABLE customers (id INT PRIMARY KEY, name TEXT)"));
    Must(crm_->Execute("INSERT INTO customers VALUES (1, 'Ada'), (2, 'Bob'), "
                       "(3, 'Cleo'), (4, 'Dan')"));

    sales_ = std::make_unique<relational::Database>("sales");
    Must(sales_->Execute(
        "CREATE TABLE orders (oid INT PRIMARY KEY, cust INT, sku TEXT)"));
    Must(sales_->Execute("INSERT INTO orders VALUES (100, 1, 'widget'), "
                         "(101, 2, 'gizmo'), (102, 3, 'widget'), "
                         "(103, 4, 'gadget')"));

    auto products = std::make_unique<connector::XmlConnector>("feed");
    Must(products->PutDocumentText(
        "products",
        "<products>"
        "<product sku=\"widget\"><title>Widget</title></product>"
        "<product sku=\"gizmo\"><title>Gizmo</title></product>"
        "<product sku=\"gadget\"><title>Gadget</title></product>"
        "</products>"));

    catalog_ = std::make_unique<metadata::Catalog>();
    Must(catalog_->RegisterSource(
        std::make_unique<connector::RelationalConnector>("crm", crm_.get())));
    Must(catalog_->RegisterSource(
        std::make_unique<connector::RelationalConnector>("sales",
                                                         sales_.get())));
    Must(catalog_->RegisterSource(std::move(products)));

    core::EngineOptions opts;
    opts.verify_plans = true;
    engine_ = std::make_unique<core::IntegrationEngine>(catalog_.get(), opts);
  }

  void Must(const Status& s) { ASSERT_TRUE(s.ok()) << s.ToString(); }
  template <typename T>
  void Must(const Result<T>& r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  static constexpr const char* kThreeWayJoin =
      "WHERE <customers><row><id>$c</id><name>$n</name></row>"
      "</customers> IN \"crm:customers\", "
      "<orders><row><cust>$c</cust><sku>$k</sku></row></orders> "
      "IN \"sales:orders\", "
      "<products><product sku=$k><title>$ti</title></product>"
      "</products> IN \"feed:products\" "
      "CONSTRUCT <line><name>$n</name><title>$ti</title></line>";

  void PutRowCount(const std::string& source, const std::string& collection,
                   double rows) {
    metadata::CollectionStats stats;
    stats.source = source;
    stats.collection = collection;
    stats.row_count = rows;
    stats.analyzed = true;
    catalog_->statistics().Put(std::move(stats));
  }

  std::unique_ptr<relational::Database> crm_;
  std::unique_ptr<relational::Database> sales_;
  std::unique_ptr<metadata::Catalog> catalog_;
  std::unique_ptr<core::IntegrationEngine> engine_;
};

// Satellite regression: the hash join builds on the smaller input instead
// of always on the right. The 3-row products side becomes the build side
// (marked build=left), and results match the legacy-heuristic arm exactly.
TEST_F(OptimizerEngineTest, HashJoinBuildsOnSmallerSide) {
  Result<core::QueryResult> costed = engine_->ExecuteText(kThreeWayJoin);
  ASSERT_TRUE(costed.ok()) << costed.status().ToString();
  EXPECT_NE(costed->report.plan.find("HashJoin($k, build=left)"),
            std::string::npos)
      << costed->report.plan;

  core::EngineOptions legacy_opts;
  legacy_opts.verify_plans = true;
  legacy_opts.enable_cost_optimizer = false;
  core::IntegrationEngine legacy(catalog_.get(), legacy_opts);
  Result<core::QueryResult> heuristic = legacy.ExecuteText(kThreeWayJoin);
  ASSERT_TRUE(heuristic.ok()) << heuristic.status().ToString();
  EXPECT_EQ(heuristic->report.plan.find("build=left"), std::string::npos);
  EXPECT_EQ(ToXml(*costed->document), ToXml(*heuristic->document));
}

// Estimates next to actuals: every operator in plan_with_stats carries an
// est_rows annotation when the optimizer is on, and none when it is off.
TEST_F(OptimizerEngineTest, PlanWithStatsCarriesEstimates) {
  Result<core::QueryResult> r = engine_->ExecuteText(kThreeWayJoin);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->report.plan_with_stats.find("est_rows="), std::string::npos);

  core::EngineOptions legacy_opts;
  legacy_opts.enable_cost_optimizer = false;
  core::IntegrationEngine legacy(catalog_.get(), legacy_opts);
  Result<core::QueryResult> l = legacy.ExecuteText(kThreeWayJoin);
  ASSERT_TRUE(l.ok()) << l.status().ToString();
  EXPECT_EQ(l->report.plan_with_stats.find("est_rows="), std::string::npos);
}

// Golden EXPLAIN flip: changing only the catalog statistics reorders the
// join tree. With products claimed huge, the optimizer joins the two
// relational fragments first and products last; with honest stats the
// products⋈orders join comes first (the seeded shape).
TEST_F(OptimizerEngineTest, StatsChangeFlipsJoinOrder) {
  PutRowCount("feed", "products", 3.0);
  Result<core::QueryResult> before = engine_->ExecuteText(kThreeWayJoin);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  // products⋈orders under the customers join: $k joined below $c.
  EXPECT_LT(before->report.plan.find("HashJoin($c)"),
            before->report.plan.find("HashJoin($k"))
      << before->report.plan;

  PutRowCount("feed", "products", 1000000.0);
  Result<core::QueryResult> after = engine_->ExecuteText(kThreeWayJoin);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  // customers⋈orders first now; the huge products input joins last, so
  // $k is the root join.
  EXPECT_LT(after->report.plan.find("HashJoin($k"),
            after->report.plan.find("HashJoin($c)"))
      << after->report.plan;
  // Same rows either way — the optimizer only changes the join order
  // (row order within the unordered result may differ).
  EXPECT_EQ(before->report.result_count, after->report.result_count);
}

// Satellite regression: the compiled-plan cache key includes the stats
// epoch, so a stats change evicts (and re-optimizes) instead of serving
// the stale plan; the eviction is counted separately from LRU evictions.
TEST_F(OptimizerEngineTest, PlanCacheEvictsOnStatsEpochChange) {
  Must(engine_->ExecuteText(kThreeWayJoin));
  Must(engine_->ExecuteText(kThreeWayJoin));
  core::PlanCache::Stats s1 = engine_->plan_cache()->stats();
  EXPECT_GE(s1.hits, 1u);
  EXPECT_EQ(s1.stats_evictions, 0u);

  PutRowCount("feed", "products", 1000000.0);  // bumps the epoch
  Must(engine_->ExecuteText(kThreeWayJoin));
  core::PlanCache::Stats s2 = engine_->plan_cache()->stats();
  EXPECT_GE(s2.stats_evictions, 1u);
  EXPECT_EQ(s2.evictions, 0u);  // not an LRU eviction.
}

// Adaptive feedback: a wildly wrong row count is corrected by the first
// execution's observed rows (epoch bump → replan), and the second
// execution's estimate lands within 10x of the actual row count.
TEST_F(OptimizerEngineTest, FeedbackCorrectsMisestimateWithinOneRound) {
  PutRowCount("crm", "customers", 100000.0);
  const char* q =
      "WHERE <customers><row><id>$i</id><name>$n</name></row>"
      "</customers> IN \"crm:customers\" "
      "CONSTRUCT <c><name>$n</name></c>";
  uint64_t epoch_before = catalog_->statistics().epoch();
  Result<core::QueryResult> first = engine_->ExecuteText(q);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_NE(first->report.plan_with_stats.find("est_rows=100000"),
            std::string::npos)
      << first->report.plan_with_stats;
  // The observed 4 rows were fed back: stats corrected, epoch advanced.
  EXPECT_GT(catalog_->statistics().epoch(), epoch_before);
  EXPECT_DOUBLE_EQ(
      catalog_->statistics().Get("crm", "customers")->row_count, 4.0);

  Result<core::QueryResult> second = engine_->ExecuteText(q);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_NE(second->report.plan_with_stats.find(
                "{est_rows=4, batches=1, rows=4}"),
            std::string::npos)
      << second->report.plan_with_stats;
}

// Per-source pushdown depth: once statistics show the bind-join IN list
// covering most of the remote column's distinct values, the cost model
// drops the bind (it prunes nothing) and ships the plain SQL fragment.
TEST_F(OptimizerEngineTest, BindJoinSkippedWhenKeysCoverDomain) {
  const char* q =
      "WHERE <customers><row><id>$c</id><name>$n</name></row>"
      "</customers> IN \"crm:customers\", "
      "<orders><row><cust>$c</cust><sku>$k</sku></row></orders> "
      "IN \"sales:orders\" "
      "CONSTRUCT <o><name>$n</name><sku>$k</sku></o>";
  // Without stats the historical behavior stands: bind join taken.
  Result<core::QueryResult> blind = engine_->ExecuteText(q);
  ASSERT_TRUE(blind.ok()) << blind.status().ToString();
  EXPECT_NE(blind->report.plan.find("sql+bind:sales:orders"),
            std::string::npos)
      << blind->report.plan;

  // Analyzed: all 4 customer ids cover orders.cust's 4 distinct values.
  Must(engine_->Analyze());
  Result<core::QueryResult> costed = engine_->ExecuteText(q);
  ASSERT_TRUE(costed.ok()) << costed.status().ToString();
  EXPECT_NE(costed->report.plan.find("sql:sales:orders"), std::string::npos)
      << costed->report.plan;
  EXPECT_EQ(costed->report.plan.find("sql+bind:"), std::string::npos);
  EXPECT_EQ(ToXml(*blind->document), ToXml(*costed->document));
}

// ---- Index nested-loop alternative ------------------------------------------

/// RelationalConnector only advertises primary-key indexes; this test
/// double claims a secondary index on orders.cust so the index-nested-loop
/// arm of the gate is reachable (on a PK column NDV equals the row count,
/// which makes "coverage too high" and "probes beat the scan" mutually
/// exclusive).
class IndexedRelationalConnector : public connector::RelationalConnector {
 public:
  using RelationalConnector::RelationalConnector;
  connector::SourceCapabilities capabilities() const override {
    connector::SourceCapabilities caps =
        connector::RelationalConnector::capabilities();
    caps.indexed_columns.emplace_back("orders", "cust");
    return caps;
  }
};

// The coverage gate drops a bind join whose IN list spans the whole cust
// domain — unless the source indexes the column and probing it once per key
// undercuts the full scan. 4 probes (cost 16) against a 40-row scan keep
// the bind; without the index the same statistics drop it. Results are
// identical either way.
TEST_F(OptimizerEngineTest, IndexNestedLoopKeepsBindWhenKeysCoverDomain) {
  // Grow orders to 40 rows over the same 4 customers: the 4-key IN list
  // covers cust's domain (coverage gate fires) while the table is large
  // enough for index probes to beat the scan.
  for (int i = 0; i < 36; ++i) {
    Must(sales_->Execute("INSERT INTO orders VALUES (" +
                         std::to_string(200 + i) + ", " +
                         std::to_string(i % 4 + 1) + ", 'bulk')"));
  }
  metadata::Catalog indexed_catalog;
  Must(indexed_catalog.RegisterSource(
      std::make_unique<connector::RelationalConnector>("crm", crm_.get())));
  Must(indexed_catalog.RegisterSource(
      std::make_unique<IndexedRelationalConnector>("sales", sales_.get())));
  core::EngineOptions opts;
  opts.verify_plans = true;
  core::IntegrationEngine indexed(&indexed_catalog, opts);

  const char* q =
      "WHERE <customers><row><id>$c</id><name>$n</name></row>"
      "</customers> IN \"crm:customers\", "
      "<orders><row><cust>$c</cust><sku>$k</sku></row></orders> "
      "IN \"sales:orders\" "
      "CONSTRUCT <o><name>$n</name><sku>$k</sku></o> ORDER BY $n, $k";

  Must(indexed.Analyze());
  Result<core::QueryResult> kept = indexed.ExecuteText(q);
  ASSERT_TRUE(kept.ok()) << kept.status().ToString();
  EXPECT_NE(kept->report.plan.find("sql+bind:sales:orders"),
            std::string::npos)
      << kept->report.plan;

  // Same statistics, no index claim: the coverage gate drops the bind.
  Must(engine_->Analyze());
  Result<core::QueryResult> dropped = engine_->ExecuteText(q);
  ASSERT_TRUE(dropped.ok()) << dropped.status().ToString();
  EXPECT_NE(dropped->report.plan.find("sql:sales:orders"), std::string::npos)
      << dropped->report.plan;
  EXPECT_EQ(dropped->report.plan.find("sql+bind:"), std::string::npos);
  EXPECT_EQ(ToXml(*kept->document), ToXml(*dropped->document));
}

}  // namespace
}  // namespace opt
}  // namespace nimble
