#include <gtest/gtest.h>

#include "xml/value.h"

namespace nimble {
namespace {

TEST(ValueTest, NullBasics) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "");
  EXPECT_FALSE(v.Truthy());
  EXPECT_EQ(v, Value::Null());
}

TEST(ValueTest, BoolBasics) {
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_TRUE(Value::Bool(true).Truthy());
  EXPECT_FALSE(Value::Bool(false).Truthy());
}

TEST(ValueTest, IntBasics) {
  Value v = Value::Int(-42);
  EXPECT_TRUE(v.is_int());
  EXPECT_TRUE(v.is_numeric());
  EXPECT_EQ(v.AsInt(), -42);
  EXPECT_EQ(v.ToString(), "-42");
  EXPECT_FALSE(Value::Int(0).Truthy());
}

TEST(ValueTest, DoubleToString) {
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::Double(1e6).ToString(), "1000000");
  EXPECT_EQ(Value::Double(1e20).ToString(), "1e+20");
}

TEST(ValueTest, StringBasics) {
  Value v = Value::String("hello");
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.AsString(), "hello");
  EXPECT_FALSE(Value::String("").Truthy());
  EXPECT_TRUE(Value::String("x").Truthy());
}

TEST(ValueTest, InferTypes) {
  EXPECT_TRUE(Value::Infer("123").is_int());
  EXPECT_EQ(Value::Infer("123").AsInt(), 123);
  EXPECT_TRUE(Value::Infer("-7").is_int());
  EXPECT_TRUE(Value::Infer("3.14").is_double());
  EXPECT_TRUE(Value::Infer("1e3").is_double());
  EXPECT_TRUE(Value::Infer("true").is_bool());
  EXPECT_TRUE(Value::Infer("false").is_bool());
  EXPECT_TRUE(Value::Infer("hello").is_string());
  EXPECT_TRUE(Value::Infer("12abc").is_string());
  EXPECT_TRUE(Value::Infer("").is_string());
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(Value::Int(3), Value::Double(3.0));
  EXPECT_NE(Value::Int(3), Value::Double(3.5));
  EXPECT_EQ(Value::Int(3).Hash(), Value::Double(3.0).Hash());
}

TEST(ValueTest, CompareSameTypes) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_GT(Value::Int(2).Compare(Value::Int(1)), 0);
  EXPECT_EQ(Value::Int(2).Compare(Value::Int(2)), 0);
  EXPECT_LT(Value::String("a").Compare(Value::String("b")), 0);
  EXPECT_LT(Value::Bool(false).Compare(Value::Bool(true)), 0);
}

TEST(ValueTest, CompareHeterogeneousTypeRank) {
  // null < bool < number < string
  EXPECT_LT(Value::Null().Compare(Value::Bool(false)), 0);
  EXPECT_LT(Value::Bool(true).Compare(Value::Int(0)), 0);
  EXPECT_LT(Value::Int(999).Compare(Value::String("")), 0);
}

TEST(ValueTest, LargeIntsCompareExactly) {
  // 2^62 and 2^62+1 are indistinguishable as doubles.
  int64_t big = int64_t{1} << 62;
  EXPECT_LT(Value::Int(big).Compare(Value::Int(big + 1)), 0);
}

TEST(ValueTest, ToIntCoercions) {
  EXPECT_EQ(*Value::Int(5).ToInt(), 5);
  EXPECT_EQ(*Value::Double(5.9).ToInt(), 5);
  EXPECT_EQ(*Value::Bool(true).ToInt(), 1);
  EXPECT_EQ(*Value::String("17").ToInt(), 17);
  EXPECT_FALSE(Value::String("x").ToInt().ok());
  EXPECT_FALSE(Value::Null().ToInt().ok());
}

TEST(ValueTest, ToDoubleCoercions) {
  EXPECT_DOUBLE_EQ(*Value::Int(5).ToDouble(), 5.0);
  EXPECT_DOUBLE_EQ(*Value::String("2.5").ToDouble(), 2.5);
  EXPECT_FALSE(Value::String("abc").ToDouble().ok());
}

TEST(ValueTest, RoundTripInferToString) {
  for (const char* text : {"42", "-17", "3.5", "true", "false", "plain"}) {
    Value v = Value::Infer(text);
    EXPECT_EQ(Value::Infer(v.ToString()), v) << text;
  }
}

class ValueOrderProperty : public ::testing::TestWithParam<int> {};

TEST_P(ValueOrderProperty, CompareIsAntisymmetricAndTotal) {
  // Build a pool of mixed values, check pairwise antisymmetry.
  std::vector<Value> pool = {
      Value::Null(),         Value::Bool(false),   Value::Bool(true),
      Value::Int(-1),        Value::Int(0),        Value::Int(7),
      Value::Double(-0.5),   Value::Double(7.0),   Value::Double(7.5),
      Value::String(""),     Value::String("a"),   Value::String("ab"),
  };
  int i = GetParam();
  const Value& a = pool[static_cast<size_t>(i) % pool.size()];
  for (const Value& b : pool) {
    int ab = a.Compare(b);
    int ba = b.Compare(a);
    EXPECT_EQ(ab == 0, ba == 0);
    if (ab < 0) {
      EXPECT_GT(ba, 0);
    }
    if (ab > 0) {
      EXPECT_LT(ba, 0);
    }
    if (ab == 0) {
      EXPECT_EQ(a.Hash(), b.Hash());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllValues, ValueOrderProperty,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace nimble
