#include <gtest/gtest.h>

#include "admin/monitor.h"
#include "admin/replication.h"
#include "cleaning/similarity.h"
#include "connector/relational_connector.h"
#include "connector/xml_connector.h"

namespace nimble {
namespace admin {
namespace {

class AdminTest : public ::testing::Test {
 protected:
  void SetUp() override {
    crm_ = std::make_unique<relational::Database>("crm");
    ASSERT_TRUE(crm_->Execute("CREATE TABLE c (id INT PRIMARY KEY, name TEXT, "
                              "balance DOUBLE)")
                    .ok());
    ASSERT_TRUE(crm_->Execute("INSERT INTO c VALUES (1, 'Ada', 10.5), "
                              "(2, 'Bob', 0.0)")
                    .ok());
    catalog_ = std::make_unique<metadata::Catalog>();
    ASSERT_TRUE(catalog_
                    ->RegisterSource(
                        std::make_unique<connector::RelationalConnector>(
                            "crm", crm_.get()))
                    .ok());
    auto feed = std::make_unique<connector::XmlConnector>("feed");
    ASSERT_TRUE(feed->PutDocumentText(
                        "people",
                        "<people>"
                        "<p><name>Ada</name><city>Seattle</city></p>"
                        "<p><name>Ada</name><city>Seattle</city></p>"
                        "<p><name>Eve</name><city>Miami</city></p>"
                        "</people>")
                    .ok());
    feed_ = feed.get();
    ASSERT_TRUE(catalog_->RegisterSource(std::move(feed)).ok());
    ASSERT_TRUE(catalog_
                    ->DefineView("all_names", R"(
                        WHERE <c><row><name>$n</name></row></c> IN "crm:c"
                        CONSTRUCT <person><name>$n</name></person>
                        UNION
                        WHERE <people><p><name>$n</name></p></people>
                              IN "feed:people"
                        CONSTRUCT <person><name>$n</name></person>
                      )")
                    .ok());
    engine_ = std::make_unique<core::IntegrationEngine>(catalog_.get());
    local_ = std::make_unique<relational::Database>("local");
  }

  std::unique_ptr<relational::Database> crm_;
  connector::XmlConnector* feed_ = nullptr;
  std::unique_ptr<metadata::Catalog> catalog_;
  std::unique_ptr<core::IntegrationEngine> engine_;
  std::unique_ptr<relational::Database> local_;
  VirtualClock clock_;
};

TEST(InferSchemaTest, UnionOfFieldsAndTypes) {
  std::vector<cleaning::KeyedRecord> records = {
      {"a", {{"x", Value::Int(1)}, {"y", Value::String("s")}}},
      {"b", {{"x", Value::Int(2)}, {"z", Value::Double(1.5)}}},
  };
  relational::TableSchema schema = InferSchema("t", records);
  ASSERT_EQ(schema.num_columns(), 3u);
  EXPECT_EQ(schema.columns()[0].name, "x");
  EXPECT_EQ(schema.columns()[0].type, ValueType::kInt);
  EXPECT_EQ(schema.columns()[1].type, ValueType::kString);
  EXPECT_EQ(schema.columns()[2].type, ValueType::kDouble);
}

TEST(InferSchemaTest, NumericConflictWidensToDouble) {
  std::vector<cleaning::KeyedRecord> records = {
      {"a", {{"x", Value::Int(1)}}},
      {"b", {{"x", Value::Double(2.5)}}},
  };
  EXPECT_EQ(InferSchema("t", records).columns()[0].type, ValueType::kDouble);
}

TEST(InferSchemaTest, MixedConflictFallsBackToString) {
  std::vector<cleaning::KeyedRecord> records = {
      {"a", {{"x", Value::Int(1)}}},
      {"b", {{"x", Value::String("s")}}},
  };
  EXPECT_EQ(InferSchema("t", records).columns()[0].type, ValueType::kString);
}

TEST_F(AdminTest, ReplicateSourceCollection) {
  xmlql::SourceRef origin;
  origin.source = "crm";
  origin.collection = "c";
  ReplicationJob job(catalog_.get(), engine_.get(), local_.get(), "crm_copy",
                     origin);
  Result<ReplicationRunStats> stats = job.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rows_loaded, 2u);

  Result<relational::ResultSet> rs =
      local_->Execute("SELECT name FROM crm_copy ORDER BY name");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 2u);
  EXPECT_EQ(rs->rows[0][0], Value::String("Ada"));
}

TEST_F(AdminTest, ReplicateViewResult) {
  xmlql::SourceRef origin;
  origin.collection = "all_names";  // view
  ReplicationJob job(catalog_.get(), engine_.get(), local_.get(), "names",
                     origin);
  Result<ReplicationRunStats> stats = job.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rows_loaded, 5u);  // 2 crm + 3 feed
}

TEST_F(AdminTest, ReplicationWithOfflineCleaning) {
  xmlql::SourceRef origin;
  origin.source = "feed";
  origin.collection = "people";
  ReplicationJob job(catalog_.get(), engine_.get(), local_.get(),
                     "clean_people", origin);
  auto matcher = std::make_shared<cleaning::RecordMatcher>(
      std::vector<cleaning::MatchRule>{
          {"name", cleaning::JaroWinklerSimilarity, 1.0, 0.0}},
      0.9, 0.95);
  cleaning::MergePurgeOptions options;
  options.strategy = cleaning::MatchStrategy::kNaivePairwise;
  auto flow = std::make_shared<cleaning::CleaningFlow>("etl");
  flow->Deduplicate(matcher, options);
  job.SetCleaningFlow(flow);

  Result<ReplicationRunStats> stats = job.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rows_before_cleaning, 3u);
  EXPECT_EQ(stats->rows_loaded, 2u);  // the two Adas merged
}

TEST_F(AdminTest, RerunReplacesReplica) {
  xmlql::SourceRef origin;
  origin.source = "crm";
  origin.collection = "c";
  ReplicationJob job(catalog_.get(), engine_.get(), local_.get(), "crm_copy",
                     origin);
  ASSERT_TRUE(job.Run().ok());
  EXPECT_FALSE(*job.OriginChanged());
  ASSERT_TRUE(crm_->Execute("INSERT INTO c VALUES (3, 'Cleo', 7.0)").ok());
  EXPECT_TRUE(*job.OriginChanged());
  Result<ReplicationRunStats> stats = job.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows_loaded, 3u);
  Result<relational::ResultSet> rs =
      local_->Execute("SELECT COUNT(*) FROM crm_copy");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0], Value::Int(3));
}

TEST_F(AdminTest, ReplicationUnknownOrigin) {
  xmlql::SourceRef origin;
  origin.source = "nope";
  origin.collection = "c";
  ReplicationJob job(catalog_.get(), engine_.get(), local_.get(), "t",
                     origin);
  EXPECT_EQ(job.Run().status().code(), StatusCode::kNotFound);
}

TEST_F(AdminTest, MonitorStatusDocument) {
  materialize::MaterializedViewStore store(catalog_.get(), engine_.get(),
                                           &clock_);
  ASSERT_TRUE(store.Materialize("all_names").ok());
  materialize::ResultCache cache(1 << 20, 0, &clock_);
  frontend::LoadBalancer balancer;
  balancer.AddEngine(std::make_unique<core::IntegrationEngine>(catalog_.get()));

  SystemMonitor monitor(catalog_.get(), &store, &cache, &balancer);
  NodePtr status = monitor.StatusDocument();
  ASSERT_EQ(status->name(), "system_status");

  NodePtr sources = status->FindChild("sources");
  ASSERT_NE(sources, nullptr);
  EXPECT_EQ(sources->FindChildren("source").size(), 2u);
  NodePtr crm = sources->FindChildren("source")[0];
  EXPECT_EQ(crm->GetAttribute("name"), Value::String("crm"));
  EXPECT_EQ(crm->GetAttribute("online"), Value::Bool(true));
  EXPECT_EQ(crm->FindChild("sql")->ScalarValue(), Value::Bool(true));

  NodePtr views = status->FindChild("views");
  ASSERT_NE(views, nullptr);
  NodePtr view = views->FindChild("view");
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->GetAttribute("name"), Value::String("all_names"));
  EXPECT_EQ(view->FindChild("materialized")->ScalarValue(),
            Value::Bool(true));
  EXPECT_EQ(view->FindChild("stale")->ScalarValue(), Value::Bool(false));

  EXPECT_NE(status->FindChild("result_cache"), nullptr);
  NodePtr pool = status->FindChild("engine_pool");
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->GetAttribute("size"), Value::Int(1));

  std::string text = monitor.ToText();
  EXPECT_NE(text.find("system_status"), std::string::npos);
  EXPECT_NE(text.find("name=crm"), std::string::npos);
}

TEST_F(AdminTest, MonitorMinimal) {
  SystemMonitor monitor(catalog_.get());
  NodePtr status = monitor.StatusDocument();
  EXPECT_NE(status->FindChild("sources"), nullptr);
  EXPECT_EQ(status->FindChild("result_cache"), nullptr);
  EXPECT_EQ(status->FindChild("engine_pool"), nullptr);
}

}  // namespace
}  // namespace admin
}  // namespace nimble
