#include <gtest/gtest.h>

#include "connector/relational_connector.h"
#include "materialize/result_cache.h"
#include "materialize/view_selection.h"
#include "materialize/view_store.h"

namespace nimble {
namespace materialize {
namespace {

// ---- ResultCache ----------------------------------------------------------------

class ResultCacheTest : public ::testing::Test {
 protected:
  NodePtr Doc(const std::string& text) {
    NodePtr doc = Node::Element("doc");
    doc->AddScalarChild("v", Value::String(text));
    return doc;
  }
  // Byte cost of one Doc(); eviction tests size budgets in these units.
  size_t DocBytes() { return Doc("a")->EstimatedBytes(); }
  // Single shard so LRU order is globally deterministic.
  ResultCacheOptions Opts(size_t max_bytes, int64_t ttl_micros = 0) {
    ResultCacheOptions options;
    options.max_bytes = max_bytes;
    options.ttl_micros = ttl_micros;
    options.shards = 1;
    return options;
  }
  VirtualClock clock_;
};

TEST_F(ResultCacheTest, MissThenHit) {
  ResultCache cache(Opts(1 << 20), &clock_);
  EXPECT_EQ(cache.Lookup("q1"), nullptr);
  cache.Insert("q1", Doc("a"));
  ConstNodePtr hit = cache.Lookup("q1");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->FindChild("v")->ScalarValue(), Value::String("a"));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_GT(cache.stats().bytes, 0u);
}

TEST_F(ResultCacheTest, HitsShareOneFrozenSnapshot) {
  // A hit is O(1): the same immutable snapshot is handed to every reader
  // instead of a deep clone per lookup.
  ResultCache cache(Opts(1 << 20), &clock_);
  cache.Insert("q", Doc("a"));
  ConstNodePtr first = cache.Lookup("q");
  ConstNodePtr second = cache.Lookup("q");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_TRUE(first->frozen());
  // Copy-on-write escape hatch: Clone() yields a thawed, mutable copy.
  NodePtr copy = first->Clone();
  EXPECT_FALSE(copy->frozen());
  copy->AddChild(Node::Element("mutation"));
  EXPECT_EQ(cache.Lookup("q")->children().size(), 1u);
}

TEST_F(ResultCacheTest, ByteBudgetLruEviction) {
  // Budget fits two documents (plus slack below a third).
  ResultCache cache(Opts(2 * DocBytes() + DocBytes() / 2), &clock_);
  cache.Insert("a", Doc("a"));
  cache.Insert("b", Doc("b"));
  ASSERT_NE(cache.Lookup("a"), nullptr);  // promotes a
  cache.Insert("c", Doc("c"));            // evicts b (LRU)
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.bytes(), cache.max_bytes());
}

TEST_F(ResultCacheTest, OversizedDocumentRejected) {
  ResultCache cache(Opts(DocBytes() / 2), &clock_);
  cache.Insert("q", Doc("a"));
  EXPECT_EQ(cache.Lookup("q"), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST_F(ResultCacheTest, TtlExpiry) {
  ResultCache cache(Opts(1 << 20, 1000), &clock_);
  cache.Insert("q", Doc("a"));
  clock_.AdvanceMicros(500);
  EXPECT_NE(cache.Lookup("q"), nullptr);
  clock_.AdvanceMicros(600);
  EXPECT_EQ(cache.Lookup("q"), nullptr);
  EXPECT_EQ(cache.stats().expirations, 1u);
}

TEST_F(ResultCacheTest, PerEntryTtlOverridesDefault) {
  ResultCache cache(Opts(1 << 20, 1000), &clock_);
  cache.Insert("long", Doc("a"), /*tags=*/{}, /*ttl_micros=*/10000);
  cache.Insert("short", Doc("b"));
  clock_.AdvanceMicros(5000);
  EXPECT_NE(cache.Lookup("long"), nullptr);
  EXPECT_EQ(cache.Lookup("short"), nullptr);
}

TEST_F(ResultCacheTest, ReplaceRefreshesEntry) {
  ResultCache cache(Opts(1 << 20), &clock_);
  cache.Insert("q", Doc("a"));
  cache.Insert("q", Doc("b"));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Lookup("q")->FindChild("v")->ScalarValue(),
            Value::String("b"));
}

TEST_F(ResultCacheTest, InvalidateAndClear) {
  ResultCache cache(Opts(1 << 20), &clock_);
  cache.Insert("q", Doc("a"));
  EXPECT_TRUE(cache.Invalidate("q"));
  EXPECT_FALSE(cache.Invalidate("q"));
  EXPECT_EQ(cache.stats().invalidations, 1u);
  cache.Insert("x", Doc("x"));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 2u);
}

TEST_F(ResultCacheTest, InvalidateTagDropsOnlyTaggedEntries) {
  // Entries carry the sources they were computed from; a source update
  // invalidates exactly its dependents.
  ResultCache cache(Opts(1 << 20), &clock_);
  cache.Insert("q1", Doc("a"), {"crm", "hr"});
  cache.Insert("q2", Doc("b"), {"hr"});
  cache.Insert("q3", Doc("c"), {"billing"});
  EXPECT_EQ(cache.InvalidateTag("hr"), 2u);
  EXPECT_EQ(cache.Lookup("q1"), nullptr);
  EXPECT_EQ(cache.Lookup("q2"), nullptr);
  EXPECT_NE(cache.Lookup("q3"), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 2u);
}

TEST_F(ResultCacheTest, ZeroBudgetNeverStores) {
  ResultCache cache(Opts(0), &clock_);
  cache.Insert("q", Doc("a"));
  EXPECT_EQ(cache.Lookup("q"), nullptr);
}

TEST_F(ResultCacheTest, LookupOrComputeCachesLeaderResult) {
  ResultCache cache(Opts(1 << 20), &clock_);
  int computes = 0;
  auto compute = [&]() -> Result<ResultCache::Computed> {
    ++computes;
    ResultCache::Computed computed;
    computed.document = Doc("a");
    return computed;
  };
  bool ran = false;
  Result<ConstNodePtr> first = cache.LookupOrCompute("q", compute, &ran);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(ran);
  Result<ConstNodePtr> second = cache.LookupOrCompute("q", compute, &ran);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(ran);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(first->get(), second->get());
}

TEST_F(ResultCacheTest, LookupOrComputeNeverCachesErrorsOrPartialResults) {
  ResultCache cache(Opts(1 << 20), &clock_);
  Result<ConstNodePtr> failed = cache.LookupOrCompute(
      "q", []() -> Result<ResultCache::Computed> {
        return Status::Unavailable("source down");
      });
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(cache.size(), 0u);
  // A non-cacheable (partial) result is returned but not stored.
  int computes = 0;
  auto partial = [&]() -> Result<ResultCache::Computed> {
    ++computes;
    ResultCache::Computed computed;
    computed.document = Doc("partial");
    computed.cacheable = false;
    return computed;
  };
  ASSERT_TRUE(cache.LookupOrCompute("q", partial).ok());
  ASSERT_TRUE(cache.LookupOrCompute("q", partial).ok());
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(ResultCacheTest, LegacyConstructorStillWorks) {
  ResultCache cache(1 << 20, 0, &clock_);
  cache.Insert("q", Doc("a"));
  EXPECT_NE(cache.Lookup("q"), nullptr);
}

// ---- View selection ----------------------------------------------------------------

TEST(ViewSelectionTest, GreedyRespectsBudget) {
  std::vector<ViewCandidate> candidates = {
      {"v1", 100, 50, 1, 10},  // benefit 490, density 4.9
      {"v2", 50, 30, 1, 10},   // benefit 290, density 5.8
      {"v3", 200, 40, 1, 5},   // benefit 195, density ~0.98
  };
  SelectionResult result = SelectViewsGreedy(candidates, 150);
  EXPECT_EQ(result.selected, (std::vector<std::string>{"v2", "v1"}));
  EXPECT_DOUBLE_EQ(result.storage_used, 150);
}

TEST(ViewSelectionTest, NeverPicksLosingViews) {
  std::vector<ViewCandidate> candidates = {
      {"loser", 10, 5, 10, 100},  // materialized costs MORE than virtual
  };
  SelectionResult result = SelectViewsGreedy(candidates, 1000);
  EXPECT_TRUE(result.selected.empty());
}

TEST(ViewSelectionTest, GreedyMatchesOptimalOnEasyInstances) {
  std::vector<ViewCandidate> candidates = {
      {"a", 10, 100, 1, 5}, {"b", 20, 100, 1, 5}, {"c", 30, 100, 1, 5}};
  SelectionResult greedy = SelectViewsGreedy(candidates, 60);
  SelectionResult optimal = SelectViewsOptimal(candidates, 60);
  EXPECT_DOUBLE_EQ(greedy.workload_cost, optimal.workload_cost);
  EXPECT_EQ(greedy.selected.size(), 3u);
}

TEST(ViewSelectionTest, OptimalNeverWorseThanGreedy) {
  // Property over deterministic pseudo-random instances.
  for (int seed = 1; seed <= 20; ++seed) {
    std::vector<ViewCandidate> candidates;
    for (int i = 0; i < 8; ++i) {
      ViewCandidate c;
      c.view_name = "v" + std::to_string(i);
      c.storage_cost = 1 + (seed * 7 + i * 13) % 50;
      c.virtual_cost = 10 + (seed * 11 + i * 3) % 90;
      c.materialized_cost = 1;
      c.query_frequency = 1 + (seed + i) % 10;
      candidates.push_back(c);
    }
    double budget = 80;
    SelectionResult greedy = SelectViewsGreedy(candidates, budget);
    SelectionResult optimal = SelectViewsOptimal(candidates, budget);
    EXPECT_LE(optimal.workload_cost, greedy.workload_cost + 1e-9)
        << "seed " << seed;
    EXPECT_LE(optimal.storage_used, budget);
    EXPECT_LE(greedy.storage_used, budget);
  }
}

TEST(ViewSelectionTest, ZeroBudgetSelectsNothing) {
  std::vector<ViewCandidate> candidates = {{"v", 10, 100, 1, 5}};
  EXPECT_TRUE(SelectViewsGreedy(candidates, 0).selected.empty());
  EXPECT_TRUE(SelectViewsOptimal(candidates, 0).selected.empty());
}

// ---- MaterializedViewStore -----------------------------------------------------------

class ViewStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<relational::Database>("crm");
    ASSERT_TRUE(
        db_->Execute("CREATE TABLE c (id INT PRIMARY KEY, name TEXT)").ok());
    ASSERT_TRUE(
        db_->Execute("INSERT INTO c VALUES (1, 'Ada'), (2, 'Bob')").ok());
    catalog_ = std::make_unique<metadata::Catalog>();
    ASSERT_TRUE(catalog_
                    ->RegisterSource(
                        std::make_unique<connector::RelationalConnector>(
                            "crm", db_.get()))
                    .ok());
    ASSERT_TRUE(catalog_
                    ->DefineView("people", R"(
                      WHERE <c><row><id>$i</id><name>$n</name></row></c>
                            IN "crm:c"
                      CONSTRUCT <person id=$i>$n</person>
                    )")
                    .ok());
    engine_ = std::make_unique<core::IntegrationEngine>(catalog_.get());
    store_ = std::make_unique<MaterializedViewStore>(catalog_.get(),
                                                     engine_.get(), &clock_);
  }

  std::unique_ptr<relational::Database> db_;
  std::unique_ptr<metadata::Catalog> catalog_;
  std::unique_ptr<core::IntegrationEngine> engine_;
  VirtualClock clock_;
  std::unique_ptr<MaterializedViewStore> store_;
};

TEST_F(ViewStoreTest, VirtualServeWhenNotMaterialized) {
  EXPECT_FALSE(store_->IsMaterialized("people"));
  Result<core::QueryResult> result = store_->Query("people");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->report.result_count, 2u);
  EXPECT_GT(result->report.rows_shipped, 0u);  // sources contacted
}

TEST_F(ViewStoreTest, MaterializedServeShipsNothing) {
  ASSERT_TRUE(store_->Materialize("people").ok());
  Result<core::QueryResult> result = store_->Query("people");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->report.result_count, 2u);
  EXPECT_EQ(result->report.rows_shipped, 0u);  // local copy
  EXPECT_EQ(result->report.source_latency_micros, 0);
}

TEST_F(ViewStoreTest, OnStaleRefreshPicksUpSourceChanges) {
  MaterializationPolicy policy;
  policy.refresh = MaterializationPolicy::Refresh::kOnStale;
  ASSERT_TRUE(store_->Materialize("people", policy).ok());
  ASSERT_TRUE(db_->Execute("INSERT INTO c VALUES (3, 'Cleo')").ok());
  EXPECT_TRUE(*store_->IsStale("people"));
  Result<core::QueryResult> result = store_->Query("people");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->report.result_count, 3u);  // refreshed before serving
  EXPECT_FALSE(*store_->IsStale("people"));
}

TEST_F(ViewStoreTest, ManualPolicyServesStaleData) {
  MaterializationPolicy policy;
  policy.refresh = MaterializationPolicy::Refresh::kManualOnly;
  ASSERT_TRUE(store_->Materialize("people", policy).ok());
  ASSERT_TRUE(db_->Execute("INSERT INTO c VALUES (3, 'Cleo')").ok());
  Result<core::QueryResult> result = store_->Query("people");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->report.result_count, 2u);  // stale copy
  EXPECT_EQ(store_->stats().stale_serves, 1u);
  // Manual refresh catches up.
  ASSERT_TRUE(store_->Refresh("people").ok());
  result = store_->Query("people");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->report.result_count, 3u);
}

TEST_F(ViewStoreTest, TtlPolicyRefreshesOnSchedule) {
  MaterializationPolicy policy;
  policy.refresh = MaterializationPolicy::Refresh::kTtl;
  policy.ttl_micros = 1000;
  ASSERT_TRUE(store_->Materialize("people", policy).ok());
  ASSERT_TRUE(db_->Execute("INSERT INTO c VALUES (3, 'Cleo')").ok());
  clock_.AdvanceMicros(500);
  Result<core::QueryResult> result = store_->Query("people");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->report.result_count, 2u);  // within TTL: stale
  clock_.AdvanceMicros(600);
  result = store_->Query("people");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->report.result_count, 3u);  // TTL elapsed: refreshed
}

TEST_F(ViewStoreTest, DropReturnsToVirtual) {
  ASSERT_TRUE(store_->Materialize("people").ok());
  ASSERT_TRUE(store_->Drop("people").ok());
  EXPECT_FALSE(store_->IsMaterialized("people"));
  EXPECT_EQ(store_->Drop("people").code(), StatusCode::kNotFound);
  Result<core::QueryResult> result = store_->Query("people");
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->report.rows_shipped, 0u);
}

TEST_F(ViewStoreTest, UnknownViewErrors) {
  EXPECT_EQ(store_->Materialize("nope").code(), StatusCode::kNotFound);
  EXPECT_EQ(store_->Query("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store_->IsStale("people").status().code(), StatusCode::kNotFound);
}

TEST_F(ViewStoreTest, StorageCostGrowsWithMaterialization) {
  EXPECT_EQ(store_->StorageCost(), 0u);
  ASSERT_TRUE(store_->Materialize("people").ok());
  EXPECT_GT(store_->StorageCost(), 0u);
}

TEST_F(ViewStoreTest, AgeTracksVirtualClock) {
  ASSERT_TRUE(store_->Materialize("people").ok());
  clock_.AdvanceMicros(1234);
  Result<int64_t> age = store_->AgeMicros("people");
  ASSERT_TRUE(age.ok());
  EXPECT_EQ(*age, 1234);
}

}  // namespace
}  // namespace materialize
}  // namespace nimble
