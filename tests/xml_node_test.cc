#include <gtest/gtest.h>

#include "xml/node.h"

namespace nimble {
namespace {

NodePtr MakeBook(const std::string& title, const std::string& author,
                 int64_t year) {
  NodePtr book = Node::Element("book");
  book->AddScalarChild("title", Value::String(title));
  book->AddScalarChild("author", Value::String(author));
  book->AddScalarChild("year", Value::Int(year));
  return book;
}

TEST(NodeTest, ElementBasics) {
  NodePtr n = Node::Element("root");
  EXPECT_TRUE(n->is_element());
  EXPECT_EQ(n->name(), "root");
  EXPECT_EQ(n->parent(), nullptr);
  EXPECT_TRUE(n->children().empty());
}

TEST(NodeTest, TextCarriesTypedValue) {
  NodePtr t = Node::Text(Value::Int(42));
  EXPECT_TRUE(t->is_text());
  EXPECT_EQ(t->value(), Value::Int(42));
  EXPECT_EQ(t->TextContent(), "42");
}

TEST(NodeTest, TextFromRawInfers) {
  EXPECT_EQ(Node::TextFromRaw("3.5")->value(), Value::Double(3.5));
  EXPECT_EQ(Node::TextFromRaw("abc")->value(), Value::String("abc"));
}

TEST(NodeTest, AddChildSetsParent) {
  NodePtr root = Node::Element("root");
  NodePtr child = Node::Element("child");
  root->AddChild(child);
  EXPECT_EQ(child->parent(), root.get());
  EXPECT_EQ(root->children().size(), 1u);
}

TEST(NodeTest, AttributesSetAndGet) {
  NodePtr n = Node::Element("e");
  n->SetAttribute("id", Value::Int(7));
  EXPECT_TRUE(n->HasAttribute("id"));
  EXPECT_EQ(n->GetAttribute("id"), Value::Int(7));
  EXPECT_FALSE(n->HasAttribute("missing"));
  EXPECT_TRUE(n->GetAttribute("missing").is_null());
  // Overwrite keeps one entry.
  n->SetAttribute("id", Value::Int(8));
  EXPECT_EQ(n->attributes().size(), 1u);
  EXPECT_EQ(n->GetAttribute("id"), Value::Int(8));
}

TEST(NodeTest, FindChildAndChildren) {
  NodePtr lib = Node::Element("library");
  lib->AddChild(MakeBook("A", "X", 2000));
  lib->AddChild(MakeBook("B", "Y", 2001));
  NodePtr first = lib->FindChild("book");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->FindChild("title")->ScalarValue(), Value::String("A"));
  EXPECT_EQ(lib->FindChildren("book").size(), 2u);
  EXPECT_EQ(lib->FindChild("missing"), nullptr);
}

TEST(NodeTest, ScalarValueForSimpleContent) {
  NodePtr e = Node::Element("year");
  e->AddChild(Node::Text(Value::Int(1999)));
  EXPECT_EQ(e->ScalarValue(), Value::Int(1999));
}

TEST(NodeTest, ScalarValueForEmptyElementIsNull) {
  EXPECT_TRUE(Node::Element("e")->ScalarValue().is_null());
}

TEST(NodeTest, ScalarValueForMixedContentConcatenates) {
  NodePtr e = Node::Element("p");
  e->AddChild(Node::Text(Value::String("a")));
  e->AddChild(Node::Element("b"))->AddChild(Node::Text(Value::String("c")));
  e->AddChild(Node::Text(Value::String("d")));
  EXPECT_EQ(e->ScalarValue(), Value::String("acd"));
}

TEST(NodeTest, TextContentRecurses) {
  NodePtr book = MakeBook("T", "A", 2020);
  EXPECT_EQ(book->TextContent(), "TA2020");
}

TEST(NodeTest, SiblingNavigation) {
  NodePtr root = Node::Element("r");
  NodePtr a = root->AddChild(Node::Element("a"));
  NodePtr b = root->AddChild(Node::Element("b"));
  NodePtr c = root->AddChild(Node::Element("c"));
  EXPECT_EQ(a->NextSibling(), b);
  EXPECT_EQ(b->NextSibling(), c);
  EXPECT_EQ(c->NextSibling(), nullptr);
  EXPECT_EQ(c->PrevSibling(), b);
  EXPECT_EQ(a->PrevSibling(), nullptr);
  EXPECT_EQ(root->NextSibling(), nullptr);
}

TEST(NodeTest, RemoveChildClearsParent) {
  NodePtr root = Node::Element("r");
  NodePtr a = root->AddChild(Node::Element("a"));
  root->RemoveChild(0);
  EXPECT_TRUE(root->children().empty());
  EXPECT_EQ(a->parent(), nullptr);
}

TEST(NodeTest, SubtreeSize) {
  NodePtr book = MakeBook("T", "A", 2020);
  // book + 3 elements + 3 text nodes = 7
  EXPECT_EQ(book->SubtreeSize(), 7u);
}

TEST(NodeTest, DeepEqualsAndClone) {
  NodePtr a = MakeBook("T", "A", 2020);
  a->SetAttribute("id", Value::Int(1));
  NodePtr b = a->Clone();
  EXPECT_TRUE(a->DeepEquals(*b));
  EXPECT_EQ(b->parent(), nullptr);
  EXPECT_EQ(b->FindChild("title")->parent(), b.get());
  // Mutating the clone does not affect the original.
  b->SetAttribute("id", Value::Int(2));
  EXPECT_FALSE(a->DeepEquals(*b));
  EXPECT_EQ(a->GetAttribute("id"), Value::Int(1));
}

TEST(NodeTest, DeepEqualsDetectsOrderDifference) {
  NodePtr a = Node::Element("r");
  a->AddChild(Node::Element("x"));
  a->AddChild(Node::Element("y"));
  NodePtr b = Node::Element("r");
  b->AddChild(Node::Element("y"));
  b->AddChild(Node::Element("x"));
  EXPECT_FALSE(a->DeepEquals(*b));  // XML is intrinsically ordered (§4).
}

TEST(NodeTest, FreezeMakesWholeTreeImmutable) {
  NodePtr book = MakeBook("A", "X", 2000);
  ConstNodePtr snapshot = book->Freeze();
  // Freeze is in-place: the snapshot aliases the original tree, and the
  // flag is sticky down to every descendant.
  EXPECT_EQ(snapshot.get(), book.get());
  EXPECT_TRUE(book->frozen());
  EXPECT_TRUE(book->FindChild("title")->frozen());
  // Freezing twice is a no-op.
  EXPECT_EQ(book->Freeze().get(), book.get());
}

TEST(NodeTest, CloneOfFrozenNodeIsThawed) {
  NodePtr book = MakeBook("A", "X", 2000);
  book->Freeze();
  NodePtr copy = book->Clone();
  EXPECT_FALSE(copy->frozen());
  EXPECT_FALSE(copy->FindChild("title")->frozen());
  // The thawed copy mutates freely and leaves the snapshot untouched.
  copy->SetAttribute("edited", Value::Bool(true));
  EXPECT_TRUE(copy->HasAttribute("edited"));
  EXPECT_FALSE(book->HasAttribute("edited"));
}

TEST(NodeTest, EstimatedBytesGrowsWithContent) {
  NodePtr small = Node::Element("r");
  small->AddScalarChild("v", Value::String("x"));
  NodePtr large = Node::Element("r");
  for (int i = 0; i < 100; ++i) {
    large->AddScalarChild("v", Value::String("some longer payload text"));
  }
  EXPECT_GT(small->EstimatedBytes(), sizeof(Node));
  EXPECT_GT(large->EstimatedBytes(), 50 * small->EstimatedBytes() / 2);
}

TEST(NodeTest, CollectDescendants) {
  NodePtr lib = Node::Element("library");
  lib->AddChild(MakeBook("A", "X", 2000));
  lib->AddChild(MakeBook("B", "Y", 2001));
  std::vector<NodePtr> all;
  lib->CollectDescendants(&all);
  // 2 books × (book + title + author + year) = 8 elements.
  EXPECT_EQ(all.size(), 8u);
  EXPECT_EQ(all[0]->name(), "book");
  EXPECT_EQ(all[1]->name(), "title");
}

}  // namespace
}  // namespace nimble
