#include <gtest/gtest.h>

#include "connector/csv_connector.h"
#include "connector/relational_connector.h"
#include "connector/simulated_source.h"
#include "connector/xml_connector.h"
#include "core/engine.h"
#include "frontend/lens.h"
#include "materialize/view_store.h"
#include "xml/serializer.h"

namespace nimble {
namespace {

/// Full-stack fixture: four source types behind one catalog, mirroring the
/// web_portal example, used for cross-layer invariants.
class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<relational::Database>("shop");
    Must(db_->Execute("CREATE TABLE products (sku TEXT PRIMARY KEY, "
                      "title TEXT, price DOUBLE, category TEXT)"));
    Must(db_->Execute("INSERT INTO products VALUES "
                      "('w-1', 'Widget', 25.0, 'tools'), "
                      "('g-1', 'Gizmo', 8.0, 'tools'), "
                      "('b-1', 'Bauble', 3.5, 'gifts'), "
                      "('t-1', 'Trinket', 12.0, 'gifts'), "
                      "('s-1', 'Sprocket', 99.0, 'tools')"));
    Must(db_->Execute("CREATE INDEX idx_cat ON products (category)"));

    auto stock = std::make_unique<connector::CsvConnector>("wh");
    Must(stock->PutCsv("stock",
                       "sku,on_hand\nw-1,14\ng-1,0\nb-1,250\nt-1,3\ns-1,7\n"));

    auto reviews = std::make_unique<connector::XmlConnector>("rev");
    Must(reviews->PutDocumentText(
        "reviews",
        "<reviews>"
        "<review sku=\"w-1\"><stars>5</stars></review>"
        "<review sku=\"w-1\"><stars>4</stars></review>"
        "<review sku=\"s-1\"><stars>2</stars></review>"
        "</reviews>"));

    catalog_ = std::make_unique<metadata::Catalog>();
    Must(catalog_->RegisterSource(
        std::make_unique<connector::RelationalConnector>("shop", db_.get())));
    Must(catalog_->RegisterSource(std::move(stock)));
    Must(catalog_->RegisterSource(std::move(reviews)));
    engine_ = std::make_unique<core::IntegrationEngine>(catalog_.get());
  }

  void Must(const Status& s) { ASSERT_TRUE(s.ok()) << s.ToString(); }
  template <typename T>
  void Must(const Result<T>& r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  std::unique_ptr<relational::Database> db_;
  std::unique_ptr<metadata::Catalog> catalog_;
  std::unique_ptr<core::IntegrationEngine> engine_;
};

/// Canonical rendering of a result document for order-insensitive
/// comparison (children sorted by serialized form).
std::string Canonical(const Node& doc) {
  std::vector<std::string> parts;
  for (const NodePtr& child : doc.children()) {
    parts.push_back(ToXml(*child));
  }
  std::sort(parts.begin(), parts.end());
  std::string out;
  for (const std::string& part : parts) out += part + "\n";
  return out;
}

// The optimizer invariant the whole compiler rests on: every combination
// of pushdown/bind-join/parallel options yields the same answer for every
// query shape.
class OptionEquivalence : public IntegrationTest,
                          public ::testing::WithParamInterface<const char*> {};

TEST_P(OptionEquivalence, AllOptionCombosAgree) {
  std::string reference;
  bool first = true;
  for (bool pushdown : {true, false}) {
    for (bool bind : {true, false}) {
      for (bool parallel : {true, false}) {
        core::EngineOptions options;
        options.enable_pushdown = pushdown;
        options.enable_bind_join = bind;
        options.parallel_fetch = parallel;
        engine_->set_options(options);
        Result<core::QueryResult> result = engine_->ExecuteText(GetParam());
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        std::string canonical = Canonical(*result->document);
        if (first) {
          reference = canonical;
          first = false;
        } else {
          EXPECT_EQ(canonical, reference)
              << "pushdown=" << pushdown << " bind=" << bind
              << " parallel=" << parallel;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Queries, OptionEquivalence,
    ::testing::Values(
        // simple selection
        R"(WHERE <products><row><sku>$s</sku><price>$p</price></row>
           </products> IN "shop:products", $p > 10
           CONSTRUCT <x sku=$s price=$p/>)",
        // two-source join (SQL x CSV)
        R"(WHERE <products><row><sku>$s</sku><title>$t</title></row>
           </products> IN "shop:products",
           <stock><row><sku>$s</sku><on_hand>$oh</on_hand></row></stock>
           IN "wh:stock", $oh > 0
           CONSTRUCT <item><t>$t</t><oh>$oh</oh></item>)",
        // three-source join with attribute pattern
        R"(WHERE <products><row><sku>$s</sku><category>tools</category></row>
           </products> IN "shop:products",
           <stock><row><sku>$s</sku><on_hand>$oh</on_hand></row></stock>
           IN "wh:stock",
           <reviews><review sku=$s><stars>$st</stars></review></reviews>
           IN "rev:reviews"
           CONSTRUCT <rated sku=$s stars=$st oh=$oh/>)",
        // aggregation over a join
        R"(WHERE <products><row><sku>$s</sku><category>$c</category>
           <price>$p</price></row></products> IN "shop:products"
           CONSTRUCT <cat name=$c><n>count($p)</n><avg>avg($p)</avg></cat>
           GROUP BY $c ORDER BY $c)",
        // union
        R"(WHERE <products><row><sku>$s</sku></row></products>
           IN "shop:products" CONSTRUCT <k>$s</k>
           UNION
           WHERE <stock><row><sku>$s</sku></row></stock> IN "wh:stock"
           CONSTRUCT <k>$s</k>)"));

TEST_F(IntegrationTest, LensOverMaterializedViewStaysFresh) {
  Must(catalog_->DefineView("tool_stock", R"(
    WHERE <products><row><sku>$s</sku><title>$t</title>
          <category>tools</category></row></products> IN "shop:products",
          <stock><row><sku>$s</sku><on_hand>$oh</on_hand></row></stock>
          IN "wh:stock", $oh > 0
    CONSTRUCT <tool sku=$s><title>$t</title><qty>$oh</qty></tool>
  )"));
  VirtualClock clock;
  materialize::MaterializedViewStore store(catalog_.get(), engine_.get(),
                                           &clock);
  Must(store.Materialize("tool_stock"));
  Result<core::QueryResult> before = store.Query("tool_stock");
  Must(before);
  EXPECT_EQ(before->report.result_count, 2u);  // widget, sprocket

  // Source change invalidates the copy; next serve refreshes.
  Must(db_->Execute("INSERT INTO products VALUES "
                    "('h-1', 'Hammer', 15.0, 'tools')"));
  // Hammer has no stock row; result count unchanged, but refresh happened.
  Result<core::QueryResult> after = store.Query("tool_stock");
  Must(after);
  EXPECT_EQ(store.stats().refreshes, 2u);
}

TEST_F(IntegrationTest, RetriesMaskTransientOutages) {
  // A source that is down exactly once recovers transparently when
  // fetch_retries >= 1.
  VirtualClock clock;
  auto inner = std::make_unique<connector::XmlConnector>("flaky");
  Must(inner->PutDocumentText("d", "<d><r><v>1</v></r></d>"));
  connector::SimulationConfig config;
  config.availability = 0.5;
  config.seed = 3;
  auto sim = std::make_unique<connector::SimulatedSource>(std::move(inner),
                                                          config, &clock);
  Must(catalog_->RegisterSource(std::move(sim)));

  const char* query =
      "WHERE <d><r><v>$v</v></r></d> IN \"flaky:d\" CONSTRUCT <o>$v</o>";
  core::EngineOptions no_retry;
  engine_->set_options(no_retry);
  size_t failures_without = 0;
  for (int i = 0; i < 100; ++i) {
    if (!engine_->ExecuteText(query).ok()) ++failures_without;
  }
  core::EngineOptions with_retry;
  with_retry.fetch_retries = 3;
  engine_->set_options(with_retry);
  size_t failures_with = 0;
  for (int i = 0; i < 100; ++i) {
    if (!engine_->ExecuteText(query).ok()) ++failures_with;
  }
  // p(fail) drops from ~0.5 to ~0.5^4.
  EXPECT_GT(failures_without, 30u);
  EXPECT_LT(failures_with, 20u);
}

TEST_F(IntegrationTest, DocumentOrderPreservedThroughTheStack) {
  // XML is intrinsically ordered (§4): a single-fragment query without
  // ORDER BY reproduces source document order.
  Result<core::QueryResult> result = engine_->ExecuteText(R"(
    WHERE <reviews><review sku=$s><stars>$st</stars></review></reviews>
          IN "rev:reviews"
    CONSTRUCT <r sku=$s stars=$st/>
  )");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->report.result_count, 3u);
  const auto& children = result->document->children();
  EXPECT_EQ(children[0]->GetAttribute("stars"), Value::Int(5));
  EXPECT_EQ(children[1]->GetAttribute("stars"), Value::Int(4));
  EXPECT_EQ(children[2]->GetAttribute("stars"), Value::Int(2));
}

}  // namespace
}  // namespace nimble
