#include "core/plan_verifier.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "connector/relational_connector.h"
#include "connector/xml_connector.h"
#include "core/engine.h"
#include "core/fragmenter.h"
#include "core/plan_cache.h"
#include "relational/database.h"
#include "xmlql/parser.h"

namespace nimble {
namespace core {
namespace {

/// Catalog with a SQL-capable source, an XML feed carrying TWO documents
/// (so Collections() stays non-empty after one is dropped), an empty XML
/// source (no enumeration), and a mediated view.
class PlanVerifierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<relational::Database>("db");
    Must(db_->Execute(
        "CREATE TABLE t (a INT PRIMARY KEY, b TEXT)"));
    Must(db_->Execute("INSERT INTO t VALUES (1, 'one'), (2, 'two')"));

    auto feed = std::make_unique<connector::XmlConnector>("feed");
    feed_ = feed.get();
    Must(feed->PutDocumentText(
        "products",
        "<products><product><title>Widget</title><sku>w1</sku></product>"
        "<product><title>Gizmo</title><sku>g1</sku></product></products>"));
    Must(feed->PutDocumentText("extra", "<extra><x>1</x></extra>"));

    auto ghost = std::make_unique<connector::XmlConnector>("ghost");

    catalog_ = std::make_unique<metadata::Catalog>();
    Must(catalog_->RegisterSource(
        std::make_unique<connector::RelationalConnector>("db", db_.get())));
    Must(catalog_->RegisterSource(std::move(feed)));
    Must(catalog_->RegisterSource(std::move(ghost)));
    Must(catalog_->DefineView(
        "things",
        "WHERE <t><row><a>$a</a><b>$b</b></row></t> IN \"db:t\" "
        "CONSTRUCT <thing><b>$b</b></thing>"));
  }

  void Must(const Status& s) { ASSERT_TRUE(s.ok()) << s.ToString(); }
  template <typename T>
  void Must(const Result<T>& r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  xmlql::Query Parse(const std::string& text) {
    Result<xmlql::Query> q = xmlql::ParseQuery(text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    if (!q.ok()) std::abort();
    return std::move(*q);
  }

  void ExpectViolation(const Status& s, const std::string& needle) {
    ASSERT_FALSE(s.ok()) << "expected a fragmentation violation";
    EXPECT_EQ(s.code(), StatusCode::kInternal) << s.ToString();
    EXPECT_NE(s.message().find("fragmentation verifier"), std::string::npos)
        << s.ToString();
    EXPECT_NE(s.message().find(needle), std::string::npos) << s.ToString();
  }

  std::unique_ptr<relational::Database> db_;
  connector::XmlConnector* feed_ = nullptr;
  std::unique_ptr<metadata::Catalog> catalog_;
};

constexpr char kTwoSourceQuery[] =
    "WHERE <t><row><a>$a</a><b>$b</b></row></t> IN \"db:t\",\n"
    "      <products><product><title>$p</title><sku>$b</sku></product>"
    "</products> IN \"feed:products\",\n"
    "      $a > 0, $p != 'nope'\n"
    "CONSTRUCT <out><b>$b</b></out>";

// ---- CatalogResolver -----------------------------------------------------

TEST_F(PlanVerifierTest, ResolverAcceptsRegisteredSourceAndView) {
  CatalogResolver resolver(*catalog_);
  xmlql::SourceRef source_ref;
  source_ref.source = "db";
  source_ref.collection = "t";
  EXPECT_TRUE(resolver.Resolve(source_ref).ok());

  xmlql::SourceRef view_ref;
  view_ref.collection = "things";
  ASSERT_TRUE(view_ref.is_view());
  EXPECT_TRUE(resolver.Resolve(view_ref).ok());
}

TEST_F(PlanVerifierTest, ResolverRejectsUnknownSource) {
  CatalogResolver resolver(*catalog_);
  xmlql::SourceRef ref;
  ref.source = "nowhere";
  ref.collection = "t";
  Status s = resolver.Resolve(ref);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_NE(s.message().find("nowhere"), std::string::npos);
}

TEST_F(PlanVerifierTest, ResolverRejectsUnknownCollection) {
  CatalogResolver resolver(*catalog_);
  xmlql::SourceRef ref;
  ref.source = "feed";
  ref.collection = "dropped";
  Status s = resolver.Resolve(ref);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_NE(s.message().find("dropped"), std::string::npos);
}

TEST_F(PlanVerifierTest, ResolverRejectsUnknownView) {
  CatalogResolver resolver(*catalog_);
  xmlql::SourceRef ref;
  ref.collection = "no_such_view";
  Status s = resolver.Resolve(ref);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST_F(PlanVerifierTest, ResolverPermissiveWhenSourceCannotEnumerate) {
  // "ghost" holds no documents, so Collections() is empty: availability is
  // a runtime matter and static analysis must not reject the reference.
  CatalogResolver resolver(*catalog_);
  xmlql::SourceRef ref;
  ref.source = "ghost";
  ref.collection = "whatever";
  EXPECT_TRUE(resolver.Resolve(ref).ok());
}

// ---- VerifyFragmentation (F1–F3 tampering) -------------------------------

TEST_F(PlanVerifierTest, IntactFragmentationPasses) {
  xmlql::Query query = Parse(kTwoSourceQuery);
  Fragmentation frag = FragmentQuery(query);
  EXPECT_TRUE(VerifyFragmentation(query, frag, *catalog_).ok());
}

TEST_F(PlanVerifierTest, F1_DroppedPatternDetected) {
  xmlql::Query query = Parse(kTwoSourceQuery);
  Fragmentation frag = FragmentQuery(query);
  ASSERT_EQ(frag.fragments.size(), 2u);
  frag.fragments.pop_back();
  ExpectViolation(VerifyFragmentation(query, frag, *catalog_),
                  "covered 0 times");
}

TEST_F(PlanVerifierTest, F1_ForeignPatternDetected) {
  xmlql::Query query = Parse(kTwoSourceQuery);
  xmlql::Query other = Parse(
      "WHERE <alien><z>$z</z></alien> IN \"db:t\" "
      "CONSTRUCT <out>$z</out>");
  Fragmentation frag = FragmentQuery(query);
  frag.fragments[0].pattern = &other.patterns[0];
  ExpectViolation(VerifyFragmentation(query, frag, *catalog_),
                  "not a pattern of this query");
}

TEST_F(PlanVerifierTest, F2_DroppedConditionDetected) {
  xmlql::Query query = Parse(kTwoSourceQuery);
  Fragmentation frag = FragmentQuery(query);
  bool dropped = false;
  for (Fragment& fragment : frag.fragments) {
    if (!fragment.local_conditions.empty()) {
      fragment.local_conditions.clear();
      dropped = true;
      break;
    }
  }
  ASSERT_TRUE(dropped) << "expected at least one local condition";
  ExpectViolation(VerifyFragmentation(query, frag, *catalog_),
                  "assigned 0 times");
}

TEST_F(PlanVerifierTest, F2_DuplicatedConditionDetected) {
  xmlql::Query query = Parse(kTwoSourceQuery);
  Fragmentation frag = FragmentQuery(query);
  ASSERT_FALSE(query.conditions.empty());
  // Re-list an already-claimed condition as a cross condition.
  frag.cross_conditions.push_back(&query.conditions[0]);
  ExpectViolation(VerifyFragmentation(query, frag, *catalog_),
                  "assigned 2 times");
}

TEST_F(PlanVerifierTest, F3_TamperedSchemaDetected) {
  xmlql::Query query = Parse(kTwoSourceQuery);
  Fragmentation frag = FragmentQuery(query);
  frag.fragments[0].schema = algebra::TupleSchema({"bogus"});
  ExpectViolation(VerifyFragmentation(query, frag, *catalog_),
                  "does not match its pattern");
}

// ---- VerifyCompiledProgram -----------------------------------------------

TEST_F(PlanVerifierTest, CompiledProgramBranchCountMismatch) {
  Result<std::shared_ptr<const CompiledProgram>> compiled =
      CompileProgram(kTwoSourceQuery);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  CompiledProgram truncated;
  truncated.program.branches.push_back(Parse(kTwoSourceQuery));
  // No fragmentations at all: 0 for 1 branch.
  ExpectViolation(VerifyCompiledProgram(truncated, *catalog_),
                  "fragmentations for");
}

TEST_F(PlanVerifierTest, CompiledProgramFullPassSucceeds) {
  Result<std::shared_ptr<const CompiledProgram>> compiled =
      CompileProgram(kTwoSourceQuery);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_TRUE(VerifyCompiledProgram(**compiled, *catalog_).ok());
}

TEST_F(PlanVerifierTest, CompiledProgramCatchesDanglingReference) {
  Result<std::shared_ptr<const CompiledProgram>> compiled = CompileProgram(
      "WHERE <products><product><title>$t</title></product></products> "
      "IN \"feed:vanished\" CONSTRUCT <out>$t</out>");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  Status s = VerifyCompiledProgram(**compiled, *catalog_);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_NE(s.message().find("vanished"), std::string::npos);
}

// ---- Engine integration: stale cached plans are evicted ------------------

constexpr char kFeedQuery[] =
    "WHERE <products><product><title>$t</title></product></products> "
    "IN \"feed:products\" CONSTRUCT <out><title>$t</title></out>";

TEST_F(PlanVerifierTest, CacheHitRevalidationPassesForFreshPlan) {
  EngineOptions opts;
  opts.verify_plans = true;
  IntegrationEngine engine(catalog_.get(), opts);
  ASSERT_NE(engine.plan_cache(), nullptr);

  Result<QueryResult> first = engine.ExecuteText(kFeedQuery);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  Result<QueryResult> second = engine.ExecuteText(kFeedQuery);
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  PlanCache::Stats stats = engine.plan_cache()->stats();
  EXPECT_GE(stats.hits, 1u);
  EXPECT_EQ(stats.invalidations, 0u);
}

TEST_F(PlanVerifierTest, StaleCachedPlanIsEvictedAndRecompiled) {
  EngineOptions opts;
  opts.verify_plans = true;
  IntegrationEngine engine(catalog_.get(), opts);
  ASSERT_NE(engine.plan_cache(), nullptr);

  // Warm the cache while the document exists.
  Result<QueryResult> warm = engine.ExecuteText(kFeedQuery);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();

  // Source-side schema change: the document vanishes but "extra" keeps the
  // enumeration non-empty, so the resolver positively knows it is gone.
  ASSERT_TRUE(feed_->RemoveDocument("products"));
  Result<QueryResult> stale = engine.ExecuteText(kFeedQuery);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kNotFound)
      << stale.status().ToString();
  EXPECT_EQ(engine.plan_cache()->stats().invalidations, 1u);

  // The document comes back; the recompiled plan verifies and runs.
  Must(feed_->PutDocumentText(
      "products",
      "<products><product><title>Back</title></product></products>"));
  Result<QueryResult> again = engine.ExecuteText(kFeedQuery);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->report.result_count, 1u);
}

}  // namespace
}  // namespace core
}  // namespace nimble
