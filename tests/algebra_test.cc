#include <gtest/gtest.h>

#include "algebra/construct.h"
#include "algebra/operators.h"
#include "algebra/pattern_match.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xmlql/parser.h"

namespace nimble {
namespace algebra {
namespace {

// Helper: parse a one-pattern query and match its pattern against a doc.
std::pair<TupleSchema, std::vector<Tuple>> Match(const std::string& pattern_q,
                                                 const std::string& xml) {
  Result<xmlql::Query> q = xmlql::ParseQuery(pattern_q);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  Result<NodePtr> doc = ParseXml(xml);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  TupleSchema schema = SchemaForPattern(q->patterns[0].root);
  Result<std::vector<Tuple>> tuples =
      MatchPattern(q->patterns[0].root, *doc, schema);
  EXPECT_TRUE(tuples.ok()) << tuples.status().ToString();
  return {schema, std::move(*tuples)};
}

MaterializedScan MakeScan(std::vector<std::string> vars,
                          std::vector<std::vector<Value>> rows) {
  TupleSchema schema(std::move(vars));
  std::vector<Tuple> tuples;
  for (auto& row : rows) {
    Tuple t;
    for (Value& v : row) t.emplace_back(Binding{std::move(v)});
    tuples.push_back(std::move(t));
  }
  return MaterializedScan(std::move(schema), std::move(tuples));
}

std::unique_ptr<MaterializedScan> MakeScanPtr(
    std::vector<std::string> vars, std::vector<std::vector<Value>> rows) {
  return std::make_unique<MaterializedScan>(
      MakeScan(std::move(vars), std::move(rows)));
}

// ---- Binding / schema ---------------------------------------------------------

TEST(BindingTest, States) {
  Binding unset;
  EXPECT_TRUE(unset.is_unset());
  EXPECT_TRUE(unset.AsScalar().is_null());
  Binding scalar{Value::Int(5)};
  EXPECT_TRUE(scalar.is_scalar());
  EXPECT_EQ(scalar.AsScalar(), Value::Int(5));
  Binding node{Node::Element("e")};
  EXPECT_TRUE(node.is_node());
}

TEST(BindingTest, JoinEquality) {
  EXPECT_TRUE(Binding{Value::Int(3)}.EqualsForJoin(Binding{Value::Double(3)}));
  EXPECT_FALSE(Binding{}.EqualsForJoin(Binding{Value::Int(3)}));
  NodePtr e = Node::Element("year");
  e->AddChild(Node::Text(Value::Int(2001)));
  // A node binding joins with a scalar via its scalar view.
  EXPECT_TRUE(Binding{e}.EqualsForJoin(Binding{Value::Int(2001)}));
}

TEST(TupleSchemaTest, AddAndMerge) {
  TupleSchema a({"x", "y"});
  EXPECT_EQ(a.SlotOf("y"), std::optional<size_t>(1));
  EXPECT_FALSE(a.SlotOf("z").has_value());
  EXPECT_EQ(a.AddVariable("x"), 0u);  // idempotent
  TupleSchema b({"y", "z"});
  TupleSchema merged = a.Merge(b);
  EXPECT_EQ(merged.variables(), (std::vector<std::string>{"x", "y", "z"}));
}

// ---- Pattern matching ----------------------------------------------------------

TEST(PatternMatchTest, FlatRecords) {
  auto [schema, tuples] = Match(
      "WHERE <t><r><a>$a</a><b>$b</b></r></t> IN \"s:t\" CONSTRUCT <o>$a</o>",
      "<t><r><a>1</a><b>x</b></r><r><a>2</a><b>y</b></r></t>");
  ASSERT_EQ(tuples.size(), 2u);
  EXPECT_EQ(tuples[0][*schema.SlotOf("a")].AsScalar(), Value::Int(1));
  EXPECT_EQ(tuples[1][*schema.SlotOf("b")].AsScalar(), Value::String("y"));
}

TEST(PatternMatchTest, MissingRequiredChildDropsRecord) {
  auto [schema, tuples] = Match(
      "WHERE <t><r><a>$a</a><b>$b</b></r></t> IN \"s:t\" CONSTRUCT <o>$a</o>",
      "<t><r><a>1</a></r><r><a>2</a><b>y</b></r></t>");
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples[0][*schema.SlotOf("a")].AsScalar(), Value::Int(2));
}

TEST(PatternMatchTest, MultipleChildrenCartesian) {
  auto [schema, tuples] = Match(
      "WHERE <o><item><sku>$s</sku></item><item><sku>$t</sku></item></o> "
      "IN \"s:o\" CONSTRUCT <x>$s</x>",
      "<o><item><sku>a</sku></item><item><sku>b</sku></item></o>");
  // 2 choices for first item pattern × 2 for second = 4 combinations.
  EXPECT_EQ(tuples.size(), 4u);
}

TEST(PatternMatchTest, RepeatedVariableUnifies) {
  auto [schema, tuples] = Match(
      "WHERE <d><p><a>$x</a></p><q><b>$x</b></q></d> IN \"s:d\" "
      "CONSTRUCT <o>$x</o>",
      "<d><p><a>1</a></p><p><a>2</a></p><q><b>2</b></q><q><b>3</b></q></d>");
  // Only $x=2 appears on both sides.
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples[0][*schema.SlotOf("x")].AsScalar(), Value::Int(2));
}

TEST(PatternMatchTest, AttributeLiteralConstraint) {
  auto [schema, tuples] = Match(
      "WHERE <t><r k=\"keep\"><v>$v</v></r></t> IN \"s:t\" CONSTRUCT <o>$v</o>",
      "<t><r k=\"keep\"><v>1</v></r><r k=\"drop\"><v>2</v></r>"
      "<r><v>3</v></r></t>");
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples[0][0].AsScalar(), Value::Int(1));
}

TEST(PatternMatchTest, DescendantRootSearchesAnywhere) {
  auto [schema, tuples] = Match(
      "WHERE <//leaf><v>$v</v></leaf> IN \"s:t\" CONSTRUCT <o>$v</o>",
      "<t><mid><leaf><v>1</v></leaf></mid><leaf><v>2</v></leaf></t>");
  EXPECT_EQ(tuples.size(), 2u);
}

TEST(PatternMatchTest, RootMismatchYieldsNothing) {
  auto [schema, tuples] = Match(
      "WHERE <nope><r><v>$v</v></r></nope> IN \"s:t\" CONSTRUCT <o>$v</o>",
      "<t><r><v>1</v></r></t>");
  EXPECT_TRUE(tuples.empty());
}

TEST(PatternMatchTest, ElementAsBindsNode) {
  auto [schema, tuples] = Match(
      "WHERE <t><r ELEMENT_AS $e><v>$v</v></r></t> IN \"s:t\" "
      "CONSTRUCT <o>$v</o>",
      "<t><r><v>7</v><extra>z</extra></r></t>");
  ASSERT_EQ(tuples.size(), 1u);
  const Binding& e = tuples[0][*schema.SlotOf("e")];
  ASSERT_TRUE(e.is_node());
  EXPECT_EQ(e.node()->FindChild("extra")->ScalarValue(), Value::String("z"));
}

// ---- Operators -----------------------------------------------------------------

TEST(OperatorTest, MaterializedScanDrain) {
  auto scan = MakeScanPtr({"x"}, {{Value::Int(1)}, {Value::Int(2)}});
  Result<std::vector<Tuple>> all = scan->Drain();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 2u);
}

TEST(OperatorTest, FilterKeepsPassing) {
  auto scan =
      MakeScanPtr({"x"}, {{Value::Int(1)}, {Value::Int(5)}, {Value::Int(9)}});
  xmlql::Condition cond;
  cond.op = xmlql::Condition::Op::kGt;
  cond.lhs.is_variable = true;
  cond.lhs.variable = "x";
  cond.rhs.literal = Value::Int(3);
  Result<BoundCondition> bc = BoundCondition::Bind(cond, scan->schema());
  ASSERT_TRUE(bc.ok());
  Filter filter(std::move(scan), {*bc});
  Result<std::vector<Tuple>> out = filter.Drain();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
}

TEST(OperatorTest, HashJoinOnSharedVariable) {
  auto left = MakeScanPtr({"id", "name"}, {{Value::Int(1), Value::String("a")},
                                           {Value::Int(2), Value::String("b")},
                                           {Value::Int(3), Value::String("c")}});
  auto right = MakeScanPtr({"id", "total"}, {{Value::Int(1), Value::Int(10)},
                                             {Value::Int(1), Value::Int(20)},
                                             {Value::Int(3), Value::Int(30)},
                                             {Value::Int(9), Value::Int(99)}});
  HashJoin join(std::move(left), std::move(right));
  EXPECT_EQ(join.join_variables(), (std::vector<std::string>{"id"}));
  EXPECT_EQ(join.schema().variables(),
            (std::vector<std::string>{"id", "name", "total"}));
  Result<std::vector<Tuple>> out = join.Drain();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 3u);  // 1→10, 1→20, 3→30
}

TEST(OperatorTest, HashJoinNullNeverJoins) {
  auto left = MakeScanPtr({"k"}, {{Value::Null()}, {Value::Int(1)}});
  auto right = MakeScanPtr({"k"}, {{Value::Null()}, {Value::Int(1)}});
  HashJoin join(std::move(left), std::move(right));
  Result<std::vector<Tuple>> out = join.Drain();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 1u);
}

TEST(OperatorTest, NestedLoopJoinCartesianWithCondition) {
  auto left = MakeScanPtr({"a"}, {{Value::Int(1)}, {Value::Int(5)}});
  auto right = MakeScanPtr({"b"}, {{Value::Int(2)}, {Value::Int(4)}});
  // a < b
  TupleSchema joined = TupleSchema({"a"}).Merge(TupleSchema({"b"}));
  xmlql::Condition cond;
  cond.op = xmlql::Condition::Op::kLt;
  cond.lhs.is_variable = true;
  cond.lhs.variable = "a";
  cond.rhs.is_variable = true;
  cond.rhs.variable = "b";
  Result<BoundCondition> bc = BoundCondition::Bind(cond, joined);
  ASSERT_TRUE(bc.ok());
  NestedLoopJoin join(std::move(left), std::move(right), {*bc});
  Result<std::vector<Tuple>> out = join.Drain();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);  // (1,2), (1,4)
}

TEST(OperatorTest, SortStableMultiKey) {
  auto scan = MakeScanPtr(
      {"g", "v"},
      {{Value::String("b"), Value::Int(1)}, {Value::String("a"), Value::Int(2)},
       {Value::String("a"), Value::Int(1)}, {Value::String("b"), Value::Int(2)}});
  Sort sort(std::move(scan), {{0, false}, {1, true}});
  Result<std::vector<Tuple>> out = sort.Drain();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)[0][0].AsScalar(), Value::String("a"));
  EXPECT_EQ((*out)[0][1].AsScalar(), Value::Int(2));
  EXPECT_EQ((*out)[3][1].AsScalar(), Value::Int(1));
}

TEST(OperatorTest, LimitCutsOff) {
  auto scan =
      MakeScanPtr({"x"}, {{Value::Int(1)}, {Value::Int(2)}, {Value::Int(3)}});
  Limit limit(std::move(scan), 2);
  Result<std::vector<Tuple>> out = limit.Drain();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
}

TEST(OperatorTest, HashAggregateGrouped) {
  auto scan = MakeScanPtr(
      {"city", "amount"},
      {{Value::String("sea"), Value::Int(10)},
       {Value::String("pdx"), Value::Int(5)},
       {Value::String("sea"), Value::Int(20)}});
  HashAggregate agg(std::move(scan), {"city"},
                    {{HashAggregate::Fn::kCount, "", "n"},
                     {HashAggregate::Fn::kSum, "amount", "total"},
                     {HashAggregate::Fn::kMax, "amount", "biggest"}});
  Result<std::vector<Tuple>> out = agg.Drain();
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  const TupleSchema& schema = agg.schema();
  EXPECT_EQ((*out)[0][*schema.SlotOf("city")].AsScalar(),
            Value::String("sea"));
  EXPECT_EQ((*out)[0][*schema.SlotOf("n")].AsScalar(), Value::Int(2));
  EXPECT_EQ((*out)[0][*schema.SlotOf("total")].AsScalar(), Value::Double(30));
  EXPECT_EQ((*out)[0][*schema.SlotOf("biggest")].AsScalar(), Value::Int(20));
}

TEST(OperatorTest, HashAggregateGlobalGroup) {
  auto scan = MakeScanPtr({"v"}, {{Value::Int(4)}, {Value::Int(6)}});
  HashAggregate agg(std::move(scan), {},
                    {{HashAggregate::Fn::kAvg, "v", "mean"}});
  Result<std::vector<Tuple>> out = agg.Drain();
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0][0].AsScalar(), Value::Double(5.0));
}

TEST(OperatorTest, DescribeRendersTree) {
  auto left = MakeScanPtr({"x"}, {{Value::Int(1)}});
  auto right = MakeScanPtr({"x"}, {{Value::Int(1)}});
  HashJoin join(std::move(left), std::move(right));
  std::string description = join.Describe();
  EXPECT_NE(description.find("HashJoin($x)"), std::string::npos);
  EXPECT_NE(description.find("Scan"), std::string::npos);
}

// ---- Construct -------------------------------------------------------------------

TEST(ConstructTest, InstantiatesPerTuple) {
  Result<xmlql::Query> q = xmlql::ParseQuery(
      "WHERE <t><r><a>$a</a></r></t> IN \"s:t\" "
      "CONSTRUCT <row id=$a><val>$a</val></row>");
  ASSERT_TRUE(q.ok());
  auto scan = MakeScanPtr({"a"}, {{Value::Int(1)}, {Value::Int(2)}});
  Result<NodePtr> doc = ConstructResult(scan.get(), *q->construct);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->children().size(), 2u);
  EXPECT_EQ((*doc)->children()[1]->GetAttribute("id"), Value::Int(2));
  EXPECT_EQ((*doc)->children()[1]->FindChild("val")->ScalarValue(),
            Value::Int(2));
}

// ---- Property: join order invariance ----------------------------------------------

class JoinCommutativity : public ::testing::TestWithParam<int> {};

TEST_P(JoinCommutativity, HashJoinResultSetIsOrderInsensitive) {
  // Generate two deterministic relations from the seed and check |A ⋈ B| ==
  // |B ⋈ A| and result multisets match (compared via sorted serialization).
  int seed = GetParam();
  std::vector<std::vector<Value>> left_rows, right_rows;
  for (int i = 0; i < 20; ++i) {
    left_rows.push_back({Value::Int((i * seed) % 7), Value::Int(i)});
    right_rows.push_back({Value::Int((i * (seed + 3)) % 5), Value::Int(i)});
  }
  auto drain_sorted = [](Operator* op) {
    Result<std::vector<Tuple>> out = op->Drain();
    EXPECT_TRUE(out.ok());
    std::vector<std::string> rendered;
    std::vector<std::string> vars = op->schema().variables();
    std::sort(vars.begin(), vars.end());  // canonical variable order
    for (const Tuple& tuple : *out) {
      std::string s;
      for (const std::string& var : vars) {
        s += var + "=" + tuple[*op->schema().SlotOf(var)].AsScalar().ToString() +
             ";";
      }
      rendered.push_back(s);
    }
    std::sort(rendered.begin(), rendered.end());
    return rendered;
  };

  HashJoin ab(MakeScanPtr({"k", "l"}, left_rows),
              MakeScanPtr({"k", "r"}, right_rows));
  HashJoin ba(MakeScanPtr({"k", "r"}, right_rows),
              MakeScanPtr({"k", "l"}, left_rows));
  EXPECT_EQ(drain_sorted(&ab), drain_sorted(&ba));
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinCommutativity, ::testing::Range(1, 8));

}  // namespace
}  // namespace algebra
}  // namespace nimble
