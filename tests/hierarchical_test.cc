#include <gtest/gtest.h>

#include "hierarchical/hstore.h"
#include "xml/serializer.h"

namespace nimble {
namespace hierarchical {
namespace {

class HStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(store_
                    .Put("/corp/eng/ada",
                         {{"name", Value::String("Ada")},
                          {"level", Value::Int(7)}})
                    .ok());
    ASSERT_TRUE(store_
                    .Put("/corp/eng/bob",
                         {{"name", Value::String("Bob")},
                          {"level", Value::Int(4)}})
                    .ok());
    ASSERT_TRUE(store_
                    .Put("/corp/sales/cleo",
                         {{"name", Value::String("Cleo")},
                          {"level", Value::Int(5)}})
                    .ok());
  }

  HStore store_{"org"};
};

TEST_F(HStoreTest, PutAndGet) {
  Result<AttributeMap> attrs = store_.Get("/corp/eng/ada");
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ((*attrs)["name"], Value::String("Ada"));
  EXPECT_EQ((*attrs)["level"], Value::Int(7));
}

TEST_F(HStoreTest, GetMissingIsNotFound) {
  EXPECT_EQ(store_.Get("/corp/eng/zoe").status().code(),
            StatusCode::kNotFound);
}

TEST_F(HStoreTest, IntermediateEntriesNotMaterialized) {
  // "/corp" exists structurally but was never Put.
  EXPECT_FALSE(store_.Exists("/corp"));
  EXPECT_EQ(store_.Get("/corp").status().code(), StatusCode::kNotFound);
  // But it still lists children.
  Result<std::vector<std::string>> children = store_.ListChildren("/corp");
  ASSERT_TRUE(children.ok());
  EXPECT_EQ(*children, (std::vector<std::string>{"/corp/eng", "/corp/sales"}));
}

TEST_F(HStoreTest, PutAtIntermediateMaterializesIt) {
  ASSERT_TRUE(store_.Put("/corp", {{"kind", Value::String("root")}}).ok());
  EXPECT_TRUE(store_.Exists("/corp"));
}

TEST_F(HStoreTest, SizeCountsMaterializedOnly) { EXPECT_EQ(store_.size(), 3u); }

TEST_F(HStoreTest, PathValidation) {
  EXPECT_FALSE(store_.Put("no-slash", {}).ok());
  EXPECT_FALSE(store_.Put("/a//b", {}).ok());
  EXPECT_FALSE(store_.Put("/", {}).ok());
}

TEST_F(HStoreTest, PutReplacesAttributes) {
  ASSERT_TRUE(
      store_.Put("/corp/eng/ada", {{"name", Value::String("Ada L")}}).ok());
  Result<AttributeMap> attrs = store_.Get("/corp/eng/ada");
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->size(), 1u);
  EXPECT_EQ((*attrs)["name"], Value::String("Ada L"));
}

TEST_F(HStoreTest, SearchWithConditions) {
  std::vector<std::string> hits = store_.Search(
      "/corp", {{"level", AttrCondition::Op::kGe, Value::Int(5)}});
  EXPECT_EQ(hits,
            (std::vector<std::string>{"/corp/eng/ada", "/corp/sales/cleo"}));
}

TEST_F(HStoreTest, SearchEqualityAndPresence) {
  EXPECT_EQ(store_
                .Search("/", {{"name", AttrCondition::Op::kEq,
                               Value::String("Bob")}})
                .size(),
            1u);
  EXPECT_EQ(
      store_.Search("/", {{"level", AttrCondition::Op::kPresent, Value()}})
          .size(),
      3u);
  EXPECT_EQ(
      store_.Search("/", {{"nope", AttrCondition::Op::kPresent, Value()}})
          .size(),
      0u);
}

TEST_F(HStoreTest, SearchScopedToBase) {
  EXPECT_EQ(store_.Search("/corp/eng", {}).size(), 2u);
  EXPECT_EQ(store_.Search("/corp/sales", {}).size(), 1u);
  EXPECT_EQ(store_.Search("/nowhere", {}).size(), 0u);
}

TEST_F(HStoreTest, DeleteSubtree) {
  EXPECT_EQ(store_.DeleteSubtree("/corp/eng"), 2u);
  EXPECT_EQ(store_.size(), 1u);
  EXPECT_FALSE(store_.Exists("/corp/eng/ada"));
  EXPECT_EQ(store_.DeleteSubtree("/corp/eng"), 0u);
}

TEST_F(HStoreTest, VersionBumpsOnMutation) {
  uint64_t v0 = store_.version();
  ASSERT_TRUE(store_.Put("/corp/eng/dan", {}).ok());
  EXPECT_GT(store_.version(), v0);
  uint64_t v1 = store_.version();
  store_.DeleteSubtree("/corp/eng/dan");
  EXPECT_GT(store_.version(), v1);
}

TEST_F(HStoreTest, ExportXmlShape) {
  Result<NodePtr> xml = store_.ExportXml("/corp/eng");
  ASSERT_TRUE(xml.ok());
  // Root is the store name; the subtree nests entries.
  EXPECT_EQ((*xml)->name(), "org");
  NodePtr eng = (*xml)->FindChild("entry");
  ASSERT_NE(eng, nullptr);
  EXPECT_EQ(eng->GetAttribute("path"), Value::String("/corp/eng"));
  EXPECT_EQ(eng->FindChildren("entry").size(), 2u);
  NodePtr ada = eng->FindChildren("entry")[0];
  EXPECT_EQ(ada->FindChild("name")->ScalarValue(), Value::String("Ada"));
}

TEST_F(HStoreTest, AttrConditionOps) {
  AttributeMap attrs{{"x", Value::Int(5)}};
  using Op = AttrCondition::Op;
  EXPECT_TRUE((AttrCondition{"x", Op::kEq, Value::Int(5)}).Matches(attrs));
  EXPECT_TRUE((AttrCondition{"x", Op::kNe, Value::Int(4)}).Matches(attrs));
  EXPECT_TRUE((AttrCondition{"x", Op::kLt, Value::Int(6)}).Matches(attrs));
  EXPECT_TRUE((AttrCondition{"x", Op::kLe, Value::Int(5)}).Matches(attrs));
  EXPECT_TRUE((AttrCondition{"x", Op::kGt, Value::Int(4)}).Matches(attrs));
  EXPECT_TRUE((AttrCondition{"x", Op::kGe, Value::Int(5)}).Matches(attrs));
  EXPECT_FALSE((AttrCondition{"y", Op::kEq, Value::Int(5)}).Matches(attrs));
}

}  // namespace
}  // namespace hierarchical
}  // namespace nimble
