// Fixture tests for nimble-lint (DESIGN.md §2j): every rule gets a
// positive fixture (the violation fires, with the exact rule id) and a
// negative fixture (the compliant idiom stays clean), plus round-trips for
// all three suppression mechanisms. The fixtures are the executable
// specification of the rule surface — when a rule's matcher changes, the
// exact-id assertions here are what notices.

#include "tools/nimble_lint.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace nimble_lint {
namespace {

LintOptions DefaultOptions() {
  LintOptions options;
  options.known_ranks = {"kScheduler", "kThreadPool", "kPlanCache"};
  // Leave documented_ranks empty: the doc-sync check is opt-in and tested
  // explicitly below.
  return options;
}

std::vector<Finding> Analyze(const std::string& path, const std::string& src,
                         LintOptions options = DefaultOptions()) {
  Linter linter(std::move(options));
  linter.AddFile(path, src);
  linter.Finish();
  return linter.findings();
}

/// Unsuppressed findings with the given rule id.
int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(), [&](const Finding& f) {
        return f.rule == rule && !f.suppressed;
      }));
}

int CountUnsuppressed(const std::vector<Finding>& findings) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [](const Finding& f) { return !f.suppressed; }));
}

// ---------------------------------------------------------------------------
// NL001 raw-sync
// ---------------------------------------------------------------------------

TEST(LintNL001, RawMutexOutsideMutexHeaderFires) {
  const std::string src = R"cc(
    #include <mutex>
    struct Worker {
      std::mutex mu_;
      void Tick() { std::lock_guard<std::mutex> lock(mu_); }
    };
  )cc";
  std::vector<Finding> findings = Analyze("src/foo/worker.h", src);
  EXPECT_GE(CountRule(findings, "NL001"), 2);  // member + guard
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].rule_name, "raw-sync");
}

TEST(LintNL001, SharedMutexAndUniqueLockFireToo) {
  const std::string src = R"cc(
    std::shared_mutex rw_;
    void F() { std::unique_lock<std::shared_mutex> l(rw_); }
  )cc";
  EXPECT_EQ(CountRule(Analyze("src/foo/a.cc", src), "NL001"), 3);
}

TEST(LintNL001, AnnotatedMutexLayerIsClean) {
  const std::string src = R"cc(
    struct Worker {
      mutable Mutex mu_{LockRank::kScheduler, "worker.mu"};
      int x_ NIMBLE_GUARDED_BY(mu_) = 0;
      void Tick() { MutexLock lock(mu_); ++x_; }
    };
  )cc";
  EXPECT_EQ(CountUnsuppressed(Analyze("src/foo/worker.h", src)), 0);
}

TEST(LintNL001, MutexHeaderItselfIsExempt) {
  const std::string src = R"cc(
    class Mutex { std::mutex raw_; };
  )cc";
  EXPECT_EQ(CountRule(Analyze("src/common/mutex.h", src), "NL001"), 0);
}

// ---------------------------------------------------------------------------
// NL002 mutex-rank
// ---------------------------------------------------------------------------

TEST(LintNL002, UnregisteredRankFires) {
  const std::string src = R"cc(
    struct S {
      Mutex mu_{LockRank::kMadeUpRank, "s.mu"};
    };
  )cc";
  std::vector<Finding> findings = Analyze("src/foo/s.h", src);
  ASSERT_EQ(CountRule(findings, "NL002"), 1);
  EXPECT_NE(findings[0].message.find("kMadeUpRank"), std::string::npos);
}

TEST(LintNL002, AdHocStaticCastRankFires) {
  const std::string src = R"cc(
    Mutex mu_{static_cast<LockRank>(123), "adhoc"};
  )cc";
  EXPECT_EQ(CountRule(Analyze("src/foo/s.h", src), "NL002"), 1);
}

TEST(LintNL002, MissingRankFires) {
  const std::string src = R"cc(
    struct S { Mutex mu_; };
  )cc";
  EXPECT_EQ(CountRule(Analyze("src/foo/s.h", src), "NL002"), 1);
}

TEST(LintNL002, RegisteredRankIsClean) {
  const std::string src = R"cc(
    struct S {
      mutable SharedMutex mu_{LockRank::kPlanCache, "s.mu"};
    };
  )cc";
  EXPECT_EQ(CountUnsuppressed(Analyze("src/foo/s.h", src)), 0);
}

TEST(LintNL002, CtorInitListResolvesAcrossFiles) {
  // Declaration without an initializer in the header, rank supplied by the
  // constructor's init-list in the matching .cc — no finding.
  LintOptions options = DefaultOptions();
  Linter linter(std::move(options));
  linter.AddFile("src/foo/s.h", R"cc(
    struct S { S(); Mutex mu_; };
  )cc");
  linter.AddFile("src/foo/s.cc", R"cc(
    S::S() : mu_(LockRank::kScheduler, "s.mu") {}
  )cc");
  linter.Finish();
  EXPECT_EQ(CountUnsuppressed(linter.findings()), 0);
}

TEST(LintNL002, DocSyncFiresForUndocumentedRank) {
  LintOptions options = DefaultOptions();
  options.documented_ranks = {"kScheduler", "kThreadPool"};  // kPlanCache missing
  std::vector<Finding> findings = Analyze("src/foo/empty.cc", "int x;", options);
  ASSERT_EQ(CountRule(findings, "NL002"), 1);
  EXPECT_NE(findings[0].message.find("kPlanCache"), std::string::npos);
  EXPECT_EQ(findings[0].file, "src/common/lock_rank.h");
}

TEST(LintNL002, ParseLockRankRegistry) {
  const std::string header = R"cc(
    enum class LockRank : int {
      kLoadBalancer = 100,
      kThreadPool = 1200,
    };
  )cc";
  std::set<std::string> ranks = ParseLockRankRegistry(header);
  EXPECT_EQ(ranks.size(), 2u);
  EXPECT_TRUE(ranks.count("kLoadBalancer"));
  EXPECT_TRUE(ranks.count("kThreadPool"));
}

TEST(LintNL002, ParseDocumentedRanksOnlyCountsTableRows) {
  const std::string design =
      "Prose mentioning `kThreadPool` does not count.\n"
      "| 100 | `kLoadBalancer` | dispatch |\n";
  std::set<std::string> ranks = ParseDocumentedRanks(design);
  EXPECT_EQ(ranks.size(), 1u);
  EXPECT_TRUE(ranks.count("kLoadBalancer"));
}

// ---------------------------------------------------------------------------
// NL003 blocking-under-lock
// ---------------------------------------------------------------------------

TEST(LintNL003, BlockingCallUnderGuardFires) {
  const std::string src = R"cc(
    void F(Mutex& mu, Engine* engine) {
      MutexLock lock(mu);
      engine->ExecuteText("query");
    }
  )cc";
  std::vector<Finding> findings = Analyze("src/foo/f.cc", src);
  ASSERT_EQ(CountRule(findings, "NL003"), 1);
  EXPECT_EQ(findings[0].rule_name, "blocking-under-lock");
}

TEST(LintNL003, SleepAndPoolSubmitUnderGuardFire) {
  const std::string src = R"cc(
    void F(Mutex& mu, ThreadPool* pool) {
      MutexLock lock(mu);
      std::this_thread::sleep_for(std::chrono::seconds(1));
      pool->Submit([] {});
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze("src/foo/f.cc", src), "NL003"), 2);
}

TEST(LintNL003, BlockingAfterScopeExitIsClean) {
  const std::string src = R"cc(
    void F(Mutex& mu, Engine* engine) {
      { MutexLock lock(mu); }
      engine->ExecuteText("query");
    }
  )cc";
  EXPECT_EQ(CountUnsuppressed(Analyze("src/foo/f.cc", src)), 0);
}

TEST(LintNL003, CondVarWaitOnOwnGuardMutexIsExempt) {
  const std::string src = R"cc(
    void F(Mutex& mu, CondVar& cv) {
      MutexLock lock(mu);
      cv.Wait(mu);
    }
  )cc";
  EXPECT_EQ(CountUnsuppressed(Analyze("src/foo/f.cc", src)), 0);
}

TEST(LintNL003, CondVarWaitWithSecondLockHeldFires) {
  const std::string src = R"cc(
    void F(Mutex& a, Mutex& b, CondVar& cv) {
      MutexLock outer(a);
      MutexLock inner(b);
      cv.Wait(b);
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze("src/foo/f.cc", src), "NL003"), 1);
}

TEST(LintNL003, RequiresAnnotationCountsAsHeld) {
  const std::string src = R"cc(
    void F(Engine* engine) NIMBLE_REQUIRES(mu_) {
      engine->ExecuteText("query");
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze("src/foo/f.cc", src), "NL003"), 1);
}

// ---------------------------------------------------------------------------
// NL004 guarded-member
// ---------------------------------------------------------------------------

TEST(LintNL004, UnguardedMutableMemberFires) {
  const std::string src = R"cc(
    class Cache {
     public:
      void Tick();
     private:
      mutable Mutex mu_{LockRank::kPlanCache, "cache.mu"};
      int hits_ = 0;
    };
  )cc";
  std::vector<Finding> findings = Analyze("src/foo/cache.h", src);
  ASSERT_EQ(CountRule(findings, "NL004"), 1);
  EXPECT_EQ(findings[0].rule_name, "guarded-member");
  EXPECT_NE(findings[0].message.find("hits_"), std::string::npos);
}

TEST(LintNL004, GuardedAtomicAndConstMembersAreClean) {
  const std::string src = R"cc(
    class Cache {
      mutable Mutex mu_{LockRank::kPlanCache, "cache.mu"};
      int hits_ NIMBLE_GUARDED_BY(mu_) = 0;
      std::atomic<int> lookups_{0};
      const size_t max_entries_;
      Clock* const clock_;
      Engine& engine_;
      CondVar cv_;
    };
  )cc";
  EXPECT_EQ(CountUnsuppressed(Analyze("src/foo/cache.h", src)), 0);
}

TEST(LintNL004, ClassWithoutOwnMutexIsOutOfScope) {
  const std::string src = R"cc(
    class Plain {
      int hits_ = 0;
      Mutex* someone_elses_;
    };
  )cc";
  EXPECT_EQ(CountUnsuppressed(Analyze("src/foo/plain.h", src)), 0);
}

// ---------------------------------------------------------------------------
// NL005 frozen-mutation
// ---------------------------------------------------------------------------

TEST(LintNL005, MutatingFrozenSnapshotFires) {
  const std::string src = R"cc(
    void F(NodePtr doc) {
      ConstNodePtr snap = doc->Freeze();
      auto alias = std::const_pointer_cast<Node>(snap);
      alias->AddChild(Node::Element("x"));
    }
  )cc";
  std::vector<Finding> findings = Analyze("src/foo/f.cc", src);
  // The const_pointer_cast itself + the mutation through the tainted alias.
  EXPECT_EQ(CountRule(findings, "NL005"), 2);
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].rule_name, "frozen-mutation");
}

TEST(LintNL005, CloneBeforeMutationIsClean) {
  const std::string src = R"cc(
    void F(NodePtr doc) {
      ConstNodePtr snap = doc->Freeze();
      NodePtr copy = snap->Clone();
      copy->AddChild(Node::Element("x"));
    }
  )cc";
  EXPECT_EQ(CountUnsuppressed(Analyze("src/foo/f.cc", src)), 0);
}

TEST(LintNL005, TaintDoesNotEscapeItsScope) {
  const std::string src = R"cc(
    void F(NodePtr doc, NodePtr other) {
      { ConstNodePtr snap = doc->Freeze(); }
      NodePtr snap = other;
      snap->AddChild(Node::Element("x"));
    }
  )cc";
  EXPECT_EQ(CountUnsuppressed(Analyze("src/foo/f.cc", src)), 0);
}

// ---------------------------------------------------------------------------
// Suppression mechanisms
// ---------------------------------------------------------------------------

TEST(LintSuppression, InlineSameLineAndLineAbove) {
  const std::string src = R"cc(
    std::mutex a_;  // nimble-lint: raw-sync(measurement helper)
    // nimble-lint: raw-sync(measurement helper)
    std::mutex b_;
    std::mutex c_;
  )cc";
  std::vector<Finding> findings = Analyze("src/foo/s.h", src);
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_TRUE(findings[0].suppressed);
  EXPECT_NE(findings[0].suppress_reason.find("measurement helper"),
            std::string::npos);
  EXPECT_TRUE(findings[1].suppressed);
  EXPECT_FALSE(findings[2].suppressed);  // no directive reaches c_
}

TEST(LintSuppression, InlineAliasOnlySuppressesItsRule) {
  // An unguarded() directive must not silence an NL001 finding — and since
  // it then suppresses nothing at all, NL009 flags it as stale.
  const std::string src = R"cc(
    std::mutex a_;  // nimble-lint: unguarded(wrong alias)
  )cc";
  std::vector<Finding> findings = Analyze("src/foo/s.h", src);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(CountRule(findings, "NL001"), 1);
  EXPECT_FALSE(findings[0].suppressed);
  EXPECT_EQ(CountRule(findings, "NL009"), 1);
}

TEST(LintSuppression, FileLevelDirective) {
  const std::string src = R"cc(
    // nimble-lint: file raw-sync(whole file exercises raw primitives)
    std::mutex a_;
    std::mutex b_;
  )cc";
  std::vector<Finding> findings = Analyze("src/foo/s.h", src);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_TRUE(findings[0].suppressed);
  EXPECT_TRUE(findings[1].suppressed);
}

TEST(LintSuppression, CheckedInListRoundTrip) {
  const std::string list =
      "# comment\n"
      "\n"
      "NL001 tests/helper *\n"
      "raw-sync tests/other lock_guard\n";
  std::vector<SuppressionEntry> entries = ParseSuppressionList(list);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].rule, "NL001");
  EXPECT_EQ(entries[0].path_substr, "tests/helper");
  EXPECT_EQ(entries[0].line_substr, "*");

  LintOptions options = DefaultOptions();
  options.suppressions = entries;
  std::vector<Finding> findings =
      Analyze("tests/helper_util.h", "std::mutex mu_;\n", options);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].suppressed);

  // Same content in a path the list does not cover stays fatal.
  findings = Analyze("src/foo/s.h", "std::mutex mu_;\n", DefaultOptions());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_FALSE(findings[0].suppressed);
}

TEST(LintSuppression, UnsuppressedCountDrivesTheGate) {
  LintOptions options = DefaultOptions();
  Linter linter(std::move(options));
  linter.AddFile("src/foo/s.h",
                 "std::mutex a_;  // nimble-lint: raw-sync(ok)\n"
                 "std::mutex b_;\n");
  linter.Finish();
  EXPECT_EQ(linter.unsuppressed_count(), 1);
  EXPECT_EQ(linter.findings().size(), 2u);
}

TEST(LintSuppression, AuditModeIgnoresEveryMechanism) {
  // honor_suppressions=false (the driver's --no-suppressions): inline,
  // file-level and list suppressions are all ignored.
  LintOptions options = DefaultOptions();
  options.honor_suppressions = false;
  options.suppressions = {{"NL001", "src/foo", "*"}};
  const std::string src = R"cc(
    // nimble-lint: file raw-sync(whole file)
    std::mutex a_;  // nimble-lint: raw-sync(inline)
  )cc";
  std::vector<Finding> findings = Analyze("src/foo/s.h", src, options);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_FALSE(findings[0].suppressed);
}

// ---------------------------------------------------------------------------
// Rule selection / resolution
// ---------------------------------------------------------------------------

TEST(LintRules, ResolveRuleAcceptsIdsNamesAndAliases) {
  EXPECT_EQ(ResolveRule("NL001"), "NL001");
  EXPECT_EQ(ResolveRule("raw-sync"), "NL001");
  EXPECT_EQ(ResolveRule("mutex-rank"), "NL002");
  EXPECT_EQ(ResolveRule("blocking"), "NL003");
  EXPECT_EQ(ResolveRule("unguarded"), "NL004");
  EXPECT_EQ(ResolveRule("frozen"), "NL005");
  EXPECT_EQ(ResolveRule("cancellation-responsiveness"), "NL006");
  EXPECT_EQ(ResolveRule("responsive"), "NL006");
  EXPECT_EQ(ResolveRule("status-path"), "NL007");
  EXPECT_EQ(ResolveRule("status"), "NL007");
  EXPECT_EQ(ResolveRule("use-after-move"), "NL008");
  EXPECT_EQ(ResolveRule("moved"), "NL008");
  EXPECT_EQ(ResolveRule("stale-suppression"), "NL009");
  EXPECT_EQ(ResolveRule("stale"), "NL009");
  EXPECT_EQ(ResolveRule("no-such-rule"), "");
}

// ---------------------------------------------------------------------------
// CFG builder (the substrate for NL006–NL008)
// ---------------------------------------------------------------------------

TEST(LintCfg, IfElseDiamond) {
  const std::string cfg = DescribeCfgForTest(
      "void F(bool c) { int x = 0; if (c) { A(); } else { B(); } C(); }", "F");
  EXPECT_EQ(cfg,
            "0 entry line=0 -> 2\n"
            "1 exit line=0 ->\n"
            "2 stmt line=1 -> 3\n"
            "3 cond line=1 -> 4,5\n"
            "4 stmt line=1 -> 6\n"
            "5 stmt line=1 -> 6\n"
            "6 stmt line=1 -> 1\n");
}

TEST(LintCfg, LoopBackEdgeAndConstantTrueFlag) {
  const std::string cfg =
      DescribeCfgForTest("void G() { while (true) { A(); } }", "G");
  EXPECT_EQ(cfg,
            "0 entry line=0 -> 2\n"
            "1 exit line=0 ->\n"
            "2 cond line=1 -> 3\n"
            "3 stmt line=1 -> 2\n"
            "loop head=2 back=3 true=1 range_for=0\n");
}

TEST(LintCfg, EarlyReturnGoesStraightToExit) {
  const std::string cfg =
      DescribeCfgForTest("int H(bool c) { if (c) return 1; return 2; }", "H");
  EXPECT_EQ(cfg,
            "0 entry line=0 -> 2\n"
            "1 exit line=0 ->\n"
            "2 cond line=1 -> 3,4\n"
            "3 stmt line=1 -> 1\n"
            "4 stmt line=1 -> 1\n");
}

TEST(LintCfg, RangeForIsABoundedLoop) {
  const std::string cfg = DescribeCfgForTest(
      "void R(std::vector<int> v) { for (int x : v) { A(x); } }", "R");
  EXPECT_NE(cfg.find("loop head=2 back=3 true=0 range_for=1"),
            std::string::npos);
}

TEST(LintCfg, UnknownFunctionYieldsEmpty) {
  EXPECT_EQ(DescribeCfgForTest("void F() {}", "NoSuchFn"), "");
}

// ---------------------------------------------------------------------------
// NL006 cancellation-responsiveness
// ---------------------------------------------------------------------------

TEST(LintNL006, UnboundedProducerLoopWithoutPollFires) {
  const std::string src = R"cc(
    Status DoNextBatch() {
      while (true) {
        auto b = child_->NextBatch();
        if (!b) break;
        Emit(b);
      }
      return Status::OK();
    }
  )cc";
  std::vector<Finding> findings = Analyze("src/foo/op.cc", src);
  EXPECT_EQ(CountRule(findings, "NL006"), 1);
}

TEST(LintNL006, PollAtLoopTopIsClean) {
  const std::string src = R"cc(
    Status DoNextBatch() {
      while (true) {
        NIMBLE_RETURN_IF_ERROR(PollCancel());
        auto b = child_->NextBatch();
        if (!b) break;
        Emit(b);
      }
      return Status::OK();
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze("src/foo/op.cc", src), "NL006"), 0);
}

TEST(LintNL006, PollOnOnlyOneBranchStillFires) {
  // Path-sensitive: a structural "does the loop body mention PollCancel"
  // scan would pass this, but the else-path never polls.
  const std::string src = R"cc(
    Status DoNextBatch() {
      while (true) {
        if (ready_) {
          NIMBLE_RETURN_IF_ERROR(PollCancel());
        } else {
          Shuffle();
        }
        auto b = child_->NextBatch();
        if (!b) break;
      }
      return Status::OK();
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze("src/foo/op.cc", src), "NL006"), 1);
}

TEST(LintNL006, PollOnBothBranchesIsClean) {
  const std::string src = R"cc(
    Status DoNextBatch() {
      while (true) {
        if (ready_) {
          NIMBLE_RETURN_IF_ERROR(PollCancel());
        } else {
          NIMBLE_RETURN_IF_ERROR(ctx_->Check());
        }
        auto b = child_->NextBatch();
        if (!b) break;
      }
      return Status::OK();
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze("src/foo/op.cc", src), "NL006"), 0);
}

TEST(LintNL006, PollingHelperSummarySatisfiesTheLoop) {
  // One-level callee summary: CheckSlice has no poll name, but its body
  // polls, and the summary carries that fact into the loop — even when the
  // helper lives in another translation unit.
  const std::string helper = R"cc(
    Status CheckSlice() { return PollCancel(); }
  )cc";
  const std::string op = R"cc(
    Status DoNextBatch() {
      while (true) {
        NIMBLE_RETURN_IF_ERROR(CheckSlice());
        auto b = child_->NextBatch();
        if (!b) break;
      }
      return Status::OK();
    }
  )cc";
  Linter linter(DefaultOptions());
  linter.AddFile("src/foo/helper.cc", helper);
  linter.AddFile("src/foo/op.cc", op);
  linter.Finish();
  EXPECT_EQ(CountRule(linter.findings(), "NL006"), 0);

  // Without the helper's definition the summary says nothing, so the
  // unknown call must not count as a poll.
  EXPECT_EQ(CountRule(Analyze("src/foo/op.cc", op), "NL006"), 1);
}

TEST(LintNL006, BoundedLoopAndNonEntryPointAreExempt) {
  // A plain counted loop is not flagged, and functions outside the
  // operator entry-point set are not checked at all.
  const std::string src = R"cc(
    Status DoNextBatch() {
      for (size_t i = 0; i < n_; ++i) Emit(i);
      return Status::OK();
    }
    Status Helper() {
      while (true) {
        auto b = child_->NextBatch();
        if (!b) break;
      }
      return Status::OK();
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze("src/foo/op.cc", src), "NL006"), 0);
}

// ---------------------------------------------------------------------------
// NL007 status-path
// ---------------------------------------------------------------------------

TEST(LintNL007, DroppedStatusFires) {
  const std::string src = R"cc(
    Status F() {
      Status s = Fallible();
      return Status::OK();
    }
  )cc";
  std::vector<Finding> findings = Analyze("src/foo/a.cc", src);
  EXPECT_EQ(CountRule(findings, "NL007"), 1);
  ASSERT_FALSE(findings.empty());
  EXPECT_NE(findings[0].message.find("never consulted"), std::string::npos);
}

TEST(LintNL007, ConsultedOnOnePathIsClean) {
  // Path-sensitive: the value is only read on the c==true path, but one
  // observing path is enough — it is not dropped.
  const std::string src = R"cc(
    Status F(bool c) {
      Status s = Fallible();
      if (c) return s;
      return Status::OK();
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze("src/foo/a.cc", src), "NL007"), 0);
}

TEST(LintNL007, OverwrittenBeforeReadFires) {
  const std::string src = R"cc(
    Status F() {
      Status s;
      s = First();
      s = Second();
      return s;
    }
  )cc";
  std::vector<Finding> findings = Analyze("src/foo/a.cc", src);
  EXPECT_EQ(CountRule(findings, "NL007"), 1);
  ASSERT_FALSE(findings.empty());
  EXPECT_NE(findings[0].message.find("overwritten"), std::string::npos);
}

TEST(LintNL007, LambdaAssignmentIsAWeakUpdate) {
  // The callback may run zero times, so the assignment inside it must not
  // kill the OK() definition — and the return consults both.
  const std::string src = R"cc(
    Status F() {
      Status err = Status::OK();
      items_.ForEach([&](int v) {
        if (v < 0) err = Reject(v);
      });
      return err;
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze("src/foo/a.cc", src), "NL007"), 0);
}

TEST(LintNL007, StatusFunctionFallingOffTheEndFires) {
  const std::string src = R"cc(
    Status F(bool c) {
      if (c) return Status::OK();
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze("src/foo/a.cc", src), "NL007"), 1);
}

TEST(LintNL007, AllPathsReturningIsClean) {
  const std::string src = R"cc(
    Status F(bool c) {
      if (c) return Status::OK();
      return Fallible();
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze("src/foo/a.cc", src), "NL007"), 0);
}

// ---------------------------------------------------------------------------
// NL008 use-after-move
// ---------------------------------------------------------------------------

TEST(LintNL008, UseAfterMoveFires) {
  const std::string src = R"cc(
    void F() {
      std::string v = Name();
      Consume(std::move(v));
      Log(v);
    }
  )cc";
  std::vector<Finding> findings = Analyze("src/foo/a.cc", src);
  EXPECT_EQ(CountRule(findings, "NL008"), 1);
}

TEST(LintNL008, ReassignmentClearsTheTaint) {
  const std::string src = R"cc(
    void F() {
      std::string v = Name();
      Consume(std::move(v));
      v = Fresh();
      Log(v);
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze("src/foo/a.cc", src), "NL008"), 0);
}

TEST(LintNL008, LoopCarriedMoveFires) {
  // The move taints `item` across the back edge: iteration 2's Prepare()
  // reads a moved-from value, and its Consume() moves one. Only the
  // fixpoint sees either.
  const std::string src = R"cc(
    void F() {
      Item item = Make();
      while (More()) {
        Prepare(item);
        Consume(std::move(item));
      }
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze("src/foo/a.cc", src), "NL008"), 2);
}

TEST(LintNL008, MoveOnOneBranchTaintsTheJoin) {
  const std::string src = R"cc(
    void F(bool c) {
      Buf b = Make();
      if (c) {
        Sink(std::move(b));
      }
      Use(b);
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze("src/foo/a.cc", src), "NL008"), 1);
}

TEST(LintNL008, ReassignedOnTheMovingBranchIsClean) {
  // Path-sensitive negative of the join test: the only branch that moves
  // also re-establishes a value before the join.
  const std::string src = R"cc(
    void F(bool c) {
      Buf b = Make();
      if (c) {
        Sink(std::move(b));
        b = Make();
      }
      Use(b);
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze("src/foo/a.cc", src), "NL008"), 0);
}

TEST(LintNL008, SelfReassignmentFoldIsClean) {
  // The idiomatic fold: the assignment lands after the RHS consumes the
  // old value, so the statement's net effect is a fresh value.
  const std::string src = R"cc(
    void F() {
      Expr lhs = First();
      while (More()) {
        lhs = Combine(std::move(lhs), Next());
      }
      Use(lhs);
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze("src/foo/a.cc", src), "NL008"), 0);
}

TEST(LintNL008, TernaryArmsAreExclusive) {
  const std::string src = R"cc(
    void F(bool c) {
      Buf v = Make();
      Out r = c ? First(std::move(v)) : Second(std::move(v));
      Use(r);
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze("src/foo/a.cc", src), "NL008"), 0);
}

TEST(LintNL008, StructuredBindingIsAFreshObject) {
  const std::string src = R"cc(
    void F(std::map<std::string, Buf>& m) {
      for (auto& [k, b] : m) {
        Sink(std::move(b));
      }
    }
  )cc";
  EXPECT_EQ(CountRule(Analyze("src/foo/a.cc", src), "NL008"), 0);
}

// ---------------------------------------------------------------------------
// NL009 stale-suppression
// ---------------------------------------------------------------------------

TEST(LintNL009, StaleListEntryFlaggedAtItsOwnLine) {
  LintOptions options = DefaultOptions();
  options.suppressions =
      ParseSuppressionList("# header\nNL001 src/foo no-such-line\n");
  std::vector<Finding> findings = Analyze("src/foo/s.h", "int x = 0;\n", options);
  ASSERT_EQ(CountRule(findings, "NL009"), 1);
  const Finding& f = findings.front();
  EXPECT_EQ(f.rule, "NL009");
  EXPECT_EQ(f.file, options.suppressions_path);
  EXPECT_EQ(f.line, 2);  // the entry's own line in the list
}

TEST(LintNL009, UsedListEntryIsNotStale) {
  LintOptions options = DefaultOptions();
  options.suppressions = ParseSuppressionList("NL001 src/foo *\n");
  std::vector<Finding> findings =
      Analyze("src/foo/s.h", "std::mutex mu_;\n", options);
  EXPECT_EQ(CountRule(findings, "NL009"), 0);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].suppressed);
}

TEST(LintNL009, EntryForUnscannedPathIsLeftAlone) {
  // Partial scans must not declare entries for other directories stale.
  LintOptions options = DefaultOptions();
  options.suppressions = ParseSuppressionList("NL001 tests/other *\n");
  std::vector<Finding> findings =
      Analyze("src/foo/s.h", "std::mutex mu_;\n", options);
  EXPECT_EQ(CountRule(findings, "NL009"), 0);
}

// ---------------------------------------------------------------------------
// Parallel analysis: Analyze/Merge equals sequential AddFile
// ---------------------------------------------------------------------------

TEST(LintParallel, MergeInSortedOrderMatchesSequential) {
  const std::string f1 = "std::mutex a_;\n";
  const std::string f2 = "std::shared_mutex b_;\nvoid G() { sleep(1); }\n";

  Linter seq(DefaultOptions());
  seq.AddFile("src/a.cc", f1);
  seq.AddFile("src/b.cc", f2);
  seq.Finish();

  // Analyze out of order (as a thread pool would), merge in sorted order.
  Linter par(DefaultOptions());
  auto rb = par.Analyze("src/b.cc", f2);
  auto ra = par.Analyze("src/a.cc", f1);
  par.Merge(std::move(ra));
  par.Merge(std::move(rb));
  par.Finish();

  ASSERT_EQ(seq.findings().size(), par.findings().size());
  for (size_t i = 0; i < seq.findings().size(); ++i) {
    EXPECT_EQ(seq.findings()[i].file, par.findings()[i].file);
    EXPECT_EQ(seq.findings()[i].line, par.findings()[i].line);
    EXPECT_EQ(seq.findings()[i].rule, par.findings()[i].rule);
    EXPECT_EQ(seq.findings()[i].message, par.findings()[i].message);
  }
}

TEST(LintRules, EnabledRulesFilter) {
  LintOptions options = DefaultOptions();
  options.enabled_rules = {"NL001"};
  // Raw mutex (NL001) + unregistered rank (NL002): only NL001 reports.
  const std::string src = R"cc(
    std::mutex raw_;
    Mutex mu_{LockRank::kMadeUpRank, "s.mu"};
  )cc";
  std::vector<Finding> findings = Analyze("src/foo/s.h", src, options);
  EXPECT_GE(CountRule(findings, "NL001"), 1);
  EXPECT_EQ(CountRule(findings, "NL002"), 0);
}

}  // namespace
}  // namespace nimble_lint
