// Tests for the debug-build lock-rank deadlock detector
// (src/common/lock_rank.h). The checks are compiled in only when
// NIMBLE_LOCK_RANK_CHECKS is defined (CMAKE_BUILD_TYPE=Debug); in other
// configurations the death tests are skipped and only the no-op contract
// is exercised.

#include "common/lock_rank.h"

#include <gtest/gtest.h>

#include "common/mutex.h"

namespace nimble {
namespace {

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define NIMBLE_TSAN_BUILD 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define NIMBLE_TSAN_BUILD 1
#endif

#if defined(NIMBLE_LOCK_RANK_CHECKS)

class LockRankDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
#if defined(NIMBLE_TSAN_BUILD)
    // Forking death tests interact badly with TSan's runtime; the ASan
    // Debug job provides the death-test coverage.
    GTEST_SKIP() << "death tests skipped under ThreadSanitizer";
#endif
    // Death tests fork; "threadsafe" re-executes the binary so the child
    // does not inherit this process's (possibly multi-threaded) state.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST(LockRankTest, InOrderAcquisitionSucceeds) {
  Mutex outer(LockRank::kScheduler, "test.outer");
  Mutex inner(LockRank::kPlanCache, "test.inner");
  EXPECT_EQ(lock_rank::HeldDepth(), 0u);
  {
    MutexLock a(outer);
    EXPECT_EQ(lock_rank::HeldDepth(), 1u);
    {
      MutexLock b(inner);
      EXPECT_EQ(lock_rank::HeldDepth(), 2u);
    }
    EXPECT_EQ(lock_rank::HeldDepth(), 1u);
  }
  EXPECT_EQ(lock_rank::HeldDepth(), 0u);
}

TEST(LockRankTest, HandOverHandReleaseIsLegal) {
  // Acquire A then B, release A first (non-LIFO) — allowed.
  Mutex a(LockRank::kLoadBalancer, "test.a");
  Mutex b(LockRank::kThreadPool, "test.b");
  a.Lock();
  b.Lock();
  a.Unlock();
  EXPECT_EQ(lock_rank::HeldDepth(), 1u);
  b.Unlock();
  EXPECT_EQ(lock_rank::HeldDepth(), 0u);
}

TEST(LockRankTest, SharedAcquisitionsAreTracked) {
  SharedMutex mu(LockRank::kConnectorData, "test.shared");
  {
    ReaderMutexLock lock(mu);
    EXPECT_EQ(lock_rank::HeldDepth(), 1u);
  }
  EXPECT_EQ(lock_rank::HeldDepth(), 0u);
}

TEST(LockRankTest, CondVarWaitRestoresBookkeeping) {
  // A Wait releases and reacquires in the registry; after a (trivially
  // satisfied) wakeup the lock must still be recorded as held.
  Mutex mu(LockRank::kQueryHandle, "test.cv");
  CondVar cv;
  cv.NotifyAll();  // no waiter yet — just proves Notify is lock-free
  MutexLock lock(mu);
  EXPECT_EQ(lock_rank::HeldDepth(), 1u);
}

TEST_F(LockRankDeathTest, OutOfRankOrderAborts) {
  EXPECT_DEATH(
      {
        Mutex inner(LockRank::kPlanCache, "test.inner");
        Mutex outer(LockRank::kScheduler, "test.outer");
        MutexLock a(inner);   // rank 500 first…
        MutexLock b(outer);   // …then rank 300: out of order.
      },
      "out-of-rank-order");
}

TEST_F(LockRankDeathTest, SameRankNestingAborts) {
  // Two kConnectorData locks on one thread: ranks must strictly increase,
  // so same-rank nesting (a cross-connector call chain) is rejected.
  EXPECT_DEATH(
      {
        Mutex a(LockRank::kConnectorData, "test.conn_a");
        Mutex b(LockRank::kConnectorData, "test.conn_b");
        MutexLock la(a);
        MutexLock lb(b);
      },
      "out-of-rank-order");
}

TEST_F(LockRankDeathTest, ReentrantAcquisitionAborts) {
  EXPECT_DEATH(
      {
        Mutex mu(LockRank::kResultCacheShard, "test.reentry");
        mu.Lock();
        mu.Lock();  // same mutex, same thread: the singleflight re-entry bug
      },
      "re-entrant");
}

TEST_F(LockRankDeathTest, ReleasingUnheldLockAborts) {
  EXPECT_DEATH(
      {
        Mutex mu(LockRank::kPlanCache, "test.unheld");
        mu.Unlock();
      },
      "does not");
}

#else  // !NIMBLE_LOCK_RANK_CHECKS

TEST(LockRankTest, NoOpInReleaseBuilds) {
  // The registry compiles to nothing: depth stays 0 even under a lock.
  Mutex mu(LockRank::kPlanCache, "test.noop");
  MutexLock lock(mu);
  EXPECT_EQ(lock_rank::HeldDepth(), 0u);
}

#endif  // NIMBLE_LOCK_RANK_CHECKS

}  // namespace
}  // namespace nimble
