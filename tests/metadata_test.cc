#include <gtest/gtest.h>

#include "connector/xml_connector.h"
#include "core/engine.h"
#include "core/partial_results.h"
#include "metadata/catalog.h"

namespace nimble {
namespace metadata {
namespace {

std::unique_ptr<connector::XmlConnector> MakeSource(const std::string& name) {
  auto source = std::make_unique<connector::XmlConnector>(name);
  EXPECT_TRUE(source->PutDocumentText("d", "<d><r><v>1</v></r></d>").ok());
  return source;
}

constexpr char kViewOverA[] =
    "WHERE <d><r><v>$v</v></r></d> IN \"a:d\" CONSTRUCT <o>$v</o>";

TEST(CatalogTest, RegisterAndLookupSources) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterSource(MakeSource("a")).ok());
  ASSERT_TRUE(catalog.RegisterSource(MakeSource("b")).ok());
  EXPECT_NE(catalog.source("a"), nullptr);
  EXPECT_EQ(catalog.source("zzz"), nullptr);
  EXPECT_EQ(catalog.SourceNames(), (std::vector<std::string>{"a", "b"}));
}

TEST(CatalogTest, DuplicateSourceRejected) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterSource(MakeSource("a")).ok());
  EXPECT_EQ(catalog.RegisterSource(MakeSource("a")).code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, ViewValidation) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterSource(MakeSource("a")).ok());
  // Valid view.
  ASSERT_TRUE(catalog.DefineView("v1", kViewOverA, "first view").ok());
  const MediatedView* view = catalog.view("v1");
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->description, "first view");
  EXPECT_EQ(view->source_dependencies, (std::vector<std::string>{"a"}));
  // Duplicate name.
  EXPECT_EQ(catalog.DefineView("v1", kViewOverA).code(),
            StatusCode::kAlreadyExists);
  // View name colliding with a source name.
  EXPECT_EQ(catalog.DefineView("a", kViewOverA).code(),
            StatusCode::kAlreadyExists);
  // Source name colliding with a view name.
  EXPECT_EQ(catalog.RegisterSource(MakeSource("v1")).code(),
            StatusCode::kAlreadyExists);
  // Syntactically broken definition.
  EXPECT_EQ(catalog.DefineView("bad", "WHERE nope").code(),
            StatusCode::kParseError);
  // Unknown source.
  EXPECT_EQ(catalog
                .DefineView("v2",
                            "WHERE <d><r><v>$v</v></r></d> IN \"nope:d\" "
                            "CONSTRUCT <o>$v</o>")
                .code(),
            StatusCode::kNotFound);
}

TEST(CatalogTest, BottomUpCompositionAndTransitiveSources) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterSource(MakeSource("a")).ok());
  ASSERT_TRUE(catalog.RegisterSource(MakeSource("b")).ok());
  ASSERT_TRUE(catalog.DefineView("base_a", kViewOverA).ok());
  ASSERT_TRUE(catalog
                  .DefineView("combined",
                              "WHERE <results><o>$v</o></results> IN base_a "
                              "CONSTRUCT <x>$v</x> "
                              "UNION "
                              "WHERE <d><r><v>$v</v></r></d> IN \"b:d\" "
                              "CONSTRUCT <x>$v</x>")
                  .ok());
  const MediatedView* combined = catalog.view("combined");
  ASSERT_NE(combined, nullptr);
  EXPECT_EQ(combined->view_dependencies,
            (std::vector<std::string>{"base_a"}));
  Result<std::vector<std::string>> sources =
      catalog.TransitiveSources("combined");
  ASSERT_TRUE(sources.ok());
  EXPECT_EQ(*sources, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(catalog.TransitiveSources("nope").status().code(),
            StatusCode::kNotFound);
}

TEST(CatalogTest, ForwardViewReferenceRejected) {
  // Referencing a not-yet-defined view fails — which also rules out
  // cycles (definitions are forced bottom-up).
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterSource(MakeSource("a")).ok());
  EXPECT_EQ(catalog
                .DefineView("early",
                            "WHERE <results><o>$v</o></results> IN later "
                            "CONSTRUCT <x>$v</x>")
                .code(),
            StatusCode::kNotFound);
}

TEST(CatalogTest, ViewDepthGuardStopsRunawayNesting) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterSource(MakeSource("a")).ok());
  ASSERT_TRUE(catalog.DefineView("v0", kViewOverA).ok());
  for (int i = 1; i <= 20; ++i) {
    std::string query = "WHERE <results><o>$v</o></results> IN v" +
                        std::to_string(i - 1) + " CONSTRUCT <o>$v</o>";
    ASSERT_TRUE(catalog.DefineView("v" + std::to_string(i), query).ok());
  }
  core::EngineOptions options;
  options.max_view_depth = 4;
  core::IntegrationEngine engine(&catalog, options);
  Result<core::QueryResult> result = engine.ExecuteText(
      "WHERE <results><o>$v</o></results> IN v20 CONSTRUCT <x>$v</x>");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  // A generous depth succeeds.
  options.max_view_depth = 64;
  core::IntegrationEngine deep_engine(&catalog, options);
  EXPECT_TRUE(deep_engine
                  .ExecuteText("WHERE <results><o>$v</o></results> IN v20 "
                               "CONSTRUCT <x>$v</x>")
                  .ok());
}

TEST(CatalogTest, UpdateListenersFireUntilRemoved) {
  Catalog catalog;
  std::vector<std::string> seen_a, seen_b;
  uint64_t token_a = catalog.AddUpdateListener(
      [&](const std::string& source) { seen_a.push_back(source); });
  uint64_t token_b = catalog.AddUpdateListener(
      [&](const std::string& source) { seen_b.push_back(source); });
  EXPECT_NE(token_a, token_b);
  catalog.NotifySourceUpdated("crm");
  EXPECT_EQ(seen_a, (std::vector<std::string>{"crm"}));
  EXPECT_EQ(seen_b, (std::vector<std::string>{"crm"}));
  catalog.RemoveUpdateListener(token_a);
  catalog.NotifySourceUpdated("hr");
  EXPECT_EQ(seen_a.size(), 1u);  // removed listener no longer fires
  EXPECT_EQ(seen_b, (std::vector<std::string>{"crm", "hr"}));
  catalog.RemoveUpdateListener(token_b);
  catalog.NotifySourceUpdated("billing");  // no listeners left: no-op
  EXPECT_EQ(seen_b.size(), 2u);
}

TEST(CatalogTest, SourceUpdateInvalidatesEngineResultCache) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterSource(MakeSource("a")).ok());
  core::EngineOptions options;
  options.result_cache_bytes = 1 << 20;
  core::IntegrationEngine engine(&catalog, options);
  const std::string query = kViewOverA;
  ASSERT_TRUE(engine.ExecuteText(query).ok());
  EXPECT_EQ(engine.result_cache()->size(), 1u);
  // An unrelated source leaves the entry; the contacted source drops it.
  catalog.NotifySourceUpdated("other");
  EXPECT_EQ(engine.result_cache()->size(), 1u);
  catalog.NotifySourceUpdated("a");
  EXPECT_EQ(engine.result_cache()->size(), 0u);
  EXPECT_EQ(engine.result_cache()->stats().invalidations, 1u);
}

TEST(CompletenessInfoTest, ToStringRendering) {
  core::CompletenessInfo info;
  EXPECT_EQ(info.ToString(), "complete");
  info.complete = false;
  info.unavailable_sources = {"a", "b"};
  info.skipped_branches = {1, 3};
  std::string text = info.ToString();
  EXPECT_NE(text.find("INCOMPLETE"), std::string::npos);
  EXPECT_NE(text.find("a, b"), std::string::npos);
  EXPECT_NE(text.find("1, 3"), std::string::npos);
}

}  // namespace
}  // namespace metadata
}  // namespace nimble
