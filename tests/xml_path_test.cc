#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xml/path.h"

namespace nimble {
namespace {

NodePtr Doc() {
  static const char* kXml =
      "<library>"
      "  <shelf id=\"s1\">"
      "    <book year=\"2000\"><title>A</title><author>X</author></book>"
      "    <book year=\"2001\"><title>B</title><author>Y</author></book>"
      "  </shelf>"
      "  <shelf id=\"s2\">"
      "    <book year=\"2002\"><title>C</title><author>X</author></book>"
      "  </shelf>"
      "</library>";
  Result<NodePtr> r = ParseXml(kXml);
  EXPECT_TRUE(r.ok());
  return *r;
}

Path MustPath(const std::string& text) {
  Result<Path> p = Path::Parse(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

TEST(PathTest, ChildStep) {
  NodePtr doc = Doc();
  EXPECT_EQ(MustPath("shelf").SelectNodes(doc).size(), 2u);
  EXPECT_EQ(MustPath("shelf/book").SelectNodes(doc).size(), 3u);
}

TEST(PathTest, WildcardStep) {
  NodePtr doc = Doc();
  EXPECT_EQ(MustPath("*").SelectNodes(doc).size(), 2u);
  EXPECT_EQ(MustPath("*/*").SelectNodes(doc).size(), 3u);
}

TEST(PathTest, DescendantStep) {
  NodePtr doc = Doc();
  EXPECT_EQ(MustPath("//book").SelectNodes(doc).size(), 3u);
  EXPECT_EQ(MustPath("//title").SelectNodes(doc).size(), 3u);
  EXPECT_EQ(MustPath("shelf//title").SelectNodes(doc).size(), 3u);
}

TEST(PathTest, DocumentOrderPreserved) {
  NodePtr doc = Doc();
  std::vector<Value> titles = MustPath("//book/title").SelectValues(doc);
  ASSERT_EQ(titles.size(), 3u);
  EXPECT_EQ(titles[0], Value::String("A"));
  EXPECT_EQ(titles[1], Value::String("B"));
  EXPECT_EQ(titles[2], Value::String("C"));
}

TEST(PathTest, AttributeTerminal) {
  NodePtr doc = Doc();
  std::vector<Value> years = MustPath("//book/@year").SelectValues(doc);
  ASSERT_EQ(years.size(), 3u);
  EXPECT_EQ(years[0], Value::Int(2000));
  // Missing attributes are skipped, not nulled.
  EXPECT_TRUE(MustPath("//title/@nope").SelectValues(doc).empty());
}

TEST(PathTest, TextTerminal) {
  NodePtr doc = Doc();
  std::vector<Value> v = MustPath("shelf/book/title/text()").SelectValues(doc);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], Value::String("A"));
}

TEST(PathTest, ParentStep) {
  NodePtr doc = Doc();
  // book/.. climbs back to shelves, deduplicated.
  std::vector<NodePtr> shelves = MustPath("shelf/book/..").SelectNodes(doc);
  EXPECT_EQ(shelves.size(), 2u);
  EXPECT_EQ(shelves[0]->name(), "shelf");
}

TEST(PathTest, SelectFirstValue) {
  NodePtr doc = Doc();
  EXPECT_EQ(MustPath("//title").SelectFirstValue(doc), Value::String("A"));
  EXPECT_TRUE(MustPath("//nothing").SelectFirstValue(doc).is_null());
}

TEST(PathTest, AttributeOnContext) {
  NodePtr doc = Doc();
  NodePtr shelf = doc->FindChild("shelf");
  EXPECT_EQ(MustPath("@id").SelectFirstValue(shelf), Value::String("s1"));
}

TEST(PathTest, NoDuplicatesFromDescendant) {
  NodePtr doc = Doc();
  std::vector<NodePtr> nodes = MustPath("//shelf//book").SelectNodes(doc);
  EXPECT_EQ(nodes.size(), 3u);
}

TEST(PathTest, ToStringRoundTrip) {
  for (const char* text :
       {"a/b/c", "//a", "a//b", "@id", "a/@id", "a/text()", "a/../b", "*"}) {
    Path p = MustPath(text);
    EXPECT_EQ(p.ToString(), text);
  }
}

TEST(PathTest, ParseErrors) {
  EXPECT_FALSE(Path::Parse("").ok());
  EXPECT_FALSE(Path::Parse("a/").ok());
  EXPECT_FALSE(Path::Parse("@").ok());
  EXPECT_FALSE(Path::Parse("@id/b").ok());       // attribute not terminal
  EXPECT_FALSE(Path::Parse("text()/b").ok());    // text() not terminal
}

TEST(PathTest, EmptyResultOnMissingPath) {
  NodePtr doc = Doc();
  EXPECT_TRUE(MustPath("nope/nothing").SelectNodes(doc).empty());
}

}  // namespace
}  // namespace nimble
