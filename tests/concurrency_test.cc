#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "algebra/operators.h"
#include "common/thread_pool.h"
#include "connector/relational_connector.h"
#include "connector/simulated_source.h"
#include "connector/xml_connector.h"
#include "core/engine.h"
#include "frontend/lens.h"
#include "frontend/load_balancer.h"
#include "materialize/result_cache.h"
#include "xml/serializer.h"

namespace nimble {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 1; i <= 100; ++i) {
    tasks.push_back([&sum, i] { sum.fetch_add(i); });
  }
  pool.RunParallel(std::move(tasks));
  EXPECT_EQ(sum.load(), 5050);
}

// Fork-join from inside a pool task must not deadlock even when the batch
// fan-out exceeds the worker count: the caller of RunParallel drains its own
// batch instead of blocking on a worker slot.
TEST(ThreadPoolTest, NestedRunParallelDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  std::vector<std::function<void()>> outer;
  for (int i = 0; i < 8; ++i) {
    outer.push_back([&pool, &leaves] {
      std::vector<std::function<void()>> inner;
      for (int j = 0; j < 8; ++j) {
        inner.push_back([&leaves] { leaves.fetch_add(1); });
      }
      pool.RunParallel(std::move(inner));
    });
  }
  pool.RunParallel(std::move(outer));
  EXPECT_EQ(leaves.load(), 64);
}

TEST(ThreadPoolTest, SubmitRunsDetachedTask) {
  ThreadPool pool(1);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran.store(true); });
  for (int i = 0; i < 1000 && !ran.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(ran.load());
}

// ---------------------------------------------------------------------------
// Engine fixture: a relational store plus two simulated flaky XML feeds.

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<relational::Database>("shop");
    Must(db_->Execute("CREATE TABLE products (sku TEXT PRIMARY KEY, "
                      "title TEXT, price DOUBLE)"));
    Must(db_->Execute("INSERT INTO products VALUES "
                      "('w-1', 'Widget', 25.0), ('g-1', 'Gizmo', 8.0), "
                      "('b-1', 'Bauble', 3.5), ('t-1', 'Trinket', 12.0)"));

    catalog_ = std::make_unique<metadata::Catalog>();
    Must(catalog_->RegisterSource(
        std::make_unique<connector::RelationalConnector>("shop", db_.get())));
    stock_ = AddXmlFeed(
        "wh",
        "<stock>"
        "<item sku=\"w-1\"><on_hand>14</on_hand></item>"
        "<item sku=\"g-1\"><on_hand>0</on_hand></item>"
        "<item sku=\"b-1\"><on_hand>250</on_hand></item>"
        "<item sku=\"t-1\"><on_hand>3</on_hand></item>"
        "</stock>",
        "stock");
    reviews_ = AddXmlFeed("rev",
                          "<reviews>"
                          "<review sku=\"w-1\"><stars>5</stars></review>"
                          "<review sku=\"b-1\"><stars>4</stars></review>"
                          "<review sku=\"t-1\"><stars>2</stars></review>"
                          "</reviews>",
                          "reviews");
  }

  /// Registers an XML connector wrapped in a SimulatedSource on clock_.
  connector::SimulatedSource* AddXmlFeed(const std::string& name,
                                         const std::string& xml,
                                         const std::string& collection) {
    auto inner = std::make_unique<connector::XmlConnector>(name);
    Must(inner->PutDocumentText(collection, xml));
    auto sim = std::make_unique<connector::SimulatedSource>(
        std::move(inner), connector::SimulationConfig{}, &clock_);
    connector::SimulatedSource* raw = sim.get();
    Must(catalog_->RegisterSource(std::move(sim)));
    return raw;
  }

  void Must(const Status& s) { ASSERT_TRUE(s.ok()) << s.ToString(); }
  template <typename T>
  void Must(const Result<T>& r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  core::EngineOptions BaseOptions() {
    core::EngineOptions opts;
    opts.clock = &clock_;
    return opts;
  }

  VirtualClock clock_;
  std::unique_ptr<relational::Database> db_;
  std::unique_ptr<metadata::Catalog> catalog_;
  connector::SimulatedSource* stock_ = nullptr;
  connector::SimulatedSource* reviews_ = nullptr;
};

/// Order-insensitive canonical rendering of a result document.
std::string Canonical(const Node& doc) {
  std::vector<std::string> parts;
  for (const NodePtr& child : doc.children()) parts.push_back(ToXml(*child));
  std::sort(parts.begin(), parts.end());
  std::string out;
  for (const std::string& part : parts) out += part + "\n";
  return out;
}

constexpr char kJoinQuery[] = R"(
  WHERE <products><row><sku>$s</sku><title>$t</title><price>$p</price>
        </row></products> IN "shop:products",
        <stock><item sku=$s><on_hand>$h</on_hand></item></stock>
          IN "wh:stock",
        $h > 0
  CONSTRUCT <avail><title>$t</title><on_hand>$h</on_hand></avail>
)";

constexpr char kUnionQuery[] = R"(
  WHERE <stock><item sku=$s><on_hand>$h</on_hand></item></stock>
          IN "wh:stock", $h > 10
  CONSTRUCT <hit><sku>$s</sku></hit>
  UNION
  WHERE <reviews><review sku=$s><stars>$r</stars></review></reviews>
          IN "rev:reviews", $r > 3
  CONSTRUCT <hit><sku>$s</sku></hit>
)";

// N client threads hammer one engine (parallel fragment fetches on the
// shared pool) and every answer must match the serial baseline.
TEST_F(ConcurrencyTest, StressManyClientsOneEngine) {
  core::EngineOptions serial = BaseOptions();
  serial.parallel_fetch = false;
  core::IntegrationEngine baseline(catalog_.get(), serial);
  Result<core::QueryResult> join_expected = baseline.ExecuteText(kJoinQuery);
  Result<core::QueryResult> union_expected = baseline.ExecuteText(kUnionQuery);
  Must(join_expected);
  Must(union_expected);
  const std::string join_canon = Canonical(*join_expected->document);
  const std::string union_canon = Canonical(*union_expected->document);

  core::IntegrationEngine engine(catalog_.get(), BaseOptions());
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 25;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int q = 0; q < kQueriesPerThread; ++q) {
        bool join = (t + q) % 2 == 0;
        Result<core::QueryResult> r =
            engine.ExecuteText(join ? kJoinQuery : kUnionQuery);
        if (!r.ok()) {
          failures.fetch_add(1);
          continue;
        }
        const std::string& want = join ? join_canon : union_canon;
        if (Canonical(*r->document) != want) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(engine.queries_served(),
            static_cast<uint64_t>(kThreads * kQueriesPerThread));
}

// The load balancer serves a batch concurrently from the worker pool and
// spreads it across instances.
TEST_F(ConcurrencyTest, LoadBalancerServesBatchFromPool) {
  frontend::LoadBalancer balancer(frontend::BalancePolicy::kRoundRobin);
  for (int i = 0; i < 3; ++i) {
    balancer.AddEngine(std::make_unique<core::IntegrationEngine>(
        catalog_.get(), BaseOptions()));
  }
  std::vector<std::string> batch(30, kJoinQuery);
  std::vector<Result<core::QueryResult>> results = balancer.ExecuteBatch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->report.result_count, 3u);
  }
  std::vector<uint64_t> served = balancer.QueriesPerEngine();
  ASSERT_EQ(served.size(), 3u);
  EXPECT_EQ(served[0] + served[1] + served[2], 30u);
  EXPECT_EQ(served[0], 10u);  // round-robin is exact
}

// Scripted outage + exponential backoff on virtual time: with jitter off
// the backoff schedule (1000, 2000) is exact, so the clock and the retry
// counter can be asserted precisely.
TEST_F(ConcurrencyTest, RetryBackoffMasksScriptedOutage) {
  connector::SimulationConfig cfg;
  cfg.fixed_latency_micros = 100;
  stock_->set_config(cfg);
  stock_->FailNextRequests(2);

  core::EngineOptions opts = BaseOptions();
  opts.fetch_retries = 3;
  opts.retry_jitter = false;
  opts.retry_backoff_micros = 1000;
  opts.retry_backoff_multiplier = 2.0;
  core::IntegrationEngine engine(catalog_.get(), opts);

  constexpr char kStockQuery[] = R"(
    WHERE <stock><item sku=$s><on_hand>$h</on_hand></item></stock>
            IN "wh:stock"
    CONSTRUCT <row><sku>$s</sku></row>
  )";
  Result<core::QueryResult> r = engine.ExecuteText(kStockQuery);
  Must(r);
  EXPECT_EQ(r->report.result_count, 4u);
  EXPECT_EQ(r->report.retries, 2u);
  // Two failed admits (free), two backoffs, one successful fetch.
  EXPECT_EQ(clock_.NowMicros(), 1000 + 2000 + 100);
  EXPECT_EQ(r->report.source_latency_micros, 100);
}

// A retry whose backoff cannot finish before the deadline is not taken:
// the transient error surfaces instead of blowing the budget.
TEST_F(ConcurrencyTest, RetryStopsAtDeadline) {
  stock_->FailNextRequests(10);
  core::EngineOptions opts = BaseOptions();
  opts.fetch_retries = 10;
  opts.retry_jitter = false;
  opts.retry_backoff_micros = 4000;
  opts.query_deadline_micros = 10000;
  core::IntegrationEngine engine(catalog_.get(), opts);

  Result<core::QueryResult> r = engine.ExecuteText(kUnionQuery);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  // Backoffs taken: 4000, then 8000 would land past the 10000 deadline.
  EXPECT_EQ(clock_.NowMicros(), 4000);
}

// Once virtual time passes the deadline mid-query, the next fragment stops
// with Timeout instead of fetching.
TEST_F(ConcurrencyTest, DeadlineExceededMidQuery) {
  connector::SimulationConfig slow;
  slow.fixed_latency_micros = 5000;
  stock_->set_config(slow);
  reviews_->set_config(slow);

  core::EngineOptions opts = BaseOptions();
  opts.parallel_fetch = false;  // fragments run one after another
  opts.query_deadline_micros = 4000;
  core::IntegrationEngine engine(catalog_.get(), opts);

  Result<core::QueryResult> r = engine.ExecuteText(kUnionQuery);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
}

// Cooperative cancellation through QueryOptions.
TEST_F(ConcurrencyTest, CancelledQueryReturnsCancelled) {
  core::IntegrationEngine engine(catalog_.get(), BaseOptions());
  std::atomic<bool> cancel{true};
  core::QueryOptions qopts;
  qopts.cancel = &cancel;
  Result<core::QueryResult> r = engine.ExecuteText(kJoinQuery, qopts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

// An operator tree stops draining mid-stream when its cancel probe trips:
// the NL006 contract at runtime. The probe counts its invocations, proving
// the operators poll while producing batches, not just at Open().
TEST(OperatorCancellationTest, ProbeStopsDrainMidStream) {
  algebra::TupleSchema schema({"x"});
  std::vector<algebra::Tuple> rows;
  for (int i = 0; i < 1000; ++i) {
    algebra::Tuple t;
    t.emplace_back(algebra::Binding{Value::Int(i)});
    rows.push_back(std::move(t));
  }
  algebra::MaterializedScan scan(std::move(schema), std::move(rows));
  scan.SetBatchSize(16);  // many DoNextBatch calls across the drain
  std::atomic<int> polls{0};
  scan.SetCancelProbe([&polls]() -> Status {
    return ++polls >= 5 ? Status::Cancelled("probe tripped") : Status::OK();
  });
  Result<std::vector<algebra::Tuple>> out = scan.Drain();
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCancelled);
  EXPECT_GE(polls.load(), 5);  // cancelled mid-stream, not up front
}

// SetCancelProbe installs recursively: a probe handed to the root reaches
// every child, so a cancelled query stops wherever it happens to be.
TEST(OperatorCancellationTest, ProbePropagatesThroughTheTree) {
  algebra::TupleSchema schema({"x"});
  std::vector<algebra::Tuple> rows;
  for (int i = 0; i < 100; ++i) {
    algebra::Tuple t;
    t.emplace_back(algebra::Binding{Value::Int(i)});
    rows.push_back(std::move(t));
  }
  auto scan = std::make_unique<algebra::MaterializedScan>(std::move(schema),
                                                          std::move(rows));
  algebra::MaterializedScan* scan_view = scan.get();
  algebra::Limit limit(std::move(scan), 50);
  limit.SetCancelProbe(
      [] { return Status::Cancelled("cancelled before any batch"); });
  EXPECT_TRUE(static_cast<algebra::Operator*>(scan_view) != nullptr);
  Result<std::vector<algebra::Tuple>> out = limit.Drain();
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCancelled);
}

// Connector decorator that raises a cancel flag during the fetch itself:
// by the time the operator tree drains, the engine's up-front cancel check
// has long passed, so only the operator-level polls can notice the flag.
class CancelDuringFetch : public connector::Connector {
 public:
  CancelDuringFetch(std::unique_ptr<connector::Connector> inner,
                    std::atomic<bool>* flag)
      : inner_(std::move(inner)), flag_(flag) {}

  const std::string& name() const override { return inner_->name(); }
  connector::SourceCapabilities capabilities() const override {
    return inner_->capabilities();
  }
  std::vector<std::string> Collections() override {
    return inner_->Collections();
  }
  using connector::Connector::FetchCollection;
  Result<NodePtr> FetchCollection(
      const std::string& collection,
      const connector::RequestContext& ctx) override {
    flag_->store(true);  // cancellation arrives while the query is in flight
    return inner_->FetchCollection(collection, ctx);
  }
  uint64_t DataVersion() override { return inner_->DataVersion(); }

 private:
  std::unique_ptr<connector::Connector> inner_;
  std::atomic<bool>* flag_;
};

// The cancel flag flips mid-query, deterministically, during the fetch;
// the operators must stop the subsequent drain.
TEST_F(ConcurrencyTest, CancelFlagFlippedMidQueryStopsTheDrain) {
  auto catalog = std::make_unique<metadata::Catalog>();
  auto inner = std::make_unique<connector::XmlConnector>("wh");
  Must(inner->PutDocumentText("stock", R"(
    <stock>
      <item sku="a"><on_hand>12</on_hand></item>
      <item sku="b"><on_hand>5</on_hand></item>
    </stock>)"));
  std::atomic<bool> cancel{false};
  Must(catalog->RegisterSource(
      std::make_unique<CancelDuringFetch>(std::move(inner), &cancel)));

  core::EngineOptions opts;
  opts.clock = &clock_;
  core::IntegrationEngine engine(catalog.get(), opts);
  core::QueryOptions qopts;
  qopts.cancel = &cancel;
  Result<core::QueryResult> r = engine.ExecuteText(R"(
    WHERE <stock><item sku=$s><on_hand>$h</on_hand></item></stock>
            IN "wh:stock", $h > 0
    CONSTRUCT <hit><sku>$s</sku></hit>
  )",
                                                   qopts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

// The UNION plan bugfix: every branch's plan survives in the report, under
// per-branch headers, instead of the last branch overwriting the rest.
TEST_F(ConcurrencyTest, UnionReportKeepsEveryBranchPlan) {
  core::IntegrationEngine engine(catalog_.get(), BaseOptions());
  Result<core::QueryResult> r = engine.ExecuteText(kUnionQuery);
  Must(r);
  EXPECT_NE(r->report.plan.find("-- branch 0 --"), std::string::npos);
  EXPECT_NE(r->report.plan.find("-- branch 1 --"), std::string::npos);
  EXPECT_NE(r->report.plan.find("wh:stock"), std::string::npos);
  EXPECT_NE(r->report.plan.find("rev:reviews"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Sharded result cache under contention (run under TSan in CI).

// Many threads mixing Lookup / Insert / Invalidate / InvalidateTag / stats
// on one cache: no data races, budget respected, hits always frozen.
TEST(ResultCacheConcurrencyTest, StressMixedOperations) {
  VirtualClock clock;
  materialize::ResultCacheOptions options;
  options.max_bytes = 1 << 20;
  options.shards = 8;
  materialize::ResultCache cache(options, &clock);

  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  constexpr int kKeys = 16;
  std::atomic<int> thawed_hits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::string key = "k" + std::to_string((t * 7 + i) % kKeys);
        switch ((t + i) % 5) {
          case 0:
          case 1: {
            ConstNodePtr hit = cache.Lookup(key);
            if (hit != nullptr && !hit->frozen()) thawed_hits.fetch_add(1);
            break;
          }
          case 2: {
            NodePtr doc = Node::Element("doc");
            doc->AddScalarChild("v", Value::Int(i));
            cache.Insert(key, doc, {"tag" + std::to_string(i % 3)});
            break;
          }
          case 3:
            cache.Invalidate(key);
            break;
          default:
            if (i % 50 == 0) {
              cache.InvalidateTag("tag" + std::to_string(i % 3));
            } else {
              (void)cache.stats();
            }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(thawed_hits.load(), 0);
  EXPECT_LE(cache.bytes(), cache.max_bytes());
  materialize::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, cache.size());
}

// Singleflight, deterministic: the leader's compute blocks until every
// thread has at least entered LookupOrCompute, so the fetch runs once no
// matter how the scheduler interleaves them.
TEST(ResultCacheConcurrencyTest, LookupOrComputeRunsComputeOnce) {
  VirtualClock clock;
  materialize::ResultCache cache(1 << 20, 0, &clock);
  constexpr int kThreads = 8;
  std::atomic<int> arrived{0};
  std::atomic<int> computes{0};
  std::atomic<const Node*> shared_snapshot{nullptr};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      arrived.fetch_add(1);
      Result<ConstNodePtr> r = cache.LookupOrCompute(
          "hot", [&]() -> Result<materialize::ResultCache::Computed> {
            while (arrived.load() < kThreads) std::this_thread::yield();
            computes.fetch_add(1);
            materialize::ResultCache::Computed computed;
            computed.document = Node::Element("doc");
            return computed;
          });
      if (!r.ok()) {
        mismatches.fetch_add(1);
        return;
      }
      const Node* expected = nullptr;
      if (!shared_snapshot.compare_exchange_strong(expected, r->get()) &&
          expected != r->get()) {
        mismatches.fetch_add(1);  // everyone must see the same snapshot
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(mismatches.load(), 0);
  materialize::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.coalesced, static_cast<uint64_t>(kThreads - 1));
}

// Engine-level singleflight: concurrent identical ExecuteText calls on a
// cache-enabled engine execute once (queries_served counts real runs).
TEST_F(ConcurrencyTest, ConcurrentIdenticalQueriesExecuteOnce) {
  core::EngineOptions opts = BaseOptions();
  opts.result_cache_bytes = 1 << 20;
  core::IntegrationEngine engine(catalog_.get(), opts);
  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      Result<core::QueryResult> r = engine.ExecuteText(kJoinQuery);
      if (!r.ok() || r->report.result_count != 3u) failures.fetch_add(1);
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine.queries_served(), 1u);
}

// Frontend singleflight: concurrent identical lens invocations collapse to
// one engine execution across the whole balancer pool.
TEST_F(ConcurrencyTest, ConcurrentLensInvokesShareOneExecution) {
  frontend::LoadBalancer balancer(frontend::BalancePolicy::kRoundRobin);
  for (int i = 0; i < 3; ++i) {
    balancer.AddEngine(std::make_unique<core::IntegrationEngine>(
        catalog_.get(), BaseOptions()));
  }
  materialize::ResultCache cache(1 << 20, 0, &clock_);
  frontend::LensService lenses(&balancer, &cache, nullptr);
  frontend::Lens lens;
  lens.name = "avail";
  lens.query_template = kJoinQuery;
  Must(lenses.RegisterLens(lens));

  constexpr int kThreads = 12;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      Result<frontend::LensResult> r = lenses.Invoke("avail");
      if (!r.ok() || r->raw.document == nullptr) failures.fetch_add(1);
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);
  std::vector<uint64_t> served = balancer.QueriesPerEngine();
  uint64_t total = 0;
  for (uint64_t count : served) total += count;
  EXPECT_EQ(total, 1u);
  materialize::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.coalesced, static_cast<uint64_t>(kThreads - 1));
}

}  // namespace
}  // namespace nimble
