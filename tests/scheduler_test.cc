#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/thread_pool.h"
#include "connector/xml_connector.h"
#include "core/engine.h"
#include "frontend/load_balancer.h"
#include "metadata/catalog.h"
#include "sched/scheduler.h"

namespace nimble {
namespace {

// ---------------------------------------------------------------------------
// QueryScheduler unit tests (opaque callbacks, no engine).

/// Collects scheduler outcomes with a waitable completion count.
class Outcomes {
 public:
  void RecordRun(const std::string& label) {
    std::lock_guard<std::mutex> lock(mutex_);
    order_.push_back(label);
    done_++;
    cv_.notify_all();
  }
  void RecordDrop(const Status& status) {
    std::lock_guard<std::mutex> lock(mutex_);
    drops_.push_back(status);
    done_++;
    cv_.notify_all();
  }
  void WaitFor(size_t n) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return done_ >= n; });
  }
  std::vector<std::string> order() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return order_;
  }
  std::vector<Status> drops() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return drops_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  size_t done_ = 0;
  std::vector<std::string> order_;
  std::vector<Status> drops_;
};

/// A run callback that blocks until released — holds a concurrency token so
/// tests can fill the queue deterministically behind it.
class Plug {
 public:
  void Block() {
    std::unique_lock<std::mutex> lock(mutex_);
    entered_ = true;
    cv_.notify_all();
    cv_.wait(lock, [&] { return released_; });
  }
  void WaitEntered() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return entered_; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mutex_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool entered_ = false;
  bool released_ = false;
};

TEST(QuerySchedulerTest, WeightedFairDequeueConvergesToThreeToOne) {
  RealClock clock;
  ThreadPool pool(2);
  sched::SchedulerOptions options;
  options.max_inflight_queries = 1;
  options.queue_capacity = 128;
  options.tenant_weights = {{"A", 3}, {"B", 1}};
  sched::QueryScheduler scheduler(options, &clock, &pool);

  Plug plug;
  Outcomes outcomes;
  sched::SubmitInfo plug_info;
  auto plugged = scheduler.Submit(
      plug_info, [&](int64_t) { plug.Block(); }, [&](const Status&) {});
  ASSERT_TRUE(plugged.ok());
  plug.WaitEntered();  // the single token is now held

  constexpr int kPerTenant = 30;
  for (int i = 0; i < kPerTenant; ++i) {
    for (const char* tenant : {"A", "B"}) {
      sched::SubmitInfo info;
      info.tenant = tenant;
      std::string label = tenant;
      auto submission = scheduler.Submit(
          info, [&outcomes, label](int64_t) { outcomes.RecordRun(label); },
          [&outcomes](const Status& s) { outcomes.RecordDrop(s); });
      ASSERT_TRUE(submission.ok());
    }
  }
  plug.Release();
  outcomes.WaitFor(2 * kPerTenant);

  // Deficit round robin with weights 3:1 drains A,A,A,B repeating; over any
  // prefix where both tenants still have work, completions converge to 3:1.
  std::vector<std::string> order = outcomes.order();
  ASSERT_EQ(order.size(), static_cast<size_t>(2 * kPerTenant));
  int a_in_prefix = 0;
  for (int i = 0; i < 24; ++i) a_in_prefix += order[i] == "A" ? 1 : 0;
  EXPECT_EQ(a_in_prefix, 18) << "first 24 completions should split 18:6";
  EXPECT_TRUE(outcomes.drops().empty());

  // The scheduler retires an entry (completed++, token release) just after
  // the run callback returns, so the counter can lag WaitFor — poll.
  sched::SchedulerStats stats = scheduler.stats();
  for (int i = 0;
       i < 2000 && stats.completed < static_cast<uint64_t>(2 * kPerTenant + 1);
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    stats = scheduler.stats();
  }
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(2 * kPerTenant + 1));
  ASSERT_EQ(stats.tenants.size(), 3u);  // "", "A", "B"
}

TEST(QuerySchedulerTest, RejectsWhenQueueFullWithRetryAfterHint) {
  RealClock clock;
  ThreadPool pool(2);
  sched::SchedulerOptions options;
  options.max_inflight_queries = 1;
  options.queue_capacity = 2;
  sched::QueryScheduler scheduler(options, &clock, &pool);

  Plug plug;
  Outcomes outcomes;
  auto plugged = scheduler.Submit(
      {}, [&](int64_t) { plug.Block(); }, [&](const Status&) {});
  ASSERT_TRUE(plugged.ok());
  plug.WaitEntered();

  for (int i = 0; i < 2; ++i) {
    auto queued = scheduler.Submit(
        {}, [&](int64_t) { outcomes.RecordRun("q"); },
        [&](const Status& s) { outcomes.RecordDrop(s); });
    ASSERT_TRUE(queued.ok()) << "capacity admits " << i;
  }
  auto rejected = scheduler.Submit(
      {}, [&](int64_t) { outcomes.RecordRun("overflow"); },
      [&](const Status& s) { outcomes.RecordDrop(s); });
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted)
      << rejected.status().ToString();
  EXPECT_GT(sched::RetryAfterMicros(rejected.status()), 0);
  EXPECT_EQ(scheduler.stats().shed_queue_full, 1u);

  plug.Release();
  outcomes.WaitFor(2);
  EXPECT_EQ(outcomes.order().size(), 2u);  // the overflow never ran
}

TEST(QuerySchedulerTest, DeadlineExpiredWhileQueuedDroppedWithoutExecuting) {
  VirtualClock clock;
  ThreadPool pool(2);
  sched::SchedulerOptions options;
  options.max_inflight_queries = 1;
  sched::QueryScheduler scheduler(options, &clock, &pool);

  Plug plug;
  Outcomes outcomes;
  auto plugged = scheduler.Submit(
      {}, [&](int64_t) { plug.Block(); }, [&](const Status&) {});
  ASSERT_TRUE(plugged.ok());
  plug.WaitEntered();

  sched::SubmitInfo info;
  info.deadline_micros = 1000;
  std::atomic<bool> executed{false};
  auto queued = scheduler.Submit(
      info, [&](int64_t) { executed.store(true); outcomes.RecordRun("x"); },
      [&](const Status& s) { outcomes.RecordDrop(s); });
  ASSERT_TRUE(queued.ok());

  clock.AdvanceMicros(2000);  // the queued entry's deadline passes
  plug.Release();
  outcomes.WaitFor(1);

  EXPECT_FALSE(executed.load());
  std::vector<Status> drops = outcomes.drops();
  ASSERT_EQ(drops.size(), 1u);
  EXPECT_EQ(drops[0].code(), StatusCode::kTimeout) << drops[0].ToString();
  EXPECT_EQ(scheduler.stats().dropped_expired, 1u);
}

TEST(QuerySchedulerTest, CancelWhileQueuedDropsWithoutExecuting) {
  RealClock clock;
  ThreadPool pool(2);
  sched::SchedulerOptions options;
  options.max_inflight_queries = 1;
  sched::QueryScheduler scheduler(options, &clock, &pool);

  Plug plug;
  Outcomes outcomes;
  auto plugged = scheduler.Submit(
      {}, [&](int64_t) { plug.Block(); }, [&](const Status&) {});
  ASSERT_TRUE(plugged.ok());
  plug.WaitEntered();

  std::atomic<bool> executed{false};
  auto queued = scheduler.Submit(
      {}, [&](int64_t) { executed.store(true); outcomes.RecordRun("x"); },
      [&](const Status& s) { outcomes.RecordDrop(s); });
  ASSERT_TRUE(queued.ok());

  EXPECT_TRUE((*queued)->Cancel());
  EXPECT_FALSE((*queued)->Cancel()) << "second cancel finds nothing queued";
  outcomes.WaitFor(1);
  EXPECT_FALSE(executed.load());
  ASSERT_EQ(outcomes.drops().size(), 1u);
  EXPECT_EQ(outcomes.drops()[0].code(), StatusCode::kCancelled);
  EXPECT_EQ(scheduler.stats().dropped_cancelled, 1u);

  plug.Release();
}

TEST(QuerySchedulerTest, ShedsWhenEstimatedWaitExceedsDeadline) {
  VirtualClock clock;
  ThreadPool pool(2);
  sched::SchedulerOptions options;
  options.max_inflight_queries = 1;
  sched::QueryScheduler scheduler(options, &clock, &pool);

  // Seed the EWMA service-time estimate with one slow completion.
  Outcomes outcomes;
  auto seed = scheduler.Submit(
      {}, [&](int64_t) { clock.AdvanceMicros(10000); outcomes.RecordRun("s"); },
      [&](const Status&) {});
  ASSERT_TRUE(seed.ok());
  outcomes.WaitFor(1);

  Plug plug;
  auto plugged = scheduler.Submit(
      {}, [&](int64_t) { plug.Block(); }, [&](const Status&) {});
  ASSERT_TRUE(plugged.ok());
  plug.WaitEntered();
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(scheduler
                    .Submit({}, [&](int64_t) { outcomes.RecordRun("q"); },
                            [&](const Status&) {})
                    .ok());
  }

  // Estimated wait: (2 queued + 0.5 in flight) * 10000us ≈ 25000us, far
  // beyond this submission's 5000us deadline — shed at submit.
  sched::SubmitInfo info;
  info.deadline_micros = 5000;
  auto shed = scheduler.Submit(
      info, [&](int64_t) { outcomes.RecordRun("hopeless"); },
      [&](const Status&) {});
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(sched::RetryAfterMicros(shed.status()), 0);
  EXPECT_EQ(scheduler.stats().shed_wait_deadline, 1u);

  plug.Release();
  outcomes.WaitFor(3);
}

// The TSan target: submits, cancels and sheds race from many threads while
// the scheduler dispatches; every accepted submission resolves exactly once.
TEST(QuerySchedulerTest, StressConcurrentSubmitCancelShed) {
  RealClock clock;
  ThreadPool pool(4);
  sched::SchedulerOptions options;
  options.max_inflight_queries = 3;
  options.queue_capacity = 16;
  options.tenant_weights = {{"A", 3}, {"B", 1}};
  sched::QueryScheduler scheduler(options, &clock, &pool);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::atomic<uint64_t> accepted{0}, shed{0}, ran{0}, dropped{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      std::mt19937 rng(static_cast<unsigned>(t));
      for (int i = 0; i < kPerThread; ++i) {
        sched::SubmitInfo info;
        info.tenant = (t % 2 == 0) ? "A" : "B";
        info.priority = t % 3 == 0 ? 1 : 0;
        if (i % 5 == 0) info.deadline_micros = 50'000'000;  // never expires
        auto submission = scheduler.Submit(
            info,
            [&ran](int64_t) {
              ran.fetch_add(1);
              std::this_thread::sleep_for(std::chrono::microseconds(50));
            },
            [&dropped](const Status&) { dropped.fetch_add(1); });
        if (!submission.ok()) {
          EXPECT_EQ(submission.status().code(),
                    StatusCode::kResourceExhausted);
          shed.fetch_add(1);
          continue;
        }
        accepted.fetch_add(1);
        if (rng() % 4 == 0) (*submission)->Cancel();
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(accepted.load() + shed.load(),
            static_cast<uint64_t>(kThreads * kPerThread));

  // Poll until the scheduler has retired every accepted entry (the run
  // callback returns slightly before the entry's bookkeeping settles).
  sched::SchedulerStats stats = scheduler.stats();
  for (int i = 0;
       i < 5000 && stats.completed + stats.dropped_cancelled +
                           stats.dropped_expired <
                       accepted.load();
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    stats = scheduler.stats();
  }
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.TotalShed(), shed.load());
  EXPECT_EQ(stats.completed + stats.dropped_cancelled + stats.dropped_expired,
            accepted.load());
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.inflight_queries, 0u);
}

// Destroying a scheduler with queued work drops the queue (Cancelled) and
// drains in-flight queries before returning.
TEST(QuerySchedulerTest, DestructorDrainsQueueAndInflight) {
  RealClock clock;
  ThreadPool pool(2);
  Outcomes outcomes;
  Plug plug;
  // The destructor first drops every queued entry (firing the 3 drop
  // callbacks), then blocks until the in-flight plug finishes. Releasing
  // the plug only after the drops fire guarantees the queue cannot be
  // dispatched instead.
  std::thread releaser([&] {
    outcomes.WaitFor(3);
    plug.Release();
  });
  {
    sched::SchedulerOptions options;
    options.max_inflight_queries = 1;
    sched::QueryScheduler scheduler(options, &clock, &pool);
    ASSERT_TRUE(scheduler
                    .Submit({}, [&](int64_t) { plug.Block(); },
                            [&](const Status&) {})
                    .ok());
    plug.WaitEntered();
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(scheduler
                      .Submit({}, [&](int64_t) { outcomes.RecordRun("q"); },
                              [&](const Status& s) { outcomes.RecordDrop(s); })
                      .ok());
    }
  }
  releaser.join();
  // After destruction every queued entry was dropped with Cancelled.
  std::vector<Status> drops = outcomes.drops();
  ASSERT_EQ(drops.size(), 3u);
  for (const Status& s : drops) EXPECT_EQ(s.code(), StatusCode::kCancelled);
}

// ---------------------------------------------------------------------------
// ExecutionContext: queue wait charges the deadline budget (the bugfix).

TEST(ExecContextQueueWaitTest, QueueWaitChargesAgainstDeadline) {
  VirtualClock clock;
  ThreadPool pool(1);
  // 10ms budget, 6ms already spent queued: 4ms of execution remain.
  core::ExecutionContext ctx(&clock, &pool, 10000, core::RetryPolicy{}, true,
                             nullptr, 6000, nullptr);
  EXPECT_TRUE(ctx.Check().ok());
  clock.AdvanceMicros(3999);
  EXPECT_TRUE(ctx.Check().ok());
  clock.AdvanceMicros(1);
  EXPECT_EQ(ctx.Check().code(), StatusCode::kTimeout);
}

TEST(ExecContextQueueWaitTest, WaitConsumingWholeBudgetStartsExpired) {
  VirtualClock clock;
  ThreadPool pool(1);
  core::ExecutionContext ctx(&clock, &pool, 10000, core::RetryPolicy{}, true,
                             nullptr, 10000, nullptr);
  EXPECT_EQ(ctx.Check().code(), StatusCode::kTimeout);
}

TEST(ExecContextQueueWaitTest, HandleCancelFlagStopsExecution) {
  VirtualClock clock;
  ThreadPool pool(1);
  std::atomic<bool> handle_cancel{false};
  core::ExecutionContext ctx(&clock, &pool, 0, core::RetryPolicy{}, true,
                             nullptr, 0, &handle_cancel);
  EXPECT_TRUE(ctx.Check().ok());
  handle_cancel.store(true);
  EXPECT_EQ(ctx.Check().code(), StatusCode::kCancelled);
}

// ---------------------------------------------------------------------------
// Engine integration: Submit / ExecuteText through the scheduler.

/// Wraps an XmlConnector with a test-controlled gate: FetchCollection
/// blocks until Open(), then charges `advance_micros` to the clock.
class GateConnector : public connector::Connector {
 public:
  GateConnector(std::unique_ptr<connector::XmlConnector> inner,
                VirtualClock* clock, int64_t advance_micros)
      : inner_(std::move(inner)), clock_(clock),
        advance_micros_(advance_micros) {}

  const std::string& name() const override { return inner_->name(); }
  connector::SourceCapabilities capabilities() const override {
    return inner_->capabilities();
  }
  std::vector<std::string> Collections() override {
    return inner_->Collections();
  }
  using connector::Connector::FetchCollection;
  Result<NodePtr> FetchCollection(
      const std::string& collection,
      const connector::RequestContext& ctx) override {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      waiters_++;
      cv_.notify_all();
      cv_.wait(lock, [&] { return open_; });
    }
    clock_->AdvanceMicros(advance_micros_);
    return inner_->FetchCollection(collection, ctx);
  }
  uint64_t DataVersion() override { return inner_->DataVersion(); }

  void WaitForWaiter() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return waiters_ > 0; });
  }
  void Open() {
    std::lock_guard<std::mutex> lock(mutex_);
    open_ = true;
    cv_.notify_all();
  }

 private:
  std::unique_ptr<connector::XmlConnector> inner_;
  VirtualClock* clock_;
  int64_t advance_micros_;
  std::mutex mutex_;
  std::condition_variable cv_;
  int waiters_ = 0;
  bool open_ = false;
};

constexpr char kStockQuery[] = R"(
  WHERE <stock><item sku=$s><on_hand>$h</on_hand></item></stock>
          IN "wh:stock", $h > 0
  CONSTRUCT <hit><sku>$s</sku></hit>
)";

constexpr char kStockXml[] =
    "<stock>"
    "<item sku=\"w-1\"><on_hand>14</on_hand></item>"
    "<item sku=\"g-1\"><on_hand>0</on_hand></item>"
    "<item sku=\"b-1\"><on_hand>250</on_hand></item>"
    "</stock>";

std::unique_ptr<connector::XmlConnector> MakeStockFeed() {
  auto feed = std::make_unique<connector::XmlConnector>("wh");
  EXPECT_TRUE(feed->PutDocumentText("stock", kStockXml).ok());
  return feed;
}

TEST(EngineSchedulerTest, ExecuteTextThroughSchedulerMatchesDirect) {
  metadata::Catalog catalog;
  ASSERT_TRUE(catalog.RegisterSource(MakeStockFeed()).ok());

  core::EngineOptions options;
  core::IntegrationEngine direct(&catalog, options);
  Result<core::QueryResult> expected = direct.ExecuteText(kStockQuery);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  ASSERT_EQ(expected->report.result_count, 2u);

  options.max_inflight_queries = 2;
  core::IntegrationEngine scheduled(&catalog, options);
  ASSERT_NE(scheduled.scheduler(), nullptr);
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < 10; ++i) {
        Result<core::QueryResult> r = scheduled.ExecuteText(kStockQuery);
        if (!r.ok() || r->report.result_count != 2) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);

  // Handles resolve inside the run callback, slightly before the scheduler
  // retires the entry — poll the stats to settlement.
  sched::SchedulerStats stats = scheduled.scheduler()->stats();
  for (int i = 0; i < 2000 && stats.completed < 40; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    stats = scheduled.scheduler()->stats();
  }
  EXPECT_EQ(stats.submitted, 40u);
  EXPECT_EQ(stats.completed, 40u);
  EXPECT_EQ(stats.inflight_queries, 0u);
}

TEST(EngineSchedulerTest, SubmitHandleCancelsQueuedQuery) {
  VirtualClock clock;
  metadata::Catalog catalog;
  auto gate = std::make_unique<GateConnector>(MakeStockFeed(), &clock, 0);
  GateConnector* gate_raw = gate.get();
  ASSERT_TRUE(catalog.RegisterSource(std::move(gate)).ok());

  core::EngineOptions options;
  options.clock = &clock;
  options.max_inflight_queries = 1;
  options.worker_threads = 2;
  core::IntegrationEngine engine(&catalog, options);

  core::QueryHandlePtr running = engine.Submit(kStockQuery);
  gate_raw->WaitForWaiter();  // holds the single token inside the fetch
  core::QueryHandlePtr queued = engine.Submit(kStockQuery);
  EXPECT_FALSE(queued->done());

  queued->Cancel();
  const Result<core::QueryResult>& cancelled = queued->Wait();
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(engine.scheduler()->stats().dropped_cancelled, 1u);

  gate_raw->Open();
  const Result<core::QueryResult>& first = running->Wait();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->report.result_count, 2u);
}

// The queue-aware-deadline bugfix end to end: a query that spends most of
// its wall budget waiting behind another query must time out, not run with
// a fresh budget. Deterministic on a VirtualClock: only the test and the
// gate advance time.
TEST(EngineSchedulerTest, QueueWaitChargesDeadlineEndToEnd) {
  VirtualClock clock;
  metadata::Catalog catalog;
  auto gate = std::make_unique<GateConnector>(MakeStockFeed(), &clock, 1000);
  GateConnector* gate_raw = gate.get();
  ASSERT_TRUE(catalog.RegisterSource(std::move(gate)).ok());

  core::EngineOptions options;
  options.clock = &clock;
  options.max_inflight_queries = 1;
  options.worker_threads = 2;
  options.query_deadline_micros = 6000;
  options.load_shedding = false;  // exercise the deadline path, not the shed
  core::IntegrationEngine engine(&catalog, options);

  core::QueryHandlePtr first = engine.Submit(kStockQuery);
  gate_raw->WaitForWaiter();
  core::QueryHandlePtr second = engine.Submit(kStockQuery);

  clock.AdvanceMicros(4000);  // both queries age 4ms; the second is queued
  gate_raw->Open();

  // First query: 5ms total (4ms aged + 1ms fetch) within its 6ms budget.
  const Result<core::QueryResult>& r1 = first->Wait();
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1->report.queue_wait_micros, 0);

  // Second query: waited 5ms of its 6ms budget in queue, so the 1ms fetch
  // exhausts it. Without queue-aware deadlines it would finish comfortably.
  const Result<core::QueryResult>& r2 = second->Wait();
  ASSERT_FALSE(r2.ok()) << "queued query must charge its wait";
  EXPECT_EQ(r2.status().code(), StatusCode::kTimeout)
      << r2.status().ToString();
}

TEST(LoadBalancerSchedulerTest, BatchRoutesThroughAdmission) {
  metadata::Catalog catalog;
  ASSERT_TRUE(catalog.RegisterSource(MakeStockFeed()).ok());

  core::EngineOptions options;
  options.max_inflight_queries = 2;
  options.queue_capacity = 64;
  frontend::LoadBalancer balancer;
  balancer.AddEngine(
      std::make_unique<core::IntegrationEngine>(&catalog, options));
  balancer.AddEngine(
      std::make_unique<core::IntegrationEngine>(&catalog, options));

  std::vector<std::string> queries(10, kStockQuery);
  std::vector<Result<core::QueryResult>> results =
      balancer.ExecuteBatch(queries);
  ASSERT_EQ(results.size(), 10u);
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->report.result_count, 2u);
  }
  // Every batch query went through an engine scheduler, none bypassed.
  uint64_t admitted = 0;
  for (size_t i = 0; i < balancer.pool_size(); ++i) {
    admitted += balancer.engine(i)->scheduler()->stats().admitted;
  }
  EXPECT_EQ(admitted, 10u);
}

}  // namespace
}  // namespace nimble
