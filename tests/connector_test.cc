#include <gtest/gtest.h>

#include "connector/csv_connector.h"
#include "connector/hierarchical_connector.h"
#include "connector/relational_connector.h"
#include "connector/simulated_source.h"
#include "connector/xml_connector.h"

namespace nimble {
namespace connector {
namespace {

TEST(RelationalConnectorTest, CollectionsAndFetch) {
  relational::Database db("src");
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT PRIMARY KEY, b TEXT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')").ok());
  RelationalConnector conn("src", &db);

  EXPECT_EQ(conn.Collections(), (std::vector<std::string>{"t"}));
  Result<NodePtr> tree = conn.FetchCollection("t");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ((*tree)->name(), "t");
  ASSERT_EQ((*tree)->children().size(), 2u);
  NodePtr row = (*tree)->children()[0];
  EXPECT_EQ(row->name(), "row");
  EXPECT_EQ(row->FindChild("a")->ScalarValue(), Value::Int(1));
  EXPECT_EQ(row->FindChild("b")->ScalarValue(), Value::String("x"));
}

TEST(RelationalConnectorTest, ExecuteSqlAndStats) {
  relational::Database db("src");
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT PRIMARY KEY, b TEXT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')").ok());
  RelationalConnector conn("src", &db);

  Result<relational::ResultSet> rs = conn.ExecuteSql("SELECT b FROM t WHERE a = 2");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0], Value::String("y"));
  EXPECT_EQ(conn.stats().calls, 1u);
  EXPECT_EQ(conn.stats().rows_shipped, 1u);
}

TEST(RelationalConnectorTest, CapabilitiesReportIndexes) {
  relational::Database db("src");
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT PRIMARY KEY, b TEXT)").ok());
  RelationalConnector conn("src", &db);
  SourceCapabilities caps = conn.capabilities();
  EXPECT_TRUE(caps.supports_sql);
  EXPECT_TRUE(caps.supports_predicates);
  EXPECT_TRUE(caps.HasIndexOn("t", "a"));  // pk index
  EXPECT_FALSE(caps.HasIndexOn("t", "b"));
}

TEST(RelationalConnectorTest, VersionTracksMutations) {
  relational::Database db("src");
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT)").ok());
  RelationalConnector conn("src", &db);
  uint64_t v0 = conn.DataVersion();
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1)").ok());
  EXPECT_GT(conn.DataVersion(), v0);
}

TEST(XmlConnectorTest, PutFetchClone) {
  XmlConnector conn("docs");
  ASSERT_TRUE(conn.PutDocumentText("books", "<books><b>1</b></books>").ok());
  Result<NodePtr> first = conn.FetchCollection("books");
  ASSERT_TRUE(first.ok());
  // Mutating the fetched clone must not affect the stored document.
  (*first)->AddChild(Node::Element("extra"));
  Result<NodePtr> second = conn.FetchCollection("books");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*second)->children().size(), 1u);
}

TEST(XmlConnectorTest, RejectsBadXml) {
  XmlConnector conn("docs");
  EXPECT_EQ(conn.PutDocumentText("bad", "<a><b></a>").code(),
            StatusCode::kParseError);
}

TEST(XmlConnectorTest, MissingDocument) {
  XmlConnector conn("docs");
  EXPECT_EQ(conn.FetchCollection("nope").status().code(),
            StatusCode::kNotFound);
}

TEST(XmlConnectorTest, MutableDocumentBumpsVersion) {
  XmlConnector conn("docs");
  ASSERT_TRUE(conn.PutDocumentText("d", "<d/>").ok());
  uint64_t v0 = conn.DataVersion();
  NodePtr doc = conn.MutableDocument("d");
  ASSERT_NE(doc, nullptr);
  EXPECT_GT(conn.DataVersion(), v0);
  EXPECT_EQ(conn.MutableDocument("nope"), nullptr);
}

TEST(HierarchicalConnectorTest, MappedCollections) {
  hierarchical::HStore store("org");
  ASSERT_TRUE(store.Put("/corp/a", {{"n", Value::Int(1)}}).ok());
  HierarchicalConnector conn("org", &store);
  conn.MapCollection("staff", "/corp");
  EXPECT_EQ(conn.Collections(), (std::vector<std::string>{"staff"}));
  Result<NodePtr> tree = conn.FetchCollection("staff");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ((*tree)->FindChild("entry")->GetAttribute("path"),
            Value::String("/corp"));
  EXPECT_EQ(conn.FetchCollection("nope").status().code(),
            StatusCode::kNotFound);
}

TEST(CsvConnectorTest, ParsesTypedRows) {
  CsvConnector conn("files");
  ASSERT_TRUE(conn.PutCsv("people",
                          "name,age,city\n"
                          "Ada,36,Seattle\n"
                          "Bob,41,\"Portland, OR\"\n")
                  .ok());
  Result<NodePtr> tree = conn.FetchCollection("people");
  ASSERT_TRUE(tree.ok());
  ASSERT_EQ((*tree)->children().size(), 2u);
  NodePtr ada = (*tree)->children()[0];
  EXPECT_EQ(ada->FindChild("age")->ScalarValue(), Value::Int(36));
  NodePtr bob = (*tree)->children()[1];
  EXPECT_EQ(bob->FindChild("city")->ScalarValue(),
            Value::String("Portland, OR"));
}

TEST(CsvConnectorTest, SplitCsvLineQuoting) {
  EXPECT_EQ(SplitCsvLine("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitCsvLine("\"a,b\",c"),
            (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(SplitCsvLine("\"say \"\"hi\"\"\",x"),
            (std::vector<std::string>{"say \"hi\"", "x"}));
  EXPECT_EQ(SplitCsvLine(""), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitCsvLine("a,,c"), (std::vector<std::string>{"a", "", "c"}));
}

TEST(CsvConnectorTest, ErrorOnRaggedRows) {
  CsvConnector conn("files");
  EXPECT_EQ(conn.PutCsv("bad", "a,b\n1\n").code(),
            StatusCode::kParseError);
  EXPECT_EQ(conn.PutCsv("empty", "").code(),
            StatusCode::kInvalidArgument);
}

// ---- SimulatedSource ---------------------------------------------------------

class SimulatedSourceTest : public ::testing::Test {
 protected:
  std::unique_ptr<SimulatedSource> Make(SimulationConfig config) {
    auto inner = std::make_unique<XmlConnector>("remote");
    EXPECT_TRUE(
        inner->PutDocumentText("d", "<d><r>1</r><r>2</r><r>3</r></d>").ok());
    return std::make_unique<SimulatedSource>(std::move(inner), config,
                                             &clock_);
  }
  VirtualClock clock_;
};

TEST_F(SimulatedSourceTest, ChargesLatencyToClock) {
  SimulationConfig config;
  config.fixed_latency_micros = 500;
  config.per_row_latency_micros = 100;
  auto src = Make(config);
  ASSERT_TRUE(src->FetchCollection("d").ok());
  EXPECT_EQ(clock_.NowMicros(), 500 + 3 * 100);
  EXPECT_EQ(src->stats().latency_micros, 800);
  EXPECT_EQ(src->stats().rows_shipped, 3u);
}

TEST_F(SimulatedSourceTest, ForcedOffline) {
  auto src = Make({});
  src->SetOnline(false);
  EXPECT_EQ(src->Ping().code(), StatusCode::kUnavailable);
  EXPECT_EQ(src->FetchCollection("d").status().code(),
            StatusCode::kUnavailable);
  src->SetOnline(true);
  EXPECT_TRUE(src->Ping().ok());
  EXPECT_TRUE(src->FetchCollection("d").ok());
}

TEST_F(SimulatedSourceTest, ProbabilisticAvailabilityRoughlyCalibrated) {
  SimulationConfig config;
  config.availability = 0.7;
  config.seed = 11;
  auto src = Make(config);
  int up = 0;
  const int kTrials = 2000;
  for (int i = 0; i < kTrials; ++i) {
    if (src->Ping().ok()) ++up;
  }
  EXPECT_NEAR(static_cast<double>(up) / kTrials, 0.7, 0.05);
}

TEST_F(SimulatedSourceTest, DelegatesCapabilitiesAndName) {
  auto src = Make({});
  EXPECT_EQ(src->name(), "remote");
  EXPECT_FALSE(src->capabilities().supports_sql);
  EXPECT_EQ(src->Collections(), (std::vector<std::string>{"d"}));
}

TEST_F(SimulatedSourceTest, SqlUnsupportedPassesThrough) {
  auto src = Make({});
  EXPECT_EQ(src->ExecuteSql("SELECT 1").status().code(),
            StatusCode::kUnsupported);
}

}  // namespace
}  // namespace connector
}  // namespace nimble
