#include "algebra/verifier.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "algebra/operators.h"

namespace nimble {
namespace algebra {
namespace {

std::unique_ptr<MaterializedScan> Scan(std::vector<std::string> variables,
                                       size_t rows = 2) {
  TupleSchema schema(variables);
  std::vector<Tuple> tuples;
  for (size_t r = 0; r < rows; ++r) {
    Tuple tuple;
    for (size_t c = 0; c < schema.size(); ++c) {
      tuple.emplace_back(Binding{Value::Int(static_cast<int64_t>(r + c))});
    }
    tuples.push_back(std::move(tuple));
  }
  return std::make_unique<MaterializedScan>(std::move(schema),
                                            std::move(tuples), "test");
}

void ExpectViolation(const Status& s, const std::string& needle) {
  ASSERT_FALSE(s.ok()) << "expected a verifier violation";
  EXPECT_EQ(s.code(), StatusCode::kInternal) << s.ToString();
  EXPECT_NE(s.message().find("plan verifier"), std::string::npos)
      << s.ToString();
  EXPECT_NE(s.message().find(needle), std::string::npos) << s.ToString();
}

/// Pass-through operator that reports a schema different from its child's
/// (a compiler that forgot to propagate a projection would look like this).
class LyingFilter : public Filter {
 public:
  LyingFilter(std::unique_ptr<Operator> child, TupleSchema lie)
      : Filter(std::move(child), {}), lie_(std::move(lie)) {}
  const TupleSchema& schema() const override { return lie_; }

 private:
  TupleSchema lie_;
};

/// HashJoin whose output schema is not the merge of its inputs.
class LyingJoin : public HashJoin {
 public:
  LyingJoin(std::unique_ptr<Operator> left, std::unique_ptr<Operator> right,
            TupleSchema lie)
      : HashJoin(std::move(left), std::move(right)), lie_(std::move(lie)) {}
  const TupleSchema& schema() const override { return lie_; }

 private:
  TupleSchema lie_;
};

/// Leaf that claims a child it does not have (corrupt children_views_).
class ExtraChildScan : public MaterializedScan {
 public:
  ExtraChildScan(const Operator* bogus)
      : MaterializedScan(TupleSchema({"a"}), std::vector<Tuple>{}, "bad") {
    children_views_.push_back(bogus);
  }
};

// ---- A well-formed plan passes -------------------------------------------

TEST(VerifierTest, ValidPlanPasses) {
  auto join = std::make_unique<HashJoin>(Scan({"a", "b"}), Scan({"b", "c"}));
  BoundCondition cond;
  cond.op = xmlql::Condition::Op::kGt;
  cond.lhs_slot = 0;
  cond.rhs_slot = -1;
  cond.rhs_literal = Value::Int(1);
  auto filter =
      std::make_unique<Filter>(std::move(join), std::vector<BoundCondition>{cond});
  auto sort = std::make_unique<Sort>(
      std::move(filter), std::vector<Sort::Key>{Sort::Key{2, true}});
  auto limit = std::make_unique<Limit>(std::move(sort), 10);
  EXPECT_TRUE(VerifyPlan(*limit).ok());

  auto agg = std::make_unique<HashAggregate>(
      Scan({"k", "v"}), std::vector<std::string>{"k"},
      std::vector<HashAggregate::Spec>{
          {HashAggregate::Fn::kSum, "v", "sum_v"}});
  EXPECT_TRUE(VerifyPlan(*agg).ok());
}

// ---- I1: schema well-formedness ------------------------------------------

TEST(VerifierTest, I1_DuplicateSchemaVariable) {
  MaterializedScan scan(TupleSchema({"a", "a"}), std::vector<Tuple>{}, "dup");
  ExpectViolation(VerifyPlan(scan), "twice");
}

TEST(VerifierTest, I1_EmptySchemaVariableName) {
  MaterializedScan scan(TupleSchema({"a", ""}), std::vector<Tuple>{}, "empty");
  ExpectViolation(VerifyPlan(scan), "empty variable name");
}

// ---- I2/I12: scan column-store well-formedness ---------------------------

TEST(VerifierTest, I2_TupleArityMismatch) {
  std::vector<Tuple> tuples;
  tuples.push_back(Tuple{Binding{Value::Int(1)}});  // 1 binding, arity 2
  MaterializedScan scan(TupleSchema({"a", "b"}), std::move(tuples), "short");
  // The short tuple leaves column 1 ragged; the columnar check reports it.
  ExpectViolation(VerifyPlan(scan), "column 1 has 0 bindings");
}

TEST(VerifierTest, I12_SelectionIndexOutOfBounds) {
  TupleBatch data = TupleBatch::FromTuples(
      1, {Tuple{Binding{Value::Int(1)}}, Tuple{Binding{Value::Int(2)}}});
  data.SetSelection({5});  // only 2 physical rows
  MaterializedScan scan(TupleSchema({"a"}), std::move(data), "oob");
  ExpectViolation(VerifyPlan(scan), "selection index 5");
}

// ---- I3: pass-through schema preservation --------------------------------

TEST(VerifierTest, I3_FilterSchemaDiffersFromChild) {
  LyingFilter filter(Scan({"a", "b"}), TupleSchema({"a"}));
  ExpectViolation(VerifyPlan(filter), "differs from child schema");
}

// ---- I4: condition / sort-key slot ranges --------------------------------

TEST(VerifierTest, I4_FilterConditionSlotOutOfRange) {
  BoundCondition cond;
  cond.lhs_slot = 5;  // child arity is 1
  cond.rhs_slot = -1;
  cond.rhs_literal = Value::Int(1);
  Filter filter(Scan({"a"}), {cond});
  ExpectViolation(VerifyPlan(filter), "slot 5");
}

TEST(VerifierTest, I4_SortKeySlotOutOfRange) {
  Sort sort(Scan({"a"}), {Sort::Key{7, false}});
  ExpectViolation(VerifyPlan(sort), "sort key slot 7");
}

TEST(VerifierTest, I4_NestedLoopConditionSlotOutOfRange) {
  BoundCondition cond;
  cond.lhs_slot = 10;  // output arity is 2
  cond.rhs_slot = -1;
  cond.rhs_literal = Value::Int(1);
  NestedLoopJoin join(Scan({"a"}), Scan({"b"}), {cond});
  ExpectViolation(VerifyPlan(join), "slot 10");
}

TEST(VerifierTest, I4_LikeWithNonStringLiteral) {
  BoundCondition cond;
  cond.op = xmlql::Condition::Op::kLike;
  cond.lhs_slot = 0;
  cond.rhs_slot = -1;
  cond.rhs_literal = Value::Int(42);
  Filter filter(Scan({"a"}), {cond});
  ExpectViolation(VerifyPlan(filter), "LIKE pattern");
}

// ---- I5: hash-join key consistency ---------------------------------------

TEST(VerifierTest, I5_HashJoinWithoutSharedVariables) {
  HashJoin join(Scan({"a"}), Scan({"b"}));
  ExpectViolation(VerifyPlan(join), "without shared variables");
}

// ---- I6: join output schema ----------------------------------------------

TEST(VerifierTest, I6_JoinSchemaNotMergeOfChildren) {
  LyingJoin join(Scan({"a", "b"}), Scan({"b", "c"}), TupleSchema({"a"}));
  ExpectViolation(VerifyPlan(join), "not the merge");
}

// ---- I7: aggregate inputs exist ------------------------------------------

TEST(VerifierTest, I7_GroupVariableMissingFromChild) {
  HashAggregate agg(Scan({"a"}), {"ghost"}, {});
  ExpectViolation(VerifyPlan(agg), "group variable $ghost");
}

TEST(VerifierTest, I7_AggregateInputMissingFromChild) {
  HashAggregate agg(Scan({"a"}), {},
                    {{HashAggregate::Fn::kSum, "ghost", "sum_ghost"}});
  ExpectViolation(VerifyPlan(agg), "aggregate input $ghost");
}

TEST(VerifierTest, I7_CountStarNeedsNoInput) {
  HashAggregate agg(Scan({"a"}), {"a"}, {{HashAggregate::Fn::kCount, "", "n"}});
  EXPECT_TRUE(VerifyPlan(agg).ok());
}

// ---- I8: aggregate output schema -----------------------------------------

TEST(VerifierTest, I8_DuplicateAggregateOutputNames) {
  HashAggregate agg(Scan({"a"}), {},
                    {{HashAggregate::Fn::kCount, "", "n"},
                     {HashAggregate::Fn::kSum, "a", "n"}});
  ExpectViolation(VerifyPlan(agg), "duplicate output");
}

// ---- I9: tree shape ------------------------------------------------------

TEST(VerifierTest, I9_LeafClaimsAChild) {
  auto other = Scan({"x"});
  ExtraChildScan scan(other.get());
  ExpectViolation(VerifyPlan(scan), "expected 0 children");
}

TEST(VerifierTest, I9_NullChildView) {
  ExtraChildScan scan(nullptr);
  ExpectViolation(VerifyPlan(scan), "null child");
}

// ---- I11: batch-size agreement -------------------------------------------

TEST(VerifierTest, I11_BatchSizeDisagreesWithChild) {
  auto scan = Scan({"a"});
  scan->SetBatchSize(7);  // parent Filter keeps the default
  Filter filter(std::move(scan), {});
  ExpectViolation(VerifyPlan(filter), "batch size");
}

TEST(VerifierTest, I11_UniformBatchSizePasses) {
  auto filter = std::make_unique<Filter>(Scan({"a"}), std::vector<BoundCondition>{});
  filter->SetBatchSize(7);  // propagates to the scan
  EXPECT_TRUE(VerifyPlan(*filter).ok());
}

// ---- I10: root covers the template ---------------------------------------

TEST(VerifierTest, I10_RootSchemaMissingRequiredVariable) {
  auto scan = Scan({"a", "b"});
  EXPECT_TRUE(VerifyPlanProducesVariables(*scan, {"a", "b"}).ok());
  ExpectViolation(VerifyPlanProducesVariables(*scan, {"z"}),
                  "does not produce $z");
}

}  // namespace
}  // namespace algebra
}  // namespace nimble
