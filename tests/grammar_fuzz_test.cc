#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "query_generator.h"

namespace nimble {
namespace core {
namespace {

using testgen::FuzzIters;
using testgen::FuzzSeed;
using testgen::GenProgram;
using testgen::Mutate;

/// Deterministic grammar fuzzer for the XML-QL compiler (ISSUE 5 tentpole).
///
/// Generates thousands of programs — ~70% grammar-derived valid XML-QL,
/// ~30% random text mutations of those — and runs each through an engine
/// with the full static-analysis pass enabled. The closed-world property
/// under test: NO input, however mangled, may surface StatusCode::kInternal.
/// kInternal is reserved for verifier violations (a compiler bug) and
/// engine logic errors; every fuzzed input must either execute or fail
/// with a user-class code (parse/type/not-found/…).
///
/// The program generator and fixture live in tests/query_generator.h,
/// shared with the batch/row differential test so any repro case replays
/// through both harnesses. Seeded via common/rng; knobs: NIMBLE_FUZZ_ITERS
/// (default 5000), NIMBLE_FUZZ_SEED.
class GrammarFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fixture_ = testgen::MakeGeneratorFixture();
    ASSERT_NE(fixture_.catalog, nullptr) << "generator fixture setup failed";

    EngineOptions opts;
    opts.verify_plans = true;
    opts.plan_cache_entries = 8;  // small: force evictions + revalidation
    engine_ =
        std::make_unique<IntegrationEngine>(fixture_.catalog.get(), opts);
  }

  testgen::GeneratorFixture fixture_;
  std::unique_ptr<IntegrationEngine> engine_;
};

TEST_F(GrammarFuzzTest, NoInputReachesInternalError) {
  Rng rng(FuzzSeed());
  const size_t iters = FuzzIters(/*fallback=*/5000);
  size_t ok_count = 0;
  size_t rejected = 0;
  std::string previous;

  for (size_t i = 0; i < iters; ++i) {
    std::string text;
    if (!previous.empty() && rng.Bernoulli(0.1)) {
      text = previous;  // repeat: exercises the plan-cache-hit verify path
    } else {
      text = GenProgram(rng);
      if (rng.Bernoulli(0.3)) text = Mutate(rng, text);
    }

    if (std::getenv("NIMBLE_FUZZ_VERBOSE") != nullptr) {
      fprintf(stderr, "--- iter %zu ---\n%s\n", i, text.c_str());
    }
    Result<QueryResult> r = engine_->ExecuteText(text);
    if (r.ok()) {
      ++ok_count;
    } else {
      ++rejected;
      ASSERT_NE(r.status().code(), StatusCode::kInternal)
          << "verifier escape at iteration " << i << " (seed " << FuzzSeed()
          << "):\n" << r.status().ToString() << "\nquery:\n" << text;
    }
    previous = std::move(text);
  }

  // The generator must actually produce runnable programs, or the property
  // is vacuous.
  EXPECT_GT(ok_count, iters / 10)
      << "only " << ok_count << "/" << iters << " fuzzed programs executed";
  // And the mutator must actually produce rejects.
  EXPECT_GT(rejected, 0u);
}

}  // namespace
}  // namespace core
}  // namespace nimble
