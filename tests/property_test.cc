// Randomized (seeded, deterministic) property sweeps across modules:
// invariants that must hold for *any* input, exercised on generated data.

#include <gtest/gtest.h>

#include <set>

#include "cleaning/merge_purge.h"
#include "cleaning/similarity.h"
#include "common/rng.h"
#include "relational/database.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace nimble {
namespace {

// ---- XML: random trees round-trip through serialize/parse ---------------------

NodePtr RandomTree(Rng* rng, int depth) {
  NodePtr node = Node::Element("e" + rng->RandomWord(3));
  size_t attrs = rng->Uniform(3);
  for (size_t a = 0; a < attrs; ++a) {
    node->SetAttribute("a" + std::to_string(a),
                       rng->Bernoulli(0.5)
                           ? Value::Int(rng->UniformInt(-100, 100))
                           : Value::String(rng->RandomWord(5)));
  }
  size_t children = depth > 0 ? rng->Uniform(4) : 0;
  bool last_was_text = false;
  for (size_t c = 0; c < children; ++c) {
    // Adjacent text nodes coalesce on reparse (XML has no boundary between
    // them), so never generate two in a row.
    if (!last_was_text && rng->Bernoulli(0.3)) {
      node->AddChild(Node::Text(Value::String(rng->RandomWord(6))));
      last_was_text = true;
    } else {
      node->AddChild(RandomTree(rng, depth - 1));
      last_was_text = false;
    }
  }
  return node;
}

class XmlRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(XmlRoundTripProperty, SerializeParseIsIdentity) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  NodePtr original = RandomTree(&rng, 4);
  std::string xml = ToXml(*original);
  Result<NodePtr> reparsed = ParseXml(xml);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << xml;
  EXPECT_TRUE(original->DeepEquals(**reparsed)) << xml;
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTripProperty,
                         ::testing::Range(1, 21));

// ---- SQL: indexed and unindexed execution agree --------------------------------

class IndexEquivalenceProperty : public ::testing::TestWithParam<int> {};

TEST_P(IndexEquivalenceProperty, SameAnswerWithAndWithoutIndex) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  Rng rng(seed);
  auto build = [&](bool with_index) {
    auto db = std::make_unique<relational::Database>("p");
    (void)db->Execute("CREATE TABLE t (k INT, v INT)");
    relational::Table* table = db->GetTable("t");
    Rng data_rng(seed);  // same data either way
    for (int i = 0; i < 300; ++i) {
      (void)table->Insert({Value::Int(data_rng.UniformInt(0, 40)),
                           Value::Int(data_rng.UniformInt(-50, 50))});
    }
    if (with_index) (void)table->CreateIndex("idx_k", "k");
    return db;
  };
  auto indexed = build(true);
  auto plain = build(false);

  // Random conjunctive predicates over k.
  for (int q = 0; q < 10; ++q) {
    int64_t a = rng.UniformInt(0, 40);
    int64_t b = rng.UniformInt(0, 40);
    const char* shapes[] = {
        "SELECT v FROM t WHERE k = %lld ORDER BY v",
        "SELECT v FROM t WHERE k >= %lld AND k < %lld ORDER BY v",
        "SELECT v FROM t WHERE k IN (%lld, %lld) ORDER BY v",
    };
    char sql[256];
    int shape = static_cast<int>(rng.Uniform(3));
    if (shape == 0) {
      std::snprintf(sql, sizeof(sql), shapes[0], static_cast<long long>(a));
    } else {
      std::snprintf(sql, sizeof(sql), shapes[shape],
                    static_cast<long long>(std::min(a, b)),
                    static_cast<long long>(std::max(a, b) + 1));
    }
    Result<relational::ResultSet> with = indexed->Execute(sql);
    Result<relational::ResultSet> without = plain->Execute(sql);
    ASSERT_TRUE(with.ok()) << sql << ": " << with.status().ToString();
    ASSERT_TRUE(without.ok()) << sql;
    ASSERT_EQ(with->rows.size(), without->rows.size()) << sql;
    for (size_t r = 0; r < with->rows.size(); ++r) {
      EXPECT_EQ(with->rows[r][0], without->rows[r][0]) << sql;
    }
    if (shape != 1 || true) {
      // Index usage is an implementation detail, but when an index exists
      // on the probed column, the executor should use it.
      EXPECT_TRUE(with->stats.used_index) << sql;
      EXPECT_FALSE(without->stats.used_index) << sql;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexEquivalenceProperty,
                         ::testing::Range(1, 11));

// ---- Merge/purge: clusters partition the input ----------------------------------

class ClusterPartitionProperty : public ::testing::TestWithParam<int> {};

TEST_P(ClusterPartitionProperty, EveryRecordInExactlyOneCluster) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  Rng rng(seed);
  std::vector<cleaning::KeyedRecord> records;
  for (int i = 0; i < 120; ++i) {
    cleaning::KeyedRecord r;
    r.id = "r" + std::to_string(i);
    // Small name universe → plenty of matches and near-matches.
    r.fields["name"] =
        Value::String(rng.RandomWord(1 + rng.Uniform(3)));
    records.push_back(std::move(r));
  }
  std::vector<cleaning::MatchRule> rules;
  rules.push_back({"name", cleaning::LevenshteinSimilarity, 1.0, 0.0});
  cleaning::RecordMatcher matcher(std::move(rules), 0.5, 0.8);

  for (cleaning::MatchStrategy strategy :
       {cleaning::MatchStrategy::kNaivePairwise,
        cleaning::MatchStrategy::kSortedNeighbourhood,
        cleaning::MatchStrategy::kMultiPassSortedNeighbourhood}) {
    cleaning::MergePurgeOptions options;
    options.strategy = strategy;
    options.window = 4;
    options.trap_exceptions = false;
    Result<cleaning::MergePurgeResult> result =
        cleaning::MergePurge(records, matcher, options);
    ASSERT_TRUE(result.ok());
    std::set<size_t> seen;
    for (const auto& cluster : result->clusters) {
      EXPECT_FALSE(cluster.empty());
      for (size_t index : cluster) {
        EXPECT_TRUE(seen.insert(index).second)
            << "record " << index << " appears in two clusters";
      }
    }
    EXPECT_EQ(seen.size(), records.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterPartitionProperty,
                         ::testing::Range(1, 9));

// ---- Similarity: metric sanity ---------------------------------------------------

class SimilarityProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimilarityProperty, BoundsSymmetryIdentity) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int i = 0; i < 50; ++i) {
    std::string a = rng.RandomWord(rng.Uniform(12));
    std::string b = rng.RandomWord(rng.Uniform(12));
    for (auto fn : {cleaning::LevenshteinSimilarity,
                    cleaning::JaroWinklerSimilarity,
                    cleaning::TokenJaccardSimilarity}) {
      double ab = fn(a, b);
      double ba = fn(b, a);
      EXPECT_GE(ab, 0.0);
      EXPECT_LE(ab, 1.0);
      EXPECT_DOUBLE_EQ(ab, ba) << a << " / " << b;
      EXPECT_DOUBLE_EQ(fn(a, a), 1.0) << a;
    }
    // Soundex is deterministic and 4 chars.
    EXPECT_EQ(cleaning::Soundex(a).size(), a.empty() ? 4u : 4u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimilarityProperty, ::testing::Range(1, 6));

// ---- Values: Infer/ToString round-trip -------------------------------------------

class ValueRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(ValueRoundTripProperty, InferToStringStable) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int i = 0; i < 100; ++i) {
    Value v;
    switch (rng.Uniform(4)) {
      case 0:
        v = Value::Int(rng.UniformInt(-1000000, 1000000));
        break;
      case 1:
        v = Value::Double(static_cast<double>(rng.UniformInt(-1000, 1000)) +
                          0.25);
        break;
      case 2:
        v = Value::Bool(rng.Bernoulli(0.5));
        break;
      default:
        v = Value::String(rng.RandomWord(1 + rng.Uniform(10)));
        break;
    }
    EXPECT_EQ(Value::Infer(v.ToString()), v) << v.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueRoundTripProperty,
                         ::testing::Range(1, 6));

}  // namespace
}  // namespace nimble
