// Negative compile check for the Clang thread-safety annotations.
//
// This file is NOT part of any test binary. It is built only with
// -DNIMBLE_TSA_NEGATIVE_TEST=ON (see tests/CMakeLists.txt), and every
// function below contains a deliberate locking mistake that the analysis
// must reject. tools/lint.sh builds this target under Clang with
// -Werror=thread-safety and asserts that the build FAILS — proving the
// annotation machinery is actually wired up, not silently compiled away.
//
// If this file ever compiles cleanly under Clang, the thread-safety gate
// is broken.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace nimble {
namespace {

class Account {
 public:
  // VIOLATION 1: reads a guarded member without holding the lock.
  int UnguardedRead() { return balance_; }

  // VIOLATION 2: writes a guarded member without holding the lock.
  void UnguardedWrite(int amount) { balance_ = amount; }

  // VIOLATION 3: acquires but never releases (missing unlock on return).
  void LeakedLock() NIMBLE_EXCLUDES(mu_) {
    mu_.Lock();
    balance_ += 1;
  }

  // VIOLATION 4: calls a REQUIRES method without the capability.
  void MissingRequires() { AddLocked(1); }

 private:
  void AddLocked(int amount) NIMBLE_REQUIRES(mu_) { balance_ += amount; }

  Mutex mu_{LockRank::kPlanCache, "tsa_negative.account"};
  int balance_ NIMBLE_GUARDED_BY(mu_) = 0;
};

// Anchor so the class is ODR-used and the violations are analysed.
void Touch() {
  Account account;
  account.UnguardedRead();
  account.UnguardedWrite(1);
  account.LeakedLock();
  account.MissingRequires();
}

}  // namespace
}  // namespace nimble
