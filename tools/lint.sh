#!/usr/bin/env bash
# Static-analysis gate: Clang thread-safety analysis + negative compile
# check + clang-tidy + a short deterministic run of the XML-QL grammar
# fuzzer + nimble-lint (the project-specific whole-tree analyzer,
# DESIGN.md §2j). CI runs this in the lint job; run it locally before
# sending a review.
#
# Gates 1-3 need clang/clang-tidy on PATH — when they are missing those
# gates skip loudly. Gates 4-5 are toolchain-agnostic (nimble-lint builds
# with whatever compiler the project builds with) and always run.
#
# Usage: tools/lint.sh [build-dir]   (default: build-lint)
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build-lint}"

CXX="${CLANG_CXX:-clang++}"
TIDY="${CLANG_TIDY:-clang-tidy}"

fail=0
have_clang=1
if ! command -v "$CXX" >/dev/null 2>&1; then
  have_clang=0
fi

if [ "$have_clang" -eq 1 ]; then
  # ---- 1. Thread-safety analysis: full build, findings are errors --------
  echo "== [1/5] clang -Wthread-safety -Werror build =="
  cmake -S "$ROOT" -B "$BUILD_DIR" \
        -DCMAKE_CXX_COMPILER="$CXX" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DNIMBLE_WERROR_THREAD_SAFETY=ON >/dev/null || exit 1
  if ! cmake --build "$BUILD_DIR" -j "$(nproc)"; then
    echo "lint.sh: FAIL — thread-safety analysis reported errors" >&2
    fail=1
  fi

  # ---- 2. Negative compile check: the violations file MUST fail ----------
  echo "== [2/5] thread-safety negative compile check (expect failure) =="
  NEG_DIR="$BUILD_DIR-tsa-negative"
  cmake -S "$ROOT" -B "$NEG_DIR" \
        -DCMAKE_CXX_COMPILER="$CXX" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DNIMBLE_WERROR_THREAD_SAFETY=ON \
        -DNIMBLE_TSA_NEGATIVE_TEST=ON >/dev/null || exit 1
  if cmake --build "$NEG_DIR" --target tsa_negative_check -j "$(nproc)" \
        >/dev/null 2>&1; then
    echo "lint.sh: FAIL — tests/tsa_negative_check.cc compiled cleanly;" \
         "the thread-safety gate is not catching violations" >&2
    fail=1
  else
    echo "OK — negative check rejected as expected"
  fi

  # ---- 3. clang-tidy over src/ -------------------------------------------
  echo "== [3/5] clang-tidy =="
  if ! command -v "$TIDY" >/dev/null 2>&1; then
    echo "lint.sh: clang-tidy not found — skipping step 3" >&2
  else
    # compile_commands.json was exported by the step-1 configure.
    mapfile -t sources < <(find "$ROOT/src" -name '*.cc' | sort)
    if ! "$TIDY" -p "$BUILD_DIR" --quiet "${sources[@]}"; then
      echo "lint.sh: FAIL — clang-tidy reported errors" >&2
      fail=1
    fi
  fi
else
  echo "lint.sh: SKIPPED gates 1-3 — $CXX not found (install clang to run" \
       "the thread-safety gates locally; CI always runs them)" >&2
  # Gates 4-5 still need a configured build with compile_commands.json:
  # fall back to the default toolchain.
  echo "== [-] configuring $BUILD_DIR with the default compiler =="
  cmake -S "$ROOT" -B "$BUILD_DIR" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null || exit 1
fi

# ---- 4. Grammar fuzzer: build + short deterministic smoke ---------------
echo "== [4/5] XML-QL grammar fuzzer smoke =="
if ! cmake --build "$BUILD_DIR" --target grammar_fuzz_test -j "$(nproc)"; then
  echo "lint.sh: FAIL — grammar_fuzz_test does not build" >&2
  fail=1
elif ! NIMBLE_FUZZ_ITERS=200 "$BUILD_DIR/tests/grammar_fuzz_test" \
      --gtest_filter='GrammarFuzzTest.NoInputReachesInternalError' \
      --gtest_brief=1; then
  echo "lint.sh: FAIL — grammar fuzzer smoke found a verifier escape" >&2
  fail=1
fi

# ---- 5. nimble-lint: whole-tree contract analysis -----------------------
# Self-contained (no LibTooling dependency), so this gate can never be
# skipped for want of clang dev headers. Zero unsuppressed findings over
# src/ tools/ tests/ bench/ examples/ is the bar. The per-file phase runs
# in parallel; output (per-rule counts, wall time) is deterministic at any
# job count.
echo "== [5/5] nimble-lint whole-tree =="
if ! cmake --build "$BUILD_DIR" --target nimble-lint -j "$(nproc)"; then
  echo "lint.sh: FAIL — nimble-lint does not build" >&2
  fail=1
elif ! (cd "$ROOT" && "$BUILD_DIR/tools/nimble-lint" --build "$BUILD_DIR" \
        --all --jobs "$(nproc)"); then
  echo "lint.sh: FAIL — nimble-lint reported unsuppressed findings" >&2
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "lint.sh: FAILED" >&2
  exit 1
fi
echo "lint.sh: all gates passed"
