// nimble-lint driver — see nimble_lint.h for the rule catalog and
// DESIGN.md §2j for the architecture. Discovers the translation units from
// the compile_commands.json the build exports, adds every header under the
// scanned directories, and exits nonzero when any unsuppressed finding
// remains. Typical invocations:
//
//   nimble-lint --build build                 # src/ + tools/ (production)
//   nimble-lint --build build --all           # + tests/ bench/ examples/
//   nimble-lint --rule mutex-rank src/foo.cc  # one rule, explicit files
//   nimble-lint --build build --all --jobs 8  # parallel per-file phase
//
// CI and tools/lint.sh run `--all --jobs $(nproc)` with the checked-in
// suppression list — the gate is zero unsuppressed findings over the full
// tree. The per-file phase (lex, CFG, local rules) fans out over
// common/thread_pool; results merge in sorted path order, so the output is
// byte-identical at any --jobs value.

#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "tools/nimble_lint.h"

namespace {

namespace fs = std::filesystem;

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Minimal extraction of "file" values from compile_commands.json. The
/// format is machine-generated and flat; a full JSON parser buys nothing.
std::vector<std::string> CompileDbFiles(const std::string& json) {
  std::vector<std::string> files;
  size_t pos = 0;
  while ((pos = json.find("\"file\"", pos)) != std::string::npos) {
    pos = json.find('"', pos + 6 + 1);  // opening quote of the value
    size_t colon = json.rfind(':', pos);
    if (colon == std::string::npos) break;
    size_t end = pos + 1;
    std::string value;
    while (end < json.size() && json[end] != '"') {
      if (json[end] == '\\' && end + 1 < json.size()) ++end;
      value += json[end++];
    }
    files.push_back(value);
    pos = end + 1;
  }
  return files;
}

std::string RelativeTo(const fs::path& root, const fs::path& p) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  if (ec || rel.empty() || *rel.begin() == "..") return p.generic_string();
  return rel.generic_string();
}

void Usage() {
  std::cerr <<
      "usage: nimble-lint [options] [files...]\n"
      "  --build <dir>        build dir with compile_commands.json\n"
      "                       (default: first of build, build-lint,\n"
      "                       build-rel, build-asan with one)\n"
      "  --root <dir>         repository root (default: cwd)\n"
      "  --all                also scan tests/, bench/, examples/\n"
      "  --jobs <n>           analyze n files in parallel (default 1);\n"
      "                       output is deterministic at any value\n"
      "  --rule <id|name>     enable only this rule (repeatable)\n"
      "  --suppressions <f>   suppression list (default:\n"
      "                       tools/nimble_lint_suppressions.txt)\n"
      "  --no-suppressions    ignore every suppression mechanism\n"
      "  --list-rules         print the rule catalog and exit\n"
      "Explicit file arguments replace the compile_commands discovery.\n";
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string build_dir;
  std::string suppressions_path;
  bool scan_all = false;
  bool no_suppressions = false;
  int jobs = 1;
  std::set<std::string> rules;
  std::vector<std::string> explicit_files;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "nimble-lint: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--build") {
      build_dir = next();
    } else if (arg == "--root") {
      root = fs::path(next());
    } else if (arg == "--all") {
      scan_all = true;
    } else if (arg == "--rule") {
      std::string r = next();
      if (nimble_lint::ResolveRule(r).empty()) {
        std::cerr << "nimble-lint: unknown rule '" << r << "'\n";
        return 2;
      }
      rules.insert(r);
    } else if (arg == "--jobs") {
      jobs = std::stoi(next());
      if (jobs < 1) jobs = 1;
    } else if (arg == "--suppressions") {
      suppressions_path = next();
    } else if (arg == "--no-suppressions") {
      no_suppressions = true;
    } else if (arg == "--list-rules") {
      std::cout
          << "NL001 raw-sync             raw std:: sync primitives outside "
             "common/mutex.h\n"
          << "NL002 mutex-rank           Mutex construction without a "
             "registered LockRank (+ DESIGN.md table sync)\n"
          << "NL003 blocking-under-lock  blocking calls in a scope holding "
             "a mutex\n"
          << "NL004 guarded-member       unannotated mutable members of "
             "mutex-owning classes\n"
          << "NL005 frozen-mutation      mutation of frozen snapshots / "
             "const-casts around Freeze()\n"
          << "NL006 cancellation-responsiveness\n"
             "                           unbounded loops in operator "
             "entry points with a\n"
             "                           path that never reaches a "
             "deadline/cancel poll\n"
          << "NL007 status-path          Status/Result values dropped on "
             "some path, and\n"
             "                           Status-returning functions that "
             "can fall off the end\n"
          << "NL008 use-after-move       reads of a moved-from value "
             "before reassignment\n"
             "                           (loop-carried moves included)\n"
          << "NL009 stale-suppression    suppression-list entries and "
             "inline directives\n"
             "                           that no longer suppress anything\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "nimble-lint: unknown option " << arg << "\n";
      Usage();
      return 2;
    } else {
      explicit_files.push_back(arg);
    }
  }

  nimble_lint::LintOptions options;
  for (const std::string& r : rules) options.enabled_rules.insert(r);

  // The contract registries the rules check against.
  const fs::path rank_header = root / "src" / "common" / "lock_rank.h";
  if (fs::exists(rank_header)) {
    options.known_ranks =
        nimble_lint::ParseLockRankRegistry(ReadFile(rank_header));
    options.lock_rank_path = RelativeTo(root, rank_header);
  } else {
    std::cerr << "nimble-lint: warning: " << rank_header.generic_string()
              << " not found; rank registry checks are off\n";
  }
  const fs::path design = root / "DESIGN.md";
  if (fs::exists(design)) {
    options.documented_ranks =
        nimble_lint::ParseDocumentedRanks(ReadFile(design));
  }

  if (no_suppressions) {
    options.honor_suppressions = false;
  } else {
    fs::path sup = suppressions_path.empty()
                       ? root / "tools" / "nimble_lint_suppressions.txt"
                       : fs::path(suppressions_path);
    if (fs::exists(sup)) {
      options.suppressions =
          nimble_lint::ParseSuppressionList(ReadFile(sup));
      options.suppressions_path = RelativeTo(root, sup);
    } else if (!suppressions_path.empty()) {
      std::cerr << "nimble-lint: suppression list " << sup.generic_string()
                << " not found\n";
      return 2;
    }
  }

  // ---- File discovery -----------------------------------------------------
  std::set<std::string> file_set;  // repo-relative, sorted
  if (!explicit_files.empty()) {
    for (const std::string& f : explicit_files) {
      file_set.insert(RelativeTo(root, fs::absolute(f)));
    }
  } else {
    if (build_dir.empty()) {
      for (const char* candidate :
           {"build", "build-lint", "build-rel", "build-asan", "build-tsan"}) {
        if (fs::exists(root / candidate / "compile_commands.json")) {
          build_dir = (root / candidate).generic_string();
          break;
        }
      }
    }
    const fs::path compdb = fs::path(build_dir) / "compile_commands.json";
    if (build_dir.empty() || !fs::exists(compdb)) {
      std::cerr << "nimble-lint: no compile_commands.json found (configure "
                   "a build dir first, or pass --build <dir>)\n";
      return 2;
    }
    std::vector<std::string> scan_dirs = {"src", "tools"};
    if (scan_all) {
      scan_dirs.push_back("tests");
      scan_dirs.push_back("bench");
      scan_dirs.push_back("examples");
    }
    auto in_scope = [&](const std::string& rel) {
      for (const std::string& dir : scan_dirs) {
        if (rel.rfind(dir + "/", 0) == 0) return true;
      }
      return false;
    };
    // Translation units from the build's own ground truth...
    for (const std::string& f : CompileDbFiles(ReadFile(compdb))) {
      std::string rel = RelativeTo(root, fs::path(f));
      if (in_scope(rel) && fs::exists(root / rel)) file_set.insert(rel);
    }
    // ...plus headers, which compile_commands.json never lists.
    for (const std::string& dir : scan_dirs) {
      if (!fs::exists(root / dir)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(root / dir)) {
        if (!entry.is_regular_file()) continue;
        if (entry.path().extension() == ".h") {
          file_set.insert(RelativeTo(root, entry.path()));
        }
      }
    }
  }

  if (file_set.empty()) {
    std::cerr << "nimble-lint: nothing to scan\n";
    return 2;
  }

  // ---- Analysis -----------------------------------------------------------
  const auto t0 = std::chrono::steady_clock::now();
  nimble_lint::Linter linter(std::move(options));
  const std::vector<std::string> rel_files(file_set.begin(), file_set.end());
  if (jobs <= 1) {
    for (const std::string& rel : rel_files) {
      linter.AddFile(rel, ReadFile(root / rel));
    }
  } else {
    // Per-file analysis is pure and thread-safe; fan it out, then merge the
    // results in sorted path order so the output never depends on --jobs.
    std::vector<std::unique_ptr<nimble_lint::FileAnalysis>> results(
        rel_files.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(rel_files.size());
    for (size_t i = 0; i < rel_files.size(); ++i) {
      tasks.push_back([&, i] {
        results[i] = linter.Analyze(rel_files[i], ReadFile(root / rel_files[i]));
      });
    }
    nimble::ThreadPool pool(static_cast<size_t>(jobs));
    pool.RunParallel(std::move(tasks));
    for (auto& analysis : results) linter.Merge(std::move(analysis));
  }
  linter.Finish();
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count();

  int suppressed = 0;
  int unsuppressed = 0;
  std::map<std::string, int> per_rule;
  for (const nimble_lint::Finding& f : linter.findings()) {
    if (f.suppressed) {
      ++suppressed;
      continue;
    }
    ++unsuppressed;
    ++per_rule[f.rule];
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "/"
              << f.rule_name << "] " << f.message << "\n";
  }
  std::cout << "nimble-lint: scanned " << file_set.size() << " files in "
            << elapsed_ms << " ms (jobs=" << jobs << "): " << unsuppressed
            << " finding(s), " << suppressed << " suppressed\n";
  std::cout << "nimble-lint: per-rule:";
  for (const char* id : {"NL001", "NL002", "NL003", "NL004", "NL005", "NL006",
                         "NL007", "NL008", "NL009"}) {
    auto it = per_rule.find(id);
    std::cout << " " << id << "=" << (it == per_rule.end() ? 0 : it->second);
  }
  std::cout << "\n";
  return unsuppressed == 0 ? 0 : 1;
}
