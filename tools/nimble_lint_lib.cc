#include "tools/nimble_lint.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

/// Implementation of the nimble-lint analysis (see nimble_lint.h for the
/// rule catalog). Pipeline per file (Linter::Analyze — pure, runs on a
/// pool thread):
///
///   1. Lex: a real C++ token scanner (comments, string/char literals, raw
///      strings, preprocessor lines, identifiers, punctuation), each token
///      stamped with its line. Comments are collected per line separately —
///      they carry the suppression directives.
///   2. Lexical rules (NL001–NL005): token passes with lexical scope
///      tracking (brace depth, RAII-guard lifetimes, class bodies).
///   3. Function finder + per-function CFG (CfgBuilder): statement-level
///      control-flow graph over the token stream — if/else, while, for,
///      range-for, do-while, switch, break/continue, return/throw. The
///      forward fixpoint framework on top of it runs NL007 (reaching
///      Status definitions) and NL008 (move taint), and records the
///      responsiveness facts (loops, calls, polls) that NL006 checks in
///      Finish() once every translation unit's callee summaries merged.
///   4. Suppression resolution: inline directives, file directives, and
///      the checked-in list. Every resolution is recorded so Finish() can
///      flag the suppressions that earned nothing (NL009).
///
/// Cross-file state (NL002 member declarations awaiting a constructor
/// initializer in a sibling .cc, the rank doc-sync check, NL006 with
/// merged one-level callee summaries, NL009 staleness) resolves in
/// Finish().
namespace nimble_lint {
namespace {

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

struct RuleInfo {
  const char* id;
  const char* name;
  /// Extra aliases accepted in inline directives.
  const char* alias;
};

constexpr RuleInfo kRules[] = {
    {"NL001", "raw-sync", ""},
    {"NL002", "mutex-rank", ""},
    {"NL003", "blocking-under-lock", "blocking"},
    {"NL004", "guarded-member", "unguarded"},
    {"NL005", "frozen-mutation", "frozen"},
    {"NL006", "cancellation-responsiveness", "responsive"},
    {"NL007", "status-path", "status"},
    {"NL008", "use-after-move", "moved"},
    {"NL009", "stale-suppression", "stale"},
};

std::string RuleName(const std::string& id) {
  for (const RuleInfo& r : kRules) {
    if (id == r.id) return r.name;
  }
  return "";
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokKind { kIdent, kNumber, kString, kChar, kPunct };

struct Tok {
  TokKind kind;
  std::string text;
  int line;
};

struct LexedFile {
  std::vector<Tok> toks;
  /// line number -> comment texts that *end* on that line (a multi-line
  /// block comment registers on every line it spans, so directives inside
  /// it attach where they are written).
  std::map<int, std::vector<std::string>> comments;
  std::vector<std::string> lines;  ///< raw source, for suppression matching
};

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

LexedFile Lex(const std::string& src) {
  LexedFile out;
  {
    std::string cur;
    for (char c : src) {
      if (c == '\n') {
        out.lines.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
    out.lines.push_back(cur);
  }

  size_t i = 0;
  const size_t n = src.size();
  int line = 1;
  auto advance = [&](size_t k) {
    for (size_t j = 0; j < k && i < n; ++j, ++i) {
      if (src[i] == '\n') ++line;
    }
  };

  while (i < n) {
    char c = src[i];
    if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      size_t start = i;
      while (i < n && src[i] != '\n') ++i;
      out.comments[line].push_back(src.substr(start, i - start));
      continue;  // newline handled by the loop
    }
    // Block comment: register its text on every line it spans.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      size_t start = i;
      int first_line = line;
      advance(2);
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) advance(1);
      advance(2);
      std::string text = src.substr(start, i - start);
      for (int l = first_line; l <= line; ++l) out.comments[l].push_back(text);
      continue;
    }
    // Preprocessor directive: skip whole (continued) line. Only when `#`
    // starts the line (ignoring whitespace) — otherwise it's a stray token.
    if (c == '#') {
      bool line_start = true;
      for (size_t j = i; j-- > 0;) {
        if (src[j] == '\n') break;
        if (!std::isspace(static_cast<unsigned char>(src[j]))) {
          line_start = false;
          break;
        }
      }
      if (line_start) {
        while (i < n) {
          if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
            advance(2);
            continue;
          }
          if (src[i] == '\n') break;
          // Comments may open inside a directive; treat // as end-of-logic.
          if (src[i] == '/' && i + 1 < n && src[i + 1] == '/') {
            while (i < n && src[i] != '\n') ++i;
            break;
          }
          advance(1);
        }
        continue;
      }
      out.toks.push_back({TokKind::kPunct, "#", line});
      advance(1);
      continue;
    }
    // Raw string literal: R"delim( ... )delim"
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      size_t d = i + 2;
      std::string delim;
      while (d < n && src[d] != '(') delim += src[d++];
      std::string closer = ")" + delim + "\"";
      size_t end = src.find(closer, d);
      int tok_line = line;
      if (end == std::string::npos) {
        advance(n - i);
        out.toks.push_back({TokKind::kString, "<raw>", tok_line});
        continue;
      }
      advance(end + closer.size() - i);
      out.toks.push_back({TokKind::kString, "<raw>", tok_line});
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      char quote = c;
      int tok_line = line;
      advance(1);
      std::string text;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) {
          text += src[i];
          advance(1);
        }
        if (i < n) {
          text += src[i];
          advance(1);
        }
      }
      advance(1);
      out.toks.push_back(
          {quote == '"' ? TokKind::kString : TokKind::kChar, text, tok_line});
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      int tok_line = line;
      while (i < n && IsIdentChar(src[i])) ++i;
      out.toks.push_back(
          {TokKind::kIdent, src.substr(start, i - start), tok_line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      int tok_line = line;
      while (i < n && (IsIdentChar(src[i]) || src[i] == '.')) ++i;
      out.toks.push_back(
          {TokKind::kNumber, src.substr(start, i - start), tok_line});
      continue;
    }
    // Multi-char punctuation we care about: :: -> (others single).
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      out.toks.push_back({TokKind::kPunct, "::", line});
      advance(2);
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      out.toks.push_back({TokKind::kPunct, "->", line});
      advance(2);
      continue;
    }
    out.toks.push_back({TokKind::kPunct, std::string(1, c), line});
    advance(1);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Small helpers over the token stream
// ---------------------------------------------------------------------------

bool Is(const std::vector<Tok>& t, size_t i, const char* text) {
  return i < t.size() && t[i].text == text;
}

/// Index of the matching closer for the opener at `open` (returns t.size()
/// when unbalanced).
size_t MatchForward(const std::vector<Tok>& t, size_t open,
                    const char* open_text, const char* close_text) {
  int depth = 0;
  for (size_t i = open; i < t.size(); ++i) {
    if (t[i].text == open_text) ++depth;
    if (t[i].text == close_text && --depth == 0) return i;
  }
  return t.size();
}

std::string JoinTokens(const std::vector<Tok>& t, size_t begin, size_t end) {
  std::string out;
  for (size_t i = begin; i < end && i < t.size(); ++i) out += t[i].text;
  return out;
}

/// Walks backwards from `i` (exclusive) over a postfix expression
/// (identifiers, ::, ., ->, balanced () and []) and returns its text — the
/// receiver of a member call, e.g. "flight->cv" for `flight->cv.Wait(...)`.
std::string ReceiverBefore(const std::vector<Tok>& t, size_t i) {
  std::vector<std::string> parts;
  size_t j = i;
  bool expect_primary = true;  // next (leftwards) should be a name or ()/[]
  while (j > 0) {
    const Tok& tok = t[j - 1];
    if (expect_primary) {
      if (tok.text == ")" || tok.text == "]") {
        const char* open = tok.text == ")" ? "(" : "[";
        int depth = 0;
        size_t k = j;
        while (k > 0) {
          if (t[k - 1].text == tok.text) ++depth;
          if (t[k - 1].text == open && --depth == 0) break;
          --k;
        }
        if (k == 0) break;
        for (size_t m = k - 1; m < j; ++m) parts.push_back(t[m].text);
        std::reverse(parts.end() - (j - (k - 1)), parts.end());
        j = k - 1;
        expect_primary = false;
        continue;
      }
      if (tok.kind == TokKind::kIdent) {
        parts.push_back(tok.text);
        --j;
        expect_primary = false;
        continue;
      }
      break;
    }
    if (tok.text == "." || tok.text == "->" || tok.text == "::") {
      parts.push_back(tok.text);
      --j;
      expect_primary = true;
      continue;
    }
    break;
  }
  std::reverse(parts.begin(), parts.end());
  std::string out;
  for (const std::string& p : parts) out += p;
  return out;
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string FileStem(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  size_t dot = base.find_last_of('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

/// Keywords that can precede `(` without being a call / function name.
bool IsControlKeyword(const std::string& s) {
  static const std::set<std::string> kw = {
      "if",       "for",      "while",   "switch",   "catch",  "return",
      "sizeof",   "alignof",  "decltype", "noexcept", "new",    "delete",
      "operator", "throw",    "static_assert", "co_return", "co_await",
      "co_yield", "typeid",   "else",    "do",       "case",   "default",
  };
  return kw.count(s) > 0;
}

/// Keywords that cannot be the *type* of a same-name redeclaration (NL008
/// declaration-kill) — `return run;` must not look like `ShardRun run;`.
bool IsCppKeyword(const std::string& s) {
  static const std::set<std::string> kw = {
      "return", "if",     "else",   "while",  "for",      "do",      "switch",
      "case",   "break",  "continue", "goto", "new",      "delete",  "throw",
      "const",  "static", "public", "private", "protected", "using", "typedef",
      "struct", "class",  "enum",   "union",  "template", "typename", "sizeof",
      "co_return", "co_await", "co_yield",
  };
  return kw.count(s) > 0;
}

}  // namespace
// ---------------------------------------------------------------------------
// Internal state shared between the per-file phase and Finish(). Named (not
// anonymous) namespace: these are member types of the pimpl structs declared
// in the header, and anonymous-namespace members there would trip GCC's
// -Wsubobject-linkage.
// ---------------------------------------------------------------------------

namespace detail {

/// Per-file data retained for Finish()-stage suppression resolution.
struct FileData {
  std::map<int, std::vector<std::string>> comments;
  std::vector<std::string> lines;
  /// rule id -> reason, from a file-scope directive comment.
  std::map<std::string, std::string> file_suppressions;
};

/// Which suppressions earned their keep (consumed by the NL009 pass).
struct UsageTracker {
  std::set<size_t> used_list;  ///< indices into LintOptions::suppressions
  std::set<std::pair<int, std::string>> inline_uses;  ///< (line, rule id)
  std::set<std::string> file_rules;                   ///< rule ids
};

/// One suppression directive found in a file (the NL009 inventory).
struct DirectiveSite {
  int line = 0;
  std::string rule;  ///< rule id
  bool file_scope = false;
};

/// NL002: Mutex members declared without an initializer, waiting for a
/// constructor-initializer-list site.
struct PendingInit {
  std::string file;
  int line = 0;
  std::string member;
  std::string type;  ///< Mutex / SharedMutex
};

/// NL006 facts: one CFG node boiled down to what the responsiveness check
/// needs once the callee summaries from every TU are merged.
struct RespNode {
  int line = 0;
  std::vector<size_t> succs;
  std::vector<std::string> calls;  ///< unqualified call names in the node
  bool direct_poll = false;        ///< calls a poll function directly
  bool producer = false;           ///< calls a streaming producer
};

struct RespLoop {
  size_t head = 0;
  size_t first = 0;  ///< node index range of the loop, inclusive
  size_t last = 0;
  std::vector<size_t> back_srcs;
  bool always_true = false;
  bool range_for = false;
  int line = 0;
};

struct RespFunc {
  std::string file;
  std::string display;  ///< qualified name, for messages
  std::vector<RespNode> nodes;
  std::vector<RespLoop> loops;
};

}  // namespace detail

namespace {

// ---------------------------------------------------------------------------
// Control-flow graph
// ---------------------------------------------------------------------------

struct CfgNode {
  const char* kind;  ///< "entry" "exit" "stmt" "cond" "join"
  size_t begin = 0;  ///< token range [begin, end)
  size_t end = 0;
  int line = 0;
  std::vector<size_t> succs;
};

struct CfgLoop {
  size_t head = 0;
  size_t first = 0;  ///< node index range of the loop, inclusive
  size_t last = 0;
  std::vector<size_t> back_srcs;  ///< nodes whose edge to `head` closes it
  bool always_true = false;       ///< `while (true)`, `for (;;)`
  bool range_for = false;         ///< bounded by the range — never unbounded
  int line = 0;
};

struct Cfg {
  std::vector<CfgNode> nodes;  ///< node 0 = entry, node 1 = exit
  std::vector<CfgLoop> loops;
};

/// Builds a statement-level CFG over a function body's token range by
/// recursive descent on the matched-delimiter structure. Every statement is
/// one node; if/while/for/switch conditions are "cond" nodes; lambdas and
/// aggregate initializers collapse into the enclosing statement node.
class CfgBuilder {
 public:
  explicit CfgBuilder(const std::vector<Tok>& t) : t_(t) {
    NewNode("entry", 0, 0, 0);
    NewNode("exit", 0, 0, 0);
  }

  Cfg Build(size_t begin, size_t end) {
    std::vector<size_t> tails = Seq(begin, end, {kEntry});
    for (size_t n : tails) Edge(n, kExit);
    return std::move(cfg_);
  }

 private:
  static constexpr size_t kEntry = 0;
  static constexpr size_t kExit = 1;

  struct LoopFrame {
    size_t continue_target;
    std::vector<size_t>* continues;
  };

  size_t NewNode(const char* kind, size_t begin, size_t end, int line) {
    cfg_.nodes.push_back({kind, begin, end, line, {}});
    return cfg_.nodes.size() - 1;
  }

  void Edge(size_t from, size_t to) {
    std::vector<size_t>& s = cfg_.nodes[from].succs;
    if (std::find(s.begin(), s.end(), to) == s.end()) s.push_back(to);
  }

  int LineAt(size_t i, size_t end) const {
    return i < end && i < t_.size() ? t_[i].line : 0;
  }

  static bool AlwaysTrue(const std::string& cond) {
    return cond.empty() || cond == "true" || cond == "1";
  }

  /// Index of the `;` ending the statement starting at `i` (delimiter depth
  /// 0 — lambdas and brace initializers are skipped whole). Stops before an
  /// unbalanced closer.
  size_t SkipToSemi(size_t i, size_t end) const {
    int depth = 0;
    while (i < end) {
      const std::string& x = t_[i].text;
      if (x == "(" || x == "{" || x == "[") {
        ++depth;
      } else if (x == ")" || x == "]" || x == "}") {
        if (depth == 0) return i;
        --depth;
      } else if (x == ";" && depth == 0) {
        return i;
      }
      ++i;
    }
    return end;
  }

  std::vector<size_t> Seq(size_t begin, size_t end,
                          std::vector<size_t> preds) {
    size_t i = begin;
    while (i < end) preds = Stmt(&i, end, std::move(preds));
    return preds;
  }

  /// Consumes one statement at *ip, wiring it after `preds`; returns the
  /// live tails (empty after return/throw/break/continue).
  std::vector<size_t> Stmt(size_t* ip, size_t end, std::vector<size_t> preds) {
    size_t i = *ip;
    if (i >= end) {
      *ip = end;
      return preds;
    }
    const std::string& x = t_[i].text;
    if (x == ";") {
      *ip = i + 1;
      return preds;
    }
    if (x == "{") {
      size_t close = std::min(MatchForward(t_, i, "{", "}"), end);
      std::vector<size_t> tails = Seq(i + 1, close, std::move(preds));
      *ip = close + 1;
      return tails;
    }
    if (x == "if") return IfStmt(ip, end, std::move(preds));
    if (x == "while") return WhileStmt(ip, end, std::move(preds));
    if (x == "for") return ForStmt(ip, end, std::move(preds));
    if (x == "do") return DoStmt(ip, end, std::move(preds));
    if (x == "switch") return SwitchStmt(ip, end, std::move(preds));
    if (x == "try") {
      *ip = i + 1;
      return TryStmt(ip, end, std::move(preds));
    }
    if (x == "return" || x == "throw") {
      size_t semi = SkipToSemi(i, end);
      size_t n = NewNode("stmt", i, std::min(semi + 1, end), t_[i].line);
      for (size_t p : preds) Edge(p, n);
      Edge(n, kExit);
      *ip = semi < end ? semi + 1 : end;
      return {};
    }
    if (x == "break" || x == "continue") {
      size_t semi = SkipToSemi(i, end);
      size_t n = NewNode("stmt", i, std::min(semi + 1, end), t_[i].line);
      for (size_t p : preds) Edge(p, n);
      if (x == "break") {
        if (!breakables_.empty()) {
          breakables_.back()->push_back(n);
        } else {
          Edge(n, kExit);
        }
      } else if (!loop_frames_.empty()) {
        Edge(n, loop_frames_.back().continue_target);
        loop_frames_.back().continues->push_back(n);
      } else {
        Edge(n, kExit);
      }
      *ip = semi < end ? semi + 1 : end;
      return {};
    }
    if (x == "else") {  // stray else (shouldn't happen) — skip the token
      *ip = i + 1;
      return preds;
    }
    // Plain statement up to `;`. A zero-length unit means the scan hit an
    // unbalanced closer — step over it so the walk always advances.
    size_t semi = SkipToSemi(i, end);
    if (semi == i) {
      *ip = i + 1;
      return preds;
    }
    size_t n = NewNode("stmt", i, std::min(semi + 1, end), t_[i].line);
    for (size_t p : preds) Edge(p, n);
    *ip = semi < end ? semi + 1 : end;
    return {n};
  }

  std::vector<size_t> IfStmt(size_t* ip, size_t end,
                             std::vector<size_t> preds) {
    size_t kw = *ip;
    size_t i = kw + 1;
    if (Is(t_, i, "constexpr")) ++i;
    if (!Is(t_, i, "(")) {
      *ip = i;
      return preds;
    }
    size_t close = std::min(MatchForward(t_, i, "(", ")"), end);
    size_t cond = NewNode("cond", kw, std::min(close + 1, end), t_[kw].line);
    for (size_t p : preds) Edge(p, cond);
    size_t j = close + 1;
    std::vector<size_t> tails = Stmt(&j, end, {cond});
    if (j < end && Is(t_, j, "else")) {
      size_t k = j + 1;
      std::vector<size_t> etails = Stmt(&k, end, {cond});
      j = k;
      tails.insert(tails.end(), etails.begin(), etails.end());
    } else {
      tails.push_back(cond);  // branch-not-taken falls through
    }
    *ip = j;
    return tails;
  }

  std::vector<size_t> WhileStmt(size_t* ip, size_t end,
                                std::vector<size_t> preds) {
    size_t kw = *ip;
    size_t i = kw + 1;
    if (!Is(t_, i, "(")) {
      *ip = i;
      return preds;
    }
    size_t close = std::min(MatchForward(t_, i, "(", ")"), end);
    size_t head = NewNode("cond", kw, std::min(close + 1, end), t_[kw].line);
    for (size_t p : preds) Edge(p, head);
    CfgLoop loop;
    loop.head = loop.first = head;
    loop.always_true = AlwaysTrue(JoinTokens(t_, i + 1, close));
    loop.line = t_[kw].line;
    std::vector<size_t> breaks;
    std::vector<size_t> continues;
    breakables_.push_back(&breaks);
    loop_frames_.push_back({head, &continues});
    size_t j = close + 1;
    std::vector<size_t> tails = Stmt(&j, end, {head});
    loop_frames_.pop_back();
    breakables_.pop_back();
    for (size_t n : tails) {
      Edge(n, head);
      loop.back_srcs.push_back(n);
    }
    for (size_t n : continues) loop.back_srcs.push_back(n);
    loop.last = cfg_.nodes.size() - 1;
    std::vector<size_t> out = std::move(breaks);
    if (!loop.always_true) out.push_back(head);
    cfg_.loops.push_back(std::move(loop));
    *ip = j;
    return out;
  }

  std::vector<size_t> ForStmt(size_t* ip, size_t end,
                              std::vector<size_t> preds) {
    size_t kw = *ip;
    size_t i = kw + 1;
    if (!Is(t_, i, "(")) {
      *ip = i;
      return preds;
    }
    size_t close = std::min(MatchForward(t_, i, "(", ")"), end);
    // Classic for has `;` at paren depth 1; range-for has none.
    size_t semi1 = t_.size();
    size_t semi2 = t_.size();
    int depth = 0;
    for (size_t j = i; j < close; ++j) {
      const std::string& x = t_[j].text;
      if (x == "(" || x == "{" || x == "[") {
        ++depth;
      } else if (x == ")" || x == "}" || x == "]") {
        --depth;
      } else if (x == ";" && depth == 1) {
        if (semi1 == t_.size()) {
          semi1 = j;
        } else if (semi2 == t_.size()) {
          semi2 = j;
        }
      }
    }
    CfgLoop loop;
    loop.line = t_[kw].line;
    size_t head = 0;
    size_t continue_target = 0;
    if (semi1 == t_.size()) {
      // Range-for: one head node covering `for (decl : range)`.
      head = NewNode("cond", kw, std::min(close + 1, end), t_[kw].line);
      for (size_t p : preds) Edge(p, head);
      loop.head = loop.first = head;
      loop.range_for = true;
      continue_target = head;
    } else {
      if (semi1 > i + 1) {
        size_t init = NewNode("stmt", i + 1, semi1, LineAt(i + 1, end));
        for (size_t p : preds) Edge(p, init);
        preds = {init};
      }
      size_t cond_end = semi2 == t_.size() ? close : semi2;
      head = NewNode("cond", semi1 + 1, cond_end, t_[semi1].line);
      loop.always_true = AlwaysTrue(JoinTokens(t_, semi1 + 1, cond_end));
      for (size_t p : preds) Edge(p, head);
      loop.head = loop.first = head;
      // The increment node is created before the body so that `continue`
      // can target it; its edge to the head is the loop's one back edge.
      size_t inc_begin = semi2 == t_.size() ? close : semi2 + 1;
      size_t inc = NewNode("stmt", inc_begin, close, t_[kw].line);
      Edge(inc, head);
      loop.back_srcs.push_back(inc);
      continue_target = inc;
    }
    std::vector<size_t> breaks;
    std::vector<size_t> continues;
    breakables_.push_back(&breaks);
    loop_frames_.push_back({continue_target, &continues});
    size_t j = close + 1;
    std::vector<size_t> tails = Stmt(&j, end, {head});
    loop_frames_.pop_back();
    breakables_.pop_back();
    if (loop.range_for) {
      for (size_t n : tails) {
        Edge(n, head);
        loop.back_srcs.push_back(n);
      }
      for (size_t n : continues) loop.back_srcs.push_back(n);
    } else {
      for (size_t n : tails) Edge(n, continue_target);
    }
    loop.last = cfg_.nodes.size() - 1;
    std::vector<size_t> out = std::move(breaks);
    if (!loop.always_true) out.push_back(head);
    cfg_.loops.push_back(std::move(loop));
    *ip = j;
    return out;
  }

  std::vector<size_t> DoStmt(size_t* ip, size_t end,
                             std::vector<size_t> preds) {
    size_t kw = *ip;
    int line = t_[kw].line;
    size_t join = NewNode("join", kw, kw, line);
    for (size_t p : preds) Edge(p, join);
    CfgLoop loop;
    loop.first = join;
    loop.line = line;
    // The cond node index is the continue target, needed before the body is
    // built; its token range is patched in once `while (...)` is parsed.
    size_t cond = NewNode("cond", kw, kw, line);
    loop.head = cond;
    std::vector<size_t> breaks;
    std::vector<size_t> continues;
    breakables_.push_back(&breaks);
    loop_frames_.push_back({cond, &continues});
    size_t j = kw + 1;
    std::vector<size_t> tails = Stmt(&j, end, {join});
    loop_frames_.pop_back();
    breakables_.pop_back();
    for (size_t n : tails) Edge(n, cond);
    if (Is(t_, j, "while") && Is(t_, j + 1, "(")) {
      size_t close = std::min(MatchForward(t_, j + 1, "(", ")"), end);
      cfg_.nodes[cond].begin = j;
      cfg_.nodes[cond].end = std::min(close + 1, end);
      cfg_.nodes[cond].line = t_[j].line;
      loop.always_true = AlwaysTrue(JoinTokens(t_, j + 2, close));
      j = close + 1;
      if (Is(t_, j, ";")) ++j;
    }
    Edge(cond, join);  // back edge
    loop.back_srcs.push_back(cond);
    loop.last = cfg_.nodes.size() - 1;
    std::vector<size_t> out = std::move(breaks);
    if (!loop.always_true) out.push_back(cond);
    cfg_.loops.push_back(std::move(loop));
    *ip = j;
    return out;
  }

  std::vector<size_t> SwitchStmt(size_t* ip, size_t end,
                                 std::vector<size_t> preds) {
    size_t kw = *ip;
    size_t i = kw + 1;
    if (!Is(t_, i, "(")) {
      *ip = i;
      return preds;
    }
    size_t close = std::min(MatchForward(t_, i, "(", ")"), end);
    size_t sel = NewNode("cond", kw, std::min(close + 1, end), t_[kw].line);
    for (size_t p : preds) Edge(p, sel);
    size_t j = close + 1;
    if (!Is(t_, j, "{")) {  // degenerate single-statement body
      std::vector<size_t> tails = Stmt(&j, end, {sel});
      tails.push_back(sel);
      *ip = j;
      return tails;
    }
    size_t body_close = std::min(MatchForward(t_, j, "{", "}"), end);
    std::vector<size_t> breaks;
    breakables_.push_back(&breaks);
    std::vector<size_t> cur;  // fallthrough preds of the next statement
    bool has_default = false;
    size_t k = j + 1;
    while (k < body_close) {
      if (Is(t_, k, "case")) {
        while (k < body_close && !Is(t_, k, ":")) ++k;  // `::` is one token
        ++k;
        cur.push_back(sel);
        continue;
      }
      if (Is(t_, k, "default") && Is(t_, k + 1, ":")) {
        k += 2;
        has_default = true;
        cur.push_back(sel);
        continue;
      }
      cur = Stmt(&k, body_close, std::move(cur));
    }
    breakables_.pop_back();
    std::vector<size_t> out = std::move(cur);
    out.insert(out.end(), breaks.begin(), breaks.end());
    if (!has_default) out.push_back(sel);
    *ip = body_close + 1;
    return out;
  }

  std::vector<size_t> TryStmt(size_t* ip, size_t end,
                              std::vector<size_t> preds) {
    std::vector<size_t> entry = preds;
    std::vector<size_t> tails = Stmt(ip, end, std::move(preds));
    while (Is(t_, *ip, "catch")) {
      size_t i = *ip + 1;
      size_t close = i;
      if (Is(t_, i, "(")) close = std::min(MatchForward(t_, i, "(", ")"), end);
      size_t j = close + 1;
      // A handler can be entered from anywhere in the try block; branching
      // it off the try entry is conservative for the forward analyses.
      std::vector<size_t> ctails = Stmt(&j, end, entry);
      tails.insert(tails.end(), ctails.begin(), ctails.end());
      *ip = j;
    }
    return tails;
  }

  const std::vector<Tok>& t_;
  Cfg cfg_;
  std::vector<std::vector<size_t>*> breakables_;  ///< loops and switches
  std::vector<LoopFrame> loop_frames_;            ///< loops only
};

}  // namespace
// ---------------------------------------------------------------------------
// Public helpers
// ---------------------------------------------------------------------------

std::string ResolveRule(const std::string& id_or_name) {
  for (const RuleInfo& r : kRules) {
    if (id_or_name == r.id || id_or_name == r.name ||
        (r.alias[0] != '\0' && id_or_name == r.alias)) {
      return r.id;
    }
  }
  return "";
}

std::set<std::string> ParseLockRankRegistry(const std::string& content) {
  std::set<std::string> ranks;
  LexedFile lexed = Lex(content);
  const std::vector<Tok>& t = lexed.toks;
  for (size_t i = 0; i + 3 < t.size(); ++i) {
    if (Is(t, i, "enum") && Is(t, i + 1, "class") && Is(t, i + 2, "LockRank")) {
      size_t open = i + 3;
      while (open < t.size() && t[open].text != "{") ++open;
      size_t close = MatchForward(t, open, "{", "}");
      for (size_t j = open + 1; j < close; ++j) {
        if (t[j].kind == TokKind::kIdent && t[j].text.size() > 1 &&
            t[j].text[0] == 'k' &&
            std::isupper(static_cast<unsigned char>(t[j].text[1]))) {
          ranks.insert(t[j].text);
        }
      }
      break;
    }
  }
  return ranks;
}

std::set<std::string> ParseDocumentedRanks(const std::string& content) {
  // Only markdown *table rows* count — a line starting with `|` whose
  // first backticked token is a kName. Prose mentions ("...the registry
  // lock (rank `kShardFragments`)...") do not document where a rank sits
  // in the hierarchy, so they must not satisfy the doc-sync check.
  std::set<std::string> ranks;
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) {
    size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] != '|') continue;
    size_t tick = line.find('`');
    if (tick == std::string::npos) continue;
    size_t end = line.find('`', tick + 1);
    if (end == std::string::npos) continue;
    std::string name = line.substr(tick + 1, end - tick - 1);
    if (name.size() > 1 && name[0] == 'k' &&
        std::isupper(static_cast<unsigned char>(name[1])) &&
        name.find_first_not_of(
            "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789") ==
            std::string::npos) {
      ranks.insert(name);
    }
  }
  return ranks;
}

std::vector<SuppressionEntry> ParseSuppressionList(const std::string& content) {
  std::vector<SuppressionEntry> entries;
  std::istringstream in(content);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    std::istringstream fields(line);
    SuppressionEntry e;
    fields >> e.rule >> e.path_substr;
    std::getline(fields, e.line_substr);
    size_t s = e.line_substr.find_first_not_of(" \t");
    e.line_substr = s == std::string::npos ? "*" : e.line_substr.substr(s);
    e.line = lineno;
    if (!e.rule.empty() && !e.path_substr.empty()) entries.push_back(e);
  }
  return entries;
}

// ---------------------------------------------------------------------------
// Suppression machinery (shared by the per-file phase and Finish())
// ---------------------------------------------------------------------------

namespace {

/// True when `comment` carries a directive for `rule_id`; `*reason` gets
/// the parenthesised text. Directive grammar:
///   nimble-lint: [file] alias(reason)[, alias2(reason2)...]
/// A reason containing '<' is a documentation placeholder (the rule catalog
/// and messages quote the directive syntax with "<reason>" stand-ins), not
/// a real directive — otherwise NL009 would flag the docs as stale.
bool DirectiveFor(const std::string& comment, const std::string& rule_id,
                  bool want_file_scope, std::string* reason) {
  size_t pos = comment.find("nimble-lint:");
  if (pos == std::string::npos) return false;
  std::string rest = comment.substr(pos + 12);
  size_t s = rest.find_first_not_of(" \t");
  if (s == std::string::npos) return false;
  rest = rest.substr(s);
  bool file_scope = rest.rfind("file", 0) == 0 &&
                    (rest.size() == 4 || !IsIdentChar(rest[4]));
  if (file_scope != want_file_scope) return false;
  if (file_scope) rest = rest.substr(4);
  // Scan alias(reason) groups.
  size_t i = 0;
  while (i < rest.size()) {
    while (i < rest.size() && !IsIdentStart(rest[i])) ++i;
    size_t start = i;
    while (i < rest.size() && (IsIdentChar(rest[i]) || rest[i] == '-')) ++i;
    if (i == start) break;
    std::string alias = rest.substr(start, i - start);
    std::string r;
    if (i < rest.size() && rest[i] == '(') {
      size_t close = rest.find(')', i);
      if (close == std::string::npos) close = rest.size();
      r = rest.substr(i + 1, close - i - 1);
      i = close + 1;
    }
    if (ResolveRule(alias) == rule_id && r.find('<') == std::string::npos) {
      *reason = r;
      return true;
    }
  }
  return false;
}

/// Collects the file-scope suppressions and the full directive inventory
/// (for NL009) out of a file's comments.
void CollectDirectives(detail::FileData* fd,
                       std::vector<detail::DirectiveSite>* sites) {
  std::set<std::pair<int, std::string>> seen_inline;
  std::set<std::string> seen_file;
  for (const auto& [line, comments] : fd->comments) {
    for (const std::string& comment : comments) {
      for (const RuleInfo& r : kRules) {
        std::string reason;
        if (DirectiveFor(comment, r.id, /*want_file_scope=*/true, &reason)) {
          fd->file_suppressions.emplace(r.id, reason);
          if (seen_file.insert(r.id).second) {
            sites->push_back({line, r.id, true});
          }
        }
        if (DirectiveFor(comment, r.id, /*want_file_scope=*/false, &reason) &&
            seen_inline.insert({line, r.id}).second) {
          sites->push_back({line, r.id, false});
        }
      }
    }
  }
}

bool RuleEnabledIn(const LintOptions& options, const std::string& id) {
  if (options.enabled_rules.empty()) return true;
  for (const std::string& r : options.enabled_rules) {
    if (ResolveRule(r) == id) return true;
  }
  return false;
}

/// Applies the three suppression mechanisms to `f`, recording which one
/// fired in `usage` so NL009 can flag the ones that never fire. `fd` may be
/// null for findings located in files outside the scanned set (the
/// suppression list itself, lock_rank.h doc-sync).
void ResolveSuppressionFor(const LintOptions& options,
                           const detail::FileData* fd, Finding* f,
                           detail::UsageTracker* usage) {
  if (!options.honor_suppressions) return;
  if (fd != nullptr) {
    auto fs = fd->file_suppressions.find(f->rule);
    if (fs != fd->file_suppressions.end()) {
      f->suppressed = true;
      f->suppress_reason = "file directive: " + fs->second;
      if (usage != nullptr) usage->file_rules.insert(f->rule);
      return;
    }
    // A directive suppresses its own line always, and the line below only
    // when the directive stands on a comment-only line — a trailing
    // comment must not leak onto the next statement.
    auto comment_only_line = [fd](int line) {
      if (line < 1 || static_cast<size_t>(line) > fd->lines.size()) {
        return false;
      }
      const std::string& s = fd->lines[line - 1];
      size_t i = s.find_first_not_of(" \t");
      return i != std::string::npos && s.compare(i, 2, "//") == 0;
    };
    for (int line : {f->line, f->line - 1}) {
      if (line == f->line - 1 && !comment_only_line(line)) continue;
      auto c = fd->comments.find(line);
      if (c == fd->comments.end()) continue;
      for (const std::string& comment : c->second) {
        std::string reason;
        if (DirectiveFor(comment, f->rule, /*want_file_scope=*/false,
                         &reason)) {
          f->suppressed = true;
          f->suppress_reason = "inline: " + reason;
          if (usage != nullptr) usage->inline_uses.insert({line, f->rule});
          return;
        }
      }
    }
  }
  for (size_t e = 0; e < options.suppressions.size(); ++e) {
    const SuppressionEntry& entry = options.suppressions[e];
    if (ResolveRule(entry.rule) != f->rule) continue;
    if (!Contains(f->file, entry.path_substr)) continue;
    if (entry.line_substr != "*") {
      if (fd == nullptr || f->line < 1 ||
          static_cast<size_t>(f->line) > fd->lines.size() ||
          !Contains(fd->lines[f->line - 1], entry.line_substr)) {
        continue;
      }
    }
    f->suppressed = true;
    f->suppress_reason = "suppression list";
    if (usage != nullptr) usage->used_list.insert(e);
    return;
  }
}

}  // namespace
// ---------------------------------------------------------------------------
// Per-file lexical rules (NL001–NL005)
// ---------------------------------------------------------------------------

namespace {

/// Everything a per-file check needs to report a finding.
struct FileCtx {
  const LintOptions* options;
  const std::string* path;
  detail::FileData* fd;
  detail::UsageTracker* usage;
  std::vector<Finding>* findings;

  void Report(const std::string& rule_id, int line,
              std::string message) const {
    if (!RuleEnabledIn(*options, rule_id)) return;
    Finding f;
    f.rule = rule_id;
    f.rule_name = RuleName(rule_id);
    f.file = *path;
    f.line = line;
    f.message = std::move(message);
    ResolveSuppressionFor(*options, fd, &f, usage);
    findings->push_back(std::move(f));
  }
};

// NL001 — raw std:: synchronisation primitives.
void CheckRawSync(const FileCtx& ctx, const std::vector<Tok>& t) {
  if (EndsWith(*ctx.path, "common/mutex.h")) return;  // the one legal home
  static const std::set<std::string> kBanned = {
      "mutex",          "timed_mutex",
      "recursive_mutex", "recursive_timed_mutex",
      "shared_mutex",   "shared_timed_mutex",
      "lock_guard",     "unique_lock",
      "scoped_lock",    "shared_lock",
      "condition_variable", "condition_variable_any",
  };
  for (size_t i = 0; i + 2 < t.size(); ++i) {
    if (Is(t, i, "std") && Is(t, i + 1, "::") &&
        kBanned.count(t[i + 2].text) > 0) {
      ctx.Report("NL001", t[i + 2].line,
                 "raw std::" + t[i + 2].text +
                     "; use the annotated layer in common/mutex.h (Mutex/"
                     "SharedMutex/MutexLock/CondVar) so thread-safety "
                     "analysis and lock-rank checking see it");
    }
  }
}

// NL002 — Mutex construction must carry a registered LockRank.
void CheckRankArgs(const FileCtx& ctx, const std::vector<Tok>& t, size_t begin,
                   size_t end, const std::string& member, int line) {
  for (size_t j = begin; j < end; ++j) {
    if (Is(t, j, "static_cast") && j + 2 < end && Is(t, j + 2, "LockRank")) {
      ctx.Report("NL002", line,
                 "Mutex '" + member +
                     "' constructed with an ad-hoc static_cast<LockRank> — "
                     "register a rank in common/lock_rank.h instead");
      return;
    }
    if (Is(t, j, "LockRank") && Is(t, j + 1, "::") && j + 2 < end) {
      const std::string& rank = t[j + 2].text;
      if (ctx.options->known_ranks.count(rank) == 0) {
        ctx.Report("NL002", line,
                   "Mutex '" + member + "' uses LockRank::" + rank +
                       " which is not in the common/lock_rank.h registry");
      }
      return;
    }
  }
  ctx.Report("NL002", line,
             "Mutex '" + member +
                 "' constructed without a LockRank from common/lock_rank.h");
}

void CheckMutexRank(const FileCtx& ctx, const std::vector<Tok>& t,
                    std::vector<detail::PendingInit>* pending,
                    std::map<std::string, std::set<std::string>>* init_sites) {
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].text != "Mutex" && t[i].text != "SharedMutex") continue;
    // Qualified nimble::Mutex is fine; skip the qualifier, not the check.
    if (i > 0 && t[i - 1].text == "::") {
      if (i < 2 || t[i - 2].text != "nimble") continue;  // std::? other ns
    }
    // Not a declaration: class/struct/friend heads, template parameters.
    if (i > 0 && (t[i - 1].text == "class" || t[i - 1].text == "struct" ||
                  t[i - 1].text == "friend" || t[i - 1].text == "typename")) {
      continue;
    }
    if (i + 1 >= t.size()) continue;
    const Tok& next = t[i + 1];
    if (next.text == "&" || next.text == "*" || next.text == "::" ||
        next.kind != TokKind::kIdent) {
      continue;  // reference/pointer param, qualifier, or not a declarator
    }
    // Declarator: Mutex NAME {init} | (init) | ;
    const std::string member = next.text;
    size_t after = i + 2;
    if (after >= t.size()) continue;
    if (t[after].text == "{" || t[after].text == "(") {
      const char* open = t[after].text == "{" ? "{" : "(";
      const char* close = t[after].text == "{" ? "}" : ")";
      size_t end = MatchForward(t, after, open, close);
      CheckRankArgs(ctx, t, after + 1, end, member, t[i].line);
      (*init_sites)[member].insert(FileStem(*ctx.path));
    } else if (t[after].text == ";") {
      pending->push_back({*ctx.path, t[i].line, member, t[i].text});
    }
  }
  // Constructor-initializer-list sites: NAME ( LockRank :: kX  /
  // NAME { LockRank :: kX — resolves pending member declarations and
  // validates the rank they chose.
  for (size_t i = 0; i + 4 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    if (t[i + 1].text != "(" && t[i + 1].text != "{") continue;
    // Only actual rank expressions: `LockRank::` or an ad-hoc
    // `static_cast<LockRank>` — not functions with a LockRank parameter.
    const bool rank_expr = Is(t, i + 2, "LockRank") && Is(t, i + 3, "::");
    const bool cast_expr = Is(t, i + 2, "static_cast") && Is(t, i + 3, "<") &&
                           Is(t, i + 4, "LockRank");
    if (!rank_expr && !cast_expr) continue;
    if (t[i].text == "Mutex" || t[i].text == "SharedMutex") continue;
    // Declaration-with-initializer sites were validated by the pass
    // above; re-checking them here would double-report.
    if (i > 0 &&
        (t[i - 1].text == "Mutex" || t[i - 1].text == "SharedMutex")) {
      (*init_sites)[t[i].text].insert(FileStem(*ctx.path));
      continue;
    }
    const char* open = t[i + 1].text == "(" ? "(" : "{";
    const char* close = t[i + 1].text == "(" ? ")" : "}";
    size_t end = MatchForward(t, i + 1, open, close);
    CheckRankArgs(ctx, t, i + 2, end, t[i].text, t[i].line);
    (*init_sites)[t[i].text].insert(FileStem(*ctx.path));
  }
}

// NL003 — blocking calls in a scope that holds a mutex.
void CheckBlockingUnderLock(const FileCtx& ctx, const std::vector<Tok>& t) {
  if (EndsWith(*ctx.path, "common/mutex.h")) return;  // CondVar internals
  struct Guard {
    int depth;
    std::string mutex_expr;
    std::string how;  ///< guard class or REQUIRES, for the message
  };
  std::vector<Guard> guards;
  std::vector<std::string> pending_requires;  // attach at next `{`
  int depth = 0;

  // Calls that block the thread: waiting on another query/handle/shard,
  // executing a query synchronously, sleeping, singleflight waits and
  // fan-out joins. `Wait`/`WaitFor` get the CondVar carve-out below.
  static const std::set<std::string> kBlocking = {
      "ExecuteText", "ExecuteBatch", "RunParallel",
      "LookupOrCompute", "sleep_for", "sleep_until", "SleepFor",
  };

  for (size_t i = 0; i < t.size(); ++i) {
    const Tok& tok = t[i];
    if (tok.text == "{") {
      ++depth;
      if (!pending_requires.empty()) {
        for (std::string& mu : pending_requires) {
          guards.push_back({depth, std::move(mu), "NIMBLE_REQUIRES"});
        }
        pending_requires.clear();
      }
      continue;
    }
    if (tok.text == "}") {
      while (!guards.empty() && guards.back().depth >= depth) {
        guards.pop_back();
      }
      --depth;
      continue;
    }
    if (tok.text == ";" && !pending_requires.empty()) {
      pending_requires.clear();  // pure declaration, no body
      continue;
    }
    if (tok.text == "NIMBLE_REQUIRES" ||
        tok.text == "NIMBLE_REQUIRES_SHARED") {
      if (Is(t, i + 1, "(")) {
        size_t end = MatchForward(t, i + 1, "(", ")");
        pending_requires.push_back(JoinTokens(t, i + 2, end));
        i = end;
      }
      continue;
    }
    // RAII guard declaration: MutexLock NAME(expr); etc.
    if ((tok.text == "MutexLock" || tok.text == "ReaderMutexLock" ||
         tok.text == "WriterMutexLock") &&
        i + 2 < t.size() && t[i + 1].kind == TokKind::kIdent &&
        (t[i + 2].text == "(" || t[i + 2].text == "{")) {
      const char* open = t[i + 2].text == "(" ? "(" : "{";
      const char* close = t[i + 2].text == "(" ? ")" : "}";
      size_t end = MatchForward(t, i + 2, open, close);
      guards.push_back({depth, JoinTokens(t, i + 3, end), tok.text});
      i = end;
      continue;
    }
    if (guards.empty()) continue;
    if (tok.kind != TokKind::kIdent || !Is(t, i + 1, "(")) continue;

    const bool is_wait = tok.text == "Wait" || tok.text == "WaitFor";
    const bool is_blocking = kBlocking.count(tok.text) > 0;
    if (!is_wait && !is_blocking) continue;
    // Only calls — `X.Wait(` / `X->Wait(` / free `sleep_for(` — not
    // declarations (`void Wait(...)`): a declaration's name is preceded
    // by a type identifier or `&`/`*`, a call by . -> :: ( , = etc.
    if (i > 0 && (t[i - 1].kind == TokKind::kIdent || t[i - 1].text == "&" ||
                  t[i - 1].text == "*" || t[i - 1].text == ">")) {
      continue;
    }

    size_t args_end = MatchForward(t, i + 1, "(", ")");
    if (is_wait) {
      // CondVar carve-out: waiting on the mutex you hold is the one legal
      // blocking call — but only when no *other* lock is also held
      // (sleeping while holding an outer lock stalls every contender).
      std::string first_arg;
      for (size_t j = i + 2; j < args_end; ++j) {
        if (t[j].text == ",") break;
        first_arg += t[j].text;
      }
      bool matches_innermost = !first_arg.empty() && !guards.empty() &&
                               guards.back().mutex_expr == first_arg;
      if (matches_innermost && guards.size() == 1) {
        i = args_end;
        continue;
      }
      if (matches_innermost && guards.size() > 1) {
        ctx.Report("NL003", tok.line,
                   "CondVar wait on '" + first_arg + "' while '" +
                       guards[guards.size() - 2].mutex_expr +
                       "' is also held (" + guards[guards.size() - 2].how +
                       ") — the outer lock stays locked for the whole sleep");
        i = args_end;
        continue;
      }
      ctx.Report("NL003", tok.line,
                 "blocking " + tok.text + "() while holding '" +
                     guards.back().mutex_expr + "' (" + guards.back().how +
                     ") — release the lock before waiting");
      i = args_end;
      continue;
    }
    ctx.Report("NL003", tok.line,
               "blocking call " + tok.text + "() while holding '" +
                   guards.back().mutex_expr + "' (" + guards.back().how +
                   ") — blocking work must run after release");
    i = args_end;
  }

  // Pool submissions under a lock deadlock when pool workers are the ones
  // trying to acquire it, and stall dispatch either way; the scheduler
  // collects entries under its mutex and submits after release. Detect
  // `<pool-ish>->Submit(` / `.Submit(` with a held guard.
  guards.clear();
  depth = 0;
  for (size_t i = 0; i < t.size(); ++i) {
    const Tok& tok = t[i];
    if (tok.text == "{") {
      ++depth;
      continue;
    }
    if (tok.text == "}") {
      while (!guards.empty() && guards.back().depth >= depth) {
        guards.pop_back();
      }
      --depth;
      continue;
    }
    if ((tok.text == "MutexLock" || tok.text == "ReaderMutexLock" ||
         tok.text == "WriterMutexLock") &&
        i + 2 < t.size() && t[i + 1].kind == TokKind::kIdent &&
        t[i + 2].text == "(") {
      size_t end = MatchForward(t, i + 2, "(", ")");
      guards.push_back({depth, JoinTokens(t, i + 3, end), tok.text});
      i = end;
      continue;
    }
    if (guards.empty() || tok.text != "Submit" || !Is(t, i + 1, "(")) {
      continue;
    }
    if (i == 0 || (t[i - 1].text != "." && t[i - 1].text != "->")) continue;
    std::string receiver = ReceiverBefore(t, i - 1);
    std::string lowered;
    for (char c : receiver) {
      lowered +=
          static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (!Contains(lowered, "pool")) continue;
    ctx.Report("NL003", tok.line,
               "pool submit through '" + receiver + "' while holding '" +
                   guards.back().mutex_expr +
                   "' — collect work under the lock, submit after release");
  }
}

// NL004 — guarded-member coverage in mutex-owning classes.

/// One data-member declaration unit inside a class body.
struct MemberDecl {
  std::string name;
  int line;
  bool guarded = false;   ///< NIMBLE_GUARDED_BY / NIMBLE_PT_GUARDED_BY
  bool is_mutex = false;  ///< Mutex / SharedMutex by value
  bool exempt = false;    ///< const, reference, atomic, CondVar, ...
};

void AnalyzeClassBody(const FileCtx& ctx, const std::vector<Tok>& t,
                      const std::string& class_name, size_t open,
                      size_t close) {
  std::vector<MemberDecl> members;
  size_t i = open + 1;
  while (i < close) {
    // Access specifiers.
    if ((t[i].text == "public" || t[i].text == "private" ||
         t[i].text == "protected") &&
        Is(t, i + 1, ":")) {
      i += 2;
      continue;
    }
    // Nested class/struct with a body: recurse, then skip past it.
    if ((t[i].text == "class" || t[i].text == "struct") && i + 1 < close &&
        t[i + 1].kind == TokKind::kIdent) {
      size_t j = i + 2;
      while (j < close && t[j].text != "{" && t[j].text != ";") ++j;
      if (j < close && t[j].text == "{") {
        size_t body_close = MatchForward(t, j, "{", "}");
        AnalyzeClassBody(ctx, t, t[i + 1].text, j, body_close);
        i = body_close + 1;
        if (i < close && t[i].text == ";") ++i;
        continue;
      }
      i = j + 1;
      continue;
    }
    // Collect one declaration unit.
    size_t unit_begin = i;
    bool paren_before_brace = false;
    int template_depth = 0;
    bool in_decl_part = true;  // before '=' / init '{'
    size_t name_tok = t.size();
    bool skip_unit = false;
    while (i < close) {
      const Tok& tok = t[i];
      if (tok.text == "template" && Is(t, i + 1, "<")) {
        // Skip the template parameter list wholesale.
        int d = 0;
        ++i;
        while (i < close) {
          if (t[i].text == "<") ++d;
          if (t[i].text == ">" && --d == 0) break;
          ++i;
        }
        ++i;
        continue;
      }
      if (in_decl_part) {
        if (tok.text == "operator") {
          // operator<, operator(), ... — function for sure.
          paren_before_brace = true;
          ++i;
          if (i < close) ++i;
          continue;
        }
        if (tok.text == "<") ++template_depth;
        if (tok.text == ">") template_depth = std::max(0, template_depth - 1);
        if (tok.text == "(" && template_depth == 0) {
          paren_before_brace = true;
          i = MatchForward(t, i, "(", ")") + 1;
          continue;
        }
        if (tok.text == "=") in_decl_part = false;
        if (tok.kind == TokKind::kIdent && template_depth == 0) {
          name_tok = i;
        }
      }
      if (tok.text == "{") {
        size_t body_close = MatchForward(t, i, "{", "}");
        in_decl_part = false;
        i = body_close + 1;
        // Function definition bodies end without ';'.
        if (paren_before_brace) {
          if (i < close && t[i].text == ";") ++i;
          skip_unit = true;
          break;
        }
        continue;
      }
      if (tok.text == ";") {
        ++i;
        break;
      }
      ++i;
    }
    if (skip_unit || name_tok >= t.size()) continue;

    MemberDecl m;
    m.name = t[name_tok].text;
    m.line = t[name_tok].line;
    bool has_star = false;
    bool has_amp = false;
    bool has_const_before_name = false;
    bool has_const_anywhere = false;
    bool is_static = false;
    size_t unit_end = std::min(i, close);
    for (size_t j = unit_begin; j < unit_end && j <= name_tok; ++j) {
      const std::string& x = t[j].text;
      if (x == "*") has_star = true;
      if (x == "&") has_amp = true;
      if (x == "const") {
        has_const_anywhere = true;
        if (j + 1 == name_tok) has_const_before_name = true;
      }
      if (x == "static" || x == "constexpr" || x == "using" ||
          x == "typedef" || x == "friend" || x == "enum") {
        is_static = true;
      }
      if (x == "atomic" || x == "CondVar" || x == "once_flag" ||
          x == "Notification") {
        m.exempt = true;
      }
      if (x == "Mutex" || x == "SharedMutex") m.is_mutex = true;
    }
    // By-value mutex member only: a pointer/reference to someone else's
    // mutex is just unguarded config, not ownership. Decided after the
    // scan because the * / & tokens follow the type name.
    if (has_star || has_amp) m.is_mutex = false;
    for (size_t j = unit_begin; j < unit_end; ++j) {
      if (t[j].text == "NIMBLE_GUARDED_BY" ||
          t[j].text == "NIMBLE_PT_GUARDED_BY") {
        m.guarded = true;
      }
    }
    if (is_static) continue;
    if (paren_before_brace) continue;  // function declaration
    if (has_amp) m.exempt = true;      // references bind at construction
    if (has_const_before_name) m.exempt = true;  // T* const / const T name
    if (has_const_anywhere && !has_star) m.exempt = true;  // const T name
    if (m.is_mutex) m.exempt = true;
    members.push_back(std::move(m));
  }

  bool owns_mutex = false;
  for (const MemberDecl& m : members) {
    if (m.is_mutex) owns_mutex = true;
  }
  if (!owns_mutex) return;
  for (const MemberDecl& m : members) {
    if (m.guarded || m.exempt) continue;
    ctx.Report("NL004", m.line,
               "member '" + m.name + "' of mutex-owning " + class_name +
                   " is neither NIMBLE_GUARDED_BY, std::atomic, nor const — "
                   "annotate it, or suppress with "
                   "`// nimble-lint: unguarded(<why it is safe>)`");
  }
}

void CheckGuardedMembers(const FileCtx& ctx, const std::vector<Tok>& t) {
  if (EndsWith(*ctx.path, "common/mutex.h")) return;
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if ((t[i].text == "class" || t[i].text == "struct") &&
        t[i + 1].kind == TokKind::kIdent) {
      // Find the body '{' (skip base-class list); stop at ';' (forward
      // declaration) or '(' (function returning class type — not here).
      size_t j = i + 2;
      while (j < t.size() && t[j].text != "{" && t[j].text != ";") ++j;
      if (j >= t.size() || t[j].text == ";") continue;
      AnalyzeClassBody(ctx, t, t[i + 1].text, j, MatchForward(t, j, "{", "}"));
    }
  }
}

// NL005 — frozen-snapshot immutability.
void CheckFrozenMutation(const FileCtx& ctx, const std::vector<Tok>& t) {
  static const std::set<std::string> kMutators = {
      "AddChild",    "AddScalarChild", "SetAttribute",
      "RemoveChild", "TakeChildren",
  };
  // Tainted expression text -> brace depth it was tainted at.
  std::map<std::string, int> tainted;
  int depth = 0;
  for (size_t i = 0; i < t.size(); ++i) {
    const Tok& tok = t[i];
    if (tok.text == "{") {
      ++depth;
      continue;
    }
    if (tok.text == "}") {
      for (auto it = tainted.begin(); it != tainted.end();) {
        if (it->second >= depth) {
          it = tainted.erase(it);
        } else {
          ++it;
        }
      }
      --depth;
      continue;
    }
    // const casts that strip a snapshot's constness re-expose the shared
    // tree to mutation; legal only at the documented copy-on-write seams
    // (suppress there, citing MutableDocument()/Clone()).
    if ((tok.text == "const_pointer_cast" || tok.text == "const_cast") &&
        Is(t, i + 1, "<")) {
      for (size_t j = i + 2; j < t.size() && t[j].text != ">"; ++j) {
        if (t[j].text == "Node") {
          ctx.Report("NL005", tok.line,
                     "std::" + tok.text +
                         "<Node> strips a frozen snapshot's constness — "
                         "mutate via Clone()/MutableDocument() instead");
          break;
        }
        if (t[j].text == ";") break;
      }
    }
    // Taint assignments: LHS = ...Freeze()... ;  LHS = ...Clone()... clears.
    if (tok.text == "=" && i > 0 &&
        (t[i - 1].kind == TokKind::kIdent || t[i - 1].text == ")")) {
      if (Is(t, i + 1, "=") || t[i - 1].text == "!" || t[i - 1].text == "<" ||
          t[i - 1].text == ">") {
        continue;  // ==, !=, <=, >=
      }
      std::string lhs = ReceiverBefore(t, i);
      if (lhs.empty()) continue;
      bool saw_freeze = false;
      bool saw_clone = false;
      for (size_t j = i + 1; j < t.size() && t[j].text != ";"; ++j) {
        if (t[j].text == "Freeze" && Is(t, j + 1, "(")) saw_freeze = true;
        // A const-cast RHS is a frozen snapshot too: the cast site itself
        // is reported (and typically suppressed at the documented seam),
        // but mutations through the result must still flag.
        if (t[j].text == "const_pointer_cast") saw_freeze = true;
        if (t[j].text == "Clone" && Is(t, j + 1, "(")) saw_clone = true;
      }
      if (saw_freeze && !saw_clone) {
        tainted[lhs] = depth;
      } else if (tainted.count(lhs) > 0) {
        tainted.erase(lhs);
      }
      continue;
    }
    // Mutator through a tainted handle, or chained straight off Freeze().
    if (kMutators.count(tok.text) > 0 && Is(t, i + 1, "(") && i > 0 &&
        (t[i - 1].text == "." || t[i - 1].text == "->")) {
      std::string receiver = ReceiverBefore(t, i - 1);
      bool receiver_tainted = tainted.count(receiver) > 0;
      bool chained_off_freeze = Contains(receiver, "Freeze()");
      if (receiver_tainted || chained_off_freeze) {
        ctx.Report("NL005", tok.line,
                   "mutation " + tok.text + "() through frozen snapshot '" +
                       receiver + "' — a frozen tree is shared with every "
                       "concurrent reader; Clone() first");
      }
    }
  }
}

}  // namespace
// ---------------------------------------------------------------------------
// Function finder + CFG-based dataflow rules (NL007, NL008) and the NL006
// fact collection
// ---------------------------------------------------------------------------

namespace {

struct FuncDef {
  std::string name;     ///< unqualified
  std::string display;  ///< qualified, as written
  size_t body_open = 0;
  size_t body_close = 0;
  int line = 0;
  bool returns_status = false;  ///< return type mentions Status / Result
};

/// Finds function *definitions* by structure: `name ( params ) [qualifiers]
/// [ctor-init-list] {`. Control keywords and lambdas are excluded; macro
/// bodies like `TEST_F(Suite, Name) { ... }` match on purpose (their bodies
/// deserve the dataflow rules too). Functions do not nest, so the scan
/// skips each matched body.
std::vector<FuncDef> FindFunctions(const std::vector<Tok>& t) {
  std::vector<FuncDef> out;
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || !Is(t, i + 1, "(")) continue;
    if (IsControlKeyword(t[i].text)) continue;
    if (i > 0 && (t[i - 1].text == "]" || t[i - 1].text == "operator")) {
      continue;  // lambda intro / operator name
    }
    size_t params_close = MatchForward(t, i + 1, "(", ")");
    if (params_close >= t.size()) continue;
    size_t j = params_close + 1;
    bool gave_up = false;
    while (j < t.size()) {
      const std::string& x = t[j].text;
      if (x == "const" || x == "override" || x == "final" || x == "mutable" ||
          x == "&" || x == "&&") {
        ++j;
        continue;
      }
      if (x == "noexcept") {
        ++j;
        if (Is(t, j, "(")) j = MatchForward(t, j, "(", ")") + 1;
        continue;
      }
      if (x == "->") {  // trailing return type
        ++j;
        while (j < t.size() && t[j].text != "{" && t[j].text != ";") ++j;
        continue;
      }
      if (x == ":") {  // constructor initializer list
        ++j;
        while (j < t.size()) {
          while (j < t.size() &&
                 (t[j].kind == TokKind::kIdent || t[j].text == "::")) {
            ++j;
          }
          if (Is(t, j, "<")) {
            int d = 0;
            while (j < t.size()) {
              if (t[j].text == "<") ++d;
              if (t[j].text == ">" && --d == 0) break;
              ++j;
            }
            ++j;
          }
          if (Is(t, j, "(")) {
            j = MatchForward(t, j, "(", ")") + 1;
          } else if (Is(t, j, "{")) {
            j = MatchForward(t, j, "{", "}") + 1;
          } else {
            gave_up = true;
            break;
          }
          if (Is(t, j, ",")) {
            ++j;
            continue;
          }
          break;
        }
        if (gave_up) break;
        continue;
      }
      break;
    }
    if (gave_up || !Is(t, j, "{")) continue;
    FuncDef f;
    f.name = t[i].text;
    f.line = t[i].line;
    f.body_open = j;
    f.body_close = MatchForward(t, j, "{", "}");
    // Qualified display name: walk back over `Outer::` chains.
    size_t q = i;
    while (q >= 2 && t[q - 1].text == "::" &&
           t[q - 2].kind == TokKind::kIdent) {
      q -= 2;
    }
    if (q >= 1 && t[q - 1].text == "~") --q;
    f.display = JoinTokens(t, q, i + 1);
    // Return type: scan backwards from the name for Status / Result.
    size_t limit = q > 12 ? q - 12 : 0;
    for (size_t b = q; b-- > limit;) {
      const std::string& x = t[b].text;
      if (x == ";" || x == "}" || x == "{" || x == ")" || x == "(" ||
          x == "," || x == ":" || x == "#") {
        break;
      }
      if (x == "Status" || x == "Result") {
        f.returns_status = true;
        break;
      }
    }
    i = f.body_close;  // skip the body before the struct is moved out
    out.push_back(std::move(f));
  }
  return out;
}

/// Unqualified names of calls in token range [begin, end).
void CollectCalls(const std::vector<Tok>& t, size_t begin, size_t end,
                  std::vector<std::string>* out) {
  for (size_t i = begin; i + 1 < end && i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || !Is(t, i + 1, "(")) continue;
    if (IsControlKeyword(t[i].text)) continue;
    out->push_back(t[i].text);
  }
}

/// Predecessor lists from the CFG's successor lists.
std::vector<std::vector<size_t>> Preds(const Cfg& cfg) {
  std::vector<std::vector<size_t>> preds(cfg.nodes.size());
  for (size_t n = 0; n < cfg.nodes.size(); ++n) {
    for (size_t s : cfg.nodes[n].succs) preds[s].push_back(n);
  }
  return preds;
}

// ---------------------------------------------------------------------------
// NL007 — status-path: reaching-definitions over Status/Result locals
// ---------------------------------------------------------------------------

void CheckStatusPaths(const FileCtx& ctx, const std::vector<Tok>& t,
                      const FuncDef& fn, const Cfg& cfg) {
  const size_t begin = fn.body_open + 1;
  const size_t end = fn.body_close;

  // Tracked locals: `[const] Status v` / `Result<...> v` followed by
  // `= | { | ;`. Paren initializers are skipped wholesale — `Status F();`
  // inside a body is a declaration, not a definition, and the house style
  // initializes with `=` anyway.
  std::set<std::string> tracked;
  std::map<size_t, bool> decl_at;  // var-name token index -> has initializer
  for (size_t i = begin; i + 1 < end; ++i) {
    if (t[i].text != "Status" && t[i].text != "Result") continue;
    size_t j = i + 1;
    if (t[i].text == "Result") {
      if (!Is(t, j, "<")) continue;
      int d = 0;
      while (j < end) {
        if (t[j].text == "<") ++d;
        if (t[j].text == ">" && --d == 0) break;
        ++j;
      }
      ++j;
    }
    if (j + 1 >= end || t[j].kind != TokKind::kIdent ||
        IsCppKeyword(t[j].text)) {
      continue;
    }
    const std::string& nx = t[j + 1].text;
    if (nx == "=") {
      tracked.insert(t[j].text);
      decl_at[j] = true;
    } else if (nx == "{") {
      tracked.insert(t[j].text);
      decl_at[j] = !Is(t, j + 2, "}");  // empty braces: no value to drop
    } else if (nx == ";") {
      tracked.insert(t[j].text);
      decl_at[j] = false;
    }
  }
  // Address-taken locals escape the analysis entirely.
  for (size_t i = begin; i + 1 < end; ++i) {
    if (t[i].text == "&" && t[i + 1].kind == TokKind::kIdent) {
      tracked.erase(t[i + 1].text);
    }
  }
  if (tracked.empty() && !fn.returns_status) return;

  struct Ev {
    bool is_def;
    std::string var;
    int def_id;  // -1 for uses
    bool weak;   // def inside nested braces (a lambda body): the statement
                 // may execute the assignment zero times, so it must not
                 // kill the definitions that reach it
  };
  struct DefInfo {
    std::string var;
    int line;
    bool is_decl;
  };
  std::vector<DefInfo> defs;
  std::vector<std::vector<Ev>> events(cfg.nodes.size());
  for (size_t n = 0; n < cfg.nodes.size(); ++n) {
    int bdepth = 0;  // brace depth relative to the node start
    for (size_t k = cfg.nodes[n].begin; k < cfg.nodes[n].end; ++k) {
      if (t[k].text == "{") {
        ++bdepth;
        continue;
      }
      if (t[k].text == "}") {
        if (bdepth > 0) --bdepth;
        continue;
      }
      auto it = decl_at.find(k);
      if (it != decl_at.end()) {
        if (tracked.count(t[k].text) == 0) continue;
        if (it->second) {
          defs.push_back({t[k].text, t[k].line, /*is_decl=*/true});
          events[n].push_back(
              {true, t[k].text, static_cast<int>(defs.size()) - 1, false});
        }
        continue;
      }
      if (t[k].kind != TokKind::kIdent || tracked.count(t[k].text) == 0) {
        continue;
      }
      if (k > 0 && (t[k - 1].text == "." || t[k - 1].text == "->" ||
                    t[k - 1].text == "::")) {
        continue;  // member of some other object that shares the name
      }
      if (Is(t, k + 1, "=") && !Is(t, k + 2, "=")) {
        defs.push_back({t[k].text, t[k].line, /*is_decl=*/false});
        events[n].push_back(
            {true, t[k].text, static_cast<int>(defs.size()) - 1, bdepth > 0});
        continue;
      }
      events[n].push_back({false, t[k].text, -1, false});
    }
  }

  // Forward fixpoint: which definitions reach each node entry.
  using State = std::map<std::string, std::set<int>>;
  std::vector<std::vector<size_t>> preds = Preds(cfg);
  std::vector<State> in(cfg.nodes.size());
  std::vector<State> out_state(cfg.nodes.size());
  bool changed = true;
  size_t rounds = 0;
  while (changed && rounds++ < cfg.nodes.size() + 8) {
    changed = false;
    for (size_t n = 0; n < cfg.nodes.size(); ++n) {
      State s;
      for (size_t p : preds[n]) {
        for (const auto& [var, ids] : out_state[p]) {
          s[var].insert(ids.begin(), ids.end());
        }
      }
      in[n] = s;
      for (const Ev& e : events[n]) {
        if (!e.is_def) continue;
        if (e.weak) {
          s[e.var].insert(e.def_id);
        } else {
          s[e.var] = {e.def_id};
        }
      }
      if (s != out_state[n]) {
        out_state[n] = std::move(s);
        changed = true;
      }
    }
  }

  // Mark the definitions each use can observe; unobserved ones are dropped
  // errors.
  std::vector<bool> used(defs.size(), false);
  for (size_t n = 0; n < cfg.nodes.size(); ++n) {
    State s = in[n];
    for (const Ev& e : events[n]) {
      if (e.is_def) {
        if (e.weak) {
          s[e.var].insert(e.def_id);
        } else {
          s[e.var] = {e.def_id};
        }
      } else {
        for (int id : s[e.var]) used[id] = true;
      }
    }
  }
  for (size_t d = 0; d < defs.size(); ++d) {
    if (used[d]) continue;
    if (defs[d].is_decl) {
      ctx.Report("NL007", defs[d].line,
                 "Status/Result value '" + defs[d].var + "' in '" +
                     fn.display +
                     "' is constructed but never consulted on any path — a "
                     "dropped error; check/propagate it or remove it");
    } else {
      ctx.Report("NL007", defs[d].line,
                 "value assigned to '" + defs[d].var + "' in '" + fn.display +
                     "' is overwritten or goes out of scope on every path "
                     "before being read — a dropped error");
    }
  }

  // Fall-off-the-end: a Status-returning function whose CFG reaches the
  // exit from a node that is not a return/throw.
  if (fn.returns_status) {
    std::set<int> reported;
    for (size_t n = 2; n < cfg.nodes.size(); ++n) {
      const CfgNode& node = cfg.nodes[n];
      if (std::find(node.succs.begin(), node.succs.end(),
                    static_cast<size_t>(1)) == node.succs.end()) {
        continue;
      }
      const std::string first =
          node.begin < node.end && node.begin < t.size() ? t[node.begin].text
                                                         : "";
      if (first == "return" || first == "throw") continue;
      if (first == "switch") continue;  // exhaustive-enum switches
      std::string text = JoinTokens(t, node.begin, node.end);
      if (Contains(text, "abort") || Contains(text, "Unreachable") ||
          Contains(text, "unreachable") || Contains(text, "terminate")) {
        continue;
      }
      int line = node.line != 0 ? node.line : fn.line;
      if (reported.insert(line).second) {
        ctx.Report("NL007", line,
                   "Status-returning function '" + fn.display +
                       "' can fall off the end from here without returning "
                       "a value — every path must return or propagate");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// NL008 — use-after-move: forward may-analysis of move taint
// ---------------------------------------------------------------------------

void CheckUseAfterMove(const FileCtx& ctx, const std::vector<Tok>& t,
                       const FuncDef& fn, const Cfg& cfg) {
  const size_t begin = fn.body_open + 1;
  const size_t end = fn.body_close;
  // Candidates: simple identifiers that are std::move()d in this body.
  std::set<std::string> moved_vars;
  for (size_t i = begin; i + 3 < end; ++i) {
    if (t[i].text == "move" && Is(t, i + 1, "(") &&
        t[i + 2].kind == TokKind::kIdent && Is(t, i + 3, ")")) {
      moved_vars.insert(t[i + 2].text);
    }
  }
  if (moved_vars.empty()) return;

  static const std::set<std::string> kReinit = {
      "reset", "clear", "assign", "emplace", "swap", "Reset", "Clear",
  };
  enum class Kind { kMove, kKill, kUse };
  struct Ev {
    Kind kind;
    std::string var;
    int line;
  };
  std::vector<std::vector<Ev>> events(cfg.nodes.size());
  for (size_t n = 0; n < cfg.nodes.size(); ++n) {
    // Statement boundary tracking within the node: `;` and braces delimit
    // statements (braces inside a plain statement are lambda bodies).
    size_t stmt_begin = cfg.nodes[n].begin;
    std::set<std::string> stmt_moved;
    for (size_t k = cfg.nodes[n].begin;
         k < cfg.nodes[n].end && k < t.size(); ++k) {
      if (t[k].text == ";" || t[k].text == "{" || t[k].text == "}") {
        stmt_begin = k + 1;
        stmt_moved.clear();
        continue;
      }
      if (t[k].text == "move" && Is(t, k + 1, "(") && k + 3 < end &&
          t[k + 2].kind == TokKind::kIdent && Is(t, k + 3, ")") &&
          moved_vars.count(t[k + 2].text) > 0) {
        const std::string& v = t[k + 2].text;
        // `v = f(std::move(v))`: the assignment completes after the RHS is
        // evaluated, so the statement's net effect is a reassignment — the
        // idiomatic fold pattern (`lhs = Binary(op, std::move(lhs), rhs)`),
        // not a dangling move.
        bool self_assign = false;
        for (size_t p = stmt_begin; p + 1 < k; ++p) {
          if (t[p].kind == TokKind::kIdent && t[p].text == v &&
              Is(t, p + 1, "=") && !Is(t, p + 2, "=") &&
              (p == 0 || (t[p - 1].text != "." && t[p - 1].text != "->" &&
                          t[p - 1].text != "::"))) {
            self_assign = true;
            break;
          }
        }
        // A second move of the same var in a `?:` statement sits in the
        // other arm — the arms are exclusive, not sequential.
        bool ternary_arm = false;
        if (!self_assign && stmt_moved.count(v) > 0) {
          for (size_t p = stmt_begin; p < k; ++p) {
            if (t[p].text == "?") {
              ternary_arm = true;
              break;
            }
          }
        }
        if (self_assign) {
          events[n].push_back({Kind::kKill, v, t[k].line});
        } else if (!ternary_arm) {
          events[n].push_back({Kind::kMove, v, t[k].line});
          stmt_moved.insert(v);
        }
        k += 3;  // consume `( var )`
        continue;
      }
      if (t[k].kind != TokKind::kIdent || moved_vars.count(t[k].text) == 0) {
        continue;
      }
      const std::string prev = k > 0 ? t[k - 1].text : "";
      if (prev == "." || prev == "->" || prev == "::") continue;
      const std::string next = k + 1 < t.size() ? t[k + 1].text : "";
      // Reassignment re-establishes a value.
      if (next == "=" && !Is(t, k + 2, "=")) {
        events[n].push_back({Kind::kKill, t[k].text, t[k].line});
        continue;
      }
      // v.reset() / v.clear() / v.assign(...) / v.swap(...) do too.
      if ((next == "." || next == "->") && k + 3 < t.size() &&
          kReinit.count(t[k + 2].text) > 0 && Is(t, k + 3, "(")) {
        events[n].push_back({Kind::kKill, t[k].text, t[k].line});
        continue;
      }
      // Out-parameter: F(&v) — assume the callee re-initializes it.
      if (prev == "&" && k >= 2 &&
          (t[k - 2].text == "(" || t[k - 2].text == "," ||
           t[k - 2].text == "=")) {
        events[n].push_back({Kind::kKill, t[k].text, t[k].line});
        continue;
      }
      // Structured binding (`auto& [name, v] : ...`, `auto [a, v] = ...`)
      // introduces a fresh binding, not the moved-from object.
      if ((prev == "[" || prev == ",") && (next == "," || next == "]")) {
        size_t p = k;
        while (p > begin &&
               (t[p - 1].kind == TokKind::kIdent || t[p - 1].text == ",")) {
          --p;
        }
        if (p >= 2 && t[p - 1].text == "[" &&
            (t[p - 2].text == "auto" || t[p - 2].text == "&" ||
             t[p - 2].text == "&&")) {
          events[n].push_back({Kind::kKill, t[k].text, t[k].line});
          continue;
        }
      }
      // Fresh declaration of the same name (loop-scoped `ShardRun run;`,
      // shadowing) — a new object, not the moved-from one.
      const bool type_before =
          (k > 0 && t[k - 1].kind == TokKind::kIdent &&
           !IsCppKeyword(t[k - 1].text)) ||
          prev == "&" || prev == "*" || prev == ">";
      const bool declarator_after = next == ";" || next == "=" ||
                                    next == "{" || next == "(" ||
                                    next == ":" || next == ")" || next == ",";
      if (type_before && declarator_after) {
        events[n].push_back({Kind::kKill, t[k].text, t[k].line});
        continue;
      }
      events[n].push_back({Kind::kUse, t[k].text, t[k].line});
    }
  }

  // Forward may-analysis: var -> line of the move that tainted it.
  using State = std::map<std::string, int>;
  auto merge_into = [](const State& from, State* into) {
    for (const auto& [var, line] : from) {
      auto it = into->find(var);
      if (it == into->end()) {
        (*into)[var] = line;
      } else {
        it->second = std::min(it->second, line);
      }
    }
  };
  std::vector<std::vector<size_t>> preds = Preds(cfg);
  std::vector<State> in(cfg.nodes.size());
  std::vector<State> out_state(cfg.nodes.size());
  bool changed = true;
  size_t rounds = 0;
  while (changed && rounds++ < cfg.nodes.size() + 8) {
    changed = false;
    for (size_t n = 0; n < cfg.nodes.size(); ++n) {
      State s;
      for (size_t p : preds[n]) merge_into(out_state[p], &s);
      in[n] = s;
      for (const Ev& e : events[n]) {
        if (e.kind == Kind::kMove) {
          s[e.var] = e.line;
        } else if (e.kind == Kind::kKill) {
          s.erase(e.var);
        }
      }
      if (s != out_state[n]) {
        out_state[n] = std::move(s);
        changed = true;
      }
    }
  }

  std::set<std::pair<int, std::string>> reported;
  for (size_t n = 0; n < cfg.nodes.size(); ++n) {
    State s = in[n];
    for (const Ev& e : events[n]) {
      if (e.kind == Kind::kKill) {
        s.erase(e.var);
        continue;
      }
      auto it = s.find(e.var);
      if (it != s.end() && reported.insert({e.line, e.var}).second) {
        ctx.Report(
            "NL008", e.line,
            "'" + e.var + "' in '" + fn.display + "' is " +
                (e.kind == Kind::kMove ? "moved again" : "used") +
                " after std::move on line " + std::to_string(it->second) +
                " with no reassignment in between — a moved-from value is "
                "unspecified; reassign/reset it first");
      }
      if (e.kind == Kind::kMove) s[e.var] = e.line;
    }
  }
}

// ---------------------------------------------------------------------------
// NL006 fact collection (checked in Finish() with merged callee summaries)
// ---------------------------------------------------------------------------

detail::RespFunc BuildRespFunc(const LintOptions& options,
                               const std::string& path,
                               const std::vector<Tok>& t, const FuncDef& fn,
                               const Cfg& cfg) {
  detail::RespFunc rf;
  rf.file = path;
  rf.display = fn.display;
  for (const CfgNode& n : cfg.nodes) {
    detail::RespNode rn;
    rn.line = n.line;
    rn.succs = n.succs;
    CollectCalls(t, n.begin, n.end, &rn.calls);
    for (const std::string& c : rn.calls) {
      if (options.poll_functions.count(c) > 0) rn.direct_poll = true;
      if (options.producer_functions.count(c) > 0) rn.producer = true;
    }
    rf.nodes.push_back(std::move(rn));
  }
  for (const CfgLoop& l : cfg.loops) {
    rf.loops.push_back({l.head, l.first, l.last, l.back_srcs, l.always_true,
                        l.range_for, l.line});
  }
  return rf;
}

}  // namespace
// ---------------------------------------------------------------------------
// FileAnalysis — opaque result of the pure per-file phase
// ---------------------------------------------------------------------------

struct FileAnalysis::Impl {
  std::string path;
  detail::FileData data;
  detail::UsageTracker usage;
  std::vector<Finding> findings;
  std::vector<detail::DirectiveSite> directives;
  std::vector<detail::PendingInit> pending_inits;
  std::map<std::string, std::set<std::string>> init_sites;
  std::map<std::string, bool> fn_polls;  ///< one-level callee summaries
  std::vector<detail::RespFunc> responsive;
};

FileAnalysis::FileAnalysis() : impl_(new Impl) {}
FileAnalysis::~FileAnalysis() { delete impl_; }

// ---------------------------------------------------------------------------
// Linter
// ---------------------------------------------------------------------------

struct Linter::Impl {
  LintOptions options;
  std::vector<Finding> findings;
  bool finished = false;

  std::map<std::string, detail::FileData> files;
  std::map<std::string, detail::UsageTracker> usage;
  std::map<std::string, std::vector<detail::DirectiveSite>> directives;
  std::vector<detail::PendingInit> pending_inits;
  /// member name -> file stems where an initializer site was seen.
  std::map<std::string, std::set<std::string>> init_sites;
  /// unqualified function name -> body calls a poll function directly, in
  /// any TU (merged with logical or).
  std::map<std::string, bool> fn_polls;
  std::vector<detail::RespFunc> responsive;

  void Report(const std::string& rule_id, const std::string& file, int line,
              std::string message) {
    if (!RuleEnabledIn(options, rule_id)) return;
    Finding f;
    f.rule = rule_id;
    f.rule_name = RuleName(rule_id);
    f.file = file;
    f.line = line;
    f.message = std::move(message);
    auto it = files.find(file);
    const detail::FileData* fd = it != files.end() ? &it->second : nullptr;
    ResolveSuppressionFor(options, fd, &f, &usage[file]);
    findings.push_back(std::move(f));
  }

  // NL006 — cancellation-responsiveness, with the merged callee summaries.
  void CheckResponsiveness() {
    auto node_polls = [this](const detail::RespNode& n) {
      if (n.direct_poll) return true;
      for (const std::string& c : n.calls) {
        auto it = fn_polls.find(c);
        if (it != fn_polls.end() && it->second) return true;
      }
      return false;
    };
    for (const detail::RespFunc& rf : responsive) {
      for (const detail::RespLoop& loop : rf.loops) {
        // A loop must stay responsive when it can iterate unboundedly:
        // constant-true condition, or it is the innermost loop around a
        // streaming-producer call (it runs for as long as the producer
        // keeps producing, whatever its own condition looks like).
        bool constant_true = loop.always_true && !loop.range_for;
        bool around_producer = false;
        if (!constant_true) {
          for (size_t idx = loop.first;
               idx <= loop.last && idx < rf.nodes.size(); ++idx) {
            if (!rf.nodes[idx].producer) continue;
            const detail::RespLoop* inner = nullptr;
            for (const detail::RespLoop& l2 : rf.loops) {
              if (l2.first <= idx && idx <= l2.last &&
                  (inner == nullptr || l2.first > inner->first)) {
                inner = &l2;
              }
            }
            if (inner == &loop) {
              around_producer = true;
              break;
            }
          }
        }
        if (!constant_true && !around_producer) continue;
        if (loop.head < rf.nodes.size() && node_polls(rf.nodes[loop.head])) {
          continue;
        }
        // DFS from the head's in-loop successors through non-polling
        // nodes; reaching a back-edge source means one full iteration can
        // complete without a poll.
        std::set<size_t> back(loop.back_srcs.begin(), loop.back_srcs.end());
        std::vector<size_t> stack;
        std::set<size_t> visited;
        for (size_t s : rf.nodes[loop.head].succs) {
          if (s >= loop.first && s <= loop.last) stack.push_back(s);
        }
        bool bad = false;
        while (!stack.empty()) {
          size_t n = stack.back();
          stack.pop_back();
          if (!visited.insert(n).second) continue;
          if (node_polls(rf.nodes[n])) continue;
          if (back.count(n) > 0) {
            bad = true;
            break;
          }
          for (size_t s : rf.nodes[n].succs) {
            if (s >= loop.first && s <= loop.last) stack.push_back(s);
          }
        }
        if (!bad) continue;
        Report("NL006", rf.file, loop.line,
               "loop in '" + rf.display + "' can iterate unboundedly (" +
                   (constant_true ? "constant-true condition"
                                  : "innermost loop around a streaming "
                                    "producer call") +
                   ") and has a path from one iteration to the next that "
                   "never reaches a deadline/cancel poll — call PollCancel()"
                   " / ExecutionContext::Check() at the top of the loop");
      }
    }
  }

  // NL009 — stale suppressions. Runs last: every other rule (including the
  // Finish()-stage ones) has already recorded which suppressions fired.
  // Only meaningful on a full-rule run with suppressions honored; a
  // --rule/--no-suppressions invocation leaves most suppressions unused by
  // construction.
  void CheckStaleSuppressions() {
    if (!options.honor_suppressions || !options.enabled_rules.empty()) return;
    std::set<size_t> used_list;
    for (const auto& [path, u] : usage) {
      (void)path;
      used_list.insert(u.used_list.begin(), u.used_list.end());
    }
    for (size_t e = 0; e < options.suppressions.size(); ++e) {
      if (used_list.count(e) > 0) continue;
      const SuppressionEntry& entry = options.suppressions[e];
      // Entries whose path never entered this scan can't be judged (the
      // test harness and --rule runs feed partial file sets).
      bool matches_scanned = false;
      for (const auto& [path, fd] : files) {
        (void)fd;
        if (Contains(path, entry.path_substr)) {
          matches_scanned = true;
          break;
        }
      }
      if (!matches_scanned) continue;
      Report("NL009", options.suppressions_path, entry.line,
             "suppression-list entry '" + entry.rule + " " +
                 entry.path_substr +
                 "' no longer suppresses any finding — remove the stale "
                 "entry");
    }
    for (const auto& [path, sites] : directives) {
      auto uit = usage.find(path);
      const detail::UsageTracker* u =
          uit != usage.end() ? &uit->second : nullptr;
      for (const detail::DirectiveSite& d : sites) {
        bool used = false;
        if (u != nullptr) {
          used = d.file_scope ? u->file_rules.count(d.rule) > 0
                              : u->inline_uses.count({d.line, d.rule}) > 0;
        }
        if (used) continue;
        Report("NL009", path, d.line,
               std::string(d.file_scope ? "file-scope" : "inline") +
                   " suppression for " + d.rule + " (" + RuleName(d.rule) +
                   ") no longer suppresses any finding — remove the stale "
                   "directive");
      }
    }
  }
};

Linter::Linter(LintOptions options) : impl_(new Impl) {
  impl_->options = std::move(options);
}

Linter::~Linter() { delete impl_; }

std::unique_ptr<FileAnalysis> Linter::Analyze(const std::string& path,
                                              const std::string& content)
    const {
  std::unique_ptr<FileAnalysis> fa(new FileAnalysis);
  FileAnalysis::Impl* a = fa->impl_;
  a->path = path;
  LexedFile lexed = Lex(content);
  a->data.comments = lexed.comments;
  a->data.lines = std::move(lexed.lines);
  CollectDirectives(&a->data, &a->directives);
  const LintOptions& options = impl_->options;
  FileCtx ctx{&options, &a->path, &a->data, &a->usage, &a->findings};
  const std::vector<Tok>& t = lexed.toks;
  CheckRawSync(ctx, t);
  CheckMutexRank(ctx, t, &a->pending_inits, &a->init_sites);
  CheckBlockingUnderLock(ctx, t);
  CheckGuardedMembers(ctx, t);
  CheckFrozenMutation(ctx, t);
  // Function-level CFG + dataflow rules, and the cross-file facts.
  for (const FuncDef& fn : FindFunctions(t)) {
    if (fn.body_close >= t.size() || fn.body_close <= fn.body_open) continue;
    Cfg cfg = CfgBuilder(t).Build(fn.body_open + 1, fn.body_close);
    CheckStatusPaths(ctx, t, fn, cfg);
    CheckUseAfterMove(ctx, t, fn, cfg);
    std::vector<std::string> calls;
    CollectCalls(t, fn.body_open + 1, fn.body_close, &calls);
    bool polls = false;
    for (const std::string& c : calls) {
      if (options.poll_functions.count(c) > 0) polls = true;
    }
    auto [pit, inserted] = a->fn_polls.emplace(fn.name, polls);
    if (!inserted) pit->second = pit->second || polls;
    if (options.responsive_functions.count(fn.name) > 0) {
      a->responsive.push_back(BuildRespFunc(options, path, t, fn, cfg));
    }
  }
  return fa;
}

void Linter::Merge(std::unique_ptr<FileAnalysis> analysis) {
  FileAnalysis::Impl* a = analysis->impl_;
  impl_->files[a->path] = std::move(a->data);
  detail::UsageTracker& u = impl_->usage[a->path];
  u.used_list.insert(a->usage.used_list.begin(), a->usage.used_list.end());
  u.inline_uses.insert(a->usage.inline_uses.begin(),
                       a->usage.inline_uses.end());
  u.file_rules.insert(a->usage.file_rules.begin(), a->usage.file_rules.end());
  impl_->directives[a->path] = std::move(a->directives);
  for (Finding& f : a->findings) {
    impl_->findings.push_back(std::move(f));
  }
  for (detail::PendingInit& p : a->pending_inits) {
    impl_->pending_inits.push_back(std::move(p));
  }
  for (auto& [member, stems] : a->init_sites) {
    impl_->init_sites[member].insert(stems.begin(), stems.end());
  }
  for (const auto& [name, polls] : a->fn_polls) {
    auto [pit, inserted] = impl_->fn_polls.emplace(name, polls);
    if (!inserted) pit->second = pit->second || polls;
  }
  for (detail::RespFunc& rf : a->responsive) {
    impl_->responsive.push_back(std::move(rf));
  }
}

void Linter::AddFile(const std::string& path, const std::string& content) {
  Merge(Analyze(path, content));
}

void Linter::Finish() {
  if (impl_->finished) return;
  impl_->finished = true;
  // NL002: member declarations that never met a constructor-initializer.
  for (const detail::PendingInit& p : impl_->pending_inits) {
    auto it = impl_->init_sites.find(p.member);
    bool resolved = false;
    if (it != impl_->init_sites.end()) {
      resolved = it->second.count(FileStem(p.file)) > 0;
    }
    if (!resolved) {
      impl_->Report("NL002", p.file, p.line,
                    p.type + " member '" + p.member +
                        "' declared without a LockRank initializer and no "
                        "constructor initializes it with one");
    }
  }
  // Rank doc-sync: every registered rank needs its DESIGN.md §2e row.
  if (!impl_->options.documented_ranks.empty()) {
    for (const std::string& rank : impl_->options.known_ranks) {
      if (impl_->options.documented_ranks.count(rank) == 0) {
        impl_->Report("NL002", impl_->options.lock_rank_path, 1,
                      "LockRank::" + rank +
                          " has no row in the DESIGN.md section 2e rank "
                          "table — document where it sits and why");
      }
    }
  }
  impl_->CheckResponsiveness();
  impl_->CheckStaleSuppressions();  // last: needs every usage recorded
  std::stable_sort(impl_->findings.begin(), impl_->findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
}

const std::vector<Finding>& Linter::findings() const {
  return impl_->findings;
}

int Linter::unsuppressed_count() const {
  int count = 0;
  for (const Finding& f : impl_->findings) {
    if (!f.suppressed) ++count;
  }
  return count;
}

std::string DescribeCfgForTest(const std::string& source,
                               const std::string& function_name) {
  LexedFile lexed = Lex(source);
  const std::vector<Tok>& t = lexed.toks;
  for (const FuncDef& fn : FindFunctions(t)) {
    if (fn.name != function_name) continue;
    if (fn.body_close >= t.size()) break;
    Cfg cfg = CfgBuilder(t).Build(fn.body_open + 1, fn.body_close);
    std::ostringstream out;
    for (size_t n = 0; n < cfg.nodes.size(); ++n) {
      const CfgNode& node = cfg.nodes[n];
      out << n << " " << node.kind << " line=" << node.line << " ->";
      for (size_t s = 0; s < node.succs.size(); ++s) {
        out << (s == 0 ? " " : ",") << node.succs[s];
      }
      out << "\n";
    }
    for (const CfgLoop& l : cfg.loops) {
      out << "loop head=" << l.head << " back=";
      for (size_t s = 0; s < l.back_srcs.size(); ++s) {
        if (s != 0) out << ",";
        out << l.back_srcs[s];
      }
      out << " true=" << (l.always_true ? 1 : 0)
          << " range_for=" << (l.range_for ? 1 : 0) << "\n";
    }
    return out.str();
  }
  return "";
}

}  // namespace nimble_lint
