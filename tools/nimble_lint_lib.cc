#include "tools/nimble_lint.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

/// Implementation of the nimble-lint analysis (see nimble_lint.h for the
/// rule catalog). Pipeline per file:
///
///   1. Lex: a real C++ token scanner (comments, string/char literals, raw
///      strings, preprocessor lines, identifiers, punctuation), each token
///      stamped with its line. Comments are collected per line separately —
///      they carry the suppression directives.
///   2. Per-rule token passes with lexical scope tracking (brace depth,
///      RAII-guard lifetimes, class bodies with nesting).
///   3. Suppression resolution: inline `// nimble-lint: <alias>(<reason>)`
///      on the finding's line or the line above, `// nimble-lint: file
///      <alias>(<reason>)` anywhere for whole-file scope, and the
///      checked-in suppression list.
///
/// Cross-file state (NL002 member declarations awaiting a constructor
/// initializer in a sibling .cc, the rank doc-sync check) resolves in
/// Finish().
namespace nimble_lint {
namespace {

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

struct RuleInfo {
  const char* id;
  const char* name;
  /// Extra aliases accepted in inline directives.
  const char* alias;
};

constexpr RuleInfo kRules[] = {
    {"NL001", "raw-sync", ""},
    {"NL002", "mutex-rank", ""},
    {"NL003", "blocking-under-lock", "blocking"},
    {"NL004", "guarded-member", "unguarded"},
    {"NL005", "frozen-mutation", "frozen"},
};

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokKind { kIdent, kNumber, kString, kChar, kPunct };

struct Tok {
  TokKind kind;
  std::string text;
  int line;
};

struct LexedFile {
  std::vector<Tok> toks;
  /// line number -> comment texts that *end* on that line (a multi-line
  /// block comment registers on every line it spans, so directives inside
  /// it attach where they are written).
  std::map<int, std::vector<std::string>> comments;
  std::vector<std::string> lines;  ///< raw source, for suppression matching
};

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

LexedFile Lex(const std::string& src) {
  LexedFile out;
  {
    std::string cur;
    for (char c : src) {
      if (c == '\n') {
        out.lines.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
    out.lines.push_back(cur);
  }

  size_t i = 0;
  const size_t n = src.size();
  int line = 1;
  auto advance = [&](size_t k) {
    for (size_t j = 0; j < k && i < n; ++j, ++i) {
      if (src[i] == '\n') ++line;
    }
  };

  while (i < n) {
    char c = src[i];
    if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      size_t start = i;
      while (i < n && src[i] != '\n') ++i;
      out.comments[line].push_back(src.substr(start, i - start));
      continue;  // newline handled by the loop
    }
    // Block comment: register its text on every line it spans.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      size_t start = i;
      int first_line = line;
      advance(2);
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) advance(1);
      advance(2);
      std::string text = src.substr(start, i - start);
      for (int l = first_line; l <= line; ++l) out.comments[l].push_back(text);
      continue;
    }
    // Preprocessor directive: skip whole (continued) line. Only when `#`
    // starts the line (ignoring whitespace) — otherwise it's a stray token.
    if (c == '#') {
      bool line_start = true;
      for (size_t j = i; j-- > 0;) {
        if (src[j] == '\n') break;
        if (!std::isspace(static_cast<unsigned char>(src[j]))) {
          line_start = false;
          break;
        }
      }
      if (line_start) {
        while (i < n) {
          if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
            advance(2);
            continue;
          }
          if (src[i] == '\n') break;
          // Comments may open inside a directive; treat // as end-of-logic.
          if (src[i] == '/' && i + 1 < n && src[i + 1] == '/') {
            while (i < n && src[i] != '\n') ++i;
            break;
          }
          advance(1);
        }
        continue;
      }
      out.toks.push_back({TokKind::kPunct, "#", line});
      advance(1);
      continue;
    }
    // Raw string literal: R"delim( ... )delim"
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      size_t d = i + 2;
      std::string delim;
      while (d < n && src[d] != '(') delim += src[d++];
      std::string closer = ")" + delim + "\"";
      size_t end = src.find(closer, d);
      int tok_line = line;
      if (end == std::string::npos) {
        advance(n - i);
        out.toks.push_back({TokKind::kString, "<raw>", tok_line});
        continue;
      }
      advance(end + closer.size() - i);
      out.toks.push_back({TokKind::kString, "<raw>", tok_line});
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      char quote = c;
      int tok_line = line;
      advance(1);
      std::string text;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) {
          text += src[i];
          advance(1);
        }
        if (i < n) {
          text += src[i];
          advance(1);
        }
      }
      advance(1);
      out.toks.push_back(
          {quote == '"' ? TokKind::kString : TokKind::kChar, text, tok_line});
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      int tok_line = line;
      while (i < n && IsIdentChar(src[i])) ++i;
      out.toks.push_back(
          {TokKind::kIdent, src.substr(start, i - start), tok_line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      int tok_line = line;
      while (i < n && (IsIdentChar(src[i]) || src[i] == '.')) ++i;
      out.toks.push_back(
          {TokKind::kNumber, src.substr(start, i - start), tok_line});
      continue;
    }
    // Multi-char punctuation we care about: :: -> (others single).
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      out.toks.push_back({TokKind::kPunct, "::", line});
      advance(2);
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      out.toks.push_back({TokKind::kPunct, "->", line});
      advance(2);
      continue;
    }
    out.toks.push_back({TokKind::kPunct, std::string(1, c), line});
    advance(1);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Small helpers over the token stream
// ---------------------------------------------------------------------------

bool Is(const std::vector<Tok>& t, size_t i, const char* text) {
  return i < t.size() && t[i].text == text;
}

/// Index of the matching closer for the opener at `open` (returns t.size()
/// when unbalanced).
size_t MatchForward(const std::vector<Tok>& t, size_t open,
                    const char* open_text, const char* close_text) {
  int depth = 0;
  for (size_t i = open; i < t.size(); ++i) {
    if (t[i].text == open_text) ++depth;
    if (t[i].text == close_text && --depth == 0) return i;
  }
  return t.size();
}

std::string JoinTokens(const std::vector<Tok>& t, size_t begin, size_t end) {
  std::string out;
  for (size_t i = begin; i < end && i < t.size(); ++i) out += t[i].text;
  return out;
}

/// Walks backwards from `i` (exclusive) over a postfix expression
/// (identifiers, ::, ., ->, balanced () and []) and returns its text — the
/// receiver of a member call, e.g. "flight->cv" for `flight->cv.Wait(...)`.
std::string ReceiverBefore(const std::vector<Tok>& t, size_t i) {
  std::vector<std::string> parts;
  size_t j = i;
  bool expect_primary = true;  // next (leftwards) should be a name or ()/[]
  while (j > 0) {
    const Tok& tok = t[j - 1];
    if (expect_primary) {
      if (tok.text == ")" || tok.text == "]") {
        const char* open = tok.text == ")" ? "(" : "[";
        int depth = 0;
        size_t k = j;
        while (k > 0) {
          if (t[k - 1].text == tok.text) ++depth;
          if (t[k - 1].text == open && --depth == 0) break;
          --k;
        }
        if (k == 0) break;
        for (size_t m = k - 1; m < j; ++m) parts.push_back(t[m].text);
        std::reverse(parts.end() - (j - (k - 1)), parts.end());
        j = k - 1;
        expect_primary = false;
        continue;
      }
      if (tok.kind == TokKind::kIdent) {
        parts.push_back(tok.text);
        --j;
        expect_primary = false;
        continue;
      }
      break;
    }
    if (tok.text == "." || tok.text == "->" || tok.text == "::") {
      parts.push_back(tok.text);
      --j;
      expect_primary = true;
      continue;
    }
    break;
  }
  std::reverse(parts.begin(), parts.end());
  std::string out;
  for (const std::string& p : parts) out += p;
  return out;
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string FileStem(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  size_t dot = base.find_last_of('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

}  // namespace

// ---------------------------------------------------------------------------
// Public helpers
// ---------------------------------------------------------------------------

std::string ResolveRule(const std::string& id_or_name) {
  for (const RuleInfo& r : kRules) {
    if (id_or_name == r.id || id_or_name == r.name || id_or_name == r.alias) {
      return r.id;
    }
  }
  return "";
}

std::set<std::string> ParseLockRankRegistry(const std::string& content) {
  std::set<std::string> ranks;
  LexedFile lexed = Lex(content);
  const std::vector<Tok>& t = lexed.toks;
  for (size_t i = 0; i + 3 < t.size(); ++i) {
    if (Is(t, i, "enum") && Is(t, i + 1, "class") && Is(t, i + 2, "LockRank")) {
      size_t open = i + 3;
      while (open < t.size() && t[open].text != "{") ++open;
      size_t close = MatchForward(t, open, "{", "}");
      for (size_t j = open + 1; j < close; ++j) {
        if (t[j].kind == TokKind::kIdent && t[j].text.size() > 1 &&
            t[j].text[0] == 'k' &&
            std::isupper(static_cast<unsigned char>(t[j].text[1]))) {
          ranks.insert(t[j].text);
        }
      }
      break;
    }
  }
  return ranks;
}

std::set<std::string> ParseDocumentedRanks(const std::string& content) {
  // Only markdown *table rows* count — a line starting with `|` whose
  // first backticked token is a kName. Prose mentions ("...the registry
  // lock (rank `kShardFragments`)...") do not document where a rank sits
  // in the hierarchy, so they must not satisfy the doc-sync check.
  std::set<std::string> ranks;
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) {
    size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] != '|') continue;
    size_t tick = line.find('`');
    if (tick == std::string::npos) continue;
    size_t end = line.find('`', tick + 1);
    if (end == std::string::npos) continue;
    std::string name = line.substr(tick + 1, end - tick - 1);
    if (name.size() > 1 && name[0] == 'k' &&
        std::isupper(static_cast<unsigned char>(name[1])) &&
        name.find_first_not_of(
            "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789") ==
            std::string::npos) {
      ranks.insert(name);
    }
  }
  return ranks;
}

std::vector<SuppressionEntry> ParseSuppressionList(const std::string& content) {
  std::vector<SuppressionEntry> entries;
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) {
    size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    std::istringstream fields(line);
    SuppressionEntry e;
    fields >> e.rule >> e.path_substr;
    std::getline(fields, e.line_substr);
    size_t s = e.line_substr.find_first_not_of(" \t");
    e.line_substr = s == std::string::npos ? "*" : e.line_substr.substr(s);
    if (!e.rule.empty() && !e.path_substr.empty()) entries.push_back(e);
  }
  return entries;
}

// ---------------------------------------------------------------------------
// Linter
// ---------------------------------------------------------------------------

struct Linter::Impl {
  LintOptions options;
  std::vector<Finding> findings;
  bool finished = false;

  /// Per-file data retained for Finish()-stage suppression resolution.
  struct FileData {
    std::map<int, std::vector<std::string>> comments;
    std::vector<std::string> lines;
    /// rule id -> reason, from `nimble-lint: file <alias>(<reason>)`.
    std::map<std::string, std::string> file_suppressions;
  };
  std::map<std::string, FileData> files;

  /// NL002: Mutex members declared without an initializer, waiting for a
  /// constructor-initializer-list site.
  struct PendingInit {
    std::string file;
    int line;
    std::string member;
    std::string type;  ///< Mutex / SharedMutex
  };
  std::vector<PendingInit> pending_inits;
  /// member name -> file stems where `member(LockRank::...` / `{...}` was
  /// seen (declaration sites included — harmless for the pending check).
  std::map<std::string, std::set<std::string>> init_sites;

  bool RuleEnabled(const std::string& id) const {
    if (options.enabled_rules.empty()) return true;
    for (const std::string& r : options.enabled_rules) {
      if (ResolveRule(r) == id) return true;
    }
    return false;
  }

  void Report(const std::string& rule_id, const std::string& file, int line,
              std::string message) {
    if (!RuleEnabled(rule_id)) return;
    Finding f;
    f.rule = rule_id;
    for (const RuleInfo& r : kRules) {
      if (rule_id == r.id) f.rule_name = r.name;
    }
    f.file = file;
    f.line = line;
    f.message = std::move(message);
    ResolveSuppression(&f);
    findings.push_back(std::move(f));
  }

  /// True when `comment` carries a directive for `rule_id`; `*reason` gets
  /// the parenthesised text. Directive grammar:
  ///   nimble-lint: [file] alias(reason)[, alias2(reason2)...]
  bool DirectiveFor(const std::string& comment, const std::string& rule_id,
                    bool want_file_scope, std::string* reason) const {
    size_t pos = comment.find("nimble-lint:");
    if (pos == std::string::npos) return false;
    std::string rest = comment.substr(pos + 12);
    size_t s = rest.find_first_not_of(" \t");
    if (s == std::string::npos) return false;
    rest = rest.substr(s);
    bool file_scope = rest.rfind("file", 0) == 0 &&
                      (rest.size() == 4 || !IsIdentChar(rest[4]));
    if (file_scope != want_file_scope) return false;
    if (file_scope) rest = rest.substr(4);
    // Scan alias(reason) groups.
    size_t i = 0;
    while (i < rest.size()) {
      while (i < rest.size() && !IsIdentStart(rest[i])) ++i;
      size_t start = i;
      while (i < rest.size() && (IsIdentChar(rest[i]) || rest[i] == '-')) ++i;
      if (i == start) break;
      std::string alias = rest.substr(start, i - start);
      std::string r;
      if (i < rest.size() && rest[i] == '(') {
        size_t close = rest.find(')', i);
        if (close == std::string::npos) close = rest.size();
        r = rest.substr(i + 1, close - i - 1);
        i = close + 1;
      }
      if (ResolveRule(alias) == rule_id) {
        *reason = r;
        return true;
      }
    }
    return false;
  }

  void ResolveSuppression(Finding* f) {
    if (!options.honor_suppressions) return;
    auto it = files.find(f->file);
    if (it != files.end()) {
      const FileData& fd = it->second;
      auto fs = fd.file_suppressions.find(f->rule);
      if (fs != fd.file_suppressions.end()) {
        f->suppressed = true;
        f->suppress_reason = "file directive: " + fs->second;
        return;
      }
      // A directive suppresses its own line always, and the line below only
      // when the directive stands on a comment-only line — a trailing
      // comment must not leak onto the next statement.
      auto comment_only_line = [&fd](int line) {
        if (line < 1 || static_cast<size_t>(line) > fd.lines.size()) {
          return false;
        }
        const std::string& s = fd.lines[line - 1];
        size_t i = s.find_first_not_of(" \t");
        return i != std::string::npos && s.compare(i, 2, "//") == 0;
      };
      for (int line : {f->line, f->line - 1}) {
        if (line == f->line - 1 && !comment_only_line(line)) continue;
        auto c = fd.comments.find(line);
        if (c == fd.comments.end()) continue;
        for (const std::string& comment : c->second) {
          std::string reason;
          if (DirectiveFor(comment, f->rule, /*want_file_scope=*/false,
                           &reason)) {
            f->suppressed = true;
            f->suppress_reason = "inline: " + reason;
            return;
          }
        }
      }
    }
    for (const SuppressionEntry& e : options.suppressions) {
      if (ResolveRule(e.rule) != f->rule) continue;
      if (!Contains(f->file, e.path_substr)) continue;
      if (e.line_substr != "*") {
        const FileData* fd = it != files.end() ? &it->second : nullptr;
        if (fd == nullptr || f->line < 1 ||
            static_cast<size_t>(f->line) > fd->lines.size() ||
            !Contains(fd->lines[f->line - 1], e.line_substr)) {
          continue;
        }
      }
      f->suppressed = true;
      f->suppress_reason = "suppression list";
      return;
    }
  }

  // -------------------------------------------------------------------------
  // NL001 — raw std:: synchronisation primitives
  // -------------------------------------------------------------------------
  void CheckRawSync(const std::string& path, const std::vector<Tok>& t) {
    if (EndsWith(path, "common/mutex.h")) return;  // the one legal home
    static const std::set<std::string> kBanned = {
        "mutex",          "timed_mutex",
        "recursive_mutex", "recursive_timed_mutex",
        "shared_mutex",   "shared_timed_mutex",
        "lock_guard",     "unique_lock",
        "scoped_lock",    "shared_lock",
        "condition_variable", "condition_variable_any",
    };
    for (size_t i = 0; i + 2 < t.size(); ++i) {
      if (Is(t, i, "std") && Is(t, i + 1, "::") &&
          kBanned.count(t[i + 2].text) > 0) {
        Report("NL001", path, t[i + 2].line,
               "raw std::" + t[i + 2].text +
                   "; use the annotated layer in common/mutex.h (Mutex/"
                   "SharedMutex/MutexLock/CondVar) so thread-safety "
                   "analysis and lock-rank checking see it");
      }
    }
  }

  // -------------------------------------------------------------------------
  // NL002 — Mutex construction must carry a registered LockRank
  // -------------------------------------------------------------------------
  void CheckMutexRank(const std::string& path, const std::vector<Tok>& t) {
    for (size_t i = 0; i < t.size(); ++i) {
      if (t[i].text != "Mutex" && t[i].text != "SharedMutex") continue;
      // Qualified nimble::Mutex is fine; skip the qualifier, not the check.
      if (i > 0 && t[i - 1].text == "::") {
        if (i < 2 || t[i - 2].text != "nimble") continue;  // std::? other ns
      }
      // Not a declaration: class/struct/friend heads, template parameters.
      if (i > 0 && (t[i - 1].text == "class" || t[i - 1].text == "struct" ||
                    t[i - 1].text == "friend" || t[i - 1].text == "typename")) {
        continue;
      }
      if (i + 1 >= t.size()) continue;
      const Tok& next = t[i + 1];
      if (next.text == "&" || next.text == "*" || next.text == "::" ||
          next.kind != TokKind::kIdent) {
        continue;  // reference/pointer param, qualifier, or not a declarator
      }
      // Declarator: Mutex NAME {init} | (init) | ;
      const std::string member = next.text;
      size_t after = i + 2;
      if (after >= t.size()) continue;
      if (t[after].text == "{" || t[after].text == "(") {
        const char* open = t[after].text == "{" ? "{" : "(";
        const char* close = t[after].text == "{" ? "}" : ")";
        size_t end = MatchForward(t, after, open, close);
        CheckRankArgs(path, t, after + 1, end, member, t[i].line);
        init_sites[member].insert(FileStem(path));
      } else if (t[after].text == ";") {
        pending_inits.push_back({path, t[i].line, member, t[i].text});
      }
    }
    // Constructor-initializer-list sites: NAME ( LockRank :: kX  /
    // NAME { LockRank :: kX — resolves pending member declarations and
    // validates the rank they chose.
    for (size_t i = 0; i + 4 < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent) continue;
      if (t[i + 1].text != "(" && t[i + 1].text != "{") continue;
      // Only actual rank expressions: `LockRank::` or an ad-hoc
      // `static_cast<LockRank>` — not functions with a LockRank parameter.
      const bool rank_expr = Is(t, i + 2, "LockRank") && Is(t, i + 3, "::");
      const bool cast_expr = Is(t, i + 2, "static_cast") &&
                             Is(t, i + 3, "<") && Is(t, i + 4, "LockRank");
      if (!rank_expr && !cast_expr) continue;
      if (t[i].text == "Mutex" || t[i].text == "SharedMutex") continue;
      // Declaration-with-initializer sites were validated by the pass
      // above; re-checking them here would double-report.
      if (i > 0 && (t[i - 1].text == "Mutex" || t[i - 1].text == "SharedMutex")) {
        init_sites[t[i].text].insert(FileStem(path));
        continue;
      }
      const char* open = t[i + 1].text == "(" ? "(" : "{";
      const char* close = t[i + 1].text == "(" ? ")" : "}";
      size_t end = MatchForward(t, i + 1, open, close);
      CheckRankArgs(path, t, i + 2, end, t[i].text, t[i].line);
      init_sites[t[i].text].insert(FileStem(path));
    }
  }

  void CheckRankArgs(const std::string& path, const std::vector<Tok>& t,
                     size_t begin, size_t end, const std::string& member,
                     int line) {
    for (size_t j = begin; j < end; ++j) {
      if (Is(t, j, "static_cast") && j + 2 < end &&
          Is(t, j + 2, "LockRank")) {
        Report("NL002", path, line,
               "Mutex '" + member +
                   "' constructed with an ad-hoc static_cast<LockRank> — "
                   "register a rank in common/lock_rank.h instead");
        return;
      }
      if (Is(t, j, "LockRank") && Is(t, j + 1, "::") && j + 2 < end) {
        const std::string& rank = t[j + 2].text;
        if (options.known_ranks.count(rank) == 0) {
          Report("NL002", path, line,
                 "Mutex '" + member + "' uses LockRank::" + rank +
                     " which is not in the common/lock_rank.h registry");
        }
        return;
      }
    }
    Report("NL002", path, line,
           "Mutex '" + member +
               "' constructed without a LockRank from common/lock_rank.h");
  }

  // -------------------------------------------------------------------------
  // NL003 — blocking calls in a scope that holds a mutex
  // -------------------------------------------------------------------------
  void CheckBlockingUnderLock(const std::string& path,
                              const std::vector<Tok>& t) {
    if (EndsWith(path, "common/mutex.h")) return;  // CondVar internals
    struct Guard {
      int depth;
      std::string mutex_expr;
      std::string how;  ///< guard class or REQUIRES, for the message
    };
    std::vector<Guard> guards;
    std::vector<std::string> pending_requires;  // attach at next `{`
    int depth = 0;

    // Calls that block the thread: waiting on another query/handle/shard,
    // executing a query synchronously, sleeping, singleflight waits and
    // fan-out joins. `Wait`/`WaitFor` get the CondVar carve-out below.
    static const std::set<std::string> kBlocking = {
        "ExecuteText", "ExecuteBatch", "RunParallel",
        "LookupOrCompute", "sleep_for", "sleep_until", "SleepFor",
    };

    for (size_t i = 0; i < t.size(); ++i) {
      const Tok& tok = t[i];
      if (tok.text == "{") {
        ++depth;
        if (!pending_requires.empty()) {
          for (std::string& mu : pending_requires) {
            guards.push_back({depth, std::move(mu), "NIMBLE_REQUIRES"});
          }
          pending_requires.clear();
        }
        continue;
      }
      if (tok.text == "}") {
        while (!guards.empty() && guards.back().depth >= depth) {
          guards.pop_back();
        }
        --depth;
        continue;
      }
      if (tok.text == ";" && !pending_requires.empty()) {
        pending_requires.clear();  // pure declaration, no body
        continue;
      }
      if (tok.text == "NIMBLE_REQUIRES" || tok.text == "NIMBLE_REQUIRES_SHARED") {
        if (Is(t, i + 1, "(")) {
          size_t end = MatchForward(t, i + 1, "(", ")");
          pending_requires.push_back(JoinTokens(t, i + 2, end));
          i = end;
        }
        continue;
      }
      // RAII guard declaration: MutexLock NAME(expr); etc.
      if ((tok.text == "MutexLock" || tok.text == "ReaderMutexLock" ||
           tok.text == "WriterMutexLock") &&
          i + 2 < t.size() && t[i + 1].kind == TokKind::kIdent &&
          (t[i + 2].text == "(" || t[i + 2].text == "{")) {
        const char* open = t[i + 2].text == "(" ? "(" : "{";
        const char* close = t[i + 2].text == "(" ? ")" : "}";
        size_t end = MatchForward(t, i + 2, open, close);
        guards.push_back({depth, JoinTokens(t, i + 3, end), tok.text});
        i = end;
        continue;
      }
      if (guards.empty()) continue;
      if (tok.kind != TokKind::kIdent || !Is(t, i + 1, "(")) continue;

      const bool is_wait = tok.text == "Wait" || tok.text == "WaitFor";
      const bool is_blocking = kBlocking.count(tok.text) > 0;
      if (!is_wait && !is_blocking) continue;
      // Only calls — `X.Wait(` / `X->Wait(` / free `sleep_for(` — not
      // declarations (`void Wait(...)`): a declaration's name is preceded
      // by a type identifier or `&`/`*`, a call by . -> :: ( , = etc.
      if (i > 0 && (t[i - 1].kind == TokKind::kIdent || t[i - 1].text == "&" ||
                    t[i - 1].text == "*" || t[i - 1].text == ">")) {
        continue;
      }

      size_t args_end = MatchForward(t, i + 1, "(", ")");
      if (is_wait) {
        // CondVar carve-out: waiting on the mutex you hold is the one legal
        // blocking call — but only when no *other* lock is also held
        // (sleeping while holding an outer lock stalls every contender).
        std::string first_arg;
        for (size_t j = i + 2; j < args_end; ++j) {
          if (t[j].text == ",") break;
          first_arg += t[j].text;
        }
        bool matches_innermost =
            !first_arg.empty() && !guards.empty() &&
            guards.back().mutex_expr == first_arg;
        if (matches_innermost && guards.size() == 1) {
          i = args_end;
          continue;
        }
        if (matches_innermost && guards.size() > 1) {
          Report("NL003", path, tok.line,
                 "CondVar wait on '" + first_arg + "' while '" +
                     guards[guards.size() - 2].mutex_expr +
                     "' is also held (" + guards[guards.size() - 2].how +
                     ") — the outer lock stays locked for the whole sleep");
          i = args_end;
          continue;
        }
        Report("NL003", path, tok.line,
               "blocking " + tok.text + "() while holding '" +
                   guards.back().mutex_expr + "' (" + guards.back().how +
                   ") — release the lock before waiting");
        i = args_end;
        continue;
      }
      // Pool submits count only through a pool receiver; everything else in
      // kBlocking counts unconditionally.
      Report("NL003", path, tok.line,
             "blocking call " + tok.text + "() while holding '" +
                 guards.back().mutex_expr + "' (" + guards.back().how +
                 ") — blocking work must run after release");
      i = args_end;
    }

    // Pool submissions under a lock deadlock when pool workers are the ones
    // trying to acquire it, and stall dispatch either way; the scheduler
    // collects entries under its mutex and submits after release. Detect
    // `<pool-ish>->Submit(` / `.Submit(` with a held guard.
    guards.clear();
    depth = 0;
    for (size_t i = 0; i < t.size(); ++i) {
      const Tok& tok = t[i];
      if (tok.text == "{") {
        ++depth;
        continue;
      }
      if (tok.text == "}") {
        while (!guards.empty() && guards.back().depth >= depth) {
          guards.pop_back();
        }
        --depth;
        continue;
      }
      if ((tok.text == "MutexLock" || tok.text == "ReaderMutexLock" ||
           tok.text == "WriterMutexLock") &&
          i + 2 < t.size() && t[i + 1].kind == TokKind::kIdent &&
          t[i + 2].text == "(") {
        size_t end = MatchForward(t, i + 2, "(", ")");
        guards.push_back({depth, JoinTokens(t, i + 3, end), tok.text});
        i = end;
        continue;
      }
      if (guards.empty() || tok.text != "Submit" || !Is(t, i + 1, "(")) {
        continue;
      }
      if (i == 0 || (t[i - 1].text != "." && t[i - 1].text != "->")) continue;
      std::string receiver = ReceiverBefore(t, i - 1);
      std::string lowered;
      for (char c : receiver) {
        lowered += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      if (!Contains(lowered, "pool")) continue;
      Report("NL003", path, tok.line,
             "pool submit through '" + receiver + "' while holding '" +
                 guards.back().mutex_expr +
                 "' — collect work under the lock, submit after release");
    }
  }

  // -------------------------------------------------------------------------
  // NL004 — guarded-member coverage in mutex-owning classes
  // -------------------------------------------------------------------------
  void CheckGuardedMembers(const std::string& path, const std::vector<Tok>& t) {
    if (EndsWith(path, "common/mutex.h")) return;
    for (size_t i = 0; i + 1 < t.size(); ++i) {
      if ((t[i].text == "class" || t[i].text == "struct") &&
          t[i + 1].kind == TokKind::kIdent) {
        // Find the body '{' (skip base-class list); stop at ';' (forward
        // declaration) or '(' (function returning class type — not here).
        size_t j = i + 2;
        while (j < t.size() && t[j].text != "{" && t[j].text != ";") ++j;
        if (j >= t.size() || t[j].text == ";") continue;
        AnalyzeClassBody(path, t, t[i + 1].text, j,
                         MatchForward(t, j, "{", "}"));
      }
    }
  }

  /// One data-member declaration unit inside a class body.
  struct MemberDecl {
    std::string name;
    int line;
    bool guarded = false;       ///< NIMBLE_GUARDED_BY / NIMBLE_PT_GUARDED_BY
    bool is_mutex = false;      ///< Mutex / SharedMutex by value
    bool exempt = false;        ///< const, reference, atomic, CondVar, ...
  };

  void AnalyzeClassBody(const std::string& path, const std::vector<Tok>& t,
                        const std::string& class_name, size_t open,
                        size_t close) {
    std::vector<MemberDecl> members;
    size_t i = open + 1;
    while (i < close) {
      // Access specifiers.
      if ((t[i].text == "public" || t[i].text == "private" ||
           t[i].text == "protected") &&
          Is(t, i + 1, ":")) {
        i += 2;
        continue;
      }
      // Nested class/struct with a body: recurse, then skip past it.
      if ((t[i].text == "class" || t[i].text == "struct") && i + 1 < close &&
          t[i + 1].kind == TokKind::kIdent) {
        size_t j = i + 2;
        while (j < close && t[j].text != "{" && t[j].text != ";") ++j;
        if (j < close && t[j].text == "{") {
          size_t body_close = MatchForward(t, j, "{", "}");
          AnalyzeClassBody(path, t, t[i + 1].text, j, body_close);
          i = body_close + 1;
          if (i < close && t[i].text == ";") ++i;
          continue;
        }
        i = j + 1;
        continue;
      }
      // Collect one declaration unit.
      size_t unit_begin = i;
      bool saw_brace_block = false;
      bool paren_before_brace = false;
      int template_depth = 0;
      bool in_decl_part = true;  // before '=' / init '{'
      size_t name_tok = t.size();
      bool skip_unit = false;
      while (i < close) {
        const Tok& tok = t[i];
        if (tok.text == "template" && Is(t, i + 1, "<")) {
          // Skip the template parameter list wholesale.
          int d = 0;
          ++i;
          while (i < close) {
            if (t[i].text == "<") ++d;
            if (t[i].text == ">" && --d == 0) break;
            ++i;
          }
          ++i;
          continue;
        }
        if (in_decl_part) {
          if (tok.text == "operator") {
            // operator<, operator(), ... — function for sure.
            paren_before_brace = true;
            ++i;
            if (i < close) ++i;
            continue;
          }
          if (tok.text == "<") ++template_depth;
          if (tok.text == ">") template_depth = std::max(0, template_depth - 1);
          if (tok.text == "(" && template_depth == 0) {
            paren_before_brace = true;
            i = MatchForward(t, i, "(", ")") + 1;
            continue;
          }
          if (tok.text == "=") in_decl_part = false;
          if (tok.kind == TokKind::kIdent && template_depth == 0) {
            name_tok = i;
          }
        }
        if (tok.text == "{") {
          size_t body_close = MatchForward(t, i, "{", "}");
          saw_brace_block = true;
          in_decl_part = false;
          i = body_close + 1;
          // Function definition bodies end without ';'.
          if (paren_before_brace) {
            if (i < close && t[i].text == ";") ++i;
            skip_unit = true;
            break;
          }
          continue;
        }
        if (tok.text == ";") {
          ++i;
          break;
        }
        ++i;
      }
      if (skip_unit || name_tok >= t.size()) continue;
      (void)saw_brace_block;

      MemberDecl m;
      m.name = t[name_tok].text;
      m.line = t[name_tok].line;
      bool has_star = false;
      bool has_amp = false;
      bool has_const_before_name = false;
      bool has_const_anywhere = false;
      bool is_static = false;
      size_t unit_end = std::min(i, close);
      for (size_t j = unit_begin; j < unit_end && j <= name_tok; ++j) {
        const std::string& x = t[j].text;
        if (x == "*") has_star = true;
        if (x == "&") has_amp = true;
        if (x == "const") {
          has_const_anywhere = true;
          if (j + 1 == name_tok) has_const_before_name = true;
        }
        if (x == "static" || x == "constexpr" || x == "using" ||
            x == "typedef" || x == "friend" || x == "enum") {
          is_static = true;
        }
        if (x == "atomic" || x == "CondVar" || x == "once_flag" ||
            x == "Notification") {
          m.exempt = true;
        }
        if (x == "Mutex" || x == "SharedMutex") m.is_mutex = true;
      }
      // By-value mutex member only: a pointer/reference to someone else's
      // mutex is just unguarded config, not ownership. Decided after the
      // scan because the * / & tokens follow the type name.
      if (has_star || has_amp) m.is_mutex = false;
      for (size_t j = unit_begin; j < unit_end; ++j) {
        if (t[j].text == "NIMBLE_GUARDED_BY" ||
            t[j].text == "NIMBLE_PT_GUARDED_BY") {
          m.guarded = true;
        }
      }
      if (is_static) continue;
      if (paren_before_brace) continue;  // function declaration
      if (has_amp) m.exempt = true;      // references bind at construction
      if (has_const_before_name) m.exempt = true;  // T* const / const T name
      if (has_const_anywhere && !has_star) m.exempt = true;  // const T name
      if (m.is_mutex) m.exempt = true;
      members.push_back(std::move(m));
    }

    bool owns_mutex = false;
    for (const MemberDecl& m : members) {
      if (m.is_mutex) owns_mutex = true;
    }
    if (!owns_mutex) return;
    for (const MemberDecl& m : members) {
      if (m.guarded || m.exempt) continue;
      Report("NL004", path, m.line,
             "member '" + m.name + "' of mutex-owning " + class_name +
                 " is neither NIMBLE_GUARDED_BY, std::atomic, nor const — "
                 "annotate it, or suppress with "
                 "`// nimble-lint: unguarded(<why it is safe>)`");
    }
  }

  // -------------------------------------------------------------------------
  // NL005 — frozen-snapshot immutability
  // -------------------------------------------------------------------------
  void CheckFrozenMutation(const std::string& path, const std::vector<Tok>& t) {
    static const std::set<std::string> kMutators = {
        "AddChild",    "AddScalarChild", "SetAttribute",
        "RemoveChild", "TakeChildren",
    };
    // Tainted expression text -> brace depth it was tainted at.
    std::map<std::string, int> tainted;
    int depth = 0;
    for (size_t i = 0; i < t.size(); ++i) {
      const Tok& tok = t[i];
      if (tok.text == "{") {
        ++depth;
        continue;
      }
      if (tok.text == "}") {
        for (auto it = tainted.begin(); it != tainted.end();) {
          if (it->second >= depth) {
            it = tainted.erase(it);
          } else {
            ++it;
          }
        }
        --depth;
        continue;
      }
      // const casts that strip a snapshot's constness re-expose the shared
      // tree to mutation; legal only at the documented copy-on-write seams
      // (suppress there, citing MutableDocument()/Clone()).
      if ((tok.text == "const_pointer_cast" || tok.text == "const_cast") &&
          Is(t, i + 1, "<")) {
        for (size_t j = i + 2; j < t.size() && t[j].text != ">"; ++j) {
          if (t[j].text == "Node") {
            Report("NL005", path, tok.line,
                   "std::" + tok.text +
                       "<Node> strips a frozen snapshot's constness — "
                       "mutate via Clone()/MutableDocument() instead");
            break;
          }
          if (t[j].text == ";") break;
        }
      }
      // Taint assignments: LHS = ...Freeze()... ;  LHS = ...Clone()... clears.
      if (tok.text == "=" && i > 0 &&
          (t[i - 1].kind == TokKind::kIdent || t[i - 1].text == ")")) {
        if (Is(t, i + 1, "=") || t[i - 1].text == "!" || t[i - 1].text == "<" ||
            t[i - 1].text == ">") {
          continue;  // ==, !=, <=, >=
        }
        std::string lhs = ReceiverBefore(t, i);
        if (lhs.empty()) continue;
        bool saw_freeze = false;
        bool saw_clone = false;
        for (size_t j = i + 1; j < t.size() && t[j].text != ";"; ++j) {
          if (t[j].text == "Freeze" && Is(t, j + 1, "(")) saw_freeze = true;
          // A const-cast RHS is a frozen snapshot too: the cast site itself
          // is reported (and typically suppressed at the documented seam),
          // but mutations through the result must still flag.
          if (t[j].text == "const_pointer_cast") saw_freeze = true;
          if (t[j].text == "Clone" && Is(t, j + 1, "(")) saw_clone = true;
        }
        if (saw_freeze && !saw_clone) {
          tainted[lhs] = depth;
        } else if (tainted.count(lhs) > 0) {
          tainted.erase(lhs);
        }
        continue;
      }
      // Mutator through a tainted handle, or chained straight off Freeze().
      if (kMutators.count(tok.text) > 0 && Is(t, i + 1, "(") && i > 0 &&
          (t[i - 1].text == "." || t[i - 1].text == "->")) {
        std::string receiver = ReceiverBefore(t, i - 1);
        bool receiver_tainted = tainted.count(receiver) > 0;
        bool chained_off_freeze = Contains(receiver, "Freeze()");
        if (receiver_tainted || chained_off_freeze) {
          Report("NL005", path, tok.line,
                 "mutation " + tok.text + "() through frozen snapshot '" +
                     receiver + "' — a frozen tree is shared with every "
                     "concurrent reader; Clone() first");
        }
      }
    }
  }
};

Linter::Linter(LintOptions options) : impl_(new Impl) {
  impl_->options = std::move(options);
}

Linter::~Linter() { delete impl_; }

void Linter::AddFile(const std::string& path, const std::string& content) {
  LexedFile lexed = Lex(content);
  Impl::FileData& fd = impl_->files[path];
  fd.comments = lexed.comments;
  fd.lines = std::move(lexed.lines);
  // File-scope directives can appear anywhere (by convention, the top).
  for (const auto& [line, comments] : fd.comments) {
    (void)line;
    for (const std::string& comment : comments) {
      for (const RuleInfo& r : kRules) {
        std::string reason;
        if (impl_->DirectiveFor(comment, r.id, /*want_file_scope=*/true,
                                &reason)) {
          fd.file_suppressions.emplace(r.id, reason);
        }
      }
    }
  }
  impl_->CheckRawSync(path, lexed.toks);
  impl_->CheckMutexRank(path, lexed.toks);
  impl_->CheckBlockingUnderLock(path, lexed.toks);
  impl_->CheckGuardedMembers(path, lexed.toks);
  impl_->CheckFrozenMutation(path, lexed.toks);
}

void Linter::Finish() {
  if (impl_->finished) return;
  impl_->finished = true;
  // NL002: member declarations that never met a constructor-initializer.
  for (const Impl::PendingInit& p : impl_->pending_inits) {
    auto it = impl_->init_sites.find(p.member);
    bool resolved = false;
    if (it != impl_->init_sites.end()) {
      const std::string stem = FileStem(p.file);
      resolved = it->second.count(stem) > 0;
    }
    if (!resolved) {
      impl_->Report("NL002", p.file, p.line,
                    p.type + " member '" + p.member +
                        "' declared without a LockRank initializer and no "
                        "constructor initializes it with one");
    }
  }
  // Rank doc-sync: every registered rank needs its DESIGN.md §2e row.
  if (!impl_->options.documented_ranks.empty()) {
    for (const std::string& rank : impl_->options.known_ranks) {
      if (impl_->options.documented_ranks.count(rank) == 0) {
        impl_->Report("NL002", impl_->options.lock_rank_path, 1,
                      "LockRank::" + rank +
                          " has no row in the DESIGN.md section 2e rank "
                          "table — document where it sits and why");
      }
    }
  }
  std::stable_sort(impl_->findings.begin(), impl_->findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
}

const std::vector<Finding>& Linter::findings() const {
  return impl_->findings;
}

int Linter::unsuppressed_count() const {
  int count = 0;
  for (const Finding& f : impl_->findings) {
    if (!f.suppressed) ++count;
  }
  return count;
}

}  // namespace nimble_lint
