#ifndef NIMBLE_TOOLS_NIMBLE_LINT_H_
#define NIMBLE_TOOLS_NIMBLE_LINT_H_

#include <set>
#include <string>
#include <vector>

/// nimble-lint — project-specific static analysis for the Nimble tree
/// (DESIGN.md §2j). Enforces the concurrency, status and immutability
/// contracts that -Wthread-safety and the lock-rank runtime checker cannot
/// see on their own:
///
///   NL001 raw-sync             no raw std:: synchronisation primitives
///                              outside src/common/mutex.h — everything
///                              goes through the annotated Mutex layer.
///   NL002 mutex-rank           every Mutex/SharedMutex is constructed
///                              with a LockRank from the lock_rank.h
///                              registry (no ad-hoc static_cast ranks,
///                              no unregistered names), and every
///                              registered rank has its DESIGN.md §2e row.
///   NL003 blocking-under-lock  no blocking call (CondVar waits on a
///                              *different* mutex, Engine::ExecuteText,
///                              handle Wait, sleep_for, pool submits) in
///                              a scope holding a mutex via a RAII guard
///                              or NIMBLE_REQUIRES.
///   NL004 guarded-member       mutable members of a class that owns a
///                              Mutex are NIMBLE_GUARDED_BY, atomic,
///                              const, or carry an explicit
///                              `// nimble-lint: unguarded(<reason>)`.
///   NL005 frozen-mutation      no mutation of nodes obtained from
///                              Freeze(), and no const_pointer_cast /
///                              const_cast that strips a frozen
///                              snapshot's constness, without Clone().
///
/// The analysis is a self-contained C++ lexer + lightweight structural
/// parser (no LibTooling dependency — the tool must build and gate CI with
/// nothing but the project toolchain; the rule surface is narrow enough
/// that token-level analysis with scope tracking is exact in practice).
/// The driver (nimble_lint.cc) discovers the file set from the
/// compile_commands.json every build exports.
namespace nimble_lint {

/// One diagnostic. `suppressed` findings are reported but do not fail the
/// run; the gate is unsuppressed findings == 0.
struct Finding {
  std::string rule;       ///< "NL001".."NL005"
  std::string rule_name;  ///< "raw-sync", ...
  std::string file;
  int line = 0;
  std::string message;
  bool suppressed = false;
  std::string suppress_reason;  ///< how it was suppressed (for the report)
};

/// One row of the checked-in suppression list
/// (tools/nimble_lint_suppressions.txt):
///   <rule-id-or-name> <path-substring> <line-substring-or-*>
struct SuppressionEntry {
  std::string rule;         ///< id ("NL001") or name ("raw-sync")
  std::string path_substr;  ///< finding suppressed when file contains this
  std::string line_substr;  ///< and the source line contains this ("*"=any)
};

struct LintOptions {
  /// LockRank enumerators parsed from common/lock_rank.h ("kThreadPool"...).
  std::set<std::string> known_ranks;
  /// Ranks with a DESIGN.md §2e table row. When non-empty, every known
  /// rank must appear here (keeps the doc table in sync with the enum).
  std::set<std::string> documented_ranks;
  /// Path (for diagnostics) of the registry header, used as the location
  /// of doc-sync findings.
  std::string lock_rank_path = "src/common/lock_rank.h";
  std::vector<SuppressionEntry> suppressions;
  /// false = report every finding as unsuppressed, ignoring inline and
  /// file directives too (the driver's --no-suppressions audit mode).
  bool honor_suppressions = true;
  /// Empty = all rules; otherwise rule ids ("NL002") or names.
  std::set<std::string> enabled_rules;
};

/// Returns the rule id for an id-or-name string ("raw-sync" -> "NL001"),
/// or "" if unknown. Inline-directive aliases ("unguarded", "blocking",
/// "frozen") resolve too.
std::string ResolveRule(const std::string& id_or_name);

/// Parses `enum class LockRank { ... }` out of lock_rank.h content.
std::set<std::string> ParseLockRankRegistry(const std::string& content);

/// Parses `| <rank> | \`kName\` | ...` table rows out of DESIGN.md content.
std::set<std::string> ParseDocumentedRanks(const std::string& content);

/// Parses the suppression list format (# comments, blank lines ignored).
std::vector<SuppressionEntry> ParseSuppressionList(const std::string& content);

/// The analysis engine. Feed every file with AddFile, then call Finish()
/// (cross-file checks: constructor-initializer resolution for NL002 and
/// the rank doc-sync check). findings() is stable-ordered by
/// (file, line, rule).
class Linter {
 public:
  explicit Linter(LintOptions options);
  ~Linter();

  Linter(const Linter&) = delete;
  Linter& operator=(const Linter&) = delete;

  /// Analyzes one source file. `path` should be repo-relative; exemptions
  /// (e.g. common/mutex.h for NL001) and suppression-list paths match on
  /// substrings of it.
  void AddFile(const std::string& path, const std::string& content);

  /// Runs the cross-file passes and sorts findings. Call exactly once,
  /// after the last AddFile.
  void Finish();

  const std::vector<Finding>& findings() const;
  int unsuppressed_count() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace nimble_lint

#endif  // NIMBLE_TOOLS_NIMBLE_LINT_H_
