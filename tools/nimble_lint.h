#ifndef NIMBLE_TOOLS_NIMBLE_LINT_H_
#define NIMBLE_TOOLS_NIMBLE_LINT_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

/// nimble-lint — project-specific static analysis for the Nimble tree
/// (DESIGN.md §2j). Enforces the concurrency, status and immutability
/// contracts that -Wthread-safety and the lock-rank runtime checker cannot
/// see on their own:
///
///   NL001 raw-sync             no raw std:: synchronisation primitives
///                              outside src/common/mutex.h — everything
///                              goes through the annotated Mutex layer.
///   NL002 mutex-rank           every Mutex/SharedMutex is constructed
///                              with a LockRank from the lock_rank.h
///                              registry (no ad-hoc static_cast ranks,
///                              no unregistered names), and every
///                              registered rank has its DESIGN.md §2e row.
///   NL003 blocking-under-lock  no blocking call (CondVar waits on a
///                              *different* mutex, Engine::ExecuteText,
///                              handle Wait, sleep_for, pool submits) in
///                              a scope holding a mutex via a RAII guard
///                              or NIMBLE_REQUIRES.
///   NL004 guarded-member       mutable members of a class that owns a
///                              Mutex are NIMBLE_GUARDED_BY, atomic,
///                              const, or carry an explicit
///                              `// nimble-lint: unguarded(<reason>)`.
///   NL005 frozen-mutation      no mutation of nodes obtained from
///                              Freeze(), and no const_pointer_cast /
///                              const_cast that strips a frozen
///                              snapshot's constness, without Clone().
///   NL006 cancellation-responsiveness
///                              every loop in a responsiveness-checked
///                              function (Operator::DoOpen/DoNextBatch,
///                              Drain, ExecuteScattered) that can iterate
///                              unboundedly — constant-true condition, or
///                              the innermost loop around a streaming
///                              producer call (NextBatch/Wait/WaitFor) —
///                              must reach a deadline/cancel poll
///                              (PollCancel, ExecutionContext::Check, or
///                              a one-level callee that polls) on *every*
///                              path from the loop body to the back edge.
///   NL007 status-path          a Status/Result local that is constructed
///                              or assigned but never consulted on any
///                              path before it is overwritten or goes out
///                              of scope is a dropped error; a
///                              Status-returning function whose CFG can
///                              fall off the end without returning is the
///                              same bug in another coat.
///   NL008 use-after-move       a variable read on any path after
///                              std::move()d away, before reassignment /
///                              reset()/clear()/assign() re-establishes a
///                              value (catches moved-from TupleBatch and
///                              column reuse, including loop-carried
///                              moves a lexical scan cannot see).
///   NL009 stale-suppression    suppression-list entries and inline /
///                              file directives that no longer suppress
///                              any finding fail the gate, so the
///                              suppression surface cannot rot.
///
/// NL001–NL005 are lexical/scope-based token passes. NL006–NL008 run on a
/// per-function control-flow graph (branches, loops, early returns) built
/// over the same token stream, with a forward fixpoint dataflow framework
/// and one-level callee summaries merged across translation units. The
/// analysis stays a self-contained C++ lexer + structural parser (no
/// LibTooling dependency — the tool must build and gate CI with nothing
/// but the project toolchain). The driver (nimble_lint.cc) discovers the
/// file set from the compile_commands.json every build exports and fans
/// the per-file phase out over common/thread_pool (--jobs N).
namespace nimble_lint {

/// One diagnostic. `suppressed` findings are reported but do not fail the
/// run; the gate is unsuppressed findings == 0.
struct Finding {
  std::string rule;       ///< "NL001".."NL009"
  std::string rule_name;  ///< "raw-sync", ...
  std::string file;
  int line = 0;
  std::string message;
  bool suppressed = false;
  std::string suppress_reason;  ///< how it was suppressed (for the report)
};

/// One row of the checked-in suppression list
/// (tools/nimble_lint_suppressions.txt):
///   <rule-id-or-name> <path-substring> <line-substring-or-*>
struct SuppressionEntry {
  std::string rule;         ///< id ("NL001") or name ("raw-sync")
  std::string path_substr;  ///< finding suppressed when file contains this
  std::string line_substr;  ///< and the source line contains this ("*"=any)
  int line = 0;             ///< 1-based line in the list file (for NL009)
};

struct LintOptions {
  /// LockRank enumerators parsed from common/lock_rank.h ("kThreadPool"...).
  std::set<std::string> known_ranks;
  /// Ranks with a DESIGN.md §2e table row. When non-empty, every known
  /// rank must appear here (keeps the doc table in sync with the enum).
  std::set<std::string> documented_ranks;
  /// Path (for diagnostics) of the registry header, used as the location
  /// of doc-sync findings.
  std::string lock_rank_path = "src/common/lock_rank.h";
  std::vector<SuppressionEntry> suppressions;
  /// Path (for diagnostics) of the suppression list, used as the location
  /// of NL009 stale-entry findings.
  std::string suppressions_path = "tools/nimble_lint_suppressions.txt";
  /// false = report every finding as unsuppressed, ignoring inline and
  /// file directives too (the driver's --no-suppressions audit mode).
  bool honor_suppressions = true;
  /// Empty = all rules; otherwise rule ids ("NL002") or names.
  std::set<std::string> enabled_rules;
  /// NL006: unqualified function names whose loops must stay responsive.
  std::set<std::string> responsive_functions = {"DoOpen", "DoNextBatch",
                                                "Drain", "ExecuteScattered"};
  /// NL006: call names that count as a deadline/cancel poll on their own
  /// (the one-level callee summaries extend this set with any function
  /// whose body calls one of these directly).
  std::set<std::string> poll_functions = {"PollCancel", "Check",
                                          "CheckCancelled"};
  /// NL006: streaming/blocking producer calls — the innermost loop around
  /// one can iterate for as long as the producer keeps producing, so it
  /// must poll even when its condition is bounded-looking.
  std::set<std::string> producer_functions = {"NextBatch", "Wait", "WaitFor"};
};

/// Returns the rule id for an id-or-name string ("raw-sync" -> "NL001"),
/// or "" if unknown. Inline-directive aliases ("unguarded", "blocking",
/// "frozen", "responsive", "status", "moved", "stale") resolve too.
std::string ResolveRule(const std::string& id_or_name);

/// Parses `enum class LockRank { ... }` out of lock_rank.h content.
std::set<std::string> ParseLockRankRegistry(const std::string& content);

/// Parses `| <rank> | \`kName\` | ...` table rows out of DESIGN.md content.
std::set<std::string> ParseDocumentedRanks(const std::string& content);

/// Parses the suppression list format (# comments, blank lines ignored).
std::vector<SuppressionEntry> ParseSuppressionList(const std::string& content);

/// Opaque result of the per-file analysis phase. Produced by
/// Linter::Analyze (pure, thread-safe) and consumed by Linter::Merge.
class FileAnalysis {
 public:
  ~FileAnalysis();
  FileAnalysis(const FileAnalysis&) = delete;
  FileAnalysis& operator=(const FileAnalysis&) = delete;

 private:
  friend class Linter;
  FileAnalysis();
  struct Impl;
  Impl* impl_;
};

/// The analysis engine. Feed every file (AddFile, or Analyze + Merge for
/// the parallel driver), then call Finish() for the cross-file passes:
/// constructor-initializer resolution for NL002, the rank doc-sync check,
/// NL006 with the merged callee summaries, and NL009 staleness.
/// findings() is stable-ordered by (file, line, rule).
class Linter {
 public:
  explicit Linter(LintOptions options);
  ~Linter();

  Linter(const Linter&) = delete;
  Linter& operator=(const Linter&) = delete;

  /// Pure per-file phase: lexing, CFG construction, the per-file rules
  /// (NL001–NL005, NL007, NL008) with local suppression resolution.
  /// Thread-safe — does not touch Linter state beyond reading the
  /// immutable options, so the driver calls it from a thread pool.
  std::unique_ptr<FileAnalysis> Analyze(const std::string& path,
                                        const std::string& content) const;

  /// Folds one Analyze result into the cross-file state. NOT thread-safe;
  /// call from one thread, in sorted path order for deterministic output.
  void Merge(std::unique_ptr<FileAnalysis> analysis);

  /// Analyze + Merge in one step (the serial convenience path; `path`
  /// should be repo-relative — exemptions and suppression-list paths
  /// match on substrings of it).
  void AddFile(const std::string& path, const std::string& content);

  /// Runs the cross-file passes and sorts findings. Call exactly once,
  /// after the last AddFile/Merge.
  void Finish();

  const std::vector<Finding>& findings() const;
  int unsuppressed_count() const;

 private:
  struct Impl;
  Impl* impl_;
};

/// Test hook: lexes `source`, finds the function named `function_name`
/// (unqualified), builds its CFG and renders it as one line per node:
///   `<idx> <kind> line=<L> -> <succ,...>` followed by one
///   `loop head=<n> back=<n,...> true=<0|1> range_for=<0|1>` per loop.
/// Returns "" when the function is not found.
std::string DescribeCfgForTest(const std::string& source,
                               const std::string& function_name);

}  // namespace nimble_lint

#endif  // NIMBLE_TOOLS_NIMBLE_LINT_H_
