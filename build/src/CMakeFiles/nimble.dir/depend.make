# Empty dependencies file for nimble.
# This may be replaced when dependencies are built.
