
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/admin/monitor.cc" "src/CMakeFiles/nimble.dir/admin/monitor.cc.o" "gcc" "src/CMakeFiles/nimble.dir/admin/monitor.cc.o.d"
  "/root/repo/src/admin/replication.cc" "src/CMakeFiles/nimble.dir/admin/replication.cc.o" "gcc" "src/CMakeFiles/nimble.dir/admin/replication.cc.o.d"
  "/root/repo/src/algebra/construct.cc" "src/CMakeFiles/nimble.dir/algebra/construct.cc.o" "gcc" "src/CMakeFiles/nimble.dir/algebra/construct.cc.o.d"
  "/root/repo/src/algebra/operators.cc" "src/CMakeFiles/nimble.dir/algebra/operators.cc.o" "gcc" "src/CMakeFiles/nimble.dir/algebra/operators.cc.o.d"
  "/root/repo/src/algebra/pattern_match.cc" "src/CMakeFiles/nimble.dir/algebra/pattern_match.cc.o" "gcc" "src/CMakeFiles/nimble.dir/algebra/pattern_match.cc.o.d"
  "/root/repo/src/algebra/tuple.cc" "src/CMakeFiles/nimble.dir/algebra/tuple.cc.o" "gcc" "src/CMakeFiles/nimble.dir/algebra/tuple.cc.o.d"
  "/root/repo/src/cleaning/concordance.cc" "src/CMakeFiles/nimble.dir/cleaning/concordance.cc.o" "gcc" "src/CMakeFiles/nimble.dir/cleaning/concordance.cc.o.d"
  "/root/repo/src/cleaning/flow.cc" "src/CMakeFiles/nimble.dir/cleaning/flow.cc.o" "gcc" "src/CMakeFiles/nimble.dir/cleaning/flow.cc.o.d"
  "/root/repo/src/cleaning/lineage.cc" "src/CMakeFiles/nimble.dir/cleaning/lineage.cc.o" "gcc" "src/CMakeFiles/nimble.dir/cleaning/lineage.cc.o.d"
  "/root/repo/src/cleaning/matcher.cc" "src/CMakeFiles/nimble.dir/cleaning/matcher.cc.o" "gcc" "src/CMakeFiles/nimble.dir/cleaning/matcher.cc.o.d"
  "/root/repo/src/cleaning/merge_purge.cc" "src/CMakeFiles/nimble.dir/cleaning/merge_purge.cc.o" "gcc" "src/CMakeFiles/nimble.dir/cleaning/merge_purge.cc.o.d"
  "/root/repo/src/cleaning/normalize.cc" "src/CMakeFiles/nimble.dir/cleaning/normalize.cc.o" "gcc" "src/CMakeFiles/nimble.dir/cleaning/normalize.cc.o.d"
  "/root/repo/src/cleaning/profiler.cc" "src/CMakeFiles/nimble.dir/cleaning/profiler.cc.o" "gcc" "src/CMakeFiles/nimble.dir/cleaning/profiler.cc.o.d"
  "/root/repo/src/cleaning/record.cc" "src/CMakeFiles/nimble.dir/cleaning/record.cc.o" "gcc" "src/CMakeFiles/nimble.dir/cleaning/record.cc.o.d"
  "/root/repo/src/cleaning/similarity.cc" "src/CMakeFiles/nimble.dir/cleaning/similarity.cc.o" "gcc" "src/CMakeFiles/nimble.dir/cleaning/similarity.cc.o.d"
  "/root/repo/src/common/clock.cc" "src/CMakeFiles/nimble.dir/common/clock.cc.o" "gcc" "src/CMakeFiles/nimble.dir/common/clock.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/nimble.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/nimble.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/nimble.dir/common/status.cc.o" "gcc" "src/CMakeFiles/nimble.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/nimble.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/nimble.dir/common/strings.cc.o.d"
  "/root/repo/src/connector/connector.cc" "src/CMakeFiles/nimble.dir/connector/connector.cc.o" "gcc" "src/CMakeFiles/nimble.dir/connector/connector.cc.o.d"
  "/root/repo/src/connector/csv_connector.cc" "src/CMakeFiles/nimble.dir/connector/csv_connector.cc.o" "gcc" "src/CMakeFiles/nimble.dir/connector/csv_connector.cc.o.d"
  "/root/repo/src/connector/hierarchical_connector.cc" "src/CMakeFiles/nimble.dir/connector/hierarchical_connector.cc.o" "gcc" "src/CMakeFiles/nimble.dir/connector/hierarchical_connector.cc.o.d"
  "/root/repo/src/connector/relational_connector.cc" "src/CMakeFiles/nimble.dir/connector/relational_connector.cc.o" "gcc" "src/CMakeFiles/nimble.dir/connector/relational_connector.cc.o.d"
  "/root/repo/src/connector/simulated_source.cc" "src/CMakeFiles/nimble.dir/connector/simulated_source.cc.o" "gcc" "src/CMakeFiles/nimble.dir/connector/simulated_source.cc.o.d"
  "/root/repo/src/connector/xml_connector.cc" "src/CMakeFiles/nimble.dir/connector/xml_connector.cc.o" "gcc" "src/CMakeFiles/nimble.dir/connector/xml_connector.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/nimble.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/nimble.dir/core/engine.cc.o.d"
  "/root/repo/src/core/fragmenter.cc" "src/CMakeFiles/nimble.dir/core/fragmenter.cc.o" "gcc" "src/CMakeFiles/nimble.dir/core/fragmenter.cc.o.d"
  "/root/repo/src/core/partial_results.cc" "src/CMakeFiles/nimble.dir/core/partial_results.cc.o" "gcc" "src/CMakeFiles/nimble.dir/core/partial_results.cc.o.d"
  "/root/repo/src/core/sql_generator.cc" "src/CMakeFiles/nimble.dir/core/sql_generator.cc.o" "gcc" "src/CMakeFiles/nimble.dir/core/sql_generator.cc.o.d"
  "/root/repo/src/frontend/auth.cc" "src/CMakeFiles/nimble.dir/frontend/auth.cc.o" "gcc" "src/CMakeFiles/nimble.dir/frontend/auth.cc.o.d"
  "/root/repo/src/frontend/formatter.cc" "src/CMakeFiles/nimble.dir/frontend/formatter.cc.o" "gcc" "src/CMakeFiles/nimble.dir/frontend/formatter.cc.o.d"
  "/root/repo/src/frontend/lens.cc" "src/CMakeFiles/nimble.dir/frontend/lens.cc.o" "gcc" "src/CMakeFiles/nimble.dir/frontend/lens.cc.o.d"
  "/root/repo/src/frontend/load_balancer.cc" "src/CMakeFiles/nimble.dir/frontend/load_balancer.cc.o" "gcc" "src/CMakeFiles/nimble.dir/frontend/load_balancer.cc.o.d"
  "/root/repo/src/hierarchical/hstore.cc" "src/CMakeFiles/nimble.dir/hierarchical/hstore.cc.o" "gcc" "src/CMakeFiles/nimble.dir/hierarchical/hstore.cc.o.d"
  "/root/repo/src/materialize/result_cache.cc" "src/CMakeFiles/nimble.dir/materialize/result_cache.cc.o" "gcc" "src/CMakeFiles/nimble.dir/materialize/result_cache.cc.o.d"
  "/root/repo/src/materialize/view_selection.cc" "src/CMakeFiles/nimble.dir/materialize/view_selection.cc.o" "gcc" "src/CMakeFiles/nimble.dir/materialize/view_selection.cc.o.d"
  "/root/repo/src/materialize/view_store.cc" "src/CMakeFiles/nimble.dir/materialize/view_store.cc.o" "gcc" "src/CMakeFiles/nimble.dir/materialize/view_store.cc.o.d"
  "/root/repo/src/metadata/catalog.cc" "src/CMakeFiles/nimble.dir/metadata/catalog.cc.o" "gcc" "src/CMakeFiles/nimble.dir/metadata/catalog.cc.o.d"
  "/root/repo/src/relational/database.cc" "src/CMakeFiles/nimble.dir/relational/database.cc.o" "gcc" "src/CMakeFiles/nimble.dir/relational/database.cc.o.d"
  "/root/repo/src/relational/executor.cc" "src/CMakeFiles/nimble.dir/relational/executor.cc.o" "gcc" "src/CMakeFiles/nimble.dir/relational/executor.cc.o.d"
  "/root/repo/src/relational/index.cc" "src/CMakeFiles/nimble.dir/relational/index.cc.o" "gcc" "src/CMakeFiles/nimble.dir/relational/index.cc.o.d"
  "/root/repo/src/relational/schema.cc" "src/CMakeFiles/nimble.dir/relational/schema.cc.o" "gcc" "src/CMakeFiles/nimble.dir/relational/schema.cc.o.d"
  "/root/repo/src/relational/sql_ast.cc" "src/CMakeFiles/nimble.dir/relational/sql_ast.cc.o" "gcc" "src/CMakeFiles/nimble.dir/relational/sql_ast.cc.o.d"
  "/root/repo/src/relational/sql_lexer.cc" "src/CMakeFiles/nimble.dir/relational/sql_lexer.cc.o" "gcc" "src/CMakeFiles/nimble.dir/relational/sql_lexer.cc.o.d"
  "/root/repo/src/relational/sql_parser.cc" "src/CMakeFiles/nimble.dir/relational/sql_parser.cc.o" "gcc" "src/CMakeFiles/nimble.dir/relational/sql_parser.cc.o.d"
  "/root/repo/src/relational/table.cc" "src/CMakeFiles/nimble.dir/relational/table.cc.o" "gcc" "src/CMakeFiles/nimble.dir/relational/table.cc.o.d"
  "/root/repo/src/xml/node.cc" "src/CMakeFiles/nimble.dir/xml/node.cc.o" "gcc" "src/CMakeFiles/nimble.dir/xml/node.cc.o.d"
  "/root/repo/src/xml/parser.cc" "src/CMakeFiles/nimble.dir/xml/parser.cc.o" "gcc" "src/CMakeFiles/nimble.dir/xml/parser.cc.o.d"
  "/root/repo/src/xml/path.cc" "src/CMakeFiles/nimble.dir/xml/path.cc.o" "gcc" "src/CMakeFiles/nimble.dir/xml/path.cc.o.d"
  "/root/repo/src/xml/serializer.cc" "src/CMakeFiles/nimble.dir/xml/serializer.cc.o" "gcc" "src/CMakeFiles/nimble.dir/xml/serializer.cc.o.d"
  "/root/repo/src/xml/value.cc" "src/CMakeFiles/nimble.dir/xml/value.cc.o" "gcc" "src/CMakeFiles/nimble.dir/xml/value.cc.o.d"
  "/root/repo/src/xmlql/ast.cc" "src/CMakeFiles/nimble.dir/xmlql/ast.cc.o" "gcc" "src/CMakeFiles/nimble.dir/xmlql/ast.cc.o.d"
  "/root/repo/src/xmlql/parser.cc" "src/CMakeFiles/nimble.dir/xmlql/parser.cc.o" "gcc" "src/CMakeFiles/nimble.dir/xmlql/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
