file(REMOVE_RECURSE
  "libnimble.a"
)
