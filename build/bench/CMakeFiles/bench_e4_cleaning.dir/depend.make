# Empty dependencies file for bench_e4_cleaning.
# This may be replaced when dependencies are built.
