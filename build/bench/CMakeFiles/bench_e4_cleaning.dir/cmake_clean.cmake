file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_cleaning.dir/bench_e4_cleaning.cc.o"
  "CMakeFiles/bench_e4_cleaning.dir/bench_e4_cleaning.cc.o.d"
  "bench_e4_cleaning"
  "bench_e4_cleaning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_cleaning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
