# Empty dependencies file for bench_e3_pushdown.
# This may be replaced when dependencies are built.
