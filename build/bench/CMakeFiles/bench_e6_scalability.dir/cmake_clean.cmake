file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_scalability.dir/bench_e6_scalability.cc.o"
  "CMakeFiles/bench_e6_scalability.dir/bench_e6_scalability.cc.o.d"
  "bench_e6_scalability"
  "bench_e6_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
