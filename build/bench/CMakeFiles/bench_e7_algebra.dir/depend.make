# Empty dependencies file for bench_e7_algebra.
# This may be replaced when dependencies are built.
