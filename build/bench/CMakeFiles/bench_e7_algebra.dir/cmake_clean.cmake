file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_algebra.dir/bench_e7_algebra.cc.o"
  "CMakeFiles/bench_e7_algebra.dir/bench_e7_algebra.cc.o.d"
  "bench_e7_algebra"
  "bench_e7_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
