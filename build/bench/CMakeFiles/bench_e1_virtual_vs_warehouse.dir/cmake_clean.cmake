file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_virtual_vs_warehouse.dir/bench_e1_virtual_vs_warehouse.cc.o"
  "CMakeFiles/bench_e1_virtual_vs_warehouse.dir/bench_e1_virtual_vs_warehouse.cc.o.d"
  "bench_e1_virtual_vs_warehouse"
  "bench_e1_virtual_vs_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_virtual_vs_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
