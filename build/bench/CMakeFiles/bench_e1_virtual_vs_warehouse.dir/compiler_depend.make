# Empty compiler generated dependencies file for bench_e1_virtual_vs_warehouse.
# This may be replaced when dependencies are built.
