file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_cache.dir/bench_e8_cache.cc.o"
  "CMakeFiles/bench_e8_cache.dir/bench_e8_cache.cc.o.d"
  "bench_e8_cache"
  "bench_e8_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
