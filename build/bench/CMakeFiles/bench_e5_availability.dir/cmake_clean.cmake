file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_availability.dir/bench_e5_availability.cc.o"
  "CMakeFiles/bench_e5_availability.dir/bench_e5_availability.cc.o.d"
  "bench_e5_availability"
  "bench_e5_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
