# Empty dependencies file for bench_e2_view_selection.
# This may be replaced when dependencies are built.
