file(REMOVE_RECURSE
  "CMakeFiles/connector_test.dir/connector_test.cc.o"
  "CMakeFiles/connector_test.dir/connector_test.cc.o.d"
  "connector_test"
  "connector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/connector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
