file(REMOVE_RECURSE
  "CMakeFiles/relational_edge_test.dir/relational_edge_test.cc.o"
  "CMakeFiles/relational_edge_test.dir/relational_edge_test.cc.o.d"
  "relational_edge_test"
  "relational_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
