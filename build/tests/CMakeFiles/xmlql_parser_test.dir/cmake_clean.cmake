file(REMOVE_RECURSE
  "CMakeFiles/xmlql_parser_test.dir/xmlql_parser_test.cc.o"
  "CMakeFiles/xmlql_parser_test.dir/xmlql_parser_test.cc.o.d"
  "xmlql_parser_test"
  "xmlql_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlql_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
