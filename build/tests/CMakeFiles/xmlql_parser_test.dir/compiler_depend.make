# Empty compiler generated dependencies file for xmlql_parser_test.
# This may be replaced when dependencies are built.
