file(REMOVE_RECURSE
  "CMakeFiles/admin_test.dir/admin_test.cc.o"
  "CMakeFiles/admin_test.dir/admin_test.cc.o.d"
  "admin_test"
  "admin_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
