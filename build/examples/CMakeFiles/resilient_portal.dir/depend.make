# Empty dependencies file for resilient_portal.
# This may be replaced when dependencies are built.
