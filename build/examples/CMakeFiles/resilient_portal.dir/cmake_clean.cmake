file(REMOVE_RECURSE
  "CMakeFiles/resilient_portal.dir/resilient_portal.cc.o"
  "CMakeFiles/resilient_portal.dir/resilient_portal.cc.o.d"
  "resilient_portal"
  "resilient_portal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilient_portal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
