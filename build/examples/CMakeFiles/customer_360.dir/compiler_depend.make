# Empty compiler generated dependencies file for customer_360.
# This may be replaced when dependencies are built.
