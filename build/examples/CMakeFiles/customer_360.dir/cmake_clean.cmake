file(REMOVE_RECURSE
  "CMakeFiles/customer_360.dir/customer_360.cc.o"
  "CMakeFiles/customer_360.dir/customer_360.cc.o.d"
  "customer_360"
  "customer_360.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/customer_360.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
