# Empty compiler generated dependencies file for web_portal.
# This may be replaced when dependencies are built.
