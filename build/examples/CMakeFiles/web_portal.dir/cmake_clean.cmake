file(REMOVE_RECURSE
  "CMakeFiles/web_portal.dir/web_portal.cc.o"
  "CMakeFiles/web_portal.dir/web_portal.cc.o.d"
  "web_portal"
  "web_portal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_portal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
