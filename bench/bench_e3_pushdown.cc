// E3 — Query pushdown and source-index exploitation (§2.1, §4).
//
// Claim quantified: the compiler "generates SQL" for RDB fragments and
// considers "the presence of indices on the data"; the optimizer addresses
// "the varying query capabilities of different data sources".
//
// Setup: one remote relational table (50k rows) behind a simulated WAN
// (fixed RTT + per-row shipping cost). A selection of varying selectivity
// runs in two modes (ablation A1):
//   PUSHDOWN — the predicate is compiled into the generated SQL; the
//              source's own planner may use its index.
//   SHIP-ALL — pushdown disabled; the whole table crosses the wire and the
//              mediator filters.
//
// Expected shape: PUSHDOWN rows-shipped ∝ selectivity (latency likewise);
// SHIP-ALL is flat at |R| regardless of selectivity. Inside the source,
// the indexed run scans only matching rows.

#include <chrono>

#include "bench/workload.h"
#include "core/engine.h"
#include "metadata/catalog.h"
#include "relational/sql_parser.h"

using namespace nimble;
using bench::Fmt;
using bench::FmtInt;

namespace {

constexpr size_t kRows = 50000;

struct Sample {
  size_t results = 0;
  size_t rows_shipped = 0;
  double latency_ms = 0;
  size_t source_rows_scanned = 0;
};

}  // namespace

int main() {
  VirtualClock clock;
  metadata::Catalog catalog;
  connector::SimulationConfig config;
  config.fixed_latency_micros = 5000;
  config.per_row_latency_micros = 10;
  bench::RemoteRelationalSource source = bench::MakeRemoteCustomers(
      "crm", kRows, 17, config, &clock, /*index_value=*/true);
  relational::Database* db = source.db.get();
  (void)catalog.RegisterSource(std::move(source.connector));

  core::IntegrationEngine engine(&catalog);

  auto run = [&](double selectivity, bool pushdown) -> Sample {
    // value < K where K = selectivity * 1000 (value uniform in [0,1000)).
    int threshold = static_cast<int>(selectivity * 1000);
    std::string query =
        "WHERE <customers><row><id>$i</id><name>$n</name><value>$v</value>"
        "</row></customers> IN \"crm:customers\", $v < " +
        std::to_string(threshold) +
        " CONSTRUCT <hit id=$i><name>$n</name></hit>";
    core::EngineOptions options;
    options.enable_pushdown = pushdown;
    engine.set_options(options);

    // Count rows scanned inside the source via its table version of
    // stats: run the equivalent SQL directly for the scan metric.
    Sample sample;
    relational::SelectStmt probe;
    probe.select_star = true;
    probe.from.table = "customers";
    Result<relational::SqlStatement> parsed = relational::ParseSql(
        "SELECT id FROM customers WHERE value < " + std::to_string(threshold));
    if (parsed.ok()) {
      Result<relational::ResultSet> rs =
          db->Query(std::get<relational::SelectStmt>(*parsed));
      if (rs.ok()) sample.source_rows_scanned = rs->stats.rows_scanned;
    }

    int64_t before = clock.NowMicros();
    Result<core::QueryResult> result = engine.ExecuteText(query);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    sample.results = result->report.result_count;
    sample.rows_shipped = result->report.rows_shipped;
    sample.latency_ms =
        static_cast<double>(clock.NowMicros() - before) / 1000.0;
    return sample;
  };

  std::printf("E3: selection pushdown vs ship-all (%zu-row source, "
              "5ms RTT + 10us/row)\n\n", kRows);
  bench::PrintRow({"selectivity", "mode", "results", "rows_shipped",
                   "latency_ms", "src_scan"});
  bench::PrintRule(6);
  for (double selectivity : {0.001, 0.01, 0.1, 0.5, 1.0}) {
    Sample pushed = run(selectivity, true);
    Sample shipped = run(selectivity, false);
    bench::PrintRow({Fmt(selectivity, 3), "PUSHDOWN", FmtInt(pushed.results),
                     FmtInt(pushed.rows_shipped), Fmt(pushed.latency_ms, 1),
                     FmtInt(pushed.source_rows_scanned)});
    bench::PrintRow({Fmt(selectivity, 3), "SHIP-ALL", FmtInt(shipped.results),
                     FmtInt(shipped.rows_shipped), Fmt(shipped.latency_ms, 1),
                     FmtInt(shipped.source_rows_scanned)});
    bench::PrintRule(6);
  }

  // Join pushdown-adjacent case: two-fragment join where one side is
  // highly selective; the mediator joins only the survivors.
  std::printf("\njoin with selective fragment (pushdown on/off):\n");
  (void)db;  // second table lives in the same source database
  (void)source.db->Execute(
      "CREATE TABLE orders (oid INT PRIMARY KEY, cust INT, total INT)");
  {
    Rng rng(5);
    relational::Table* orders = source.db->GetTable("orders");
    for (int i = 0; i < 20000; ++i) {
      (void)orders->Insert({Value::Int(i),
                            Value::Int(rng.UniformInt(0, kRows - 1)),
                            Value::Int(rng.UniformInt(1, 500))});
    }
  }
  std::string join_query =
      "WHERE <customers><row><id>$i</id><value>$v</value></row></customers>"
      " IN \"crm:customers\", $v < 5,"
      " <orders><row><cust>$i</cust><total>$t</total></row></orders>"
      " IN \"crm:orders\""
      " CONSTRUCT <o cust=$i total=$t/>";
  bench::PrintRow({"mode", "results", "rows_shipped", "latency_ms",
                   "bind_joins"});
  bench::PrintRule(5);
  struct JoinMode {
    const char* label;
    bool pushdown;
    bool bind_join;
  };
  for (const JoinMode& mode :
       {JoinMode{"SHIP-ALL", false, false},
        JoinMode{"PUSHDOWN", true, false},
        JoinMode{"PUSH+BIND", true, true}}) {
    core::EngineOptions options;
    options.enable_pushdown = mode.pushdown;
    options.enable_bind_join = mode.bind_join;
    engine.set_options(options);
    int64_t before = clock.NowMicros();
    Result<core::QueryResult> result = engine.ExecuteText(join_query);
    if (!result.ok()) {
      std::fprintf(stderr, "join failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    bench::PrintRow({mode.label, FmtInt(result->report.result_count),
                     FmtInt(result->report.rows_shipped),
                     Fmt((clock.NowMicros() - before) / 1000.0, 1),
                     FmtInt(result->report.fragments_bind_joined)});
  }
  std::printf(
      "\nShape check: PUSHDOWN ships ~selectivity x |R| rows and its source\n"
      "scan uses the value index; SHIP-ALL is flat at |R| rows regardless;\n"
      "PUSH+BIND also semijoin-filters the orders fragment with the\n"
      "surviving customer ids, shipping only matching orders.\n");

  // E3(c) — cost-based join ordering on a skewed fact key (PASS gate,
  // optimizer ablation: enable_cost_optimizer on/off, DESIGN.md §2h).
  //
  // fact (10k rows) carries two join keys: kx is 90% one hot value, ky is
  // unique. dim_hot (50 rows, all on the hot kx) is the smaller dimension,
  // so the size-product heuristic joins it first — and the hot key fans
  // out into a ~450k-row intermediate. dim_sel (100 unique ky values)
  // keeps 100 fact rows. With ANALYZE statistics the cost model sees the
  // key cardinalities (ndv(kx)≈100 vs ndv(ky)≈10k), estimates the fan-out,
  // and joins the selective dimension first. Same answer, ~2 orders of
  // magnitude less intermediate state; the gate requires the costed plan
  // to sustain >= 2x the heuristic's result rows/sec.
  std::printf("\nE3(c): skewed-join ordering, costed vs heuristic:\n\n");
  auto mart_db = std::make_unique<relational::Database>("mart");
  (void)mart_db->Execute("CREATE TABLE fact (kx INT, ky INT)");
  (void)mart_db->Execute("CREATE TABLE dim_hot (kx INT, tag TEXT)");
  (void)mart_db->Execute("CREATE TABLE dim_sel (ky INT, label TEXT)");
  {
    relational::Table* fact = mart_db->GetTable("fact");
    for (int i = 0; i < 10000; ++i) {
      // 90% of rows sit on the hot key 3; the rest spread over [100, 200).
      int kx = (i % 10 == 0) ? 100 + (i / 10) % 100 : 3;
      (void)fact->Insert({Value::Int(kx), Value::Int(i)});
    }
    relational::Table* hot = mart_db->GetTable("dim_hot");
    for (int i = 0; i < 50; ++i) {
      (void)hot->Insert(
          {Value::Int(3), Value::String("t" + std::to_string(i))});
    }
    relational::Table* sel = mart_db->GetTable("dim_sel");
    for (int i = 0; i < 100; ++i) {
      (void)sel->Insert(
          {Value::Int(i), Value::String("l" + std::to_string(i))});
    }
  }
  metadata::Catalog mart;
  (void)mart.RegisterSource(
      std::make_unique<connector::RelationalConnector>("mart",
                                                       mart_db.get()));
  const std::string skew_query =
      "WHERE <fact><row><kx>$x</kx><ky>$y</ky></row></fact> IN \"mart:fact\","
      " <dimhot><row><kx>$x</kx><tag>$g</tag></row></dimhot>"
      " IN \"mart:dim_hot\","
      " <dimsel><row><ky>$y</ky><label>$l</label></row></dimsel>"
      " IN \"mart:dim_sel\""
      " CONSTRUCT <r tag=$g label=$l/>";

  struct SkewArm {
    double rows_per_sec = 0;
    size_t results = 0;
    std::string plan;
  };
  auto run_skew = [&](bool costed) -> SkewArm {
    core::EngineOptions options;
    options.enable_cost_optimizer = costed;
    // Bind joins off so join ordering is the only difference between arms.
    options.enable_bind_join = false;
    core::IntegrationEngine arm(&mart, options);
    if (costed) {
      Status analyzed = arm.Analyze();
      if (!analyzed.ok()) {
        std::fprintf(stderr, "ANALYZE failed: %s\n",
                     analyzed.ToString().c_str());
        std::exit(1);
      }
    }
    SkewArm out;
    Result<core::QueryResult> warm = arm.ExecuteText(skew_query);
    if (!warm.ok()) {
      std::fprintf(stderr, "skew query failed: %s\n",
                   warm.status().ToString().c_str());
      std::exit(1);
    }
    out.results = warm->report.result_count;
    out.plan = warm->report.plan;
    constexpr int kReps = 5;
    auto start = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kReps; ++rep) {
      Result<core::QueryResult> r = arm.ExecuteText(skew_query);
      if (!r.ok() || r->report.result_count != out.results) {
        std::fprintf(stderr, "skew rep diverged\n");
        std::exit(1);
      }
    }
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    out.rows_per_sec =
        static_cast<double>(out.results * kReps) / std::max(secs, 1e-9);
    return out;
  };

  SkewArm costed = run_skew(true);
  SkewArm heuristic = run_skew(false);
  bench::PrintRow({"mode", "results", "rows_per_sec"});
  bench::PrintRule(3);
  bench::PrintRow({"COSTED", FmtInt(static_cast<int64_t>(costed.results)),
                   FmtInt(static_cast<int64_t>(costed.rows_per_sec))});
  bench::PrintRow({"HEURISTIC",
                   FmtInt(static_cast<int64_t>(heuristic.results)),
                   FmtInt(static_cast<int64_t>(heuristic.rows_per_sec))});
  double speedup = heuristic.rows_per_sec > 0
                       ? costed.rows_per_sec / heuristic.rows_per_sec
                       : 0.0;
  std::printf("\ncosted plan:\n%s\nheuristic plan:\n%s\n",
              costed.plan.c_str(), heuristic.plan.c_str());
  bool same_answer = costed.results == heuristic.results;
  std::printf("speedup: %.1fx  (gate: >= 2x, identical result counts)\n",
              speedup);
  if (!same_answer || speedup < 2.0) {
    std::printf("E3(c) FAIL\n");
    return 1;
  }
  std::printf("E3(c) PASS\n");
  return 0;
}
