// E2 — Automated selection of views to materialize (§3.3).
//
// Claim quantified: "there is a need for algorithms that decide which data
// (and over which sources) need to be materialized". We implement the
// greedy benefit-density heuristic (after Agrawal et al.) and bound its
// gap against the exhaustive optimum.
//
// Candidates are *measured*, not invented: 12 mediated views of varying
// selectivity are defined over two simulated remote sources; each view's
// virtual cost (simulated source latency) and storage cost (result-tree
// nodes) come from actually executing it. Query frequencies are Zipf.
//
// Expected shape: workload cost falls steeply as budget grows; greedy
// tracks optimal closely; at 100% budget both converge to materialize-all
// (for views whose benefit is positive).

#include "bench/workload.h"
#include "core/engine.h"
#include "materialize/view_selection.h"
#include "materialize/view_store.h"
#include "metadata/catalog.h"

using namespace nimble;
using bench::Fmt;

int main() {
  VirtualClock clock;
  metadata::Catalog catalog;
  connector::SimulationConfig config;
  config.fixed_latency_micros = 4000;
  config.per_row_latency_micros = 25;

  std::vector<bench::RemoteRelationalSource> holders;
  for (int s = 0; s < 2; ++s) {
    bench::RemoteRelationalSource src = bench::MakeRemoteCustomers(
        "src" + std::to_string(s), 3000, 40 + static_cast<uint64_t>(s), config,
        &clock, true);
    (void)catalog.RegisterSource(std::move(src.connector));
    holders.push_back(std::move(src));
  }

  // 12 candidate views: per-source value bands of varying selectivity.
  const int kViews = 12;
  std::vector<std::string> names;
  for (int v = 0; v < kViews; ++v) {
    int source = v % 2;
    int lo = (v * 83) % 1000;
    int hi = lo + 40 + 70 * (v % 4);  // varying widths → varying sizes
    std::string name = "band" + std::to_string(v);
    std::string query =
        "WHERE <customers><row><id>$i</id><name>$n</name><value>$val</value>"
        "</row></customers> IN \"src" +
        std::to_string(source) + ":customers\", $val >= " +
        std::to_string(lo) + ", $val < " + std::to_string(hi) +
        " CONSTRUCT <c id=$i><name>$n</name><value>$val</value></c>";
    (void)catalog.DefineView(name, query);
    names.push_back(name);
  }

  core::IntegrationEngine engine(&catalog);
  materialize::MaterializedViewStore probe_store(&catalog, &engine, &clock);

  // Measure each candidate.
  ZipfGenerator zipf(kViews, 1.1, 99);
  std::vector<size_t> frequency(kViews, 0);
  for (int i = 0; i < 4000; ++i) ++frequency[zipf.Next()];

  std::vector<materialize::ViewCandidate> candidates;
  double total_storage = 0;
  std::printf("E2: measured candidate views\n");
  bench::PrintRow({"view", "storage", "virt_cost_ms", "freq"});
  bench::PrintRule(4);
  for (int v = 0; v < kViews; ++v) {
    int64_t before = clock.NowMicros();
    Result<core::QueryResult> r = probe_store.Query(names[v]);  // virtual
    if (!r.ok()) {
      std::fprintf(stderr, "probe failed: %s\n", r.status().ToString().c_str());
      return 1;
    }
    materialize::ViewCandidate c;
    c.view_name = names[v];
    c.virtual_cost = static_cast<double>(clock.NowMicros() - before);
    c.materialized_cost = 0;  // local serves ship nothing
    c.storage_cost = static_cast<double>(r->document->SubtreeSize());
    c.query_frequency = static_cast<double>(frequency[v]);
    total_storage += c.storage_cost;
    bench::PrintRow({c.view_name, Fmt(c.storage_cost, 0),
                     Fmt(c.virtual_cost / 1000, 2),
                     Fmt(c.query_frequency, 0)});
    candidates.push_back(c);
  }

  std::printf("\nworkload cost (ms of simulated source time) vs budget:\n");
  bench::PrintRow({"budget%", "no_mat", "greedy", "optimal", "gap%",
                   "greedy_views"});
  bench::PrintRule(6);
  double none_cost =
      materialize::WorkloadCost(candidates,
                                std::vector<bool>(candidates.size(), false));
  for (int pct : {0, 10, 25, 50, 75, 100}) {
    double budget = total_storage * pct / 100.0;
    materialize::SelectionResult greedy =
        materialize::SelectViewsGreedy(candidates, budget);
    materialize::SelectionResult optimal =
        materialize::SelectViewsOptimal(candidates, budget);
    double gap = optimal.workload_cost > 0
                     ? (greedy.workload_cost - optimal.workload_cost) /
                           optimal.workload_cost
                     : 0;
    bench::PrintRow({std::to_string(pct), Fmt(none_cost / 1000, 1),
                     Fmt(greedy.workload_cost / 1000, 1),
                     Fmt(optimal.workload_cost / 1000, 1),
                     Fmt(gap * 100, 2),
                     std::to_string(greedy.selected.size())});
  }
  std::printf(
      "\nShape check: cost collapses as the budget grows; the greedy\n"
      "heuristic stays within a few percent of the exhaustive optimum.\n");
  return 0;
}
