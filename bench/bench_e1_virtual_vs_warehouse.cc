// E1 — Warehousing vs. virtual integration vs. Nimble hybrid (§3.3).
//
// Claim quantified: the paper argues materializing *views over the
// mediated schema* gives near-warehouse query latency without the
// warehouse's staleness (and without its schema-design lead time).
//
// Setup: 3 remote relational sources (simulated WAN latency) behind one
// mediated view; a workload of Q queries interleaved with source updates
// every `update_every` queries. Strategies:
//   VIRTUAL    — every query contacts the sources.
//   WAREHOUSE  — materialized once, refreshed on a fixed period (classic
//                nightly-ETL cadence, here every 64 queries).
//   HYBRID     — Nimble materialization, refresh-on-stale.
//   HYBRID-TTL — ablation A4: TTL refresh instead of staleness probing.
//
// Expected shape: VIRTUAL pays full source latency per query but is never
// stale; WAREHOUSE is ~free per query but serves stale data between
// refreshes; HYBRID tracks WAREHOUSE latency while staying fresh, paying
// only when the data actually changed.

#include "bench/workload.h"
#include "core/engine.h"
#include "materialize/view_store.h"
#include "metadata/catalog.h"

using namespace nimble;
using bench::Fmt;
using bench::FmtInt;
using bench::FmtPct;

namespace {

constexpr size_t kRowsPerSource = 2000;
constexpr size_t kQueries = 256;
constexpr size_t kWarehouseRefreshPeriod = 64;

struct Trial {
  double mean_latency_ms = 0;
  double stale_fraction = 0;
  size_t refreshes = 0;
};

struct World {
  VirtualClock clock;
  std::vector<bench::RemoteRelationalSource> sources;
  std::unique_ptr<metadata::Catalog> catalog;
  std::unique_ptr<core::IntegrationEngine> engine;
  std::vector<relational::Database*> dbs;
};

std::unique_ptr<World> MakeWorld() {
  auto world = std::make_unique<World>();
  world->catalog = std::make_unique<metadata::Catalog>();
  connector::SimulationConfig config;
  config.fixed_latency_micros = 5000;   // 5 ms per round trip
  config.per_row_latency_micros = 20;   // bandwidth
  for (int s = 0; s < 3; ++s) {
    std::string name = "src" + std::to_string(s);
    bench::RemoteRelationalSource source = bench::MakeRemoteCustomers(
        name, kRowsPerSource, 100 + static_cast<uint64_t>(s), config,
        &world->clock, /*index_value=*/true);
    world->dbs.push_back(source.db.get());
    Status st = world->catalog->RegisterSource(std::move(source.connector));
    (void)st;
    world->sources.push_back(std::move(source));
  }
  // One mediated view unioning the three sources' premium customers.
  std::string view;
  for (int s = 0; s < 3; ++s) {
    if (s > 0) view += " UNION ";
    view += "WHERE <customers><row><id>$i</id><name>$n</name><value>$v</value>"
            "</row></customers> IN \"src" +
            std::to_string(s) +
            ":customers\", $v >= 900 "
            "CONSTRUCT <premium src=\"src" +
            std::to_string(s) + "\"><name>$n</name><value>$v</value></premium>";
  }
  Status st = world->catalog->DefineView("premium_customers", view);
  (void)st;
  world->engine =
      std::make_unique<core::IntegrationEngine>(world->catalog.get());
  return world;
}

// Applies one source update: bumps a random row's value in one source.
void ApplyUpdate(World* world, Rng* rng) {
  relational::Database* db = world->dbs[rng->Uniform(world->dbs.size())];
  int64_t id = rng->UniformInt(0, static_cast<int64_t>(kRowsPerSource) - 1);
  (void)db->Execute("UPDATE customers SET value = " +
                    std::to_string(rng->UniformInt(0, 999)) +
                    " WHERE id = " + std::to_string(id));
}

enum class Strategy { kVirtual, kWarehouse, kHybrid, kHybridTtl };

Trial RunTrial(Strategy strategy, size_t update_every) {
  std::unique_ptr<World> world = MakeWorld();
  Rng rng(7);
  materialize::MaterializedViewStore store(world->catalog.get(),
                                           world->engine.get(), &world->clock);
  materialize::MaterializationPolicy policy;
  switch (strategy) {
    case Strategy::kVirtual:
      break;
    case Strategy::kWarehouse:
      policy.refresh = materialize::MaterializationPolicy::Refresh::kManualOnly;
      (void)store.Materialize("premium_customers", policy);
      break;
    case Strategy::kHybrid:
      policy.refresh = materialize::MaterializationPolicy::Refresh::kOnStale;
      (void)store.Materialize("premium_customers", policy);
      break;
    case Strategy::kHybridTtl:
      policy.refresh = materialize::MaterializationPolicy::Refresh::kTtl;
      policy.ttl_micros = 200'000;  // 200 ms of virtual time
      (void)store.Materialize("premium_customers", policy);
      break;
  }
  store.ResetStats();

  Trial trial;
  int64_t total_latency = 0;
  size_t stale_answers = 0;
  for (size_t q = 0; q < kQueries; ++q) {
    if (update_every > 0 && q > 0 && q % update_every == 0) {
      ApplyUpdate(world.get(), &rng);
    }
    if (strategy == Strategy::kWarehouse && q > 0 &&
        q % kWarehouseRefreshPeriod == 0) {
      (void)store.Refresh("premium_customers");
    }
    // Freshness check BEFORE serving (Query may refresh).
    bool was_stale = store.IsMaterialized("premium_customers") &&
                     store.IsStale("premium_customers").ValueOr(false);
    int64_t before = world->clock.NowMicros();
    Result<core::QueryResult> result = store.Query("premium_customers");
    int64_t latency = world->clock.NowMicros() - before;
    if (!result.ok()) continue;
    total_latency += latency;
    // Stale answer = the local copy was out of date and the policy did not
    // refresh before serving.
    bool refreshed_now =
        strategy == Strategy::kHybrid ||
        (strategy == Strategy::kHybridTtl && latency > 0);
    if (was_stale && !refreshed_now) ++stale_answers;
    // Advance background time so TTLs can fire.
    world->clock.AdvanceMicros(1000);
  }
  trial.mean_latency_ms =
      static_cast<double>(total_latency) / kQueries / 1000.0;
  trial.stale_fraction = static_cast<double>(stale_answers) / kQueries;
  trial.refreshes = store.stats().refreshes;
  return trial;
}

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kVirtual:
      return "VIRTUAL";
    case Strategy::kWarehouse:
      return "WAREHOUSE";
    case Strategy::kHybrid:
      return "HYBRID";
    case Strategy::kHybridTtl:
      return "HYBRID-TTL";
  }
  return "?";
}

}  // namespace

int main() {
  std::printf("E1: warehousing vs. virtual integration vs. hybrid (§3.3)\n");
  std::printf("3 sources x %zu rows, 5ms RTT + 20us/row, %zu queries\n\n",
              kRowsPerSource, kQueries);
  bench::PrintRow({"updates/qry", "strategy", "mean_lat_ms", "stale_serves",
                   "refreshes"});
  bench::PrintRule(5);
  for (size_t update_every : {0, 32, 8, 2}) {
    for (Strategy strategy :
         {Strategy::kVirtual, Strategy::kWarehouse, Strategy::kHybrid,
          Strategy::kHybridTtl}) {
      Trial t = RunTrial(strategy, update_every);
      std::string rate = update_every == 0
                             ? "none"
                             : "1/" + std::to_string(update_every);
      bench::PrintRow({rate, StrategyName(strategy), Fmt(t.mean_latency_ms, 2),
                       FmtPct(t.stale_fraction), FmtInt(t.refreshes)});
    }
    bench::PrintRule(5);
  }
  std::printf(
      "\nShape check: VIRTUAL pays full latency but 0%% staleness;\n"
      "WAREHOUSE is ~0ms but serves stale answers between refreshes;\n"
      "HYBRID stays at ~0ms on quiet data and never serves stale data,\n"
      "paying a refresh only when a source actually changed.\n");
  return 0;
}
