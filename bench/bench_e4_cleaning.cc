// E4 — Dynamic data cleaning: merge/purge scale + concordance reuse (§3.2).
//
// Claims quantified:
//  (a) merge/purge must work "on large quantities of data" — we compare
//      naive O(n²) pairwise matching against the Hernández/Stolfo
//      sorted-neighbourhood method over dataset sizes and window widths,
//      scoring precision/recall against known ground truth (20% injected
//      duplicates with typos, name flips, dropped fields);
//  (b) ablation A2 — "past human decisions are reapplied via a concordance
//      database": a second run over the same data should score ~no pairs.
//
// Expected shape: naive comparisons grow quadratically while SN grows
// ~linearly (n·w); SN recall approaches naive's as the window widens; the
// warm-concordance run's matcher work drops to ~0.

#include <algorithm>
#include <chrono>

#include "bench/workload.h"
#include "common/strings.h"
#include "cleaning/concordance.h"
#include "cleaning/flow.h"
#include "cleaning/similarity.h"

using namespace nimble;
using bench::Fmt;
using bench::FmtInt;
using bench::FmtPct;

namespace {

std::shared_ptr<cleaning::RecordMatcher> MakeMatcher() {
  std::vector<cleaning::MatchRule> rules;
  rules.push_back({"name", cleaning::JaroWinklerSimilarity, 3.0, 0.0});
  rules.push_back({"city",
                   [](const std::string& a, const std::string& b) {
                     return a == b ? 1.0 : 0.0;
                   },
                   1.0, 0.6});
  rules.push_back({"value",
                   [](const std::string& a, const std::string& b) {
                     return a == b ? 1.0 : 0.0;
                   },
                   1.0, 0.6});
  return std::make_shared<cleaning::RecordMatcher>(std::move(rules), 0.86,
                                                   0.90);
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
             .count() /
         1000.0;
}

}  // namespace

int main() {
  std::printf("E4(a): naive pairwise vs sorted-neighbourhood merge/purge\n");
  std::printf("(20%% duplicates; name normalization applied first)\n\n");
  bench::PrintRow({"n", "strategy", "pairs", "wall_ms", "precision",
                   "recall"});
  bench::PrintRule(6);

  auto matcher = MakeMatcher();
  for (size_t n : {500, 1000, 2000, 5000, 10000}) {
    std::vector<bench::DirtyRecord> dirty =
        bench::MakeDirtyCustomers(n, 0.2, 42);
    // Normalize names first (flows would do this; here inline).
    cleaning::NormalizerPipeline names = cleaning::NormalizerPipeline::ForNames();
    std::vector<cleaning::KeyedRecord> records;
    records.reserve(dirty.size());
    for (const bench::DirtyRecord& dr : dirty) {
      cleaning::KeyedRecord r = dr.record;
      auto it = r.fields.find("name");
      if (it != r.fields.end()) {
        it->second = Value::String(names.Apply(it->second.ToString()));
      }
      records.push_back(std::move(r));
    }

    struct Config {
      const char* label;
      cleaning::MatchStrategy strategy;
      size_t window;
    };
    std::vector<Config> configs = {
        {"SN w=5", cleaning::MatchStrategy::kSortedNeighbourhood, 5},
        {"SN w=10", cleaning::MatchStrategy::kSortedNeighbourhood, 10},
        {"SN w=20", cleaning::MatchStrategy::kSortedNeighbourhood, 20},
        {"MP-SN w=10",
         cleaning::MatchStrategy::kMultiPassSortedNeighbourhood, 10},
    };
    if (n <= 2000) {
      configs.insert(configs.begin(),
                     {"NAIVE", cleaning::MatchStrategy::kNaivePairwise, 0});
    }
    auto name_key = [](const cleaning::KeyedRecord& r) {
      auto it = r.fields.find("name");
      return it == r.fields.end() ? std::string() : it->second.ToString();
    };
    // Second pass key: last whitespace token first (catches "Last, First"
    // flips the first key sorts far away), then Soundex of the first token.
    auto reversed_key = [](const cleaning::KeyedRecord& r) {
      auto it = r.fields.find("name");
      if (it == r.fields.end()) return std::string();
      std::vector<std::string> tokens = SplitWhitespace(it->second.ToString());
      std::reverse(tokens.begin(), tokens.end());
      return Join(tokens, " ");
    };
    auto soundex_key = [](const cleaning::KeyedRecord& r) {
      auto it = r.fields.find("name");
      if (it == r.fields.end()) return std::string();
      std::string code;
      for (const std::string& t : SplitWhitespace(it->second.ToString())) {
        code += cleaning::Soundex(t);
      }
      return code;
    };
    for (const Config& config : configs) {
      cleaning::MergePurgeOptions options;
      options.strategy = config.strategy;
      if (config.window > 0) options.window = config.window;
      options.key_extractor = name_key;
      options.key_extractors = {name_key, reversed_key, soundex_key};
      options.trap_exceptions = false;
      auto start = std::chrono::steady_clock::now();
      Result<cleaning::MergePurgeResult> result =
          cleaning::MergePurge(records, *matcher, options);
      double wall = MillisSince(start);
      if (!result.ok()) {
        std::fprintf(stderr, "merge/purge failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      bench::PairMetrics metrics = bench::ScoreClusters(dirty,
                                                        result->clusters);
      bench::PrintRow({FmtInt(static_cast<int64_t>(n)), config.label,
                       FmtInt(static_cast<int64_t>(result->pairs_considered)),
                       Fmt(wall, 1), FmtPct(metrics.precision),
                       FmtPct(metrics.recall)});
    }
    bench::PrintRule(6);
  }

  std::printf("\nE4(b): concordance database reuse (ablation A2)\n\n");
  bench::PrintRow({"run", "pairs", "scored", "conc_hits", "wall_ms"});
  bench::PrintRule(5);
  {
    std::vector<bench::DirtyRecord> dirty =
        bench::MakeDirtyCustomers(5000, 0.2, 42);
    std::vector<cleaning::KeyedRecord> records;
    for (const bench::DirtyRecord& dr : dirty) records.push_back(dr.record);
    cleaning::ConcordanceDatabase concordance;
    cleaning::MergePurgeOptions options;
    options.strategy = cleaning::MatchStrategy::kSortedNeighbourhood;
    options.window = 10;
    options.concordance = &concordance;
    options.trap_exceptions = false;
    for (const char* run : {"cold", "warm", "warm2"}) {
      auto start = std::chrono::steady_clock::now();
      Result<cleaning::MergePurgeResult> result =
          cleaning::MergePurge(records, *matcher, options);
      double wall = MillisSince(start);
      if (!result.ok()) return 1;
      bench::PrintRow(
          {run, FmtInt(static_cast<int64_t>(result->pairs_considered)),
           FmtInt(static_cast<int64_t>(result->pairs_scored)),
           FmtInt(static_cast<int64_t>(result->concordance_hits)),
           Fmt(wall, 1)});
    }
  }
  std::printf(
      "\nShape check: naive pair counts grow ~n^2 vs ~n*w for SN; SN recall\n"
      "rises with window width; warm concordance runs score ~0 pairs.\n");
  return 0;
}
