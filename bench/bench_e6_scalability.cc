// E6 — Scalable query processing and engine load balancing (§2.1).
//
// Claims quantified:
//  (a) "high-performance, scalable query processing of data from multiple
//      sources": per-query source time vs fan-out, with parallel fetch
//      (latency = max over fragments) against serial fetch (sum) —
//      parallel fan-out should stay ~flat while serial grows linearly;
//  (b) "load balancing is provided; multiple instances of the integration
//      engine can be run simultaneously": workload makespan vs pool size
//      under round-robin vs least-loaded on a heterogeneous query mix.
//
// Expected shape: (a) serial latency ∝ #sources, parallel ≈ slowest
// source; (b) makespan ≈ total/k for k engines, with least-loaded beating
// round-robin when query costs are skewed.

#include <chrono>
#include <thread>

#include "bench/workload.h"
#include "core/engine.h"
#include "frontend/load_balancer.h"
#include "metadata/catalog.h"

using namespace nimble;
using bench::Fmt;
using bench::FmtInt;

namespace {

struct FanOutWorld {
  VirtualClock clock;
  metadata::Catalog catalog;
  std::vector<std::string> queries;  // per-source single queries
  std::string union_query;
};

std::unique_ptr<FanOutWorld> MakeFanOut(size_t n_sources) {
  auto world = std::make_unique<FanOutWorld>();
  Rng rng(3);
  for (size_t s = 0; s < n_sources; ++s) {
    std::string name = "src" + std::to_string(s);
    auto inner = std::make_unique<connector::XmlConnector>(name);
    std::string doc = "<data>";
    size_t rows = 20 + rng.Uniform(60);
    for (size_t r = 0; r < rows; ++r) {
      doc += "<r><v>" + std::to_string(r) + "</v></r>";
    }
    doc += "</data>";
    (void)inner->PutDocumentText("data", doc);
    connector::SimulationConfig config;
    // Heterogeneous source speeds: 2..12 ms RTT.
    config.fixed_latency_micros = 2000 + 500 * static_cast<int64_t>(s % 20);
    config.per_row_latency_micros = 20;
    (void)world->catalog.RegisterSource(
        std::make_unique<connector::SimulatedSource>(std::move(inner), config,
                                                     &world->clock));
    std::string q = "WHERE <data><r><v>$v</v></r></data> IN \"" + name +
                    ":data\" CONSTRUCT <out>$v</out>";
    world->queries.push_back(q);
    if (s > 0) world->union_query += " UNION ";
    world->union_query += q;
  }
  return world;
}

}  // namespace

int main() {
  std::printf("E6(a): per-query source time vs fan-out (parallel vs serial "
              "fetch)\n\n");
  bench::PrintRow({"sources", "serial_ms", "parallel_ms"});
  bench::PrintRule(3);
  for (size_t n : {1u, 2u, 4u, 8u, 16u, 32u}) {
    std::unique_ptr<FanOutWorld> world = MakeFanOut(n);
    double latency[2];
    for (int mode = 0; mode < 2; ++mode) {
      core::EngineOptions options;
      options.parallel_fetch = (mode == 1);
      core::IntegrationEngine engine(&world->catalog, options);
      Result<core::QueryResult> result =
          engine.ExecuteText(world->union_query);
      if (!result.ok()) {
        std::fprintf(stderr, "failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      latency[mode] =
          static_cast<double>(result->report.source_latency_micros) / 1000.0;
    }
    bench::PrintRow({FmtInt(static_cast<int64_t>(n)), Fmt(latency[0], 1),
                     Fmt(latency[1], 1)});
  }

  std::printf("\nE6(b): workload makespan vs engine pool size and policy\n");
  std::printf("(400-query mix over 16 heterogeneous sources)\n\n");
  bench::PrintRow({"engines", "policy", "makespan_ms", "speedup"});
  bench::PrintRule(4);

  double baseline = 0;
  for (size_t engines : {1u, 2u, 4u, 8u}) {
    for (frontend::BalancePolicy policy :
         {frontend::BalancePolicy::kRoundRobin,
          frontend::BalancePolicy::kLeastLoaded}) {
      std::unique_ptr<FanOutWorld> world = MakeFanOut(16);
      frontend::LoadBalancer balancer(policy);
      for (size_t e = 0; e < engines; ++e) {
        balancer.AddEngine(
            std::make_unique<core::IntegrationEngine>(&world->catalog));
      }
      // Skewed mix: Zipf over the 16 per-source queries, so some queries
      // are much more expensive than others (slow sources).
      ZipfGenerator zipf(16, 1.0, 77);
      for (int q = 0; q < 400; ++q) {
        (void)balancer.Execute(world->queries[zipf.Next()]);
      }
      double makespan =
          static_cast<double>(balancer.MakespanMicros()) / 1000.0;
      if (engines == 1 &&
          policy == frontend::BalancePolicy::kRoundRobin) {
        baseline = makespan;
      }
      bench::PrintRow({FmtInt(static_cast<int64_t>(engines)),
                       policy == frontend::BalancePolicy::kRoundRobin
                           ? "round-robin"
                           : "least-loaded",
                       Fmt(makespan, 1),
                       Fmt(baseline / makespan, 2) + "x"});
    }
  }
  // (c) The overlap is real, not an accounting artifact: on a RealClock the
  // simulated sources genuinely sleep out their RTT, so concurrent fragment
  // fetches must overlap their sleeps in wall-clock time.
  std::printf("\nE6(c): wall-clock fan-out on a RealClock "
              "(4 sources x 10 ms RTT)\n\n");
  RealClock real_clock;
  FanOutWorld wall_world;
  std::string wall_union;
  for (size_t s = 0; s < 4; ++s) {
    std::string name = "wsrc" + std::to_string(s);
    auto inner = std::make_unique<connector::XmlConnector>(name);
    (void)inner->PutDocumentText("data", "<data><r><v>1</v></r></data>");
    connector::SimulationConfig config;
    config.fixed_latency_micros = 10000;
    (void)wall_world.catalog.RegisterSource(
        std::make_unique<connector::SimulatedSource>(std::move(inner), config,
                                                     &real_clock));
    if (s > 0) wall_union += " UNION ";
    wall_union += "WHERE <data><r><v>$v</v></r></data> IN \"" + name +
                  ":data\" CONSTRUCT <out>$v</out>";
  }
  bench::PrintRow({"mode", "wall_ms"});
  bench::PrintRule(2);
  double wall_ms[2];
  for (int mode = 0; mode < 2; ++mode) {
    core::EngineOptions options;
    options.parallel_fetch = (mode == 1);
    options.worker_threads = 4;
    core::IntegrationEngine engine(&wall_world.catalog, options);
    auto start = std::chrono::steady_clock::now();
    Result<core::QueryResult> result = engine.ExecuteText(wall_union);
    auto stop = std::chrono::steady_clock::now();
    if (!result.ok()) {
      std::fprintf(stderr, "failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    wall_ms[mode] =
        std::chrono::duration<double, std::milli>(stop - start).count();
    bench::PrintRow({mode == 0 ? "serial" : "parallel", Fmt(wall_ms[mode], 1)});
  }
  double speedup = wall_ms[0] / wall_ms[1];
  std::printf("\nparallel speedup: %.2fx %s\n", speedup,
              speedup >= 2.0 ? "(PASS: >= 2x)" : "(FAIL: expected >= 2x)");
  if (speedup < 2.0) return 1;

  // (d) Overload behaviour: goodput vs offered load with the admission
  // scheduler shedding (bounded queue + wait-based shed) against a
  // no-scheduler baseline where bursts land straight on the worker pool.
  // Goodput counts queries that complete within the client SLO (the query
  // deadline): under overload the baseline "completes" everything hopelessly
  // late, which is a timeout from the client's chair, while shedding keeps
  // admitted queries inside the SLO and rejects the excess up front with
  // ResourceExhausted + a retry hint.
  std::printf("\nE6(d): goodput vs offered load, admission shedding on/off\n"
              "(4 workers x 10 ms service => capacity ~400 q/s; SLO 40 ms)\n\n");
  constexpr int64_t kServiceMicros = 10000;
  constexpr int64_t kSloMicros = 40000;
  constexpr double kCapacityQps = 400.0;
  constexpr double kWindowSeconds = 0.6;

  RealClock overload_clock;
  metadata::Catalog overload_catalog;
  {
    auto inner = std::make_unique<connector::XmlConnector>("osrc");
    (void)inner->PutDocumentText("data", "<data><r><v>1</v></r></data>");
    connector::SimulationConfig config;
    config.fixed_latency_micros = kServiceMicros;
    (void)overload_catalog.RegisterSource(
        std::make_unique<connector::SimulatedSource>(
            std::move(inner), config, &overload_clock));
  }
  const std::string overload_query =
      "WHERE <data><r><v>$v</v></r></data> IN \"osrc:data\" "
      "CONSTRUCT <out>$v</out>";

  bench::PrintRow({"offered_x", "mode", "good_qps", "ok", "shed", "late",
                   "err"});
  bench::PrintRule(7);
  double peak_shed_on = 0, shed_on_at_4x = 0, baseline_at_4x = 0;
  for (double offered_x : {0.5, 1.0, 2.0, 4.0}) {
    for (int mode = 0; mode < 2; ++mode) {
      const bool shedding = (mode == 0);
      core::EngineOptions options;
      options.worker_threads = 4;
      options.query_deadline_micros = kSloMicros;
      if (shedding) {
        options.max_inflight_queries = 4;
        options.queue_capacity = 8;
        options.load_shedding = true;
      }  // else: no scheduler — submissions land straight on the pool.
      core::IntegrationEngine engine(&overload_catalog, options);

      const double offered_qps = offered_x * kCapacityQps;
      const int total = static_cast<int>(offered_qps * kWindowSeconds);
      const auto interval = std::chrono::nanoseconds(
          static_cast<int64_t>(1e9 / offered_qps));
      // The waiter runs concurrently with submission and stamps each query
      // as its handle resolves (completions are FIFO here), so the client
      // latency is submit→done, not submit→whenever-the-bench-looked.
      std::mutex mu;
      std::condition_variable cv;
      std::vector<core::QueryHandlePtr> handles;
      std::vector<std::chrono::steady_clock::time_point> submitted;
      int ok_in_slo = 0, shed = 0, late = 0, err = 0;
      std::thread waiter([&] {
        for (int q = 0; q < total; ++q) {
          core::QueryHandlePtr handle;
          std::chrono::steady_clock::time_point sent;
          {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock, [&] { return handles.size() > static_cast<size_t>(q); });
            handle = handles[static_cast<size_t>(q)];
            sent = submitted[static_cast<size_t>(q)];
          }
          const Result<core::QueryResult>& r = handle->Wait();
          auto latency =
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - sent)
                  .count();
          if (r.ok()) {
            (latency <= kSloMicros ? ok_in_slo : late)++;
          } else if (r.status().code() == StatusCode::kResourceExhausted) {
            shed++;
          } else if (r.status().code() == StatusCode::kTimeout ||
                     r.status().code() == StatusCode::kUnavailable) {
            late++;  // engine-side deadline miss: a timeout either way
          } else {
            err++;
          }
        }
      });
      auto start = std::chrono::steady_clock::now();
      for (int q = 0; q < total; ++q) {
        std::this_thread::sleep_until(start + q * interval);
        auto sent = std::chrono::steady_clock::now();
        core::QueryHandlePtr handle = engine.Submit(overload_query);
        {
          std::lock_guard<std::mutex> lock(mu);
          submitted.push_back(sent);
          handles.push_back(std::move(handle));
        }
        cv.notify_one();
      }
      waiter.join();
      double elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
      double good_qps = static_cast<double>(ok_in_slo) / elapsed;
      if (shedding) {
        peak_shed_on = std::max(peak_shed_on, good_qps);
        if (offered_x == 4.0) shed_on_at_4x = good_qps;
      } else if (offered_x == 4.0) {
        baseline_at_4x = good_qps;
      }
      bench::PrintRow({Fmt(offered_x, 1), shedding ? "shed" : "no-sched",
                       Fmt(good_qps, 0), FmtInt(ok_in_slo), FmtInt(shed),
                       FmtInt(late), FmtInt(err)});
    }
  }
  bool plateau = shed_on_at_4x >= 0.8 * peak_shed_on;
  bool collapse = baseline_at_4x < 0.5 * shed_on_at_4x;
  std::printf("\n4x overload: shedding %.0f q/s vs peak %.0f q/s %s\n",
              shed_on_at_4x, peak_shed_on,
              plateau ? "(PASS: within 20%% of peak)"
                      : "(FAIL: expected within 20%% of peak)");
  std::printf("no-scheduler baseline at 4x: %.0f q/s %s\n", baseline_at_4x,
              collapse ? "(PASS: collapses to < 50%% of shedding goodput)"
                       : "(FAIL: expected collapse under overload)");
  if (!plateau || !collapse) return 1;

  std::printf(
      "\nShape check: serial fan-out grows ~linearly while parallel tracks\n"
      "the slowest source; makespan scales ~1/k with pool size, and\n"
      "least-loaded beats round-robin under a skewed mix; the RealClock run\n"
      "shows the overlap as genuine wall-clock time; under overload the\n"
      "admission scheduler holds goodput at capacity by shedding the excess\n"
      "while the unscheduled engine blows through every client SLO.\n");
  return 0;
}
