// E8 — Query-result caching (§2.1/§4 "caching and other performance
// tuning capabilities").
//
// Claims quantified:
//  (a) hit rate / mean latency vs cache capacity under Zipf-skewed query
//      workloads: skew drives most traffic to few queries, so a small
//      cache captures a large share;
//  (b) TTL tradeoff: short TTLs bound staleness but lose hits when the
//      underlying data churns.
//
// Expected shape: hit rate rises with capacity and with skew, saturating
// near the distinct-query working set; with a TTL, longer TTL → higher
// hit rate but more stale answers.

#include "bench/workload.h"
#include "core/engine.h"
#include "materialize/result_cache.h"
#include "metadata/catalog.h"

using namespace nimble;
using bench::Fmt;
using bench::FmtInt;
using bench::FmtPct;

namespace {

constexpr size_t kDistinctQueries = 64;
constexpr size_t kWorkload = 2000;

struct World {
  VirtualClock clock;
  metadata::Catalog catalog;
  std::unique_ptr<bench::RemoteRelationalSource> holder;
  std::unique_ptr<core::IntegrationEngine> engine;
  std::vector<std::string> queries;
};

std::unique_ptr<World> MakeWorld() {
  auto world = std::make_unique<World>();
  connector::SimulationConfig config;
  config.fixed_latency_micros = 3000;
  config.per_row_latency_micros = 15;
  auto src = bench::MakeRemoteCustomers("crm", 4000, 21, config, &world->clock,
                                        true);
  world->holder = std::make_unique<bench::RemoteRelationalSource>(
      std::move(src));
  (void)world->catalog.RegisterSource(std::move(world->holder->connector));
  world->engine = std::make_unique<core::IntegrationEngine>(&world->catalog);
  for (size_t q = 0; q < kDistinctQueries; ++q) {
    int lo = static_cast<int>((q * 131) % 950);
    world->queries.push_back(
        "WHERE <customers><row><id>$i</id><value>$v</value></row></customers>"
        " IN \"crm:customers\", $v >= " +
        std::to_string(lo) + ", $v < " + std::to_string(lo + 50) +
        " CONSTRUCT <c id=$i><value>$v</value></c>");
  }
  return world;
}

}  // namespace

int main() {
  std::printf("E8(a): cache hit rate and mean latency vs capacity and skew\n");
  std::printf("(%zu queries over %zu distinct templates, 3ms RTT source)\n\n",
              kWorkload, kDistinctQueries);
  bench::PrintRow({"skew", "capacity", "hit_rate", "mean_lat_ms"});
  bench::PrintRule(4);
  for (double skew : {0.0, 0.8, 1.2}) {
    for (size_t capacity : {0u, 4u, 16u, 64u}) {
      std::unique_ptr<World> world = MakeWorld();
      materialize::ResultCache cache(capacity, 0, &world->clock);
      ZipfGenerator zipf(kDistinctQueries, skew, 5);
      int64_t total_latency = 0;
      for (size_t i = 0; i < kWorkload; ++i) {
        const std::string& query = world->queries[zipf.Next()];
        int64_t before = world->clock.NowMicros();
        NodePtr cached = cache.Lookup(query);
        if (cached == nullptr) {
          Result<core::QueryResult> result = world->engine->ExecuteText(query);
          if (!result.ok()) return 1;
          cache.Insert(query, result->document);
        }
        total_latency += world->clock.NowMicros() - before;
      }
      bench::PrintRow({Fmt(skew, 1), FmtInt(static_cast<int64_t>(capacity)),
                       FmtPct(cache.stats().HitRate()),
                       Fmt(static_cast<double>(total_latency) / kWorkload /
                               1000.0,
                           2)});
    }
    bench::PrintRule(4);
  }

  std::printf("\nE8(b): TTL vs staleness under churn "
              "(1 source update per 20 queries)\n\n");
  bench::PrintRow({"ttl_ms", "hit_rate", "stale_hits", "mean_lat_ms"});
  bench::PrintRule(4);
  for (int64_t ttl_ms : {0, 10, 100, 1000}) {
    std::unique_ptr<World> world = MakeWorld();
    relational::Database* db = world->holder->db.get();
    materialize::ResultCache cache(64, ttl_ms * 1000, &world->clock);
    ZipfGenerator zipf(kDistinctQueries, 1.0, 5);
    Rng rng(13);
    uint64_t data_version = 0;
    std::map<std::string, uint64_t> cached_version;
    size_t stale_hits = 0;
    int64_t total_latency = 0;
    for (size_t i = 0; i < kWorkload; ++i) {
      if (i % 20 == 19) {
        (void)db->Execute("UPDATE customers SET value = " +
                          std::to_string(rng.UniformInt(0, 999)) +
                          " WHERE id = " +
                          std::to_string(rng.UniformInt(0, 3999)));
        ++data_version;
      }
      const std::string& query = world->queries[zipf.Next()];
      int64_t before = world->clock.NowMicros();
      NodePtr cached = cache.Lookup(query);
      if (cached != nullptr) {
        if (cached_version[query] != data_version) ++stale_hits;
      } else {
        Result<core::QueryResult> result = world->engine->ExecuteText(query);
        if (!result.ok()) return 1;
        cache.Insert(query, result->document);
        cached_version[query] = data_version;
      }
      total_latency += world->clock.NowMicros() - before;
      world->clock.AdvanceMicros(500);  // think time so TTLs elapse
    }
    bench::PrintRow({ttl_ms == 0 ? "inf" : FmtInt(ttl_ms),
                     FmtPct(cache.stats().HitRate()),
                     FmtInt(static_cast<int64_t>(stale_hits)),
                     Fmt(static_cast<double>(total_latency) / kWorkload /
                             1000.0,
                         2)});
  }
  std::printf(
      "\nShape check: hit rate climbs with capacity and skew; longer TTLs\n"
      "buy hits at the price of stale answers under churn.\n");
  return 0;
}
