// E8 — Query-result caching (§2.1/§4 "caching and other performance
// tuning capabilities").
//
// Claims quantified:
//  (a) hit rate / mean latency vs cache byte budget under Zipf-skewed
//      query workloads: skew drives most traffic to few queries, so a
//      small cache captures a large share;
//  (b) TTL tradeoff: short TTLs bound staleness but lose hits when the
//      underlying data churns;
//  (c) singleflight: N concurrent identical misses collapse into one
//      engine execution (the rest coalesce onto the leader's flight);
//  (d) zero-copy hits: a hit hands out a shared frozen snapshot, so hit
//      latency is O(1) in result size — unlike the deep-clone-per-hit
//      scheme it replaces, which is O(result size).
//
// Expected shape: hit rate rises with capacity and with skew, saturating
// near the distinct-query working set; with a TTL, longer TTL → higher
// hit rate but more stale answers; (c) reports exactly 1 execution per
// round regardless of client count; (d) snapshot hit cost is flat while
// clone cost grows linearly with rows.

#include <chrono>
#include <thread>

#include "bench/workload.h"
#include "core/engine.h"
#include "materialize/result_cache.h"
#include "metadata/catalog.h"

using namespace nimble;
using bench::Fmt;
using bench::FmtInt;
using bench::FmtPct;

namespace {

constexpr size_t kDistinctQueries = 64;
constexpr size_t kWorkload = 2000;

struct World {
  VirtualClock clock;
  metadata::Catalog catalog;
  std::unique_ptr<bench::RemoteRelationalSource> holder;
  std::unique_ptr<core::IntegrationEngine> engine;
  std::vector<std::string> queries;
};

std::unique_ptr<World> MakeWorld(core::EngineOptions options = {}) {
  auto world = std::make_unique<World>();
  connector::SimulationConfig config;
  config.fixed_latency_micros = 3000;
  config.per_row_latency_micros = 15;
  auto src = bench::MakeRemoteCustomers("crm", 4000, 21, config, &world->clock,
                                        true);
  world->holder = std::make_unique<bench::RemoteRelationalSource>(
      std::move(src));
  (void)world->catalog.RegisterSource(std::move(world->holder->connector));
  world->engine =
      std::make_unique<core::IntegrationEngine>(&world->catalog, options);
  for (size_t q = 0; q < kDistinctQueries; ++q) {
    int lo = static_cast<int>((q * 131) % 950);
    world->queries.push_back(
        "WHERE <customers><row><id>$i</id><value>$v</value></row></customers>"
        " IN \"crm:customers\", $v >= " +
        std::to_string(lo) + ", $v < " + std::to_string(lo + 50) +
        " CONSTRUCT <c id=$i><value>$v</value></c>");
  }
  return world;
}

/// One representative result document's cost, used to express the byte
/// budget sweep in "entries worth of bytes" for comparability with the
/// entry-count sweep this bench used before byte budgeting.
size_t TypicalResultBytes() {
  std::unique_ptr<World> world = MakeWorld();
  Result<core::QueryResult> result =
      world->engine->ExecuteText(world->queries[0]);
  if (!result.ok()) return 0;
  return result->document->EstimatedBytes();
}

/// A flat result document with `rows` rows, shaped like engine output.
NodePtr MakeRows(size_t rows) {
  NodePtr doc = Node::Element("result");
  for (size_t i = 0; i < rows; ++i) {
    NodePtr row = doc->AddChild(Node::Element("c"));
    row->SetAttribute("id", Value::Int(static_cast<int64_t>(i)));
    row->AddScalarChild("value", Value::Int(static_cast<int64_t>(i * 7)));
    row->AddScalarChild("name", Value::String("customer-" +
                                              std::to_string(i)));
  }
  return doc;
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  const size_t doc_bytes = TypicalResultBytes();
  if (doc_bytes == 0) return 1;

  std::printf("E8(a): cache hit rate and mean latency vs byte budget and "
              "skew\n");
  std::printf("(%zu queries over %zu distinct templates, 3ms RTT source, "
              "~%zu KB per result)\n\n",
              kWorkload, kDistinctQueries, doc_bytes / 1024);
  bench::PrintRow({"skew", "budget", "hit_rate", "mean_lat_ms"});
  bench::PrintRule(4);
  for (double skew : {0.0, 0.8, 1.2}) {
    for (size_t entries : {0u, 4u, 16u, 64u}) {
      std::unique_ptr<World> world = MakeWorld();
      materialize::ResultCacheOptions cache_options;
      // +25% slack per entry so budget rounding never strands capacity.
      cache_options.max_bytes = entries * (doc_bytes + doc_bytes / 4);
      cache_options.shards = 1;  // deterministic LRU for the sweep
      materialize::ResultCache cache(cache_options, &world->clock);
      ZipfGenerator zipf(kDistinctQueries, skew, 5);
      int64_t total_latency = 0;
      for (size_t i = 0; i < kWorkload; ++i) {
        const std::string& query = world->queries[zipf.Next()];
        int64_t before = world->clock.NowMicros();
        ConstNodePtr cached = cache.Lookup(query);
        if (cached == nullptr) {
          Result<core::QueryResult> result = world->engine->ExecuteText(query);
          if (!result.ok()) return 1;
          cache.Insert(query, result->document);
        }
        total_latency += world->clock.NowMicros() - before;
      }
      bench::PrintRow({Fmt(skew, 1),
                       FmtInt(static_cast<int64_t>(entries)) + "x",
                       FmtPct(cache.stats().HitRate()),
                       Fmt(static_cast<double>(total_latency) / kWorkload /
                               1000.0,
                           2)});
    }
    bench::PrintRule(4);
  }

  std::printf("\nE8(b): TTL vs staleness under churn "
              "(1 source update per 20 queries)\n\n");
  bench::PrintRow({"ttl_ms", "hit_rate", "stale_hits", "mean_lat_ms"});
  bench::PrintRule(4);
  for (int64_t ttl_ms : {0, 10, 100, 1000}) {
    std::unique_ptr<World> world = MakeWorld();
    relational::Database* db = world->holder->db.get();
    materialize::ResultCacheOptions cache_options;
    cache_options.max_bytes = 64 * (doc_bytes + doc_bytes / 4);
    cache_options.ttl_micros = ttl_ms * 1000;
    cache_options.shards = 1;
    materialize::ResultCache cache(cache_options, &world->clock);
    ZipfGenerator zipf(kDistinctQueries, 1.0, 5);
    Rng rng(13);
    uint64_t data_version = 0;
    std::map<std::string, uint64_t> cached_version;
    size_t stale_hits = 0;
    int64_t total_latency = 0;
    for (size_t i = 0; i < kWorkload; ++i) {
      if (i % 20 == 19) {
        (void)db->Execute("UPDATE customers SET value = " +
                          std::to_string(rng.UniformInt(0, 999)) +
                          " WHERE id = " +
                          std::to_string(rng.UniformInt(0, 3999)));
        ++data_version;
      }
      const std::string& query = world->queries[zipf.Next()];
      int64_t before = world->clock.NowMicros();
      ConstNodePtr cached = cache.Lookup(query);
      if (cached != nullptr) {
        if (cached_version[query] != data_version) ++stale_hits;
      } else {
        Result<core::QueryResult> result = world->engine->ExecuteText(query);
        if (!result.ok()) return 1;
        cache.Insert(query, result->document);
        cached_version[query] = data_version;
      }
      total_latency += world->clock.NowMicros() - before;
      world->clock.AdvanceMicros(500);  // think time so TTLs elapse
    }
    bench::PrintRow({ttl_ms == 0 ? "inf" : FmtInt(ttl_ms),
                     FmtPct(cache.stats().HitRate()),
                     FmtInt(static_cast<int64_t>(stale_hits)),
                     Fmt(static_cast<double>(total_latency) / kWorkload /
                             1000.0,
                         2)});
  }

  std::printf("\nE8(c): singleflight — N concurrent identical cold misses\n"
              "(engine result cache on; executions counts real engine "
              "runs)\n\n");
  bench::PrintRow({"clients", "executions", "coalesced", "hits", "wall_ms"});
  bench::PrintRule(5);
  for (size_t clients : {1u, 4u, 16u, 64u}) {
    core::EngineOptions options;
    options.result_cache_bytes = 8u << 20;
    std::unique_ptr<World> world = MakeWorld(options);
    const std::string& query = world->queries[0];
    std::vector<std::thread> threads;
    threads.reserve(clients);
    double start = NowMs();
    for (size_t t = 0; t < clients; ++t) {
      threads.emplace_back([&] {
        Result<core::QueryResult> result = world->engine->ExecuteText(query);
        if (!result.ok()) std::abort();
      });
    }
    for (std::thread& t : threads) t.join();
    double wall = NowMs() - start;
    materialize::CacheStats stats = world->engine->result_cache()->stats();
    bench::PrintRow({FmtInt(static_cast<int64_t>(clients)),
                     FmtInt(static_cast<int64_t>(
                         world->engine->queries_served())),
                     FmtInt(static_cast<int64_t>(stats.coalesced)),
                     FmtInt(static_cast<int64_t>(stats.hits)),
                     Fmt(wall, 2)});
  }

  std::printf("\nE8(d): hit latency vs result size — shared snapshot vs "
              "deep clone\n(clone column emulates the pre-snapshot cache, "
              "which copied on every hit)\n\n");
  bench::PrintRow({"rows", "snapshot_us", "clone_us", "speedup"});
  bench::PrintRule(4);
  VirtualClock clock;
  for (size_t rows : {64u, 256u, 1024u, 4000u}) {
    materialize::ResultCacheOptions cache_options;
    cache_options.max_bytes = 64u << 20;
    cache_options.shards = 1;
    materialize::ResultCache cache(cache_options, &clock);
    cache.Insert("q", MakeRows(rows));
    const size_t iters = 400;
    // Shared-snapshot hit: what Lookup does now.
    double start = NowMs();
    for (size_t i = 0; i < iters; ++i) {
      ConstNodePtr hit = cache.Lookup("q");
      if (hit == nullptr) return 1;
    }
    double snapshot_us = (NowMs() - start) * 1000.0 / iters;
    // Deep-clone hit: what every lookup paid before frozen snapshots.
    start = NowMs();
    for (size_t i = 0; i < iters; ++i) {
      NodePtr copy = cache.Lookup("q")->Clone();
      if (copy == nullptr) return 1;
    }
    double clone_us = (NowMs() - start) * 1000.0 / iters;
    bench::PrintRow({FmtInt(static_cast<int64_t>(rows)), Fmt(snapshot_us, 3),
                     Fmt(clone_us, 1),
                     Fmt(clone_us / std::max(snapshot_us, 1e-9), 0) + "x"});
  }

  std::printf(
      "\nShape check: hit rate climbs with capacity and skew; longer TTLs\n"
      "buy hits at the price of stale answers under churn; concurrent\n"
      "identical misses execute once; snapshot hits stay flat while clone\n"
      "cost grows with result size.\n");
  return 0;
}
