// E7 — Physical-algebra microbenchmarks and the data-model ablation (§3.1).
//
// Claims quantified:
//  (a) the physical algebra handles relational-shaped data efficiently:
//      hash join vs nested-loop crossover as cardinality grows;
//  (b) pattern matching / navigation / construction costs over trees;
//  (c) ablation A3: the "slightly more structured" typed data model vs
//      modelling everything as generic text (pure-XML strawman) — typed
//      ingestion makes joins and comparisons cheaper (no re-parsing) at a
//      small parse-time cost.
//
// Uses google-benchmark; run the binary directly for full output.

#include <benchmark/benchmark.h>

#include "algebra/construct.h"
#include "algebra/operators.h"
#include "algebra/pattern_match.h"
#include "common/rng.h"
#include "xml/parser.h"
#include "xml/path.h"
#include "xml/serializer.h"
#include "xmlql/parser.h"

namespace nimble {
namespace {

using algebra::Binding;
using algebra::MaterializedScan;
using algebra::Tuple;
using algebra::TupleSchema;

std::unique_ptr<MaterializedScan> MakeIntScan(const std::string& var,
                                              const std::string& payload_var,
                                              size_t n, uint64_t seed,
                                              uint64_t key_range) {
  Rng rng(seed);
  TupleSchema schema({var, payload_var});
  std::vector<Tuple> tuples;
  tuples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Tuple t;
    t.emplace_back(Binding{Value::Int(
        static_cast<int64_t>(rng.Uniform(key_range)))});
    t.emplace_back(Binding{Value::Int(static_cast<int64_t>(i))});
    tuples.push_back(std::move(t));
  }
  return std::make_unique<MaterializedScan>(std::move(schema),
                                            std::move(tuples));
}

void BM_HashJoin(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    algebra::HashJoin join(MakeIntScan("k", "l", n, 1, n),
                           MakeIntScan("k", "r", n, 2, n));
    auto result = join.Drain();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) * 2);
}
BENCHMARK(BM_HashJoin)->Arg(100)->Arg(1000)->Arg(10000);

void BM_NestedLoopJoin(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    // Equality expressed as a residual condition (no shared variables).
    TupleSchema joined = TupleSchema({"a", "l"}).Merge(TupleSchema({"b", "r"}));
    xmlql::Condition cond;
    cond.op = xmlql::Condition::Op::kEq;
    cond.lhs.is_variable = true;
    cond.lhs.variable = "a";
    cond.rhs.is_variable = true;
    cond.rhs.variable = "b";
    auto bc = algebra::BoundCondition::Bind(cond, joined);
    algebra::NestedLoopJoin join(MakeIntScan("a", "l", n, 1, n),
                                 MakeIntScan("b", "r", n, 2, n), {*bc});
    auto result = join.Drain();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) * 2);
}
BENCHMARK(BM_NestedLoopJoin)->Arg(100)->Arg(1000);

std::string MakeCatalogXml(size_t products) {
  Rng rng(9);
  std::string xml = "<catalog>";
  for (size_t i = 0; i < products; ++i) {
    xml += "<product sku=\"p" + std::to_string(i) + "\"><title>" +
           rng.RandomWord(12) + "</title><price>" +
           std::to_string(rng.UniformInt(1, 500)) + "." +
           std::to_string(rng.UniformInt(0, 99)) + "</price><qty>" +
           std::to_string(rng.UniformInt(0, 50)) + "</qty></product>";
  }
  return xml + "</catalog>";
}

void BM_ParseXmlTyped(benchmark::State& state) {
  std::string xml = MakeCatalogXml(static_cast<size_t>(state.range(0)));
  XmlParseOptions options;
  options.infer_types = true;
  for (auto _ : state) {
    auto doc = ParseXml(xml, options);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(xml.size()));
}
BENCHMARK(BM_ParseXmlTyped)->Arg(100)->Arg(1000);

void BM_ParseXmlUntyped(benchmark::State& state) {
  std::string xml = MakeCatalogXml(static_cast<size_t>(state.range(0)));
  XmlParseOptions options;
  options.infer_types = false;  // pure-XML strawman (ablation A3)
  for (auto _ : state) {
    auto doc = ParseXml(xml, options);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(xml.size()));
}
BENCHMARK(BM_ParseXmlUntyped)->Arg(100)->Arg(1000);

// Ablation A3 payoff side: numeric filtering over typed vs untyped trees.
// Typed trees compare ints natively; untyped trees re-coerce every value.
void FilterPrices(const NodePtr& doc, benchmark::State& state) {
  Result<Path> path = Path::Parse("product/price");
  size_t hits = 0;
  for (auto _ : state) {
    hits = 0;
    for (const Value& v : path->SelectValues(doc)) {
      Result<double> d = v.ToDouble();
      if (d.ok() && *d > 250.0) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
}

void BM_NumericFilterTyped(benchmark::State& state) {
  auto doc = ParseXml(MakeCatalogXml(2000));
  FilterPrices(*doc, state);
}
BENCHMARK(BM_NumericFilterTyped);

void BM_NumericFilterUntyped(benchmark::State& state) {
  XmlParseOptions options;
  options.infer_types = false;
  auto doc = ParseXml(MakeCatalogXml(2000), options);
  FilterPrices(*doc, state);
}
BENCHMARK(BM_NumericFilterUntyped);

void BM_PatternMatch(benchmark::State& state) {
  auto doc = ParseXml(MakeCatalogXml(static_cast<size_t>(state.range(0))));
  auto query = xmlql::ParseQuery(
      "WHERE <catalog><product sku=$s><title>$t</title><price>$p</price>"
      "</product></catalog> IN \"x:catalog\" CONSTRUCT <o>$t</o>");
  TupleSchema schema = algebra::SchemaForPattern(query->patterns[0].root);
  for (auto _ : state) {
    auto tuples = algebra::MatchPattern(query->patterns[0].root, *doc, schema);
    benchmark::DoNotOptimize(tuples);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PatternMatch)->Arg(100)->Arg(1000)->Arg(10000);

void BM_DescendantPath(benchmark::State& state) {
  auto doc = ParseXml(MakeCatalogXml(static_cast<size_t>(state.range(0))));
  Result<Path> path = Path::Parse("//price");
  for (auto _ : state) {
    auto values = path->SelectValues(*doc);
    benchmark::DoNotOptimize(values);
  }
}
BENCHMARK(BM_DescendantPath)->Arg(1000)->Arg(10000);

void BM_Construct(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto query = xmlql::ParseQuery(
      "WHERE <t><r><k>$k</k><l>$l</l></r></t> IN \"x:t\" "
      "CONSTRUCT <row id=$k><payload>$l</payload></row>");
  for (auto _ : state) {
    auto scan = MakeIntScan("k", "l", n, 1, n);
    auto doc = algebra::ConstructResult(scan.get(), *query->construct);
    benchmark::DoNotOptimize(doc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Construct)->Arg(1000)->Arg(10000);

void BM_Serialize(benchmark::State& state) {
  auto doc = ParseXml(MakeCatalogXml(static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    std::string xml = ToXml(**doc);
    benchmark::DoNotOptimize(xml);
  }
}
BENCHMARK(BM_Serialize)->Arg(1000);

}  // namespace
}  // namespace nimble

BENCHMARK_MAIN();
