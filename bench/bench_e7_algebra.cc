// E7 — Physical-algebra microbenchmarks and the data-model ablation (§3.1).
//
// Claims quantified:
//  (a) the physical algebra handles relational-shaped data efficiently:
//      hash join vs nested-loop crossover as cardinality grows;
//  (b) pattern matching / navigation / construction costs over trees;
//  (c) ablation A3: the "slightly more structured" typed data model vs
//      modelling everything as generic text (pure-XML strawman) — typed
//      ingestion makes joins and comparisons cheaper (no re-parsing) at a
//      small parse-time cost;
//  (d) vectorization: rows/sec for scan+filter, hash join and aggregation
//      across batch sizes {1, 64, 1024, 4096}, against the tuple-at-a-time
//      baseline (batch size 1 drained through the row adapter — the old
//      Volcano discipline). PASS gates: >= 2x on scan+filter and hash join
//      at batch size 1024, and the vectorized default must never fall
//      below the tuple baseline. Used as a CI smoke gate (exit 1 on FAIL).
//
// The (d) sweep runs first; the google-benchmark suites follow.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/workload.h"

#include "algebra/construct.h"
#include "algebra/operators.h"
#include "algebra/pattern_match.h"
#include "common/clock.h"
#include "common/rng.h"
#include "connector/simulated_source.h"
#include "connector/xml_connector.h"
#include "dist/cluster.h"
#include "dist/coordinator.h"
#include "dist/partition.h"
#include "metadata/catalog.h"
#include "xml/parser.h"
#include "xml/path.h"
#include "xml/serializer.h"
#include "xmlql/parser.h"

namespace nimble {
namespace {

using algebra::Binding;
using algebra::MaterializedScan;
using algebra::Tuple;
using algebra::TupleSchema;

std::unique_ptr<MaterializedScan> MakeIntScan(const std::string& var,
                                              const std::string& payload_var,
                                              size_t n, uint64_t seed,
                                              uint64_t key_range) {
  Rng rng(seed);
  TupleSchema schema({var, payload_var});
  std::vector<Tuple> tuples;
  tuples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Tuple t;
    t.emplace_back(Binding{Value::Int(
        static_cast<int64_t>(rng.Uniform(key_range)))});
    t.emplace_back(Binding{Value::Int(static_cast<int64_t>(i))});
    tuples.push_back(std::move(t));
  }
  return std::make_unique<MaterializedScan>(std::move(schema),
                                            std::move(tuples));
}

void BM_HashJoin(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    algebra::HashJoin join(MakeIntScan("k", "l", n, 1, n),
                           MakeIntScan("k", "r", n, 2, n));
    auto result = join.Drain();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) * 2);
}
BENCHMARK(BM_HashJoin)->Arg(100)->Arg(1000)->Arg(10000);

void BM_NestedLoopJoin(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    // Equality expressed as a residual condition (no shared variables).
    TupleSchema joined = TupleSchema({"a", "l"}).Merge(TupleSchema({"b", "r"}));
    xmlql::Condition cond;
    cond.op = xmlql::Condition::Op::kEq;
    cond.lhs.is_variable = true;
    cond.lhs.variable = "a";
    cond.rhs.is_variable = true;
    cond.rhs.variable = "b";
    auto bc = algebra::BoundCondition::Bind(cond, joined);
    algebra::NestedLoopJoin join(MakeIntScan("a", "l", n, 1, n),
                                 MakeIntScan("b", "r", n, 2, n), {*bc});
    auto result = join.Drain();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) * 2);
}
BENCHMARK(BM_NestedLoopJoin)->Arg(100)->Arg(1000);

std::string MakeCatalogXml(size_t products) {
  Rng rng(9);
  std::string xml = "<catalog>";
  for (size_t i = 0; i < products; ++i) {
    xml += "<product sku=\"p" + std::to_string(i) + "\"><title>" +
           rng.RandomWord(12) + "</title><price>" +
           std::to_string(rng.UniformInt(1, 500)) + "." +
           std::to_string(rng.UniformInt(0, 99)) + "</price><qty>" +
           std::to_string(rng.UniformInt(0, 50)) + "</qty></product>";
  }
  return xml + "</catalog>";
}

void BM_ParseXmlTyped(benchmark::State& state) {
  std::string xml = MakeCatalogXml(static_cast<size_t>(state.range(0)));
  XmlParseOptions options;
  options.infer_types = true;
  for (auto _ : state) {
    auto doc = ParseXml(xml, options);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(xml.size()));
}
BENCHMARK(BM_ParseXmlTyped)->Arg(100)->Arg(1000);

void BM_ParseXmlUntyped(benchmark::State& state) {
  std::string xml = MakeCatalogXml(static_cast<size_t>(state.range(0)));
  XmlParseOptions options;
  options.infer_types = false;  // pure-XML strawman (ablation A3)
  for (auto _ : state) {
    auto doc = ParseXml(xml, options);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(xml.size()));
}
BENCHMARK(BM_ParseXmlUntyped)->Arg(100)->Arg(1000);

// Ablation A3 payoff side: numeric filtering over typed vs untyped trees.
// Typed trees compare ints natively; untyped trees re-coerce every value.
void FilterPrices(const NodePtr& doc, benchmark::State& state) {
  Result<Path> path = Path::Parse("product/price");
  size_t hits = 0;
  for (auto _ : state) {
    hits = 0;
    for (const Value& v : path->SelectValues(doc)) {
      Result<double> d = v.ToDouble();
      if (d.ok() && *d > 250.0) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
}

void BM_NumericFilterTyped(benchmark::State& state) {
  auto doc = ParseXml(MakeCatalogXml(2000));
  FilterPrices(*doc, state);
}
BENCHMARK(BM_NumericFilterTyped);

void BM_NumericFilterUntyped(benchmark::State& state) {
  XmlParseOptions options;
  options.infer_types = false;
  auto doc = ParseXml(MakeCatalogXml(2000), options);
  FilterPrices(*doc, state);
}
BENCHMARK(BM_NumericFilterUntyped);

void BM_PatternMatch(benchmark::State& state) {
  auto doc = ParseXml(MakeCatalogXml(static_cast<size_t>(state.range(0))));
  auto query = xmlql::ParseQuery(
      "WHERE <catalog><product sku=$s><title>$t</title><price>$p</price>"
      "</product></catalog> IN \"x:catalog\" CONSTRUCT <o>$t</o>");
  TupleSchema schema = algebra::SchemaForPattern(query->patterns[0].root);
  for (auto _ : state) {
    auto tuples = algebra::MatchPattern(query->patterns[0].root, *doc, schema);
    benchmark::DoNotOptimize(tuples);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PatternMatch)->Arg(100)->Arg(1000)->Arg(10000);

void BM_DescendantPath(benchmark::State& state) {
  auto doc = ParseXml(MakeCatalogXml(static_cast<size_t>(state.range(0))));
  Result<Path> path = Path::Parse("//price");
  for (auto _ : state) {
    auto values = path->SelectValues(*doc);
    benchmark::DoNotOptimize(values);
  }
}
BENCHMARK(BM_DescendantPath)->Arg(1000)->Arg(10000);

void BM_Construct(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto query = xmlql::ParseQuery(
      "WHERE <t><r><k>$k</k><l>$l</l></r></t> IN \"x:t\" "
      "CONSTRUCT <row id=$k><payload>$l</payload></row>");
  for (auto _ : state) {
    auto scan = MakeIntScan("k", "l", n, 1, n);
    auto doc = algebra::ConstructResult(scan.get(), *query->construct);
    benchmark::DoNotOptimize(doc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Construct)->Arg(1000)->Arg(10000);

void BM_Serialize(benchmark::State& state) {
  auto doc = ParseXml(MakeCatalogXml(static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    std::string xml = ToXml(**doc);
    benchmark::DoNotOptimize(xml);
  }
}
BENCHMARK(BM_Serialize)->Arg(1000);

// ---- E7(d): batch-size sweep over the vectorized operators ----------------

constexpr size_t kSweepSizes[] = {1, 64, 1024, 4096};

/// One sweep workload: a plan factory plus how many input rows one drain
/// consumes (the rows/sec numerator).
struct SweepCase {
  const char* name;
  size_t input_rows;
  std::unique_ptr<algebra::Operator> (*make)();
};

constexpr size_t kScanRows = 200000;
constexpr size_t kJoinRows = 50000;
constexpr size_t kAggRows = 200000;

std::unique_ptr<algebra::Operator> MakeScanFilter() {
  auto scan = MakeIntScan("k", "l", kScanRows, 1, kScanRows);
  xmlql::Condition cond;
  cond.op = xmlql::Condition::Op::kLt;
  cond.lhs.is_variable = true;
  cond.lhs.variable = "k";
  cond.rhs.literal = Value::Int(static_cast<int64_t>(kScanRows / 2));
  auto bc = algebra::BoundCondition::Bind(cond, scan->schema());
  return std::make_unique<algebra::Filter>(
      std::move(scan), std::vector<algebra::BoundCondition>{*bc});
}

std::unique_ptr<algebra::Operator> MakeJoinPlan() {
  return std::make_unique<algebra::HashJoin>(
      MakeIntScan("k", "l", kJoinRows, 1, kJoinRows),
      MakeIntScan("k", "r", kJoinRows, 2, kJoinRows));
}

std::unique_ptr<algebra::Operator> MakeAggPlan() {
  return std::make_unique<algebra::HashAggregate>(
      MakeIntScan("k", "l", kAggRows, 1, 16),
      std::vector<std::string>{"k"},
      std::vector<algebra::HashAggregate::Spec>{
          {algebra::HashAggregate::Fn::kCount, "", "n"},
          {algebra::HashAggregate::Fn::kSum, "l", "total"}});
}

constexpr SweepCase kSweepCases[] = {
    {"scan+filter", kScanRows, MakeScanFilter},
    {"hash_join", kJoinRows * 2, MakeJoinPlan},
    {"aggregate", kAggRows, MakeAggPlan},
};

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Drains one fresh plan; row_adapter selects Next() (the tuple-at-a-time
/// consumer) over NextBatch(). Returns elapsed milliseconds, best of 3.
double TimeDrain(const SweepCase& sweep, size_t batch_size,
                 bool row_adapter) {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    std::unique_ptr<algebra::Operator> plan = sweep.make();
    plan->SetBatchSize(batch_size);
    double start = NowMs();
    if (plan->Open().ok()) {
      if (row_adapter) {
        while (true) {
          auto tuple = plan->Next();
          if (!tuple.ok() || !tuple->has_value()) break;
          benchmark::DoNotOptimize(*tuple);
        }
      } else {
        while (true) {
          auto batch = plan->NextBatch();
          if (!batch.ok() || !batch->has_value()) break;
          benchmark::DoNotOptimize(*batch);
        }
      }
    }
    plan->Close();
    best = std::min(best, NowMs() - start);
  }
  return best;
}

double RowsPerSec(size_t rows, double ms) {
  return static_cast<double>(rows) / std::max(ms, 1e-6) * 1000.0;
}

/// Runs the sweep, prints the table, and evaluates the PASS gates.
/// Returns false on any gate failure.
bool RunBatchSweep() {
  std::printf("E7(d): vectorized batch execution — rows/sec by batch size\n"
              "(baseline = batch size 1 drained row-at-a-time through the "
              "Next() adapter)\n\n");
  bench::PrintRow({"workload", "batch", "rows/sec", "vs baseline"});
  bench::PrintRule(4);
  bool pass = true;
  for (const SweepCase& sweep : kSweepCases) {
    const double baseline_ms = TimeDrain(sweep, 1, /*row_adapter=*/true);
    const double baseline_rps = RowsPerSec(sweep.input_rows, baseline_ms);
    bench::PrintRow({sweep.name, "1 (rows)",
                     bench::FmtInt(static_cast<int64_t>(baseline_rps)),
                     "1.0x"});
    double speedup_at_default = 0.0;
    for (size_t batch_size : kSweepSizes) {
      const double ms = TimeDrain(sweep, batch_size, /*row_adapter=*/false);
      const double rps = RowsPerSec(sweep.input_rows, ms);
      const double speedup = rps / std::max(baseline_rps, 1e-9);
      if (batch_size == 1024) speedup_at_default = speedup;
      bench::PrintRow({sweep.name, bench::FmtInt(static_cast<int64_t>(
                                       batch_size)),
                       bench::FmtInt(static_cast<int64_t>(rps)),
                       bench::Fmt(speedup, 1) + "x"});
    }
    bench::PrintRule(4);
    // Gates: the default batch size must beat tuple-at-a-time by >= 2x on
    // the scan-shaped and join-shaped workloads, and must never regress
    // below the baseline anywhere.
    const bool needs_2x = std::string(sweep.name) != "aggregate";
    const double floor = needs_2x ? 2.0 : 1.0;
    const bool ok = speedup_at_default >= floor;
    std::printf("%s at batch 1024: %.1fx %s\n\n", sweep.name,
                speedup_at_default,
                ok ? (needs_2x ? "(PASS: >= 2x)" : "(PASS: >= baseline)")
                   : (needs_2x ? "(FAIL: expected >= 2x)"
                               : "(FAIL: regressed below baseline)"));
    pass = pass && ok;
  }
  return pass;
}

// ---- E7(e): scatter-gather speedup and straggler gates --------------------

// Sized so the simulated wire cost dominates even on a single-core runner:
// the mediator burns ~25us of CPU per row on this workload and the shard
// CPU work cannot overlap itself on one core, so the per-row wire cost
// must be a healthy multiple of that for the 4-way sleep overlap (the
// effect scatter-gather exists to buy) to clear the 2.5x gate.
constexpr size_t kShardRows = 20000;
constexpr int64_t kPerRowLatencyMicros = 150;  // "remote" wire cost per row.

std::string MakeShardRowsXml() {
  std::string xml = "<rows>";
  xml.reserve(kShardRows * 40);
  for (size_t i = 0; i < kShardRows; ++i) {
    xml += "<r><k>" + std::to_string(i % 64) + "</k><v>" +
           std::to_string(i % 1000) + "</v></r>";
  }
  return xml + "</rows>";
}

struct ScatterDeployment {
  std::unique_ptr<metadata::Catalog> catalog;
  std::unique_ptr<dist::ShardCluster> cluster;
  std::unique_ptr<dist::Coordinator> coordinator;
};

/// Builds a cluster whose shards each pay a simulated per-row wire cost on
/// a RealClock, so shard fetches genuinely overlap — the wall-clock effect
/// scatter-gather exists to exploit. `straggler_micros` additionally gives
/// the LAST shard a fixed per-request latency (the straggler gate).
ScatterDeployment MakeScatterDeployment(size_t shards, Clock* clock,
                                        int64_t straggler_micros,
                                        dist::DistOptions dist_options) {
  ScatterDeployment d;
  auto src = std::make_unique<connector::XmlConnector>("src");
  if (!src->PutDocumentText("rows", MakeShardRowsXml()).ok()) return d;
  d.catalog = std::make_unique<metadata::Catalog>();
  if (!d.catalog->RegisterSource(std::move(src)).ok()) return d;

  dist::ShardClusterOptions cluster_options;
  cluster_options.num_shards = shards;
  // One owned worker thread per shard engine: shard subplans run on
  // genuinely distinct threads even when the process shares one pool.
  cluster_options.engine_options.worker_threads = 1;
  cluster_options.wrap_connector =
      [clock, shards, straggler_micros](
          size_t shard, std::unique_ptr<connector::Connector> inner)
      -> std::unique_ptr<connector::Connector> {
    connector::SimulationConfig config;
    config.per_row_latency_micros = kPerRowLatencyMicros;
    if (straggler_micros > 0 && shard == shards - 1) {
      config.fixed_latency_micros = straggler_micros;
    }
    return std::make_unique<connector::SimulatedSource>(std::move(inner),
                                                        config, clock);
  };
  d.cluster =
      std::make_unique<dist::ShardCluster>(d.catalog.get(), cluster_options);
  dist::PartitionSpec spec;
  spec.source = "src";
  spec.collection = "rows";
  spec.partition_key = "v";  // groups by $k span shards: combine is real work
  spec.kind = metadata::FragmentMap::Kind::kHash;
  if (!d.cluster->Partition(spec).ok() || !d.cluster->Init().ok()) return d;
  d.coordinator =
      std::make_unique<dist::Coordinator>(d.cluster.get(), dist_options);
  return d;
}

constexpr const char* kScatterQuery =
    "WHERE <rows><r><k>$k</k><v>$v</v></r></rows> IN \"src:rows\" "
    "CONSTRUCT <g><k>$k</k><n>count($v)</n><s>sum($v)</s></g> "
    "GROUP BY $k ORDER BY $k";

/// PASS gates: (1) 4 shards sustain >= 2.5x the single-shard rows/sec on a
/// large scan+aggregate with byte-identical results; (2) with one shard
/// stalled far past the straggler budget, a kPartial query returns an
/// incomplete answer within the budget's order of magnitude instead of
/// waiting the stall out.
bool RunScatterGatherGate() {
  std::printf("E7(e): scatter-gather distributed execution — %zu-row "
              "scan+aggregate, %lldus/row simulated wire cost\n\n",
              kShardRows, static_cast<long long>(kPerRowLatencyMicros));
  RealClock clock;
  bool pass = true;

  bench::PrintRow({"shards", "best ms", "rows/sec"});
  bench::PrintRule(3);
  double rps[2] = {0.0, 0.0};
  std::string results[2];
  const size_t shard_counts[2] = {1, 4};
  for (size_t arm = 0; arm < 2; ++arm) {
    ScatterDeployment d =
        MakeScatterDeployment(shard_counts[arm], &clock,
                              /*straggler_micros=*/0, dist::DistOptions{});
    if (d.coordinator == nullptr) {
      std::printf("deployment setup failed\n");
      return false;
    }
    double best_ms = 1e300;
    for (int rep = 0; rep < 2; ++rep) {
      double start = NowMs();
      auto result = d.coordinator->ExecuteText(kScatterQuery);
      double ms = NowMs() - start;
      if (!result.ok()) {
        std::printf("query failed: %s\n", result.status().ToString().c_str());
        return false;
      }
      results[arm] = ToXml(*result->document);
      best_ms = std::min(best_ms, ms);
    }
    rps[arm] = RowsPerSec(kShardRows, best_ms);
    bench::PrintRow({bench::FmtInt(static_cast<int64_t>(shard_counts[arm])),
                     bench::Fmt(best_ms, 1),
                     bench::FmtInt(static_cast<int64_t>(rps[arm]))});
  }
  bench::PrintRule(3);
  const double speedup = rps[1] / std::max(rps[0], 1e-9);
  const bool identical = results[0] == results[1];
  const bool fast_enough = speedup >= 2.5;
  std::printf("4-shard speedup: %.1fx %s, results %s\n\n", speedup,
              fast_enough ? "(PASS: >= 2.5x)" : "(FAIL: expected >= 2.5x)",
              identical ? "identical (PASS)" : "DIVERGE (FAIL)");
  pass = pass && fast_enough && identical;

  // Straggler gate: shard 3 stalls an extra 6s per request; the budget is
  // 2s — enough for the three healthy shards (~0.75s wire + CPU) to
  // answer, far less than waiting the stalled shard out (~6.75s).
  dist::DistOptions dist_options;
  dist_options.straggler_wait_micros = 2'000'000;
  ScatterDeployment d = MakeScatterDeployment(
      4, &clock, /*straggler_micros=*/6'000'000, dist_options);
  if (d.coordinator == nullptr) {
    std::printf("straggler deployment setup failed\n");
    return false;
  }
  core::QueryOptions partial;
  partial.availability = core::AvailabilityPolicy::kPartial;
  double start = NowMs();
  auto result = d.coordinator->ExecuteText(kScatterQuery, partial);
  double ms = NowMs() - start;
  const bool answered = result.ok();
  const bool is_partial =
      answered && !result->report.completeness.complete;
  const bool in_budget = ms < 3500.0;  // 2s budget + slack, << the 6.75s stall
  std::printf("straggler run: %.1f ms, %s, %s %s\n\n", ms,
              answered ? (is_partial ? "partial result" : "complete result")
                       : result.status().ToString().c_str(),
              in_budget ? "within budget" : "BLOCKED past budget",
              answered && is_partial && in_budget ? "(PASS)" : "(FAIL)");
  pass = pass && answered && is_partial && in_budget;
  return pass;
}

}  // namespace
}  // namespace nimble

int main(int argc, char** argv) {
  if (!nimble::RunBatchSweep()) return 1;
  if (!nimble::RunScatterGatherGate()) return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
