#ifndef NIMBLE_BENCH_WORKLOAD_H_
#define NIMBLE_BENCH_WORKLOAD_H_

// Shared synthetic-workload generators and table printing for the E1–E8
// experiment harnesses. See DESIGN.md §2 for the per-experiment index and
// EXPERIMENTS.md for measured results. Everything here is deterministic
// (seeded Rng) so runs are reproducible.

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cleaning/record.h"
#include "common/rng.h"
#include "connector/relational_connector.h"
#include "connector/simulated_source.h"
#include "connector/xml_connector.h"
#include "relational/database.h"

namespace nimble {
namespace bench {

// ---- Table printing -----------------------------------------------------------

/// Prints one aligned row of cells (column width 14).
inline void PrintRow(const std::vector<std::string>& cells) {
  for (const std::string& cell : cells) {
    std::printf("%14s", cell.c_str());
  }
  std::printf("\n");
}

inline void PrintRule(size_t columns) {
  for (size_t i = 0; i < columns; ++i) std::printf("%14s", "------------");
  std::printf("\n");
}

inline std::string Fmt(double v, int decimals = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}
inline std::string FmtInt(int64_t v) { return std::to_string(v); }
inline std::string FmtPct(double fraction, int decimals = 1) {
  return Fmt(fraction * 100, decimals) + "%";
}

// ---- Relational workload --------------------------------------------------------

/// Populates `db` with a `customers` table of `n` rows. `value` is uniform
/// in [0, 1000) (for selectivity sweeps); `segment` is one of 10 city
/// names. Adds an index on `value` when `index_value` is set.
inline void FillCustomers(relational::Database* db, size_t n, uint64_t seed,
                          bool index_value) {
  Rng rng(seed);
  (void)db->Execute(
      "CREATE TABLE customers (id INT PRIMARY KEY, name TEXT, city TEXT, "
      "value INT)");
  static const char* kCities[] = {"seattle", "portland", "boise",
                                  "spokane",  "tacoma",   "eugene",
                                  "bend",     "salem",    "yakima",
                                  "olympia"};
  relational::Table* table = db->GetTable("customers");
  for (size_t i = 0; i < n; ++i) {
    relational::Row row = {
        Value::Int(static_cast<int64_t>(i)),
        Value::String("cust_" + rng.RandomWord(8)),
        Value::String(kCities[rng.Uniform(10)]),
        Value::Int(rng.UniformInt(0, 999)),
    };
    Status insert = table->Insert(std::move(row));
    (void)insert;
  }
  if (index_value) {
    Status idx = table->CreateIndex("idx_value", "value");
    (void)idx;
  }
}

/// Wraps a freshly-filled customer database in a simulated remote source
/// named `source_name`. The Database is owned by the returned holder.
struct RemoteRelationalSource {
  std::unique_ptr<relational::Database> db;
  connector::SimulatedSource* sim = nullptr;  // owned by the connector below
  std::unique_ptr<connector::Connector> connector;
};

inline RemoteRelationalSource MakeRemoteCustomers(
    const std::string& source_name, size_t rows, uint64_t seed,
    connector::SimulationConfig config, Clock* clock, bool index_value) {
  RemoteRelationalSource out;
  out.db = std::make_unique<relational::Database>(source_name);
  FillCustomers(out.db.get(), rows, seed, index_value);
  auto inner = std::make_unique<connector::RelationalConnector>(source_name,
                                                                out.db.get());
  auto sim = std::make_unique<connector::SimulatedSource>(std::move(inner),
                                                          config, clock);
  out.sim = sim.get();
  out.connector = std::move(sim);
  return out;
}

// ---- Dirty-customer workload (E4) -------------------------------------------------

/// A dirty record plus its ground-truth entity id.
struct DirtyRecord {
  cleaning::KeyedRecord record;
  size_t entity;  ///< records with the same entity are true duplicates.
};

/// Generates `n` records over ~n*(1-dup_fraction) distinct entities; a
/// dup_fraction share are *corrupted copies* of earlier records (typos,
/// "Last, First" flips, dropped fields) — the §3.2 "data anomalies".
inline std::vector<DirtyRecord> MakeDirtyCustomers(size_t n,
                                                   double dup_fraction,
                                                   uint64_t seed) {
  Rng rng(seed);
  static const char* kFirst[] = {"ada",  "bob",  "cleo", "dan",  "eve",
                                 "finn", "gwen", "hugo", "iris", "jack"};
  static const char* kLast[] = {"lovelace", "barker", "patra",  "druff",
                                "adams",    "murphy", "nguyen", "ortiz",
                                "petrov",   "quincy"};
  static const char* kCity[] = {"seattle", "portland", "boise", "spokane"};

  std::vector<DirtyRecord> out;
  out.reserve(n);
  size_t next_entity = 0;
  auto corrupt = [&rng](std::string s) {
    if (s.size() > 3 && rng.Bernoulli(0.7)) {
      size_t pos = 1 + rng.Uniform(s.size() - 2);
      if (rng.Bernoulli(0.5)) {
        s.erase(pos, 1);  // drop a letter
      } else {
        std::swap(s[pos], s[pos - 1]);  // transpose
      }
    }
    return s;
  };

  for (size_t i = 0; i < n; ++i) {
    bool duplicate = !out.empty() && rng.Bernoulli(dup_fraction);
    DirtyRecord dr;
    if (duplicate) {
      const DirtyRecord& base = out[rng.Uniform(out.size())];
      dr.entity = base.entity;
      dr.record.fields = base.record.fields;
      // Corrupt the copy.
      std::string name = dr.record.fields["name"].ToString();
      if (rng.Bernoulli(0.4)) {
        // Flip to "Last, First".
        size_t space = name.find(' ');
        if (space != std::string::npos) {
          name = name.substr(space + 1) + ", " + name.substr(0, space);
        }
      } else {
        name = corrupt(name);
      }
      dr.record.fields["name"] = Value::String(name);
      if (rng.Bernoulli(0.2)) dr.record.fields.erase("city");
    } else {
      dr.entity = next_entity++;
      std::string name = std::string(kFirst[rng.Uniform(10)]) + " " +
                         kLast[rng.Uniform(10)] + " " + rng.RandomWord(4);
      dr.record.fields["name"] = Value::String(name);
      dr.record.fields["city"] = Value::String(kCity[rng.Uniform(4)]);
      dr.record.fields["value"] = Value::Int(rng.UniformInt(0, 99));
    }
    dr.record.id = "rec#" + std::to_string(i);
    out.push_back(std::move(dr));
  }
  return out;
}

/// Pairwise precision/recall of `clusters` against the ground truth in
/// `records`: a predicted pair is correct iff both members share an entity.
struct PairMetrics {
  double precision = 1.0;
  double recall = 1.0;
  size_t true_pairs = 0;
  size_t predicted_pairs = 0;
  size_t correct_pairs = 0;
};

inline PairMetrics ScoreClusters(
    const std::vector<DirtyRecord>& records,
    const std::vector<std::vector<size_t>>& clusters) {
  PairMetrics m;
  // True pairs.
  std::map<size_t, size_t> entity_counts;
  for (const DirtyRecord& dr : records) ++entity_counts[dr.entity];
  for (const auto& [entity, count] : entity_counts) {
    m.true_pairs += count * (count - 1) / 2;
  }
  // Predicted pairs + correctness.
  for (const std::vector<size_t>& cluster : clusters) {
    for (size_t i = 0; i < cluster.size(); ++i) {
      for (size_t j = i + 1; j < cluster.size(); ++j) {
        ++m.predicted_pairs;
        if (records[cluster[i]].entity == records[cluster[j]].entity) {
          ++m.correct_pairs;
        }
      }
    }
  }
  m.precision = m.predicted_pairs == 0
                    ? 1.0
                    : static_cast<double>(m.correct_pairs) /
                          static_cast<double>(m.predicted_pairs);
  m.recall = m.true_pairs == 0 ? 1.0
                               : static_cast<double>(m.correct_pairs) /
                                     static_cast<double>(m.true_pairs);
  return m;
}

}  // namespace bench
}  // namespace nimble

#endif  // NIMBLE_BENCH_WORKLOAD_H_
