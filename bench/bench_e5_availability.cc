// E5 — Source availability and partial results (§3.4).
//
// Claim quantified: "there may be so many data sources that the
// probability that they are all available simultaneously is nearly zero";
// the system should return partial results with completeness annotations
// instead of failing.
//
// Setup: N XML sources each up with probability p per query; a UNION
// program touches all N. Policies:
//   ALL-OR-NOTHING — fail-fast (the strawman the paper rejects).
//   PARTIAL        — §3.4 behaviour: skip dead branches, annotate.
//
// Expected shape: fail-fast success rate ≈ p^N and collapses with N;
// PARTIAL answers ~100% of queries with average completeness ≈ p.

#include "bench/workload.h"
#include "core/engine.h"
#include "metadata/catalog.h"

using namespace nimble;
using bench::Fmt;
using bench::FmtInt;
using bench::FmtPct;

namespace {

constexpr int kTrials = 400;

struct Outcome {
  double success_rate = 0;      ///< fraction of queries that returned a doc.
  double mean_completeness = 0; ///< branches answered / N over successes.
};

Outcome RunTrials(size_t n_sources, double availability, bool partial) {
  VirtualClock clock;
  metadata::Catalog catalog;
  std::string query;
  for (size_t s = 0; s < n_sources; ++s) {
    std::string name = "src" + std::to_string(s);
    auto inner = std::make_unique<connector::XmlConnector>(name);
    (void)inner->PutDocumentText(
        "data", "<data><r><v>" + std::to_string(s) + "</v></r></data>");
    connector::SimulationConfig config;
    config.availability = availability;
    config.seed = 1000 + s;
    (void)catalog.RegisterSource(std::make_unique<connector::SimulatedSource>(
        std::move(inner), config, &clock));
    if (s > 0) query += " UNION ";
    query += "WHERE <data><r><v>$v" + std::to_string(s) + "</v></r></data> IN \"" +
             name + ":data\" CONSTRUCT <out>$v" + std::to_string(s) + "</out>";
  }
  core::IntegrationEngine engine(&catalog);
  core::QueryOptions options;
  options.availability = partial ? core::AvailabilityPolicy::kPartial
                                 : core::AvailabilityPolicy::kFailFast;

  Outcome outcome;
  int successes = 0;
  double completeness_sum = 0;
  for (int t = 0; t < kTrials; ++t) {
    Result<core::QueryResult> result = engine.ExecuteText(query, options);
    if (!result.ok()) continue;
    ++successes;
    completeness_sum +=
        static_cast<double>(result->report.result_count) /
        static_cast<double>(n_sources);
  }
  outcome.success_rate = static_cast<double>(successes) / kTrials;
  outcome.mean_completeness =
      successes == 0 ? 0 : completeness_sum / successes;
  return outcome;
}

}  // namespace

int main() {
  std::printf("E5: partial results vs all-or-nothing under source outages\n");
  std::printf("(%d trials per cell; per-query Bernoulli availability)\n\n",
              kTrials);
  bench::PrintRow({"p(up)", "sources", "mode", "success", "completeness",
                   "p^N (theory)"});
  bench::PrintRule(6);
  for (double p : {0.90, 0.95, 0.99}) {
    for (size_t n : {1u, 2u, 4u, 8u, 16u, 32u}) {
      double theory = 1;
      for (size_t i = 0; i < n; ++i) theory *= p;
      Outcome strict = RunTrials(n, p, /*partial=*/false);
      Outcome partial = RunTrials(n, p, /*partial=*/true);
      bench::PrintRow({Fmt(p, 2), FmtInt(static_cast<int64_t>(n)),
                       "FAIL-FAST", FmtPct(strict.success_rate),
                       FmtPct(strict.mean_completeness), FmtPct(theory)});
      bench::PrintRow({Fmt(p, 2), FmtInt(static_cast<int64_t>(n)), "PARTIAL",
                       FmtPct(partial.success_rate),
                       FmtPct(partial.mean_completeness), ""});
    }
    bench::PrintRule(6);
  }
  std::printf(
      "\nShape check: ALL-OR-NOTHING success tracks p^N and collapses with\n"
      "fleet size; PARTIAL answers every query at ~p average completeness.\n");
  return 0;
}
