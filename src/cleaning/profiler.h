#ifndef NIMBLE_CLEANING_PROFILER_H_
#define NIMBLE_CLEANING_PROFILER_H_

#include <map>
#include <string>
#include <vector>

#include "cleaning/record.h"

namespace nimble {
namespace cleaning {

/// Profile of one field across a record batch.
struct FieldProfile {
  std::string field;
  size_t present = 0;   ///< non-null occurrences.
  size_t nulls = 0;     ///< records lacking the field or holding null.
  size_t distinct = 0;
  /// Type histogram (type name → count) over present values.
  std::map<std::string, size_t> type_counts;
  /// Most frequent values (value text → count), descending, top 5.
  std::vector<std::pair<std::string, size_t>> top_values;
  double min_length = 0, max_length = 0, mean_length = 0;

  // ---- Anomaly flags (§3.2 "data anomalies") -------------------------------
  bool mixed_types = false;  ///< >1 scalar type observed.
  /// Values that look like legacy structured data hiding in text fields
  /// ("representational inadequacy" / "legacy data encoded in text
  /// fields"): KEY=VALUE pairs, CODE-1234 identifiers, embedded
  /// separators like '|' or ';'.
  size_t suspected_encoded_values = 0;
  /// Values whose only difference from a more frequent value is case or
  /// surrounding whitespace — prime normalization candidates.
  size_t near_duplicate_values = 0;

  double NullRate() const {
    size_t total = present + nulls;
    return total == 0 ? 0 : static_cast<double>(nulls) / total;
  }
};

/// Batch profile: one FieldProfile per field (union over records).
struct BatchProfile {
  size_t record_count = 0;
  std::vector<FieldProfile> fields;

  const FieldProfile* field(const std::string& name) const;
  /// Human-readable report, one block per field with anomaly callouts.
  std::string ToText() const;
};

/// The interactive "datamining phase" helper (§3.2): profiles a record
/// batch so an analyst can find anomalies, candidate matching keys and
/// legacy encodings before authoring a cleaning flow.
BatchProfile ProfileRecords(const std::vector<KeyedRecord>& records);

/// Heuristic: does `text` look like structured data stuffed into a text
/// field? Exposed for tests.
bool LooksEncoded(const std::string& text);

}  // namespace cleaning
}  // namespace nimble

#endif  // NIMBLE_CLEANING_PROFILER_H_
