#ifndef NIMBLE_CLEANING_RECORD_H_
#define NIMBLE_CLEANING_RECORD_H_

#include <map>
#include <string>
#include <vector>

#include "xml/node.h"
#include "xml/value.h"

namespace nimble {
namespace cleaning {

/// A flat record under cleaning: field name → value.
using Record = std::map<std::string, Value>;

/// A record with a stable identity (source-qualified key), the unit the
/// concordance database and lineage log refer to.
struct KeyedRecord {
  std::string id;
  Record fields;
};

/// Converts an XML record element (`<row><field>v</field>…</row>`) into a
/// Record; nested elements flatten via their scalar value, attributes are
/// included as fields. Used for *dynamic* cleaning of query results —
/// cleaning applied on the way out of the integration engine rather than
/// at warehouse-load time (§3.2: "at least some of the cleansing and
/// matching need to be performed dynamically").
Record RecordFromXml(const Node& element);

/// Renders a Record back to an XML element named `tag` (fields in map
/// order).
NodePtr RecordToXml(const Record& record, const std::string& tag);

}  // namespace cleaning
}  // namespace nimble

#endif  // NIMBLE_CLEANING_RECORD_H_
