#include "cleaning/concordance.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace nimble {
namespace cleaning {

std::optional<ConcordanceEntry> ConcordanceDatabase::Lookup(
    const std::string& id_a, const std::string& id_b) const {
  auto it = entries_.find(Key(id_a, id_b));
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void ConcordanceDatabase::RecordAutomatic(const std::string& id_a,
                                          const std::string& id_b,
                                          MatchDecision decision,
                                          double score) {
  auto key = Key(id_a, id_b);
  auto it = entries_.find(key);
  // Human decisions are never overwritten by automatic ones.
  if (it != entries_.end() && it->second.source == DecisionSource::kHuman) {
    return;
  }
  entries_[key] = ConcordanceEntry{decision, DecisionSource::kAutomatic,
                                   score};
}

Status ConcordanceDatabase::RecordHuman(const std::string& id_a,
                                        const std::string& id_b,
                                        bool is_match) {
  auto key = Key(id_a, id_b);
  entries_[key] = ConcordanceEntry{
      is_match ? MatchDecision::kMatch : MatchDecision::kNonMatch,
      DecisionSource::kHuman, is_match ? 1.0 : 0.0};
  // Clear any matching queued exception.
  exceptions_.erase(
      std::remove_if(exceptions_.begin(), exceptions_.end(),
                     [&](const auto& e) { return e.first == key; }),
      exceptions_.end());
  return Status::OK();
}

void ConcordanceDatabase::QueueException(const std::string& id_a,
                                         const std::string& id_b,
                                         double score) {
  auto key = Key(id_a, id_b);
  for (const auto& [existing, existing_score] : exceptions_) {
    if (existing == key) return;  // already queued
  }
  exceptions_.emplace_back(key, score);
}

std::vector<std::pair<std::string, std::string>>
ConcordanceDatabase::PendingExceptions() const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(exceptions_.size());
  for (const auto& [key, score] : exceptions_) out.push_back(key);
  return out;
}

std::string ConcordanceDatabase::Serialize() const {
  // Format: "E\tid_a\tid_b\tdecision\tsource\tscore" per entry,
  //         "X\tid_a\tid_b\tscore" per pending exception.
  std::string out;
  for (const auto& [key, entry] : entries_) {
    out += "E\t" + key.first + "\t" + key.second + "\t" +
           std::to_string(static_cast<int>(entry.decision)) + "\t" +
           std::to_string(static_cast<int>(entry.source)) + "\t" +
           std::to_string(entry.score) + "\n";
  }
  for (const auto& [key, score] : exceptions_) {
    out += "X\t" + key.first + "\t" + key.second + "\t" +
           std::to_string(score) + "\n";
  }
  return out;
}

Status ConcordanceDatabase::Deserialize(const std::string& data) {
  size_t line_number = 0;
  for (const std::string& line : Split(data, '\n')) {
    ++line_number;
    if (line.empty()) continue;
    std::vector<std::string> fields = Split(line, '\t');
    auto bad = [&]() {
      return Status::ParseError("bad concordance line " +
                                std::to_string(line_number));
    };
    if (fields[0] == "E") {
      if (fields.size() != 6) return bad();
      ConcordanceEntry entry;
      int decision = std::atoi(fields[3].c_str());
      int source = std::atoi(fields[4].c_str());
      if (decision < 0 || decision > 2 || source < 0 || source > 1) {
        return bad();
      }
      entry.decision = static_cast<MatchDecision>(decision);
      entry.source = static_cast<DecisionSource>(source);
      entry.score = std::strtod(fields[5].c_str(), nullptr);
      auto key = Key(fields[1], fields[2]);
      auto it = entries_.find(key);
      // Merge rule: an existing human decision yields only to another
      // human decision.
      bool existing_human = it != entries_.end() &&
                            it->second.source == DecisionSource::kHuman;
      bool incoming_human = entry.source == DecisionSource::kHuman;
      if (!existing_human || incoming_human) {
        entries_[key] = entry;
      }
    } else if (fields[0] == "X") {
      if (fields.size() != 4) return bad();
      QueueException(fields[1], fields[2],
                     std::strtod(fields[3].c_str(), nullptr));
    } else {
      return bad();
    }
  }
  return Status::OK();
}

Status ConcordanceDatabase::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  out << Serialize();
  return out.good() ? Status::OK()
                    : Status::Internal("write to '" + path + "' failed");
}

Status ConcordanceDatabase::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return Deserialize(buffer.str());
}

Result<std::pair<std::string, std::string>>
ConcordanceDatabase::ResolveNextException(bool is_match) {
  if (exceptions_.empty()) {
    return Status::NotFound("no pending exceptions");
  }
  std::pair<std::string, std::string> key = exceptions_.front().first;
  NIMBLE_RETURN_IF_ERROR(RecordHuman(key.first, key.second, is_match));
  return key;
}

}  // namespace cleaning
}  // namespace nimble
