#ifndef NIMBLE_CLEANING_NORMALIZE_H_
#define NIMBLE_CLEANING_NORMALIZE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace nimble {
namespace cleaning {

/// A string→string transform, the unit of normalization pipelines. The
/// framework is extensible (§3.2: "domain-specific and customer-provided
/// normalization and matching functions are supported") — any callable
/// can be registered.
using NormalizeFn = std::function<std::string(const std::string&)>;

/// Built-in normalizers.
std::string CollapseWhitespace(const std::string& input);
std::string StripPunctuation(const std::string& input);
std::string LowerCase(const std::string& input);

/// Expands abbreviations word-by-word using `dictionary` (lower-cased
/// keys; trailing '.' on a word is ignored when looking up).
std::string ExpandAbbreviations(
    const std::string& input,
    const std::map<std::string, std::string>& dictionary);

/// The default US-address abbreviation dictionary (st→street, ave→avenue,
/// rd→road, dr→drive, n/s/e/w→north/…, apt→apartment, …).
const std::map<std::string, std::string>& AddressAbbreviations();

/// "Last, First [Middle]" → "First [Middle] Last"; other shapes pass
/// through (after whitespace collapse).
std::string StandardizeName(const std::string& input);

/// Keeps digits only, then formats 10-digit US numbers as "NNN-NNN-NNNN";
/// 11 digits with leading 1 are reduced to 10 first; anything else
/// returns the digit string.
std::string StandardizePhone(const std::string& input);

/// A named chain of normalizers applied left to right.
class NormalizerPipeline {
 public:
  NormalizerPipeline() = default;

  /// Appends a step; returns *this for chaining.
  NormalizerPipeline& Add(std::string step_name, NormalizeFn fn);

  std::string Apply(const std::string& input) const;

  /// Step names, for the declarative-flow description (§3.2).
  std::vector<std::string> StepNames() const;

  /// Standard pipeline for person names: collapse → standardize-name.
  static NormalizerPipeline ForNames();
  /// Standard pipeline for street addresses: collapse → lower → expand
  /// abbreviations → strip punctuation.
  static NormalizerPipeline ForAddresses();
  /// Standard pipeline for phone numbers.
  static NormalizerPipeline ForPhones();

 private:
  std::vector<std::pair<std::string, NormalizeFn>> steps_;
};

}  // namespace cleaning
}  // namespace nimble

#endif  // NIMBLE_CLEANING_NORMALIZE_H_
