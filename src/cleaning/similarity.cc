#include "cleaning/similarity.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <vector>

#include "common/strings.h"

namespace nimble {
namespace cleaning {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<size_t> row(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    size_t diagonal = row[0];
    row[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t substitution = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[i];
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, substitution});
    }
  }
  return row[a.size()];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(max_len);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  size_t match_window =
      std::max(a.size(), b.size()) / 2 > 0
          ? std::max(a.size(), b.size()) / 2 - 1
          : 0;
  std::vector<bool> a_matched(a.size(), false), b_matched(b.size(), false);
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    size_t lo = i > match_window ? i - match_window : 0;
    size_t hi = std::min(b.size(), i + match_window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (!b_matched[j] && a[i] == b[j]) {
        a_matched[i] = true;
        b_matched[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;
  // Transpositions.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  double m = static_cast<double>(matches);
  return (m / static_cast<double>(a.size()) +
          m / static_cast<double>(b.size()) +
          (m - static_cast<double>(transpositions) / 2.0) / m) /
         3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  for (size_t i = 0; i < std::min({a.size(), b.size(), size_t{4}}); ++i) {
    if (a[i] != b[i]) break;
    ++prefix;
  }
  return jaro + static_cast<double>(prefix) * 0.1 * (1.0 - jaro);
}

double TokenJaccardSimilarity(std::string_view a, std::string_view b) {
  std::set<std::string> ta, tb;
  for (const std::string& t : SplitWhitespace(a)) ta.insert(ToLower(t));
  for (const std::string& t : SplitWhitespace(b)) tb.insert(ToLower(t));
  if (ta.empty() && tb.empty()) return 1.0;
  size_t intersection = 0;
  for (const std::string& t : ta) {
    if (tb.count(t) > 0) ++intersection;
  }
  size_t uni = ta.size() + tb.size() - intersection;
  return uni == 0 ? 1.0
                  : static_cast<double>(intersection) /
                        static_cast<double>(uni);
}

std::string Soundex(std::string_view word) {
  auto code_of = [](char c) -> char {
    switch (std::tolower(static_cast<unsigned char>(c))) {
      case 'b':
      case 'f':
      case 'p':
      case 'v':
        return '1';
      case 'c':
      case 'g':
      case 'j':
      case 'k':
      case 'q':
      case 's':
      case 'x':
      case 'z':
        return '2';
      case 'd':
      case 't':
        return '3';
      case 'l':
        return '4';
      case 'm':
      case 'n':
        return '5';
      case 'r':
        return '6';
      default:
        return '0';  // vowels, h, w, y and non-letters
    }
  };
  size_t start = 0;
  while (start < word.size() &&
         !std::isalpha(static_cast<unsigned char>(word[start]))) {
    ++start;
  }
  if (start == word.size()) return "0000";
  std::string out(1, static_cast<char>(std::toupper(
                         static_cast<unsigned char>(word[start]))));
  char last_code = code_of(word[start]);
  for (size_t i = start + 1; i < word.size() && out.size() < 4; ++i) {
    char c = word[i];
    if (!std::isalpha(static_cast<unsigned char>(c))) continue;
    char code = code_of(c);
    char lower = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (lower == 'h' || lower == 'w') continue;  // h/w do not break runs
    if (code != '0' && code != last_code) out.push_back(code);
    last_code = code;
  }
  out.resize(4, '0');
  return out;
}

}  // namespace cleaning
}  // namespace nimble
