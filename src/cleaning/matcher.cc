#include "cleaning/matcher.h"

#include <cassert>

namespace nimble {
namespace cleaning {

const char* MatchDecisionName(MatchDecision decision) {
  switch (decision) {
    case MatchDecision::kNonMatch:
      return "non-match";
    case MatchDecision::kPossible:
      return "possible";
    case MatchDecision::kMatch:
      return "match";
  }
  return "?";
}

RecordMatcher::RecordMatcher(std::vector<MatchRule> rules,
                             double lower_threshold, double upper_threshold)
    : rules_(std::move(rules)),
      lower_threshold_(lower_threshold),
      upper_threshold_(upper_threshold) {
  assert(lower_threshold_ <= upper_threshold_);
  assert(!rules_.empty());
}

double RecordMatcher::Score(const Record& a, const Record& b) const {
  ++comparisons_;
  double total_weight = 0;
  double total = 0;
  for (const MatchRule& rule : rules_) {
    total_weight += rule.weight;
    auto ita = a.find(rule.field);
    auto itb = b.find(rule.field);
    bool missing_a = ita == a.end() || ita->second.is_null();
    bool missing_b = itb == b.end() || itb->second.is_null();
    if (missing_a || missing_b) {
      total += rule.weight * rule.missing_score;
      continue;
    }
    total += rule.weight *
             rule.similarity(ita->second.ToString(), itb->second.ToString());
  }
  return total_weight == 0 ? 0 : total / total_weight;
}

MatchDecision RecordMatcher::DecideFromScore(double score) const {
  if (score >= upper_threshold_) return MatchDecision::kMatch;
  if (score < lower_threshold_) return MatchDecision::kNonMatch;
  return MatchDecision::kPossible;
}

MatchDecision RecordMatcher::Decide(const Record& a, const Record& b) const {
  return DecideFromScore(Score(a, b));
}

}  // namespace cleaning
}  // namespace nimble
