#include "cleaning/merge_purge.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/strings.h"

namespace nimble {
namespace cleaning {

UnionFind::UnionFind(size_t n) : parent_(n), rank_(n, 0) {
  std::iota(parent_.begin(), parent_.end(), size_t{0});
}

size_t UnionFind::Find(size_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];
    x = parent_[x];
  }
  return x;
}

void UnionFind::Union(size_t a, size_t b) {
  size_t ra = Find(a), rb = Find(b);
  if (ra == rb) return;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
}

std::vector<size_t> UnionFind::Roots() {
  std::vector<size_t> roots(parent_.size());
  for (size_t i = 0; i < parent_.size(); ++i) roots[i] = Find(i);
  return roots;
}

namespace {

std::string DefaultKey(const KeyedRecord& record) {
  std::string key;
  for (const auto& [field, value] : record.fields) {
    key += ToLower(value.ToString());
    key.push_back('\x1f');
  }
  return key;
}

/// Processes one candidate pair through concordance + matcher.
void ConsiderPair(size_t i, size_t j, const std::vector<KeyedRecord>& records,
                  const RecordMatcher& matcher,
                  const MergePurgeOptions& options, UnionFind* clusters,
                  MergePurgeResult* result) {
  ++result->pairs_considered;
  const KeyedRecord& a = records[i];
  const KeyedRecord& b = records[j];

  if (options.concordance != nullptr) {
    std::optional<ConcordanceEntry> stored =
        options.concordance->Lookup(a.id, b.id);
    if (stored.has_value() &&
        stored->decision != MatchDecision::kPossible) {
      ++result->concordance_hits;
      if (stored->decision == MatchDecision::kMatch) clusters->Union(i, j);
      return;
    }
  }

  double score = matcher.Score(a.fields, b.fields);
  ++result->pairs_scored;
  MatchDecision decision = matcher.DecideFromScore(score);
  switch (decision) {
    case MatchDecision::kMatch:
      clusters->Union(i, j);
      break;
    case MatchDecision::kPossible:
      if (options.trap_exceptions && options.concordance != nullptr) {
        options.concordance->QueueException(a.id, b.id, score);
        ++result->exceptions_queued;
      }
      break;
    case MatchDecision::kNonMatch:
      break;
  }
  if (options.concordance != nullptr &&
      decision != MatchDecision::kPossible) {
    options.concordance->RecordAutomatic(a.id, b.id, decision, score);
  }
}

}  // namespace

Result<MergePurgeResult> MergePurge(const std::vector<KeyedRecord>& records,
                                    const RecordMatcher& matcher,
                                    const MergePurgeOptions& options) {
  if (options.strategy != MatchStrategy::kNaivePairwise &&
      options.window < 2) {
    return Status::InvalidArgument("sorted-neighbourhood window must be >= 2");
  }
  MergePurgeResult result;
  UnionFind clusters(records.size());

  auto run_window_pass =
      [&](const std::function<std::string(const KeyedRecord&)>& key_of) {
        std::vector<size_t> order(records.size());
        std::iota(order.begin(), order.end(), size_t{0});
        std::vector<std::string> keys(records.size());
        for (size_t i = 0; i < records.size(); ++i) {
          keys[i] = key_of(records[i]);
        }
        std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
          return keys[a] < keys[b];
        });
        for (size_t w = 0; w < order.size(); ++w) {
          for (size_t d = 1; d < options.window && w + d < order.size(); ++d) {
            // Skip pairs already clustered together by an earlier pass.
            if (clusters.Find(order[w]) == clusters.Find(order[w + d])) {
              continue;
            }
            ConsiderPair(order[w], order[w + d], records, matcher, options,
                         &clusters, &result);
          }
        }
      };

  switch (options.strategy) {
    case MatchStrategy::kNaivePairwise:
      for (size_t i = 0; i < records.size(); ++i) {
        for (size_t j = i + 1; j < records.size(); ++j) {
          ConsiderPair(i, j, records, matcher, options, &clusters, &result);
        }
      }
      break;
    case MatchStrategy::kSortedNeighbourhood:
      run_window_pass(options.key_extractor ? options.key_extractor
                                            : DefaultKey);
      break;
    case MatchStrategy::kMultiPassSortedNeighbourhood: {
      if (options.key_extractors.empty()) {
        run_window_pass(options.key_extractor ? options.key_extractor
                                              : DefaultKey);
      } else {
        for (const auto& key_of : options.key_extractors) {
          run_window_pass(key_of);
        }
      }
      break;
    }
  }

  // Gather clusters in first-appearance order.
  std::vector<size_t> roots = clusters.Roots();
  std::map<size_t, size_t> root_to_cluster;
  for (size_t i = 0; i < roots.size(); ++i) {
    auto [it, inserted] =
        root_to_cluster.try_emplace(roots[i], result.clusters.size());
    if (inserted) result.clusters.emplace_back();
    result.clusters[it->second].push_back(i);
  }
  return result;
}

Record FuseCluster(const std::vector<KeyedRecord>& records,
                   const std::vector<size_t>& cluster) {
  Record fused;
  for (size_t index : cluster) {
    for (const auto& [field, value] : records[index].fields) {
      if (value.is_null()) continue;
      auto it = fused.find(field);
      if (it == fused.end() ||
          value.ToString().size() > it->second.ToString().size()) {
        fused[field] = value;
      }
    }
  }
  return fused;
}

}  // namespace cleaning
}  // namespace nimble
