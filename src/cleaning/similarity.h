#ifndef NIMBLE_CLEANING_SIMILARITY_H_
#define NIMBLE_CLEANING_SIMILARITY_H_

#include <string>
#include <string_view>

namespace nimble {
namespace cleaning {

/// Classic edit distance (insert/delete/substitute, unit costs).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// 1 - distance/max_len, in [0,1]; 1.0 for two empty strings.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Jaro similarity in [0,1].
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler: Jaro boosted by common prefix (standard p=0.1, max 4).
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// Jaccard similarity of whitespace-token sets, case-insensitive.
double TokenJaccardSimilarity(std::string_view a, std::string_view b);

/// Standard 4-character Soundex code (e.g. "Robert" → "R163").
/// Non-alphabetic leading input yields "0000".
std::string Soundex(std::string_view word);

}  // namespace cleaning
}  // namespace nimble

#endif  // NIMBLE_CLEANING_SIMILARITY_H_
