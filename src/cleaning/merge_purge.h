#ifndef NIMBLE_CLEANING_MERGE_PURGE_H_
#define NIMBLE_CLEANING_MERGE_PURGE_H_

#include <functional>
#include <string>
#include <vector>

#include "cleaning/concordance.h"
#include "cleaning/matcher.h"
#include "cleaning/record.h"
#include "common/result.h"

namespace nimble {
namespace cleaning {

/// Disjoint-set forest used to accumulate match clusters.
class UnionFind {
 public:
  explicit UnionFind(size_t n);

  size_t Find(size_t x);
  void Union(size_t a, size_t b);

  /// Cluster representative per element (path-compressed).
  std::vector<size_t> Roots();

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> rank_;
};

/// How candidate pairs are enumerated.
enum class MatchStrategy {
  kNaivePairwise,        ///< all O(n²) pairs — the E4 baseline.
  kSortedNeighbourhood,  ///< Hernández/Stolfo merge/purge: sort by key,
                         ///< compare within a sliding window.
  kMultiPassSortedNeighbourhood,  ///< the full merge/purge method: several
                                  ///< independent sort keys, clusters
                                  ///< unioned transitively across passes —
                                  ///< recovers duplicates a single key
                                  ///< sorts far apart.
};

struct MergePurgeOptions {
  MatchStrategy strategy = MatchStrategy::kSortedNeighbourhood;
  /// Window size for sorted-neighbourhood (w >= 2).
  size_t window = 10;
  /// Sort-key extractor; default concatenates all fields lower-cased.
  std::function<std::string(const KeyedRecord&)> key_extractor;
  /// Sort keys for the multi-pass strategy (one pass per extractor);
  /// falls back to {key_extractor or default} when empty.
  std::vector<std::function<std::string(const KeyedRecord&)>> key_extractors;
  /// Optional concordance store: consulted before scoring, updated after.
  ConcordanceDatabase* concordance = nullptr;
  /// Treat kPossible as a trapped exception (queued on the concordance,
  /// not merged). When false, possibles count as non-matches silently.
  bool trap_exceptions = true;
};

/// The outcome of a merge/purge run.
struct MergePurgeResult {
  /// clusters[i] lists indexes (into the input) of records deemed the same
  /// real-world entity.
  std::vector<std::vector<size_t>> clusters;
  size_t pairs_considered = 0;   ///< candidate pairs enumerated.
  size_t pairs_scored = 0;       ///< pairs actually run through the matcher.
  size_t concordance_hits = 0;   ///< pairs short-circuited by the store.
  size_t exceptions_queued = 0;  ///< possibles handed to the human queue.
};

/// Runs duplicate detection over `records`, clustering matches.
Result<MergePurgeResult> MergePurge(const std::vector<KeyedRecord>& records,
                                    const RecordMatcher& matcher,
                                    const MergePurgeOptions& options = {});

/// Survivorship: fuses a cluster into one record — for each field, the
/// longest non-null value wins (ties: first record in cluster order).
Record FuseCluster(const std::vector<KeyedRecord>& records,
                   const std::vector<size_t>& cluster);

}  // namespace cleaning
}  // namespace nimble

#endif  // NIMBLE_CLEANING_MERGE_PURGE_H_
