#ifndef NIMBLE_CLEANING_LINEAGE_H_
#define NIMBLE_CLEANING_LINEAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "xml/value.h"

namespace nimble {
namespace cleaning {

/// One recorded data transformation (§3.2: "the system supports a data
/// lineage mechanism, recording data ancestry, human decisions, and
/// supporting roll-back whenever possible").
struct LineageEntry {
  uint64_t sequence = 0;  ///< global ordering.
  std::string record_id;
  std::string field;  ///< "*" for record-level events (e.g. merges).
  std::string step;   ///< flow step name or tool id.
  Value before;
  Value after;
};

/// Append-only lineage log with per-record retrieval and value roll-back.
class LineageLog {
 public:
  LineageLog() = default;

  void Record(const std::string& record_id, const std::string& field,
              const std::string& step, Value before, Value after);

  /// All entries for one record, in application order.
  std::vector<LineageEntry> ForRecord(const std::string& record_id) const;

  /// The value `field` of `record_id` held before any transformation.
  /// NotFound when the log has no entry for that field.
  Result<Value> OriginalValue(const std::string& record_id,
                              const std::string& field) const;

  size_t size() const { return entries_.size(); }
  const std::vector<LineageEntry>& entries() const { return entries_; }

 private:
  std::vector<LineageEntry> entries_;
  uint64_t next_sequence_ = 0;
};

}  // namespace cleaning
}  // namespace nimble

#endif  // NIMBLE_CLEANING_LINEAGE_H_
