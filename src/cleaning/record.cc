#include "cleaning/record.h"

namespace nimble {
namespace cleaning {

Record RecordFromXml(const Node& element) {
  Record record;
  for (const auto& [name, value] : element.attributes()) {
    record[name] = value;
  }
  for (const NodePtr& child : element.children()) {
    if (child->is_element()) {
      record[child->name()] = child->ScalarValue();
    }
  }
  return record;
}

NodePtr RecordToXml(const Record& record, const std::string& tag) {
  NodePtr element = Node::Element(tag);
  for (const auto& [field, value] : record) {
    element->AddScalarChild(field, value);
  }
  return element;
}

}  // namespace cleaning
}  // namespace nimble
