#include "cleaning/profiler.h"

#include <algorithm>
#include <cctype>

#include "common/strings.h"

namespace nimble {
namespace cleaning {

bool LooksEncoded(const std::string& text) {
  // KEY=VALUE or embedded record separators.
  if (text.find('=') != std::string::npos) return true;
  if (text.find('|') != std::string::npos) return true;
  if (text.find(';') != std::string::npos) return true;
  // CODE-1234 style identifiers: letters, dash, digits.
  size_t dash = text.find('-');
  if (dash != std::string::npos && dash > 0 && dash + 1 < text.size()) {
    bool letters = true;
    for (size_t i = 0; i < dash; ++i) {
      if (!std::isalpha(static_cast<unsigned char>(text[i]))) {
        letters = false;
        break;
      }
    }
    bool digits = true;
    for (size_t i = dash + 1; i < text.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(text[i]))) {
        digits = false;
        break;
      }
    }
    if (letters && digits) return true;
  }
  return false;
}

BatchProfile ProfileRecords(const std::vector<KeyedRecord>& records) {
  BatchProfile profile;
  profile.record_count = records.size();

  // field → value-text → count.
  std::map<std::string, std::map<std::string, size_t>> value_counts;
  std::map<std::string, FieldProfile> fields;

  // First pass: discover the field universe.
  for (const KeyedRecord& record : records) {
    for (const auto& [field, value] : record.fields) {
      fields.try_emplace(field).first->second.field = field;
    }
  }
  // Second pass: tally.
  for (const KeyedRecord& record : records) {
    for (auto& [field, fp] : fields) {
      auto it = record.fields.find(field);
      if (it == record.fields.end() || it->second.is_null()) {
        ++fp.nulls;
        continue;
      }
      const Value& value = it->second;
      ++fp.present;
      ++fp.type_counts[ValueTypeName(value.type())];
      std::string text = value.ToString();
      ++value_counts[field][text];
      double len = static_cast<double>(text.size());
      if (fp.present == 1) {
        fp.min_length = len;
        fp.max_length = len;
      } else {
        fp.min_length = std::min(fp.min_length, len);
        fp.max_length = std::max(fp.max_length, len);
      }
      fp.mean_length += len;
      if (value.is_string() && LooksEncoded(text)) {
        ++fp.suspected_encoded_values;
      }
    }
  }

  for (auto& [field, fp] : fields) {
    if (fp.present > 0) fp.mean_length /= static_cast<double>(fp.present);
    fp.mixed_types = fp.type_counts.size() > 1;
    const auto& counts = value_counts[field];
    fp.distinct = counts.size();
    // Top values.
    std::vector<std::pair<std::string, size_t>> ranked(counts.begin(),
                                                       counts.end());
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return a.second != b.second ? a.second > b.second : a.first < b.first;
    });
    if (ranked.size() > 5) ranked.resize(5);
    fp.top_values = std::move(ranked);
    // Near-duplicate values: canonical form (trimmed, lower-cased,
    // whitespace-collapsed) shared by >1 distinct raw value.
    std::map<std::string, size_t> canonical_forms;
    for (const auto& [text, count] : counts) {
      ++canonical_forms[ToLower(Join(SplitWhitespace(text), " "))];
    }
    for (const auto& [canon, distinct_raws] : canonical_forms) {
      if (distinct_raws > 1) fp.near_duplicate_values += distinct_raws;
    }
    profile.fields.push_back(fp);
  }
  return profile;
}

const FieldProfile* BatchProfile::field(const std::string& name) const {
  for (const FieldProfile& fp : fields) {
    if (fp.field == name) return &fp;
  }
  return nullptr;
}

std::string BatchProfile::ToText() const {
  std::string out =
      "profile of " + std::to_string(record_count) + " records\n";
  for (const FieldProfile& fp : fields) {
    out += "  " + fp.field + ": present=" + std::to_string(fp.present) +
           " nulls=" + std::to_string(fp.nulls) +
           " distinct=" + std::to_string(fp.distinct) + " types={";
    bool first = true;
    for (const auto& [type, count] : fp.type_counts) {
      if (!first) out += ",";
      out += type + ":" + std::to_string(count);
      first = false;
    }
    out += "}";
    if (fp.mixed_types) out += "  [ANOMALY: mixed types]";
    if (fp.suspected_encoded_values > 0) {
      out += "  [ANOMALY: " + std::to_string(fp.suspected_encoded_values) +
             " values look like encoded legacy data]";
    }
    if (fp.near_duplicate_values > 0) {
      out += "  [" + std::to_string(fp.near_duplicate_values) +
             " near-duplicate spellings]";
    }
    out += "\n";
    if (!fp.top_values.empty()) {
      out += "    top:";
      for (const auto& [text, count] : fp.top_values) {
        out += " '" + text + "'x" + std::to_string(count);
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace cleaning
}  // namespace nimble
