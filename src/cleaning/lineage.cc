#include "cleaning/lineage.h"

namespace nimble {
namespace cleaning {

void LineageLog::Record(const std::string& record_id, const std::string& field,
                        const std::string& step, Value before, Value after) {
  LineageEntry entry;
  entry.sequence = next_sequence_++;
  entry.record_id = record_id;
  entry.field = field;
  entry.step = step;
  entry.before = std::move(before);
  entry.after = std::move(after);
  entries_.push_back(std::move(entry));
}

std::vector<LineageEntry> LineageLog::ForRecord(
    const std::string& record_id) const {
  std::vector<LineageEntry> out;
  for (const LineageEntry& entry : entries_) {
    if (entry.record_id == record_id) out.push_back(entry);
  }
  return out;
}

Result<Value> LineageLog::OriginalValue(const std::string& record_id,
                                        const std::string& field) const {
  for (const LineageEntry& entry : entries_) {
    if (entry.record_id == record_id && entry.field == field) {
      return entry.before;  // earliest entry wins (append-only order)
    }
  }
  return Status::NotFound("no lineage for record '" + record_id + "' field '" +
                          field + "'");
}

}  // namespace cleaning
}  // namespace nimble
