#include "cleaning/normalize.h"

#include <cctype>

#include "common/strings.h"

namespace nimble {
namespace cleaning {

std::string CollapseWhitespace(const std::string& input) {
  return Join(SplitWhitespace(input), " ");
}

std::string StripPunctuation(const std::string& input) {
  std::string out;
  out.reserve(input.size());
  for (char c : input) {
    if (std::isalnum(static_cast<unsigned char>(c)) ||
        std::isspace(static_cast<unsigned char>(c))) {
      out.push_back(c);
    }
  }
  return CollapseWhitespace(out);
}

std::string LowerCase(const std::string& input) { return ToLower(input); }

std::string ExpandAbbreviations(
    const std::string& input,
    const std::map<std::string, std::string>& dictionary) {
  std::vector<std::string> words = SplitWhitespace(input);
  for (std::string& word : words) {
    std::string key = ToLower(word);
    while (!key.empty() &&
           !std::isalnum(static_cast<unsigned char>(key.back()))) {
      key.pop_back();
    }
    auto it = dictionary.find(key);
    if (it != dictionary.end()) word = it->second;
  }
  return Join(words, " ");
}

const std::map<std::string, std::string>& AddressAbbreviations() {
  static const std::map<std::string, std::string>* const kDict =
      new std::map<std::string, std::string>{
          {"st", "street"},     {"str", "street"},    {"ave", "avenue"},
          {"av", "avenue"},     {"rd", "road"},       {"dr", "drive"},
          {"blvd", "boulevard"}, {"ln", "lane"},      {"ct", "court"},
          {"pl", "place"},      {"sq", "square"},     {"hwy", "highway"},
          {"pkwy", "parkway"},  {"n", "north"},       {"s", "south"},
          {"e", "east"},        {"w", "west"},        {"ne", "northeast"},
          {"nw", "northwest"},  {"se", "southeast"},  {"sw", "southwest"},
          {"apt", "apartment"}, {"ste", "suite"},     {"fl", "floor"},
          {"bldg", "building"}, {"mt", "mount"},      {"ft", "fort"},
      };
  return *kDict;
}

std::string StandardizeName(const std::string& input) {
  std::string collapsed = CollapseWhitespace(input);
  size_t comma = collapsed.find(',');
  if (comma == std::string::npos) return collapsed;
  std::string last = Trim(collapsed.substr(0, comma));
  std::string first = Trim(collapsed.substr(comma + 1));
  if (last.empty()) return first;
  if (first.empty()) return last;
  return first + " " + last;
}

std::string StandardizePhone(const std::string& input) {
  std::string digits;
  for (char c : input) {
    if (std::isdigit(static_cast<unsigned char>(c))) digits.push_back(c);
  }
  if (digits.size() == 11 && digits[0] == '1') digits = digits.substr(1);
  if (digits.size() == 10) {
    return digits.substr(0, 3) + "-" + digits.substr(3, 3) + "-" +
           digits.substr(6);
  }
  return digits;
}

NormalizerPipeline& NormalizerPipeline::Add(std::string step_name,
                                            NormalizeFn fn) {
  steps_.emplace_back(std::move(step_name), std::move(fn));
  return *this;
}

std::string NormalizerPipeline::Apply(const std::string& input) const {
  std::string current = input;
  for (const auto& [step_name, fn] : steps_) {
    current = fn(current);
  }
  return current;
}

std::vector<std::string> NormalizerPipeline::StepNames() const {
  std::vector<std::string> names;
  names.reserve(steps_.size());
  for (const auto& [step_name, fn] : steps_) names.push_back(step_name);
  return names;
}

NormalizerPipeline NormalizerPipeline::ForNames() {
  NormalizerPipeline pipeline;
  pipeline.Add("collapse_whitespace", CollapseWhitespace)
      .Add("standardize_name", StandardizeName);
  return pipeline;
}

NormalizerPipeline NormalizerPipeline::ForAddresses() {
  NormalizerPipeline pipeline;
  pipeline.Add("collapse_whitespace", CollapseWhitespace)
      .Add("lower_case", LowerCase)
      .Add("expand_abbreviations",
           [](const std::string& s) {
             return ExpandAbbreviations(s, AddressAbbreviations());
           })
      .Add("strip_punctuation", StripPunctuation);
  return pipeline;
}

NormalizerPipeline NormalizerPipeline::ForPhones() {
  NormalizerPipeline pipeline;
  pipeline.Add("standardize_phone", StandardizePhone);
  return pipeline;
}

}  // namespace cleaning
}  // namespace nimble
