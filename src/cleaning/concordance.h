#ifndef NIMBLE_CLEANING_CONCORDANCE_H_
#define NIMBLE_CLEANING_CONCORDANCE_H_

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cleaning/matcher.h"
#include "common/result.h"

namespace nimble {
namespace cleaning {

/// Who made a match determination.
enum class DecisionSource { kAutomatic, kHuman };

/// One stored determination about a record pair.
struct ConcordanceEntry {
  MatchDecision decision = MatchDecision::kNonMatch;
  DecisionSource source = DecisionSource::kAutomatic;
  double score = 0;  ///< matcher score at determination time (if any).
};

/// The paper's concordance database (§3.2): "a separate data store that is
/// created to serve to match records from two or more different original
/// data sources". Stores per-pair determinations keyed by record ids, so
/// that "past human decisions are reapplied" and expensive matching is
/// short-circuited on later runs; ambiguous pairs queue as exceptions for
/// a human.
class ConcordanceDatabase {
 public:
  ConcordanceDatabase() = default;

  /// Looks up a stored determination (order-insensitive on the pair).
  std::optional<ConcordanceEntry> Lookup(const std::string& id_a,
                                         const std::string& id_b) const;

  /// Records an automatic determination.
  void RecordAutomatic(const std::string& id_a, const std::string& id_b,
                       MatchDecision decision, double score);

  /// Records a human determination (always wins over automatic ones).
  /// kPossible is not a valid human decision.
  Status RecordHuman(const std::string& id_a, const std::string& id_b,
                     bool is_match);

  /// Queues a pair needing human review (trapped exception).
  void QueueException(const std::string& id_a, const std::string& id_b,
                      double score);

  /// Pending exceptions, oldest first.
  std::vector<std::pair<std::string, std::string>> PendingExceptions() const;
  size_t pending_exception_count() const { return exceptions_.size(); }

  /// Resolves the oldest pending exception with a human decision; returns
  /// the pair resolved, or NotFound when the queue is empty.
  Result<std::pair<std::string, std::string>> ResolveNextException(
      bool is_match);

  size_t size() const { return entries_.size(); }

  /// Serializes every determination (one tab-separated line per pair) so
  /// the concordance survives process restarts — it is "a separate data
  /// store" (§3.2), not session state. Pending exceptions are included.
  std::string Serialize() const;

  /// Restores a store serialized by Serialize(), merging into this one
  /// (human entries in the input win over existing automatic ones).
  Status Deserialize(const std::string& data);

  /// File convenience wrappers around Serialize/Deserialize.
  Status SaveToFile(const std::string& path) const;
  Status LoadFromFile(const std::string& path);

  /// Lookup traffic counters — the E4/A2 ablation evidence (a warm
  /// concordance turns repeat matching into hits).
  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }
  void ResetCounters() {
    hits_ = 0;
    misses_ = 0;
  }

 private:
  static std::pair<std::string, std::string> Key(const std::string& a,
                                                 const std::string& b) {
    return a <= b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  std::map<std::pair<std::string, std::string>, ConcordanceEntry> entries_;
  std::vector<std::pair<std::pair<std::string, std::string>, double>>
      exceptions_;
  mutable size_t hits_ = 0;
  mutable size_t misses_ = 0;
};

}  // namespace cleaning
}  // namespace nimble

#endif  // NIMBLE_CLEANING_CONCORDANCE_H_
