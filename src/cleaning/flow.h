#ifndef NIMBLE_CLEANING_FLOW_H_
#define NIMBLE_CLEANING_FLOW_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cleaning/lineage.h"
#include "cleaning/matcher.h"
#include "cleaning/merge_purge.h"
#include "cleaning/normalize.h"
#include "cleaning/record.h"
#include "common/result.h"
#include "xml/node.h"

namespace nimble {
namespace cleaning {

/// What a flow run produced.
struct FlowOutput {
  std::vector<KeyedRecord> records;  ///< cleaned (and possibly fused).
  size_t values_normalized = 0;
  std::optional<MergePurgeResult> merge_stats;
};

/// A declarative cleaning flow (§3.2: "we use a declarative representation
/// of the flow", after Galhardas et al.): an ordered list of steps, built
/// fluently, runnable over record batches, and self-describing. Flows make
/// it "easy to add new data sources to an existing flow" — the steps are
/// data, not code.
class CleaningFlow {
 public:
  explicit CleaningFlow(std::string flow_name = "flow")
      : name_(std::move(flow_name)) {}

  /// Step: normalize one field through a pipeline.
  CleaningFlow& NormalizeField(const std::string& field,
                               NormalizerPipeline pipeline);

  /// Step: deduplicate via merge/purge and fuse each cluster to one
  /// record. At most one dedup step per flow (it terminates the pipeline).
  CleaningFlow& Deduplicate(std::shared_ptr<RecordMatcher> matcher,
                            MergePurgeOptions options = {});

  /// Runs the flow. `lineage` (optional) records every change.
  Result<FlowOutput> Run(std::vector<KeyedRecord> input,
                         LineageLog* lineage = nullptr) const;

  /// The declarative representation: one line per step.
  std::string Describe() const;

  const std::string& name() const { return name_; }

 private:
  struct NormalizeStep {
    std::string field;
    NormalizerPipeline pipeline;
  };
  struct DedupStep {
    std::shared_ptr<RecordMatcher> matcher;
    MergePurgeOptions options;
  };

  std::string name_;
  std::vector<NormalizeStep> normalize_steps_;
  std::optional<DedupStep> dedup_step_;
};

/// Dynamic cleaning of a query result: converts `root`'s child elements to
/// records (keyed "<prefix>#<index>"), runs `flow`, and returns a fresh
/// root whose children are the cleaned records (element tag preserved per
/// fused cluster's first member). This is the integration-time path —
/// source data is left untouched (§3.2: "with data integration, the source
/// data is unchanged").
Result<NodePtr> CleanXmlRecords(const Node& root, const CleaningFlow& flow,
                                const std::string& key_prefix = "rec",
                                LineageLog* lineage = nullptr);

}  // namespace cleaning
}  // namespace nimble

#endif  // NIMBLE_CLEANING_FLOW_H_
