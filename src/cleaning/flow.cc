#include "cleaning/flow.h"

#include "common/strings.h"

namespace nimble {
namespace cleaning {

CleaningFlow& CleaningFlow::NormalizeField(const std::string& field,
                                           NormalizerPipeline pipeline) {
  normalize_steps_.push_back(NormalizeStep{field, std::move(pipeline)});
  return *this;
}

CleaningFlow& CleaningFlow::Deduplicate(std::shared_ptr<RecordMatcher> matcher,
                                        MergePurgeOptions options) {
  dedup_step_ = DedupStep{std::move(matcher), std::move(options)};
  return *this;
}

Result<FlowOutput> CleaningFlow::Run(std::vector<KeyedRecord> input,
                                     LineageLog* lineage) const {
  FlowOutput output;

  // Normalization steps.
  for (const NormalizeStep& step : normalize_steps_) {
    for (KeyedRecord& record : input) {
      auto it = record.fields.find(step.field);
      if (it == record.fields.end() || it->second.is_null()) continue;
      std::string before = it->second.ToString();
      std::string after = step.pipeline.Apply(before);
      if (after != before) {
        if (lineage != nullptr) {
          lineage->Record(record.id, step.field, "normalize:" + step.field,
                          it->second, Value::String(after));
        }
        it->second = Value::String(after);
        ++output.values_normalized;
      }
    }
  }

  // Deduplication step.
  if (dedup_step_.has_value()) {
    NIMBLE_ASSIGN_OR_RETURN(
        MergePurgeResult merged,
        MergePurge(input, *dedup_step_->matcher, dedup_step_->options));
    std::vector<KeyedRecord> fused;
    fused.reserve(merged.clusters.size());
    for (const std::vector<size_t>& cluster : merged.clusters) {
      KeyedRecord out;
      out.id = input[cluster.front()].id;
      out.fields = FuseCluster(input, cluster);
      if (cluster.size() > 1 && lineage != nullptr) {
        std::string members;
        for (size_t i = 0; i < cluster.size(); ++i) {
          if (i > 0) members += ",";
          members += input[cluster[i]].id;
        }
        lineage->Record(out.id, "*", "merge", Value::String(members),
                        Value::String(out.id));
      }
      fused.push_back(std::move(out));
    }
    output.merge_stats = std::move(merged);
    output.records = std::move(fused);
  } else {
    output.records = std::move(input);
  }
  return output;
}

std::string CleaningFlow::Describe() const {
  std::string out = "flow " + name_ + ":\n";
  int step_number = 1;
  for (const NormalizeStep& step : normalize_steps_) {
    out += "  " + std::to_string(step_number++) + ". normalize(" +
           step.field + ": " + Join(step.pipeline.StepNames(), " | ") + ")\n";
  }
  if (dedup_step_.has_value()) {
    const MergePurgeOptions& options = dedup_step_->options;
    out += "  " + std::to_string(step_number++) + ". deduplicate(strategy=" +
           (options.strategy == MatchStrategy::kNaivePairwise
                ? "naive-pairwise"
                : "sorted-neighbourhood w=" + std::to_string(options.window)) +
           ", thresholds=[" +
           std::to_string(dedup_step_->matcher->lower_threshold()) + "," +
           std::to_string(dedup_step_->matcher->upper_threshold()) + "]" +
           (options.concordance != nullptr ? ", concordance=on" : "") + ")\n";
  }
  return out;
}

Result<NodePtr> CleanXmlRecords(const Node& root, const CleaningFlow& flow,
                                const std::string& key_prefix,
                                LineageLog* lineage) {
  std::vector<KeyedRecord> records;
  std::vector<std::string> tags;
  size_t index = 0;
  for (const NodePtr& child : root.children()) {
    if (!child->is_element()) continue;
    KeyedRecord record;
    record.id = key_prefix + "#" + std::to_string(index++);
    record.fields = RecordFromXml(*child);
    records.push_back(std::move(record));
    tags.push_back(child->name());
  }
  NIMBLE_ASSIGN_OR_RETURN(FlowOutput output,
                          flow.Run(std::move(records), lineage));

  NodePtr cleaned = Node::Element(root.name());
  for (const auto& [attr_name, attr_value] : root.attributes()) {
    cleaned->SetAttribute(attr_name, attr_value);
  }
  for (const KeyedRecord& record : output.records) {
    // Recover the element tag from the record id (prefix#idx).
    size_t hash = record.id.rfind('#');
    size_t original = hash == std::string::npos
                          ? 0
                          : static_cast<size_t>(std::strtoull(
                                record.id.c_str() + hash + 1, nullptr, 10));
    const std::string& tag =
        original < tags.size() ? tags[original] : "record";
    cleaned->AddChild(RecordToXml(record.fields, tag));
  }
  return cleaned;
}

}  // namespace cleaning
}  // namespace nimble
