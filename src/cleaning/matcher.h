#ifndef NIMBLE_CLEANING_MATCHER_H_
#define NIMBLE_CLEANING_MATCHER_H_

#include <functional>
#include <string>
#include <vector>

#include "cleaning/record.h"

namespace nimble {
namespace cleaning {

/// Field-level similarity: takes the two field values as strings.
using FieldSimilarityFn =
    std::function<double(const std::string&, const std::string&)>;

/// One field-comparison rule of a record matcher.
struct MatchRule {
  std::string field;
  FieldSimilarityFn similarity;
  double weight = 1.0;
  /// When either record lacks the field (or it is null): the similarity
  /// assumed for the pair (0.5 = uninformative by default).
  double missing_score = 0.5;
};

/// Three-way match decision. kPossible pairs are the "exceptions trapped"
/// for human disambiguation (§3.2); they queue in the concordance layer.
enum class MatchDecision { kNonMatch, kPossible, kMatch };

const char* MatchDecisionName(MatchDecision decision);

/// Weighted rule-based record matcher with dual thresholds:
/// score >= upper → match; score < lower → non-match; else possible.
class RecordMatcher {
 public:
  RecordMatcher(std::vector<MatchRule> rules, double lower_threshold,
                double upper_threshold);

  /// Weighted average similarity in [0,1].
  double Score(const Record& a, const Record& b) const;

  MatchDecision Decide(const Record& a, const Record& b) const;
  MatchDecision DecideFromScore(double score) const;

  double lower_threshold() const { return lower_threshold_; }
  double upper_threshold() const { return upper_threshold_; }
  const std::vector<MatchRule>& rules() const { return rules_; }

  /// Number of Score() invocations — the cost metric for E4 (comparisons
  /// are what sorted-neighbourhood saves over naive pairwise).
  size_t comparisons() const { return comparisons_; }
  void ResetCounters() { comparisons_ = 0; }

 private:
  std::vector<MatchRule> rules_;
  double lower_threshold_;
  double upper_threshold_;
  mutable size_t comparisons_ = 0;
};

}  // namespace cleaning
}  // namespace nimble

#endif  // NIMBLE_CLEANING_MATCHER_H_
