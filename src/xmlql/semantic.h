#ifndef NIMBLE_XMLQL_SEMANTIC_H_
#define NIMBLE_XMLQL_SEMANTIC_H_

#include "common/status.h"
#include "xmlql/ast.h"

namespace nimble {
namespace xmlql {

/// Resolves a pattern's `IN "source:collection"` reference against whatever
/// catalog the caller has. Implemented by core/plan_verifier's
/// CatalogResolver; semantic analysis itself stays catalog-agnostic so the
/// xmlql layer keeps no dependency on metadata.
class CollectionResolver {
 public:
  virtual ~CollectionResolver() = default;

  /// OK when `ref` names a known view or source collection; an error status
  /// (typically kNotFound) describing the problem otherwise. The analyzer
  /// re-wraps the error with the pattern's source position.
  [[nodiscard]] virtual Status Resolve(const SourceRef& ref) const = 0;
};

struct AnalysisOptions {
  /// When set, every pattern's source reference is resolved; dangling
  /// references become position-citing errors.
  const CollectionResolver* resolver = nullptr;
  /// Basic mode (the parser's Validate) checks structure, unbound
  /// variables, and aggregation rules. Strict mode — run by the engine's
  /// plan verifier — adds duplicate/conflicting bindings, type-incompatible
  /// comparisons, and statically unsatisfiable conditions.
  bool strict = false;
};

/// Analyzes one query. Diagnostics cite source positions when the AST was
/// parser-produced (hand-built ASTs without positions still get checked,
/// just without the location suffix).
[[nodiscard]] Status AnalyzeQuery(const Query& query,
                                  const AnalysisOptions& options = {});

/// Analyzes every UNION branch of a program.
[[nodiscard]] Status AnalyzeProgram(const Program& program,
                                    const AnalysisOptions& options = {});

}  // namespace xmlql
}  // namespace nimble

#endif  // NIMBLE_XMLQL_SEMANTIC_H_
