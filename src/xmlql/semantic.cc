#include "xmlql/semantic.h"

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace nimble {
namespace xmlql {

namespace {

/// " (line L, column C)" when the position is known, else "".
std::string AtPos(const SourcePos& pos) {
  if (!pos.known()) return "";
  return " (" + pos.ToString() + ")";
}

/// One variable binding introduced by a WHERE pattern. Scalar bindings
/// (attribute / content) may repeat across patterns — that spelling *is*
/// the join syntax — but element bindings (ELEMENT_AS) are node-valued and
/// must be unique.
struct BindingSite {
  std::string variable;
  bool is_element = false;
  SourcePos pos;  ///< of the element that introduces the binding.
};

void CollectBindingSites(const ElementPattern& pattern,
                         std::vector<BindingSite>* out) {
  for (const AttrPattern& attr : pattern.attributes) {
    if (attr.is_variable) out->push_back({attr.variable, false, pattern.pos});
  }
  if (!pattern.content_variable.empty()) {
    out->push_back({pattern.content_variable, false, pattern.pos});
  }
  if (!pattern.element_variable.empty()) {
    out->push_back({pattern.element_variable, true, pattern.pos});
  }
  for (const auto& child : pattern.children) {
    CollectBindingSites(*child, out);
  }
}

/// A variable use inside the CONSTRUCT template, with the nearest
/// position-carrying node.
struct UseSite {
  std::string variable;
  SourcePos pos;
};

void CollectTemplateUses(const TemplateNode& node, bool skip_aggregates,
                         std::vector<UseSite>* out) {
  if (node.kind == TemplateNode::Kind::kVariable ||
      (node.kind == TemplateNode::Kind::kAggregate && !skip_aggregates)) {
    out->push_back({node.variable, node.pos});
  }
  for (const TemplateNode::Attr& attr : node.attributes) {
    if (attr.is_variable) out->push_back({attr.variable, node.pos});
  }
  for (const auto& child : node.children) {
    CollectTemplateUses(*child, skip_aggregates, out);
  }
}

Status Unbound(const std::string& variable, const char* where,
               const SourcePos& pos) {
  return Status::ParseError("variable $" + variable + " used in " + where +
                            AtPos(pos) + " is not bound by any pattern");
}

/// Checks that hold for every well-formed query regardless of catalog:
/// structure, unbound variables, aggregation rules. This is what the
/// parser runs as Validate().
Status AnalyzeBasic(const Query& query,
                    const std::vector<BindingSite>& bindings) {
  if (query.patterns.empty()) {
    return Status::ParseError("query has no WHERE pattern");
  }
  if (query.construct == nullptr) {
    return Status::ParseError("query has no CONSTRUCT template");
  }

  std::set<std::string> bound;
  for (const BindingSite& site : bindings) bound.insert(site.variable);

  for (const Condition& cond : query.conditions) {
    for (const std::string& var : cond.Variables()) {
      if (bound.count(var) == 0) return Unbound(var, "a condition", cond.pos);
    }
  }
  std::vector<UseSite> template_uses;
  CollectTemplateUses(*query.construct, /*skip_aggregates=*/false,
                      &template_uses);
  for (const UseSite& use : template_uses) {
    if (bound.count(use.variable) == 0) {
      return Unbound(use.variable, "CONSTRUCT", use.pos);
    }
  }
  for (size_t i = 0; i < query.group_by.size(); ++i) {
    if (bound.count(query.group_by[i]) == 0) {
      SourcePos pos =
          i < query.group_by_pos.size() ? query.group_by_pos[i] : SourcePos{};
      return Unbound(query.group_by[i], "GROUP BY", pos);
    }
  }
  for (const OrderSpec& spec : query.order_by) {
    if (bound.count(spec.variable) == 0) {
      return Unbound(spec.variable, "ORDER BY", spec.pos);
    }
  }

  // Aggregation semantics: every template/order variable used outside an
  // aggregate call must be a grouping key.
  if (query.IsAggregation()) {
    std::set<std::string> groups(query.group_by.begin(), query.group_by.end());
    std::vector<UseSite> plain_uses;
    CollectTemplateUses(*query.construct, /*skip_aggregates=*/true,
                        &plain_uses);
    for (const UseSite& use : plain_uses) {
      if (groups.count(use.variable) == 0) {
        return Status::ParseError(
            "variable $" + use.variable + " used outside an aggregate" +
            AtPos(use.pos) + " must appear in GROUP BY");
      }
    }
    for (const OrderSpec& spec : query.order_by) {
      if (groups.count(spec.variable) == 0) {
        return Status::ParseError("ORDER BY $" + spec.variable +
                                  AtPos(spec.pos) +
                                  " must be a GROUP BY variable in an "
                                  "aggregation");
      }
    }
  }
  return Status::OK();
}

const char* TypeName(const Value& value) { return ValueTypeName(value.type()); }

/// Strict-mode binding discipline: ELEMENT_AS bindings are node-valued and
/// may neither repeat nor alias a scalar binding.
Status CheckBindingDiscipline(const std::vector<BindingSite>& bindings) {
  std::map<std::string, SourcePos> element_sites;
  std::map<std::string, SourcePos> scalar_sites;
  for (const BindingSite& site : bindings) {
    if (site.is_element) {
      auto [it, inserted] = element_sites.emplace(site.variable, site.pos);
      if (!inserted) {
        return Status::ParseError(
            "variable $" + site.variable + " is bound by ELEMENT_AS twice" +
            AtPos(it->second) + AtPos(site.pos) +
            "; element bindings cannot be join keys");
      }
    } else {
      scalar_sites.emplace(site.variable, site.pos);
    }
  }
  for (const auto& [variable, pos] : element_sites) {
    auto scalar = scalar_sites.find(variable);
    if (scalar != scalar_sites.end()) {
      return Status::TypeError("variable $" + variable +
                               " is bound both as an element (ELEMENT_AS" +
                               AtPos(pos) + ") and as a scalar" +
                               AtPos(scalar->second));
    }
  }
  return Status::OK();
}

bool ComparisonHolds(Condition::Op op, int cmp) {
  switch (op) {
    case Condition::Op::kEq:
      return cmp == 0;
    case Condition::Op::kNe:
      return cmp != 0;
    case Condition::Op::kLt:
      return cmp < 0;
    case Condition::Op::kLe:
      return cmp <= 0;
    case Condition::Op::kGt:
      return cmp > 0;
    case Condition::Op::kGe:
      return cmp >= 0;
    case Condition::Op::kLike:
      return true;  // not const-evaluated
  }
  return true;
}

/// Strict-mode condition checks: LIKE typing, null comparisons,
/// literal-vs-literal constant evaluation, and conflicting equality pins.
Status CheckConditions(const Query& query) {
  // Variables pinned to a literal by an equality condition; a second pin to
  // a different literal makes the conjunction statically false.
  std::map<std::string, std::pair<Value, SourcePos>> pinned;

  for (const Condition& cond : query.conditions) {
    const bool lhs_lit = !cond.lhs.is_variable;
    const bool rhs_lit = !cond.rhs.is_variable;

    if (cond.op == Condition::Op::kLike) {
      if (rhs_lit && !cond.rhs.literal.is_string()) {
        return Status::TypeError(std::string("LIKE pattern must be a string, "
                                             "got ") +
                                 TypeName(cond.rhs.literal) + AtPos(cond.pos));
      }
      if (lhs_lit && !cond.lhs.literal.is_string()) {
        return Status::TypeError(
            std::string("LIKE subject must be a string, got ") +
            TypeName(cond.lhs.literal) + AtPos(cond.pos));
      }
      continue;
    }

    // Pattern-bound scalars are never null, so any comparison other than
    // != against a null literal can never hold.
    if (cond.op != Condition::Op::kNe && lhs_lit != rhs_lit) {
      const Value& lit = lhs_lit ? cond.lhs.literal : cond.rhs.literal;
      if (lit.is_null()) {
        return Status::ParseError(
            "statically unsatisfiable condition" + AtPos(cond.pos) +
            ": pattern-bound variables are never null");
      }
    }

    if (lhs_lit && rhs_lit) {
      const Value& a = cond.lhs.literal;
      const Value& b = cond.rhs.literal;
      if (a.type() != b.type() && !(a.is_numeric() && b.is_numeric())) {
        return Status::TypeError(std::string("type-incompatible comparison "
                                             "between ") +
                                 TypeName(a) + " and " + TypeName(b) +
                                 AtPos(cond.pos));
      }
      if (!ComparisonHolds(cond.op, a.Compare(b))) {
        return Status::ParseError(
            "statically unsatisfiable condition" + AtPos(cond.pos) + ": " +
            a.ToString() + " " + Condition::OpName(cond.op) + " " +
            b.ToString() + " is always false");
      }
      continue;
    }

    if (cond.op == Condition::Op::kEq && lhs_lit != rhs_lit) {
      const std::string& var =
          lhs_lit ? cond.rhs.variable : cond.lhs.variable;
      const Value& lit = lhs_lit ? cond.lhs.literal : cond.rhs.literal;
      auto it = pinned.find(var);
      if (it == pinned.end()) {
        pinned.emplace(var, std::make_pair(lit, cond.pos));
      } else if (it->second.first != lit) {
        return Status::ParseError(
            "statically unsatisfiable conjunction: $" + var +
            " is required to equal both " + it->second.first.ToString() +
            AtPos(it->second.second) + " and " + lit.ToString() +
            AtPos(cond.pos));
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status AnalyzeQuery(const Query& query, const AnalysisOptions& options) {
  std::vector<BindingSite> bindings;
  for (const PatternClause& clause : query.patterns) {
    CollectBindingSites(clause.root, &bindings);
  }

  NIMBLE_RETURN_IF_ERROR(AnalyzeBasic(query, bindings));

  if (options.strict) {
    NIMBLE_RETURN_IF_ERROR(CheckBindingDiscipline(bindings));
    NIMBLE_RETURN_IF_ERROR(CheckConditions(query));
  }

  if (options.resolver != nullptr) {
    for (const PatternClause& clause : query.patterns) {
      Status status = options.resolver->Resolve(clause.source);
      if (!status.ok()) {
        return Status(status.code(),
                      status.message() + AtPos(clause.pos));
      }
    }
  }
  return Status::OK();
}

Status AnalyzeProgram(const Program& program, const AnalysisOptions& options) {
  if (program.branches.empty()) {
    return Status::ParseError("program has no query branches");
  }
  for (size_t i = 0; i < program.branches.size(); ++i) {
    Status status = AnalyzeQuery(program.branches[i], options);
    if (!status.ok() && program.branches.size() > 1) {
      return Status(status.code(), "UNION branch " + std::to_string(i + 1) +
                                       ": " + status.message());
    }
    NIMBLE_RETURN_IF_ERROR(status);
  }
  return Status::OK();
}

}  // namespace xmlql
}  // namespace nimble
