#include "xmlql/printer.h"

#include <cctype>

#include "common/strings.h"
#include "xmlql/parser.h"

namespace nimble {
namespace xmlql {

namespace {

/// Mirrors parser.cc's IsNameChar: the exact alphabet ParseName accepts.
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.';
}

bool IsValidName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    if (!IsNameChar(c)) return false;
  }
  return true;
}

Status Unprintable(const std::string& what) {
  return Status::Unsupported("unprintable XML-QL AST: " + what);
}

/// Both type and value must match: the shard subplan must bind the same
/// typed scalars the coordinator's plan would (Int(2) != Double(2.0)).
bool ValuesEqual(const Value& a, const Value& b) {
  return a.type() == b.type() && a.Compare(b) == 0;
}

/// Quotes `s` with whichever quote character it does not contain.
/// ParseQuotedString has no escape mechanism, so a string containing both
/// quote characters cannot be spelled at all.
Result<std::string> QuoteString(const std::string& s) {
  if (s.find('"') == std::string::npos) return '"' + s + '"';
  if (s.find('\'') == std::string::npos) return '\'' + s + '\'';
  return Unprintable("string literal contains both quote characters");
}

/// Renders a double so the *condition* literal scanner ([+-] digits dots)
/// reads it back: a '.' is required to keep it a Double and exponents are
/// not part of that alphabet at all.
Result<std::string> RenderDouble(const Value& v) {
  std::string text = v.ToString();  // shortest %.12g form
  if (text.find_first_of("eE") != std::string::npos ||
      text.find_first_of("0123456789") == std::string::npos) {
    // Exponent form, inf, or nan — the grammar cannot spell these.
    return Unprintable("double literal '" + text + "' needs an exponent");
  }
  if (text.find('.') == std::string::npos) text += ".0";
  // %.12g can round away precision (a double needing 17 digits); verify.
  if (!ValuesEqual(Value::Double(std::strtod(text.c_str(), nullptr)), v)) {
    return Unprintable("double literal '" + text + "' loses precision");
  }
  return text;
}

/// Renders a literal for a *condition* operand position (ParseLiteral).
Result<std::string> RenderConditionLiteral(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return std::string("null");
    case ValueType::kBool:
      return std::string(v.AsBool() ? "true" : "false");
    case ValueType::kInt:
      return v.ToString();
    case ValueType::kDouble:
      return RenderDouble(v);
    case ValueType::kString:
      return QuoteString(v.AsString());
  }
  return Unprintable("unknown literal type");
}

/// Renders a literal destined for a Value::Infer position (pattern/template
/// attribute values, pattern content). The render is only correct if Infer
/// maps it back to the same typed value, so that is checked directly.
Result<std::string> RenderInferLiteral(const Value& v) {
  std::string text;
  switch (v.type()) {
    case ValueType::kNull:
      // Infer never produces Null ("" infers as String""), so a Null here
      // cannot round-trip.
      return Unprintable("null literal in an inferred position");
    case ValueType::kDouble: {
      NIMBLE_ASSIGN_OR_RETURN(text, RenderDouble(v));
      break;
    }
    default:
      text = v.ToString();
      break;
  }
  if (!ValuesEqual(Value::Infer(text), v)) {
    return Unprintable("literal '" + text + "' does not re-infer to itself");
  }
  return text;
}

/// Free-standing text (pattern content, template text runs) is scanned up
/// to the next '<' or '$' and trimmed, so it must be trim-stable, non-empty
/// and free of both delimiters.
Status CheckTextRun(const std::string& raw) {
  if (raw.empty()) return Unprintable("empty text run");
  if (raw.find_first_of("<$") != std::string::npos) {
    return Unprintable("text run contains '<' or '$'");
  }
  if (Trim(raw) != raw) return Unprintable("text run is not trim-stable");
  return Status::OK();
}

// ---- Printing ---------------------------------------------------------------

Status PrintElementPattern(const ElementPattern& p, std::string* out) {
  const bool wildcard = p.tag == "*";
  if (!wildcard && !IsValidName(p.tag)) {
    return Unprintable("bad pattern tag '" + p.tag + "'");
  }
  out->push_back('<');
  if (p.descendant) out->append("//");
  out->append(p.tag);
  for (const AttrPattern& attr : p.attributes) {
    if (!IsValidName(attr.name) || EqualsIgnoreCase(attr.name, "ELEMENT_AS")) {
      return Unprintable("bad attribute name '" + attr.name + "'");
    }
    out->push_back(' ');
    out->append(attr.name);
    out->push_back('=');
    if (attr.is_variable) {
      if (!IsValidName(attr.variable)) {
        return Unprintable("bad variable '" + attr.variable + "'");
      }
      out->push_back('$');
      out->append(attr.variable);
    } else {
      NIMBLE_ASSIGN_OR_RETURN(std::string raw,
                              RenderInferLiteral(attr.literal));
      NIMBLE_ASSIGN_OR_RETURN(std::string quoted, QuoteString(raw));
      out->append(quoted);
    }
  }
  if (!p.element_variable.empty()) {
    if (!IsValidName(p.element_variable)) {
      return Unprintable("bad variable '" + p.element_variable + "'");
    }
    out->append(" ELEMENT_AS $");
    out->append(p.element_variable);
  }
  if (p.children.empty() && p.content_variable.empty() &&
      !p.content_literal.has_value()) {
    out->append("/>");
    return Status::OK();
  }
  out->push_back('>');
  for (const auto& child : p.children) {
    NIMBLE_RETURN_IF_ERROR(PrintElementPattern(*child, out));
  }
  if (!p.content_variable.empty()) {
    if (!IsValidName(p.content_variable)) {
      return Unprintable("bad variable '" + p.content_variable + "'");
    }
    out->push_back('$');
    out->append(p.content_variable);
  }
  if (p.content_literal.has_value()) {
    NIMBLE_ASSIGN_OR_RETURN(std::string raw,
                            RenderInferLiteral(*p.content_literal));
    NIMBLE_RETURN_IF_ERROR(CheckTextRun(raw));
    // A '$content_variable' directly before would swallow leading name
    // characters of the text; a space separates them and trims away.
    if (!p.content_variable.empty()) out->push_back(' ');
    out->append(raw);
  }
  out->append("</");
  out->append(p.tag);  // "*" closes as `</*>`
  out->push_back('>');
  return Status::OK();
}

Status PrintOperand(const Condition::Operand& operand, std::string* out) {
  if (operand.is_variable) {
    if (!IsValidName(operand.variable)) {
      return Unprintable("bad variable '" + operand.variable + "'");
    }
    out->push_back('$');
    out->append(operand.variable);
    return Status::OK();
  }
  NIMBLE_ASSIGN_OR_RETURN(std::string text,
                          RenderConditionLiteral(operand.literal));
  out->append(text);
  return Status::OK();
}

Status PrintCondition(const Condition& cond, std::string* out) {
  NIMBLE_RETURN_IF_ERROR(PrintOperand(cond.lhs, out));
  out->push_back(' ');
  switch (cond.op) {
    case Condition::Op::kEq: out->push_back('='); break;
    case Condition::Op::kNe: out->append("!="); break;
    case Condition::Op::kLt: out->push_back('<'); break;
    case Condition::Op::kLe: out->append("<="); break;
    case Condition::Op::kGt: out->push_back('>'); break;
    case Condition::Op::kGe: out->append(">="); break;
    case Condition::Op::kLike: out->append("LIKE"); break;
  }
  out->push_back(' ');
  return PrintOperand(cond.rhs, out);
}

Status PrintTemplate(const TemplateNode& node, std::string* out);

Status PrintTemplateChildren(const TemplateNode& node, std::string* out) {
  const TemplateNode* prev = nullptr;
  for (const auto& child : node.children) {
    switch (child->kind) {
      case TemplateNode::Kind::kElement:
        NIMBLE_RETURN_IF_ERROR(PrintTemplate(*child, out));
        break;
      case TemplateNode::Kind::kVariable:
        if (!IsValidName(child->variable)) {
          return Unprintable("bad variable '" + child->variable + "'");
        }
        // A text run directly before a '$' ends there, so no separator is
        // needed on that side; one after keeps the name from swallowing a
        // following text run's leading characters.
        out->push_back('$');
        out->append(child->variable);
        out->push_back(' ');
        break;
      case TemplateNode::Kind::kAggregate:
        if (!IsValidName(child->variable)) {
          return Unprintable("bad variable '" + child->variable + "'");
        }
        out->append(AggregateFnName(child->aggregate));
        out->append("($");
        out->append(child->variable);
        out->append(") ");
        break;
      case TemplateNode::Kind::kText: {
        if (!child->text.is_string()) {
          return Unprintable("template text node holding a non-string");
        }
        const std::string& raw = child->text.AsString();
        NIMBLE_RETURN_IF_ERROR(CheckTextRun(raw));
        if (prev != nullptr && prev->kind == TemplateNode::Kind::kText) {
          // Two adjacent runs would reparse as one.
          return Unprintable("adjacent template text runs");
        }
        out->append(raw);
        break;
      }
    }
    prev = child.get();
  }
  return Status::OK();
}

Status PrintTemplate(const TemplateNode& node, std::string* out) {
  if (node.kind != TemplateNode::Kind::kElement) {
    return Unprintable("template root must be an element");
  }
  if (!IsValidName(node.tag)) {
    return Unprintable("bad template tag '" + node.tag + "'");
  }
  out->push_back('<');
  out->append(node.tag);
  for (const TemplateNode::Attr& attr : node.attributes) {
    if (!IsValidName(attr.name)) {
      return Unprintable("bad attribute name '" + attr.name + "'");
    }
    out->push_back(' ');
    out->append(attr.name);
    out->push_back('=');
    if (attr.is_variable) {
      if (!IsValidName(attr.variable)) {
        return Unprintable("bad variable '" + attr.variable + "'");
      }
      out->push_back('$');
      out->append(attr.variable);
    } else {
      NIMBLE_ASSIGN_OR_RETURN(std::string raw,
                              RenderInferLiteral(attr.literal));
      NIMBLE_ASSIGN_OR_RETURN(std::string quoted, QuoteString(raw));
      out->append(quoted);
    }
  }
  if (node.children.empty()) {
    out->append("/>");
    return Status::OK();
  }
  out->push_back('>');
  NIMBLE_RETURN_IF_ERROR(PrintTemplateChildren(node, out));
  out->append("</");
  out->append(node.tag);
  out->push_back('>');
  return Status::OK();
}

Status PrintQueryText(const Query& query, std::string* out) {
  if (query.patterns.empty()) return Unprintable("query without patterns");
  if (query.construct == nullptr) {
    return Unprintable("query without a CONSTRUCT template");
  }
  out->append("WHERE ");
  bool first = true;
  for (const PatternClause& clause : query.patterns) {
    if (!first) out->append(",\n      ");
    first = false;
    NIMBLE_RETURN_IF_ERROR(PrintElementPattern(clause.root, out));
    // Always quoted: ParseName would stop a bare view reference at any
    // non-name character, and a quoted ref is valid in both forms.
    NIMBLE_ASSIGN_OR_RETURN(std::string ref,
                            QuoteString(clause.source.ToString()));
    if (clause.source.is_view() &&
        clause.source.collection.find(':') != std::string::npos) {
      return Unprintable("view name containing ':'");
    }
    if (!clause.source.is_view() && clause.source.source.find(':') !=
                                        std::string::npos) {
      return Unprintable("source name containing ':'");
    }
    out->append(" IN ");
    out->append(ref);
  }
  for (const Condition& cond : query.conditions) {
    out->append(",\n      ");
    NIMBLE_RETURN_IF_ERROR(PrintCondition(cond, out));
  }
  out->append("\nCONSTRUCT ");
  NIMBLE_RETURN_IF_ERROR(PrintTemplate(*query.construct, out));
  if (!query.group_by.empty()) {
    out->append("\nGROUP BY ");
    bool first_var = true;
    for (const std::string& var : query.group_by) {
      if (!IsValidName(var)) return Unprintable("bad variable '" + var + "'");
      if (!first_var) out->append(", ");
      first_var = false;
      out->push_back('$');
      out->append(var);
    }
  }
  if (!query.order_by.empty()) {
    out->append("\nORDER BY ");
    bool first_key = true;
    for (const OrderSpec& spec : query.order_by) {
      if (!IsValidName(spec.variable)) {
        return Unprintable("bad variable '" + spec.variable + "'");
      }
      if (!first_key) out->append(", ");
      first_key = false;
      out->push_back('$');
      out->append(spec.variable);
      if (spec.descending) out->append(" DESC");
    }
  }
  if (query.limit >= 0) {
    out->append("\nLIMIT ");
    out->append(std::to_string(query.limit));
  }
  return Status::OK();
}

// ---- Structural equality ----------------------------------------------------

bool PatternsEqual(const ElementPattern& a, const ElementPattern& b) {
  if (a.tag != b.tag || a.descendant != b.descendant ||
      a.content_variable != b.content_variable ||
      a.element_variable != b.element_variable) {
    return false;
  }
  if (a.content_literal.has_value() != b.content_literal.has_value()) {
    return false;
  }
  if (a.content_literal.has_value() &&
      !ValuesEqual(*a.content_literal, *b.content_literal)) {
    return false;
  }
  if (a.attributes.size() != b.attributes.size()) return false;
  for (size_t i = 0; i < a.attributes.size(); ++i) {
    const AttrPattern& x = a.attributes[i];
    const AttrPattern& y = b.attributes[i];
    if (x.name != y.name || x.is_variable != y.is_variable ||
        x.variable != y.variable ||
        (!x.is_variable && !ValuesEqual(x.literal, y.literal))) {
      return false;
    }
  }
  if (a.children.size() != b.children.size()) return false;
  for (size_t i = 0; i < a.children.size(); ++i) {
    if (!PatternsEqual(*a.children[i], *b.children[i])) return false;
  }
  return true;
}

bool OperandsEqual(const Condition::Operand& a, const Condition::Operand& b) {
  if (a.is_variable != b.is_variable) return false;
  if (a.is_variable) return a.variable == b.variable;
  return ValuesEqual(a.literal, b.literal);
}

bool TemplatesEqual(const TemplateNode& a, const TemplateNode& b) {
  if (a.kind != b.kind || a.tag != b.tag || a.variable != b.variable) {
    return false;
  }
  if (a.kind == TemplateNode::Kind::kAggregate && a.aggregate != b.aggregate) {
    return false;
  }
  if (a.kind == TemplateNode::Kind::kText && !ValuesEqual(a.text, b.text)) {
    return false;
  }
  if (a.attributes.size() != b.attributes.size()) return false;
  for (size_t i = 0; i < a.attributes.size(); ++i) {
    const TemplateNode::Attr& x = a.attributes[i];
    const TemplateNode::Attr& y = b.attributes[i];
    if (x.name != y.name || x.is_variable != y.is_variable ||
        x.variable != y.variable ||
        (!x.is_variable && !ValuesEqual(x.literal, y.literal))) {
      return false;
    }
  }
  if (a.children.size() != b.children.size()) return false;
  for (size_t i = 0; i < a.children.size(); ++i) {
    if (!TemplatesEqual(*a.children[i], *b.children[i])) return false;
  }
  return true;
}

}  // namespace

bool QueriesEqual(const Query& a, const Query& b) {
  if (a.patterns.size() != b.patterns.size() ||
      a.conditions.size() != b.conditions.size() ||
      a.group_by != b.group_by || a.limit != b.limit) {
    return false;
  }
  for (size_t i = 0; i < a.patterns.size(); ++i) {
    if (a.patterns[i].source.source != b.patterns[i].source.source ||
        a.patterns[i].source.collection != b.patterns[i].source.collection ||
        !PatternsEqual(a.patterns[i].root, b.patterns[i].root)) {
      return false;
    }
  }
  for (size_t i = 0; i < a.conditions.size(); ++i) {
    if (a.conditions[i].op != b.conditions[i].op ||
        !OperandsEqual(a.conditions[i].lhs, b.conditions[i].lhs) ||
        !OperandsEqual(a.conditions[i].rhs, b.conditions[i].rhs)) {
      return false;
    }
  }
  if ((a.construct == nullptr) != (b.construct == nullptr)) return false;
  if (a.construct != nullptr && !TemplatesEqual(*a.construct, *b.construct)) {
    return false;
  }
  if (a.order_by.size() != b.order_by.size()) return false;
  for (size_t i = 0; i < a.order_by.size(); ++i) {
    if (a.order_by[i].variable != b.order_by[i].variable ||
        a.order_by[i].descending != b.order_by[i].descending) {
      return false;
    }
  }
  return true;
}

bool ProgramsEqual(const Program& a, const Program& b) {
  if (a.branches.size() != b.branches.size()) return false;
  for (size_t i = 0; i < a.branches.size(); ++i) {
    if (!QueriesEqual(a.branches[i], b.branches[i])) return false;
  }
  return true;
}

Result<std::string> PrintProgram(const Program& program) {
  if (program.branches.empty()) return Unprintable("empty program");
  std::string out;
  bool first = true;
  for (const Query& query : program.branches) {
    if (!first) out.append("\nUNION\n");
    first = false;
    NIMBLE_RETURN_IF_ERROR(PrintQueryText(query, &out));
  }
  // The guarantee the coordinator relies on: what we printed parses back to
  // *exactly* the AST we were given. Any guard this file missed fails here
  // instead of silently changing shard-local semantics.
  Result<Program> reparsed = ParseProgram(out);
  if (!reparsed.ok()) {
    return Unprintable("printed text does not reparse: " +
                       reparsed.status().ToString());
  }
  if (!ProgramsEqual(program, *reparsed)) {
    return Unprintable("printed text reparses to a different AST");
  }
  return out;
}

Result<std::string> PrintQuery(const Query& query) {
  std::string out;
  NIMBLE_RETURN_IF_ERROR(PrintQueryText(query, &out));
  Result<Query> reparsed = ParseQuery(out);
  if (!reparsed.ok()) {
    return Unprintable("printed text does not reparse: " +
                       reparsed.status().ToString());
  }
  if (!QueriesEqual(query, *reparsed)) {
    return Unprintable("printed text reparses to a different AST");
  }
  return out;
}

}  // namespace xmlql
}  // namespace nimble
