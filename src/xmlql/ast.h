#ifndef NIMBLE_XMLQL_AST_H_
#define NIMBLE_XMLQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "xml/value.h"

namespace nimble {
namespace xmlql {

/// 1-based position of a syntactic element in the query text. {0,0} means
/// unknown (hand-built ASTs); parser-produced nodes always carry one, so
/// semantic diagnostics can cite the offending binding or condition.
struct SourcePos {
  int line = 0;
  int column = 0;

  bool known() const { return line > 0; }
  /// "line L, column C", or "unknown position".
  std::string ToString() const;
};

/// An attribute match inside an element pattern: either binds the attribute
/// value to a variable (`year=$y`) or constrains it to a literal
/// (`year="2001"`).
struct AttrPattern {
  std::string name;
  bool is_variable = false;
  std::string variable;  ///< without the '$'.
  Value literal;
};

/// One element of a WHERE pattern tree.
struct ElementPattern {
  std::string tag;          ///< element name; "*" matches any.
  bool descendant = false;  ///< written `<//tag>`: match at any depth.
  std::vector<AttrPattern> attributes;
  /// `$v` directly inside the element: binds the element's typed scalar.
  std::string content_variable;
  /// Literal content constraint (`<status>open</status>` inside a pattern).
  std::optional<Value> content_literal;
  /// `ELEMENT_AS $e`: binds the whole element node.
  std::string element_variable;
  std::vector<std::unique_ptr<ElementPattern>> children;
  SourcePos pos;  ///< of the opening '<'.

  /// Collects every variable bound anywhere in this subtree.
  void CollectVariables(std::vector<std::string>* out) const;
};

/// Where a pattern's data comes from: `IN "source:collection"` names a
/// registered source, `IN "view_name"` (no colon) names a mediated view —
/// the hierarchical-composition mechanism of §2.1.
struct SourceRef {
  std::string source;      ///< empty when referencing a mediated view.
  std::string collection;  ///< collection within the source, or view name.

  bool is_view() const { return source.empty(); }
  std::string ToString() const {
    return source.empty() ? collection : source + ":" + collection;
  }
};

/// One WHERE pattern: an element tree matched against one source/view.
struct PatternClause {
  ElementPattern root;
  SourceRef source;
  SourcePos pos;  ///< of the pattern's opening '<'.
};

/// A comparison between variables and/or literals.
struct Condition {
  enum class Op { kEq, kNe, kLt, kLe, kGt, kGe, kLike };

  struct Operand {
    bool is_variable = false;
    std::string variable;
    Value literal;
  };

  Op op = Op::kEq;
  Operand lhs, rhs;
  SourcePos pos;  ///< of the first operand.

  /// Variables referenced by this condition.
  std::vector<std::string> Variables() const;
  static const char* OpName(Op op);
};

/// Aggregate functions usable inside CONSTRUCT templates, e.g.
/// `<n>count($x)</n>`. Their presence (or a GROUP BY clause) turns the
/// query into an aggregation.
enum class AggregateFn { kCount, kSum, kAvg, kMin, kMax };

const char* AggregateFnName(AggregateFn fn);

/// CONSTRUCT template node.
struct TemplateNode {
  enum class Kind { kElement, kText, kVariable, kAggregate };

  struct Attr {
    std::string name;
    bool is_variable = false;
    std::string variable;
    Value literal;
  };

  Kind kind = Kind::kElement;
  std::string tag;       ///< kElement.
  std::vector<Attr> attributes;
  std::string variable;  ///< kVariable / kAggregate input (without '$').
  AggregateFn aggregate = AggregateFn::kCount;  ///< kAggregate.
  Value text;            ///< kText.
  std::vector<std::unique_ptr<TemplateNode>> children;
  SourcePos pos;

  void CollectVariables(std::vector<std::string>* out) const;
  bool ContainsAggregate() const;
  /// Variables used *outside* aggregate calls (must be grouping keys).
  void CollectNonAggregateVariables(std::vector<std::string>* out) const;
  /// Distinct (fn, variable) aggregate calls in the subtree.
  void CollectAggregates(
      std::vector<std::pair<AggregateFn, std::string>>* out) const;
};

struct OrderSpec {
  std::string variable;
  bool descending = false;
  SourcePos pos;
};

/// A parsed XML-QL query:
///   WHERE <pat>…</pat> IN "src:coll", …, $x > 5, …
///   CONSTRUCT <out>…$x…</out>
///   [ORDER BY $x [DESC], …] [LIMIT n]
struct Query {
  std::vector<PatternClause> patterns;
  std::vector<Condition> conditions;
  /// GROUP BY variables; may be empty even for aggregation (one global
  /// group, as in `SELECT COUNT(*)` without GROUP BY).
  std::vector<std::string> group_by;
  /// Positions parallel to `group_by` (empty for hand-built ASTs).
  std::vector<SourcePos> group_by_pos;
  std::unique_ptr<TemplateNode> construct;
  std::vector<OrderSpec> order_by;
  int64_t limit = -1;

  /// True when the query aggregates (GROUP BY present or the template
  /// contains aggregate calls).
  bool IsAggregation() const;

  /// All variables bound by the patterns.
  std::vector<std::string> BoundVariables() const;
};

/// A full XML-QL program: one or more queries combined with UNION.
/// Branch results are concatenated under one result root. UNION is the
/// unit of partial-results degradation (§3.4): when a branch's source is
/// down, the other branches can still answer.
struct Program {
  std::vector<Query> branches;
};

}  // namespace xmlql
}  // namespace nimble

#endif  // NIMBLE_XMLQL_AST_H_
