#include "xmlql/parser.h"

#include <cctype>
#include <cstdlib>

#include "common/strings.h"
#include "xmlql/semantic.h"

namespace nimble {
namespace xmlql {

namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.';
}

/// Character-level recursive-descent parser. XML-QL mixes XML-ish pattern
/// syntax with expression syntax, so we parse straight off the text rather
/// than pre-tokenizing ('<' is both tag-open and less-than).
class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<Program> ParseAll() {
    Program program;
    while (true) {
      NIMBLE_ASSIGN_OR_RETURN(Query query, ParseOne());
      program.branches.push_back(std::move(query));
      SkipWhitespace();
      if (!ConsumeWord("UNION")) break;
    }
    SkipWhitespace();
    if (pos_ != input_.size()) return Error("trailing input after query");
    return program;
  }

 private:
  Result<Query> ParseOne() {
    Query query;
    NIMBLE_RETURN_IF_ERROR(ExpectWord("WHERE"));
    // Pattern and condition clauses, comma-separated. Clauses starting
    // with '<' are patterns; anything else is a condition.
    while (true) {
      SkipWhitespace();
      if (Peek() == '<') {
        NIMBLE_ASSIGN_OR_RETURN(PatternClause clause, ParsePatternClause());
        query.patterns.push_back(std::move(clause));
      } else {
        NIMBLE_ASSIGN_OR_RETURN(Condition cond, ParseCondition());
        query.conditions.push_back(std::move(cond));
      }
      SkipWhitespace();
      if (!Consume(',')) break;
    }
    NIMBLE_RETURN_IF_ERROR(ExpectWord("CONSTRUCT"));
    SkipWhitespace();
    NIMBLE_ASSIGN_OR_RETURN(query.construct, ParseTemplate());
    SkipWhitespace();
    if (ConsumeWord("GROUP")) {
      NIMBLE_RETURN_IF_ERROR(ExpectWord("BY"));
      while (true) {
        SkipWhitespace();
        query.group_by_pos.push_back(Pos());
        NIMBLE_ASSIGN_OR_RETURN(std::string var, ParseVariable());
        query.group_by.push_back(std::move(var));
        SkipWhitespace();
        if (!Consume(',')) break;
      }
    }
    SkipWhitespace();
    if (ConsumeWord("ORDER")) {
      NIMBLE_RETURN_IF_ERROR(ExpectWord("BY"));
      while (true) {
        SkipWhitespace();
        OrderSpec spec;
        spec.pos = Pos();
        NIMBLE_ASSIGN_OR_RETURN(std::string var, ParseVariable());
        spec.variable = std::move(var);
        SkipWhitespace();
        if (ConsumeWord("DESC")) {
          spec.descending = true;
        } else {
          ConsumeWord("ASC");
        }
        query.order_by.push_back(std::move(spec));
        SkipWhitespace();
        if (!Consume(',')) break;
      }
    }
    SkipWhitespace();
    if (ConsumeWord("LIMIT")) {
      SkipWhitespace();
      size_t start = pos_;
      while (pos_ < input_.size() &&
             std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        ++pos_;
      }
      if (pos_ == start) return Error("expected integer after LIMIT");
      query.limit = std::strtoll(
          std::string(input_.substr(start, pos_ - start)).c_str(), nullptr,
          10);
    }
    NIMBLE_RETURN_IF_ERROR(Validate(query));
    return query;
  }

  /// Line/column of the cursor. The parser never backtracks, so the scan
  /// cache only ever advances — position lookup is amortized O(1).
  SourcePos Pos() {
    while (scanned_ < pos_ && scanned_ < input_.size()) {
      if (input_[scanned_] == '\n') {
        ++line_;
        column_ = 1;
      } else {
        ++column_;
      }
      ++scanned_;
    }
    return SourcePos{line_, column_};
  }

  Status Error(const std::string& what) {
    return Status::ParseError("XML-QL parse error at " + Pos().ToString() +
                              ": " + what);
  }

  char Peek() const { return pos_ < input_.size() ? input_[pos_] : '\0'; }
  bool Consume(char c) {
    if (Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void SkipWhitespace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  /// Case-insensitive keyword consumption with word-boundary check.
  bool ConsumeWord(const char* word) {
    SkipWhitespace();
    size_t len = std::string_view(word).size();
    if (input_.substr(pos_, len).size() < len) return false;
    if (!EqualsIgnoreCase(input_.substr(pos_, len), word)) return false;
    size_t after = pos_ + len;
    if (after < input_.size() && IsNameChar(input_[after])) return false;
    pos_ = after;
    return true;
  }
  Status ExpectWord(const char* word) {
    if (!ConsumeWord(word)) {
      return Error(std::string("expected ") + word);
    }
    return Status::OK();
  }

  Result<std::string> ParseName() {
    SkipWhitespace();
    size_t start = pos_;
    while (pos_ < input_.size() && IsNameChar(input_[pos_])) ++pos_;
    if (pos_ == start) return Error("expected a name");
    return std::string(input_.substr(start, pos_ - start));
  }

  Result<std::string> ParseVariable() {
    SkipWhitespace();
    if (!Consume('$')) return Error("expected '$variable'");
    return ParseName();
  }

  Result<std::string> ParseQuotedString() {
    SkipWhitespace();
    char quote = Peek();
    if (quote != '"' && quote != '\'') return Error("expected quoted string");
    ++pos_;
    std::string out;
    while (pos_ < input_.size() && input_[pos_] != quote) {
      out.push_back(input_[pos_++]);
    }
    if (pos_ >= input_.size()) return Error("unterminated string");
    ++pos_;
    return out;
  }

  Result<Value> ParseLiteral() {
    SkipWhitespace();
    char c = Peek();
    if (c == '"' || c == '\'') {
      NIMBLE_ASSIGN_OR_RETURN(std::string s, ParseQuotedString());
      return Value::String(std::move(s));
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+') {
      size_t start = pos_;
      if (c == '-' || c == '+') ++pos_;
      bool is_float = false;
      while (pos_ < input_.size() &&
             (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '.')) {
        if (input_[pos_] == '.') is_float = true;
        ++pos_;
      }
      std::string text(input_.substr(start, pos_ - start));
      if (is_float) return Value::Double(std::strtod(text.c_str(), nullptr));
      return Value::Int(std::strtoll(text.c_str(), nullptr, 10));
    }
    if (ConsumeWord("true")) return Value::Bool(true);
    if (ConsumeWord("false")) return Value::Bool(false);
    if (ConsumeWord("null")) return Value::Null();
    return Error("expected a literal");
  }

  // ---- Patterns -------------------------------------------------------------

  Result<PatternClause> ParsePatternClause() {
    PatternClause clause;
    NIMBLE_ASSIGN_OR_RETURN(clause.root, ParseElementPattern());
    clause.pos = clause.root.pos;
    NIMBLE_RETURN_IF_ERROR(ExpectWord("IN"));
    SkipWhitespace();
    std::string ref;
    if (Peek() == '"' || Peek() == '\'') {
      NIMBLE_ASSIGN_OR_RETURN(ref, ParseQuotedString());
    } else {
      NIMBLE_ASSIGN_OR_RETURN(ref, ParseName());
    }
    size_t colon = ref.find(':');
    if (colon == std::string::npos) {
      clause.source.collection = ref;  // a mediated view
    } else {
      clause.source.source = ref.substr(0, colon);
      clause.source.collection = ref.substr(colon + 1);
      if (clause.source.source.empty() || clause.source.collection.empty()) {
        return Error("bad source reference '" + ref + "'");
      }
    }
    return clause;
  }

  Result<ElementPattern> ParseElementPattern() {
    SkipWhitespace();
    SourcePos pos = Pos();
    if (!Consume('<')) return Error("expected '<' to open a pattern");
    ElementPattern pattern;
    pattern.pos = pos;
    if (Peek() == '/') {
      // `<//tag>` descendant form.
      if (input_.substr(pos_, 2) != "//") {
        return Error("unexpected '/' in pattern tag");
      }
      pos_ += 2;
      pattern.descendant = true;
    }
    if (Peek() == '*') {
      ++pos_;
      pattern.tag = "*";
    } else {
      NIMBLE_ASSIGN_OR_RETURN(pattern.tag, ParseName());
    }

    // Attributes / ELEMENT_AS.
    while (true) {
      SkipWhitespace();
      if (Peek() == '>' || Peek() == '/') break;
      if (ConsumeWord("ELEMENT_AS")) {
        NIMBLE_ASSIGN_OR_RETURN(pattern.element_variable, ParseVariable());
        continue;
      }
      AttrPattern attr;
      NIMBLE_ASSIGN_OR_RETURN(attr.name, ParseName());
      SkipWhitespace();
      if (!Consume('=')) return Error("expected '=' in attribute pattern");
      SkipWhitespace();
      if (Peek() == '$') {
        attr.is_variable = true;
        NIMBLE_ASSIGN_OR_RETURN(attr.variable, ParseVariable());
      } else {
        NIMBLE_ASSIGN_OR_RETURN(std::string raw, ParseQuotedString());
        attr.literal = Value::Infer(raw);
      }
      pattern.attributes.push_back(std::move(attr));
    }

    if (Consume('/')) {  // self-closing
      if (!Consume('>')) return Error("expected '/>'");
      return pattern;
    }
    if (!Consume('>')) return Error("expected '>'");

    // Content: child patterns, a content variable, or literal text.
    while (true) {
      SkipWhitespace();
      if (input_.substr(pos_, 2) == "</") {
        pos_ += 2;
        std::string close;
        if (Peek() == '*') {
          ++pos_;
          close = "*";
        } else {
          NIMBLE_ASSIGN_OR_RETURN(close, ParseName());
        }
        if (close != pattern.tag && pattern.tag != "*") {
          return Error("mismatched </" + close + ">, expected </" +
                       pattern.tag + ">");
        }
        SkipWhitespace();
        if (!Consume('>')) return Error("expected '>'");
        return pattern;
      }
      if (Peek() == '<') {
        NIMBLE_ASSIGN_OR_RETURN(ElementPattern child, ParseElementPattern());
        pattern.children.push_back(
            std::make_unique<ElementPattern>(std::move(child)));
        continue;
      }
      if (Peek() == '$') {
        if (!pattern.content_variable.empty()) {
          return Error("element pattern binds two content variables");
        }
        NIMBLE_ASSIGN_OR_RETURN(pattern.content_variable, ParseVariable());
        continue;
      }
      if (Peek() == '\0') return Error("unterminated pattern");
      // Literal content up to the next '<'.
      size_t start = pos_;
      while (pos_ < input_.size() && input_[pos_] != '<' &&
             input_[pos_] != '$') {
        ++pos_;
      }
      std::string raw = Trim(input_.substr(start, pos_ - start));
      if (!raw.empty()) pattern.content_literal = Value::Infer(raw);
    }
  }

  // ---- Conditions -----------------------------------------------------------

  Result<Condition::Operand> ParseOperand() {
    SkipWhitespace();
    Condition::Operand operand;
    if (Peek() == '$') {
      operand.is_variable = true;
      NIMBLE_ASSIGN_OR_RETURN(operand.variable, ParseVariable());
    } else {
      NIMBLE_ASSIGN_OR_RETURN(operand.literal, ParseLiteral());
    }
    return operand;
  }

  Result<Condition> ParseCondition() {
    Condition cond;
    SkipWhitespace();
    cond.pos = Pos();
    NIMBLE_ASSIGN_OR_RETURN(cond.lhs, ParseOperand());
    SkipWhitespace();
    if (ConsumeWord("LIKE")) {
      cond.op = Condition::Op::kLike;
    } else if (input_.substr(pos_, 2) == "!=") {
      pos_ += 2;
      cond.op = Condition::Op::kNe;
    } else if (input_.substr(pos_, 2) == "<=") {
      pos_ += 2;
      cond.op = Condition::Op::kLe;
    } else if (input_.substr(pos_, 2) == ">=") {
      pos_ += 2;
      cond.op = Condition::Op::kGe;
    } else if (Consume('=')) {
      cond.op = Condition::Op::kEq;
    } else if (Consume('<')) {
      cond.op = Condition::Op::kLt;
    } else if (Consume('>')) {
      cond.op = Condition::Op::kGt;
    } else {
      return Error("expected a comparison operator");
    }
    NIMBLE_ASSIGN_OR_RETURN(cond.rhs, ParseOperand());
    return cond;
  }

  // ---- Templates ------------------------------------------------------------

  Result<std::unique_ptr<TemplateNode>> ParseTemplate() {
    SkipWhitespace();
    SourcePos pos = Pos();
    if (!Consume('<')) return Error("CONSTRUCT requires an element template");
    auto node = std::make_unique<TemplateNode>();
    node->pos = pos;
    node->kind = TemplateNode::Kind::kElement;
    NIMBLE_ASSIGN_OR_RETURN(node->tag, ParseName());

    while (true) {
      SkipWhitespace();
      if (Peek() == '>' || Peek() == '/') break;
      TemplateNode::Attr attr;
      NIMBLE_ASSIGN_OR_RETURN(attr.name, ParseName());
      SkipWhitespace();
      if (!Consume('=')) return Error("expected '=' in template attribute");
      SkipWhitespace();
      if (Peek() == '$') {
        attr.is_variable = true;
        NIMBLE_ASSIGN_OR_RETURN(attr.variable, ParseVariable());
      } else {
        NIMBLE_ASSIGN_OR_RETURN(std::string raw, ParseQuotedString());
        attr.literal = Value::Infer(raw);
      }
      node->attributes.push_back(std::move(attr));
    }
    if (Consume('/')) {
      if (!Consume('>')) return Error("expected '/>'");
      return node;
    }
    if (!Consume('>')) return Error("expected '>'");

    while (true) {
      SkipWhitespace();
      if (input_.substr(pos_, 2) == "</") {
        pos_ += 2;
        NIMBLE_ASSIGN_OR_RETURN(std::string close, ParseName());
        if (close != node->tag) {
          return Error("mismatched </" + close + "> in template");
        }
        SkipWhitespace();
        if (!Consume('>')) return Error("expected '>'");
        return node;
      }
      if (Peek() == '<') {
        NIMBLE_ASSIGN_OR_RETURN(std::unique_ptr<TemplateNode> child,
                                ParseTemplate());
        node->children.push_back(std::move(child));
        continue;
      }
      if (Peek() == '$') {
        auto var = std::make_unique<TemplateNode>();
        var->pos = Pos();
        var->kind = TemplateNode::Kind::kVariable;
        NIMBLE_ASSIGN_OR_RETURN(var->variable, ParseVariable());
        node->children.push_back(std::move(var));
        continue;
      }
      // Aggregate call: count($v), sum($v), avg($v), min($v), max($v).
      std::optional<AggregateFn> aggregate = PeekAggregateCall();
      if (aggregate.has_value()) {
        auto agg = std::make_unique<TemplateNode>();
        agg->pos = Pos();
        agg->kind = TemplateNode::Kind::kAggregate;
        agg->aggregate = *aggregate;
        // Consume "fn ( $var )".
        while (IsNameChar(Peek())) ++pos_;
        SkipWhitespace();
        Consume('(');
        NIMBLE_ASSIGN_OR_RETURN(agg->variable, ParseVariable());
        SkipWhitespace();
        if (!Consume(')')) return Error("expected ')' after aggregate");
        node->children.push_back(std::move(agg));
        continue;
      }
      if (Peek() == '\0') return Error("unterminated template");
      size_t start = pos_;
      while (pos_ < input_.size() && input_[pos_] != '<' &&
             input_[pos_] != '$') {
        ++pos_;
      }
      std::string raw = Trim(input_.substr(start, pos_ - start));
      if (!raw.empty()) {
        auto text = std::make_unique<TemplateNode>();
        text->kind = TemplateNode::Kind::kText;
        text->text = Value::String(raw);
        node->children.push_back(std::move(text));
      }
    }
  }

  /// Detects an aggregate call at the cursor without consuming it:
  /// one of count/sum/avg/min/max, optional space, '(', optional space,
  /// '$'. (Literal text that happens to look exactly like this must be
  /// escaped as CDATA in a pattern — documented limitation.)
  std::optional<AggregateFn> PeekAggregateCall() const {
    struct Entry {
      const char* word;
      AggregateFn fn;
    };
    static constexpr Entry kFns[] = {
        {"count", AggregateFn::kCount}, {"sum", AggregateFn::kSum},
        {"avg", AggregateFn::kAvg},     {"min", AggregateFn::kMin},
        {"max", AggregateFn::kMax},
    };
    for (const Entry& entry : kFns) {
      std::string_view word(entry.word);
      if (!EqualsIgnoreCase(input_.substr(pos_, word.size()), word)) continue;
      size_t cursor = pos_ + word.size();
      while (cursor < input_.size() &&
             std::isspace(static_cast<unsigned char>(input_[cursor]))) {
        ++cursor;
      }
      if (cursor >= input_.size() || input_[cursor] != '(') continue;
      ++cursor;
      while (cursor < input_.size() &&
             std::isspace(static_cast<unsigned char>(input_[cursor]))) {
        ++cursor;
      }
      if (cursor < input_.size() && input_[cursor] == '$') return entry.fn;
    }
    return std::nullopt;
  }

  // ---- Validation -----------------------------------------------------------

  /// Structural validation is shared with the engine's verifier: the parser
  /// runs the basic (non-strict, catalog-free) subset so every parse result
  /// is at least structurally sound.
  Status Validate(const Query& query) const { return AnalyzeQuery(query); }

  std::string_view input_;
  size_t pos_ = 0;
  /// Incremental line/column scan cache for Pos().
  size_t scanned_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Result<Query> ParseQuery(std::string_view text) {
  Parser parser(text);
  NIMBLE_ASSIGN_OR_RETURN(Program program, parser.ParseAll());
  if (program.branches.size() != 1) {
    return Status::ParseError(
        "UNION program passed where a single query was expected");
  }
  return std::move(program.branches[0]);
}

Result<Program> ParseProgram(std::string_view text) {
  Parser parser(text);
  return parser.ParseAll();
}

}  // namespace xmlql
}  // namespace nimble
