#ifndef NIMBLE_XMLQL_PRINTER_H_
#define NIMBLE_XMLQL_PRINTER_H_

#include <string>

#include "common/result.h"
#include "xmlql/ast.h"

namespace nimble {
namespace xmlql {

/// Renders an AST back into parseable XML-QL text. The scatter-gather
/// coordinator rewrites a parsed query (partial aggregates, sort-key
/// annotations, dropped LIMIT) and ships the rewrite to shard engines as
/// *text*, so printing must be a faithful inverse of parser.cc.
///
/// Not every AST is printable — the grammar cannot spell some values (a
/// string containing both quote characters, a double whose shortest form
/// needs an exponent, a text run containing '$'). Printing FAILS for those
/// rather than producing text that would reparse differently; callers fall
/// back to undistributed execution. As a belt-and-braces guarantee the
/// printed text is reparsed and structurally compared against the input
/// AST before it is returned, so a successful PrintProgram/PrintQuery
/// round-trips *exactly*.
Result<std::string> PrintQuery(const Query& query);
Result<std::string> PrintProgram(const Program& program);

/// Deep structural equality, ignoring source positions. Value payloads must
/// match in both type and value (Int(2) != Double(2.0)).
bool QueriesEqual(const Query& a, const Query& b);
bool ProgramsEqual(const Program& a, const Program& b);

}  // namespace xmlql
}  // namespace nimble

#endif  // NIMBLE_XMLQL_PRINTER_H_
