#ifndef NIMBLE_XMLQL_PARSER_H_
#define NIMBLE_XMLQL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "xmlql/ast.h"

namespace nimble {
namespace xmlql {

/// Parses an XML-QL query of the supported subset (see Query in ast.h).
/// The parse validates variable usage: every variable used in a condition,
/// the CONSTRUCT template, or ORDER BY must be bound by some WHERE pattern.
/// Rejects UNION programs; use ParseProgram for those.
Result<Query> ParseQuery(std::string_view text);

/// Parses a full program: `query (UNION query)*`.
Result<Program> ParseProgram(std::string_view text);

}  // namespace xmlql
}  // namespace nimble

#endif  // NIMBLE_XMLQL_PARSER_H_
