#include "xmlql/ast.h"

#include <algorithm>

namespace nimble {
namespace xmlql {

std::string SourcePos::ToString() const {
  if (!known()) return "unknown position";
  return "line " + std::to_string(line) + ", column " + std::to_string(column);
}

void ElementPattern::CollectVariables(std::vector<std::string>* out) const {
  for (const AttrPattern& attr : attributes) {
    if (attr.is_variable) out->push_back(attr.variable);
  }
  if (!content_variable.empty()) out->push_back(content_variable);
  if (!element_variable.empty()) out->push_back(element_variable);
  for (const auto& child : children) child->CollectVariables(out);
}

std::vector<std::string> Condition::Variables() const {
  std::vector<std::string> out;
  if (lhs.is_variable) out.push_back(lhs.variable);
  if (rhs.is_variable) out.push_back(rhs.variable);
  return out;
}

const char* Condition::OpName(Op op) {
  switch (op) {
    case Op::kEq:
      return "=";
    case Op::kNe:
      return "!=";
    case Op::kLt:
      return "<";
    case Op::kLe:
      return "<=";
    case Op::kGt:
      return ">";
    case Op::kGe:
      return ">=";
    case Op::kLike:
      return "LIKE";
  }
  return "?";
}

const char* AggregateFnName(AggregateFn fn) {
  switch (fn) {
    case AggregateFn::kCount:
      return "count";
    case AggregateFn::kSum:
      return "sum";
    case AggregateFn::kAvg:
      return "avg";
    case AggregateFn::kMin:
      return "min";
    case AggregateFn::kMax:
      return "max";
  }
  return "?";
}

void TemplateNode::CollectVariables(std::vector<std::string>* out) const {
  if (kind == Kind::kVariable || kind == Kind::kAggregate) {
    out->push_back(variable);
  }
  for (const Attr& attr : attributes) {
    if (attr.is_variable) out->push_back(attr.variable);
  }
  for (const auto& child : children) child->CollectVariables(out);
}

bool TemplateNode::ContainsAggregate() const {
  if (kind == Kind::kAggregate) return true;
  for (const auto& child : children) {
    if (child->ContainsAggregate()) return true;
  }
  return false;
}

void TemplateNode::CollectNonAggregateVariables(
    std::vector<std::string>* out) const {
  if (kind == Kind::kVariable) out->push_back(variable);
  for (const Attr& attr : attributes) {
    if (attr.is_variable) out->push_back(attr.variable);
  }
  for (const auto& child : children) {
    child->CollectNonAggregateVariables(out);
  }
}

void TemplateNode::CollectAggregates(
    std::vector<std::pair<AggregateFn, std::string>>* out) const {
  if (kind == Kind::kAggregate) {
    std::pair<AggregateFn, std::string> call{aggregate, variable};
    if (std::find(out->begin(), out->end(), call) == out->end()) {
      out->push_back(call);
    }
  }
  for (const auto& child : children) child->CollectAggregates(out);
}

bool Query::IsAggregation() const {
  return !group_by.empty() ||
         (construct != nullptr && construct->ContainsAggregate());
}

std::vector<std::string> Query::BoundVariables() const {
  std::vector<std::string> out;
  for (const PatternClause& pattern : patterns) {
    pattern.root.CollectVariables(&out);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace xmlql
}  // namespace nimble
