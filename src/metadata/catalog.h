#ifndef NIMBLE_METADATA_CATALOG_H_
#define NIMBLE_METADATA_CATALOG_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "connector/connector.h"
#include "metadata/fragment_map.h"
#include "metadata/statistics.h"
#include "xmlql/ast.h"

namespace nimble {
namespace metadata {

/// A mediated schema element: a named view defined by an XML-QL query over
/// sources and/or other views (global-as-view, §2.1). Views compose
/// hierarchically — "we can define successive schemas as views over other
/// underlying schemas" — so an organisation integrates incrementally.
struct MediatedView {
  std::string name;
  std::string query_text;
  std::string description;
  /// Views this view's query references (for dependency ordering).
  std::vector<std::string> view_dependencies;
  /// Sources this view touches, directly or transitively.
  std::vector<std::string> source_dependencies;
};

/// The metadata server: registry of source connectors plus the mediated
/// schema (view) definitions — "the metadata server contains the mappings
/// that allow XML-QL to be split apart and translated appropriately" (§2.1).
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a source connector under its own name.
  Status RegisterSource(std::unique_ptr<connector::Connector> source);

  connector::Connector* source(const std::string& name) const;
  std::vector<std::string> SourceNames() const;

  /// Defines a mediated view. The query text is parsed and validated now;
  /// every source and view it references must already be registered
  /// (bottom-up definition order — which also rules out cycles).
  Status DefineView(const std::string& name, const std::string& query_text,
                    const std::string& description = "");

  const MediatedView* view(const std::string& name) const;
  std::vector<std::string> ViewNames() const;

  /// All sources a view depends on, transitively through sub-views.
  /// Used by the engine for availability pre-checks and by the
  /// materialization layer for staleness cookies.
  Result<std::vector<std::string>> TransitiveSources(
      const std::string& view_name) const;

  // ---- Source-update notifications ---------------------------------------
  //
  // Writers that change a source's data (replication jobs, admin tooling,
  // tests) call NotifySourceUpdated; subscribers — the engines' result
  // caches — drop every cached answer that depended on that source.
  // Thread-safe; listeners run synchronously on the notifying thread and
  // must not call back into the catalog's listener API.

  using UpdateListener = std::function<void(const std::string& source_name)>;

  /// Registers a listener; returns a token for RemoveUpdateListener.
  uint64_t AddUpdateListener(UpdateListener listener);
  void RemoveUpdateListener(uint64_t token);

  /// Announces that `source_name`'s underlying data changed. Besides
  /// fanning out to listeners, marks the source's statistics stale (cheap
  /// incremental upkeep: the optimizer epoch advances so cached plans
  /// re-optimize, without paying for a re-Analyze on every write).
  void NotifySourceUpdated(const std::string& source_name);

  // ---- Horizontal fragmentation (DESIGN.md §2i) --------------------------

  /// Records how `map.source`:`map.collection` is split into horizontal
  /// fragments. Like RegisterSource, configure-before-serve: the partition
  /// topology (key, keying, fragment count) is fixed at setup; only the
  /// fragment *contents* move at runtime (dist::ShardCluster::Repartition).
  Status RegisterFragmentMap(FragmentMap map);

  /// The fragment map for a collection, or nullptr if it is unsharded.
  const FragmentMap* fragment_map(const std::string& source,
                                  const std::string& collection) const;

  /// Every registered fragment map (monitor/EXPLAIN enumeration).
  std::vector<const FragmentMap*> FragmentMaps() const;

  // ---- Optimizer statistics (DESIGN.md §2h) ------------------------------

  /// Per-collection statistics feeding the cost-based optimizer.
  StatisticsCatalog& statistics() { return statistics_; }
  const StatisticsCatalog& statistics() const { return statistics_; }

  /// Runs an Analyze() pass over one registered source (or all of them),
  /// sampling at most `sample_rows` records per collection (0 = all).
  Status AnalyzeSource(const std::string& source_name, size_t sample_rows = 0);
  Status AnalyzeAllSources(size_t sample_rows = 0);

 private:
  /// Configure-before-serve (see the class contract): RegisterSource and
  /// DefineView run during single-threaded setup, after which these maps
  /// are read-only — the documented exemption from GUARDED_BY in
  /// DESIGN.md section 2e.
  // nimble-lint: unguarded(configure-before-serve: RegisterSource runs during single-threaded setup)
  std::map<std::string, std::unique_ptr<connector::Connector>> sources_;
  // nimble-lint: unguarded(configure-before-serve: DefineView runs during single-threaded setup)
  std::map<std::string, MediatedView> views_;
  /// Keyed source + "\x1f" + collection; configure-before-serve like the
  /// two maps above — RegisterFragmentMap refuses overwrites, and
  /// Repartition only reads the map (it re-installs *fragments*, not maps).
  // nimble-lint: unguarded(configure-before-serve: RegisterFragmentMap refuses overwrites; Repartition only reads)
  std::map<std::string, FragmentMap> fragment_maps_;
  mutable Mutex listeners_mu_{LockRank::kCatalogListeners, "catalog.listeners"};
  uint64_t next_listener_token_ NIMBLE_GUARDED_BY(listeners_mu_) = 1;
  std::vector<std::pair<uint64_t, UpdateListener>> listeners_
      NIMBLE_GUARDED_BY(listeners_mu_);
  /// Internally synchronized (LockRank::kStatistics).
  // nimble-lint: unguarded(StatisticsCatalog is internally synchronized under LockRank::kStatistics)
  StatisticsCatalog statistics_;
};

}  // namespace metadata
}  // namespace nimble

#endif  // NIMBLE_METADATA_CATALOG_H_
