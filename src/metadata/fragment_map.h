#ifndef NIMBLE_METADATA_FRAGMENT_MAP_H_
#define NIMBLE_METADATA_FRAGMENT_MAP_H_

#include <cstddef>
#include <string>
#include <vector>

#include "xml/value.h"
#include "xmlql/ast.h"

namespace nimble {
namespace metadata {

/// How one collection is split into horizontal fragments — the catalog-side
/// description of a sharded collection (the hdk `TableFragmentsInfo` shape:
/// fragment count, keying, and per-fragment row counts). The map is pure
/// metadata: the fragment *trees* live with the shard cluster that serves
/// them; this records how a row's partition-key value maps to a fragment so
/// the coordinator can prune shards without touching data.
///
/// Keying:
///  - kHash: fragment = HashValue(key) % num_fragments. HashValue is the
///    KMV sketch hash, consistent with Value equality across the numeric
///    family, so an Int(5) probe lands where a Double(5.0) row was placed.
///  - kRange: `range_upper_bounds` holds num_fragments-1 ascending split
///    points; fragment i covers keys < range_upper_bounds[i] not covered by
///    an earlier fragment, and the last fragment is unbounded above. Null /
///    missing keys sort below every bound (Value's total order) and land in
///    fragment 0 — no special case.
struct FragmentMap {
  enum class Kind { kHash, kRange };

  std::string source;
  std::string collection;
  /// Record field the keying reads: a child element tag, or "@name" for a
  /// record attribute (the ColumnStats naming convention).
  std::string partition_key;
  Kind kind = Kind::kHash;
  size_t num_fragments = 1;
  /// kRange only: ascending exclusive upper bounds, size num_fragments-1.
  std::vector<Value> range_upper_bounds;
  /// Per-fragment row counts at partitioning time (monitor/EXPLAIN detail).
  std::vector<double> fragment_rows;

  /// Fragment the partitioner assigns a row with this key value to.
  size_t FragmentForKey(const Value& key) const;

  /// Fragments that can possibly hold a row whose partition key satisfies
  /// `key OP literal` — the shard-pruning primitive. Sound, not complete:
  /// kEq prunes under both keyings, range comparisons prune under kRange,
  /// and everything else returns all fragments.
  std::vector<size_t> FragmentsForCondition(xmlql::Condition::Op op,
                                            const Value& literal) const;

  std::vector<size_t> AllFragments() const;

  static const char* KindName(Kind kind);
};

}  // namespace metadata
}  // namespace nimble

#endif  // NIMBLE_METADATA_FRAGMENT_MAP_H_
