#include "metadata/fragment_map.h"

#include <numeric>

#include "metadata/statistics.h"

namespace nimble {
namespace metadata {

size_t FragmentMap::FragmentForKey(const Value& key) const {
  if (num_fragments <= 1) return 0;
  if (kind == Kind::kHash) {
    return static_cast<size_t>(DistinctSketch::HashValue(key) % num_fragments);
  }
  for (size_t i = 0; i < range_upper_bounds.size(); ++i) {
    if (key.Compare(range_upper_bounds[i]) < 0) return i;
  }
  return num_fragments - 1;
}

std::vector<size_t> FragmentMap::AllFragments() const {
  std::vector<size_t> all(num_fragments == 0 ? 1 : num_fragments);
  std::iota(all.begin(), all.end(), 0);
  return all;
}

std::vector<size_t> FragmentMap::FragmentsForCondition(
    xmlql::Condition::Op op, const Value& literal) const {
  using Op = xmlql::Condition::Op;
  if (num_fragments <= 1) return AllFragments();
  // A null literal matches no row under any comparison the pattern engine
  // evaluates, but "no fragments" and "all fragments" both return the empty
  // answer correctly — keep the conservative one.
  if (op == Op::kEq && !literal.is_null()) {
    return {FragmentForKey(literal)};
  }
  if (kind == Kind::kRange && !literal.is_null()) {
    size_t split = FragmentForKey(literal);
    std::vector<size_t> out;
    switch (op) {
      case Op::kLt:
        // Strict bound: fragment i holds keys in [bound[i-1], bound[i]), so
        // when the literal lands exactly on a bound, keys < literal stop one
        // fragment lower than FragmentForKey(literal) says (kLe cannot
        // tighten this way).
        for (size_t i = 0; i < range_upper_bounds.size(); ++i) {
          if (literal.Compare(range_upper_bounds[i]) <= 0) {
            split = i;
            break;
          }
        }
        [[fallthrough]];
      case Op::kLe:
        // Fragment assignment is monotone in the key, so every row with
        // key <= literal lives at or below literal's fragment.
        for (size_t i = 0; i <= split; ++i) out.push_back(i);
        return out;
      case Op::kGt:
      case Op::kGe:
        for (size_t i = split; i < num_fragments; ++i) out.push_back(i);
        return out;
      default:
        break;
    }
  }
  return AllFragments();
}

const char* FragmentMap::KindName(Kind kind) {
  switch (kind) {
    case Kind::kHash:
      return "hash";
    case Kind::kRange:
      return "range";
  }
  return "unknown";
}

}  // namespace metadata
}  // namespace nimble
