#include "metadata/statistics.h"

#include <algorithm>
#include <cmath>

#include "connector/connector.h"
#include "xml/node.h"

namespace nimble {
namespace metadata {

namespace {

/// splitmix64 finisher: turns Value::Hash()'s bucket-quality size_t into a
/// uniformly distributed 64-bit hash, which the KMV estimate depends on.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t DistinctSketch::HashValue(const Value& value) {
  // Salt by type family so Int(0)/Bool(false)/"" stay distinct, matching
  // Value::operator== (numeric family already hashes uniformly via Hash()).
  uint64_t salt = value.is_numeric() ? 2 : static_cast<uint64_t>(value.type());
  return Mix64(static_cast<uint64_t>(value.Hash()) ^ (salt * 0x9e3779b97f4a7c15ull));
}

void DistinctSketch::AddHash(uint64_t hash) {
  if (kept_.size() < k_) {
    kept_.insert(hash);
    return;
  }
  auto last = std::prev(kept_.end());
  if (hash >= *last || kept_.count(hash) > 0) return;
  kept_.erase(last);
  kept_.insert(hash);
}

double DistinctSketch::Estimate() const {
  if (kept_.size() < k_) return static_cast<double>(kept_.size());
  // R = k-th smallest hash normalized to (0, 1]; NDV ≈ (k-1)/R.
  double r = (static_cast<double>(*kept_.rbegin()) + 1.0) /
             std::pow(2.0, 64);
  if (r <= 0.0) return static_cast<double>(kept_.size());
  return (static_cast<double>(k_) - 1.0) / r;
}

void DistinctSketch::Merge(const DistinctSketch& other) {
  for (uint64_t h : other.kept_) AddHash(h);
}

double ColumnStats::distinct() const {
  return std::max(1.0, sketch.Estimate());
}

namespace {

/// Accumulates one column's statistics over the sampled records.
struct ColumnAccumulator {
  ColumnStats stats;
  size_t non_null = 0;
  bool has_prev = false;
  Value prev;
  bool ascending = true;
  bool descending = true;
  size_t duplicate_hits = 0;

  void Add(const Value& value) {
    if (value.is_null()) return;
    ++non_null;
    if (non_null == 1) {
      stats.type = value.type();
      stats.min = value;
      stats.max = value;
    } else {
      if (value < stats.min) stats.min = value;
      if (stats.max < value) stats.max = value;
    }
    if (has_prev) {
      int cmp = prev.Compare(value);
      if (cmp > 0) ascending = false;
      if (cmp < 0) descending = false;
    }
    prev = value;
    has_prev = true;
    stats.sketch.Add(value);
  }

  ColumnStats Finish(size_t sampled_records) {
    if (sampled_records > 0) {
      stats.null_fraction =
          static_cast<double>(sampled_records - non_null) /
          static_cast<double>(sampled_records);
    }
    if (non_null >= 2) {
      stats.order = ascending   ? ColumnStats::SortOrder::kAscending
                    : descending ? ColumnStats::SortOrder::kDescending
                                 : ColumnStats::SortOrder::kUnsorted;
    }
    // Uniqueness is only asserted when the sketch is exact (every sampled
    // value survived) and no duplicates were seen.
    stats.unique = non_null > 0 && stats.sketch.exact() &&
                   stats.sketch.Estimate() ==
                       static_cast<double>(non_null);
    return std::move(stats);
  }
};

/// Collects scalar fields of one record: immediate child elements with
/// scalar content (column = tag) and the record's own attributes
/// (column = "@name") — the same flat shape the SQL generator pushes down.
void CollectRecordFields(
    const Node& record,
    std::map<std::string, ColumnAccumulator>* accumulators,
    std::map<std::string, size_t>* seen_this_record) {
  for (const auto& [name, value] : record.attributes()) {
    std::string column = "@" + name;
    (*accumulators)[column].stats.name = column;
    (*accumulators)[column].Add(value);
    ++(*seen_this_record)[column];
  }
  for (const NodePtr& child : record.children()) {
    if (child == nullptr || child->is_text()) continue;
    Value scalar = child->ScalarValue();
    const std::string& column = child->name();
    (*accumulators)[column].stats.name = column;
    (*accumulators)[column].Add(scalar);
    ++(*seen_this_record)[column];
  }
}

}  // namespace

CollectionStats AnalyzeCollectionTree(const std::string& source,
                                      const std::string& collection,
                                      const Node& root, size_t sample_rows) {
  CollectionStats out;
  out.source = source;
  out.collection = collection;
  out.analyzed = true;
  out.row_count = static_cast<double>(root.children().size());

  std::map<std::string, ColumnAccumulator> accumulators;
  size_t sampled = 0;
  for (const NodePtr& record : root.children()) {
    if (record == nullptr || record->is_text()) continue;
    if (sample_rows > 0 && sampled >= sample_rows) break;
    ++sampled;
    std::map<std::string, size_t> seen;
    CollectRecordFields(*record, &accumulators, &seen);
  }
  for (auto& [name, acc] : accumulators) {
    out.columns[name] = acc.Finish(sampled);
  }
  return out;
}

CollectionStats MergeCollectionStats(std::vector<CollectionStats> parts) {
  if (parts.empty()) return CollectionStats{};
  if (parts.size() == 1) return std::move(parts[0]);

  CollectionStats out;
  out.source = parts[0].source;
  out.collection = parts[0].collection;
  out.analyzed = true;
  out.row_count = 0.0;
  for (const CollectionStats& part : parts) {
    out.row_count += std::max(part.row_count, 0.0);
    out.analyzed = out.analyzed && part.analyzed;
    out.stale = out.stale || part.stale;
  }
  // Row-weighted non-null counts first (a fragment where the column never
  // appears contributes all-null rows), then the widening detail merge.
  std::map<std::string, double> non_null_rows;
  for (const CollectionStats& part : parts) {
    const double part_rows = std::max(part.row_count, 0.0);
    for (const auto& [name, col] : part.columns) {
      non_null_rows[name] += part_rows * (1.0 - col.null_fraction);
    }
  }
  for (CollectionStats& part : parts) {
    for (auto& [name, col] : part.columns) {
      auto [it, inserted] = out.columns.try_emplace(name, std::move(col));
      if (inserted) continue;  // first sighting seeds the merged entry
      ColumnStats& merged = it->second;
      // nimble-lint: moved(try_emplace leaves col intact when the key exists)
      const ColumnStats& add = col;
      if (merged.type == ValueType::kNull) merged.type = add.type;
      if (merged.min.is_null() ||
          (!add.min.is_null() && add.min.Compare(merged.min) < 0)) {
        merged.min = add.min;
      }
      if (merged.max.is_null() ||
          (!add.max.is_null() && add.max.Compare(merged.max) > 0)) {
        merged.max = add.max;
      }
      merged.sketch.Merge(add.sketch);
    }
  }
  for (auto& [name, merged] : out.columns) {
    merged.null_fraction =
        out.row_count > 0.0
            ? std::max(0.0, 1.0 - non_null_rows[name] / out.row_count)
            : 0.0;
    merged.unique = false;  // unknowable across disjoint fragments
    merged.order = ColumnStats::SortOrder::kUnknown;
  }
  return out;
}

std::shared_ptr<const CollectionStats> StatisticsCatalog::Get(
    const std::string& source, const std::string& collection) const {
  MutexLock lock(mu_);
  auto it = stats_.find(Key(source, collection));
  return it == stats_.end() ? nullptr : it->second;
}

void StatisticsCatalog::Put(CollectionStats stats) {
  std::string key = Key(stats.source, stats.collection);
  auto shared = std::make_shared<const CollectionStats>(std::move(stats));
  {
    MutexLock lock(mu_);
    stats_[key] = std::move(shared);
  }
  BumpEpoch();
}

Status StatisticsCatalog::AnalyzeSource(connector::Connector& source,
                                        size_t sample_rows) {
  std::vector<std::pair<std::string, std::shared_ptr<const CollectionStats>>>
      fresh;
  for (const std::string& collection : source.Collections()) {
    NIMBLE_ASSIGN_OR_RETURN(NodePtr tree, source.FetchCollection(collection));
    CollectionStats stats =
        AnalyzeCollectionTree(source.name(), collection, *tree, sample_rows);
    fresh.emplace_back(
        Key(source.name(), collection),
        std::make_shared<const CollectionStats>(std::move(stats)));
  }
  {
    MutexLock lock(mu_);
    for (auto& [key, stats] : fresh) stats_[key] = std::move(stats);
  }
  BumpEpoch();
  return Status::OK();
}

bool StatisticsCatalog::RecordObservedRows(const std::string& source,
                                           const std::string& collection,
                                           double rows, double error_factor) {
  if (error_factor < 1.0) error_factor = 1.0;
  bool misestimate = false;
  {
    MutexLock lock(mu_);
    auto it = stats_.find(Key(source, collection));
    CollectionStats updated;
    if (it != stats_.end()) {
      double previous = it->second->row_count;
      misestimate =
          previous >= 0.0 &&
          (std::max(previous, 1.0) > std::max(rows, 1.0) * error_factor ||
           std::max(rows, 1.0) > std::max(previous, 1.0) * error_factor);
      updated = *it->second;
    } else {
      updated.source = source;
      updated.collection = collection;
      // First observation of an unknown collection: record it quietly so
      // the next optimization has a row count, without churning cached
      // plans that were built blind anyway.
    }
    updated.row_count = rows;
    updated.stale = false;
    stats_[Key(source, collection)] =
        std::make_shared<const CollectionStats>(std::move(updated));
  }
  if (misestimate) BumpEpoch();
  return misestimate;
}

void StatisticsCatalog::MarkSourceStale(const std::string& source) {
  bool changed = false;
  {
    MutexLock lock(mu_);
    std::string prefix = source + "\x1f";
    for (auto& [key, stats] : stats_) {
      if (key.compare(0, prefix.size(), prefix) != 0) continue;
      if (stats->stale) continue;
      CollectionStats updated = *stats;
      updated.stale = true;
      stats = std::make_shared<const CollectionStats>(std::move(updated));
      changed = true;
    }
  }
  if (changed) BumpEpoch();
}

size_t StatisticsCatalog::size() const {
  MutexLock lock(mu_);
  return stats_.size();
}

}  // namespace metadata
}  // namespace nimble
