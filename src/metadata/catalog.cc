#include "metadata/catalog.h"

#include <algorithm>
#include <set>

#include "xmlql/parser.h"

namespace nimble {
namespace metadata {

Status Catalog::RegisterSource(
    std::unique_ptr<connector::Connector> source) {
  const std::string name = source->name();
  if (sources_.count(name) > 0) {
    return Status::AlreadyExists("source '" + name + "' already registered");
  }
  if (views_.count(name) > 0) {
    return Status::AlreadyExists("'" + name + "' already names a view");
  }
  sources_[name] = std::move(source);
  return Status::OK();
}

connector::Connector* Catalog::source(const std::string& name) const {
  auto it = sources_.find(name);
  return it == sources_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Catalog::SourceNames() const {
  std::vector<std::string> names;
  names.reserve(sources_.size());
  for (const auto& [name, source] : sources_) names.push_back(name);
  return names;
}

Status Catalog::DefineView(const std::string& name,
                           const std::string& query_text,
                           const std::string& description) {
  if (views_.count(name) > 0) {
    return Status::AlreadyExists("view '" + name + "' already defined");
  }
  if (sources_.count(name) > 0) {
    return Status::AlreadyExists("'" + name + "' already names a source");
  }
  NIMBLE_ASSIGN_OR_RETURN(xmlql::Program program,
                          xmlql::ParseProgram(query_text));

  MediatedView view;
  view.name = name;
  view.query_text = query_text;
  view.description = description;

  std::vector<const xmlql::PatternClause*> all_patterns;
  for (const xmlql::Query& branch : program.branches) {
    for (const xmlql::PatternClause& pattern : branch.patterns) {
      all_patterns.push_back(&pattern);
    }
  }
  std::set<std::string> transitive_sources;
  for (const xmlql::PatternClause* pattern_ptr : all_patterns) {
    const xmlql::PatternClause& pattern = *pattern_ptr;
    if (pattern.source.is_view()) {
      const std::string& dep = pattern.source.collection;
      auto it = views_.find(dep);
      if (it == views_.end()) {
        return Status::NotFound(
            "view '" + name + "' references undefined view '" + dep +
            "' (views must be defined bottom-up)");
      }
      view.view_dependencies.push_back(dep);
      for (const std::string& src : it->second.source_dependencies) {
        transitive_sources.insert(src);
      }
    } else {
      const std::string& src = pattern.source.source;
      if (sources_.count(src) == 0) {
        return Status::NotFound("view '" + name +
                                "' references unregistered source '" + src +
                                "'");
      }
      transitive_sources.insert(src);
    }
  }
  view.source_dependencies.assign(transitive_sources.begin(),
                                  transitive_sources.end());
  views_[name] = std::move(view);
  return Status::OK();
}

const MediatedView* Catalog::view(const std::string& name) const {
  auto it = views_.find(name);
  return it == views_.end() ? nullptr : &it->second;
}

std::vector<std::string> Catalog::ViewNames() const {
  std::vector<std::string> names;
  names.reserve(views_.size());
  for (const auto& [name, view] : views_) names.push_back(name);
  return names;
}

Status Catalog::RegisterFragmentMap(FragmentMap map) {
  if (map.source.empty() || map.collection.empty() ||
      map.partition_key.empty()) {
    return Status::InvalidArgument(
        "fragment map needs source, collection and partition key");
  }
  if (map.num_fragments == 0) {
    return Status::InvalidArgument("fragment map with zero fragments");
  }
  if (map.kind == FragmentMap::Kind::kRange &&
      map.range_upper_bounds.size() + 1 != map.num_fragments) {
    return Status::InvalidArgument(
        "range fragment map needs num_fragments-1 upper bounds");
  }
  for (size_t i = 1; i < map.range_upper_bounds.size(); ++i) {
    if (map.range_upper_bounds[i - 1].Compare(map.range_upper_bounds[i]) >= 0) {
      return Status::InvalidArgument(
          "range fragment bounds must be strictly ascending");
    }
  }
  std::string key = map.source + "\x1f" + map.collection;
  if (fragment_maps_.count(key) > 0) {
    return Status::AlreadyExists("collection '" + map.source + ":" +
                                 map.collection + "' is already fragmented");
  }
  fragment_maps_.emplace(std::move(key), std::move(map));
  return Status::OK();
}

const FragmentMap* Catalog::fragment_map(const std::string& source,
                                         const std::string& collection) const {
  auto it = fragment_maps_.find(source + "\x1f" + collection);
  return it == fragment_maps_.end() ? nullptr : &it->second;
}

std::vector<const FragmentMap*> Catalog::FragmentMaps() const {
  std::vector<const FragmentMap*> maps;
  maps.reserve(fragment_maps_.size());
  for (const auto& [key, map] : fragment_maps_) maps.push_back(&map);
  return maps;
}

uint64_t Catalog::AddUpdateListener(UpdateListener listener) {
  MutexLock lock(listeners_mu_);
  uint64_t token = next_listener_token_++;
  listeners_.emplace_back(token, std::move(listener));
  return token;
}

void Catalog::RemoveUpdateListener(uint64_t token) {
  MutexLock lock(listeners_mu_);
  listeners_.erase(
      std::remove_if(listeners_.begin(), listeners_.end(),
                     [token](const auto& entry) { return entry.first == token; }),
      listeners_.end());
}

void Catalog::NotifySourceUpdated(const std::string& source_name) {
  // The statistics upkeep runs before the listener fan-out, so a listener
  // that re-plans already sees the bumped epoch.
  statistics_.MarkSourceStale(source_name);
  // Copy under the lock so a listener removing itself cannot deadlock.
  std::vector<UpdateListener> to_notify;
  {
    MutexLock lock(listeners_mu_);
    to_notify.reserve(listeners_.size());
    for (const auto& [token, listener] : listeners_) {
      to_notify.push_back(listener);
    }
  }
  for (const UpdateListener& listener : to_notify) listener(source_name);
}

Status Catalog::AnalyzeSource(const std::string& source_name,
                              size_t sample_rows) {
  connector::Connector* conn = source(source_name);
  if (conn == nullptr) {
    return Status::NotFound("no source named '" + source_name + "'");
  }
  return statistics_.AnalyzeSource(*conn, sample_rows);
}

Status Catalog::AnalyzeAllSources(size_t sample_rows) {
  for (const auto& [name, conn] : sources_) {
    NIMBLE_RETURN_IF_ERROR(statistics_.AnalyzeSource(*conn, sample_rows));
  }
  return Status::OK();
}

Result<std::vector<std::string>> Catalog::TransitiveSources(
    const std::string& view_name) const {
  const MediatedView* v = view(view_name);
  if (v == nullptr) return Status::NotFound("no view '" + view_name + "'");
  return v->source_dependencies;
}

}  // namespace metadata
}  // namespace nimble
