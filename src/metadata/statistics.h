#ifndef NIMBLE_METADATA_STATISTICS_H_
#define NIMBLE_METADATA_STATISTICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "xml/value.h"

namespace nimble {
class Node;
namespace connector {
class Connector;
}  // namespace connector

namespace metadata {

/// K-minimum-values distinct-count sketch: keeps the `k` smallest 64-bit
/// value hashes seen so far. With fewer than `k` distinct hashes the count
/// is exact; beyond that the k-th smallest hash R (normalized to [0,1])
/// estimates the distinct count as (k-1)/R, with a standard error of about
/// 1/sqrt(k-2) — under 10% at the default k for any cardinality (the
/// optimizer's accuracy budget, DESIGN.md §2h). Sketches over disjoint row
/// sets merge losslessly, which is what lets per-fragment sketches combine
/// into per-collection ones.
class DistinctSketch {
 public:
  static constexpr size_t kDefaultK = 1024;

  explicit DistinctSketch(size_t k = kDefaultK) : k_(k == 0 ? 1 : k) {}

  void AddHash(uint64_t hash);
  void Add(const Value& value) { AddHash(HashValue(value)); }

  /// Estimated number of distinct values added.
  double Estimate() const;

  /// Union with `other` (the sketch of the union of the two inputs).
  void Merge(const DistinctSketch& other);

  /// True when fewer than k distinct hashes were seen (Estimate is exact).
  bool exact() const { return kept_.size() < k_; }
  size_t k() const { return k_; }

  /// 64-bit mixed hash of a typed scalar, consistent with Value::operator==.
  static uint64_t HashValue(const Value& value);

 private:
  size_t k_;
  /// The k smallest distinct hashes, ordered.
  std::set<uint64_t> kept_;
};

/// Per-column statistics for one collection — the ToyDBMS `Column` shape
/// extended with a distinct sketch and a null fraction. "Column" means a
/// scalar field of the collection's records: a child element tag, or
/// "@name" for a record attribute.
struct ColumnStats {
  enum class SortOrder { kUnknown, kAscending, kDescending, kUnsorted };

  std::string name;
  ValueType type = ValueType::kNull;  ///< dominant non-null type.
  Value min, max;                     ///< over non-null values.
  double null_fraction = 0.0;         ///< records missing/null this column.
  bool unique = false;                ///< exact: every sampled value distinct.
  SortOrder order = SortOrder::kUnknown;
  DistinctSketch sketch;

  /// Estimated distinct count (>= 1 once any value was added).
  double distinct() const;
};

/// Per-collection statistics: row count plus per-column detail. `analyzed`
/// distinguishes a full Analyze() pass from cheap incremental upkeep
/// (observed row counts fed back by the executor); `stale` is set when a
/// DML/document-change notification arrives and cleared by the next
/// Analyze or observation.
struct CollectionStats {
  std::string source;
  std::string collection;
  double row_count = -1.0;  ///< < 0 = unknown.
  bool analyzed = false;
  bool stale = false;
  std::map<std::string, ColumnStats> columns;

  const ColumnStats* column(const std::string& name) const {
    auto it = columns.find(name);
    return it == columns.end() ? nullptr : &it->second;
  }
};

/// Builds CollectionStats from a fetched collection tree (root's children
/// are the records), sampling at most `sample_rows` records (0 = all).
/// Row count is always the full record count; per-column detail comes from
/// the sample prefix.
CollectionStats AnalyzeCollectionTree(const std::string& source,
                                      const std::string& collection,
                                      const Node& root, size_t sample_rows);

/// Combines per-fragment statistics over *disjoint* row sets into stats for
/// their union — the KMV sketches merge losslessly, row counts and null
/// fractions add, min/max widen. Cross-fragment `unique` and sort order are
/// unknowable from per-fragment detail, so they come back false/kUnknown
/// (unless there is exactly one part, which passes through untouched).
/// Source/collection labels are taken from the first part.
CollectionStats MergeCollectionStats(std::vector<CollectionStats> parts);

/// Thread-safe registry of per-collection statistics with a global epoch.
/// The epoch advances whenever stats change in a way that could flip an
/// optimizer decision (a fresh Analyze, a DML staleness notification, or an
/// executor-observed misestimate beyond the replan factor); the engine
/// folds it into plan-cache keys so plans optimized under superseded stats
/// are evicted instead of served forever (DESIGN.md §2h).
class StatisticsCatalog {
 public:
  StatisticsCatalog() = default;
  StatisticsCatalog(const StatisticsCatalog&) = delete;
  StatisticsCatalog& operator=(const StatisticsCatalog&) = delete;

  /// Snapshot of the stats for `source`:`collection`, or nullptr. The
  /// returned object is immutable and safe to read without the lock.
  std::shared_ptr<const CollectionStats> Get(
      const std::string& source, const std::string& collection) const
      NIMBLE_EXCLUDES(mu_);

  /// Installs (replaces) a collection's stats and bumps the epoch.
  void Put(CollectionStats stats) NIMBLE_EXCLUDES(mu_);

  /// Analyzes every collection of `source` through FetchCollection,
  /// sampling at most `sample_rows` records per collection. One epoch bump
  /// for the whole pass.
  Status AnalyzeSource(connector::Connector& source, size_t sample_rows)
      NIMBLE_EXCLUDES(mu_);

  /// Cheap incremental upkeep: the executor observed `rows` records in
  /// `source`:`collection`. Updates the row count in place; bumps the
  /// epoch only when a *previously known* row count was off by more than
  /// `error_factor` in either direction (a misestimate worth replanning
  /// for — first observations install quietly). Returns true when the
  /// epoch was bumped.
  bool RecordObservedRows(const std::string& source,
                          const std::string& collection, double rows,
                          double error_factor) NIMBLE_EXCLUDES(mu_);

  /// DML/document-change upkeep: marks every collection of `source` stale
  /// and bumps the epoch (wired to Catalog::NotifySourceUpdated).
  void MarkSourceStale(const std::string& source) NIMBLE_EXCLUDES(mu_);

  /// Explicit epoch bump (executor join-level misestimates).
  void BumpEpoch() { epoch_.fetch_add(1, std::memory_order_relaxed); }

  /// Monotone stats version for plan-cache keying.
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  /// Number of collections with stats (test hook).
  size_t size() const NIMBLE_EXCLUDES(mu_);

 private:
  static std::string Key(const std::string& source,
                         const std::string& collection) {
    return source + "\x1f" + collection;
  }

  mutable Mutex mu_{LockRank::kStatistics, "statistics.catalog"};
  std::map<std::string, std::shared_ptr<const CollectionStats>> stats_
      NIMBLE_GUARDED_BY(mu_);
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace metadata
}  // namespace nimble

#endif  // NIMBLE_METADATA_STATISTICS_H_
