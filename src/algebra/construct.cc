#include "algebra/construct.h"

namespace nimble {
namespace algebra {

namespace {

Status InstantiateInto(const xmlql::TemplateNode& tmpl,
                       const TupleSchema& schema, const Tuple& tuple,
                       Node* parent) {
  switch (tmpl.kind) {
    case xmlql::TemplateNode::Kind::kText:
      parent->AddChild(Node::Text(tmpl.text));
      return Status::OK();
    case xmlql::TemplateNode::Kind::kVariable: {
      std::optional<size_t> slot = schema.SlotOf(tmpl.variable);
      if (!slot.has_value()) {
        return Status::InvalidArgument("template variable $" + tmpl.variable +
                                       " not bound");
      }
      const Binding& binding = tuple[*slot];
      if (binding.is_node()) {
        parent->AddChild(binding.node()->Clone());
      } else {
        parent->AddChild(Node::Text(binding.AsScalar()));
      }
      return Status::OK();
    }
    case xmlql::TemplateNode::Kind::kAggregate: {
      // Aggregate outputs are named "<fn>_<var>" by the engine's
      // HashAggregate stage.
      std::string output = std::string(xmlql::AggregateFnName(tmpl.aggregate)) +
                           "_" + tmpl.variable;
      std::optional<size_t> slot = schema.SlotOf(output);
      if (!slot.has_value()) {
        return Status::InvalidArgument("aggregate " + output +
                                       " missing from plan output");
      }
      parent->AddChild(Node::Text(tuple[*slot].AsScalar()));
      return Status::OK();
    }
    case xmlql::TemplateNode::Kind::kElement: {
      NodePtr element = Node::Element(tmpl.tag);
      for (const xmlql::TemplateNode::Attr& attr : tmpl.attributes) {
        if (attr.is_variable) {
          std::optional<size_t> slot = schema.SlotOf(attr.variable);
          if (!slot.has_value()) {
            return Status::InvalidArgument("template variable $" +
                                           attr.variable + " not bound");
          }
          element->SetAttribute(attr.name, tuple[*slot].AsScalar());
        } else {
          element->SetAttribute(attr.name, attr.literal);
        }
      }
      Node* raw = element.get();
      parent->AddChild(std::move(element));
      for (const auto& child : tmpl.children) {
        NIMBLE_RETURN_IF_ERROR(InstantiateInto(*child, schema, tuple, raw));
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace

Result<NodePtr> InstantiateTemplate(const xmlql::TemplateNode& tmpl,
                                    const TupleSchema& schema,
                                    const Tuple& tuple) {
  NodePtr holder = Node::Element("holder");
  NIMBLE_RETURN_IF_ERROR(InstantiateInto(tmpl, schema, tuple, holder.get()));
  if (holder->children().size() != 1) {
    return Status::Internal("template instantiation produced " +
                            std::to_string(holder->children().size()) +
                            " roots");
  }
  // Detach from the holder so the caller owns a clean root.
  NodePtr result = holder->children()[0];
  holder->RemoveChild(0);
  return result;
}

Result<NodePtr> ConstructResult(Operator* plan, const xmlql::TemplateNode& tmpl,
                                const std::string& root_name) {
  NodePtr root = Node::Element(root_name);
  NIMBLE_RETURN_IF_ERROR(plan->Open());
  while (true) {
    NIMBLE_ASSIGN_OR_RETURN(std::optional<Tuple> tuple, plan->Next());
    if (!tuple.has_value()) break;
    NIMBLE_ASSIGN_OR_RETURN(NodePtr instance,
                            InstantiateTemplate(tmpl, plan->schema(), *tuple));
    root->AddChild(std::move(instance));
  }
  plan->Close();
  return root;
}

}  // namespace algebra
}  // namespace nimble
