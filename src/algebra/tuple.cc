#include "algebra/tuple.h"

namespace nimble {
namespace algebra {

bool Binding::EqualsForJoin(const Binding& other) const {
  if (is_unset() || other.is_unset()) return false;
  if (is_node() && other.is_node()) {
    // Two node bindings unify when structurally equal.
    return node_->DeepEquals(*other.node_);
  }
  const Value& a = AsScalar();
  const Value& b = other.AsScalar();
  // SQL-style semantics: null never equi-joins, not even with null.
  if (a.is_null() || b.is_null()) return false;
  return a == b;
}

std::optional<size_t> TupleSchema::SlotOf(const std::string& variable) const {
  for (size_t i = 0; i < variables_.size(); ++i) {
    if (variables_[i] == variable) return i;
  }
  return std::nullopt;
}

size_t TupleSchema::AddVariable(const std::string& variable) {
  std::optional<size_t> slot = SlotOf(variable);
  if (slot.has_value()) return *slot;
  variables_.push_back(variable);
  return variables_.size() - 1;
}

TupleSchema TupleSchema::Merge(const TupleSchema& other) const {
  TupleSchema merged = *this;
  for (const std::string& var : other.variables_) {
    merged.AddVariable(var);
  }
  return merged;
}

std::string TupleSchema::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < variables_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "$" + variables_[i];
  }
  return out + "]";
}

// ---- TupleBatch -------------------------------------------------------------

TupleBatch TupleBatch::Select(std::vector<uint32_t> selection) const {
  TupleBatch view = *this;  // shares columns_
  view.selection_ = std::move(selection);
  view.has_selection_ = true;
  return view;
}

TupleBatch TupleBatch::Slice(size_t begin, size_t count) const {
  std::vector<uint32_t> selection;
  selection.reserve(count);
  for (size_t i = begin; i < begin + count; ++i) {
    selection.push_back(static_cast<uint32_t>(PhysicalRow(i)));
  }
  return Select(std::move(selection));
}

void TupleBatch::Reserve(size_t rows) {
  assert(columns_.use_count() == 1 && "mutating shared batch storage");
  for (std::vector<Binding>& column : *columns_) column.reserve(rows);
}

void TupleBatch::AppendTuple(const Tuple& tuple) {
  assert(columns_.use_count() == 1 && "mutating shared batch storage");
  assert(tuple.size() == columns_->size());
  for (size_t slot = 0; slot < tuple.size(); ++slot) {
    (*columns_)[slot].push_back(tuple[slot]);
  }
  ++num_rows_;
}

void TupleBatch::AppendRowFrom(const TupleBatch& src, size_t i) {
  assert(columns_.use_count() == 1 && "mutating shared batch storage");
  assert(src.num_slots() == columns_->size());
  const size_t phys = src.PhysicalRow(i);
  for (size_t slot = 0; slot < columns_->size(); ++slot) {
    (*columns_)[slot].push_back(src.column(slot)[phys]);
  }
  ++num_rows_;
}

Tuple TupleBatch::MaterializeTuple(size_t i) const {
  const size_t phys = PhysicalRow(i);
  Tuple tuple;
  tuple.reserve(num_slots());
  for (size_t slot = 0; slot < num_slots(); ++slot) {
    tuple.push_back((*columns_)[slot][phys]);
  }
  return tuple;
}

TupleBatch TupleBatch::FromTuples(size_t num_slots,
                                  const std::vector<Tuple>& tuples) {
  TupleBatch batch(num_slots);
  batch.Reserve(tuples.size());
  for (const Tuple& tuple : tuples) {
    // Tolerates ragged input: a tuple shorter than the schema leaves its
    // missing columns short, which the plan verifier reports (I12) rather
    // than this constructor silently papering over a compiler bug.
    const size_t n = std::min(num_slots, tuple.size());
    for (size_t slot = 0; slot < n; ++slot) {
      (*batch.columns_)[slot].push_back(tuple[slot]);
    }
    ++batch.num_rows_;
  }
  return batch;
}

size_t HashSlots(const Tuple& tuple, const std::vector<size_t>& slots) {
  size_t h = 0xcbf29ce484222325ULL;
  for (size_t slot : slots) {
    h ^= tuple[slot].Hash();
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool SlotsEqual(const Tuple& a, const std::vector<size_t>& slots_a,
                const Tuple& b, const std::vector<size_t>& slots_b) {
  if (slots_a.size() != slots_b.size()) return false;
  for (size_t i = 0; i < slots_a.size(); ++i) {
    if (!a[slots_a[i]].EqualsForJoin(b[slots_b[i]])) return false;
  }
  return true;
}

size_t HashBatchSlots(const TupleBatch& batch, size_t i,
                      const std::vector<size_t>& slots) {
  const size_t phys = batch.PhysicalRow(i);
  size_t h = 0xcbf29ce484222325ULL;
  for (size_t slot : slots) {
    h ^= batch.column(slot)[phys].Hash();
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool BatchSlotsEqual(const TupleBatch& a, size_t ai,
                     const std::vector<size_t>& slots_a, const TupleBatch& b,
                     size_t bi, const std::vector<size_t>& slots_b) {
  if (slots_a.size() != slots_b.size()) return false;
  const size_t pa = a.PhysicalRow(ai);
  const size_t pb = b.PhysicalRow(bi);
  for (size_t i = 0; i < slots_a.size(); ++i) {
    if (!a.column(slots_a[i])[pa].EqualsForJoin(b.column(slots_b[i])[pb])) {
      return false;
    }
  }
  return true;
}

}  // namespace algebra
}  // namespace nimble
