#include "algebra/tuple.h"

namespace nimble {
namespace algebra {

Value Binding::AsScalar() const {
  switch (kind_) {
    case Kind::kUnset:
      return Value::Null();
    case Kind::kScalar:
      return scalar_;
    case Kind::kNode:
      return node_->ScalarValue();
  }
  return Value::Null();
}

bool Binding::EqualsForJoin(const Binding& other) const {
  if (is_unset() || other.is_unset()) return false;
  if (is_node() && other.is_node()) {
    // Two node bindings unify when structurally equal.
    return node_->DeepEquals(*other.node_);
  }
  Value a = AsScalar();
  Value b = other.AsScalar();
  // SQL-style semantics: null never equi-joins, not even with null.
  if (a.is_null() || b.is_null()) return false;
  return a == b;
}

std::optional<size_t> TupleSchema::SlotOf(const std::string& variable) const {
  for (size_t i = 0; i < variables_.size(); ++i) {
    if (variables_[i] == variable) return i;
  }
  return std::nullopt;
}

size_t TupleSchema::AddVariable(const std::string& variable) {
  std::optional<size_t> slot = SlotOf(variable);
  if (slot.has_value()) return *slot;
  variables_.push_back(variable);
  return variables_.size() - 1;
}

TupleSchema TupleSchema::Merge(const TupleSchema& other) const {
  TupleSchema merged = *this;
  for (const std::string& var : other.variables_) {
    merged.AddVariable(var);
  }
  return merged;
}

std::string TupleSchema::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < variables_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "$" + variables_[i];
  }
  return out + "]";
}

size_t HashSlots(const Tuple& tuple, const std::vector<size_t>& slots) {
  size_t h = 0xcbf29ce484222325ULL;
  for (size_t slot : slots) {
    h ^= tuple[slot].Hash();
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool SlotsEqual(const Tuple& a, const std::vector<size_t>& slots_a,
                const Tuple& b, const std::vector<size_t>& slots_b) {
  if (slots_a.size() != slots_b.size()) return false;
  for (size_t i = 0; i < slots_a.size(); ++i) {
    if (!a[slots_a[i]].EqualsForJoin(b[slots_b[i]])) return false;
  }
  return true;
}

}  // namespace algebra
}  // namespace nimble
