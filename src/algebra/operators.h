#ifndef NIMBLE_ALGEBRA_OPERATORS_H_
#define NIMBLE_ALGEBRA_OPERATORS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "algebra/tuple.h"
#include "common/result.h"
#include "xmlql/ast.h"

namespace nimble {
namespace algebra {

/// A condition with variable references resolved to tuple slots.
struct BoundCondition {
  xmlql::Condition::Op op = xmlql::Condition::Op::kEq;
  int lhs_slot = -1;  ///< -1 means literal.
  Value lhs_literal;
  int rhs_slot = -1;
  Value rhs_literal;

  /// Resolves a parsed condition against `schema`.
  static Result<BoundCondition> Bind(const xmlql::Condition& condition,
                                     const TupleSchema& schema);

  bool Evaluate(const Tuple& tuple) const;

  /// Evaluates against active row `i` of `batch` without materializing a
  /// tuple (the vectorized Filter path).
  bool EvaluateAt(const TupleBatch& batch, size_t i) const;
};

/// Deadline/cancellation probe threaded into a plan before it drains
/// (DESIGN.md §2b): returns OK while the query may keep running, Cancelled
/// or Timeout otherwise. The engine installs one backed by its per-query
/// ExecutionContext; the algebra layer stays ignorant of core:: types so
/// the dependency arrow keeps pointing core → algebra.
using CancelProbe = std::function<Status()>;

/// Batch-at-a-time Volcano iterator. Open() may do bulk work (builds,
/// sorts); NextBatch() yields column-major TupleBatches of up to
/// batch_size() active rows until nullopt. Operators own their children.
///
/// The paper deliberately ships only a *physical* algebra (§3.1): query
/// plans are built directly in terms of these operators, with no logical
/// algebra in between. The iteration model is vectorized (DESIGN.md §2g):
/// predicates shrink a selection vector over shared column storage, joins
/// build and probe in batch, and a thin row adapter (`Next()`) keeps
/// tuple-at-a-time callers (CONSTRUCT, tests, tools) working unchanged.
class Operator {
 public:
  /// Default rows per batch; EngineOptions::batch_size overrides per plan.
  static constexpr size_t kDefaultBatchSize = 1024;

  virtual ~Operator() = default;

  virtual const TupleSchema& schema() const = 0;
  virtual std::string label() const = 0;

  /// Resets iteration state (including the row adapter and the batch
  /// counters) and performs the operator's bulk work.
  Status Open();

  /// Yields the next non-empty batch, or nullopt at end of stream. The
  /// returned batch never has more than batch_size() active rows.
  Result<std::optional<TupleBatch>> NextBatch();

  /// Row adapter over NextBatch(): yields one tuple at a time so
  /// tuple-oriented callers migrate without a flag day. Mixing Next() and
  /// NextBatch() on the same operator between Open/Close is not supported.
  Result<std::optional<Tuple>> Next();

  void Close();

  /// Indented plan tree rendering (for EXPLAIN-style output).
  std::string Describe(int indent = 0) const;

  /// Like Describe(), with per-operator execution counters appended
  /// ("{batches=N, rows=M}"). Meaningful after the plan has been drained;
  /// counters reset on Open().
  std::string DescribeWithStats(int indent = 0) const;

  /// Drains the operator: Open, collect all tuples, Close.
  Result<std::vector<Tuple>> Drain();

  /// Rows per emitted batch; applied to this operator and all children.
  /// Clamped to at least 1.
  void SetBatchSize(size_t rows);
  size_t batch_size() const { return batch_size_; }

  /// Installs the deadline/cancellation probe on this operator and all
  /// children. Every operator polls it between batches (and inside its
  /// unbounded drain loops — lint rule NL006 enforces this), so a
  /// cancelled or expired query stops mid-drain instead of running the
  /// plan to completion. A null probe (the default) never cancels.
  void SetCancelProbe(CancelProbe probe);

  /// Batches / rows this operator has emitted since Open().
  size_t batches_produced() const { return batches_produced_; }
  size_t rows_produced() const { return rows_produced_; }

  /// Optimizer cardinality annotation (DESIGN.md §2h): the estimated output
  /// rows the cost-based planner chose this operator under. Unset (< 0) on
  /// plans built by the legacy heuristic. Rendered by DescribeWithStats as
  /// `est_rows=` next to the actual `rows=` so misestimates are visible in
  /// EXPLAIN, and checked for internal consistency by verifier invariant
  /// I13. Survives Open()/Close() — it describes the plan, not a run.
  void set_estimated_rows(double rows) { estimated_rows_ = rows; }
  double estimated_rows() const { return estimated_rows_; }
  bool has_estimated_rows() const { return estimated_rows_ >= 0.0; }

  /// Read-only child views, in input order (left before right). Used by
  /// Describe and the plan verifier.
  const std::vector<const Operator*>& children() const {
    return children_views_;
  }

 protected:
  virtual Status DoOpen() = 0;
  /// May return empty batches; the NextBatch() wrapper skips them.
  virtual Result<std::optional<TupleBatch>> DoNextBatch() = 0;
  virtual void DoClose() = 0;

  /// Deadline/cancellation poll for DoOpen/DoNextBatch drain loops: OK
  /// while the query may keep running, Cancelled/Timeout otherwise.
  /// Cheap when no probe is installed (one branch).
  Status PollCancel() const {
    return cancel_probe_ ? cancel_probe_() : Status::OK();
  }

  /// Registers `child` for Describe/verify and batch-size propagation.
  void AddChild(Operator* child) {
    children_views_.push_back(child);
    children_.push_back(child);
  }

  std::vector<const Operator*> children_views_;  ///< for Describe/verify.

 private:
  std::string DescribeImpl(int indent, bool with_stats) const;

  std::vector<Operator*> children_;  ///< for SetBatchSize propagation.
  size_t batch_size_ = kDefaultBatchSize;
  CancelProbe cancel_probe_;  ///< null = never cancels.
  size_t batches_produced_ = 0;
  size_t rows_produced_ = 0;
  double estimated_rows_ = -1.0;  ///< < 0 = no cost annotation.
  /// Row-adapter state.
  std::optional<TupleBatch> adapter_batch_;
  size_t adapter_pos_ = 0;
};

/// Leaf yielding a pre-materialized columnar table (the output of pattern
/// matching a fetched collection, or of a pushed-down SQL fragment).
/// Row-major tuple input is transposed once at construction; emitted
/// batches are zero-copy views (shared columns + a selection window).
class MaterializedScan : public Operator {
 public:
  MaterializedScan(TupleSchema schema, std::vector<Tuple> tuples,
                   std::string source_label = "materialized");
  /// Columnar construction: `data` must have one column per schema slot.
  MaterializedScan(TupleSchema schema, TupleBatch data,
                   std::string source_label = "materialized");

  const TupleSchema& schema() const override { return schema_; }
  std::string label() const override;

  /// The backing column store (full table, no selection).
  const TupleBatch& data() const { return data_; }
  size_t tuple_count() const { return data_.num_rows(); }

 protected:
  Status DoOpen() override {
    position_ = 0;
    return Status::OK();
  }
  Result<std::optional<TupleBatch>> DoNextBatch() override;
  void DoClose() override {}

 private:
  TupleSchema schema_;
  TupleBatch data_;
  size_t position_ = 0;
  std::string source_label_;
};

/// σ: drops tuples failing any bound condition. Vectorized: evaluates the
/// conditions over the child batch's columns and emits the same batch with
/// a shrunk selection vector — survivors are never copied.
class Filter : public Operator {
 public:
  Filter(std::unique_ptr<Operator> child, std::vector<BoundCondition> conds);

  const TupleSchema& schema() const override { return child_->schema(); }
  std::string label() const override;

  const std::vector<BoundCondition>& conditions() const { return conditions_; }

 protected:
  Status DoOpen() override { return child_->Open(); }
  Result<std::optional<TupleBatch>> DoNextBatch() override;
  void DoClose() override { child_->Close(); }

 private:
  std::unique_ptr<Operator> child_;
  std::vector<BoundCondition> conditions_;
};

/// ⋈: hash join on the variables shared between the two inputs (natural
/// join over variable names — XML-QL joins are expressed by repeating a
/// variable across patterns). The build side is compacted into one column
/// store with a chained hash table (head/next index arrays); probing
/// consumes the other side's batches and emits combined rows in batch.
/// Historically the build side was always the right input; the cost-based
/// optimizer passes `build_left` when the left is estimated smaller
/// (DESIGN.md §2h). Output schema and combine semantics ("right binding
/// wins" on shared slots) are independent of the build side — only the
/// emission order (probe-major) and the memory footprint change.
class HashJoin : public Operator {
 public:
  HashJoin(std::unique_ptr<Operator> left, std::unique_ptr<Operator> right,
           bool build_left = false);

  const TupleSchema& schema() const override { return schema_; }
  std::string label() const override;

  const std::vector<std::string>& join_variables() const {
    return join_variables_;
  }
  const std::vector<size_t>& left_key_slots() const { return left_key_slots_; }
  const std::vector<size_t>& right_key_slots() const {
    return right_key_slots_;
  }
  bool build_left() const { return build_left_; }

 protected:
  Status DoOpen() override;
  Result<std::optional<TupleBatch>> DoNextBatch() override;
  void DoClose() override;

 private:
  static constexpr uint32_t kNone = 0xffffffffu;

  Operator* build_input() const { return build_left_ ? left_.get() : right_.get(); }
  Operator* probe_input() const { return build_left_ ? right_.get() : left_.get(); }
  const std::vector<size_t>& build_key_slots() const {
    return build_left_ ? left_key_slots_ : right_key_slots_;
  }
  const std::vector<size_t>& probe_key_slots() const {
    return build_left_ ? right_key_slots_ : left_key_slots_;
  }

  /// Appends probe row `i` combined with build row `build_row` to `out`.
  void AppendJoined(const TupleBatch& probe, size_t i, uint32_t build_row,
                    TupleBatch* out) const;
  /// Positions chain_ at the bucket head for probe row `i`.
  void StartChain(size_t i);

  std::unique_ptr<Operator> left_;
  std::unique_ptr<Operator> right_;
  bool build_left_ = false;
  TupleSchema schema_;
  std::vector<std::string> join_variables_;
  std::vector<size_t> left_key_slots_;
  std::vector<size_t> right_key_slots_;
  /// right-slot → output-slot mapping.
  std::vector<size_t> right_output_slots_;
  /// output-slot → (side, source column): side 0 = left, 1 = right. Shared
  /// variables resolve to the right side, preserving the historical
  /// "right binding wins" combine semantics.
  std::vector<std::pair<int, size_t>> slot_source_;

  TupleBatch build_;                ///< compacted build side.
  std::vector<uint32_t> heads_;     ///< bucket heads (kNone = empty).
  std::vector<uint32_t> next_;      ///< chain links per build row.
  size_t bucket_mask_ = 0;
  std::optional<TupleBatch> probe_;  ///< current left batch.
  size_t probe_row_ = 0;             ///< active-row cursor into probe_.
  uint32_t chain_ = kNone;           ///< next build candidate for probe_row_.
};

/// Nested-loop join for inputs with no shared variables (cartesian) or
/// with extra non-equi conditions. Right side is materialized (columnar)
/// on Open; conditions are evaluated against the pair's columns directly,
/// so rejected combinations are never materialized.
class NestedLoopJoin : public Operator {
 public:
  NestedLoopJoin(std::unique_ptr<Operator> left,
                 std::unique_ptr<Operator> right,
                 std::vector<BoundCondition> conditions_on_output);

  const TupleSchema& schema() const override { return schema_; }
  std::string label() const override { return "NestedLoopJoin"; }

  const std::vector<BoundCondition>& conditions() const { return conditions_; }

 protected:
  Status DoOpen() override;
  Result<std::optional<TupleBatch>> DoNextBatch() override;
  void DoClose() override;

 private:
  /// Binding at output slot `slot` for the pair (probe row i, right row r).
  const Binding& BindingAt(size_t slot, const TupleBatch& probe, size_t i,
                           size_t r) const;

  std::unique_ptr<Operator> left_;
  std::unique_ptr<Operator> right_;
  TupleSchema schema_;
  std::vector<size_t> right_output_slots_;
  /// output-slot → (side, source column), as in HashJoin.
  std::vector<std::pair<int, size_t>> slot_source_;
  std::vector<BoundCondition> conditions_;

  TupleBatch right_data_;            ///< compacted right side.
  std::optional<TupleBatch> probe_;  ///< current left batch.
  size_t probe_row_ = 0;
  size_t right_pos_ = 0;
};

/// Sort by variables (stable; document order preserved among equals —
/// XML ordering, §4). Materializes the child into one column store, sorts
/// a permutation vector, and emits zero-copy selection views in sorted
/// order.
class Sort : public Operator {
 public:
  struct Key {
    size_t slot;
    bool descending;
  };

  Sort(std::unique_ptr<Operator> child, std::vector<Key> keys);

  const TupleSchema& schema() const override { return child_->schema(); }
  std::string label() const override { return "Sort"; }

  const std::vector<Key>& keys() const { return keys_; }

 protected:
  Status DoOpen() override;
  Result<std::optional<TupleBatch>> DoNextBatch() override;
  void DoClose() override;

 private:
  std::unique_ptr<Operator> child_;
  std::vector<Key> keys_;
  TupleBatch data_;                   ///< compacted child output.
  std::vector<uint32_t> order_;       ///< physical rows in sorted order.
  size_t position_ = 0;
};

/// Emits at most `limit` tuples; pass-through batches are trimmed by
/// slicing the selection window, never copied.
class Limit : public Operator {
 public:
  Limit(std::unique_ptr<Operator> child, size_t limit);

  const TupleSchema& schema() const override { return child_->schema(); }
  std::string label() const override;
  size_t limit() const { return limit_; }

 protected:
  Status DoOpen() override {
    emitted_ = 0;
    return child_->Open();
  }
  Result<std::optional<TupleBatch>> DoNextBatch() override;
  void DoClose() override { child_->Close(); }

 private:
  std::unique_ptr<Operator> child_;
  size_t limit_;
  size_t emitted_ = 0;
};

/// γ: hash aggregation. Groups by `group_variables`, computes one
/// aggregate per spec into a fresh output variable. Not reachable from the
/// XML-QL surface subset but part of the physical algebra (the paper's
/// engine is "equivalent to a standard SQL query engine", §4) and used by
/// the frontend and benchmarks. Vectorized: one pass over the child's
/// batches updates per-group accumulators column by column — input rows
/// are never buffered.
class HashAggregate : public Operator {
 public:
  enum class Fn { kCount, kSum, kMin, kMax, kAvg };

  struct Spec {
    Fn fn;
    std::string input_variable;   ///< ignored for kCount.
    std::string output_variable;
  };

  HashAggregate(std::unique_ptr<Operator> child,
                std::vector<std::string> group_variables,
                std::vector<Spec> specs);

  const TupleSchema& schema() const override { return schema_; }
  std::string label() const override { return "HashAggregate"; }

  const std::vector<std::string>& group_variables() const {
    return group_variables_;
  }
  const std::vector<Spec>& specs() const { return specs_; }

 protected:
  Status DoOpen() override;
  Result<std::optional<TupleBatch>> DoNextBatch() override;
  void DoClose() override;

 private:
  std::unique_ptr<Operator> child_;
  std::vector<std::string> group_variables_;
  std::vector<Spec> specs_;
  TupleSchema schema_;
  TupleBatch results_;  ///< one row per group, first-appearance order.
  size_t position_ = 0;
};

}  // namespace algebra
}  // namespace nimble

#endif  // NIMBLE_ALGEBRA_OPERATORS_H_
