#ifndef NIMBLE_ALGEBRA_OPERATORS_H_
#define NIMBLE_ALGEBRA_OPERATORS_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algebra/tuple.h"
#include "common/result.h"
#include "xmlql/ast.h"

namespace nimble {
namespace algebra {

/// A condition with variable references resolved to tuple slots.
struct BoundCondition {
  xmlql::Condition::Op op = xmlql::Condition::Op::kEq;
  int lhs_slot = -1;  ///< -1 means literal.
  Value lhs_literal;
  int rhs_slot = -1;
  Value rhs_literal;

  /// Resolves a parsed condition against `schema`.
  static Result<BoundCondition> Bind(const xmlql::Condition& condition,
                                     const TupleSchema& schema);

  bool Evaluate(const Tuple& tuple) const;
};

/// Volcano-style iterator. Open() may do bulk work (builds, sorts);
/// Next() yields tuples until nullopt. Operators own their children.
///
/// The paper deliberately ships only a *physical* algebra (§3.1): query
/// plans are built directly in terms of these operators, with no logical
/// algebra in between.
class Operator {
 public:
  virtual ~Operator() = default;

  virtual const TupleSchema& schema() const = 0;
  virtual Status Open() = 0;
  virtual Result<std::optional<Tuple>> Next() = 0;
  virtual void Close() = 0;

  /// Operator name plus parameters, e.g. "HashJoin($id)".
  virtual std::string label() const = 0;

  /// Indented plan tree rendering (for EXPLAIN-style output).
  std::string Describe(int indent = 0) const;

  /// Drains the operator: Open, collect all tuples, Close.
  Result<std::vector<Tuple>> Drain();

  /// Read-only child views, in input order (left before right). Used by
  /// Describe and the plan verifier.
  const std::vector<const Operator*>& children() const {
    return children_views_;
  }

 protected:
  std::vector<const Operator*> children_views_;  ///< for Describe/verify.
};

/// Leaf yielding a pre-materialized tuple vector (the output of pattern
/// matching a fetched collection, or of a pushed-down SQL fragment).
class MaterializedScan : public Operator {
 public:
  MaterializedScan(TupleSchema schema, std::vector<Tuple> tuples,
                   std::string source_label = "materialized");

  const TupleSchema& schema() const override { return schema_; }
  Status Open() override {
    position_ = 0;
    return Status::OK();
  }
  Result<std::optional<Tuple>> Next() override;
  void Close() override {}
  std::string label() const override;

  const std::vector<Tuple>& tuples() const { return tuples_; }

 private:
  TupleSchema schema_;
  std::vector<Tuple> tuples_;
  size_t position_ = 0;
  std::string source_label_;
};

/// σ: drops tuples failing any bound condition.
class Filter : public Operator {
 public:
  Filter(std::unique_ptr<Operator> child, std::vector<BoundCondition> conds);

  const TupleSchema& schema() const override { return child_->schema(); }
  Status Open() override { return child_->Open(); }
  Result<std::optional<Tuple>> Next() override;
  void Close() override { child_->Close(); }
  std::string label() const override;

  const std::vector<BoundCondition>& conditions() const { return conditions_; }

 private:
  std::unique_ptr<Operator> child_;
  std::vector<BoundCondition> conditions_;
};

/// ⋈: hash join on the variables shared between the two inputs (natural
/// join over variable names — XML-QL joins are expressed by repeating a
/// variable across patterns). Builds on the right input.
class HashJoin : public Operator {
 public:
  HashJoin(std::unique_ptr<Operator> left, std::unique_ptr<Operator> right);

  const TupleSchema& schema() const override { return schema_; }
  Status Open() override;
  Result<std::optional<Tuple>> Next() override;
  void Close() override;
  std::string label() const override;

  const std::vector<std::string>& join_variables() const {
    return join_variables_;
  }
  const std::vector<size_t>& left_key_slots() const { return left_key_slots_; }
  const std::vector<size_t>& right_key_slots() const {
    return right_key_slots_;
  }

 private:
  Tuple Combine(const Tuple& left, const Tuple& right) const;

  std::unique_ptr<Operator> left_;
  std::unique_ptr<Operator> right_;
  TupleSchema schema_;
  std::vector<std::string> join_variables_;
  std::vector<size_t> left_key_slots_;
  std::vector<size_t> right_key_slots_;
  /// right-slot → output-slot mapping.
  std::vector<size_t> right_output_slots_;

  std::vector<std::vector<Tuple>> hash_buckets_;
  std::optional<Tuple> current_left_;
  const std::vector<Tuple>* current_bucket_ = nullptr;
  size_t bucket_pos_ = 0;
};

/// Nested-loop join for inputs with no shared variables (cartesian) or
/// with extra non-equi conditions. Right side is materialized on Open.
class NestedLoopJoin : public Operator {
 public:
  NestedLoopJoin(std::unique_ptr<Operator> left,
                 std::unique_ptr<Operator> right,
                 std::vector<BoundCondition> conditions_on_output);

  const TupleSchema& schema() const override { return schema_; }
  Status Open() override;
  Result<std::optional<Tuple>> Next() override;
  void Close() override;
  std::string label() const override { return "NestedLoopJoin"; }

  const std::vector<BoundCondition>& conditions() const { return conditions_; }

 private:
  Tuple Combine(const Tuple& left, const Tuple& right) const;

  std::unique_ptr<Operator> left_;
  std::unique_ptr<Operator> right_;
  TupleSchema schema_;
  std::vector<size_t> right_output_slots_;
  std::vector<BoundCondition> conditions_;
  std::vector<Tuple> right_rows_;
  std::optional<Tuple> current_left_;
  size_t right_pos_ = 0;
};

/// Sort by variables (stable; document order preserved among equals —
/// XML ordering, §4).
class Sort : public Operator {
 public:
  struct Key {
    size_t slot;
    bool descending;
  };

  Sort(std::unique_ptr<Operator> child, std::vector<Key> keys);

  const TupleSchema& schema() const override { return child_->schema(); }
  Status Open() override;
  Result<std::optional<Tuple>> Next() override;
  void Close() override;
  std::string label() const override { return "Sort"; }

  const std::vector<Key>& keys() const { return keys_; }

 private:
  std::unique_ptr<Operator> child_;
  std::vector<Key> keys_;
  std::vector<Tuple> sorted_;
  size_t position_ = 0;
};

/// Emits at most `limit` tuples.
class Limit : public Operator {
 public:
  Limit(std::unique_ptr<Operator> child, size_t limit);

  const TupleSchema& schema() const override { return child_->schema(); }
  Status Open() override {
    emitted_ = 0;
    return child_->Open();
  }
  Result<std::optional<Tuple>> Next() override;
  void Close() override { child_->Close(); }
  std::string label() const override;

 private:
  std::unique_ptr<Operator> child_;
  size_t limit_;
  size_t emitted_ = 0;
};

/// γ: hash aggregation. Groups by `group_variables`, computes one
/// aggregate per spec into a fresh output variable. Not reachable from the
/// XML-QL surface subset but part of the physical algebra (the paper's
/// engine is "equivalent to a standard SQL query engine", §4) and used by
/// the frontend and benchmarks.
class HashAggregate : public Operator {
 public:
  enum class Fn { kCount, kSum, kMin, kMax, kAvg };

  struct Spec {
    Fn fn;
    std::string input_variable;   ///< ignored for kCount.
    std::string output_variable;
  };

  HashAggregate(std::unique_ptr<Operator> child,
                std::vector<std::string> group_variables,
                std::vector<Spec> specs);

  const TupleSchema& schema() const override { return schema_; }
  Status Open() override;
  Result<std::optional<Tuple>> Next() override;
  void Close() override;
  std::string label() const override { return "HashAggregate"; }

  const std::vector<std::string>& group_variables() const {
    return group_variables_;
  }
  const std::vector<Spec>& specs() const { return specs_; }

 private:
  std::unique_ptr<Operator> child_;
  std::vector<std::string> group_variables_;
  std::vector<Spec> specs_;
  TupleSchema schema_;
  std::vector<Tuple> results_;
  size_t position_ = 0;
};

}  // namespace algebra
}  // namespace nimble

#endif  // NIMBLE_ALGEBRA_OPERATORS_H_
