#ifndef NIMBLE_ALGEBRA_TUPLE_H_
#define NIMBLE_ALGEBRA_TUPLE_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "xml/node.h"
#include "xml/value.h"

namespace nimble {
namespace algebra {

/// One variable binding: unset, a typed scalar, or an XML node (bound via
/// ELEMENT_AS). The physical algebra flows tuples of bindings between
/// operators — this is the "slightly more structured" representation the
/// paper's algebra operates on (§3.1): relational rows and tree fragments
/// share one runtime value type.
///
/// The scalar view (node → ScalarValue(), unset → null) is computed once at
/// construction and cached, so the join/aggregate hot path never allocates a
/// fresh Value per Hash()/AsScalar() call.
class Binding {
 public:
  Binding() : kind_(Kind::kUnset) {}
  explicit Binding(Value scalar)
      : kind_(Kind::kScalar), scalar_(std::move(scalar)) {}
  explicit Binding(NodePtr node) : kind_(Kind::kNode), node_(std::move(node)) {
    if (node_ != nullptr) scalar_ = node_->ScalarValue();
  }

  bool is_unset() const { return kind_ == Kind::kUnset; }
  bool is_scalar() const { return kind_ == Kind::kScalar; }
  bool is_node() const { return kind_ == Kind::kNode; }

  const Value& scalar() const { return scalar_; }
  const NodePtr& node() const { return node_; }

  /// Scalar view: scalars pass through; nodes yield their ScalarValue();
  /// unset yields null. Used by predicates, sorts and joins. Returns a
  /// reference to the cached view — no per-call Value copy.
  const Value& AsScalar() const { return scalar_; }

  /// Equality for unification and join keys: scalar-to-scalar compares
  /// values (node bindings compare by ScalarValue too, so a node can join
  /// with a scalar).
  bool EqualsForJoin(const Binding& other) const;

  size_t Hash() const { return scalar_.Hash(); }

 private:
  enum class Kind { kUnset, kScalar, kNode };
  Kind kind_;
  Value scalar_;  ///< cached scalar view for every kind (null when unset).
  NodePtr node_;
};

/// A tuple of bindings, positionally aligned with a TupleSchema.
using Tuple = std::vector<Binding>;

/// Maps variable names to tuple slots.
class TupleSchema {
 public:
  TupleSchema() = default;
  explicit TupleSchema(std::vector<std::string> variables)
      : variables_(std::move(variables)) {}

  const std::vector<std::string>& variables() const { return variables_; }
  size_t size() const { return variables_.size(); }

  std::optional<size_t> SlotOf(const std::string& variable) const;

  /// Adds `variable` if absent; returns its slot either way.
  size_t AddVariable(const std::string& variable);

  /// Schema with this schema's variables followed by `other`'s variables
  /// that are not already present (join output shape).
  TupleSchema Merge(const TupleSchema& other) const;

  bool operator==(const TupleSchema& other) const {
    return variables_ == other.variables_;
  }

  std::string ToString() const;

 private:
  std::vector<std::string> variables_;
};

/// A batch of tuples in column-major layout: one Binding vector per schema
/// slot, plus an optional selection vector naming the live rows. This is
/// the unit of data flow in the vectorized physical algebra (DESIGN.md
/// §2g): operators amortize virtual dispatch over `batch_size` rows,
/// predicates shrink the selection vector instead of copying survivors, and
/// column storage is shared (never copied) between a scan and the
/// pass-through operators above it.
///
/// Storage is a shared, immutable-once-shared column set. Builders append
/// through the mutating API while they hold the only reference; Filter and
/// Slice/Select produce cheap views that re-select rows of the same
/// columns. `num_rows()` is the physical row count of the columns;
/// `size()` is the active row count after selection.
class TupleBatch {
 public:
  TupleBatch() : columns_(std::make_shared<ColumnSet>()) {}
  explicit TupleBatch(size_t num_slots)
      : columns_(std::make_shared<ColumnSet>(num_slots)) {}

  size_t num_slots() const { return columns_->size(); }
  /// Physical rows held by the columns.
  size_t num_rows() const { return num_rows_; }
  /// Active rows (selection applied).
  size_t size() const {
    return has_selection_ ? selection_.size() : num_rows_;
  }
  bool empty() const { return size() == 0; }

  const std::vector<Binding>& column(size_t slot) const {
    return (*columns_)[slot];
  }

  /// Physical row index of active row `i`.
  size_t PhysicalRow(size_t i) const {
    return has_selection_ ? selection_[i] : i;
  }

  /// Binding at (slot, active row i).
  const Binding& binding(size_t slot, size_t i) const {
    return (*columns_)[slot][PhysicalRow(i)];
  }

  bool has_selection() const { return has_selection_; }
  const std::vector<uint32_t>& selection() const { return selection_; }

  /// Replaces this batch's selection (indices are *physical* rows). Used by
  /// Filter: the columns are untouched and stay shared.
  void SetSelection(std::vector<uint32_t> selection) {
    selection_ = std::move(selection);
    has_selection_ = true;
  }

  /// A view of the same columns restricted to `selection` (physical rows,
  /// in the desired logical order — Sort uses an arbitrary permutation).
  TupleBatch Select(std::vector<uint32_t> selection) const;

  /// A view of active rows [begin, begin + count).
  TupleBatch Slice(size_t begin, size_t count) const;

  // --- Builder API: requires sole ownership of the column storage -------

  /// Reserves capacity for `rows` in every column.
  void Reserve(size_t rows);

  std::vector<Binding>& MutableColumn(size_t slot) {
    assert(columns_.use_count() == 1 && "mutating shared batch storage");
    return (*columns_)[slot];
  }

  /// Appends a row-major tuple (arity must equal num_slots()).
  void AppendTuple(const Tuple& tuple);

  /// Appends active row `i` of `src` (same arity).
  void AppendRowFrom(const TupleBatch& src, size_t i);

  /// Declares the physical row count after filling columns directly via
  /// MutableColumn (all columns must have exactly `rows` entries).
  void SetNumRows(size_t rows) { num_rows_ = rows; }

  /// Materializes active row `i` as a row-major Tuple.
  Tuple MaterializeTuple(size_t i) const;

  /// Builds a column-major batch from row-major tuples.
  static TupleBatch FromTuples(size_t num_slots,
                               const std::vector<Tuple>& tuples);

 private:
  using ColumnSet = std::vector<std::vector<Binding>>;

  std::shared_ptr<ColumnSet> columns_;
  size_t num_rows_ = 0;
  bool has_selection_ = false;
  std::vector<uint32_t> selection_;
};

/// Hash/equality over the scalar views of selected slots (join keys).
size_t HashSlots(const Tuple& tuple, const std::vector<size_t>& slots);
bool SlotsEqual(const Tuple& a, const std::vector<size_t>& slots_a,
                const Tuple& b, const std::vector<size_t>& slots_b);

/// Batch-side join-key helpers: hash / compare the key slots of active row
/// `i` of a batch without materializing a Tuple.
size_t HashBatchSlots(const TupleBatch& batch, size_t i,
                      const std::vector<size_t>& slots);
bool BatchSlotsEqual(const TupleBatch& a, size_t ai,
                     const std::vector<size_t>& slots_a, const TupleBatch& b,
                     size_t bi, const std::vector<size_t>& slots_b);

}  // namespace algebra
}  // namespace nimble

#endif  // NIMBLE_ALGEBRA_TUPLE_H_
