#ifndef NIMBLE_ALGEBRA_TUPLE_H_
#define NIMBLE_ALGEBRA_TUPLE_H_

#include <optional>
#include <string>
#include <vector>

#include "xml/node.h"
#include "xml/value.h"

namespace nimble {
namespace algebra {

/// One variable binding: unset, a typed scalar, or an XML node (bound via
/// ELEMENT_AS). The physical algebra flows tuples of bindings between
/// operators — this is the "slightly more structured" representation the
/// paper's algebra operates on (§3.1): relational rows and tree fragments
/// share one runtime value type.
class Binding {
 public:
  Binding() : kind_(Kind::kUnset) {}
  explicit Binding(Value scalar)
      : kind_(Kind::kScalar), scalar_(std::move(scalar)) {}
  explicit Binding(NodePtr node)
      : kind_(Kind::kNode), node_(std::move(node)) {}

  bool is_unset() const { return kind_ == Kind::kUnset; }
  bool is_scalar() const { return kind_ == Kind::kScalar; }
  bool is_node() const { return kind_ == Kind::kNode; }

  const Value& scalar() const { return scalar_; }
  const NodePtr& node() const { return node_; }

  /// Scalar view: scalars pass through; nodes yield their ScalarValue();
  /// unset yields null. Used by predicates, sorts and joins.
  Value AsScalar() const;

  /// Equality for unification and join keys: scalar-to-scalar compares
  /// values (node bindings compare by ScalarValue too, so a node can join
  /// with a scalar).
  bool EqualsForJoin(const Binding& other) const;

  size_t Hash() const { return AsScalar().Hash(); }

 private:
  enum class Kind { kUnset, kScalar, kNode };
  Kind kind_;
  Value scalar_;
  NodePtr node_;
};

/// A tuple of bindings, positionally aligned with a TupleSchema.
using Tuple = std::vector<Binding>;

/// Maps variable names to tuple slots.
class TupleSchema {
 public:
  TupleSchema() = default;
  explicit TupleSchema(std::vector<std::string> variables)
      : variables_(std::move(variables)) {}

  const std::vector<std::string>& variables() const { return variables_; }
  size_t size() const { return variables_.size(); }

  std::optional<size_t> SlotOf(const std::string& variable) const;

  /// Adds `variable` if absent; returns its slot either way.
  size_t AddVariable(const std::string& variable);

  /// Schema with this schema's variables followed by `other`'s variables
  /// that are not already present (join output shape).
  TupleSchema Merge(const TupleSchema& other) const;

  bool operator==(const TupleSchema& other) const {
    return variables_ == other.variables_;
  }

  std::string ToString() const;

 private:
  std::vector<std::string> variables_;
};

/// Hash/equality over the scalar views of selected slots (join keys).
size_t HashSlots(const Tuple& tuple, const std::vector<size_t>& slots);
bool SlotsEqual(const Tuple& a, const std::vector<size_t>& slots_a,
                const Tuple& b, const std::vector<size_t>& slots_b);

}  // namespace algebra
}  // namespace nimble

#endif  // NIMBLE_ALGEBRA_TUPLE_H_
