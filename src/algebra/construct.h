#ifndef NIMBLE_ALGEBRA_CONSTRUCT_H_
#define NIMBLE_ALGEBRA_CONSTRUCT_H_

#include <string>

#include "algebra/operators.h"
#include "algebra/tuple.h"
#include "common/result.h"
#include "xml/node.h"
#include "xmlql/ast.h"

namespace nimble {
namespace algebra {

/// Instantiates a CONSTRUCT template for one binding tuple. Scalar
/// variables become typed text; node-valued bindings are deep-cloned into
/// place (ELEMENT_AS re-publication).
Result<NodePtr> InstantiateTemplate(const xmlql::TemplateNode& tmpl,
                                    const TupleSchema& schema,
                                    const Tuple& tuple);

/// Drains `plan` and instantiates the template per tuple, collecting the
/// instances under a root element named `root_name`. This is the top of
/// every physical plan.
Result<NodePtr> ConstructResult(Operator* plan,
                                const xmlql::TemplateNode& tmpl,
                                const std::string& root_name = "results");

}  // namespace algebra
}  // namespace nimble

#endif  // NIMBLE_ALGEBRA_CONSTRUCT_H_
