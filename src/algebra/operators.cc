#include "algebra/operators.h"

#include <algorithm>
#include <map>

#include "relational/executor.h"  // for LikeMatch

namespace nimble {
namespace algebra {

// ---- BoundCondition ---------------------------------------------------------

Result<BoundCondition> BoundCondition::Bind(const xmlql::Condition& condition,
                                            const TupleSchema& schema) {
  BoundCondition bound;
  bound.op = condition.op;
  if (condition.lhs.is_variable) {
    std::optional<size_t> slot = schema.SlotOf(condition.lhs.variable);
    if (!slot.has_value()) {
      return Status::InvalidArgument("unbound variable $" +
                                     condition.lhs.variable);
    }
    bound.lhs_slot = static_cast<int>(*slot);
  } else {
    bound.lhs_literal = condition.lhs.literal;
  }
  if (condition.rhs.is_variable) {
    std::optional<size_t> slot = schema.SlotOf(condition.rhs.variable);
    if (!slot.has_value()) {
      return Status::InvalidArgument("unbound variable $" +
                                     condition.rhs.variable);
    }
    bound.rhs_slot = static_cast<int>(*slot);
  } else {
    bound.rhs_literal = condition.rhs.literal;
  }
  return bound;
}

bool BoundCondition::Evaluate(const Tuple& tuple) const {
  Value lhs = lhs_slot >= 0 ? tuple[static_cast<size_t>(lhs_slot)].AsScalar()
                            : lhs_literal;
  Value rhs = rhs_slot >= 0 ? tuple[static_cast<size_t>(rhs_slot)].AsScalar()
                            : rhs_literal;
  if (op == xmlql::Condition::Op::kLike) {
    return relational::LikeMatch(lhs.ToString(), rhs.ToString());
  }
  if (lhs.is_null() || rhs.is_null()) return false;
  int cmp = lhs.Compare(rhs);
  switch (op) {
    case xmlql::Condition::Op::kEq:
      return cmp == 0;
    case xmlql::Condition::Op::kNe:
      return cmp != 0;
    case xmlql::Condition::Op::kLt:
      return cmp < 0;
    case xmlql::Condition::Op::kLe:
      return cmp <= 0;
    case xmlql::Condition::Op::kGt:
      return cmp > 0;
    case xmlql::Condition::Op::kGe:
      return cmp >= 0;
    case xmlql::Condition::Op::kLike:
      return false;  // handled above
  }
  return false;
}

// ---- Operator ----------------------------------------------------------------

std::string Operator::Describe(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += label();
  out += " " + schema().ToString() + "\n";
  for (const Operator* child : children_views_) {
    out += child->Describe(indent + 1);
  }
  return out;
}

Result<std::vector<Tuple>> Operator::Drain() {
  NIMBLE_RETURN_IF_ERROR(Open());
  std::vector<Tuple> out;
  while (true) {
    NIMBLE_ASSIGN_OR_RETURN(std::optional<Tuple> tuple, Next());
    if (!tuple.has_value()) break;
    out.push_back(std::move(*tuple));
  }
  Close();
  return out;
}

// ---- MaterializedScan ---------------------------------------------------------

MaterializedScan::MaterializedScan(TupleSchema schema,
                                   std::vector<Tuple> tuples,
                                   std::string source_label)
    : schema_(std::move(schema)),
      tuples_(std::move(tuples)),
      source_label_(std::move(source_label)) {}

Result<std::optional<Tuple>> MaterializedScan::Next() {
  if (position_ >= tuples_.size()) return std::optional<Tuple>{};
  return std::optional<Tuple>(tuples_[position_++]);
}

std::string MaterializedScan::label() const {
  return "Scan(" + source_label_ + ", " + std::to_string(tuples_.size()) +
         " tuples)";
}

// ---- Filter --------------------------------------------------------------------

Filter::Filter(std::unique_ptr<Operator> child,
               std::vector<BoundCondition> conds)
    : child_(std::move(child)), conditions_(std::move(conds)) {
  children_views_.push_back(child_.get());
}

Result<std::optional<Tuple>> Filter::Next() {
  while (true) {
    NIMBLE_ASSIGN_OR_RETURN(std::optional<Tuple> tuple, child_->Next());
    if (!tuple.has_value()) return tuple;
    bool pass = true;
    for (const BoundCondition& cond : conditions_) {
      if (!cond.Evaluate(*tuple)) {
        pass = false;
        break;
      }
    }
    if (pass) return tuple;
  }
}

std::string Filter::label() const {
  return "Filter(" + std::to_string(conditions_.size()) + " conds)";
}

// ---- HashJoin -------------------------------------------------------------------

HashJoin::HashJoin(std::unique_ptr<Operator> left,
                   std::unique_ptr<Operator> right)
    : left_(std::move(left)), right_(std::move(right)) {
  children_views_.push_back(left_.get());
  children_views_.push_back(right_.get());
  schema_ = left_->schema().Merge(right_->schema());
  for (const std::string& var : left_->schema().variables()) {
    std::optional<size_t> right_slot = right_->schema().SlotOf(var);
    if (right_slot.has_value()) {
      join_variables_.push_back(var);
      left_key_slots_.push_back(*left_->schema().SlotOf(var));
      right_key_slots_.push_back(*right_slot);
    }
  }
  for (const std::string& var : right_->schema().variables()) {
    right_output_slots_.push_back(*schema_.SlotOf(var));
  }
}

Status HashJoin::Open() {
  NIMBLE_RETURN_IF_ERROR(left_->Open());
  // Build side: drain right into hash buckets.
  constexpr size_t kBuckets = 1024;
  hash_buckets_.assign(kBuckets, {});
  NIMBLE_RETURN_IF_ERROR(right_->Open());
  while (true) {
    NIMBLE_ASSIGN_OR_RETURN(std::optional<Tuple> tuple, right_->Next());
    if (!tuple.has_value()) break;
    size_t bucket = HashSlots(*tuple, right_key_slots_) % kBuckets;
    hash_buckets_[bucket].push_back(std::move(*tuple));
  }
  right_->Close();
  current_left_.reset();
  current_bucket_ = nullptr;
  bucket_pos_ = 0;
  return Status::OK();
}

Tuple HashJoin::Combine(const Tuple& left, const Tuple& right) const {
  Tuple out(schema_.size());
  for (size_t i = 0; i < left.size(); ++i) out[i] = left[i];
  for (size_t i = 0; i < right.size(); ++i) {
    out[right_output_slots_[i]] = right[i];
  }
  return out;
}

Result<std::optional<Tuple>> HashJoin::Next() {
  while (true) {
    if (current_left_.has_value() && current_bucket_ != nullptr) {
      while (bucket_pos_ < current_bucket_->size()) {
        const Tuple& candidate = (*current_bucket_)[bucket_pos_++];
        if (SlotsEqual(*current_left_, left_key_slots_, candidate,
                       right_key_slots_)) {
          return std::optional<Tuple>(Combine(*current_left_, candidate));
        }
      }
    }
    NIMBLE_ASSIGN_OR_RETURN(std::optional<Tuple> left, left_->Next());
    if (!left.has_value()) return std::optional<Tuple>{};
    current_left_ = std::move(left);
    size_t bucket =
        HashSlots(*current_left_, left_key_slots_) % hash_buckets_.size();
    current_bucket_ = &hash_buckets_[bucket];
    bucket_pos_ = 0;
  }
}

void HashJoin::Close() {
  left_->Close();
  hash_buckets_.clear();
}

std::string HashJoin::label() const {
  std::string vars;
  for (size_t i = 0; i < join_variables_.size(); ++i) {
    if (i > 0) vars += ",";
    vars += "$" + join_variables_[i];
  }
  return "HashJoin(" + vars + ")";
}

// ---- NestedLoopJoin -----------------------------------------------------------

NestedLoopJoin::NestedLoopJoin(std::unique_ptr<Operator> left,
                               std::unique_ptr<Operator> right,
                               std::vector<BoundCondition> conditions)
    : left_(std::move(left)),
      right_(std::move(right)),
      conditions_(std::move(conditions)) {
  children_views_.push_back(left_.get());
  children_views_.push_back(right_.get());
  schema_ = left_->schema().Merge(right_->schema());
  for (const std::string& var : right_->schema().variables()) {
    right_output_slots_.push_back(*schema_.SlotOf(var));
  }
}

Status NestedLoopJoin::Open() {
  NIMBLE_RETURN_IF_ERROR(left_->Open());
  NIMBLE_ASSIGN_OR_RETURN(right_rows_, right_->Drain());
  current_left_.reset();
  right_pos_ = 0;
  return Status::OK();
}

Tuple NestedLoopJoin::Combine(const Tuple& left, const Tuple& right) const {
  Tuple out(schema_.size());
  for (size_t i = 0; i < left.size(); ++i) out[i] = left[i];
  for (size_t i = 0; i < right.size(); ++i) {
    out[right_output_slots_[i]] = right[i];
  }
  return out;
}

Result<std::optional<Tuple>> NestedLoopJoin::Next() {
  while (true) {
    if (current_left_.has_value()) {
      while (right_pos_ < right_rows_.size()) {
        Tuple combined = Combine(*current_left_, right_rows_[right_pos_++]);
        bool pass = true;
        for (const BoundCondition& cond : conditions_) {
          if (!cond.Evaluate(combined)) {
            pass = false;
            break;
          }
        }
        if (pass) return std::optional<Tuple>(std::move(combined));
      }
    }
    NIMBLE_ASSIGN_OR_RETURN(std::optional<Tuple> left, left_->Next());
    if (!left.has_value()) return std::optional<Tuple>{};
    current_left_ = std::move(left);
    right_pos_ = 0;
  }
}

void NestedLoopJoin::Close() {
  left_->Close();
  right_rows_.clear();
}

// ---- Sort -----------------------------------------------------------------------

Sort::Sort(std::unique_ptr<Operator> child, std::vector<Key> keys)
    : child_(std::move(child)), keys_(std::move(keys)) {
  children_views_.push_back(child_.get());
}

Status Sort::Open() {
  NIMBLE_ASSIGN_OR_RETURN(sorted_, child_->Drain());
  std::stable_sort(sorted_.begin(), sorted_.end(),
                   [this](const Tuple& a, const Tuple& b) {
                     for (const Key& key : keys_) {
                       int cmp = a[key.slot].AsScalar().Compare(
                           b[key.slot].AsScalar());
                       if (cmp != 0) return key.descending ? cmp > 0 : cmp < 0;
                     }
                     return false;
                   });
  position_ = 0;
  return Status::OK();
}

Result<std::optional<Tuple>> Sort::Next() {
  if (position_ >= sorted_.size()) return std::optional<Tuple>{};
  return std::optional<Tuple>(sorted_[position_++]);
}

void Sort::Close() { sorted_.clear(); }

// ---- Limit ----------------------------------------------------------------------

Limit::Limit(std::unique_ptr<Operator> child, size_t limit)
    : child_(std::move(child)), limit_(limit) {
  children_views_.push_back(child_.get());
}

Result<std::optional<Tuple>> Limit::Next() {
  if (emitted_ >= limit_) return std::optional<Tuple>{};
  NIMBLE_ASSIGN_OR_RETURN(std::optional<Tuple> tuple, child_->Next());
  if (tuple.has_value()) ++emitted_;
  return tuple;
}

std::string Limit::label() const {
  return "Limit(" + std::to_string(limit_) + ")";
}

// ---- HashAggregate -------------------------------------------------------------

HashAggregate::HashAggregate(std::unique_ptr<Operator> child,
                             std::vector<std::string> group_variables,
                             std::vector<Spec> specs)
    : child_(std::move(child)),
      group_variables_(std::move(group_variables)),
      specs_(std::move(specs)) {
  children_views_.push_back(child_.get());
  for (const std::string& var : group_variables_) schema_.AddVariable(var);
  for (const Spec& spec : specs_) schema_.AddVariable(spec.output_variable);
}

Status HashAggregate::Open() {
  NIMBLE_ASSIGN_OR_RETURN(std::vector<Tuple> input, child_->Drain());

  std::vector<size_t> group_slots;
  for (const std::string& var : group_variables_) {
    std::optional<size_t> slot = child_->schema().SlotOf(var);
    if (!slot.has_value()) {
      return Status::InvalidArgument("group variable $" + var + " not bound");
    }
    group_slots.push_back(*slot);
  }
  std::vector<int> input_slots;
  for (const Spec& spec : specs_) {
    if (spec.fn == Fn::kCount && spec.input_variable.empty()) {
      input_slots.push_back(-1);
      continue;
    }
    std::optional<size_t> slot = child_->schema().SlotOf(spec.input_variable);
    if (!slot.has_value()) {
      return Status::InvalidArgument("aggregate input $" +
                                     spec.input_variable + " not bound");
    }
    input_slots.push_back(static_cast<int>(*slot));
  }

  // Group rows. Keys ordered by first appearance.
  struct GroupState {
    std::vector<const Tuple*> rows;
  };
  std::map<std::vector<std::string>, GroupState> groups;  // serialized keys
  std::vector<std::vector<std::string>> order;
  std::map<std::vector<std::string>, Tuple> key_tuples;
  for (const Tuple& tuple : input) {
    std::vector<std::string> key;
    key.reserve(group_slots.size());
    for (size_t slot : group_slots) {
      key.push_back(tuple[slot].AsScalar().ToString() + "\x1f" +
                    ValueTypeName(tuple[slot].AsScalar().type()));
    }
    auto [it, inserted] = groups.try_emplace(key);
    if (inserted) {
      order.push_back(key);
      Tuple key_tuple;
      for (size_t slot : group_slots) key_tuple.push_back(tuple[slot]);
      key_tuples[key] = std::move(key_tuple);
    }
    it->second.rows.push_back(&tuple);
  }

  results_.clear();
  for (const std::vector<std::string>& key : order) {
    const GroupState& group = groups[key];
    Tuple out(schema_.size());
    const Tuple& key_tuple = key_tuples[key];
    for (size_t i = 0; i < key_tuple.size(); ++i) out[i] = key_tuple[i];
    for (size_t s = 0; s < specs_.size(); ++s) {
      const Spec& spec = specs_[s];
      size_t out_slot = *schema_.SlotOf(spec.output_variable);
      int in_slot = input_slots[s];
      int64_t count = 0;
      double sum = 0;
      bool any = false;
      Value min_v, max_v;
      for (const Tuple* row : group.rows) {
        Value v = in_slot < 0 ? Value::Int(1)
                              : (*row)[static_cast<size_t>(in_slot)].AsScalar();
        if (in_slot >= 0 && v.is_null()) continue;
        ++count;
        if (v.is_numeric()) sum += v.NumericValue();
        if (!any) {
          min_v = v;
          max_v = v;
          any = true;
        } else {
          if (v.Compare(min_v) < 0) min_v = v;
          if (v.Compare(max_v) > 0) max_v = v;
        }
      }
      switch (spec.fn) {
        case Fn::kCount:
          out[out_slot] = Binding{Value::Int(count)};
          break;
        case Fn::kSum:
          out[out_slot] = Binding{any ? Value::Double(sum) : Value::Null()};
          break;
        case Fn::kMin:
          out[out_slot] = Binding{any ? min_v : Value::Null()};
          break;
        case Fn::kMax:
          out[out_slot] = Binding{any ? max_v : Value::Null()};
          break;
        case Fn::kAvg:
          out[out_slot] =
              Binding{any ? Value::Double(sum / static_cast<double>(count))
                          : Value::Null()};
          break;
      }
    }
    results_.push_back(std::move(out));
  }
  position_ = 0;
  return Status::OK();
}

Result<std::optional<Tuple>> HashAggregate::Next() {
  if (position_ >= results_.size()) return std::optional<Tuple>{};
  return std::optional<Tuple>(results_[position_++]);
}

void HashAggregate::Close() { results_.clear(); }

}  // namespace algebra
}  // namespace nimble
