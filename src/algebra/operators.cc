#include "algebra/operators.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "relational/executor.h"  // for LikeMatch

namespace nimble {
namespace algebra {

// ---- BoundCondition ---------------------------------------------------------

Result<BoundCondition> BoundCondition::Bind(const xmlql::Condition& condition,
                                            const TupleSchema& schema) {
  BoundCondition bound;
  bound.op = condition.op;
  if (condition.lhs.is_variable) {
    std::optional<size_t> slot = schema.SlotOf(condition.lhs.variable);
    if (!slot.has_value()) {
      return Status::InvalidArgument("unbound variable $" +
                                     condition.lhs.variable);
    }
    bound.lhs_slot = static_cast<int>(*slot);
  } else {
    bound.lhs_literal = condition.lhs.literal;
  }
  if (condition.rhs.is_variable) {
    std::optional<size_t> slot = schema.SlotOf(condition.rhs.variable);
    if (!slot.has_value()) {
      return Status::InvalidArgument("unbound variable $" +
                                     condition.rhs.variable);
    }
    bound.rhs_slot = static_cast<int>(*slot);
  } else {
    bound.rhs_literal = condition.rhs.literal;
  }
  return bound;
}

namespace {

/// Shared comparison core: `binding_at(slot)` yields the Binding for a
/// variable operand. All three entry points (row, batch row, join pair)
/// funnel through here so null semantics and LIKE stay identical.
template <typename BindingAt>
bool EvalBound(const BoundCondition& c, BindingAt&& binding_at) {
  const Value& lhs = c.lhs_slot >= 0
                         ? binding_at(static_cast<size_t>(c.lhs_slot)).AsScalar()
                         : c.lhs_literal;
  const Value& rhs = c.rhs_slot >= 0
                         ? binding_at(static_cast<size_t>(c.rhs_slot)).AsScalar()
                         : c.rhs_literal;
  if (c.op == xmlql::Condition::Op::kLike) {
    return relational::LikeMatch(lhs.ToString(), rhs.ToString());
  }
  if (lhs.is_null() || rhs.is_null()) return false;
  int cmp = lhs.Compare(rhs);
  switch (c.op) {
    case xmlql::Condition::Op::kEq:
      return cmp == 0;
    case xmlql::Condition::Op::kNe:
      return cmp != 0;
    case xmlql::Condition::Op::kLt:
      return cmp < 0;
    case xmlql::Condition::Op::kLe:
      return cmp <= 0;
    case xmlql::Condition::Op::kGt:
      return cmp > 0;
    case xmlql::Condition::Op::kGe:
      return cmp >= 0;
    case xmlql::Condition::Op::kLike:
      return false;  // handled above
  }
  return false;
}

}  // namespace

bool BoundCondition::Evaluate(const Tuple& tuple) const {
  return EvalBound(*this,
                   [&tuple](size_t slot) -> const Binding& { return tuple[slot]; });
}

bool BoundCondition::EvaluateAt(const TupleBatch& batch, size_t i) const {
  const size_t phys = batch.PhysicalRow(i);
  return EvalBound(*this, [&batch, phys](size_t slot) -> const Binding& {
    return batch.column(slot)[phys];
  });
}

// ---- Operator ----------------------------------------------------------------

Status Operator::Open() {
  batches_produced_ = 0;
  rows_produced_ = 0;
  adapter_batch_.reset();
  adapter_pos_ = 0;
  return DoOpen();
}

Result<std::optional<TupleBatch>> Operator::NextBatch() {
  while (true) {
    NIMBLE_ASSIGN_OR_RETURN(std::optional<TupleBatch> batch, DoNextBatch());
    if (!batch.has_value()) return batch;
    if (batch->empty()) continue;  // fully filtered batch: pull again
#ifndef NDEBUG
    // Runtime shape invariants (mirrors verifier I11/I12): slot count
    // matches the schema, the batch respects the configured capacity, and
    // every selection entry addresses a physical row.
    assert(batch->num_slots() == schema().size() &&
           "batch arity disagrees with operator schema");
    assert(batch->size() <= batch_size() && "batch exceeds batch_size");
    if (batch->has_selection()) {
      for (uint32_t phys : batch->selection()) {
        assert(phys < batch->num_rows() && "selection index out of bounds");
      }
    }
#endif
    ++batches_produced_;
    rows_produced_ += batch->size();
    return batch;
  }
}

Result<std::optional<Tuple>> Operator::Next() {
  while (true) {
    if (adapter_batch_.has_value() && adapter_pos_ < adapter_batch_->size()) {
      return std::optional<Tuple>(
          adapter_batch_->MaterializeTuple(adapter_pos_++));
    }
    NIMBLE_ASSIGN_OR_RETURN(adapter_batch_, NextBatch());
    adapter_pos_ = 0;
    if (!adapter_batch_.has_value()) return std::optional<Tuple>{};
  }
}

void Operator::Close() {
  adapter_batch_.reset();
  adapter_pos_ = 0;
  // Counters survive Close so EXPLAIN can report them post-execution.
  DoClose();
}

std::string Operator::DescribeImpl(int indent, bool with_stats) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += label();
  out += " " + schema().ToString();
  if (with_stats) {
    out += " {";
    if (estimated_rows_ >= 0.0) {
      out += "est_rows=" +
             std::to_string(static_cast<long long>(std::llround(estimated_rows_))) +
             ", ";
    }
    out += "batches=" + std::to_string(batches_produced_) +
           ", rows=" + std::to_string(rows_produced_) + "}";
  }
  out += "\n";
  for (const Operator* child : children_views_) {
    out += child->DescribeImpl(indent + 1, with_stats);
  }
  return out;
}

std::string Operator::Describe(int indent) const {
  return DescribeImpl(indent, /*with_stats=*/false);
}

std::string Operator::DescribeWithStats(int indent) const {
  return DescribeImpl(indent, /*with_stats=*/true);
}

Result<std::vector<Tuple>> Operator::Drain() {
  NIMBLE_RETURN_IF_ERROR(Open());
  std::vector<Tuple> out;
  while (true) {
    NIMBLE_RETURN_IF_ERROR(PollCancel());
    NIMBLE_ASSIGN_OR_RETURN(std::optional<TupleBatch> batch, NextBatch());
    if (!batch.has_value()) break;
    out.reserve(out.size() + batch->size());
    for (size_t i = 0; i < batch->size(); ++i) {
      out.push_back(batch->MaterializeTuple(i));
    }
  }
  Close();
  return out;
}

void Operator::SetBatchSize(size_t rows) {
  batch_size_ = rows == 0 ? 1 : rows;
  for (Operator* child : children_) child->SetBatchSize(rows);
}

void Operator::SetCancelProbe(CancelProbe probe) {
  // Every operator in the tree shares the same probe so a cancelled query
  // stops draining wherever it happens to be — pipeline stages included.
  for (Operator* child : children_) child->SetCancelProbe(probe);
  cancel_probe_ = std::move(probe);
}

// ---- MaterializedScan ---------------------------------------------------------

MaterializedScan::MaterializedScan(TupleSchema schema,
                                   std::vector<Tuple> tuples,
                                   std::string source_label)
    : schema_(std::move(schema)),
      data_(TupleBatch::FromTuples(schema_.size(), tuples)),
      source_label_(std::move(source_label)) {}

MaterializedScan::MaterializedScan(TupleSchema schema, TupleBatch data,
                                   std::string source_label)
    : schema_(std::move(schema)),
      data_(std::move(data)),
      source_label_(std::move(source_label)) {
  assert(data_.num_slots() == schema_.size() &&
         "columnar scan data arity disagrees with schema");
}

Result<std::optional<TupleBatch>> MaterializedScan::DoNextBatch() {
  NIMBLE_RETURN_IF_ERROR(PollCancel());
  const size_t total = data_.size();
  if (position_ >= total) return std::optional<TupleBatch>{};
  const size_t n = std::min(batch_size(), total - position_);
  TupleBatch out = data_.Slice(position_, n);
  position_ += n;
  return std::optional<TupleBatch>(std::move(out));
}

std::string MaterializedScan::label() const {
  return "Scan(" + source_label_ + ", " + std::to_string(data_.size()) +
         " tuples)";
}

// ---- Filter --------------------------------------------------------------------

Filter::Filter(std::unique_ptr<Operator> child,
               std::vector<BoundCondition> conds)
    : child_(std::move(child)), conditions_(std::move(conds)) {
  AddChild(child_.get());
}

Result<std::optional<TupleBatch>> Filter::DoNextBatch() {
  while (true) {
    NIMBLE_RETURN_IF_ERROR(PollCancel());
    NIMBLE_ASSIGN_OR_RETURN(std::optional<TupleBatch> batch,
                            child_->NextBatch());
    if (!batch.has_value()) return batch;
    // Condition-major evaluation: each predicate compacts the surviving
    // physical row set in place. Survivors are never copied — the child's
    // columns are reused with a shrunk selection.
    std::vector<uint32_t> selection;
    selection.reserve(batch->size());
    for (size_t i = 0; i < batch->size(); ++i) {
      selection.push_back(static_cast<uint32_t>(batch->PhysicalRow(i)));
    }
    for (const BoundCondition& cond : conditions_) {
      size_t kept = 0;
      for (uint32_t phys : selection) {
        bool pass = EvalBound(cond, [&batch, phys](size_t slot) -> const Binding& {
          return batch->column(slot)[phys];
        });
        if (pass) selection[kept++] = phys;
      }
      selection.resize(kept);
      if (selection.empty()) break;
    }
    if (selection.empty()) continue;  // try the next child batch
    batch->SetSelection(std::move(selection));
    return batch;
  }
}

std::string Filter::label() const {
  return "Filter(" + std::to_string(conditions_.size()) + " conds)";
}

// ---- HashJoin -------------------------------------------------------------------

HashJoin::HashJoin(std::unique_ptr<Operator> left,
                   std::unique_ptr<Operator> right, bool build_left)
    : left_(std::move(left)), right_(std::move(right)),
      build_left_(build_left) {
  AddChild(left_.get());
  AddChild(right_.get());
  schema_ = left_->schema().Merge(right_->schema());
  for (const std::string& var : left_->schema().variables()) {
    std::optional<size_t> right_slot = right_->schema().SlotOf(var);
    if (right_slot.has_value()) {
      join_variables_.push_back(var);
      left_key_slots_.push_back(*left_->schema().SlotOf(var));
      right_key_slots_.push_back(*right_slot);
    }
  }
  for (const std::string& var : right_->schema().variables()) {
    right_output_slots_.push_back(*schema_.SlotOf(var));
  }
  // Output slot sources: left columns first, then right columns overriding
  // shared slots (the right binding wins on join keys, as the historical
  // row-combine did).
  slot_source_.assign(schema_.size(), {0, 0});
  for (size_t i = 0; i < left_->schema().size(); ++i) {
    slot_source_[i] = {0, i};
  }
  for (size_t j = 0; j < right_output_slots_.size(); ++j) {
    slot_source_[right_output_slots_[j]] = {1, j};
  }
}

Status HashJoin::DoOpen() {
  NIMBLE_RETURN_IF_ERROR(probe_input()->Open());
  // Compact the chosen build side into one column store.
  build_ = TupleBatch(build_input()->schema().size());
  NIMBLE_RETURN_IF_ERROR(build_input()->Open());
  while (true) {
    NIMBLE_RETURN_IF_ERROR(PollCancel());
    NIMBLE_ASSIGN_OR_RETURN(std::optional<TupleBatch> batch,
                            build_input()->NextBatch());
    if (!batch.has_value()) break;
    // No per-batch Reserve: an exact reserve every batch degrades to a
    // reallocation per row at small batch sizes; push_back growth is
    // amortized O(1) regardless of how the input is chopped up.
    for (size_t i = 0; i < batch->size(); ++i) build_.AppendRowFrom(*batch, i);
  }
  build_input()->Close();
  // Chained hash table (head/next index arrays) over the build columns,
  // sized to a load factor of at most 0.5.
  const size_t n = build_.num_rows();
  size_t buckets = 1;
  while (buckets < n * 2) buckets <<= 1;
  bucket_mask_ = buckets - 1;
  heads_.assign(buckets, kNone);
  next_.assign(n, kNone);
  // Insert back to front so each chain iterates in build-input order,
  // matching the historical per-bucket vector order.
  for (size_t r = n; r-- > 0;) {
    const size_t h = HashBatchSlots(build_, r, build_key_slots()) & bucket_mask_;
    next_[r] = heads_[h];
    heads_[h] = static_cast<uint32_t>(r);
  }
  probe_.reset();
  probe_row_ = 0;
  chain_ = kNone;
  return Status::OK();
}

void HashJoin::StartChain(size_t i) {
  if (build_.num_rows() == 0) {
    chain_ = kNone;
    return;
  }
  chain_ = heads_[HashBatchSlots(*probe_, i, probe_key_slots()) & bucket_mask_];
}

void HashJoin::AppendJoined(const TupleBatch& probe, size_t i,
                            uint32_t build_row, TupleBatch* out) const {
  const size_t phys = probe.PhysicalRow(i);
  // slot_source_ sides are (0 = left, 1 = right); resolve against whichever
  // physically holds that side: the compacted build store or the probe batch.
  const int probe_side = build_left_ ? 1 : 0;
  for (size_t slot = 0; slot < slot_source_.size(); ++slot) {
    const auto& [side, col] = slot_source_[slot];
    const Binding& binding = side == probe_side ? probe.column(col)[phys]
                                                : build_.column(col)[build_row];
    out->MutableColumn(slot).push_back(binding);
  }
  out->SetNumRows(out->num_rows() + 1);
}

Result<std::optional<TupleBatch>> HashJoin::DoNextBatch() {
  TupleBatch out(schema_.size());
  out.Reserve(batch_size());
  while (true) {
    NIMBLE_RETURN_IF_ERROR(PollCancel());
    if (probe_.has_value()) {
      while (probe_row_ < probe_->size()) {
        while (chain_ != kNone) {
          const uint32_t candidate = chain_;
          chain_ = next_[candidate];
          if (BatchSlotsEqual(*probe_, probe_row_, probe_key_slots(), build_,
                              candidate, build_key_slots())) {
            AppendJoined(*probe_, probe_row_, candidate, &out);
            if (out.num_rows() >= batch_size()) {
              return std::optional<TupleBatch>(std::move(out));
            }
          }
        }
        ++probe_row_;
        if (probe_row_ < probe_->size()) StartChain(probe_row_);
      }
      probe_.reset();
    }
    NIMBLE_ASSIGN_OR_RETURN(probe_, probe_input()->NextBatch());
    if (!probe_.has_value()) break;
    probe_row_ = 0;
    StartChain(0);
  }
  if (out.num_rows() == 0) return std::optional<TupleBatch>{};
  return std::optional<TupleBatch>(std::move(out));
}

void HashJoin::DoClose() {
  probe_input()->Close();
  build_ = TupleBatch();
  heads_.clear();
  next_.clear();
  probe_.reset();
}

std::string HashJoin::label() const {
  std::string vars;
  for (size_t i = 0; i < join_variables_.size(); ++i) {
    if (i > 0) vars += ",";
    vars += "$" + join_variables_[i];
  }
  if (build_left_) return "HashJoin(" + vars + ", build=left)";
  return "HashJoin(" + vars + ")";
}

// ---- NestedLoopJoin -----------------------------------------------------------

NestedLoopJoin::NestedLoopJoin(std::unique_ptr<Operator> left,
                               std::unique_ptr<Operator> right,
                               std::vector<BoundCondition> conditions)
    : left_(std::move(left)),
      right_(std::move(right)),
      conditions_(std::move(conditions)) {
  AddChild(left_.get());
  AddChild(right_.get());
  schema_ = left_->schema().Merge(right_->schema());
  for (const std::string& var : right_->schema().variables()) {
    right_output_slots_.push_back(*schema_.SlotOf(var));
  }
  slot_source_.assign(schema_.size(), {0, 0});
  for (size_t i = 0; i < left_->schema().size(); ++i) {
    slot_source_[i] = {0, i};
  }
  for (size_t j = 0; j < right_output_slots_.size(); ++j) {
    slot_source_[right_output_slots_[j]] = {1, j};
  }
}

Status NestedLoopJoin::DoOpen() {
  NIMBLE_RETURN_IF_ERROR(left_->Open());
  right_data_ = TupleBatch(right_->schema().size());
  NIMBLE_RETURN_IF_ERROR(right_->Open());
  while (true) {
    NIMBLE_RETURN_IF_ERROR(PollCancel());
    NIMBLE_ASSIGN_OR_RETURN(std::optional<TupleBatch> batch,
                            right_->NextBatch());
    if (!batch.has_value()) break;
    // push_back growth only — see the HashJoin build note on why an exact
    // per-batch Reserve is quadratic at small batch sizes.
    for (size_t i = 0; i < batch->size(); ++i) {
      right_data_.AppendRowFrom(*batch, i);
    }
  }
  right_->Close();
  probe_.reset();
  probe_row_ = 0;
  right_pos_ = 0;
  return Status::OK();
}

const Binding& NestedLoopJoin::BindingAt(size_t slot, const TupleBatch& probe,
                                         size_t i, size_t r) const {
  const auto& [side, col] = slot_source_[slot];
  return side == 0 ? probe.column(col)[probe.PhysicalRow(i)]
                   : right_data_.column(col)[r];
}

Result<std::optional<TupleBatch>> NestedLoopJoin::DoNextBatch() {
  TupleBatch out(schema_.size());
  while (true) {
    NIMBLE_RETURN_IF_ERROR(PollCancel());
    if (probe_.has_value()) {
      while (probe_row_ < probe_->size()) {
        while (right_pos_ < right_data_.num_rows()) {
          const size_t r = right_pos_++;
          bool pass = true;
          for (const BoundCondition& cond : conditions_) {
            const bool ok = EvalBound(
                cond, [this, r](size_t slot) -> const Binding& {
                  return BindingAt(slot, *probe_, probe_row_, r);
                });
            if (!ok) {
              pass = false;
              break;
            }
          }
          if (!pass) continue;
          // Append the combined row (rejected pairs are never built).
          for (size_t slot = 0; slot < schema_.size(); ++slot) {
            out.MutableColumn(slot).push_back(
                BindingAt(slot, *probe_, probe_row_, r));
          }
          out.SetNumRows(out.num_rows() + 1);
          if (out.num_rows() >= batch_size()) {
            return std::optional<TupleBatch>(std::move(out));
          }
        }
        right_pos_ = 0;
        ++probe_row_;
      }
      probe_.reset();
    }
    NIMBLE_ASSIGN_OR_RETURN(probe_, left_->NextBatch());
    if (!probe_.has_value()) break;
    probe_row_ = 0;
    right_pos_ = 0;
  }
  if (out.num_rows() == 0) return std::optional<TupleBatch>{};
  return std::optional<TupleBatch>(std::move(out));
}

void NestedLoopJoin::DoClose() {
  left_->Close();
  right_data_ = TupleBatch();
  probe_.reset();
}

// ---- Sort -----------------------------------------------------------------------

Sort::Sort(std::unique_ptr<Operator> child, std::vector<Key> keys)
    : child_(std::move(child)), keys_(std::move(keys)) {
  AddChild(child_.get());
}

Status Sort::DoOpen() {
  data_ = TupleBatch(child_->schema().size());
  NIMBLE_RETURN_IF_ERROR(child_->Open());
  while (true) {
    NIMBLE_RETURN_IF_ERROR(PollCancel());
    NIMBLE_ASSIGN_OR_RETURN(std::optional<TupleBatch> batch,
                            child_->NextBatch());
    if (!batch.has_value()) break;
    // push_back growth only — an exact per-batch Reserve is quadratic at
    // small batch sizes (see the HashJoin build note).
    for (size_t i = 0; i < batch->size(); ++i) data_.AppendRowFrom(*batch, i);
  }
  child_->Close();
  // Sort a permutation of physical rows; emitted batches are selection
  // views in sorted order over the (unmoved) columns.
  order_.resize(data_.num_rows());
  for (size_t i = 0; i < order_.size(); ++i) {
    order_[i] = static_cast<uint32_t>(i);
  }
  std::stable_sort(order_.begin(), order_.end(),
                   [this](uint32_t a, uint32_t b) {
                     for (const Key& key : keys_) {
                       const std::vector<Binding>& column = data_.column(key.slot);
                       int cmp = column[a].AsScalar().Compare(
                           column[b].AsScalar());
                       if (cmp != 0) return key.descending ? cmp > 0 : cmp < 0;
                     }
                     return false;
                   });
  position_ = 0;
  return Status::OK();
}

Result<std::optional<TupleBatch>> Sort::DoNextBatch() {
  NIMBLE_RETURN_IF_ERROR(PollCancel());
  if (position_ >= order_.size()) return std::optional<TupleBatch>{};
  const size_t n = std::min(batch_size(), order_.size() - position_);
  std::vector<uint32_t> selection(order_.begin() + static_cast<long>(position_),
                                  order_.begin() +
                                      static_cast<long>(position_ + n));
  position_ += n;
  return std::optional<TupleBatch>(data_.Select(std::move(selection)));
}

void Sort::DoClose() {
  data_ = TupleBatch();
  order_.clear();
}

// ---- Limit ----------------------------------------------------------------------

Limit::Limit(std::unique_ptr<Operator> child, size_t limit)
    : child_(std::move(child)), limit_(limit) {
  AddChild(child_.get());
}

Result<std::optional<TupleBatch>> Limit::DoNextBatch() {
  NIMBLE_RETURN_IF_ERROR(PollCancel());
  if (emitted_ >= limit_) return std::optional<TupleBatch>{};
  NIMBLE_ASSIGN_OR_RETURN(std::optional<TupleBatch> batch,
                          child_->NextBatch());
  if (!batch.has_value()) return batch;
  const size_t remaining = limit_ - emitted_;
  if (batch->size() > remaining) *batch = batch->Slice(0, remaining);
  emitted_ += batch->size();
  return batch;
}

std::string Limit::label() const {
  return "Limit(" + std::to_string(limit_) + ")";
}

// ---- HashAggregate -------------------------------------------------------------

HashAggregate::HashAggregate(std::unique_ptr<Operator> child,
                             std::vector<std::string> group_variables,
                             std::vector<Spec> specs)
    : child_(std::move(child)),
      group_variables_(std::move(group_variables)),
      specs_(std::move(specs)) {
  AddChild(child_.get());
  for (const std::string& var : group_variables_) schema_.AddVariable(var);
  for (const Spec& spec : specs_) schema_.AddVariable(spec.output_variable);
}

Status HashAggregate::DoOpen() {
  std::vector<size_t> group_slots;
  for (const std::string& var : group_variables_) {
    std::optional<size_t> slot = child_->schema().SlotOf(var);
    if (!slot.has_value()) {
      return Status::InvalidArgument("group variable $" + var + " not bound");
    }
    group_slots.push_back(*slot);
  }
  std::vector<int> input_slots;
  for (const Spec& spec : specs_) {
    if (spec.fn == Fn::kCount && spec.input_variable.empty()) {
      input_slots.push_back(-1);
      continue;
    }
    std::optional<size_t> slot = child_->schema().SlotOf(spec.input_variable);
    if (!slot.has_value()) {
      return Status::InvalidArgument("aggregate input $" +
                                     spec.input_variable + " not bound");
    }
    input_slots.push_back(static_cast<int>(*slot));
  }

  // Single streaming pass: per-group accumulators updated batch by batch.
  // Input rows are never buffered. Groups keyed by the serialized scalar
  // views (value + type), ordered by first appearance.
  struct Accum {
    int64_t count = 0;
    double sum = 0;
    bool any = false;
    Value min_v, max_v;
  };
  struct Group {
    Tuple key_bindings;
    std::vector<Accum> accums;
  };
  std::map<std::vector<std::string>, size_t> index;
  std::vector<Group> groups;
  static const Value kOne = Value::Int(1);

  NIMBLE_RETURN_IF_ERROR(child_->Open());
  while (true) {
    NIMBLE_RETURN_IF_ERROR(PollCancel());
    NIMBLE_ASSIGN_OR_RETURN(std::optional<TupleBatch> batch,
                            child_->NextBatch());
    if (!batch.has_value()) break;
    for (size_t i = 0; i < batch->size(); ++i) {
      std::vector<std::string> key;
      key.reserve(group_slots.size());
      for (size_t slot : group_slots) {
        const Value& v = batch->binding(slot, i).AsScalar();
        key.push_back(v.ToString() + "\x1f" + ValueTypeName(v.type()));
      }
      auto [it, inserted] = index.try_emplace(std::move(key), groups.size());
      if (inserted) {
        Group group;
        for (size_t slot : group_slots) {
          group.key_bindings.push_back(batch->binding(slot, i));
        }
        group.accums.resize(specs_.size());
        groups.push_back(std::move(group));
      }
      Group& group = groups[it->second];
      for (size_t s = 0; s < specs_.size(); ++s) {
        const int in_slot = input_slots[s];
        const Value& v =
            in_slot < 0
                ? kOne
                : batch->binding(static_cast<size_t>(in_slot), i).AsScalar();
        if (in_slot >= 0 && v.is_null()) continue;
        Accum& a = group.accums[s];
        ++a.count;
        if (v.is_numeric()) a.sum += v.NumericValue();
        if (!a.any) {
          a.min_v = v;
          a.max_v = v;
          a.any = true;
        } else {
          if (v.Compare(a.min_v) < 0) a.min_v = v;
          if (v.Compare(a.max_v) > 0) a.max_v = v;
        }
      }
    }
  }
  child_->Close();

  std::vector<size_t> out_slots;
  for (const Spec& spec : specs_) {
    out_slots.push_back(*schema_.SlotOf(spec.output_variable));
  }
  results_ = TupleBatch(schema_.size());
  results_.Reserve(groups.size());
  for (const Group& group : groups) {
    Tuple out(schema_.size());
    for (size_t i = 0; i < group.key_bindings.size(); ++i) {
      out[i] = group.key_bindings[i];
    }
    for (size_t s = 0; s < specs_.size(); ++s) {
      const Accum& a = group.accums[s];
      switch (specs_[s].fn) {
        case Fn::kCount:
          out[out_slots[s]] = Binding{Value::Int(a.count)};
          break;
        case Fn::kSum:
          out[out_slots[s]] =
              Binding{a.any ? Value::Double(a.sum) : Value::Null()};
          break;
        case Fn::kMin:
          out[out_slots[s]] = Binding{a.any ? a.min_v : Value::Null()};
          break;
        case Fn::kMax:
          out[out_slots[s]] = Binding{a.any ? a.max_v : Value::Null()};
          break;
        case Fn::kAvg:
          out[out_slots[s]] = Binding{
              a.any ? Value::Double(a.sum / static_cast<double>(a.count))
                    : Value::Null()};
          break;
      }
    }
    results_.AppendTuple(out);
  }
  position_ = 0;
  return Status::OK();
}

Result<std::optional<TupleBatch>> HashAggregate::DoNextBatch() {
  NIMBLE_RETURN_IF_ERROR(PollCancel());
  if (position_ >= results_.num_rows()) return std::optional<TupleBatch>{};
  const size_t n = std::min(batch_size(), results_.num_rows() - position_);
  TupleBatch out = results_.Slice(position_, n);
  position_ += n;
  return std::optional<TupleBatch>(std::move(out));
}

void HashAggregate::DoClose() { results_ = TupleBatch(); }

}  // namespace algebra
}  // namespace nimble
