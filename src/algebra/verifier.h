#ifndef NIMBLE_ALGEBRA_VERIFIER_H_
#define NIMBLE_ALGEBRA_VERIFIER_H_

#include <string>
#include <vector>

#include "algebra/operators.h"
#include "common/status.h"

namespace nimble {
namespace algebra {

/// Walks a physical operator tree checking the IR invariants documented in
/// DESIGN.md §2f (I1–I9), §2g (I11–I12), and §2h (I13): schema
/// well-formedness, scan column-store arity, pass-through schemas,
/// condition/sort slot ranges, join-key consistency, join/aggregate output
/// schemas, tree shape, batch-size agreement across the tree, columnar
/// selection-vector bounds, and cost-annotation consistency (all-or-none
/// across the tree; estimates never grow through row-reducing operators).
/// A violation means the compiler built a broken plan, so the status code
/// is kInternal — never a user error.
[[nodiscard]] Status VerifyPlan(const Operator& root);

/// Checks that the plan's root schema can supply every variable in
/// `required` (the CONSTRUCT template's inputs — invariant I10). This is
/// Nimble's UNION-compatibility condition: branch results are concatenated
/// as XML rather than positionally unioned, so each branch plan need only
/// cover its own template.
[[nodiscard]] Status VerifyPlanProducesVariables(
    const Operator& root, const std::vector<std::string>& required);

}  // namespace algebra
}  // namespace nimble

#endif  // NIMBLE_ALGEBRA_VERIFIER_H_
