#ifndef NIMBLE_ALGEBRA_PATTERN_MATCH_H_
#define NIMBLE_ALGEBRA_PATTERN_MATCH_H_

#include <vector>

#include "algebra/tuple.h"
#include "common/result.h"
#include "xml/node.h"
#include "xmlql/ast.h"

namespace nimble {
namespace algebra {

/// Builds the tuple schema for a pattern: one slot per bound variable, in
/// first-occurrence order.
TupleSchema SchemaForPattern(const xmlql::ElementPattern& pattern);

/// Matches `pattern` against the tree rooted at `tree`, producing one tuple
/// per combination of matching sub-elements (bag semantics, document
/// order). Repeated variables unify: a binding conflict drops the
/// combination. The root pattern must match `tree` itself unless it is a
/// descendant pattern (`<//tag>`), which searches the whole tree.
Result<std::vector<Tuple>> MatchPattern(const xmlql::ElementPattern& pattern,
                                        const NodePtr& tree,
                                        const TupleSchema& schema);

}  // namespace algebra
}  // namespace nimble

#endif  // NIMBLE_ALGEBRA_PATTERN_MATCH_H_
