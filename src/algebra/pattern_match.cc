#include "algebra/pattern_match.h"

namespace nimble {
namespace algebra {

namespace {

using xmlql::ElementPattern;

/// Merges `from` into `into`; false on a unification conflict.
bool MergeTuple(const Tuple& from, Tuple* into) {
  for (size_t i = 0; i < from.size(); ++i) {
    if (from[i].is_unset()) continue;
    if ((*into)[i].is_unset()) {
      (*into)[i] = from[i];
    } else if (!(*into)[i].EqualsForJoin(from[i])) {
      return false;
    }
  }
  return true;
}

/// Collects descendants of `node` matching `tag` at any depth.
void MatchingDescendants(const Node& node, const std::string& tag,
                         std::vector<NodePtr>* out) {
  for (const NodePtr& child : node.children()) {
    if (!child->is_element()) continue;
    if (tag == "*" || child->name() == tag) out->push_back(child);
    MatchingDescendants(*child, tag, out);
  }
}

/// Matches one pattern element against one concrete node. Appends every
/// consistent binding tuple to `out` (each of size schema.size()).
void MatchElement(const ElementPattern& pattern, const NodePtr& node,
                  const TupleSchema& schema, std::vector<Tuple>* out) {
  if (!node->is_element()) return;
  if (pattern.tag != "*" && node->name() != pattern.tag) return;

  Tuple base(schema.size());

  // Attribute constraints and bindings.
  for (const xmlql::AttrPattern& attr : pattern.attributes) {
    if (!node->HasAttribute(attr.name)) return;
    Value actual = node->GetAttribute(attr.name);
    if (attr.is_variable) {
      size_t slot = *schema.SlotOf(attr.variable);
      Binding binding{actual};
      if (!base[slot].is_unset() && !base[slot].EqualsForJoin(binding)) return;
      base[slot] = std::move(binding);
    } else if (actual != attr.literal) {
      return;
    }
  }

  // Content constraints/bindings.
  if (pattern.content_literal.has_value()) {
    if (node->ScalarValue() != *pattern.content_literal) return;
  }
  if (!pattern.content_variable.empty()) {
    size_t slot = *schema.SlotOf(pattern.content_variable);
    Binding binding{node->ScalarValue()};
    if (!base[slot].is_unset() && !base[slot].EqualsForJoin(binding)) return;
    base[slot] = std::move(binding);
  }
  if (!pattern.element_variable.empty()) {
    size_t slot = *schema.SlotOf(pattern.element_variable);
    base[slot] = Binding{node};
  }

  // Child patterns: cartesian combination with unification.
  std::vector<Tuple> partials = {std::move(base)};
  for (const auto& child_pattern : pattern.children) {
    // Candidate nodes for this child pattern.
    std::vector<NodePtr> candidates;
    if (child_pattern->descendant) {
      MatchingDescendants(*node, child_pattern->tag, &candidates);
    } else {
      for (const NodePtr& child : node->children()) {
        if (child->is_element() &&
            (child_pattern->tag == "*" ||
             child->name() == child_pattern->tag)) {
          candidates.push_back(child);
        }
      }
    }
    // Tuples produced by the child pattern across all candidates.
    std::vector<Tuple> child_tuples;
    for (const NodePtr& candidate : candidates) {
      MatchElement(*child_pattern, candidate, schema, &child_tuples);
    }
    if (child_tuples.empty()) return;  // required child missing

    std::vector<Tuple> next;
    next.reserve(partials.size() * child_tuples.size());
    for (const Tuple& partial : partials) {
      for (const Tuple& child_tuple : child_tuples) {
        Tuple merged = partial;
        if (MergeTuple(child_tuple, &merged)) {
          next.push_back(std::move(merged));
        }
      }
    }
    if (next.empty()) return;
    partials = std::move(next);
  }

  for (Tuple& tuple : partials) out->push_back(std::move(tuple));
}

}  // namespace

TupleSchema SchemaForPattern(const xmlql::ElementPattern& pattern) {
  std::vector<std::string> variables;
  pattern.CollectVariables(&variables);
  TupleSchema schema;
  for (const std::string& var : variables) schema.AddVariable(var);
  return schema;
}

Result<std::vector<Tuple>> MatchPattern(const xmlql::ElementPattern& pattern,
                                        const NodePtr& tree,
                                        const TupleSchema& schema) {
  // Verify every pattern variable has a slot.
  std::vector<std::string> variables;
  pattern.CollectVariables(&variables);
  for (const std::string& var : variables) {
    if (!schema.SlotOf(var).has_value()) {
      return Status::InvalidArgument("pattern variable $" + var +
                                     " missing from tuple schema");
    }
  }
  std::vector<Tuple> out;
  if (pattern.descendant) {
    std::vector<NodePtr> candidates;
    if (pattern.tag == "*" || tree->name() == pattern.tag) {
      candidates.push_back(tree);
    }
    MatchingDescendants(*tree, pattern.tag, &candidates);
    for (const NodePtr& candidate : candidates) {
      MatchElement(pattern, candidate, schema, &out);
    }
  } else {
    MatchElement(pattern, tree, schema, &out);
  }
  return out;
}

}  // namespace algebra
}  // namespace nimble
