#include "algebra/verifier.h"

#include <cstddef>
#include <set>
#include <string>

namespace nimble {
namespace algebra {

namespace {

/// Plans are compiler output; any violation is an engine bug, reported as
/// kInternal so it can never be mistaken for a user error.
Status Violation(const Operator& op, const std::string& what) {
  return Status::Internal("plan verifier: " + op.label() + ": " + what);
}

/// I9: trees stay shallow (a query has a bounded number of patterns and
/// clauses); a deeper tree indicates a cycle or runaway construction.
constexpr int kMaxDepth = 512;

/// I1: schema slot names are non-empty and unique — a duplicate name makes
/// SlotOf ambiguous and every slot-based invariant meaningless.
Status CheckSchemaWellFormed(const Operator& op) {
  std::set<std::string> seen;
  for (const std::string& variable : op.schema().variables()) {
    if (variable.empty()) {
      return Violation(op, "schema contains an empty variable name");
    }
    if (!seen.insert(variable).second) {
      return Violation(op, "schema binds variable $" + variable + " twice");
    }
  }
  return Status::OK();
}

/// I4: every BoundCondition slot is -1 (literal) or within `arity`; LIKE
/// literal operands must be strings (the only operand typing the untyped
/// schema lets us check statically).
Status CheckConditionSlots(const Operator& op,
                           const std::vector<BoundCondition>& conditions,
                           size_t arity, const char* against) {
  for (const BoundCondition& cond : conditions) {
    for (int slot : {cond.lhs_slot, cond.rhs_slot}) {
      if (slot < -1 || slot >= static_cast<int>(arity)) {
        return Violation(op, "condition references slot " +
                                 std::to_string(slot) + " but " + against +
                                 " has arity " + std::to_string(arity));
      }
    }
    if (cond.op == xmlql::Condition::Op::kLike) {
      if (cond.lhs_slot == -1 && !cond.lhs_literal.is_string()) {
        return Violation(op, "LIKE subject literal is not a string");
      }
      if (cond.rhs_slot == -1 && !cond.rhs_literal.is_string()) {
        return Violation(op, "LIKE pattern literal is not a string");
      }
    }
  }
  return Status::OK();
}

Status VerifyNode(const Operator& op, int depth) {
  if (depth > kMaxDepth) {
    return Violation(op, "plan deeper than " + std::to_string(kMaxDepth) +
                             " operators (cycle?)");
  }

  // I9: tree shape — the expected child count per operator kind, and no
  // null child views.
  const std::vector<const Operator*>& children = op.children();
  for (const Operator* child : children) {
    if (child == nullptr) return Violation(op, "null child operator");
  }
  int expected = -1;
  if (dynamic_cast<const MaterializedScan*>(&op) != nullptr) expected = 0;
  if (dynamic_cast<const Filter*>(&op) != nullptr ||
      dynamic_cast<const Sort*>(&op) != nullptr ||
      dynamic_cast<const Limit*>(&op) != nullptr ||
      dynamic_cast<const HashAggregate*>(&op) != nullptr) {
    expected = 1;
  }
  if (dynamic_cast<const HashJoin*>(&op) != nullptr ||
      dynamic_cast<const NestedLoopJoin*>(&op) != nullptr) {
    expected = 2;
  }
  if (expected >= 0 && static_cast<int>(children.size()) != expected) {
    return Violation(op, "expected " + std::to_string(expected) +
                             " children, found " +
                             std::to_string(children.size()));
  }

  NIMBLE_RETURN_IF_ERROR(CheckSchemaWellFormed(op));  // I1

  if (const auto* scan = dynamic_cast<const MaterializedScan*>(&op)) {
    const TupleBatch& data = scan->data();
    // I2: the scan's column store matches the declared arity.
    if (data.num_slots() != scan->schema().size()) {
      return Violation(op, "column store has " +
                               std::to_string(data.num_slots()) +
                               " columns but the schema declares " +
                               std::to_string(scan->schema().size()));
    }
    // I12: columnar well-formedness — every column holds exactly num_rows
    // bindings (a ragged column set makes PhysicalRow indexing UB), and
    // every selection entry addresses a physical row.
    for (size_t slot = 0; slot < data.num_slots(); ++slot) {
      if (data.column(slot).size() != data.num_rows()) {
        return Violation(op, "column " + std::to_string(slot) + " has " +
                                 std::to_string(data.column(slot).size()) +
                                 " bindings but the batch declares " +
                                 std::to_string(data.num_rows()) + " rows");
      }
    }
    if (data.has_selection()) {
      for (uint32_t phys : data.selection()) {
        if (phys >= data.num_rows()) {
          return Violation(op, "selection index " + std::to_string(phys) +
                                   " exceeds physical row count " +
                                   std::to_string(data.num_rows()));
        }
      }
    }
  }

  // I11: batch-size agreement — every operator in the tree produces batches
  // of the same configured capacity. A mismatch means SetBatchSize was
  // applied to a subtree only, so a parent sized for N rows could receive
  // child batches of more than N.
  for (const Operator* child : children) {
    if (child->batch_size() != op.batch_size()) {
      return Violation(op, "batch size " + std::to_string(op.batch_size()) +
                               " disagrees with child " + child->label() +
                               " batch size " +
                               std::to_string(child->batch_size()));
    }
  }

  if (const auto* filter = dynamic_cast<const Filter*>(&op)) {
    const Operator& child = *children[0];
    // I3: pass-through operators preserve their child's schema.
    if (!(filter->schema() == child.schema())) {
      return Violation(op, "schema " + filter->schema().ToString() +
                               " differs from child schema " +
                               child.schema().ToString());
    }
    NIMBLE_RETURN_IF_ERROR(CheckConditionSlots(
        op, filter->conditions(), child.schema().size(), "the child schema"));
  }

  if (const auto* sort = dynamic_cast<const Sort*>(&op)) {
    const Operator& child = *children[0];
    if (!(sort->schema() == child.schema())) {  // I3
      return Violation(op, "schema " + sort->schema().ToString() +
                               " differs from child schema " +
                               child.schema().ToString());
    }
    for (const Sort::Key& key : sort->keys()) {  // I4
      if (key.slot >= child.schema().size()) {
        return Violation(op, "sort key slot " + std::to_string(key.slot) +
                                 " exceeds child arity " +
                                 std::to_string(child.schema().size()));
      }
    }
  }

  if (const auto* limit = dynamic_cast<const Limit*>(&op)) {
    if (!(limit->schema() == children[0]->schema())) {  // I3
      return Violation(op, "schema " + limit->schema().ToString() +
                               " differs from child schema " +
                               children[0]->schema().ToString());
    }
  }

  if (const auto* join = dynamic_cast<const HashJoin*>(&op)) {
    const TupleSchema& left = children[0]->schema();
    const TupleSchema& right = children[1]->schema();
    // I5: a hash join needs at least one shared variable, and its key-slot
    // lists must name that variable in each child's schema.
    if (join->join_variables().empty()) {
      return Violation(op, "hash join without shared variables (should be a "
                           "NestedLoopJoin)");
    }
    if (join->left_key_slots().size() != join->join_variables().size() ||
        join->right_key_slots().size() != join->join_variables().size()) {
      return Violation(op, "key slot lists do not match join variables");
    }
    for (size_t i = 0; i < join->join_variables().size(); ++i) {
      const std::string& variable = join->join_variables()[i];
      const size_t ls = join->left_key_slots()[i];
      const size_t rs = join->right_key_slots()[i];
      if (ls >= left.size() || left.variables()[ls] != variable) {
        return Violation(op, "left key slot " + std::to_string(ls) +
                                 " does not bind $" + variable +
                                 " in the left schema " + left.ToString());
      }
      if (rs >= right.size() || right.variables()[rs] != variable) {
        return Violation(op, "right key slot " + std::to_string(rs) +
                                 " does not bind $" + variable +
                                 " in the right schema " + right.ToString());
      }
    }
    // I6: join output is exactly the merged child schemas.
    if (!(join->schema() == left.Merge(right))) {
      return Violation(op, "schema " + join->schema().ToString() +
                               " is not the merge of its children (" +
                               left.Merge(right).ToString() + ")");
    }
  }

  if (const auto* nlj = dynamic_cast<const NestedLoopJoin*>(&op)) {
    const TupleSchema& left = children[0]->schema();
    const TupleSchema& right = children[1]->schema();
    if (!(nlj->schema() == left.Merge(right))) {  // I6
      return Violation(op, "schema " + nlj->schema().ToString() +
                               " is not the merge of its children (" +
                               left.Merge(right).ToString() + ")");
    }
    // I4: residual conditions are evaluated on the *output* tuple.
    NIMBLE_RETURN_IF_ERROR(CheckConditionSlots(
        op, nlj->conditions(), nlj->schema().size(), "the join output"));
  }

  if (const auto* agg = dynamic_cast<const HashAggregate*>(&op)) {
    const TupleSchema& child = children[0]->schema();
    // I7: grouping keys and aggregate inputs must exist in the child.
    for (const std::string& variable : agg->group_variables()) {
      if (!child.SlotOf(variable).has_value()) {
        return Violation(op, "group variable $" + variable +
                                 " is not produced by the child schema " +
                                 child.ToString());
      }
    }
    for (const HashAggregate::Spec& spec : agg->specs()) {
      if (spec.fn == HashAggregate::Fn::kCount && spec.input_variable.empty()) {
        continue;  // count(*) needs no input slot
      }
      if (!child.SlotOf(spec.input_variable).has_value()) {
        return Violation(op, "aggregate input $" + spec.input_variable +
                                 " is not produced by the child schema " +
                                 child.ToString());
      }
    }
    // I8: output schema is exactly groups then aggregate outputs, with no
    // name collisions (a collision silently folds two outputs into one
    // slot).
    TupleSchema expected;
    for (const std::string& variable : agg->group_variables()) {
      expected.AddVariable(variable);
    }
    for (const HashAggregate::Spec& spec : agg->specs()) {
      expected.AddVariable(spec.output_variable);
    }
    if (expected.size() !=
        agg->group_variables().size() + agg->specs().size()) {
      return Violation(op, "duplicate output variable names in aggregate "
                           "schema " +
                               expected.ToString());
    }
    if (!(agg->schema() == expected)) {
      return Violation(op, "schema " + agg->schema().ToString() +
                               " does not match groups + outputs (" +
                               expected.ToString() + ")");
    }
  }

  // I13: cost annotations are all-or-none across the tree, and internally
  // consistent where present. An annotated parent with an unannotated child
  // means the optimizer skipped a node; an estimate that grows through a
  // row-reducing operator means the propagation arithmetic is wrong.
  if (op.has_estimated_rows()) {
    for (const Operator* child : children) {
      if (!child->has_estimated_rows()) {
        return Violation(op, "cost annotation present but child " +
                                 child->label() + " has none");
      }
    }
    if (op.estimated_rows() < 0.0 ||
        !(op.estimated_rows() == op.estimated_rows())) {  // NaN check
      return Violation(op, "cost annotation is negative or NaN");
    }
    // Allow 0.5 rows of rounding slack: estimates pass through llround for
    // display and several multiplicative stages.
    constexpr double kSlack = 0.5;
    if (dynamic_cast<const Filter*>(&op) != nullptr ||
        dynamic_cast<const Limit*>(&op) != nullptr ||
        dynamic_cast<const HashAggregate*>(&op) != nullptr) {
      if (op.estimated_rows() > children[0]->estimated_rows() + kSlack) {
        return Violation(op, "estimate " +
                                 std::to_string(op.estimated_rows()) +
                                 " exceeds child estimate " +
                                 std::to_string(children[0]->estimated_rows()));
      }
    }
    if (dynamic_cast<const Sort*>(&op) != nullptr) {
      if (op.estimated_rows() != children[0]->estimated_rows()) {
        return Violation(op, "sort estimate " +
                                 std::to_string(op.estimated_rows()) +
                                 " differs from child estimate " +
                                 std::to_string(children[0]->estimated_rows()));
      }
    }
    if (dynamic_cast<const HashJoin*>(&op) != nullptr ||
        dynamic_cast<const NestedLoopJoin*>(&op) != nullptr) {
      double product = children[0]->estimated_rows() *
                       children[1]->estimated_rows();
      if (op.estimated_rows() > product + kSlack) {
        return Violation(op, "join estimate " +
                                 std::to_string(op.estimated_rows()) +
                                 " exceeds the product of its children (" +
                                 std::to_string(product) + ")");
      }
    }
  } else {
    for (const Operator* child : children) {
      if (child->has_estimated_rows()) {
        return Violation(op, "child " + child->label() +
                                 " has a cost annotation but this node has "
                                 "none");
      }
    }
  }

  for (const Operator* child : children) {
    NIMBLE_RETURN_IF_ERROR(VerifyNode(*child, depth + 1));
  }
  return Status::OK();
}

}  // namespace

Status VerifyPlan(const Operator& root) { return VerifyNode(root, 0); }

Status VerifyPlanProducesVariables(const Operator& root,
                                   const std::vector<std::string>& required) {
  for (const std::string& variable : required) {
    if (!root.schema().SlotOf(variable).has_value()) {  // I10
      return Violation(root, "plan does not produce $" + variable +
                                 " required by the CONSTRUCT template");
    }
  }
  return Status::OK();
}

}  // namespace algebra
}  // namespace nimble
