#include "xml/parser.h"

#include <cctype>
#include <cstdlib>

#include "common/strings.h"

namespace nimble {

namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}

bool IsAllWhitespace(std::string_view s) {
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

/// Recursive-descent XML parser over a string_view cursor.
class Parser {
 public:
  Parser(std::string_view input, const XmlParseOptions& options)
      : input_(input), options_(options) {}

  Result<NodePtr> ParseDocument() {
    SkipProlog();
    NIMBLE_ASSIGN_OR_RETURN(NodePtr root, ParseElement());
    SkipMisc();
    if (pos_ != input_.size()) {
      return Error("trailing content after document element");
    }
    return root;
  }

 private:
  Status Error(const std::string& what) const {
    size_t line = 1;
    for (size_t i = 0; i < pos_ && i < input_.size(); ++i) {
      if (input_[i] == '\n') ++line;
    }
    return Status::ParseError("XML parse error at line " +
                              std::to_string(line) + ": " + what);
  }

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool LookingAt(std::string_view s) const {
    return input_.substr(pos_, s.size()) == s;
  }
  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) ++pos_;
  }

  void SkipProlog() {
    SkipMisc();
    if (LookingAt("<?xml")) {
      size_t end = input_.find("?>", pos_);
      pos_ = (end == std::string_view::npos) ? input_.size() : end + 2;
    }
    SkipMisc();
    // DOCTYPE (no internal subset support beyond bracket matching).
    if (LookingAt("<!DOCTYPE")) {
      pos_ += 9;
      int depth = 0;
      while (!AtEnd()) {
        char c = Peek();
        ++pos_;
        if (c == '<') ++depth;
        if (c == '>') {
          if (depth == 0) break;
          --depth;
        }
        if (c == '[') {
          size_t close = input_.find(']', pos_);
          pos_ = (close == std::string_view::npos) ? input_.size() : close + 1;
        }
      }
    }
    SkipMisc();
  }

  // Skips whitespace, comments and processing instructions.
  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (LookingAt("<!--")) {
        size_t end = input_.find("-->", pos_ + 4);
        pos_ = (end == std::string_view::npos) ? input_.size() : end + 3;
      } else if (LookingAt("<?")) {
        size_t end = input_.find("?>", pos_);
        pos_ = (end == std::string_view::npos) ? input_.size() : end + 2;
      } else {
        return;
      }
    }
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStartChar(Peek())) {
      return Error("expected a name");
    }
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    return std::string(input_.substr(start, pos_ - start));
  }

  Result<NodePtr> ParseElement() {
    if (AtEnd() || Peek() != '<') return Error("expected '<'");
    ++pos_;
    NIMBLE_ASSIGN_OR_RETURN(std::string name, ParseName());
    NodePtr element = Node::Element(name);

    // Attributes.
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return Error("unexpected end inside tag <" + name + ">");
      if (Peek() == '>' || LookingAt("/>")) break;
      NIMBLE_ASSIGN_OR_RETURN(std::string attr_name, ParseName());
      SkipWhitespace();
      if (AtEnd() || Peek() != '=') return Error("expected '=' after attribute");
      ++pos_;
      SkipWhitespace();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return Error("expected quoted attribute value");
      }
      char quote = Peek();
      ++pos_;
      size_t start = pos_;
      while (!AtEnd() && Peek() != quote) ++pos_;
      if (AtEnd()) return Error("unterminated attribute value");
      NIMBLE_ASSIGN_OR_RETURN(
          std::string raw, UnescapeXml(input_.substr(start, pos_ - start)));
      ++pos_;
      element->SetAttribute(attr_name, options_.infer_types
                                           ? Value::Infer(raw)
                                           : Value::String(raw));
    }

    if (LookingAt("/>")) {
      pos_ += 2;
      return element;
    }
    ++pos_;  // consume '>'

    // Content.
    while (true) {
      if (AtEnd()) return Error("missing </" + name + ">");
      if (LookingAt("</")) {
        pos_ += 2;
        NIMBLE_ASSIGN_OR_RETURN(std::string close_name, ParseName());
        if (close_name != name) {
          return Error("mismatched </" + close_name + ">, expected </" + name +
                       ">");
        }
        SkipWhitespace();
        if (AtEnd() || Peek() != '>') return Error("expected '>'");
        ++pos_;
        return element;
      }
      if (LookingAt("<!--")) {
        size_t end = input_.find("-->", pos_ + 4);
        if (end == std::string_view::npos) return Error("unterminated comment");
        pos_ = end + 3;
        continue;
      }
      if (LookingAt("<![CDATA[")) {
        size_t start = pos_ + 9;
        size_t end = input_.find("]]>", start);
        if (end == std::string_view::npos) return Error("unterminated CDATA");
        std::string raw(input_.substr(start, end - start));
        element->AddChild(Node::Text(Value::String(raw)));
        pos_ = end + 3;
        continue;
      }
      if (LookingAt("<?")) {
        size_t end = input_.find("?>", pos_);
        if (end == std::string_view::npos) return Error("unterminated PI");
        pos_ = end + 2;
        continue;
      }
      if (Peek() == '<') {
        NIMBLE_ASSIGN_OR_RETURN(NodePtr child, ParseElement());
        element->AddChild(std::move(child));
        continue;
      }
      // Character data up to the next '<'.
      size_t start = pos_;
      while (!AtEnd() && Peek() != '<') ++pos_;
      std::string_view raw = input_.substr(start, pos_ - start);
      if (options_.strip_ignorable_whitespace && IsAllWhitespace(raw)) {
        continue;
      }
      NIMBLE_ASSIGN_OR_RETURN(std::string text, UnescapeXml(raw));
      element->AddChild(options_.infer_types ? Node::TextFromRaw(text)
                                             : Node::Text(Value::String(text)));
    }
  }

  std::string_view input_;
  const XmlParseOptions& options_;
  size_t pos_ = 0;
};

}  // namespace

Result<NodePtr> ParseXml(std::string_view input,
                         const XmlParseOptions& options) {
  Parser parser(input, options);
  return parser.ParseDocument();
}

Result<std::string> UnescapeXml(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (c != '&') {
      out.push_back(c);
      ++i;
      continue;
    }
    size_t semi = text.find(';', i);
    if (semi == std::string_view::npos) {
      return Status::ParseError("unterminated entity reference");
    }
    std::string_view entity = text.substr(i + 1, semi - i - 1);
    if (entity == "amp") {
      out.push_back('&');
    } else if (entity == "lt") {
      out.push_back('<');
    } else if (entity == "gt") {
      out.push_back('>');
    } else if (entity == "quot") {
      out.push_back('"');
    } else if (entity == "apos") {
      out.push_back('\'');
    } else if (!entity.empty() && entity[0] == '#') {
      long code;
      std::string digits(entity.substr(1));
      if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
        code = std::strtol(digits.c_str() + 1, nullptr, 16);
      } else {
        code = std::strtol(digits.c_str(), nullptr, 10);
      }
      // Encode as UTF-8.
      if (code < 0x80) {
        out.push_back(static_cast<char>(code));
      } else if (code < 0x800) {
        out.push_back(static_cast<char>(0xC0 | (code >> 6)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      } else {
        out.push_back(static_cast<char>(0xE0 | (code >> 12)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      }
    } else {
      return Status::ParseError("unknown entity &" + std::string(entity) + ";");
    }
    i = semi + 1;
  }
  return out;
}

std::string EscapeXmlText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string EscapeXmlAttribute(std::string_view text) {
  std::string out = EscapeXmlText(text);
  return ReplaceAll(out, "\"", "&quot;");
}

}  // namespace nimble
