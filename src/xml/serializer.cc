#include "xml/serializer.h"

#include "xml/parser.h"

namespace nimble {

namespace {

void WriteNode(const Node& node, const XmlWriteOptions& options, int depth,
               std::string* out) {
  auto indent = [&](int d) {
    if (options.pretty) out->append(static_cast<size_t>(d) * 2, ' ');
  };
  auto newline = [&]() {
    if (options.pretty) out->push_back('\n');
  };

  if (node.is_text()) {
    indent(depth);
    out->append(EscapeXmlText(node.value().ToString()));
    newline();
    return;
  }

  indent(depth);
  out->push_back('<');
  out->append(node.name());
  for (const auto& [name, value] : node.attributes()) {
    out->push_back(' ');
    out->append(name);
    out->append("=\"");
    out->append(EscapeXmlAttribute(value.ToString()));
    out->push_back('"');
  }
  if (node.children().empty()) {
    out->append("/>");
    newline();
    return;
  }

  // Simple content (single text child) stays on one line even when pretty.
  if (node.children().size() == 1 && node.children()[0]->is_text()) {
    out->push_back('>');
    out->append(EscapeXmlText(node.children()[0]->value().ToString()));
    out->append("</");
    out->append(node.name());
    out->push_back('>');
    newline();
    return;
  }

  out->push_back('>');
  newline();
  for (const NodePtr& child : node.children()) {
    WriteNode(*child, options, depth + 1, out);
  }
  indent(depth);
  out->append("</");
  out->append(node.name());
  out->push_back('>');
  newline();
}

}  // namespace

std::string ToXml(const Node& node, const XmlWriteOptions& options) {
  std::string out;
  if (options.declaration) {
    out = "<?xml version=\"1.0\"?>";
    if (options.pretty) out.push_back('\n');
  }
  WriteNode(node, options, 0, &out);
  if (options.pretty && !out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

std::string ToPrettyXml(const Node& node) {
  XmlWriteOptions options;
  options.pretty = true;
  return ToXml(node, options);
}

}  // namespace nimble
