#include "xml/node.h"

#include <cassert>

namespace nimble {

NodePtr Node::Element(std::string name) {
  NodePtr n(new Node(NodeKind::kElement));
  n->name_ = std::move(name);
  return n;
}

NodePtr Node::Text(Value value) {
  NodePtr n(new Node(NodeKind::kText));
  n->value_ = std::move(value);
  return n;
}

NodePtr Node::TextFromRaw(const std::string& raw) {
  return Text(Value::Infer(raw));
}

NodePtr Node::AddChild(NodePtr child) {
  assert(child != nullptr);
  assert(!frozen_ && "mutation of a frozen snapshot; Clone() first");
  assert(child->parent_ == nullptr && "child already has a parent");
  child->parent_ = this;
  children_.push_back(child);
  return children_.back();
}

NodePtr Node::AddScalarChild(const std::string& name, Value value) {
  NodePtr elem = Element(name);
  elem->AddChild(Text(std::move(value)));
  return AddChild(std::move(elem));
}

void Node::SetAttribute(const std::string& name, Value value) {
  assert(!frozen_ && "mutation of a frozen snapshot; Clone() first");
  for (auto& [attr_name, attr_value] : attributes_) {
    if (attr_name == name) {
      attr_value = std::move(value);
      return;
    }
  }
  attributes_.emplace_back(name, std::move(value));
}

void Node::RemoveChild(size_t index) {
  assert(!frozen_ && "mutation of a frozen snapshot; Clone() first");
  assert(index < children_.size());
  children_[index]->parent_ = nullptr;
  children_.erase(children_.begin() + static_cast<ptrdiff_t>(index));
}

std::vector<NodePtr> Node::TakeChildren() {
  assert(!frozen_ && "mutation of a frozen snapshot; Clone() first");
  for (const NodePtr& child : children_) child->parent_ = nullptr;
  std::vector<NodePtr> out;
  out.swap(children_);
  return out;
}

NodePtr Node::FindChild(const std::string& name) const {
  for (const NodePtr& child : children_) {
    if (child->is_element() && child->name_ == name) return child;
  }
  return nullptr;
}

std::vector<NodePtr> Node::FindChildren(const std::string& name) const {
  std::vector<NodePtr> out;
  for (const NodePtr& child : children_) {
    if (child->is_element() && child->name_ == name) out.push_back(child);
  }
  return out;
}

Value Node::GetAttribute(const std::string& name) const {
  for (const auto& [attr_name, attr_value] : attributes_) {
    if (attr_name == name) return attr_value;
  }
  return Value::Null();
}

bool Node::HasAttribute(const std::string& name) const {
  for (const auto& [attr_name, attr_value] : attributes_) {
    if (attr_name == name) return true;
  }
  return false;
}

std::string Node::TextContent() const {
  if (is_text()) return value_.ToString();
  std::string out;
  for (const NodePtr& child : children_) {
    out += child->TextContent();
  }
  return out;
}

Value Node::ScalarValue() const {
  if (is_text()) return value_;
  if (children_.size() == 1 && children_[0]->is_text()) {
    return children_[0]->value_;
  }
  if (children_.empty()) return Value::Null();
  return Value::String(TextContent());
}

NodePtr Node::NextSibling() const {
  if (parent_ == nullptr) return nullptr;
  const auto& siblings = parent_->children_;
  for (size_t i = 0; i < siblings.size(); ++i) {
    if (siblings[i].get() == this) {
      return i + 1 < siblings.size() ? siblings[i + 1] : nullptr;
    }
  }
  return nullptr;
}

NodePtr Node::PrevSibling() const {
  if (parent_ == nullptr) return nullptr;
  const auto& siblings = parent_->children_;
  for (size_t i = 0; i < siblings.size(); ++i) {
    if (siblings[i].get() == this) {
      return i > 0 ? siblings[i - 1] : nullptr;
    }
  }
  return nullptr;
}

size_t Node::SubtreeSize() const {
  size_t total = 1;
  for (const NodePtr& child : children_) total += child->SubtreeSize();
  return total;
}

bool Node::DeepEquals(const Node& other) const {
  if (kind_ != other.kind_ || name_ != other.name_ || value_ != other.value_) {
    return false;
  }
  if (attributes_ != other.attributes_) return false;
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->DeepEquals(*other.children_[i])) return false;
  }
  return true;
}

NodePtr Node::Clone() const {
  NodePtr copy(new Node(kind_));
  copy->name_ = name_;
  copy->value_ = value_;
  copy->attributes_ = attributes_;
  copy->children_.reserve(children_.size());
  for (const NodePtr& child : children_) {
    NodePtr child_copy = child->Clone();
    child_copy->parent_ = copy.get();
    copy->children_.push_back(std::move(child_copy));
  }
  return copy;
}

ConstNodePtr Node::Freeze() {
  if (!frozen_) {
    frozen_ = true;
    for (const NodePtr& child : children_) child->Freeze();
  }
  return shared_from_this();
}

size_t Node::EstimatedBytes() const {
  size_t total = sizeof(Node) + name_.capacity();
  if (value_.is_string()) total += value_.AsString().capacity();
  total += attributes_.capacity() * sizeof(attributes_[0]);
  for (const auto& [attr_name, attr_value] : attributes_) {
    total += attr_name.capacity();
    if (attr_value.is_string()) total += attr_value.AsString().capacity();
  }
  total += children_.capacity() * sizeof(NodePtr);
  for (const NodePtr& child : children_) total += child->EstimatedBytes();
  return total;
}

void Node::CollectDescendants(std::vector<NodePtr>* out) const {
  for (const NodePtr& child : children_) {
    if (child->is_element()) out->push_back(child);
    child->CollectDescendants(out);
  }
}

}  // namespace nimble
