#ifndef NIMBLE_XML_VALUE_H_
#define NIMBLE_XML_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"
#include "common/status.h"

namespace nimble {

/// Scalar type tags for Value. The Nimble data model is "slightly more
/// structured" than pure XML (paper §3.1): leaves carry *typed* scalars so
/// relational and hierarchical data round-trip without lossy stringification.
enum class ValueType {
  kNull = 0,
  kBool,
  kInt,
  kDouble,
  kString,
};

const char* ValueTypeName(ValueType type);

/// A typed scalar: null, bool, 64-bit int, double, or string.
///
/// Ordering: values of the same numeric family (int/double) compare
/// numerically; otherwise a total order is imposed by type rank
/// (null < bool < number < string) so heterogeneous sorts are deterministic.
class Value {
 public:
  /// Null value.
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Rep(b)); }
  static Value Int(int64_t i) { return Value(Rep(i)); }
  static Value Double(double d) { return Value(Rep(d)); }
  static Value String(std::string s) { return Value(Rep(std::move(s))); }

  /// Parses `text` into the most specific type: int, then double, then
  /// bool ("true"/"false"), falling back to string. Used when ingesting
  /// untyped documents (CSV, raw XML text).
  static Value Infer(const std::string& text);

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_bool() const { return type() == ValueType::kBool; }
  bool is_int() const { return type() == ValueType::kInt; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_numeric() const { return is_int() || is_double(); }

  /// Accessors require the matching type (asserted).
  bool AsBool() const { return std::get<bool>(rep_); }
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  /// Numeric view: int is widened to double. Requires is_numeric().
  double NumericValue() const;

  /// Lossless textual rendering ("" for null, "true"/"false" for bool).
  std::string ToString() const;

  /// Coercions used by expression evaluation.
  Result<int64_t> ToInt() const;
  Result<double> ToDouble() const;
  /// Truthiness: null/false/0/"" are false; everything else true.
  bool Truthy() const;

  /// Three-way comparison as described in the class comment.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Hash consistent with operator== (numeric family hashes by double).
  size_t Hash() const;

 private:
  using Rep = std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

}  // namespace nimble

#endif  // NIMBLE_XML_VALUE_H_
