#ifndef NIMBLE_XML_SERIALIZER_H_
#define NIMBLE_XML_SERIALIZER_H_

#include <string>

#include "xml/node.h"

namespace nimble {

/// Serialization options.
struct XmlWriteOptions {
  /// Pretty-print with two-space indentation and newlines.
  bool pretty = false;
  /// Emit `<?xml version="1.0"?>` before the root.
  bool declaration = false;
};

/// Serializes `node` (and its subtree) to XML text. Attribute values and
/// character data are escaped; typed scalars are rendered via
/// Value::ToString so a parse → serialize → parse round-trip is stable.
std::string ToXml(const Node& node, const XmlWriteOptions& options = {});

/// Shorthand for ToXml with pretty-printing enabled.
std::string ToPrettyXml(const Node& node);

}  // namespace nimble

#endif  // NIMBLE_XML_SERIALIZER_H_
